package altune_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/altune"
)

func TestCustomSpaceEndToEnd(t *testing.T) {
	// Exercise the whole public surface on a synthetic problem.
	sp := altune.MustNewSpace(
		altune.Num("threads", 1, 2, 4, 8, 16),
		altune.Cat("schedule", "static", "dynamic", "guided"),
		altune.Bool("pin"),
	)
	ev := altune.AdaptEvaluator(altune.LegacyEvaluatorFunc(func(c altune.Config) float64 {
		threads := sp.ValueByName(c, "threads")
		base := 16 / threads
		if sp.NameOf(c, sp.IndexOf("schedule")) == "dynamic" {
			base *= 0.8
		}
		if sp.ValueByName(c, "pin") != 0 {
			base *= 0.9
		}
		return base + 0.1
	}))
	pool := sp.SampleConfigs(altune.NewRNG(1), 60)
	res, err := altune.Run(context.Background(), sp, pool, ev, altune.PWU{Alpha: 0.1},
		altune.Params{NInit: 8, NMax: 40, Forest: altune.ForestConfig{NumTrees: 16}},
		altune.NewRNG(2), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainY) != 40 {
		t.Fatalf("labeled %d", len(res.TrainY))
	}
	best := altune.Config{4, 1, 1} // 16 threads, dynamic, pinned
	pred := res.Model.Predict(sp.Encode(best))
	if pred > 5 {
		t.Fatalf("prediction at optimum %v", pred)
	}
}

func TestBenchmarkRegistry(t *testing.T) {
	if len(altune.Benchmarks()) != 14 {
		t.Fatal("registry size wrong")
	}
	if len(altune.KernelBenchmarks()) != 12 || len(altune.ApplicationBenchmarks()) != 2 {
		t.Fatal("split wrong")
	}
	p, err := altune.Benchmark("adi")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "adi" {
		t.Fatal("wrong benchmark")
	}
	if len(altune.BenchmarkNames()) != 14 {
		t.Fatal("names wrong")
	}
}

func TestMetricsExports(t *testing.T) {
	y := []float64{1, 2, 100}
	yhat := []float64{1.5, 2, 0}
	if got := altune.RMSEAtAlpha(y, yhat, 0.34); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("RMSEAtAlpha = %v", got)
	}
	if altune.CumulativeCost(y) != 103 {
		t.Fatal("CumulativeCost wrong")
	}
}

func TestStrategyRegistry(t *testing.T) {
	for _, n := range altune.StrategyNames() {
		s, err := altune.StrategyByName(n, 0.05)
		if err != nil || s.Name() != n {
			t.Fatalf("strategy %s: %v", n, err)
		}
	}
}

func TestScalesAndDataset(t *testing.T) {
	sc := altune.PaperScale()
	if sc.NMax != 500 || sc.Reps != 10 {
		t.Fatalf("paper scale %+v", sc)
	}
	p, _ := altune.Benchmark("gesummv")
	ds, err := altune.BuildDataset(context.Background(), p, 50, 20, altune.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Pool) != 50 || len(ds.TestY) != 20 {
		t.Fatal("dataset sizes wrong")
	}
}

func TestQuickExperimentThroughFacade(t *testing.T) {
	p, _ := altune.Benchmark("atax")
	sc := altune.QuickScale()
	sc.PoolSize, sc.TestSize, sc.NMax, sc.Reps = 300, 120, 60, 1
	sc.NBatch, sc.EvalEvery = 10, 25
	cs, err := altune.RunStrategy(context.Background(), p, "PWU", sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Strategy != "PWU" || len(cs.RMSE) == 0 {
		t.Fatal("bad curve set")
	}
}

func TestTuningThroughFacade(t *testing.T) {
	p, _ := altune.Benchmark("mvt")
	cands := p.Space().SampleConfigs(altune.NewRNG(4), 100)
	tr, err := altune.Tune(p, cands, altune.NewTrueAnnotator(p, altune.NewRNG(5)),
		altune.TuningParams{NInit: 5, Iterations: 10, Forest: altune.ForestConfig{NumTrees: 8}},
		altune.NewRNG(6))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Annotator != "ground truth" || len(tr.BestTrue) != 11 {
		t.Fatalf("trace = %+v", tr.Annotator)
	}
}

func TestGPThroughFacade(t *testing.T) {
	sp := altune.MustNewSpace(altune.NumRange("x", 0, 30, 1))
	var X [][]float64
	var y []float64
	r := altune.NewRNG(20)
	for i := 0; i < 80; i++ {
		c := sp.SampleConfig(r)
		X = append(X, sp.Encode(c))
		y = append(y, sp.Value(c, 0)*0.5+1)
	}
	g, err := altune.FitGP(X, y, sp.Features(), altune.GPConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Predict([]float64{10})-6) > 1 {
		t.Fatalf("GP prediction %v", g.Predict([]float64{10}))
	}
}

func TestGPFitterInRun(t *testing.T) {
	p, _ := altune.Benchmark("gesummv")
	ds, err := altune.BuildDataset(context.Background(), p, 200, 100, altune.NewRNG(21))
	if err != nil {
		t.Fatal(err)
	}
	res, err := altune.Run(context.Background(), p.Space(), ds.Pool,
		altune.BenchmarkEvaluator(p, altune.NewRNG(22)),
		altune.PWU{Alpha: 0.1},
		altune.Params{NInit: 10, NBatch: 10, NMax: 50, Fitter: altune.GPFitter(altune.GPConfig{})},
		altune.NewRNG(23), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Model.(*altune.GP); !ok {
		t.Fatalf("model is %T, want *altune.GP", res.Model)
	}
}

func TestEIThroughFacade(t *testing.T) {
	s, err := altune.StrategyByName("EI", 0)
	if err != nil || s.Name() != "EI" {
		t.Fatalf("EI: %v", err)
	}
	_ = altune.EI{Xi: 0.1}
}

func TestForestSaveLoadThroughFacade(t *testing.T) {
	sp := altune.MustNewSpace(altune.NumRange("x", 0, 9, 1))
	var X [][]float64
	var y []float64
	r := altune.NewRNG(24)
	for i := 0; i < 60; i++ {
		c := sp.SampleConfig(r)
		X = append(X, sp.Encode(c))
		y = append(y, sp.Value(c, 0))
	}
	f, err := altune.FitForest(X, y, sp.Features(), altune.ForestConfig{NumTrees: 8}, altune.NewRNG(25))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	f2, err := altune.LoadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Predict([]float64{4}) != f2.Predict([]float64{4}) {
		t.Fatal("round trip changed prediction")
	}
}

func TestTransferThroughFacade(t *testing.T) {
	source, _ := altune.Benchmark("mvt")
	target, err := altune.KernelOnPlatform("mvt", altune.PlatformC())
	if err != nil {
		t.Fatal(err)
	}
	cfg := altune.DefaultTransferConfig()
	cfg.SourceBudget = 60
	cfg.TargetBudgets = []int{10, 30}
	cfg.PoolSize, cfg.TestSize = 300, 150
	cfg.Forest.NumTrees = 16
	res, err := altune.RunTransfer(context.Background(), source, target, cfg, 26)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Budgets) != 2 || res.TargetPlatform != "C" {
		t.Fatalf("result = %+v", res)
	}
}

func TestPlatformAccessors(t *testing.T) {
	if altune.PlatformA().Name != "A" || altune.PlatformB().Name != "B" || altune.PlatformC().Name != "C" {
		t.Fatal("platform accessors broken")
	}
	if altune.PlatformB().Net.BetaBytesPerSec <= 0 {
		t.Fatal("platform B has no network")
	}
}

func TestForestThroughFacade(t *testing.T) {
	sp := altune.MustNewSpace(altune.NumRange("x", 0, 20, 1))
	var X [][]float64
	var y []float64
	r := altune.NewRNG(7)
	for i := 0; i < 100; i++ {
		c := sp.SampleConfig(r)
		X = append(X, sp.Encode(c))
		y = append(y, sp.Value(c, 0)*2)
	}
	f, err := altune.FitForest(X, y, sp.Features(), altune.ForestConfig{NumTrees: 16, Uncertainty: altune.TotalVariance}, altune.NewRNG(8))
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := f.PredictWithUncertainty([]float64{10})
	if math.Abs(mu-20) > 5 || sigma < 0 {
		t.Fatalf("facade forest mu=%v sigma=%v", mu, sigma)
	}
}
