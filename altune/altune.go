// Package altune is the public API of this repository: an active-learning
// toolkit for empirical performance modeling, reproducing "An Active
// Learning Method for Empirical Modeling in Performance Tuning"
// (Zhang, Zhou, Sun, Sun — IPDPS workshops 2020).
//
// The package re-exports the user-facing types of the internal
// implementation packages so that downstream code depends on one import:
//
//	sp := altune.MustNewSpace(
//	    altune.Num("tile", 16, 32, 64, 128),
//	    altune.Bool("vectorize"),
//	)
//	pool := sp.SampleConfigs(altune.NewRNG(1), 5000)
//	res, err := altune.Run(sp, pool, myEvaluator,
//	    altune.PWU{Alpha: 0.05}, altune.Params{NMax: 500}, altune.NewRNG(2), nil)
//
// The paper's 14 benchmarks (12 SPAPT kernels, kripke, hypre) are
// available through Benchmark/Benchmarks, and the full figure harness
// through RunStrategy/RunAll and the Scale presets.
package altune

import (
	"io"

	"repro/internal/autotune"
	"repro/internal/bench"
	"repro/internal/calibration"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/forest"
	"repro/internal/gp"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/search"
	"repro/internal/space"
	"repro/internal/transfer"
	"repro/internal/tuning"
)

// ---- Parameter spaces (internal/space) ----

// Space is a finite tunable parameter space.
type Space = space.Space

// Parameter is one dimension of a Space.
type Parameter = space.Parameter

// Config is a point in a Space: one level index per parameter.
type Config = space.Config

// Feature describes one encoded model input column.
type Feature = space.Feature

// Num constructs a numeric parameter with explicit levels.
func Num(name string, levels ...float64) Parameter { return space.Num(name, levels...) }

// NumRange constructs a numeric parameter with integer levels lo..hi.
func NumRange(name string, lo, hi, step int) Parameter { return space.NumRange(name, lo, hi, step) }

// Cat constructs a categorical parameter from level names.
func Cat(name string, names ...string) Parameter { return space.Cat(name, names...) }

// Bool constructs a boolean parameter.
func Bool(name string) Parameter { return space.Bool(name) }

// NewSpace validates parameters and builds a Space.
func NewSpace(params ...Parameter) (*Space, error) { return space.New(params...) }

// MustNewSpace is NewSpace but panics on error.
func MustNewSpace(params ...Parameter) *Space { return space.MustNew(params...) }

// ---- Randomness (internal/rng) ----

// RNG is the deterministic splittable generator used everywhere.
type RNG = rng.RNG

// NewRNG returns a generator for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// ---- Surrogate model (internal/forest) ----

// Forest is a random-forest regressor with per-prediction uncertainty.
type Forest = forest.Forest

// ForestConfig configures forest construction.
type ForestConfig = forest.Config

// Uncertainty estimator choices for ForestConfig.Uncertainty.
const (
	BetweenTrees  = forest.BetweenTrees
	TotalVariance = forest.TotalVariance
)

// FitForest trains a random forest on (X, y).
func FitForest(X [][]float64, y []float64, features []Feature, cfg ForestConfig, r *RNG) (*Forest, error) {
	return forest.Fit(X, y, features, cfg, r)
}

// LoadForest reads a forest serialized with Forest.Save, enabling model
// reuse across processes and machines.
func LoadForest(r io.Reader) (*Forest, error) { return forest.Load(r) }

// GP is the Gaussian-process comparator surrogate (see the paper's
// §II-B for why the random forest is preferred on these spaces).
type GP = gp.GP

// GPConfig configures GP fitting.
type GPConfig = gp.Config

// FitGP trains a Gaussian process on (X, y).
func FitGP(X [][]float64, y []float64, features []Feature, cfg GPConfig, r *RNG) (*GP, error) {
	return gp.Fit(X, y, features, cfg, r)
}

// GPFitter returns a Fitter that plugs the GP surrogate into Run, for
// surrogate ablations.
func GPFitter(cfg GPConfig) Fitter {
	return func(X [][]float64, y []float64, features []Feature, r *RNG) (Model, error) {
		return gp.Fit(X, y, features, cfg, r)
	}
}

// ---- Active learning (internal/core) ----

// Evaluator labels configurations with measured performance.
type Evaluator = core.Evaluator

// EvaluatorFunc adapts a function to Evaluator.
type EvaluatorFunc = core.EvaluatorFunc

// Strategy selects the next batch of pool candidates.
type Strategy = core.Strategy

// Candidates is the strategy's view of the remaining pool.
type Candidates = core.Candidates

// Params are Algorithm 1's knobs (NInit/NBatch/NMax/Forest).
type Params = core.Params

// Result is a completed active-learning run.
type Result = core.Result

// Model is the surrogate interface Algorithm 1 uses (implemented by
// Forest and the Gaussian-process comparator).
type Model = core.Model

// Fitter builds a surrogate from labeled data; set Params.Fitter to
// swap the random forest for another model.
type Fitter = core.Fitter

// State is the per-iteration snapshot passed to observers.
type State = core.State

// Observer is the per-iteration callback of Run.
type Observer = core.Observer

// The paper's sampling strategies.
type (
	// PWU is the paper's Performance Weighted Uncertainty strategy.
	PWU = core.PWU
	// PBUS is the two-stage baseline of Balaprakash et al. 2013.
	PBUS = core.PBUS
	// BRS samples randomly within the predicted-performance elite.
	BRS = core.BRS
	// BestPerf greedily picks the best predicted configurations.
	BestPerf = core.BestPerf
	// MaxU picks the most uncertain configurations.
	MaxU = core.MaxU
	// Random samples uniformly (the conventional baseline).
	Random = core.Random
	// EI is the Expected Improvement acquisition (SMAC-style
	// optimisation focus), included as an extension baseline.
	EI = core.EI
)

// Run executes the paper's Algorithm 1.
func Run(sp *Space, pool []Config, ev Evaluator, strat Strategy, params Params, r *RNG, obs Observer) (*Result, error) {
	return core.Run(sp, pool, ev, strat, params, r, obs)
}

// StrategyByName instantiates a registered strategy ("PWU", "PBUS",
// "BRS", "BestPerf", "MaxU", "Random", "CV").
func StrategyByName(name string, alpha float64) (Strategy, error) { return core.ByName(name, alpha) }

// StrategyNames lists the registered strategies in figure order.
func StrategyNames() []string { return core.StrategyNames() }

// ---- Metrics (internal/metrics) ----

// Curve is a learning curve over training-set sizes.
type Curve = metrics.Curve

// RMSEAtAlpha is the paper's Eq. 2: RMSE over the top-⌊nα⌋ samples.
func RMSEAtAlpha(y, yhat []float64, alpha float64) float64 {
	return metrics.RMSEAtAlpha(y, yhat, alpha)
}

// CumulativeCost is the paper's Eq. 3: total labeling time.
func CumulativeCost(y []float64) float64 { return metrics.CumulativeCost(y) }

// ---- Benchmarks (internal/bench, internal/dataset) ----

// Problem is one of the paper's benchmarks: space + performance model +
// noise profile.
type Problem = bench.Problem

// Benchmark returns the named benchmark ("adi" ... "mvt", "kripke",
// "hypre").
func Benchmark(name string) (Problem, error) { return bench.ByName(name) }

// Benchmarks returns all 14 problems (12 kernels, then the applications).
func Benchmarks() []Problem { return bench.All() }

// KernelBenchmarks returns the 12 SPAPT kernels.
func KernelBenchmarks() []Problem { return bench.Kernels() }

// ApplicationBenchmarks returns kripke and hypre.
func ApplicationBenchmarks() []Problem { return bench.Applications() }

// BenchmarkNames lists all benchmark names.
func BenchmarkNames() []string { return bench.Names() }

// Platform is a modeled execution platform (Table IV plus the
// transfer-experiment Platform C).
type Platform = machine.Platform

// PlatformA returns the Table IV kernel platform.
func PlatformA() *Platform { return machine.PlatformA() }

// PlatformB returns the Table IV application platform.
func PlatformB() *Platform { return machine.PlatformB() }

// PlatformC returns the extra platform used by transfer experiments.
func PlatformC() *Platform { return machine.PlatformC() }

// KernelOnPlatform returns a SPAPT kernel re-hosted on another platform,
// sharing its parameter space with the original — the target side of
// RunTransfer.
func KernelOnPlatform(name string, p *Platform) (Problem, error) {
	return bench.KernelOn(name, p)
}

// BenchmarkEvaluator wraps a problem as a noisy Evaluator following the
// paper's measurement protocol.
func BenchmarkEvaluator(p Problem, r *RNG) Evaluator { return bench.Evaluator(p, r) }

// Dataset is a pool/test split with pre-measured test labels.
type Dataset = dataset.Dataset

// BuildDataset samples and labels a dataset for p.
func BuildDataset(p Problem, poolSize, testSize int, r *RNG) *Dataset {
	return dataset.Build(p, poolSize, testSize, r)
}

// ---- Experiment harness (internal/experiment) ----

// Scale bundles experiment sizes (pool, labels, repetitions, α, model).
type Scale = experiment.Scale

// CurveSet is a strategy's averaged RMSE@α and CC learning curves.
type CurveSet = experiment.CurveSet

// PaperScale returns the §III-D settings (7000/3000 split, 500 labels,
// 10 repetitions, α = 0.05).
func PaperScale() Scale { return experiment.Paper() }

// QuickScale returns a reduced scale preserving the experiment's shape.
func QuickScale() Scale { return experiment.Quick() }

// RunStrategy runs averaged repetitions of one strategy on one problem.
func RunStrategy(p Problem, strategyName string, sc Scale, seed uint64) (*CurveSet, error) {
	return experiment.RunStrategy(p, strategyName, sc, seed)
}

// RunAllStrategies runs several strategies on one problem.
func RunAllStrategies(p Problem, names []string, sc Scale, seed uint64) ([]*CurveSet, error) {
	return experiment.RunAll(p, names, sc, seed)
}

// ---- Tuning (internal/tuning) ----

// Annotator labels configurations during model-based tuning.
type Annotator = tuning.Annotator

// TuningParams configures a tuning run.
type TuningParams = tuning.Params

// TuningTrace is a best-so-far tuning curve.
type TuningTrace = tuning.Trace

// NewTrueAnnotator labels by measuring the benchmark.
func NewTrueAnnotator(p Problem, r *RNG) Annotator { return tuning.NewTrueAnnotator(p, r) }

// NewSurrogateAnnotator labels with a fitted surrogate's predictions.
func NewSurrogateAnnotator(sp *Space, model Model) Annotator {
	return tuning.NewSurrogateAnnotator(sp, model)
}

// Tune runs model-based tuning over a candidate set.
func Tune(p Problem, candidates []Config, ann Annotator, params TuningParams, r *RNG) (*TuningTrace, error) {
	return tuning.Run(p, candidates, ann, params, r)
}

// ---- Auto-tuning pipeline (internal/autotune, internal/search) ----

// AutotuneConfig sizes the end-to-end tuning pipeline.
type AutotuneConfig = autotune.Config

// AutotuneOutcome is a completed tuning run.
type AutotuneOutcome = autotune.Outcome

// DefaultAutotuneConfig returns a balanced pipeline configuration.
func DefaultAutotuneConfig() AutotuneConfig { return autotune.Default() }

// Autotune runs the full pipeline: PWU surrogate building, heuristic
// search over the surrogate, measured verification of the winners.
func Autotune(p Problem, cfg AutotuneConfig, seed uint64) (*AutotuneOutcome, error) {
	return autotune.Tune(p, cfg, seed)
}

// SearchResult is a completed heuristic search over a space.
type SearchResult = search.Result

// SearchObjective is the minimised black-box function.
type SearchObjective = search.Objective

// RandomSearch, HillClimb and Anneal optimise an objective over a space
// within an evaluation budget; see internal/search for semantics.
func RandomSearch(sp *Space, obj SearchObjective, budget int, r *RNG) (*SearchResult, error) {
	return search.RandomSearch(sp, obj, budget, r)
}

// HillClimb runs restarted steepest-descent over level neighbourhoods.
func HillClimb(sp *Space, obj SearchObjective, budget int, r *RNG) (*SearchResult, error) {
	return search.HillClimb(sp, obj, budget, r)
}

// Anneal runs simulated annealing with a default schedule.
func Anneal(sp *Space, obj SearchObjective, budget int, r *RNG) (*SearchResult, error) {
	return search.Anneal(sp, obj, budget, search.AnnealConfig{}, r)
}

// ---- Uncertainty calibration (internal/calibration) ----

// CalibrationReport summarises how honest a model's σ estimates are.
type CalibrationReport = calibration.Report

// Calibrate evaluates (y, μ, σ) coverage and sharpness; see
// internal/calibration.
func Calibrate(y, mu, sigma []float64) (*CalibrationReport, error) {
	return calibration.Evaluate(y, mu, sigma)
}

// ---- Cross-platform transfer (internal/transfer) ----

// TransferConfig sizes a model-portability experiment.
type TransferConfig = transfer.Config

// TransferResult compares from-scratch and transferred target models.
type TransferResult = transfer.Result

// DefaultTransferConfig returns a moderate transfer experiment.
func DefaultTransferConfig() TransferConfig { return transfer.Default() }

// RunTransfer runs the paper's future-work portability experiment:
// reuse a source-platform model to cut target-platform labeling cost.
// Source and target must share a parameter space.
func RunTransfer(source, target Problem, cfg TransferConfig, seed uint64) (*TransferResult, error) {
	return transfer.Run(source, target, cfg, seed)
}
