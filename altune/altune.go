// Package altune is the public API of this repository: an active-learning
// toolkit for empirical performance modeling, reproducing "An Active
// Learning Method for Empirical Modeling in Performance Tuning"
// (Zhang, Zhou, Sun, Sun — IPDPS workshops 2020).
//
// The package re-exports the user-facing types of the internal
// implementation packages so that downstream code depends on one import:
//
//	sp := altune.MustNewSpace(
//	    altune.Num("tile", 16, 32, 64, 128),
//	    altune.Bool("vectorize"),
//	)
//	pool := sp.SampleConfigs(altune.NewRNG(1), 5000)
//	res, err := altune.Run(ctx, sp, pool, myEvaluator,
//	    altune.PWU{Alpha: 0.05}, altune.Params{NMax: 500}, altune.NewRNG(2), nil)
//
// The paper's 14 benchmarks (12 SPAPT kernels, kripke, hypre) are
// available through Benchmark/Benchmarks, and the full figure harness
// through RunStrategy/RunAll and the Scale presets.
package altune

import (
	"context"
	"io"

	"repro/internal/autotune"
	"repro/internal/bench"
	"repro/internal/calibration"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/forest"
	"repro/internal/gp"
	"repro/internal/machine"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/runstate"
	"repro/internal/search"
	"repro/internal/space"
	"repro/internal/transfer"
	"repro/internal/tuning"
)

// ---- Parameter spaces (internal/space) ----

// Space is a finite tunable parameter space.
type Space = space.Space

// Parameter is one dimension of a Space.
type Parameter = space.Parameter

// Config is a point in a Space: one level index per parameter.
type Config = space.Config

// Feature describes one encoded model input column.
type Feature = space.Feature

// Num constructs a numeric parameter with explicit levels.
func Num(name string, levels ...float64) Parameter { return space.Num(name, levels...) }

// NumRange constructs a numeric parameter with integer levels lo..hi.
func NumRange(name string, lo, hi, step int) Parameter { return space.NumRange(name, lo, hi, step) }

// Cat constructs a categorical parameter from level names.
func Cat(name string, names ...string) Parameter { return space.Cat(name, names...) }

// Bool constructs a boolean parameter.
func Bool(name string) Parameter { return space.Bool(name) }

// NewSpace validates parameters and builds a Space.
func NewSpace(params ...Parameter) (*Space, error) { return space.New(params...) }

// MustNewSpace is NewSpace but panics on error.
func MustNewSpace(params ...Parameter) *Space { return space.MustNew(params...) }

// ---- Randomness (internal/rng) ----

// RNG is the deterministic splittable generator used everywhere.
type RNG = rng.RNG

// NewRNG returns a generator for the given seed.
func NewRNG(seed uint64) *RNG { return rng.New(seed) }

// ---- Surrogate model (internal/forest) ----

// Forest is a random-forest regressor with per-prediction uncertainty.
type Forest = forest.Forest

// ForestConfig configures forest construction.
type ForestConfig = forest.Config

// Uncertainty estimator choices for ForestConfig.Uncertainty.
const (
	BetweenTrees  = forest.BetweenTrees
	TotalVariance = forest.TotalVariance
)

// FitForest trains a random forest on (X, y).
func FitForest(X [][]float64, y []float64, features []Feature, cfg ForestConfig, r *RNG) (*Forest, error) {
	return forest.Fit(X, y, features, cfg, r)
}

// LoadForest reads a forest serialized with Forest.Save, enabling model
// reuse across processes and machines.
func LoadForest(r io.Reader) (*Forest, error) { return forest.Load(r) }

// GP is the Gaussian-process comparator surrogate (see the paper's
// §II-B for why the random forest is preferred on these spaces).
type GP = gp.GP

// GPConfig configures GP fitting.
type GPConfig = gp.Config

// FitGP trains a Gaussian process on (X, y).
func FitGP(X [][]float64, y []float64, features []Feature, cfg GPConfig, r *RNG) (*GP, error) {
	return gp.Fit(X, y, features, cfg, r)
}

// GPFitter returns a Fitter that plugs the GP surrogate into Run, for
// surrogate ablations.
func GPFitter(cfg GPConfig) Fitter {
	return func(X [][]float64, y []float64, features []Feature, r *RNG) (Model, error) {
		return gp.Fit(X, y, features, cfg, r)
	}
}

// ---- Active learning (internal/core) ----

// Evaluator labels configurations with measured performance. Evaluate
// receives a context and may fail; see FailurePolicy for how failures
// are handled.
type Evaluator = core.Evaluator

// EvaluatorFunc adapts a function to Evaluator.
type EvaluatorFunc = core.EvaluatorFunc

// LegacyEvaluator is the context-free labeling contract for infallible
// evaluators; lift one into Run with AdaptEvaluator.
type LegacyEvaluator = core.LegacyEvaluator

// LegacyEvaluatorFunc adapts a function to LegacyEvaluator.
type LegacyEvaluatorFunc = core.LegacyEvaluatorFunc

// AdaptEvaluator lifts a LegacyEvaluator into the context-aware
// contract.
func AdaptEvaluator(ev LegacyEvaluator) Evaluator { return core.AdaptEvaluator(ev) }

// StatefulEvaluator is an Evaluator whose internal generator state can
// be captured in snapshots and restored on resume.
type StatefulEvaluator = core.StatefulEvaluator

// FailurePolicy governs transient evaluation failures (capped
// exponential-backoff retries, then skip or abort).
type FailurePolicy = core.FailurePolicy

// FailureAction selects skip-and-drop or abort once retries are spent.
type FailureAction = core.FailureAction

// The failure actions.
const (
	FailAbort = core.FailAbort
	FailSkip  = core.FailSkip
)

// Strategy selects the next batch of pool candidates.
type Strategy = core.Strategy

// Candidates is the strategy's view of the remaining pool.
type Candidates = core.Candidates

// Params are Algorithm 1's knobs (NInit/NBatch/NMax/Forest).
type Params = core.Params

// Result is a completed active-learning run, including per-iteration
// telemetry (Result.Stats) and the final RNG stream position.
type Result = core.Result

// IterStats is one iteration's telemetry (timings, retries, cache use).
type IterStats = core.IterStats

// RunStats aggregates IterStats over a run (see Result.Telemetry).
type RunStats = core.RunStats

// Selection is one recorded strategy decision (Params.RecordSelections).
type Selection = core.Selection

// Snapshot is the serializable state of a run at an iteration boundary;
// see Params.Checkpoint/CheckpointEvery, SaveSnapshot and Resume.
type Snapshot = core.Snapshot

// ErrPoolExhausted reports that failure skips emptied the pool before
// NMax labels were collected.
var ErrPoolExhausted = core.ErrPoolExhausted

// Model is the surrogate interface Algorithm 1 uses (implemented by
// Forest and the Gaussian-process comparator).
type Model = core.Model

// Fitter builds a surrogate from labeled data; set Params.Fitter to
// swap the random forest for another model.
type Fitter = core.Fitter

// State is the per-iteration snapshot passed to observers.
type State = core.State

// Observer is the per-iteration callback of Run.
type Observer = core.Observer

// The paper's sampling strategies.
type (
	// PWU is the paper's Performance Weighted Uncertainty strategy.
	PWU = core.PWU
	// PBUS is the two-stage baseline of Balaprakash et al. 2013.
	PBUS = core.PBUS
	// BRS samples randomly within the predicted-performance elite.
	BRS = core.BRS
	// BestPerf greedily picks the best predicted configurations.
	BestPerf = core.BestPerf
	// MaxU picks the most uncertain configurations.
	MaxU = core.MaxU
	// Random samples uniformly (the conventional baseline).
	Random = core.Random
	// EI is the Expected Improvement acquisition (SMAC-style
	// optimisation focus), included as an extension baseline.
	EI = core.EI
)

// Run executes the paper's Algorithm 1. Cancelling ctx drains the run
// at the next boundary and returns the partial Result with an error
// wrapping ctx.Err().
func Run(ctx context.Context, sp *Space, pool []Config, ev Evaluator, strat Strategy, params Params, r *RNG, obs Observer) (*Result, error) {
	return core.Run(ctx, sp, pool, ev, strat, params, r, obs)
}

// Resume continues a checkpointed run bit-identically from a Snapshot;
// the caller regenerates the deterministic inputs (space, pool,
// evaluator, strategy, params) exactly as in the original run.
func Resume(ctx context.Context, snap *Snapshot, sp *Space, pool []Config, ev Evaluator, strat Strategy, params Params, obs Observer) (*Result, error) {
	return core.Resume(ctx, snap, sp, pool, ev, strat, params, obs)
}

// SaveSnapshot writes a snapshot atomically to path (temp file +
// rename); LoadSnapshot reads it back. Params.Checkpoint set to
// SnapshotSink(path) persists every periodic checkpoint there.
func SaveSnapshot(path string, snap *Snapshot) error { return runstate.Save(path, snap) }

// LoadSnapshot reads a snapshot written by SaveSnapshot or SnapshotSink.
func LoadSnapshot(path string) (*Snapshot, error) { return runstate.Load(path) }

// SnapshotSink returns a Params.Checkpoint function persisting each
// snapshot atomically to path.
func SnapshotSink(path string) func(*Snapshot) error { return runstate.FileSink(path) }

// StrategyByName instantiates a registered strategy ("PWU", "PBUS",
// "BRS", "BestPerf", "MaxU", "Random", "CV").
func StrategyByName(name string, alpha float64) (Strategy, error) { return core.ByName(name, alpha) }

// StrategyNames lists the registered strategies in figure order.
func StrategyNames() []string { return core.StrategyNames() }

// ---- Metrics (internal/metrics) ----

// Curve is a learning curve over training-set sizes.
type Curve = metrics.Curve

// RMSEAtAlpha is the paper's Eq. 2: RMSE over the top-⌊nα⌋ samples.
func RMSEAtAlpha(y, yhat []float64, alpha float64) float64 {
	return metrics.RMSEAtAlpha(y, yhat, alpha)
}

// CumulativeCost is the paper's Eq. 3: total labeling time.
func CumulativeCost(y []float64) float64 { return metrics.CumulativeCost(y) }

// ---- Benchmarks (internal/bench, internal/dataset) ----

// Problem is one of the paper's benchmarks: space + performance model +
// noise profile.
type Problem = bench.Problem

// Benchmark returns the named benchmark ("adi" ... "mvt", "kripke",
// "hypre").
func Benchmark(name string) (Problem, error) { return bench.ByName(name) }

// Benchmarks returns all 14 problems (12 kernels, then the applications).
func Benchmarks() []Problem { return bench.All() }

// KernelBenchmarks returns the 12 SPAPT kernels.
func KernelBenchmarks() []Problem { return bench.Kernels() }

// ApplicationBenchmarks returns kripke and hypre.
func ApplicationBenchmarks() []Problem { return bench.Applications() }

// BenchmarkNames lists all benchmark names.
func BenchmarkNames() []string { return bench.Names() }

// Platform is a modeled execution platform (Table IV plus the
// transfer-experiment Platform C).
type Platform = machine.Platform

// PlatformA returns the Table IV kernel platform.
func PlatformA() *Platform { return machine.PlatformA() }

// PlatformB returns the Table IV application platform.
func PlatformB() *Platform { return machine.PlatformB() }

// PlatformC returns the extra platform used by transfer experiments.
func PlatformC() *Platform { return machine.PlatformC() }

// KernelOnPlatform returns a SPAPT kernel re-hosted on another platform,
// sharing its parameter space with the original — the target side of
// RunTransfer.
func KernelOnPlatform(name string, p *Platform) (Problem, error) {
	return bench.KernelOn(name, p)
}

// NoisyEvaluator measures a problem under its noise profile; it
// implements StatefulEvaluator, so noisy runs checkpoint and resume
// bit-identically.
type NoisyEvaluator = bench.NoisyEvaluator

// BenchmarkEvaluator wraps a problem as a noisy Evaluator following the
// paper's measurement protocol.
func BenchmarkEvaluator(p Problem, r *RNG) *NoisyEvaluator { return bench.Evaluator(p, r) }

// Dataset is a pool/test split with pre-measured test labels.
type Dataset = dataset.Dataset

// BuildDataset samples and labels a dataset for p; ctx cancels the test
// measurements.
func BuildDataset(ctx context.Context, p Problem, poolSize, testSize int, r *RNG) (*Dataset, error) {
	return dataset.Build(ctx, p, poolSize, testSize, r)
}

// ---- Experiment harness (internal/experiment) ----

// Scale bundles experiment sizes (pool, labels, repetitions, α, model).
type Scale = experiment.Scale

// CurveSet is a strategy's averaged RMSE@α and CC learning curves.
type CurveSet = experiment.CurveSet

// PaperScale returns the §III-D settings (7000/3000 split, 500 labels,
// 10 repetitions, α = 0.05).
func PaperScale() Scale { return experiment.Paper() }

// QuickScale returns a reduced scale preserving the experiment's shape.
func QuickScale() Scale { return experiment.Quick() }

// RunStrategy runs averaged repetitions of one strategy on one problem.
// Cancelling ctx drains the repetition workers and returns the partial
// curves alongside the error.
func RunStrategy(ctx context.Context, p Problem, strategyName string, sc Scale, seed uint64) (*CurveSet, error) {
	return experiment.RunStrategy(ctx, p, strategyName, sc, seed)
}

// RunAllStrategies runs several strategies on one problem.
func RunAllStrategies(ctx context.Context, p Problem, names []string, sc Scale, seed uint64) ([]*CurveSet, error) {
	return experiment.RunAll(ctx, p, names, sc, seed)
}

// ---- Tuning (internal/tuning) ----

// Annotator labels configurations during model-based tuning.
type Annotator = tuning.Annotator

// TuningParams configures a tuning run.
type TuningParams = tuning.Params

// TuningTrace is a best-so-far tuning curve.
type TuningTrace = tuning.Trace

// NewTrueAnnotator labels by measuring the benchmark.
func NewTrueAnnotator(p Problem, r *RNG) Annotator { return tuning.NewTrueAnnotator(p, r) }

// NewSurrogateAnnotator labels with a fitted surrogate's predictions.
func NewSurrogateAnnotator(sp *Space, model Model) Annotator {
	return tuning.NewSurrogateAnnotator(sp, model)
}

// Tune runs model-based tuning over a candidate set.
func Tune(p Problem, candidates []Config, ann Annotator, params TuningParams, r *RNG) (*TuningTrace, error) {
	return tuning.Run(p, candidates, ann, params, r)
}

// ---- Auto-tuning pipeline (internal/autotune, internal/search) ----

// AutotuneConfig sizes the end-to-end tuning pipeline.
type AutotuneConfig = autotune.Config

// AutotuneOutcome is a completed tuning run.
type AutotuneOutcome = autotune.Outcome

// DefaultAutotuneConfig returns a balanced pipeline configuration.
func DefaultAutotuneConfig() AutotuneConfig { return autotune.Default() }

// Autotune runs the full pipeline: PWU surrogate building, heuristic
// search over the surrogate, measured verification of the winners. With
// AutotuneConfig.CheckpointPath set, an interrupted model phase resumes
// from its snapshot on the next call.
func Autotune(ctx context.Context, p Problem, cfg AutotuneConfig, seed uint64) (*AutotuneOutcome, error) {
	return autotune.Tune(ctx, p, cfg, seed)
}

// SearchResult is a completed heuristic search over a space.
type SearchResult = search.Result

// SearchObjective is the minimised black-box function.
type SearchObjective = search.Objective

// RandomSearch, HillClimb and Anneal optimise an objective over a space
// within an evaluation budget; see internal/search for semantics.
func RandomSearch(sp *Space, obj SearchObjective, budget int, r *RNG) (*SearchResult, error) {
	return search.RandomSearch(sp, obj, budget, r)
}

// HillClimb runs restarted steepest-descent over level neighbourhoods.
func HillClimb(sp *Space, obj SearchObjective, budget int, r *RNG) (*SearchResult, error) {
	return search.HillClimb(sp, obj, budget, r)
}

// Anneal runs simulated annealing with a default schedule.
func Anneal(sp *Space, obj SearchObjective, budget int, r *RNG) (*SearchResult, error) {
	return search.Anneal(sp, obj, budget, search.AnnealConfig{}, r)
}

// ---- Uncertainty calibration (internal/calibration) ----

// CalibrationReport summarises how honest a model's σ estimates are.
type CalibrationReport = calibration.Report

// Calibrate evaluates (y, μ, σ) coverage and sharpness; see
// internal/calibration.
func Calibrate(y, mu, sigma []float64) (*CalibrationReport, error) {
	return calibration.Evaluate(y, mu, sigma)
}

// ---- Cross-platform transfer (internal/transfer) ----

// TransferConfig sizes a model-portability experiment.
type TransferConfig = transfer.Config

// TransferResult compares from-scratch and transferred target models.
type TransferResult = transfer.Result

// DefaultTransferConfig returns a moderate transfer experiment.
func DefaultTransferConfig() TransferConfig { return transfer.Default() }

// RunTransfer runs the paper's future-work portability experiment:
// reuse a source-platform model to cut target-platform labeling cost.
// Source and target must share a parameter space.
func RunTransfer(ctx context.Context, source, target Problem, cfg TransferConfig, seed uint64) (*TransferResult, error) {
	return transfer.Run(ctx, source, target, cfg, seed)
}
