package altune_test

import (
	"context"
	"fmt"

	"repro/altune"
)

// ExampleRun shows the paper's Algorithm 1 on a custom tuning problem:
// declare a space, provide an evaluator, and let PWU choose which
// configurations to measure.
func ExampleRun() {
	sp := altune.MustNewSpace(
		altune.Num("threads", 1, 2, 4, 8),
		altune.Bool("pin"),
	)
	ev := altune.AdaptEvaluator(altune.LegacyEvaluatorFunc(func(c altune.Config) float64 {
		t := 8 / sp.ValueByName(c, "threads")
		if sp.ValueByName(c, "pin") != 0 {
			t *= 0.9
		}
		return t + 0.1
	}))
	pool := sp.SampleConfigs(altune.NewRNG(1), 50)
	res, err := altune.Run(context.Background(), sp, pool, ev, altune.PWU{Alpha: 0.1},
		altune.Params{NInit: 5, NBatch: 5, NMax: 25,
			Forest: altune.ForestConfig{NumTrees: 16}},
		altune.NewRNG(2), nil)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("labeled:", len(res.TrainY))
	// Output:
	// labeled: 25
}

// ExamplePWU demonstrates the paper's Eq. 1 score directly: at equal
// uncertainty the faster (smaller μ) configuration scores higher, and at
// equal performance the more uncertain one does.
func ExamplePWU() {
	s := altune.PWU{Alpha: 0.05}
	fast, slow := s.Score(0.5, 0.1), s.Score(5.0, 0.1)
	fmt.Println("fast beats slow:", fast > slow)
	sure, unsure := s.Score(1, 0.05), s.Score(1, 0.5)
	fmt.Println("uncertain beats certain:", unsure > sure)
	// Output:
	// fast beats slow: true
	// uncertain beats certain: true
}

// ExampleBenchmark lists the paper's evaluation suite.
func ExampleBenchmark() {
	p, _ := altune.Benchmark("adi")
	fmt.Println(p.Name(), "on platform", p.Platform().Name)
	fmt.Println("benchmarks:", len(altune.Benchmarks()))
	// Output:
	// adi on platform A
	// benchmarks: 14
}

// ExampleRMSEAtAlpha computes the paper's Eq. 2 metric: error over the
// fastest ⌊nα⌋ samples only.
func ExampleRMSEAtAlpha() {
	y := []float64{1, 2, 100, 200} // two fast, two slow configurations
	pred := []float64{1, 2, 50, 50}
	fmt.Printf("top-half RMSE: %.1f\n", altune.RMSEAtAlpha(y, pred, 0.5))
	// Output:
	// top-half RMSE: 0.0
}
