package kripke

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/stats"
)

func TestTableIISpace(t *testing.T) {
	k := New()
	sp := k.Space()
	if sp.NumParams() != 5 {
		t.Fatalf("kripke has %d params, Table II lists 5", sp.NumParams())
	}
	layout, _ := sp.ByName("layout")
	if layout.Kind != space.Categorical || layout.NumLevels() != 6 {
		t.Fatalf("layout = %+v", layout)
	}
	gset, _ := sp.ByName("gset")
	if gset.NumLevels() != 8 || gset.Levels[0] != 1 || gset.Levels[7] != 128 {
		t.Fatalf("gset = %+v", gset)
	}
	dset, _ := sp.ByName("dset")
	if dset.NumLevels() != 3 {
		t.Fatalf("dset = %+v", dset)
	}
	pm, _ := sp.ByName("pmethod")
	if pm.Kind != space.Categorical || pm.NumLevels() != 2 {
		t.Fatalf("pmethod = %+v", pm)
	}
	procs, _ := sp.ByName("#process")
	if procs.NumLevels() != 8 || procs.Levels[7] != 128 {
		t.Fatalf("#process = %+v", procs)
	}
	// Total: 6*8*3*2*8 = 2304 configurations.
	if card, ok := sp.Cardinality(); !ok || card != 2304 {
		t.Fatalf("cardinality = %d", card)
	}
}

func TestPlatformB(t *testing.T) {
	k := New()
	if k.Platform().Name != "B" {
		t.Fatalf("kripke runs on platform %s, want B", k.Platform().Name)
	}
	if k.Name() != "kripke" || k.Description() == "" {
		t.Fatal("bad name/description")
	}
}

func TestDecompose(t *testing.T) {
	cases := []struct{ p, want int }{
		{1, 1}, {2, 2}, {4, 4}, {8, 8}, {16, 16}, {32, 32}, {64, 64}, {128, 128},
	}
	for _, c := range cases {
		px, py, pz := decompose(c.p)
		if px*py*pz != c.want {
			t.Fatalf("decompose(%d) = %d*%d*%d", c.p, px, py, pz)
		}
		// Balanced: max/min dimension ratio at most 2.
		mx := math.Max(float64(px), math.Max(float64(py), float64(pz)))
		mn := math.Min(float64(px), math.Min(float64(py), float64(pz)))
		if mx/mn > 2.01 && c.p >= 8 {
			t.Fatalf("decompose(%d) unbalanced: %d %d %d", c.p, px, py, pz)
		}
	}
}

func TestTrueTimePositiveFinite(t *testing.T) {
	k := New()
	for _, c := range k.Space().Enumerate() {
		y := k.TrueTime(c)
		if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("TrueTime(%s) = %v", k.Space().String(c), y)
		}
	}
}

func TestStrongScaling(t *testing.T) {
	// With a good configuration, more processes must be faster over the
	// powers of two up to 128, but with sub-linear speedup.
	k := New()
	sp := k.Space()
	mk := func(procLevel int) space.Config {
		c := make(space.Config, sp.NumParams())
		c[sp.IndexOf("layout")] = 0  // DGZ
		c[sp.IndexOf("gset")] = 3    // 8
		c[sp.IndexOf("dset")] = 1    // 16
		c[sp.IndexOf("pmethod")] = 0 // sweep
		c[sp.IndexOf("#process")] = procLevel
		return c
	}
	t1 := k.TrueTime(mk(0))
	t128 := k.TrueTime(mk(7))
	speedup := t1 / t128
	if speedup < 8 {
		t.Fatalf("128-rank speedup only %.1fx", speedup)
	}
	if speedup > 128 {
		t.Fatalf("super-linear speedup %.1fx", speedup)
	}
	// Monotone decrease across the ladder.
	prev := math.Inf(1)
	for lvl := 0; lvl < 8; lvl++ {
		cur := k.TrueTime(mk(lvl))
		if cur >= prev {
			t.Fatalf("time rose at process level %d: %v -> %v", lvl, prev, cur)
		}
		prev = cur
	}
}

func TestLayoutMatters(t *testing.T) {
	// Zone-innermost layouts (…Z) should beat direction-innermost (…D)
	// for the zone-streaming sweep.
	k := New()
	sp := k.Space()
	mk := func(layoutLevel int) space.Config {
		c := make(space.Config, sp.NumParams())
		c[sp.IndexOf("layout")] = layoutLevel
		c[sp.IndexOf("gset")] = 3
		c[sp.IndexOf("dset")] = 0
		c[sp.IndexOf("pmethod")] = 0
		c[sp.IndexOf("#process")] = 5
		return c
	}
	dgz := k.TrueTime(mk(0)) // DGZ: zones innermost
	zgd := k.TrueTime(mk(5)) // ZGD: directions innermost
	if dgz >= zgd {
		t.Fatalf("layout has no effect: DGZ %v vs ZGD %v", dgz, zgd)
	}
}

func TestPMethodTradeoff(t *testing.T) {
	// Both methods must be competitive somewhere: sweep wins at low rank
	// counts (no extra iterations), and bj must not always lose, else the
	// parameter is dead.
	k := New()
	sp := k.Space()
	mk := func(pm, procLevel, gsetLevel int) space.Config {
		c := make(space.Config, sp.NumParams())
		c[sp.IndexOf("layout")] = 0
		c[sp.IndexOf("gset")] = gsetLevel
		c[sp.IndexOf("dset")] = 1
		c[sp.IndexOf("pmethod")] = pm
		c[sp.IndexOf("#process")] = procLevel
		return c
	}
	if s, b := k.TrueTime(mk(0, 0, 3)), k.TrueTime(mk(1, 0, 3)); s >= b {
		t.Fatalf("sweep should win serial: sweep %v vs bj %v", s, b)
	}
	// Find at least one configuration where bj beats sweep.
	found := false
	for _, c := range sp.Enumerate() {
		if sp.NameOf(c, sp.IndexOf("pmethod")) != "sweep" {
			continue
		}
		cb := c.Clone()
		cb[sp.IndexOf("pmethod")] = 1
		if k.TrueTime(cb) < k.TrueTime(c) {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("bj never wins anywhere; pmethod is a dead parameter")
	}
}

func TestGsetDsetTradeoff(t *testing.T) {
	// Under sweep at high rank counts, the extremes of block granularity
	// should be worse than some middle setting (KBA pipeline trade-off)
	// or at least the parameter must matter.
	k := New()
	sp := k.Space()
	mk := func(gsetLevel, dsetLevel int) space.Config {
		c := make(space.Config, sp.NumParams())
		c[sp.IndexOf("layout")] = 0
		c[sp.IndexOf("gset")] = gsetLevel
		c[sp.IndexOf("dset")] = dsetLevel
		c[sp.IndexOf("pmethod")] = 0
		c[sp.IndexOf("#process")] = 7
		return c
	}
	coarse := k.TrueTime(mk(0, 0))
	fine := k.TrueTime(mk(7, 2))
	mid := k.TrueTime(mk(3, 1))
	if mid >= coarse && mid >= fine {
		t.Fatalf("no granularity sweet spot: coarse %v mid %v fine %v", coarse, mid, fine)
	}
	if coarse == fine && fine == mid {
		t.Fatal("gset/dset are dead parameters")
	}
}

func TestDynamicRange(t *testing.T) {
	k := New()
	var times []float64
	for _, c := range k.Space().Enumerate() {
		times = append(times, k.TrueTime(c))
	}
	ratio := stats.Max(times) / stats.Min(times)
	if ratio < 5 {
		t.Fatalf("dynamic range %.1fx too flat", ratio)
	}
	if stats.Min(times) < 0.5 || stats.Max(times) > 5000 {
		t.Fatalf("times [%v, %v] implausible for an MPI mini-app", stats.Min(times), stats.Max(times))
	}
}

func TestDeterministic(t *testing.T) {
	k := New()
	c := k.Space().SampleConfig(rng.New(1))
	if k.TrueTime(c) != k.TrueTime(c) {
		t.Fatal("TrueTime not deterministic")
	}
}
