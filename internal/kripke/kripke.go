// Package kripke models the kripke mini-app (Kunen, Bailey, Brown 2015),
// the LLNL proxy for a discrete-ordinates (Sₙ) particle-transport sweep
// code, with the tunable parameters of the paper's Table II:
//
//	layout   — nesting order of Directions/Groups/Zones in memory
//	           (DGZ, DZG, GDZ, GZD, ZDG, ZGD)
//	gset     — number of energy-group sets (1..128)
//	dset     — number of direction sets (8, 16, 32)
//	pmethod  — parallel solve method: "sweep" (KBA pipelined wavefront)
//	           or "bj" (block Jacobi)
//	#process — MPI ranks (1..128)
//
// The real kripke runs on an MPI cluster (the paper's Platform B). Here
// TrueTime computes the time from an analytic model of the same
// structure:
//
//   - The zone work per rank is fixed by the 3-D domain decomposition.
//   - The data layout sets the innermost memory stride of the sweep
//     kernel; layouts with zones innermost (DGZ, GDZ) stream best for
//     the zone-major sweep loop, direction-innermost layouts stride
//     badly. gset/dset change the block sizes the kernel works on and
//     therefore the cache behaviour and vector fill.
//   - "sweep" pays the KBA pipeline-fill latency: with a Px×Py×Pz rank
//     grid the wavefront needs Px+Py+Pz-2 stages before all ranks are
//     busy, and gset*dset angle/group blocks pipeline through it; many
//     small blocks fill the pipeline nicely but send many small
//     messages (α-dominated), few large blocks send cheap messages but
//     leave the pipeline draining (the classic KBA trade-off).
//   - "bj" (block Jacobi) avoids the wavefront sync but needs more
//     solver iterations to converge.
//
// See DESIGN.md §2 for the substitution argument.
package kripke

import (
	"math"

	"repro/internal/machine"
	"repro/internal/space"
)

// Problem-scale constants: total zones, energy groups and directions of
// the modeled input deck (kripke defaults: 16³ zones per rank at 128
// ranks scale, 64 groups, 96 directions).
const (
	totalZones = 256 * 192 * 128
	numGroups  = 64
	numDirs    = 96

	// flopsPerUnknown is the sweep work per (zone, direction, group).
	flopsPerUnknown = 45

	// bytesPerUnknown is the sweep memory traffic per unknown.
	bytesPerUnknown = 28
)

// Layouts are the six data nesting orders of Table II.
var Layouts = []string{"DGZ", "DZG", "GDZ", "GZD", "ZDG", "ZGD"}

// Kripke is the modeled application benchmark.
type Kripke struct {
	space    *space.Space
	platform *machine.Platform
}

// New returns the kripke benchmark on Platform B.
func New() *Kripke {
	sp := space.MustNew(
		space.Cat("layout", Layouts...),
		space.Num("gset", 1, 2, 4, 8, 16, 32, 64, 128),
		space.Num("dset", 8, 16, 32),
		space.Cat("pmethod", "sweep", "bj"),
		space.Num("#process", 1, 2, 4, 8, 16, 32, 64, 128),
	)
	return &Kripke{space: sp, platform: machine.PlatformB()}
}

// Name returns "kripke".
func (k *Kripke) Name() string { return "kripke" }

// Description returns a one-line description.
func (k *Kripke) Description() string {
	return "LLNL discrete-ordinates transport proxy (Table II parameters)"
}

// Space returns the Table II parameter space.
func (k *Kripke) Space() *space.Space { return k.space }

// Platform returns Platform B.
func (k *Kripke) Platform() *machine.Platform { return k.platform }

// decompose splits p ranks into a 3-D grid Px×Py×Pz as balanced as
// possible (kripke's default processor layout).
func decompose(p int) (px, py, pz int) {
	px, py, pz = 1, 1, 1
	for p > 1 {
		// Assign the next factor of 2 to the smallest dimension.
		switch {
		case px <= py && px <= pz:
			px *= 2
		case py <= pz:
			py *= 2
		default:
			pz *= 2
		}
		p /= 2
	}
	return px, py, pz
}

// strideEfficiency returns the memory-stream efficiency of the sweep
// kernel under the given layout. The sweep iterates zones in the inner
// dimension; layouts that keep zones contiguous (…Z) stream at full
// bandwidth, group-innermost are intermediate, direction-innermost
// gather-scatter badly.
func strideEfficiency(layout string) float64 {
	switch layout[len(layout)-1] {
	case 'Z':
		return 1.0
	case 'G':
		return 0.55
	default: // 'D'
		return 0.35
	}
}

// vectorFill returns the SIMD utilisation of the sweep under the layout
// and direction-set size: direction-innermost layouts vectorise over
// directions (good with large dsets), zone-innermost over zones (always
// long enough).
func vectorFill(layout string, dsetSize float64) float64 {
	switch layout[len(layout)-1] {
	case 'D':
		return math.Min(1, dsetSize/16)
	case 'Z':
		return 0.9
	default:
		return 0.6
	}
}

// TrueTime returns the modeled noise-free wall time in seconds of one
// kripke solve under configuration c.
func (k *Kripke) TrueTime(c space.Config) float64 {
	p := k.platform
	layout := k.space.NameOf(c, k.space.IndexOf("layout"))
	gset := k.space.ValueByName(c, "gset")
	dset := k.space.ValueByName(c, "dset")
	pmethod := k.space.NameOf(c, k.space.IndexOf("pmethod"))
	procs := int(k.space.ValueByName(c, "#process"))

	px, py, pz := decompose(procs)
	zonesPerRank := float64(totalZones) / float64(procs)

	// Block structure: gset group-sets × dset direction-sets pipeline
	// through the sweep. (kripke semantics: gset = number of group sets,
	// dset = number of direction sets; each block holds groups/gset
	// groups and dirs/dset directions.)
	groupsPerSet := float64(numGroups) / gset
	if groupsPerSet < 1 {
		groupsPerSet = 1
	}
	dirsPerSet := float64(numDirs) / dset
	if dirsPerSet < 1 {
		dirsPerSet = 1
	}
	numBlocks := gset * dset

	// --- Per-rank sweep kernel time for the whole angular/group space.
	unknowns := zonesPerRank * float64(numGroups) * float64(numDirs)
	flops := unknowns * flopsPerUnknown

	// Cache behaviour: the kernel's working set is one block's zone
	// pencil times the block's groups×directions.
	wsBytes := math.Cbrt(zonesPerRank) * math.Cbrt(zonesPerRank) * groupsPerSet * dirsPerSet * 8
	traffic := unknowns * bytesPerUnknown
	memT := p.MemTime(traffic, wsBytes, strideEfficiency(layout))

	compT := p.ComputeTime(flops, 0.55) / p.VectorSpeedup(0.8*vectorFill(layout, dirsPerSet))

	// Small blocks add per-block kernel launch overhead.
	blockOverhead := float64(numBlocks) * math.Cbrt(zonesPerRank) * 2e-7

	kernelT := math.Max(compT, memT) + 0.3*math.Min(compT, memT) + blockOverhead

	// --- Communication and parallel structure.
	var commT, idleT float64
	faceBytes := math.Pow(zonesPerRank, 2.0/3.0) * groupsPerSet * dirsPerSet * 8
	iterations := 1.0
	if pmethod == "sweep" {
		// KBA: pipeline of numBlocks block-sweeps over a Px+Py+Pz-2
		// stage wavefront; each stage sends one face message per
		// neighbour (3 downstream faces).
		stages := float64(px+py+pz) - 2
		perBlockComm := 3 * p.Net.MessageTime(faceBytes)
		commT = float64(numBlocks) * perBlockComm
		// Pipeline fill/drain: the first block reaches the last rank
		// after `stages` block-steps; work per block-step is
		// kernelT/numBlocks.
		idleT = stages * (kernelT/float64(numBlocks) + perBlockComm)
	} else {
		// Block Jacobi: no wavefront, but the transport iteration
		// converges more slowly — extra full sweeps of local work, with
		// one halo exchange per iteration (6 faces).
		iterations = 2.4
		commT = iterations * 6 * p.Net.MessageTime(faceBytes*float64(numBlocks)/4)
	}

	// Fixed setup plus per-rank MPI startup.
	setup := 0.4 + 0.02*math.Log2(float64(procs)+1)

	return setup + iterations*kernelT + commT + idleT
}
