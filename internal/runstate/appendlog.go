package runstate

// AppendLog is the write-ahead half of the package: where Save/Load
// persist one whole snapshot atomically, AppendLog persists a *sequence*
// of records durably — each Append is framed, checksummed and fsync'd
// before it returns, so a reader after any crash sees every
// acknowledged record intact plus at most one torn tail, which Replay
// detects and skips.
//
// Record frame (one line per record, payloads must be newline-free —
// canonical JSON is):
//
//	al1 <len> <fnv1a-64 hex, 16 digits> <payload>\n
//
// A record is valid only if the whole frame parses, the length matches
// and the checksum of the payload bytes matches. Replay stops at the
// first invalid frame and reports the remaining bytes as the torn
// tail: under the append-only crash model only the tail can be torn,
// so anything after a damaged frame is unrecoverable debris from the
// same interrupted write.

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strconv"
)

// logMagic tags every record frame with the format version.
const logMagic = "al1"

// AppendLog is a durable append-only record log. It is not safe for
// concurrent use; callers serialize Append (the fleet coordinator
// appends under its own mutex).
type AppendLog struct {
	f    *os.File
	path string
}

// OpenAppendLog opens (creating if absent) the log at path for
// appending, and fsyncs the parent directory so the file's existence
// survives a crash.
func OpenAppendLog(path string) (*AppendLog, error) {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("runstate: opening append log: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &AppendLog{f: f, path: path}, nil
}

// Path returns the log's file path.
func (l *AppendLog) Path() string { return l.path }

// Append frames, writes and fsyncs one record. When it returns nil the
// record is durable: any later Replay recovers it. Payloads must be
// newline-free (canonical JSON is).
func (l *AppendLog) Append(payload []byte) error {
	if bytes.IndexByte(payload, '\n') >= 0 {
		return errors.New("runstate: append-log payload contains a newline")
	}
	h := fnv.New64a()
	_, _ = h.Write(payload)
	var buf bytes.Buffer
	buf.Grow(len(payload) + 32)
	fmt.Fprintf(&buf, "%s %d %016x ", logMagic, len(payload), h.Sum64())
	buf.Write(payload)
	buf.WriteByte('\n')
	if _, err := l.f.Write(buf.Bytes()); err != nil {
		return fmt.Errorf("runstate: appending record: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("runstate: syncing append log: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (l *AppendLog) Close() error { return l.f.Close() }

// ReplayLog reads every intact record of the log at path in append
// order. torn reports the number of trailing bytes that did not form a
// complete valid record — the signature of a crash mid-append — which
// are skipped, never guessed at. A missing file is not an error: it
// replays as zero records.
func ReplayLog(path string) (recs [][]byte, torn int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("runstate: reading append log: %w", err)
	}
	off := 0
	for off < len(data) {
		payload, n := parseRecord(data[off:])
		if n == 0 {
			return recs, len(data) - off, nil
		}
		recs = append(recs, payload)
		off += n
	}
	return recs, 0, nil
}

// parseRecord decodes one frame from the head of b. It returns the
// payload and the total frame length, or (nil, 0) when the head is not
// a complete valid frame.
func parseRecord(b []byte) ([]byte, int) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return nil, 0 // no terminator: torn tail
	}
	line := b[:nl]
	rest, ok := bytes.CutPrefix(line, []byte(logMagic+" "))
	if !ok {
		return nil, 0
	}
	sp := bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return nil, 0
	}
	size, err := strconv.Atoi(string(rest[:sp]))
	if err != nil || size < 0 {
		return nil, 0
	}
	rest = rest[sp+1:]
	if len(rest) < 17 || rest[16] != ' ' {
		return nil, 0
	}
	sum, err := strconv.ParseUint(string(rest[:16]), 16, 64)
	if err != nil {
		return nil, 0
	}
	payload := rest[17:]
	if len(payload) != size {
		return nil, 0
	}
	h := fnv.New64a()
	_, _ = h.Write(payload)
	if h.Sum64() != sum {
		return nil, 0
	}
	out := make([]byte, size)
	copy(out, payload)
	return out, nl + 1
}
