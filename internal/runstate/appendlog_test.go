package runstate

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func logRecords(n int) [][]byte {
	recs := make([][]byte, n)
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf(`{"op":"rec","i":%d,"pad":"%032d"}`, i, i))
	}
	return recs
}

func writeLog(t *testing.T, path string, recs [][]byte) {
	t.Helper()
	l, err := OpenAppendLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.wal")
	want := logRecords(7)
	writeLog(t, path, want)
	got, torn, err := ReplayLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn != 0 {
		t.Fatalf("torn = %d on a clean log", torn)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestAppendLogMissingFileReplaysEmpty(t *testing.T) {
	recs, torn, err := ReplayLog(filepath.Join(t.TempDir(), "absent.wal"))
	if err != nil || torn != 0 || len(recs) != 0 {
		t.Fatalf("missing log: recs=%d torn=%d err=%v", len(recs), torn, err)
	}
}

func TestAppendLogRejectsNewlinePayload(t *testing.T) {
	l, err := OpenAppendLog(filepath.Join(t.TempDir(), "a.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append([]byte("a\nb")); err == nil {
		t.Fatal("newline payload accepted")
	}
}

// TestAppendLogTruncateEveryOffset is the crash-injection property the
// fleet journal's recovery relies on: for EVERY possible truncation
// point of the log file — the shape of a crash mid-append — replay
// recovers exactly the records whose frames survive complete, flags
// the torn tail (if any), and never yields a corrupted record. This is
// the append-log analogue of TestCrashMidWriteKeepsPreviousCheckpoint.
func TestAppendLogTruncateEveryOffset(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.wal")
	want := logRecords(5)
	writeLog(t, full, want)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}

	// Frame boundaries: prefix lengths at which 0,1,2,... records are
	// complete.
	var bounds []int
	off := 0
	bounds = append(bounds, 0)
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			t.Fatal("unterminated frame in a clean log")
		}
		off += nl + 1
		bounds = append(bounds, off)
	}

	intactAt := func(cut int) int {
		n := 0
		for _, b := range bounds[1:] {
			if b <= cut {
				n++
			}
		}
		return n
	}

	trunc := filepath.Join(dir, "trunc.wal")
	for cut := 0; cut <= len(data); cut++ {
		if err := os.WriteFile(trunc, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, torn, err := ReplayLog(trunc)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		wantN := intactAt(cut)
		if len(recs) != wantN {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(recs), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !bytes.Equal(recs[i], want[i]) {
				t.Fatalf("cut=%d: record %d corrupted: %q", cut, i, recs[i])
			}
		}
		wantTorn := cut - bounds[wantN]
		if torn != wantTorn {
			t.Fatalf("cut=%d: torn = %d, want %d", cut, torn, wantTorn)
		}
	}
}

// TestAppendLogGarbageTailSkipped covers damage beyond truncation: a
// tail overwritten with garbage (bit rot, a partially flushed block)
// must be skipped without surfacing bogus records.
func TestAppendLogGarbageTailSkipped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.wal")
	want := logRecords(3)
	writeLog(t, path, want)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("al1 9999 00zz not a frame"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, torn, err := ReplayLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 || torn == 0 {
		t.Fatalf("recs=%d torn=%d, want 3 records and a flagged tail", len(recs), torn)
	}
}

// TestAppendLogReopenAppends proves a reopened log continues where it
// left off — the coordinator restart path.
func TestAppendLogReopenAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.wal")
	writeLog(t, path, logRecords(2))
	writeLog(t, path, [][]byte{[]byte(`{"op":"late"}`)})
	recs, torn, err := ReplayLog(path)
	if err != nil || torn != 0 {
		t.Fatalf("replay: torn=%d err=%v", torn, err)
	}
	if len(recs) != 3 || string(recs[2]) != `{"op":"late"}` {
		t.Fatalf("reopened log lost records: %d", len(recs))
	}
}
