// Package runstate persists core.Snapshot checkpoints to disk.
//
// The sink writes atomically (temp file + fsync + rename in the
// destination directory, then an fsync of the directory itself so the
// rename is durable), so a crash mid-write can never corrupt the
// previous checkpoint: the file at the configured path is always either
// the old complete snapshot or the new complete snapshot.
//
// Load distinguishes a damaged checkpoint (ErrCorrupt, ErrTruncated)
// from an unreadable one, so callers can decide to fall back to a cold
// start instead of refusing to run.
package runstate

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// ErrCorrupt marks a checkpoint file whose contents do not decode as a
// snapshot — typically a file damaged after it was written, since the
// atomic write never publishes a partial one.
var ErrCorrupt = errors.New("runstate: checkpoint corrupt")

// ErrTruncated marks a checkpoint file that ends mid-document — the
// torn-write shape of corruption, reported separately because it is the
// signature of a crashed filesystem rather than a stray edit.
var ErrTruncated = errors.New("runstate: checkpoint truncated")

// FileSink returns a core.Params.Checkpoint function that persists each
// snapshot atomically to path. The parent directory must exist.
func FileSink(path string) func(*core.Snapshot) error {
	return func(snap *core.Snapshot) error {
		return Save(path, snap)
	}
}

// Save writes the snapshot atomically to path: temp file in the same
// directory, fsync, rename over path, then fsync the directory so the
// rename itself survives a power loss.
func Save(path string, snap *core.Snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("runstate: encoding snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("runstate: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the previous
	// checkpoint at path is untouched until the final rename.
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runstate: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runstate: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runstate: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runstate: publishing snapshot: %w", err)
	}
	return syncDir(dir)
}

// syncDir makes a just-published rename durable. Platforms whose
// directories cannot be fsynced (the open or sync fails with a
// not-supported error) fall back to the rename's own guarantees.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, os.ErrInvalid) {
		return fmt.Errorf("runstate: syncing directory %s: %w", dir, err)
	}
	return nil
}

// Load reads a snapshot previously written by Save/FileSink. A file
// that does not decode reports ErrCorrupt; one that ends mid-document
// reports ErrTruncated (which also satisfies errors.Is(err, ErrCorrupt),
// so a single check catches both). Read failures — including a missing
// file — pass through the underlying error.
func Load(path string) (*core.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstate: reading snapshot: %w", err)
	}
	var snap core.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		var syntax *json.SyntaxError
		if errors.As(err, &syntax) && syntax.Offset >= int64(len(data)) {
			return nil, fmt.Errorf("%w (%w): %s after %d bytes: %v", ErrCorrupt, ErrTruncated, path, len(data), err)
		}
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, path, err)
	}
	return &snap, nil
}
