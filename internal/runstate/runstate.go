// Package runstate persists core.Snapshot checkpoints to disk.
//
// The sink writes atomically (temp file + rename in the destination
// directory), so a crash mid-write can never corrupt the previous
// checkpoint: the file at the configured path is always either the old
// complete snapshot or the new complete snapshot.
package runstate

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// FileSink returns a core.Params.Checkpoint function that persists each
// snapshot atomically to path. The parent directory must exist.
func FileSink(path string) func(*core.Snapshot) error {
	return func(snap *core.Snapshot) error {
		return Save(path, snap)
	}
}

// Save writes the snapshot atomically to path.
func Save(path string, snap *core.Snapshot) error {
	data, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("runstate: encoding snapshot: %w", err)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("runstate: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure from here on removes the temp file; the previous
	// checkpoint at path is untouched until the final rename.
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runstate: writing snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("runstate: syncing snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runstate: closing snapshot: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("runstate: publishing snapshot: %w", err)
	}
	return nil
}

// Load reads a snapshot previously written by Save/FileSink.
func Load(path string) (*core.Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("runstate: reading snapshot: %w", err)
	}
	var snap core.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("runstate: decoding %s: %w", path, err)
	}
	return &snap, nil
}
