package runstate

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/space"
)

func sampleSnapshot() *core.Snapshot {
	st := rng.New(7).State()
	return &core.Snapshot{
		Version:      1,
		Iteration:    3,
		PoolSize:     100,
		PoolHash:     0xdeadbeef,
		Remaining:    []int{0, 2, 5},
		TrainConfigs: []space.Config{{1, 2}, {3, 4}},
		TrainY:       []float64{0.5, 1.25},
		RNG:          st,
		Model:        json.RawMessage(`{"trees":null}`),
		FailedCost:   0.75,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	snap := sampleSnapshot()
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("round trip changed snapshot:\n%+v\n%+v", snap, got)
	}
}

func TestFileSinkOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	sink := FileSink(path)
	first := sampleSnapshot()
	if err := sink(first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot()
	second.Iteration = 9
	if err := sink(second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 9 {
		t.Fatalf("loaded iteration %d, want the newer snapshot", got.Iteration)
	}
	// No temp files survive a successful publish.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestSaveMissingDirFails(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.ckpt"), sampleSnapshot()); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}

// TestLoadClassifiesCorruption pins the typed errors: garbage reports
// ErrCorrupt, a torn write additionally reports ErrTruncated, and a
// missing file reports neither (callers must not cold-start over a
// checkpoint they merely failed to open).
func TestLoadClassifiesCorruption(t *testing.T) {
	dir := t.TempDir()
	garbage := filepath.Join(dir, "garbage.ckpt")
	if err := os.WriteFile(garbage, []byte("%%% not json %%%"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(garbage)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage load: %v, want ErrCorrupt", err)
	}
	if errors.Is(err, ErrTruncated) {
		t.Fatalf("garbage load reported truncation: %v", err)
	}

	full := filepath.Join(dir, "full.ckpt")
	if err := Save(full, sampleSnapshot()); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, "torn.ckpt")
	if err := os.WriteFile(torn, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = Load(torn)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn load: %v, want ErrTruncated", err)
	}
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("torn load must also satisfy ErrCorrupt, got: %v", err)
	}

	empty := filepath.Join(dir, "empty.ckpt")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(empty); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty load: %v, want ErrTruncated", err)
	}

	if _, err := Load(filepath.Join(dir, "absent.ckpt")); errors.Is(err, ErrCorrupt) {
		t.Fatalf("missing file classified as corruption: %v", err)
	}
}

// TestCrashMidWriteKeepsPreviousCheckpoint simulates every crash point
// of a checkpoint update — a torn temp file next to the published
// checkpoint, and a dangling temp never renamed — and checks the
// previous complete snapshot always survives and loads.
func TestCrashMidWriteKeepsPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	prev := sampleSnapshot()
	if err := Save(path, prev); err != nil {
		t.Fatal(err)
	}

	// Crash shape 1: the process dies mid-write, leaving a partial temp
	// file that never reached its fsync or rename.
	next := sampleSnapshot()
	next.Iteration = 12
	data, err := json.Marshal(next)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(data) / 2, len(data) - 1} {
		tmp := filepath.Join(dir, "run.ckpt.tmp-crash")
		if err := os.WriteFile(tmp, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatalf("cut=%d: previous checkpoint unreadable after simulated crash: %v", cut, err)
		}
		if got.Iteration != prev.Iteration {
			t.Fatalf("cut=%d: loaded iteration %d, want the surviving previous snapshot", cut, got.Iteration)
		}
		os.Remove(tmp)
	}

	// Crash shape 2: the next Save wins the race and later loads see the
	// newer snapshot even with stale temp debris around.
	stale := filepath.Join(dir, "run.ckpt.tmp-stale")
	if err := os.WriteFile(stale, data[:3], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Save(path, next); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 12 {
		t.Fatalf("loaded iteration %d after recovery save, want 12", got.Iteration)
	}
}
