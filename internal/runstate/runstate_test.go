package runstate

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/space"
)

func sampleSnapshot() *core.Snapshot {
	st := rng.New(7).State()
	return &core.Snapshot{
		Version:      1,
		Iteration:    3,
		PoolSize:     100,
		PoolHash:     0xdeadbeef,
		Remaining:    []int{0, 2, 5},
		TrainConfigs: []space.Config{{1, 2}, {3, 4}},
		TrainY:       []float64{0.5, 1.25},
		RNG:          st,
		Model:        json.RawMessage(`{"trees":null}`),
		FailedCost:   0.75,
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.ckpt")
	snap := sampleSnapshot()
	if err := Save(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatalf("round trip changed snapshot:\n%+v\n%+v", snap, got)
	}
}

func TestFileSinkOverwritesAtomically(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	sink := FileSink(path)
	first := sampleSnapshot()
	if err := sink(first); err != nil {
		t.Fatal(err)
	}
	second := sampleSnapshot()
	second.Iteration = 9
	if err := sink(second); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Iteration != 9 {
		t.Fatalf("loaded iteration %d, want the newer snapshot", got.Iteration)
	}
	// No temp files survive a successful publish.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
}

func TestSaveMissingDirFails(t *testing.T) {
	if err := Save(filepath.Join(t.TempDir(), "no", "such", "dir", "x.ckpt"), sampleSnapshot()); err == nil {
		t.Fatal("save into a missing directory succeeded")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.ckpt")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("garbage snapshot accepted")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.ckpt")); err == nil {
		t.Fatal("missing snapshot accepted")
	}
}
