// Package tuning implements the paper's Fig. 8 case study: model-based
// performance tuning with two kinds of annotators.
//
// Both tuners run the same loop — fit a random forest to the labeled
// samples, pick the candidate with the best (smallest) predicted time,
// label it, repeat — and differ only in the annotator:
//
//   - the *true annotator* ("direct tuning") executes the program, i.e.
//     queries the benchmark's noisy measurement;
//   - the *surrogate annotator* asks a pre-built surrogate model for its
//     prediction instead, making thousands of annotations essentially
//     free.
//
// The tracked quantity is the true execution time of the best
// configuration found so far, as a function of tuning iterations — the
// two curves of Fig. 8.
package tuning

import (
	"context"
	"fmt"
	"math"

	"repro/internal/bench"
	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
)

// Annotator labels configurations during tuning.
type Annotator interface {
	// Annotate returns the observation used as the label of c.
	Annotate(c space.Config) float64

	// Name identifies the annotator in figures.
	Name() string
}

// TrueAnnotator labels by (noisy) measurement of the benchmark — the
// ground-truth tuner.
type TrueAnnotator struct {
	ev *bench.NoisyEvaluator
}

// NewTrueAnnotator builds the ground-truth annotator for p, drawing
// measurement noise from r.
func NewTrueAnnotator(p bench.Problem, r *rng.RNG) *TrueAnnotator {
	return &TrueAnnotator{ev: bench.Evaluator(p, r)}
}

// Annotate implements Annotator. The simulated measurement cannot fail
// under a background context.
func (a *TrueAnnotator) Annotate(c space.Config) float64 {
	y, _ := a.ev.Evaluate(context.Background(), c)
	return y
}

// Name implements Annotator.
func (a *TrueAnnotator) Name() string { return "ground truth" }

// Predictor is the slice of the surrogate interface the annotator needs.
type Predictor interface {
	Predict(x []float64) float64
}

// SurrogateAnnotator labels with a fitted surrogate's prediction.
type SurrogateAnnotator struct {
	sp    *space.Space
	model Predictor
}

// NewSurrogateAnnotator wraps a surrogate model (typically the forest a
// PWU active-learning run produced) as an annotator.
func NewSurrogateAnnotator(sp *space.Space, model Predictor) *SurrogateAnnotator {
	return &SurrogateAnnotator{sp: sp, model: model}
}

// Annotate implements Annotator.
func (a *SurrogateAnnotator) Annotate(c space.Config) float64 {
	return a.model.Predict(a.sp.Encode(c))
}

// Name implements Annotator.
func (a *SurrogateAnnotator) Name() string { return "surrogate model" }

// Params configures a tuning run.
type Params struct {
	// NInit is the random warm-up size (labeled before the loop).
	NInit int

	// Iterations is the number of model-guided steps after warm-up.
	Iterations int

	// Forest configures the tuner's internal model.
	Forest forest.Config
}

func (p Params) withDefaults() Params {
	if p.NInit <= 0 {
		p.NInit = 10
	}
	if p.Iterations <= 0 {
		p.Iterations = 100
	}
	return p
}

// Trace is the outcome of one tuning run: BestTrue[i] is the true
// execution time of the best configuration selected up to step i
// (warm-up counts as step 0).
type Trace struct {
	Annotator string
	BestTrue  []float64
	BestCfg   space.Config
}

// Run tunes problem p over the candidate set using the given annotator.
// The candidates play the role of the paper's pre-sampled test set; the
// tracked best is always scored with the true model, regardless of the
// annotator.
func Run(p bench.Problem, candidates []space.Config, ann Annotator, params Params, r *rng.RNG) (*Trace, error) {
	pp := params.withDefaults()
	if len(candidates) <= pp.NInit {
		return nil, fmt.Errorf("tuning: %d candidates too few for NInit %d", len(candidates), pp.NInit)
	}
	sp := p.Space()
	features := sp.Features()
	candX := sp.EncodeAll(candidates)

	remaining := make([]int, len(candidates))
	for i := range remaining {
		remaining[i] = i
	}

	var trainX [][]float64
	var trainY []float64
	trace := &Trace{Annotator: ann.Name()}
	bestTrue := math.Inf(1)

	record := func(idx int) {
		trueT := p.TrueTime(candidates[idx])
		if trueT < bestTrue {
			bestTrue = trueT
			trace.BestCfg = candidates[idx].Clone()
		}
	}

	// Warm-up: random labels.
	init := r.Sample(len(remaining), pp.NInit)
	taken := map[int]bool{}
	for _, k := range init {
		idx := remaining[k]
		taken[idx] = true
		trainX = append(trainX, candX[idx])
		trainY = append(trainY, ann.Annotate(candidates[idx]))
		record(idx)
	}
	remaining = prune(remaining, taken)
	trace.BestTrue = append(trace.BestTrue, bestTrue)

	for it := 0; it < pp.Iterations && len(remaining) > 0; it++ {
		model, err := forest.Fit(trainX, trainY, features, pp.Forest, r.Split())
		if err != nil {
			return nil, fmt.Errorf("tuning: fit at step %d: %w", it, err)
		}
		// Greedy: the best predicted candidate.
		bestK, bestPred := -1, math.Inf(1)
		for k, idx := range remaining {
			if pred := model.Predict(candX[idx]); pred < bestPred {
				bestPred = pred
				bestK = k
			}
		}
		idx := remaining[bestK]
		trainX = append(trainX, candX[idx])
		trainY = append(trainY, ann.Annotate(candidates[idx]))
		record(idx)
		remaining = append(remaining[:bestK], remaining[bestK+1:]...)
		trace.BestTrue = append(trace.BestTrue, bestTrue)
	}
	return trace, nil
}

func prune(remaining []int, taken map[int]bool) []int {
	out := remaining[:0]
	for _, idx := range remaining {
		if !taken[idx] {
			out = append(out, idx)
		}
	}
	return out
}
