package tuning

import (
	"context"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/stats"
)

func candidateSet(t *testing.T, name string, n int, seed uint64) (bench.Problem, []space.Config) {
	t.Helper()
	p, err := bench.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p, p.Space().SampleConfigs(rng.New(seed), n)
}

func TestRunValidation(t *testing.T) {
	p, cands := candidateSet(t, "atax", 5, 1)
	ann := NewTrueAnnotator(p, rng.New(2))
	if _, err := Run(p, cands, ann, Params{NInit: 10}, rng.New(3)); err == nil {
		t.Fatal("too-small candidate set accepted")
	}
}

func TestDirectTuningImproves(t *testing.T) {
	p, cands := candidateSet(t, "atax", 400, 4)
	ann := NewTrueAnnotator(p, rng.New(5))
	tr, err := Run(p, cands, ann, Params{NInit: 10, Iterations: 50, Forest: forest.Config{NumTrees: 32}}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.BestTrue) != 51 {
		t.Fatalf("trace length %d", len(tr.BestTrue))
	}
	// Monotone non-increasing best-so-far.
	for i := 1; i < len(tr.BestTrue); i++ {
		if tr.BestTrue[i] > tr.BestTrue[i-1] {
			t.Fatal("best-so-far increased")
		}
	}
	// The tuned best should be far better than the candidate median.
	var times []float64
	for _, c := range cands {
		times = append(times, p.TrueTime(c))
	}
	if tr.BestTrue[len(tr.BestTrue)-1] >= stats.Median(times) {
		t.Fatalf("tuning failed to beat the median: %v vs %v", tr.BestTrue[len(tr.BestTrue)-1], stats.Median(times))
	}
	if tr.BestCfg == nil {
		t.Fatal("no best config recorded")
	}
}

func TestSurrogateTuningComparable(t *testing.T) {
	// Build a surrogate with active learning, then tune with it; the
	// result should be within ~2x of direct tuning — the paper's point is
	// that surrogate tuning is comparable at negligible cost.
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	ds, err := dataset.Build(context.Background(), p, 600, 100, r.Split())
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(context.Background(), p.Space(), ds.Pool, bench.Evaluator(p, r.Split()), core.PWU{Alpha: 0.05},
		core.Params{NInit: 10, NBatch: 10, NMax: 150, Forest: forest.Config{NumTrees: 32}}, r.Split(), nil)
	if err != nil {
		t.Fatal(err)
	}

	cands := p.Space().SampleConfigs(rng.New(8), 400)
	params := Params{NInit: 10, Iterations: 40, Forest: forest.Config{NumTrees: 32}}

	direct, err := Run(p, cands, NewTrueAnnotator(p, rng.New(9)), params, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	sur, err := Run(p, cands, NewSurrogateAnnotator(p.Space(), res.Model), params, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	d := direct.BestTrue[len(direct.BestTrue)-1]
	s := sur.BestTrue[len(sur.BestTrue)-1]
	if s > 2*d {
		t.Fatalf("surrogate tuning %v much worse than direct %v", s, d)
	}
	if sur.Annotator != "surrogate model" || direct.Annotator != "ground truth" {
		t.Fatal("annotator names wrong")
	}
}

func TestTuningDeterministic(t *testing.T) {
	p, cands := candidateSet(t, "mvt", 200, 11)
	params := Params{NInit: 8, Iterations: 20, Forest: forest.Config{NumTrees: 16}}
	a, err := Run(p, cands, NewTrueAnnotator(p, rng.New(12)), params, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(p, cands, NewTrueAnnotator(p, rng.New(12)), params, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.BestTrue {
		if a.BestTrue[i] != b.BestTrue[i] {
			t.Fatal("tuning not deterministic")
		}
	}
}

func TestExhaustsCandidates(t *testing.T) {
	// More iterations than candidates: loop must stop gracefully.
	p, cands := candidateSet(t, "mvt", 30, 14)
	params := Params{NInit: 5, Iterations: 100, Forest: forest.Config{NumTrees: 8}}
	tr, err := Run(p, cands, NewTrueAnnotator(p, rng.New(15)), params, rng.New(16))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.BestTrue) != 26 { // 1 warm-up point + 25 remaining candidates
		t.Fatalf("trace length %d, want 26", len(tr.BestTrue))
	}
	if math.IsInf(tr.BestTrue[0], 0) {
		t.Fatal("warm-up best not recorded")
	}
}

func TestDefaults(t *testing.T) {
	p := Params{}.withDefaults()
	if p.NInit != 10 || p.Iterations != 100 {
		t.Fatalf("defaults = %+v", p)
	}
}
