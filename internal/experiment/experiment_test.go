package experiment

import (
	"context"
	"math"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
)

func TestCheckpointSizes(t *testing.T) {
	sc := Scale{NInit: 10, NBatch: 1, NMax: 20, EvalEvery: 1}
	got := checkpointSizes(sc)
	want := []int{10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	if len(got) != len(want) {
		t.Fatalf("checkpoints = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoints = %v", got)
		}
	}
}

func TestCheckpointSizesThinned(t *testing.T) {
	sc := Scale{NInit: 10, NBatch: 5, NMax: 50, EvalEvery: 10}
	got := checkpointSizes(sc)
	want := []int{10, 20, 30, 40, 50}
	if len(got) != len(want) {
		t.Fatalf("checkpoints = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("checkpoints = %v", got)
		}
	}
}

func TestCheckpointAlwaysIncludesNMax(t *testing.T) {
	sc := Scale{NInit: 10, NBatch: 7, NMax: 33, EvalEvery: 100}
	got := checkpointSizes(sc)
	if got[len(got)-1] != 33 {
		t.Fatalf("last checkpoint = %d, want NMax", got[len(got)-1])
	}
}

func TestRunStrategySmoke(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	cs, err := RunStrategy(context.Background(), p, "PWU", sc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Benchmark != "atax" || cs.Strategy != "PWU" || cs.Alpha != sc.Alpha {
		t.Fatalf("metadata = %+v", cs)
	}
	if len(cs.Samples) != len(cs.RMSE) || len(cs.Samples) != len(cs.CC) || len(cs.Samples) != len(cs.RMSEStd) {
		t.Fatal("curve lengths inconsistent")
	}
	if cs.Samples[0] != sc.NInit || cs.Samples[len(cs.Samples)-1] != sc.NMax {
		t.Fatalf("sample range %v", cs.Samples)
	}
	for i, v := range cs.RMSE {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("RMSE[%d] = %v", i, v)
		}
	}
	// CC must be strictly increasing: every label adds positive time.
	for i := 1; i < len(cs.CC); i++ {
		if cs.CC[i] <= cs.CC[i-1] {
			t.Fatalf("CC not increasing at %d: %v", i, cs.CC)
		}
	}
}

func TestRunStrategyDeterministic(t *testing.T) {
	p, _ := bench.ByName("mvt")
	sc := Smoke()
	a, err := RunStrategy(context.Background(), p, "MaxU", sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStrategy(context.Background(), p, "MaxU", sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.RMSE {
		if a.RMSE[i] != b.RMSE[i] || a.CC[i] != b.CC[i] {
			t.Fatalf("experiment not deterministic at checkpoint %d", i)
		}
	}
}

func TestRunStrategySeedsMatter(t *testing.T) {
	p, _ := bench.ByName("mvt")
	sc := Smoke()
	a, _ := RunStrategy(context.Background(), p, "Random", sc, 1)
	b, _ := RunStrategy(context.Background(), p, "Random", sc, 2)
	same := true
	for i := range a.RMSE {
		if a.RMSE[i] != b.RMSE[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical curves")
	}
}

func TestRunAllOrder(t *testing.T) {
	p, _ := bench.ByName("gesummv")
	names := []string{"PWU", "Random"}
	out, err := RunAll(context.Background(), p, names, Smoke(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0].Strategy != "PWU" || out[1].Strategy != "Random" {
		t.Fatalf("RunAll order wrong: %v, %v", out[0].Strategy, out[1].Strategy)
	}
}

func TestRunAllUnknownStrategy(t *testing.T) {
	p, _ := bench.ByName("gesummv")
	if _, err := RunAll(context.Background(), p, []string{"Nope"}, Smoke(), 3); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestLearningCurveImproves(t *testing.T) {
	// With enough labels, the final RMSE should beat the cold-start RMSE
	// for a sane strategy on an easy kernel.
	p, _ := bench.ByName("atax")
	sc := Smoke()
	sc.NMax = 120
	sc.PoolSize = 500
	cs, err := RunStrategy(context.Background(), p, "Random", sc, 5)
	if err != nil {
		t.Fatal(err)
	}
	first, last := cs.RMSE[0], cs.RMSE[len(cs.RMSE)-1]
	if last >= first {
		t.Fatalf("no learning: RMSE %v -> %v", first, last)
	}
}

func TestSelectionScatter(t *testing.T) {
	p, _ := bench.ByName("atax")
	sc := Smoke()
	s, err := SelectionScatter(context.Background(), p, "PWU", sc, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.PoolMu) != sc.PoolSize || len(s.PoolSigma) != sc.PoolSize {
		t.Fatalf("pool scatter %d points", len(s.PoolMu))
	}
	if len(s.SelMu) != sc.NMax-sc.NInit {
		t.Fatalf("selection scatter %d points, want %d", len(s.SelMu), sc.NMax-sc.NInit)
	}
	for i := range s.SelMu {
		if s.SelSigma[i] < 0 || math.IsNaN(s.SelMu[i]) {
			t.Fatalf("bad selection point %d", i)
		}
	}
}

func TestPWUSpeedups(t *testing.T) {
	p, _ := bench.ByName("atax")
	rows, err := PWUSpeedups(context.Background(), []bench.Problem{p}, Smoke(), 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Benchmark != "atax" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].OK && (rows[0].Speedup <= 0 || math.IsInf(rows[0].Speedup, 0)) {
		t.Fatalf("speedup = %v", rows[0].Speedup)
	}
}

func TestScalePresetsSane(t *testing.T) {
	for _, sc := range []Scale{Paper(), Quick(), Smoke()} {
		if sc.PoolSize <= sc.NMax {
			t.Fatalf("pool %d not larger than NMax %d", sc.PoolSize, sc.NMax)
		}
		if sc.NInit >= sc.NMax || sc.Reps < 1 || sc.Alpha <= 0 || sc.Alpha > 1 {
			t.Fatalf("bad scale %+v", sc)
		}
	}
	p := Paper()
	if p.PoolSize != 7000 || p.TestSize != 3000 || p.NInit != 10 || p.NBatch != 1 || p.NMax != 500 || p.Reps != 10 {
		t.Fatalf("Paper() deviates from §III-D: %+v", p)
	}
}

func TestCheckpointSizesEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		sc   Scale
		want []int
	}{
		{"init equals max", Scale{NInit: 20, NBatch: 5, NMax: 20, EvalEvery: 1}, []int{20}},
		{"eval every exceeds range", Scale{NInit: 10, NBatch: 1, NMax: 15, EvalEvery: 100}, []int{10, 15}},
		{"batch overshoots max", Scale{NInit: 10, NBatch: 7, NMax: 20, EvalEvery: 1}, []int{10, 17, 20}},
		{"zero eval every defaults to one", Scale{NInit: 3, NBatch: 2, NMax: 9, EvalEvery: 0}, []int{3, 5, 7, 9}},
		{"thinning skips then forces max", Scale{NInit: 10, NBatch: 3, NMax: 20, EvalEvery: 5}, []int{10, 16, 20}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := checkpointSizes(tc.sc)
			if len(got) != len(tc.want) {
				t.Fatalf("checkpoints = %v, want %v", got, tc.want)
			}
			for i := range tc.want {
				if got[i] != tc.want[i] {
					t.Fatalf("checkpoints = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

// noPoolModel hides the forest's PoolPredictor capability so core.Run
// scores candidates through plain PredictBatch.
type noPoolModel struct{ f *forest.Forest }

func (m noPoolModel) Predict(x []float64) float64 { return m.f.Predict(x) }
func (m noPoolModel) PredictBatch(X [][]float64) (mu, sigma []float64) {
	return m.f.PredictBatch(X)
}

// TestEngineSwapCurvesIdentical runs the same PWU experiment with the
// cached pool-scoring engine and with the plain batch engine; the
// learning curves must be byte-identical, proving the engine swap is
// invisible to the science.
func TestEngineSwapCurvesIdentical(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	base, err := RunStrategy(context.Background(), p, "PWU", sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	swapped := sc
	swapped.Fitter = func(X [][]float64, y []float64, fs []space.Feature, r *rng.RNG) (core.Model, error) {
		f, err := forest.Fit(X, y, fs, sc.Forest, r)
		if err != nil {
			return nil, err
		}
		return noPoolModel{f}, nil
	}
	alt, err := RunStrategy(context.Background(), p, "PWU", swapped, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.RMSE) != len(alt.RMSE) {
		t.Fatalf("curve lengths differ: %d vs %d", len(base.RMSE), len(alt.RMSE))
	}
	for i := range base.RMSE {
		if base.RMSE[i] != alt.RMSE[i] || base.CC[i] != alt.CC[i] || base.RMSEStd[i] != alt.RMSEStd[i] {
			t.Fatalf("checkpoint %d: (%v,%v,%v) vs (%v,%v,%v)", i,
				base.RMSE[i], base.CC[i], base.RMSEStd[i], alt.RMSE[i], alt.CC[i], alt.RMSEStd[i])
		}
	}
}
