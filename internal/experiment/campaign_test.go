package experiment

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/core"
)

// assertCurvesEqual compares two curve sets bit for bit (curves and
// counted telemetry; wall times naturally differ between runs).
func assertCurvesEqual(t *testing.T, got, want *CurveSet) {
	t.Helper()
	if got == nil || want == nil {
		t.Fatalf("nil curve set: got=%v want=%v", got, want)
	}
	if got.Benchmark != want.Benchmark || got.Strategy != want.Strategy ||
		got.Alpha != want.Alpha || got.Reps != want.Reps {
		t.Fatalf("header mismatch: got %s/%s α=%v reps=%d, want %s/%s α=%v reps=%d",
			got.Benchmark, got.Strategy, got.Alpha, got.Reps,
			want.Benchmark, want.Strategy, want.Alpha, want.Reps)
	}
	if len(got.Samples) != len(want.Samples) {
		t.Fatalf("%s: %d checkpoints, want %d", got.Strategy, len(got.Samples), len(want.Samples))
	}
	for i := range want.Samples {
		if got.Samples[i] != want.Samples[i] {
			t.Fatalf("%s: Samples[%d] = %d, want %d", got.Strategy, i, got.Samples[i], want.Samples[i])
		}
		if got.RMSE[i] != want.RMSE[i] || got.RMSEStd[i] != want.RMSEStd[i] || got.CC[i] != want.CC[i] {
			t.Fatalf("%s: checkpoint %d: (%v,%v,%v) vs (%v,%v,%v)", got.Strategy, i,
				got.RMSE[i], got.RMSEStd[i], got.CC[i], want.RMSE[i], want.RMSEStd[i], want.CC[i])
		}
	}
	if got.Stats.Events != want.Stats.Events || got.Stats.EvalRetries != want.Stats.EvalRetries ||
		got.Stats.EvalSkips != want.Stats.EvalSkips {
		t.Fatalf("%s: telemetry counts diverged: %+v vs %+v", got.Strategy, got.Stats, want.Stats)
	}
}

// TestCampaignMatchesSequential is the equivalence gate: for every
// strategy, the campaign engine (shared datasets, work-stealing pool)
// must reproduce the sequential per-strategy path bit for bit.
func TestCampaignMatchesSequential(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	names := core.StrategyNames()
	seq, err := RunAllSequential(context.Background(), p, names, sc, 99)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll(context.Background(), p, names, sc, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("campaign returned %d curve sets, sequential %d", len(par), len(seq))
	}
	for i := range seq {
		assertCurvesEqual(t, par[i], seq[i])
	}
}

// TestCampaignWorkerInvariance checks curves are bit-identical for any
// worker count — the scheduler's determinism contract.
func TestCampaignWorkerInvariance(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"Random", "PWU", "BRS"}
	var ref []*CurveSet
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		sc := Smoke()
		sc.Workers = workers
		out, err := RunAll(context.Background(), p, names, sc, 7)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = out
			continue
		}
		for i := range ref {
			assertCurvesEqual(t, out[i], ref[i])
		}
	}
}

// TestCampaignDatasetCacheHits checks the single-flight cache arithmetic
// on a real drain: each repetition's dataset is built exactly once, and
// every other strategy at that repetition hits the cached copy.
func TestCampaignDatasetCacheHits(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	names := []string{"Random", "PWU", "MaxU"}
	res, err := RunCampaign(context.Background(), Campaign{
		Items:      []CampaignItem{{Problem: p, Scale: sc}},
		Strategies: names,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Datasets.Builds != sc.Reps {
		t.Fatalf("Builds = %d, want %d (one per repetition)", res.Datasets.Builds, sc.Reps)
	}
	if want := (len(names) - 1) * sc.Reps; res.Datasets.Hits != want {
		t.Fatalf("Hits = %d, want %d", res.Datasets.Hits, want)
	}
	if want := (len(names) - 1) * sc.Reps * sc.TestSize; res.Datasets.LabelsSaved != want {
		t.Fatalf("LabelsSaved = %d, want %d", res.Datasets.LabelsSaved, want)
	}
	if res.Scheduler.Tasks != len(names)*sc.Reps {
		t.Fatalf("Scheduler.Tasks = %d, want %d", res.Scheduler.Tasks, len(names)*sc.Reps)
	}
}

// TestCampaignWarmUpdate exercises the cached checkpoint-evaluation path
// (PredictCached on the shared test matrix) end to end: warm-update
// campaigns must equal warm-update sequential runs bit for bit.
func TestCampaignWarmUpdate(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	sc.WarmUpdate = true
	names := []string{"PWU", "Random"}
	seq, err := RunAllSequential(context.Background(), p, names, sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunAll(context.Background(), p, names, sc, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		assertCurvesEqual(t, par[i], seq[i])
	}
}

// TestAggregatePartialRepsCount is the regression test for the Reps
// accounting after a cancellation: only repetitions that reached a
// checkpoint contribute, and Reps must say how many did — not sc.Reps.
func TestAggregatePartialRepsCount(t *testing.T) {
	sc := Smoke()
	sc.Reps = 3
	n := len(checkpointSizes(sc))
	full := make([]float64, n)
	for i := range full {
		full[i] = float64(i + 1)
	}
	reps := []repResult{
		{rmse: full, cc: full},
		{rmse: full[:2], cc: full[:2], err: context.Canceled},
		{err: context.Canceled}, // interrupted before its first checkpoint
	}
	cs, err := aggregate(context.Background(), "atax", "PWU", sc, reps)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cs == nil {
		t.Fatal("no curve set despite two contributing repetitions")
	}
	if cs.Reps != 2 {
		t.Fatalf("Reps = %d, want 2 (contributing repetitions)", cs.Reps)
	}
	if len(cs.Samples) != 2 {
		t.Fatalf("%d checkpoints, want the contributing reps' common prefix of 2", len(cs.Samples))
	}
	for i := 0; i < 2; i++ {
		if cs.RMSE[i] != full[i] || cs.CC[i] != full[i] {
			t.Fatalf("checkpoint %d: RMSE=%v CC=%v, want %v", i, cs.RMSE[i], cs.CC[i], full[i])
		}
	}

	// No repetition reached a checkpoint: nil set, explanatory error.
	none := []repResult{{err: context.Canceled}, {err: context.Canceled}}
	cs, err = aggregate(context.Background(), "atax", "PWU", sc, none)
	if cs != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("cs=%v err=%v, want nil set and context.Canceled", cs, err)
	}
	if !strings.Contains(err.Error(), "before the first checkpoint") {
		t.Fatalf("err = %v", err)
	}

	// The uncancelled path still reports every repetition.
	fullReps := []repResult{{rmse: full, cc: full}, {rmse: full, cc: full}, {rmse: full, cc: full}}
	cs, err = aggregate(context.Background(), "atax", "PWU", sc, fullReps)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Reps != sc.Reps || len(cs.Samples) != n {
		t.Fatalf("Reps=%d checkpoints=%d, want %d/%d", cs.Reps, len(cs.Samples), sc.Reps, n)
	}
}
