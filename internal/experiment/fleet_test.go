package experiment

import (
	"context"
	"errors"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/space"
)

// fleetTestConfig shrinks the lease timings so fault recovery runs in
// milliseconds instead of the production seconds.
func fleetTestConfig() fleet.Config {
	return fleet.Config{
		LeaseTTL:    250 * time.Millisecond,
		Heartbeat:   50 * time.Millisecond,
		Poll:        5 * time.Millisecond,
		MaxAttempts: 12,
	}
}

// fleetRig is an in-process fleet: a coordinator behind a real HTTP
// server plus n workers (optionally chaos-injected) draining it.
type fleetRig struct {
	coord  *fleet.Coordinator
	srv    *httptest.Server
	cancel context.CancelFunc
	errs   []chan error
	ws     []*fleet.Worker
}

func startFleet(t *testing.T, cfg fleet.Config, n int, chaosFor func(i int) fleet.WorkerChaos) *fleetRig {
	t.Helper()
	coord := fleet.New(cfg)
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	rig := &fleetRig{coord: coord, srv: srv, cancel: cancel}
	for i := 0; i < n; i++ {
		w := &fleet.Worker{
			Coordinator: srv.URL,
			Name:        fmt.Sprintf("tw%d", i),
			Runner:      NewFleetRunner(),
			Logf:        t.Logf,
		}
		if chaosFor != nil {
			w.Chaos = chaosFor(i)
		}
		errCh := make(chan error, 1)
		go func() { errCh <- w.Run(ctx) }()
		rig.errs = append(rig.errs, errCh)
		rig.ws = append(rig.ws, w)
	}
	return rig
}

func (r *fleetRig) stop(t *testing.T) {
	t.Helper()
	r.cancel()
	for i, errCh := range r.errs {
		select {
		case err := <-errCh:
			// Chaos-crashed workers exit ErrKilled; anything else must
			// drain cleanly.
			if err != nil && !errors.Is(err, fleet.ErrKilled) {
				t.Errorf("worker %d exit: %v", i, err)
			}
		case <-time.After(15 * time.Second):
			t.Fatalf("worker %d did not exit", i)
		}
	}
	r.srv.Close()
	r.coord.Close()
}

// runFleetCampaign drains one (problem × strategies) grid through rig's
// coordinator and returns the curve sets in strategy order.
func runFleetCampaign(t *testing.T, rig *fleetRig, p bench.Problem, names []string, sc Scale, seed uint64) []*CurveSet {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	res, err := RunCampaignFleet(ctx, Campaign{
		Items:      []CampaignItem{{Problem: p, Scale: sc}},
		Strategies: names,
		Seed:       seed,
	}, rig.coord)
	if err != nil {
		t.Fatalf("RunCampaignFleet: %v", err)
	}
	return res.Curves[p.Name()]
}

// TestFleetCampaignMatchesLocal is the fleet-equivalence gate: for
// every strategy, a campaign drained through a coordinator and N remote
// workers must reproduce RunAllSequential bit for bit, for N ∈ {1, 2, 4}
// — the distributed analogue of TestCampaignWorkerInvariance.
func TestFleetCampaignMatchesLocal(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	names := core.StrategyNames()
	seq, err := RunAllSequential(context.Background(), p, names, sc, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 4} {
		rig := startFleet(t, fleetTestConfig(), n, nil)
		got := runFleetCampaign(t, rig, p, names, sc, 99)
		rig.stop(t)
		if len(got) != len(seq) {
			t.Fatalf("workers=%d: %d curve sets, want %d", n, len(got), len(seq))
		}
		for i := range seq {
			assertCurvesEqual(t, got[i], seq[i])
		}
	}
}

// TestFleetChaosEquivalence drains the same grid through a fleet whose
// workers hang past the lease TTL, panic, and corrupt payloads — plus
// one clean worker so progress is guaranteed — and requires the curves
// to stay bit-identical to the clean sequential run: every fault is
// absorbed by re-leases, checksum rejection and duplicate-drop, never
// by altering a result.
func TestFleetChaosEquivalence(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	names := []string{"Random", "PWU", "BRS"}
	seq, err := RunAllSequential(context.Background(), p, names, sc, 7)
	if err != nil {
		t.Fatal(err)
	}
	rig := startFleet(t, fleetTestConfig(), 3, func(i int) fleet.WorkerChaos {
		switch i {
		case 0:
			return fleet.WorkerChaos{Seed: 11, HangRate: 0.15, HangFor: 600 * time.Millisecond, PanicRate: 0.15}
		case 1:
			return fleet.WorkerChaos{Seed: 12, CorruptRate: 0.3, PanicRate: 0.1}
		default:
			return fleet.WorkerChaos{} // the clean one
		}
	})
	got := runFleetCampaign(t, rig, p, names, sc, 7)
	rig.stop(t)
	for i := range seq {
		assertCurvesEqual(t, got[i], seq[i])
	}
}

// TestFleetKilledMidLeaseEquivalence kills a worker on its first lease
// — the abrupt crash lease expiry exists to absorb — and requires the
// surviving worker to deliver bit-identical curves, with the bounce
// visible in the coordinator's counters.
func TestFleetKilledMidLeaseEquivalence(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	names := []string{"PWU", "Random"}
	seq, err := RunAllSequential(context.Background(), p, names, sc, 21)
	if err != nil {
		t.Fatal(err)
	}

	rig := startFleet(t, fleetTestConfig(), 2, nil)
	var once sync.Once
	victim := rig.ws[0]
	victim.OnLease = func(key string) {
		once.Do(func() {
			victim.Kill()
			time.Sleep(50 * time.Millisecond) // let the kill land before the task reports
		})
	}
	got := runFleetCampaign(t, rig, p, names, sc, 21)
	st := rig.coord.Stats()
	rig.stop(t)
	for i := range seq {
		assertCurvesEqual(t, got[i], seq[i])
	}
	if st.Expired == 0 || st.Requeues == 0 {
		t.Errorf("kill left no trace in the counters: %+v", st)
	}
}

// TestFleetSchedulerStats checks the drain's telemetry mapping.
func TestFleetSchedulerStats(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	names := []string{"Random"}
	rig := startFleet(t, fleetTestConfig(), 2, nil)
	defer rig.stop(t)
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := RunCampaignFleet(ctx, Campaign{
		Items:      []CampaignItem{{Problem: p, Scale: sc}},
		Strategies: names,
		Seed:       5,
	}, rig.coord)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheduler.Tasks != sc.Reps {
		t.Errorf("Tasks = %d, want %d", res.Scheduler.Tasks, sc.Reps)
	}
	if res.Scheduler.Workers < 1 || res.Scheduler.Workers > 2 {
		t.Errorf("Workers = %d", res.Scheduler.Workers)
	}
	if res.Scheduler.Wall <= 0 {
		t.Errorf("Wall = %v", res.Scheduler.Wall)
	}
}

// TestFleetRejectsCustomFitter: a function-valued Fitter cannot travel.
func TestFleetRejectsCustomFitter(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	sc.Fitter = func(X [][]float64, y []float64, features []space.Feature, r *rng.RNG) (core.Model, error) {
		return nil, nil
	}
	coord := fleet.New(fleetTestConfig())
	defer coord.Close()
	_, err = RunCampaignFleet(context.Background(), Campaign{
		Items:      []CampaignItem{{Problem: p, Scale: sc}},
		Strategies: []string{"Random"},
		Seed:       1,
	}, coord)
	if err == nil {
		t.Fatal("campaign with custom Fitter accepted")
	}
}

// TestFleetSoakMixedFaults is the fleet-soak gate: a small fleet under
// every fault kind at once — crashes included, with a supervisor
// restarting dead workers like an init system would — must drain a
// multi-strategy campaign to bit-identical curves. Run under -race
// (make fleet-soak does); a goroutine-leak check closes it out.
func TestFleetSoakMixedFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test; run without -short")
	}
	baseline := runtime.NumGoroutine()
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	names := []string{"Random", "PWU", "MaxU", "BRS"}
	seq, err := RunAllSequential(context.Background(), p, names, sc, 33)
	if err != nil {
		t.Fatal(err)
	}

	cfg := fleetTestConfig()
	cfg.MaxAttempts = 20
	coord := fleet.New(cfg)
	srv := httptest.NewServer(coord.Handler())

	// Supervisor: keep 3 workers alive. Two are chaos-ridden (each
	// incarnation reseeded so restarts do not replay the same faults),
	// one is clean so the drain always makes progress.
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	var incarnation int64
	var mu sync.Mutex
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for ctx.Err() == nil {
				mu.Lock()
				incarnation++
				seed := uint64(incarnation)
				mu.Unlock()
				w := &fleet.Worker{
					Coordinator: srv.URL,
					Name:        fmt.Sprintf("soak%d-%d", slot, seed),
					Runner:      NewFleetRunner(),
					Logf:        t.Logf,
				}
				if slot != 2 {
					w.Chaos = fleet.WorkerChaos{
						Seed:        seed,
						CrashRate:   0.05,
						HangRate:    0.05,
						HangFor:     600 * time.Millisecond,
						PanicRate:   0.1,
						CorruptRate: 0.1,
					}
				}
				err := w.Run(ctx)
				if err == nil {
					return // graceful drain: supervision over
				}
				if !errors.Is(err, fleet.ErrKilled) {
					t.Errorf("worker %d: %v", slot, err)
					return
				}
				// Crashed: restart after a beat, like an init system.
				time.Sleep(20 * time.Millisecond)
			}
		}(i)
	}

	wctx, wcancel := context.WithTimeout(context.Background(), 4*time.Minute)
	res, err := RunCampaignFleet(wctx, Campaign{
		Items:      []CampaignItem{{Problem: p, Scale: sc}},
		Strategies: names,
		Seed:       33,
	}, coord)
	wcancel()
	if err != nil {
		t.Fatalf("soak drain: %v", err)
	}
	got := res.Curves[p.Name()]
	for i := range seq {
		assertCurvesEqual(t, got[i], seq[i])
	}
	st := coord.Stats()
	t.Logf("soak: %d registrations, %d requeues, %d expired, %d duplicates, %d corrupt",
		st.Registered, st.Requeues, st.Expired, st.Duplicates, st.Corrupt)

	cancel()
	wg.Wait()
	srv.Close()
	coord.Close()

	// Leak check: workers, coordinator and server own no goroutines
	// once drained and closed.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+8 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
