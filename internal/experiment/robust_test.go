package experiment

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
)

// TestCheckpointSizesZeroBatchTerminates is the regression test for the
// schedule bug: the engine defaults NBatch to 1, but checkpointSizes
// used the raw scale value, so NBatch = 0 never advanced and the size
// enumeration looped forever.
func TestCheckpointSizesZeroBatchTerminates(t *testing.T) {
	done := make(chan []int, 1)
	go func() { done <- checkpointSizes(Scale{NInit: 5, NBatch: 0, NMax: 15, EvalEvery: 1}) }()
	select {
	case got := <-done:
		want := []int{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15}
		if len(got) != len(want) {
			t.Fatalf("checkpoints = %v, want %v", got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("checkpoints = %v, want %v", got, want)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("checkpointSizes with NBatch=0 did not terminate")
	}
}

// TestCheckpointSizesMatchEngineDefaults pins the whole normalization:
// all-zero scale knobs must enumerate exactly the schedule the engine
// actually runs (NInit 10, NBatch 1, NMax 500), NMax last.
func TestCheckpointSizesMatchEngineDefaults(t *testing.T) {
	got := checkpointSizes(Scale{EvalEvery: 100})
	if got[0] != 10 {
		t.Fatalf("first checkpoint %d, want the engine's default NInit 10", got[0])
	}
	if got[len(got)-1] != 500 {
		t.Fatalf("last checkpoint %d, want the engine's default NMax 500", got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("checkpoints not strictly increasing: %v", got)
		}
	}
}

func TestRunStrategyPreCancelled(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cs, err := RunStrategy(ctx, p, "PWU", Smoke(), 3)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if cs != nil {
		t.Fatalf("pre-cancelled run produced a curve set: %+v", cs)
	}
}

// TestRunStrategyCancelledMidRunReturnsPartial interrupts the
// repetition workers mid-run and checks the partial-curve contract:
// every returned slice has the same truncated length, the samples are a
// prefix of the full schedule, and the error wraps the context error.
func TestRunStrategyCancelledMidRunReturnsPartial(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	sc.PoolSize, sc.NMax, sc.NBatch, sc.EvalEvery = 600, 300, 1, 1
	sc.Reps = 2
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	cs, err := RunStrategy(ctx, p, "Random", sc, 4)
	if err == nil {
		t.Skip("run finished before the deadline; machine too fast for this scale")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if cs != nil {
		full := checkpointSizes(sc)
		if len(cs.Samples) >= len(full) {
			t.Fatalf("interrupted run claims all %d checkpoints", len(full))
		}
		if len(cs.RMSE) != len(cs.Samples) || len(cs.CC) != len(cs.Samples) || len(cs.RMSEStd) != len(cs.Samples) {
			t.Fatalf("ragged partial curves: %d samples, %d rmse, %d cc", len(cs.Samples), len(cs.RMSE), len(cs.CC))
		}
		for i := range cs.Samples {
			if cs.Samples[i] != full[i] {
				t.Fatalf("partial samples %v are not a prefix of %v", cs.Samples, full)
			}
		}
	}
	// The repetition workers must all have drained; give the runtime a
	// moment to retire them.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines %d before, %d after cancelled experiment", before, n)
	}
}

// TestWorkerCountInvariance is the regression test for repetition
// seeding: seeds derive from (seed, rep), never from goroutine launch
// order, so the averaged curves are identical for any worker count.
func TestWorkerCountInvariance(t *testing.T) {
	p, err := bench.ByName("gesummv")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) *CurveSet {
		sc := Smoke()
		sc.Reps = 3
		sc.Workers = workers
		sc.Forest.Workers = 1
		cs, err := RunStrategy(context.Background(), p, "PWU", sc, 11)
		if err != nil {
			t.Fatal(err)
		}
		return cs
	}
	a, b := run(1), run(4)
	for i := range a.RMSE {
		if a.RMSE[i] != b.RMSE[i] || a.CC[i] != b.CC[i] {
			t.Fatalf("checkpoint %d differs across worker counts: (%v,%v) vs (%v,%v)",
				i, a.RMSE[i], a.CC[i], b.RMSE[i], b.CC[i])
		}
	}
}

func TestCurveSetCarriesTelemetry(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := RunStrategy(context.Background(), p, "PWU", Smoke(), 13)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Reps != Smoke().Reps {
		t.Fatalf("Reps = %d", cs.Reps)
	}
	// Each repetition contributes its events: cold start + iterations.
	if cs.Stats.Events == 0 {
		t.Fatal("no telemetry events aggregated")
	}
	if cs.Stats.FitTime <= 0 || cs.Stats.EvalTime <= 0 {
		t.Fatalf("degenerate telemetry: %+v", cs.Stats)
	}
	if cs.Stats.EvalRetries != 0 || cs.Stats.EvalSkips != 0 {
		t.Fatalf("simulated benchmarks cannot fail, yet stats = %+v", cs.Stats)
	}
}
