package experiment

// Fleet glue: the worker-side runner that executes leased campaign
// cells and evaluation tasks, and the client-side campaign drain that
// submits a grid to a fleet coordinator instead of the in-process
// scheduler. Both sides preserve the campaign determinism contract —
// cell seeds derive from (campaign seed, rep), never from scheduling —
// so a fleet campaign is bit-identical to RunAllSequential however the
// leases bounce.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"time"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/fleet"
	"repro/internal/rng"
	"repro/internal/space"
)

// scaleSpec converts a Scale to its wire form. A custom Fitter is a
// function value and cannot travel; fleet campaigns reject it up
// front instead of silently running the default forest remotely.
func scaleSpec(sc Scale) (fleet.ScaleSpec, error) {
	if sc.Fitter != nil {
		return fleet.ScaleSpec{}, errors.New("experiment: fleet campaigns cannot ship a custom Fitter; it is not serializable")
	}
	return fleet.ScaleSpec{
		PoolSize: sc.PoolSize, TestSize: sc.TestSize,
		NInit: sc.NInit, NBatch: sc.NBatch, NMax: sc.NMax,
		Reps: sc.Reps, Alpha: sc.Alpha, EvalEvery: sc.EvalEvery,
		Forest: sc.Forest, WarmUpdate: sc.WarmUpdate,
		Failure: sc.Failure, Guard: sc.Guard, Chaos: sc.Chaos,
	}, nil
}

// specScale is the inverse, applied worker-side.
func specScale(sp fleet.ScaleSpec) Scale {
	return Scale{
		PoolSize: sp.PoolSize, TestSize: sp.TestSize,
		NInit: sp.NInit, NBatch: sp.NBatch, NMax: sp.NMax,
		Reps: sp.Reps, Alpha: sp.Alpha, EvalEvery: sp.EvalEvery,
		Forest: sp.Forest, WarmUpdate: sp.WarmUpdate,
		Failure: sp.Failure, Guard: sp.Guard, Chaos: sp.Chaos,
	}
}

// fleetRunner executes leased tasks on a worker. It holds the worker's
// own single-flight dataset cache: every strategy's repetition r of a
// problem shares the rep-seeded dataset, so a worker that leases
// several cells of the same repetition builds the split once — the
// same saving the in-process campaign cache provides, now per worker.
type fleetRunner struct {
	cache *campaign.Datasets
}

// NewFleetRunner returns the standard worker runner: campaign cells
// through runOnce (bit-identical to the local scheduler's execution),
// evaluation tasks through the named problem's stateful evaluator.
func NewFleetRunner() fleet.Runner {
	return &fleetRunner{cache: campaign.NewDatasets()}
}

// RunCell executes one campaign cell. An evaluator panic is recovered
// into ErrKindPanic with the stack, mirroring what the in-process
// scheduler's quarantine records; re-executions panic identically, so
// the coordinator's retries cannot mask a poisoned cell.
func (fr *fleetRunner) RunCell(ctx context.Context, t *fleet.CellTask) (res *fleet.CellResult) {
	res = &fleet.CellResult{}
	defer func() {
		if v := recover(); v != nil {
			res.ErrKind = fleet.ErrKindPanic
			res.PanicValue = fmt.Sprint(v)
			res.PanicStack = string(debug.Stack())
		}
	}()
	p, err := bench.ByName(t.Problem)
	if err != nil {
		res.ErrKind = fleet.ErrKindError
		res.Err = err.Error()
		return res
	}
	sc := specScale(t.Scale)
	if _, err := strategyFor(t.Strategy, sc.Alpha); err != nil {
		res.ErrKind = fleet.ErrKindError
		res.Err = err.Error()
		return res
	}
	rr := runOnce(ctx, p, t.Strategy, sc, rng.Mix(t.Seed, uint64(t.Rep)), cachedProvider(fr.cache))
	res.RMSE, res.CC, res.Stats = rr.rmse, rr.cc, rr.stats
	if rr.err != nil {
		res.Err = rr.err.Error()
		if errors.Is(rr.err, context.Canceled) || errors.Is(rr.err, context.DeadlineExceeded) {
			res.ErrKind = fleet.ErrKindCanceled
		} else {
			res.ErrKind = fleet.ErrKindError
		}
		res.RMSE, res.CC = nil, nil
	}
	return res
}

// RunEval measures the task's configurations in order, resuming the
// shipped noise-stream state and returning the advanced state.
func (fr *fleetRunner) RunEval(ctx context.Context, t *fleet.EvalTask) *fleet.EvalResult {
	res := &fleet.EvalResult{State: t.State}
	p, err := bench.ByName(t.Problem)
	if err != nil {
		res.ErrKind = fleet.ErrKindError
		res.Err = err.Error()
		return res
	}
	ev := bench.Evaluator(p, rng.New(0))
	if err := ev.RestoreEvaluatorState(t.State); err != nil {
		res.ErrKind = fleet.ErrKindError
		res.Err = err.Error()
		return res
	}
	res.Ys = make([]float64, 0, len(t.Configs))
	for _, cfg := range t.Configs {
		y, err := ev.Evaluate(ctx, space.Config(cfg))
		if err != nil {
			res.Ys = nil
			res.Err = err.Error()
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				res.ErrKind = fleet.ErrKindCanceled
			} else {
				res.ErrKind = fleet.ErrKindError
			}
			return res
		}
		res.Ys = append(res.Ys, y)
	}
	res.State = ev.EvaluatorState()
	return res
}

// cellKey is the deterministic task coordinate of one campaign cell —
// the idempotency key duplicate completions collapse on.
func cellKey(problem, strategy string, rep int) string {
	return fmt.Sprintf("cell/%s/%s/%d", problem, strategy, rep)
}

// CampaignJobID derives the campaign's deterministic fleet job ID from
// its seed and grid coordinates. A submitter that restarts re-derives
// the same ID from the same campaign and reattaches to the job its
// previous incarnation left running in a journaled coordinator —
// SubmitOrAttach's spec fingerprint check holds because the specs are
// re-derived bit-identically too.
func CampaignJobID(c Campaign) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "seed/%d\n", c.Seed)
	for _, it := range c.Items {
		for _, name := range c.Strategies {
			fmt.Fprintf(h, "%s/%s/%d\n", it.Problem.Name(), name, it.Scale.Reps)
		}
	}
	return fmt.Sprintf("campaign/%016x", h.Sum64())
}

// RunCampaignFleet drains the campaign grid through a fleet submitter
// — the in-process *fleet.Coordinator, or a *fleet.Client against a
// resident fleetd: one leasable task per (problem × strategy × rep)
// cell, executed by whatever workers are registered. Aggregation,
// panic quarantine and cancellation semantics match RunCampaign
// exactly; because cell seeds are scheduling-independent and results
// travel as checksummed JSON (float64s round-trip bit-exactly), the
// curves are bit-identical to the local drain whenever re-leases cover
// the faults.
//
// The submission uses the campaign's deterministic job ID, so a
// submitter that died mid-wait and reruns the same campaign attaches
// to the surviving job instead of re-evaluating its completed cells.
// A coordinator shutdown mid-wait surfaces as an error wrapping
// fleet.ErrClosed — retry once the coordinator is back; nothing
// completed is lost when it journals.
//
// The Scheduler telemetry maps the fleet drain onto campaign.Stats:
// Workers is the coordinator's peak registration count, Steals counts
// lease re-queues (work that moved between workers), Busy sums
// worker-reported execution time. Datasets stays zero — each worker
// keeps its own cache.
func RunCampaignFleet(ctx context.Context, c Campaign, sub fleet.Submitter) (*CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, it := range c.Items {
		for _, name := range c.Strategies {
			if _, err := strategyFor(name, it.Scale.Alpha); err != nil {
				return nil, fmt.Errorf("experiment: %s/%s: %w", it.Problem.Name(), name, err)
			}
		}
	}

	type cellAddr struct{ ii, si, rep int }
	addr := make(map[string]cellAddr)
	var specs []fleet.TaskSpec
	results := make([][][]repResult, len(c.Items))
	for ii, it := range c.Items {
		results[ii] = make([][]repResult, len(c.Strategies))
		spec, err := scaleSpec(it.Scale)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s: %w", it.Problem.Name(), err)
		}
		for si, name := range c.Strategies {
			results[ii][si] = make([]repResult, it.Scale.Reps)
			for rep := 0; rep < it.Scale.Reps; rep++ {
				key := cellKey(it.Problem.Name(), name, rep)
				addr[key] = cellAddr{ii, si, rep}
				specs = append(specs, fleet.TaskSpec{
					Key: key,
					Cell: &fleet.CellTask{
						Problem: it.Problem.Name(), Strategy: name,
						Rep: rep, Seed: c.Seed, Scale: spec,
					},
				})
			}
		}
	}

	job, _, err := sub.SubmitTasks(CampaignJobID(c), specs)
	if err != nil {
		return nil, fmt.Errorf("experiment: fleet submit: %w", err)
	}
	start := time.Now()
	taskResults, waitErr := job.Wait(ctx)
	wall := time.Since(start)
	if errors.Is(waitErr, fleet.ErrClosed) || (waitErr != nil && len(taskResults) == 0) {
		// The coordinator went away under us (reattach once it is
		// back), or a remote Wait was abandoned before anything could
		// be collected — there is no partial grid to aggregate.
		return nil, fmt.Errorf("experiment: fleet wait: %w", waitErr)
	}

	res := &CampaignResult{Curves: make(map[string][]*CurveSet, len(c.Items))}
	var busy time.Duration
	requeues := 0
	for _, tr := range taskResults {
		a, ok := addr[tr.Key]
		if !ok {
			continue
		}
		it := c.Items[a.ii]
		name := c.Strategies[a.si]
		if tr.Attempts > 1 {
			requeues += tr.Attempts - 1
		}
		busy += tr.Elapsed
		if tr.Failed != "" {
			if waitErr != nil && tr.Failed == "canceled" {
				results[a.ii][a.si][a.rep] = repResult{err: fmt.Errorf("fleet: %s: %w", tr.Key, waitErr)}
			} else {
				results[a.ii][a.si][a.rep] = repResult{err: fmt.Errorf("fleet: task %s: %s", tr.Key, tr.Failed)}
			}
			continue
		}
		var cr fleet.CellResult
		if err := json.Unmarshal(tr.Payload, &cr); err != nil {
			results[a.ii][a.si][a.rep] = repResult{err: fmt.Errorf("fleet: task %s: decoding result: %w", tr.Key, err)}
			continue
		}
		switch cr.ErrKind {
		case "":
			results[a.ii][a.si][a.rep] = repResult{rmse: cr.RMSE, cc: cr.CC, stats: cr.Stats}
		case fleet.ErrKindPanic:
			results[a.ii][a.si][a.rep] = repResult{
				err: fmt.Errorf("%w: %s/%s rep %d: %s", ErrRepPanic, it.Problem.Name(), name, a.rep, cr.PanicValue),
			}
			res.Quarantined = append(res.Quarantined, QuarantinedTask{
				Problem: it.Problem.Name(), Strategy: name, Rep: a.rep,
				Value: cr.PanicValue, Stack: cr.PanicStack,
			})
		case fleet.ErrKindCanceled:
			results[a.ii][a.si][a.rep] = repResult{
				err:   fmt.Errorf("fleet: task %s: %s: %w", tr.Key, cr.Err, context.Canceled),
				rmse:  cr.RMSE,
				cc:    cr.CC,
				stats: cr.Stats,
			}
		default:
			results[a.ii][a.si][a.rep] = repResult{err: fmt.Errorf("fleet: task %s: %s", tr.Key, cr.Err)}
		}
	}

	fst, statsErr := sub.SubmitterStats()
	if statsErr != nil {
		fst = fleet.Stats{} // telemetry only; never fail the campaign over it
	}
	res.Scheduler = campaign.Stats{
		Workers: fst.PeakWorkers,
		Tasks:   len(taskResults),
		Steals:  requeues,
		Busy:    busy,
		Wall:    wall,
	}
	if wall > 0 && fst.PeakWorkers > 0 {
		res.Scheduler.Utilization = busy.Seconds() / (wall.Seconds() * float64(fst.PeakWorkers))
	}

	var firstErr error
	for ii, it := range c.Items {
		sets := make([]*CurveSet, len(c.Strategies))
		for si, name := range c.Strategies {
			cs, err := aggregate(ctx, it.Problem.Name(), name, it.Scale, results[ii][si])
			sets[si] = cs
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("experiment: %s/%s: %w", it.Problem.Name(), name, err)
			}
		}
		res.Curves[it.Problem.Name()] = sets
	}
	return res, firstErr
}
