package experiment

// Campaign glue: flattens a (problem × strategy × repetition) grid into
// campaign.Task cells, drains them through the work-stealing scheduler,
// and aggregates per-cell results back into CurveSets. The single-flight
// dataset cache exploits that every strategy at repetition r shares the
// rep seed rng.Mix(Seed, r): the first cell to arrive builds (and
// measures) the repetition's pool/test split, the other strategies reuse
// it together with the already-encoded test matrix.

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// CampaignItem is one problem in a campaign with the scale to run it at
// (application figures typically use a different scale than kernels).
type CampaignItem struct {
	Problem bench.Problem
	Scale   Scale
}

// Campaign is a full figure campaign: every strategy on every item.
type Campaign struct {
	Items      []CampaignItem
	Strategies []string

	// Seed is the experiment seed. Repetition r of every (item,
	// strategy) cell derives its seed as rng.Mix(Seed, r), exactly like
	// RunStrategy, so campaign results are bit-identical to sequential
	// per-strategy runs with the same seed.
	Seed uint64

	// Workers bounds the global worker pool; <= 0 means GOMAXPROCS.
	Workers int
}

// QuarantinedTask names one campaign cell whose evaluator panicked. The
// worker recovered the panic; the cell's repetition is excluded from
// its curve set's averages and every other cell completed normally.
type QuarantinedTask struct {
	// Problem and Strategy are the cell's names; Rep its repetition.
	Problem, Strategy string
	Rep               int

	// Value is the recovered panic value; Stack the goroutine stack at
	// recovery.
	Value interface{}
	Stack string
}

// CampaignResult holds the aggregated curves and the drain's telemetry.
type CampaignResult struct {
	// Curves maps each item's problem name to its curve sets in
	// Strategies order. A cell that produced no checkpoints (e.g. a
	// cancellation before any repetition's first checkpoint) holds nil.
	Curves map[string][]*CurveSet

	// Quarantined lists the (problem, strategy, rep) cells whose
	// evaluator panicked, with the recovered value and stack trace.
	Quarantined []QuarantinedTask

	// Scheduler describes the drain: pool size, steals, utilization.
	Scheduler campaign.Stats

	// Datasets describes the dataset cache: builds, hits, labels saved.
	Datasets campaign.CacheStats
}

// RunCampaign drains the whole campaign grid through one bounded
// work-stealing worker pool. Compared to looping RunAll over problems it
// exposes (items × strategies × reps)-way parallelism instead of
// Reps-way, and builds each repetition dataset once per problem instead
// of once per strategy.
//
// Cancelling ctx lets every in-flight cell record the checkpoints it
// reached; the partial curves aggregate exactly as in RunStrategy and
// the first cell error is returned alongside the result. The result is
// nil only when a strategy name is unknown, which is rejected before any
// labeling runs.
//
// A cell whose evaluator panics is quarantined: the worker recovers the
// panic, the poisoned repetition is excluded from its curve set and
// listed in CampaignResult.Quarantined with its stack trace, and every
// other cell drains to completion.
func RunCampaign(ctx context.Context, c Campaign) (*CampaignResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	for _, it := range c.Items {
		for _, name := range c.Strategies {
			if _, err := strategyFor(name, it.Scale.Alpha); err != nil {
				return nil, fmt.Errorf("experiment: %s/%s: %w", it.Problem.Name(), name, err)
			}
		}
	}

	cache := campaign.NewDatasets()
	prov := cachedProvider(cache)
	results := make([][][]repResult, len(c.Items))
	var tasks []campaign.Task
	for ii, it := range c.Items {
		results[ii] = make([][]repResult, len(c.Strategies))
		for si, name := range c.Strategies {
			results[ii][si] = make([]repResult, it.Scale.Reps)
			for rep := 0; rep < it.Scale.Reps; rep++ {
				tasks = append(tasks, campaign.Task{
					Problem: ii, Strategy: si, Rep: rep,
					Run: func(ctx context.Context) {
						results[ii][si][rep] = runOnce(ctx, it.Problem, name, it.Scale,
							rng.Mix(c.Seed, uint64(rep)), prov)
					},
				})
			}
		}
	}

	res := &CampaignResult{Curves: make(map[string][]*CurveSet, len(c.Items))}
	res.Scheduler = campaign.Run(ctx, c.Workers, tasks)
	res.Datasets = cache.Stats()

	// A panicked cell never assigned its repResult; mark it so the
	// aggregation excludes just that repetition instead of indexing an
	// empty curve, and surface the quarantine with its stack trace.
	for _, p := range res.Scheduler.Panics {
		it := c.Items[p.Problem]
		name := c.Strategies[p.Strategy]
		results[p.Problem][p.Strategy][p.Rep] = repResult{
			err: fmt.Errorf("%w: %s/%s rep %d: %v", ErrRepPanic, it.Problem.Name(), name, p.Rep, p.Value),
		}
		res.Quarantined = append(res.Quarantined, QuarantinedTask{
			Problem: it.Problem.Name(), Strategy: name, Rep: p.Rep,
			Value: p.Value, Stack: p.Stack,
		})
	}

	var firstErr error
	for ii, it := range c.Items {
		sets := make([]*CurveSet, len(c.Strategies))
		for si, name := range c.Strategies {
			cs, err := aggregate(ctx, it.Problem.Name(), name, it.Scale, results[ii][si])
			sets[si] = cs
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("experiment: %s/%s: %w", it.Problem.Name(), name, err)
			}
		}
		res.Curves[it.Problem.Name()] = sets
	}
	return res, firstErr
}

// cachedProvider adapts the campaign dataset cache to a runOnce
// provider. It consumes one r.Split() whatever the cache outcome, so the
// repetition's downstream generator stream is bit-identical to
// buildDataset's; and because every strategy at one repetition passes an
// identically-seeded child, whichever cell builds first produces the
// exact dataset any of them would have.
func cachedProvider(cache *campaign.Datasets) datasetProvider {
	return func(ctx context.Context, p bench.Problem, sc Scale, repSeed uint64, r *rng.RNG) (*dataset.Dataset, [][]float64, error) {
		child := r.Split()
		key := campaign.Key{Problem: p.Name(), Seed: repSeed, PoolSize: sc.PoolSize, TestSize: sc.TestSize}
		return cache.Get(ctx, key, func() (*dataset.Dataset, error) {
			return dataset.Build(ctx, p, sc.PoolSize, sc.TestSize, child)
		})
	}
}
