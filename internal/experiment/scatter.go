package experiment

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Scatter is the data behind one panel of Fig. 9: the (μ, σ) belief of
// the final model over the whole pool, plus the (μ, σ) at selection time
// of every sample the strategy picked during the run.
type Scatter struct {
	Benchmark string
	Strategy  string

	// PoolMu/PoolSigma are the final model's beliefs over the pool
	// (the grey "·" points of Fig. 9).
	PoolMu, PoolSigma []float64

	// SelMu/SelSigma are the selection-time beliefs of the selected
	// samples (the green "×" points).
	SelMu, SelSigma []float64
}

// SelectionScatter runs Algorithm 1 once with selection recording and
// returns the Fig. 9 scatter data for the given strategy.
func SelectionScatter(ctx context.Context, p bench.Problem, strategyName string, sc Scale, seed uint64) (*Scatter, error) {
	r := rng.New(seed)
	ds, err := dataset.Build(ctx, p, sc.PoolSize, sc.TestSize, r.Split())
	if err != nil {
		return nil, err
	}
	strat, err := strategyFor(strategyName, sc.Alpha)
	if err != nil {
		return nil, err
	}
	ev := bench.Evaluator(p, r.Split())
	params := core.Params{
		NInit: sc.NInit, NBatch: sc.NBatch, NMax: sc.NMax,
		Forest: sc.Forest, RecordSelections: true,
	}
	res, err := core.Run(ctx, p.Space(), ds.Pool, ev, strat, params, r, nil)
	if err != nil {
		return nil, fmt.Errorf("experiment: scatter %s/%s: %w", p.Name(), strategyName, err)
	}
	poolX := p.Space().EncodeAll(ds.Pool)
	mu, sigma := res.Model.PredictBatch(poolX)
	s := &Scatter{
		Benchmark: p.Name(), Strategy: strategyName,
		PoolMu: mu, PoolSigma: sigma,
	}
	for _, sel := range res.Selections {
		s.SelMu = append(s.SelMu, sel.Mu)
		s.SelSigma = append(s.SelSigma, sel.Sigma)
	}
	return s, nil
}

// SpeedupRow is one bar of Fig. 7: the cumulative-cost speedup of PWU
// over PBUS to first reach a shared RMSE target on one benchmark.
type SpeedupRow struct {
	Benchmark string
	Speedup   float64
	Target    float64
	OK        bool
}

// PWUSpeedups computes Fig. 7 for each problem: run PWU and PBUS,
// choose the target as the slower method's converged RMSE with 5%
// headroom, and report cost(PBUS)/cost(PWU). The whole
// (problem × {PWU, PBUS} × repetition) grid drains through one campaign
// (see RunCampaign), with both strategies sharing each repetition's
// dataset.
func PWUSpeedups(ctx context.Context, problems []bench.Problem, sc Scale, seed uint64) ([]SpeedupRow, error) {
	items := make([]CampaignItem, len(problems))
	for i, p := range problems {
		items[i] = CampaignItem{Problem: p, Scale: sc}
	}
	res, err := RunCampaign(ctx, Campaign{
		Items: items, Strategies: []string{"PWU", "PBUS"},
		Seed: seed, Workers: sc.Workers,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]SpeedupRow, 0, len(problems))
	for _, p := range problems {
		sets := res.Curves[p.Name()]
		pwu, pbus := sets[0], sets[1]
		sp, target, ok := metrics.SpeedupToTarget(pwu.RMSECurve(), pwu.CCCurve(), pbus.RMSECurve(), pbus.CCCurve(), 1.05)
		rows = append(rows, SpeedupRow{Benchmark: p.Name(), Speedup: sp, Target: target, OK: ok})
	}
	return rows, nil
}
