// Package experiment is the figure harness: it runs repetitions of
// Algorithm 1 for (benchmark, strategy) pairs, evaluates the model at
// every checkpoint with the paper's metrics (RMSE@α on the held-out test
// set, cumulative labeling cost CC), and averages the resulting learning
// curves over repetitions — the exact procedure behind Figs. 2–7.
//
// Repetitions run in parallel; each derives an independent seed from the
// experiment seed, so results are reproducible regardless of GOMAXPROCS.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Scale bundles every size knob of an experiment so the same harness can
// run at paper scale or at a fast benchmark scale.
type Scale struct {
	// PoolSize and TestSize are the dataset split (paper: 7000/3000).
	PoolSize, TestSize int

	// NInit, NBatch, NMax parameterise Algorithm 1 (paper: 10/1/500).
	NInit, NBatch, NMax int

	// Reps is the number of repeated experiments averaged (paper: 10).
	Reps int

	// Alpha is the high-performance proportion for both the PWU score
	// and the RMSE@α metric (paper default: 0.05; also 0.01 and 0.10).
	Alpha float64

	// EvalEvery evaluates metrics at every EvalEvery-th labeled sample
	// (1 = every iteration, as in the paper; larger values thin the
	// checkpoints to speed up benchmark-scale runs).
	EvalEvery int

	// Forest configures the surrogate model.
	Forest forest.Config

	// Fitter overrides the surrogate model builder; nil means random
	// forest with the Forest configuration (see core.Params.Fitter).
	Fitter core.Fitter

	// Workers bounds repetition-level parallelism; <= 0 means
	// GOMAXPROCS.
	Workers int
}

// Paper returns the paper-scale settings of §III-D with α = 0.05.
func Paper() Scale {
	return Scale{
		PoolSize: 7000, TestSize: 3000,
		NInit: 10, NBatch: 1, NMax: 500,
		Reps: 10, Alpha: 0.05, EvalEvery: 1,
		Forest: forest.Config{NumTrees: 64},
	}
}

// Quick returns a reduced scale that preserves the experiment's shape
// but completes in seconds per (benchmark, strategy): smaller pool,
// fewer labels, fewer repetitions, thinner checkpoints.
func Quick() Scale {
	return Scale{
		PoolSize: 1200, TestSize: 500,
		NInit: 10, NBatch: 5, NMax: 160,
		Reps: 3, Alpha: 0.05, EvalEvery: 10,
		Forest: forest.Config{NumTrees: 32},
	}
}

// QuickApp returns the reduced scale used for the kripke/hypre
// application figures. The applications need the paper's batch size of 1
// to show their characteristic shapes (hypre's biased samplers overtake
// random only after a few hundred single-sample iterations), and their
// small parameter spaces make the extra refits cheap.
func QuickApp() Scale {
	return Scale{
		PoolSize: 2000, TestSize: 800,
		NInit: 10, NBatch: 1, NMax: 300,
		Reps: 3, Alpha: 0.05, EvalEvery: 10,
		Forest: forest.Config{NumTrees: 48},
	}
}

// Smoke returns the smallest useful scale, for unit tests.
func Smoke() Scale {
	return Scale{
		PoolSize: 300, TestSize: 150,
		NInit: 8, NBatch: 10, NMax: 60,
		Reps: 2, Alpha: 0.1, EvalEvery: 10,
		Forest: forest.Config{NumTrees: 16},
	}
}

func (s Scale) workers() int {
	if s.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Workers
}

// CurveSet is the averaged learning curves of one strategy on one
// benchmark: RMSE@α and CC as functions of the number of labeled
// samples.
type CurveSet struct {
	Benchmark string
	Strategy  string
	Alpha     float64

	// Samples are the checkpoint training-set sizes.
	Samples []int

	// RMSE[i] is the mean over repetitions of RMSE@α at Samples[i];
	// RMSEStd is the between-repetition standard deviation.
	RMSE    []float64
	RMSEStd []float64

	// CC[i] is the mean cumulative labeling cost at Samples[i].
	CC []float64

	// Stats aggregates the run engine's telemetry over every completed
	// repetition (fit/select/eval wall time, retries, cache hits).
	Stats core.RunStats

	// Reps is the number of repetitions the curves average; it equals
	// the scale's Reps except for partial results after a cancellation.
	Reps int
}

// merge accumulates one repetition's engine telemetry.
func (c *CurveSet) merge(s core.RunStats) {
	c.Stats.FitTime += s.FitTime
	c.Stats.SelectTime += s.SelectTime
	c.Stats.EvalTime += s.EvalTime
	c.Stats.EvalRetries += s.EvalRetries
	c.Stats.EvalSkips += s.EvalSkips
	c.Stats.FailedCost += s.FailedCost
	c.Stats.CachedIterations += s.CachedIterations
	c.Stats.Events += s.Events
}

// RMSECurve returns the RMSE learning curve as a metrics.Curve.
func (c *CurveSet) RMSECurve() metrics.Curve {
	return metrics.Curve{Samples: c.Samples, Values: c.RMSE}
}

// CCCurve returns the cost curve as a metrics.Curve.
func (c *CurveSet) CCCurve() metrics.Curve {
	return metrics.Curve{Samples: c.Samples, Values: c.CC}
}

// strategyFor instantiates the named strategy with the scale's α.
func strategyFor(name string, alpha float64) (core.Strategy, error) {
	return core.ByName(name, alpha)
}

// repResult is one repetition's outcome. On cancellation rmse/cc hold
// the prefix of checkpoints reached before the interruption.
type repResult struct {
	rmse, cc []float64
	stats    core.RunStats
	err      error
}

// RunStrategy runs sc.Reps repetitions of Algorithm 1 with the named
// strategy on problem p and returns the averaged curves. Repetition r
// uses an independent dataset and seed derived from seed, matching the
// paper's "10 random experiments" protocol.
//
// Cancelling ctx drains the repetition workers and returns the partial
// curve set truncated to the checkpoints every repetition reached,
// alongside an error wrapping ctx.Err(); the partial set is nil when no
// repetition reached its first checkpoint.
func RunStrategy(ctx context.Context, p bench.Problem, strategyName string, sc Scale, seed uint64) (*CurveSet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	checkpoints := checkpointSizes(sc)
	reps := make([]repResult, sc.Reps)

	var wg sync.WaitGroup
	sem := make(chan struct{}, sc.workers())
	for rep := 0; rep < sc.Reps; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			// Worker seeds derive from (seed, rep), never from the
			// launch schedule, so results are identical for any Workers.
			reps[rep] = runOnce(ctx, p, strategyName, sc, rng.Mix(seed, uint64(rep)))
		}(rep)
	}
	wg.Wait()

	cancelled := false
	for _, rr := range reps {
		if rr.err == nil {
			continue
		}
		if errors.Is(rr.err, context.Canceled) || errors.Is(rr.err, context.DeadlineExceeded) {
			cancelled = true
			continue
		}
		return nil, rr.err
	}

	// On cancellation every repetition contributes only the checkpoints
	// it reached; average over the common prefix.
	usable := len(checkpoints)
	if cancelled {
		for _, rr := range reps {
			if len(rr.rmse) < usable {
				usable = len(rr.rmse)
			}
		}
		if usable == 0 {
			return nil, fmt.Errorf("experiment: %s/%s interrupted before the first checkpoint: %w",
				p.Name(), strategyName, ctx.Err())
		}
	}

	cs := &CurveSet{
		Benchmark: p.Name(), Strategy: strategyName, Alpha: sc.Alpha,
		Samples: checkpoints[:usable],
		RMSE:    make([]float64, usable),
		RMSEStd: make([]float64, usable),
		CC:      make([]float64, usable),
		Reps:    sc.Reps,
	}
	for i := 0; i < usable; i++ {
		var rmse, cc []float64
		for rep := 0; rep < sc.Reps; rep++ {
			rmse = append(rmse, reps[rep].rmse[i])
			cc = append(cc, reps[rep].cc[i])
		}
		cs.RMSE[i] = mean(rmse)
		cs.RMSEStd[i] = stddev(rmse)
		cs.CC[i] = mean(cc)
	}
	for _, rr := range reps {
		cs.merge(rr.stats)
	}
	if cancelled {
		return cs, fmt.Errorf("experiment: %s/%s interrupted at checkpoint %d/%d: %w",
			p.Name(), strategyName, usable, len(checkpoints), ctx.Err())
	}
	return cs, nil
}

// runOnce executes one repetition and returns the per-checkpoint RMSE@α
// and CC. A cancellation returns the checkpoints reached so far with the
// ctx error.
func runOnce(ctx context.Context, p bench.Problem, strategyName string, sc Scale, seed uint64) repResult {
	var rr repResult
	r := rng.New(seed)
	ds, err := dataset.Build(ctx, p, sc.PoolSize, sc.TestSize, r.Split())
	if err != nil {
		rr.err = err
		return rr
	}
	strat, err := strategyFor(strategyName, sc.Alpha)
	if err != nil {
		rr.err = err
		return rr
	}
	testX := ds.TestX()

	checkpoints := checkpointSizes(sc)
	want := map[int]bool{}
	for _, s := range checkpoints {
		want[s] = true
	}

	lastRecorded := -1
	obs := func(st *core.State) error {
		n := len(st.TrainY)
		// n == lastRecorded guards against double-recording a
		// checkpoint when a whole batch is skipped under FailSkip.
		if !want[n] || n == lastRecorded {
			return nil
		}
		lastRecorded = n
		pred, _ := st.Model.PredictBatch(testX)
		rr.rmse = append(rr.rmse, metrics.RMSEAtAlpha(ds.TestY, pred, sc.Alpha))
		rr.cc = append(rr.cc, metrics.CumulativeCost(st.TrainY))
		return nil
	}

	ev := bench.Evaluator(p, r.Split())
	params := core.Params{NInit: sc.NInit, NBatch: sc.NBatch, NMax: sc.NMax, Forest: sc.Forest, Fitter: sc.Fitter}
	res, err := core.Run(ctx, p.Space(), ds.Pool, ev, strat, params, r, obs)
	if res != nil {
		rr.stats = res.Telemetry()
	}
	if err != nil {
		rr.err = err
		return rr
	}
	if len(rr.rmse) != len(checkpoints) {
		rr.err = fmt.Errorf("experiment: recorded %d checkpoints, want %d", len(rr.rmse), len(checkpoints))
	}
	return rr
}

// checkpointSizes lists the training-set sizes at which metrics are
// evaluated: the cold-start size, then every EvalEvery-th size reachable
// by the batch schedule, always including NMax.
//
// The sizes are normalized through core.Params.Normalized so the list
// stays in lockstep with the engine's actual labeling schedule: with the
// raw scale values a zero NBatch would never advance (the engine
// defaults it to 1) and a zero NInit/NMax would enumerate a schedule the
// engine never runs.
func checkpointSizes(sc Scale) []int {
	norm := core.Params{NInit: sc.NInit, NBatch: sc.NBatch, NMax: sc.NMax}.Normalized()
	every := sc.EvalEvery
	if every < 1 {
		every = 1
	}
	var out []int
	n := norm.NInit
	out = append(out, n)
	last := n
	for n < norm.NMax {
		n += norm.NBatch
		if n > norm.NMax {
			n = norm.NMax
		}
		if n-last >= every || n == norm.NMax {
			out = append(out, n)
			last = n
		}
	}
	return out
}

// RunAll runs every strategy in names on p and returns the curve sets in
// order. Each strategy sees the same experiment seed so repetition r of
// every strategy works on an identically-distributed (not identical)
// dataset draw.
//
// On cancellation it returns the curve sets completed so far (plus the
// interrupted strategy's partial set, when it reached any checkpoint)
// together with the error.
func RunAll(ctx context.Context, p bench.Problem, names []string, sc Scale, seed uint64) ([]*CurveSet, error) {
	out := make([]*CurveSet, 0, len(names))
	for _, name := range names {
		cs, err := RunStrategy(ctx, p, name, sc, seed)
		if cs != nil {
			out = append(out, cs)
		}
		if err != nil {
			return out, fmt.Errorf("experiment: %s/%s: %w", p.Name(), name, err)
		}
	}
	return out, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// stddev is the population standard deviation, adequate for error bars
// over repetitions.
func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := mean(xs)
	var acc float64
	for _, x := range xs {
		acc += (x - m) * (x - m)
	}
	return math.Sqrt(acc / float64(len(xs)))
}
