// Package experiment is the figure harness: it runs repetitions of
// Algorithm 1 for (benchmark, strategy) pairs, evaluates the model at
// every checkpoint with the paper's metrics (RMSE@α on the held-out test
// set, cumulative labeling cost CC), and averages the resulting learning
// curves over repetitions — the exact procedure behind Figs. 2–7.
//
// Repetitions run in parallel; each derives an independent seed from the
// experiment seed, so results are reproducible regardless of GOMAXPROCS.
package experiment

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Scale bundles every size knob of an experiment so the same harness can
// run at paper scale or at a fast benchmark scale.
type Scale struct {
	// PoolSize and TestSize are the dataset split (paper: 7000/3000).
	PoolSize, TestSize int

	// NInit, NBatch, NMax parameterise Algorithm 1 (paper: 10/1/500).
	NInit, NBatch, NMax int

	// Reps is the number of repeated experiments averaged (paper: 10).
	Reps int

	// Alpha is the high-performance proportion for both the PWU score
	// and the RMSE@α metric (paper default: 0.05; also 0.01 and 0.10).
	Alpha float64

	// EvalEvery evaluates metrics at every EvalEvery-th labeled sample
	// (1 = every iteration, as in the paper; larger values thin the
	// checkpoints to speed up benchmark-scale runs).
	EvalEvery int

	// Forest configures the surrogate model.
	Forest forest.Config

	// Fitter overrides the surrogate model builder; nil means random
	// forest with the Forest configuration (see core.Params.Fitter).
	Fitter core.Fitter

	// Workers bounds repetition-level parallelism; <= 0 means
	// GOMAXPROCS.
	Workers int
}

// Paper returns the paper-scale settings of §III-D with α = 0.05.
func Paper() Scale {
	return Scale{
		PoolSize: 7000, TestSize: 3000,
		NInit: 10, NBatch: 1, NMax: 500,
		Reps: 10, Alpha: 0.05, EvalEvery: 1,
		Forest: forest.Config{NumTrees: 64},
	}
}

// Quick returns a reduced scale that preserves the experiment's shape
// but completes in seconds per (benchmark, strategy): smaller pool,
// fewer labels, fewer repetitions, thinner checkpoints.
func Quick() Scale {
	return Scale{
		PoolSize: 1200, TestSize: 500,
		NInit: 10, NBatch: 5, NMax: 160,
		Reps: 3, Alpha: 0.05, EvalEvery: 10,
		Forest: forest.Config{NumTrees: 32},
	}
}

// QuickApp returns the reduced scale used for the kripke/hypre
// application figures. The applications need the paper's batch size of 1
// to show their characteristic shapes (hypre's biased samplers overtake
// random only after a few hundred single-sample iterations), and their
// small parameter spaces make the extra refits cheap.
func QuickApp() Scale {
	return Scale{
		PoolSize: 2000, TestSize: 800,
		NInit: 10, NBatch: 1, NMax: 300,
		Reps: 3, Alpha: 0.05, EvalEvery: 10,
		Forest: forest.Config{NumTrees: 48},
	}
}

// Smoke returns the smallest useful scale, for unit tests.
func Smoke() Scale {
	return Scale{
		PoolSize: 300, TestSize: 150,
		NInit: 8, NBatch: 10, NMax: 60,
		Reps: 2, Alpha: 0.1, EvalEvery: 10,
		Forest: forest.Config{NumTrees: 16},
	}
}

func (s Scale) workers() int {
	if s.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Workers
}

// CurveSet is the averaged learning curves of one strategy on one
// benchmark: RMSE@α and CC as functions of the number of labeled
// samples.
type CurveSet struct {
	Benchmark string
	Strategy  string
	Alpha     float64

	// Samples are the checkpoint training-set sizes.
	Samples []int

	// RMSE[i] is the mean over repetitions of RMSE@α at Samples[i];
	// RMSEStd is the between-repetition standard deviation.
	RMSE    []float64
	RMSEStd []float64

	// CC[i] is the mean cumulative labeling cost at Samples[i].
	CC []float64
}

// RMSECurve returns the RMSE learning curve as a metrics.Curve.
func (c *CurveSet) RMSECurve() metrics.Curve {
	return metrics.Curve{Samples: c.Samples, Values: c.RMSE}
}

// CCCurve returns the cost curve as a metrics.Curve.
func (c *CurveSet) CCCurve() metrics.Curve {
	return metrics.Curve{Samples: c.Samples, Values: c.CC}
}

// strategyFor instantiates the named strategy with the scale's α.
func strategyFor(name string, alpha float64) (core.Strategy, error) {
	return core.ByName(name, alpha)
}

// RunStrategy runs sc.Reps repetitions of Algorithm 1 with the named
// strategy on problem p and returns the averaged curves. Repetition r
// uses an independent dataset and seed derived from seed, matching the
// paper's "10 random experiments" protocol.
func RunStrategy(p bench.Problem, strategyName string, sc Scale, seed uint64) (*CurveSet, error) {
	checkpoints := checkpointSizes(sc)
	repRMSE := make([][]float64, sc.Reps)
	repCC := make([][]float64, sc.Reps)
	errs := make([]error, sc.Reps)

	var wg sync.WaitGroup
	sem := make(chan struct{}, sc.workers())
	for rep := 0; rep < sc.Reps; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			repRMSE[rep], repCC[rep], errs[rep] = runOnce(p, strategyName, sc, rng.Mix(seed, uint64(rep)))
		}(rep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	cs := &CurveSet{
		Benchmark: p.Name(), Strategy: strategyName, Alpha: sc.Alpha,
		Samples: checkpoints,
		RMSE:    make([]float64, len(checkpoints)),
		RMSEStd: make([]float64, len(checkpoints)),
		CC:      make([]float64, len(checkpoints)),
	}
	for i := range checkpoints {
		var rmse, cc []float64
		for rep := 0; rep < sc.Reps; rep++ {
			rmse = append(rmse, repRMSE[rep][i])
			cc = append(cc, repCC[rep][i])
		}
		cs.RMSE[i] = mean(rmse)
		cs.RMSEStd[i] = stddev(rmse)
		cs.CC[i] = mean(cc)
	}
	return cs, nil
}

// runOnce executes one repetition and returns the per-checkpoint RMSE@α
// and CC.
func runOnce(p bench.Problem, strategyName string, sc Scale, seed uint64) (rmse, cc []float64, err error) {
	r := rng.New(seed)
	ds := dataset.Build(p, sc.PoolSize, sc.TestSize, r.Split())
	strat, err := strategyFor(strategyName, sc.Alpha)
	if err != nil {
		return nil, nil, err
	}
	testX := ds.TestX()

	checkpoints := checkpointSizes(sc)
	want := map[int]bool{}
	for _, s := range checkpoints {
		want[s] = true
	}

	obs := func(st *core.State) error {
		n := len(st.TrainY)
		if !want[n] {
			return nil
		}
		pred, _ := st.Model.PredictBatch(testX)
		rmse = append(rmse, metrics.RMSEAtAlpha(ds.TestY, pred, sc.Alpha))
		cc = append(cc, metrics.CumulativeCost(st.TrainY))
		return nil
	}

	ev := bench.Evaluator(p, r.Split())
	params := core.Params{NInit: sc.NInit, NBatch: sc.NBatch, NMax: sc.NMax, Forest: sc.Forest, Fitter: sc.Fitter}
	if _, err := core.Run(p.Space(), ds.Pool, ev, strat, params, r, obs); err != nil {
		return nil, nil, err
	}
	if len(rmse) != len(checkpoints) {
		return nil, nil, fmt.Errorf("experiment: recorded %d checkpoints, want %d", len(rmse), len(checkpoints))
	}
	return rmse, cc, nil
}

// checkpointSizes lists the training-set sizes at which metrics are
// evaluated: the cold-start size, then every EvalEvery-th size reachable
// by the batch schedule, always including NMax.
func checkpointSizes(sc Scale) []int {
	every := sc.EvalEvery
	if every < 1 {
		every = 1
	}
	var out []int
	n := sc.NInit
	out = append(out, n)
	last := n
	for n < sc.NMax {
		n += sc.NBatch
		if n > sc.NMax {
			n = sc.NMax
		}
		if n-last >= every || n == sc.NMax {
			out = append(out, n)
			last = n
		}
	}
	return out
}

// RunAll runs every strategy in names on p and returns the curve sets in
// order. Each strategy sees the same experiment seed so repetition r of
// every strategy works on an identically-distributed (not identical)
// dataset draw.
func RunAll(p bench.Problem, names []string, sc Scale, seed uint64) ([]*CurveSet, error) {
	out := make([]*CurveSet, 0, len(names))
	for _, name := range names {
		cs, err := RunStrategy(p, name, sc, seed)
		if err != nil {
			return nil, fmt.Errorf("experiment: %s/%s: %w", p.Name(), name, err)
		}
		out = append(out, cs)
	}
	return out, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// stddev is the population standard deviation, adequate for error bars
// over repetitions.
func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := mean(xs)
	var acc float64
	for _, x := range xs {
		acc += (x - m) * (x - m)
	}
	return math.Sqrt(acc / float64(len(xs)))
}
