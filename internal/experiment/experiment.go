// Package experiment is the figure harness: it runs repetitions of
// Algorithm 1 for (benchmark, strategy) pairs, evaluates the model at
// every checkpoint with the paper's metrics (RMSE@α on the held-out test
// set, cumulative labeling cost CC), and averages the resulting learning
// curves over repetitions — the exact procedure behind Figs. 2–7.
//
// Repetitions run in parallel; each derives an independent seed from the
// experiment seed, so results are reproducible regardless of GOMAXPROCS.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// Scale bundles every size knob of an experiment so the same harness can
// run at paper scale or at a fast benchmark scale.
type Scale struct {
	// PoolSize and TestSize are the dataset split (paper: 7000/3000).
	PoolSize, TestSize int

	// NInit, NBatch, NMax parameterise Algorithm 1 (paper: 10/1/500).
	NInit, NBatch, NMax int

	// Reps is the number of repeated experiments averaged (paper: 10).
	Reps int

	// Alpha is the high-performance proportion for both the PWU score
	// and the RMSE@α metric (paper default: 0.05; also 0.01 and 0.10).
	Alpha float64

	// EvalEvery evaluates metrics at every EvalEvery-th labeled sample
	// (1 = every iteration, as in the paper; larger values thin the
	// checkpoints to speed up benchmark-scale runs).
	EvalEvery int

	// Forest configures the surrogate model.
	Forest forest.Config

	// Fitter overrides the surrogate model builder; nil means random
	// forest with the Forest configuration (see core.Params.Fitter).
	Fitter core.Fitter

	// WarmUpdate refreshes the surrogate incrementally between
	// iterations instead of refitting from scratch (see
	// core.Params.WarmUpdate). Warm runs keep one forest alive across
	// checkpoints, which lets the harness serve every checkpoint's
	// test-set evaluation from the forest's per-tree prediction cache.
	WarmUpdate bool

	// Failure is the engine's retry/timeout policy for failing or
	// hanging evaluations (see core.FailurePolicy). The zero value
	// keeps the historical behavior: no retries, no deadline.
	Failure core.FailurePolicy

	// Guard screens loop-phase labels against the surrogate's
	// prediction interval (see core.LabelGuard); the zero value
	// disables it.
	Guard core.LabelGuard

	// Chaos injects deterministic faults into every repetition's
	// evaluator (see chaos.Scenario). Each repetition derives its fault
	// streams from (Chaos.Seed, rep seed), so a chaos campaign is as
	// reproducible as a clean one. The zero scenario injects nothing.
	Chaos chaos.Scenario

	// Workers bounds run-level parallelism (repetitions in RunStrategy,
	// the whole task grid in RunCampaign); <= 0 means GOMAXPROCS.
	Workers int
}

// Paper returns the paper-scale settings of §III-D with α = 0.05.
func Paper() Scale {
	return Scale{
		PoolSize: 7000, TestSize: 3000,
		NInit: 10, NBatch: 1, NMax: 500,
		Reps: 10, Alpha: 0.05, EvalEvery: 1,
		Forest: forest.Config{NumTrees: 64},
	}
}

// Quick returns a reduced scale that preserves the experiment's shape
// but completes in seconds per (benchmark, strategy): smaller pool,
// fewer labels, fewer repetitions, thinner checkpoints.
func Quick() Scale {
	return Scale{
		PoolSize: 1200, TestSize: 500,
		NInit: 10, NBatch: 5, NMax: 160,
		Reps: 3, Alpha: 0.05, EvalEvery: 10,
		Forest: forest.Config{NumTrees: 32},
	}
}

// QuickApp returns the reduced scale used for the kripke/hypre
// application figures. The applications need the paper's batch size of 1
// to show their characteristic shapes (hypre's biased samplers overtake
// random only after a few hundred single-sample iterations), and their
// small parameter spaces make the extra refits cheap.
func QuickApp() Scale {
	return Scale{
		PoolSize: 2000, TestSize: 800,
		NInit: 10, NBatch: 1, NMax: 300,
		Reps: 3, Alpha: 0.05, EvalEvery: 10,
		Forest: forest.Config{NumTrees: 48},
	}
}

// Smoke returns the smallest useful scale, for unit tests.
func Smoke() Scale {
	return Scale{
		PoolSize: 300, TestSize: 150,
		NInit: 8, NBatch: 10, NMax: 60,
		Reps: 2, Alpha: 0.1, EvalEvery: 10,
		Forest: forest.Config{NumTrees: 16},
	}
}

func (s Scale) workers() int {
	if s.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return s.Workers
}

// CurveSet is the averaged learning curves of one strategy on one
// benchmark: RMSE@α and CC as functions of the number of labeled
// samples.
type CurveSet struct {
	Benchmark string
	Strategy  string
	Alpha     float64

	// Samples are the checkpoint training-set sizes.
	Samples []int

	// RMSE[i] is the mean over repetitions of RMSE@α at Samples[i];
	// RMSEStd is the between-repetition standard deviation.
	RMSE    []float64
	RMSEStd []float64

	// CC[i] is the mean cumulative labeling cost at Samples[i].
	CC []float64

	// Stats aggregates the run engine's telemetry over every completed
	// repetition (fit/select/eval wall time, retries, cache hits).
	Stats core.RunStats

	// Reps is the number of repetitions the curves average; it equals
	// the scale's Reps except for partial results after a cancellation.
	Reps int
}

// merge accumulates one repetition's engine telemetry.
func (c *CurveSet) merge(s core.RunStats) {
	c.Stats.FitTime += s.FitTime
	c.Stats.SelectTime += s.SelectTime
	c.Stats.EvalTime += s.EvalTime
	c.Stats.EvalRetries += s.EvalRetries
	c.Stats.EvalTimeouts += s.EvalTimeouts
	c.Stats.EvalSkips += s.EvalSkips
	c.Stats.FailedCost += s.FailedCost
	c.Stats.GuardFlagged += s.GuardFlagged
	c.Stats.GuardRemeasured += s.GuardRemeasured
	c.Stats.GuardQuarantined += s.GuardQuarantined
	c.Stats.GuardCost += s.GuardCost
	c.Stats.CachedIterations += s.CachedIterations
	c.Stats.Events += s.Events
}

// RMSECurve returns the RMSE learning curve as a metrics.Curve.
func (c *CurveSet) RMSECurve() metrics.Curve {
	return metrics.Curve{Samples: c.Samples, Values: c.RMSE}
}

// CCCurve returns the cost curve as a metrics.Curve.
func (c *CurveSet) CCCurve() metrics.Curve {
	return metrics.Curve{Samples: c.Samples, Values: c.CC}
}

// strategyFor instantiates the named strategy with the scale's α.
func strategyFor(name string, alpha float64) (core.Strategy, error) {
	return core.ByName(name, alpha)
}

// repResult is one repetition's outcome. On cancellation rmse/cc hold
// the prefix of checkpoints reached before the interruption.
type repResult struct {
	rmse, cc []float64
	stats    core.RunStats
	err      error
}

// ErrRepPanic marks a repetition whose evaluator panicked. The campaign
// scheduler recovered the panic and quarantined the cell; aggregate
// excludes the repetition from the averages instead of failing the
// whole (problem, strategy) curve set.
var ErrRepPanic = errors.New("experiment: repetition quarantined after evaluator panic")

// RunStrategy runs sc.Reps repetitions of Algorithm 1 with the named
// strategy on problem p and returns the averaged curves. Repetition r
// uses an independent dataset and seed derived from seed, matching the
// paper's "10 random experiments" protocol.
//
// Cancelling ctx drains the repetition workers and returns the partial
// curve set averaged over the repetitions that reached at least one
// checkpoint, truncated to the checkpoints all of them reached,
// alongside an error wrapping ctx.Err(); the partial set is nil when no
// repetition reached its first checkpoint.
func RunStrategy(ctx context.Context, p bench.Problem, strategyName string, sc Scale, seed uint64) (*CurveSet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reps := runReps(ctx, p, strategyName, sc, seed, buildDataset)
	return aggregate(ctx, p.Name(), strategyName, sc, reps)
}

// runReps drains sc.Reps repetitions through a bounded worker pool.
// Repetition seeds derive from (seed, rep), never from the launch
// schedule, so results are identical for any Workers.
func runReps(ctx context.Context, p bench.Problem, strategyName string, sc Scale, seed uint64, prov datasetProvider) []repResult {
	reps := make([]repResult, sc.Reps)
	var wg sync.WaitGroup
	sem := make(chan struct{}, sc.workers())
	for rep := 0; rep < sc.Reps; rep++ {
		wg.Add(1)
		go func(rep int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			reps[rep] = runOnce(ctx, p, strategyName, sc, rng.Mix(seed, uint64(rep)), prov)
		}(rep)
	}
	wg.Wait()
	return reps
}

// aggregate averages repetition results into one curve set.
//
// On cancellation, only the repetitions that reached at least one
// checkpoint contribute, averaged over the common prefix of checkpoints
// they all reached; CurveSet.Reps records how many contributed. A
// repetition quarantined after an evaluator panic (ErrRepPanic) is
// excluded the same way without failing the set. The set is nil only
// when no repetition contributed. Engine telemetry is merged from every
// repetition either way — interrupted repetitions spent their
// fit/select/eval time too.
func aggregate(ctx context.Context, benchmark, strategyName string, sc Scale, reps []repResult) (*CurveSet, error) {
	checkpoints := checkpointSizes(sc)
	cancelled := false
	quarantined := 0
	var cancelErr error
	for _, rr := range reps {
		if rr.err == nil {
			continue
		}
		switch {
		case errors.Is(rr.err, ErrRepPanic):
			// A poisoned repetition: its curves are lost but the
			// healthy repetitions still average into a valid set.
			quarantined++
		case errors.Is(rr.err, context.Canceled) || errors.Is(rr.err, context.DeadlineExceeded):
			cancelled = true
			if cancelErr == nil {
				cancelErr = rr.err
			}
		default:
			return nil, rr.err
		}
	}
	if cancelled && ctx.Err() != nil {
		cancelErr = ctx.Err()
	}

	contributing := reps
	usable := len(checkpoints)
	if cancelled || quarantined > 0 {
		contributing = nil
		for _, rr := range reps {
			if errors.Is(rr.err, ErrRepPanic) {
				continue
			}
			if len(rr.rmse) > 0 {
				contributing = append(contributing, rr)
			}
		}
		if len(contributing) == 0 {
			if cancelled {
				return nil, fmt.Errorf("experiment: %s/%s interrupted before the first checkpoint: %w",
					benchmark, strategyName, cancelErr)
			}
			return nil, fmt.Errorf("experiment: %s/%s: every repetition quarantined: %w",
				benchmark, strategyName, ErrRepPanic)
		}
		for _, rr := range contributing {
			if len(rr.rmse) < usable {
				usable = len(rr.rmse)
			}
		}
	}

	cs := &CurveSet{
		Benchmark: benchmark, Strategy: strategyName, Alpha: sc.Alpha,
		Samples: checkpoints[:usable],
		RMSE:    make([]float64, usable),
		RMSEStd: make([]float64, usable),
		CC:      make([]float64, usable),
		Reps:    len(contributing),
	}
	for i := 0; i < usable; i++ {
		var rmse, cc []float64
		for _, rr := range contributing {
			rmse = append(rmse, rr.rmse[i])
			cc = append(cc, rr.cc[i])
		}
		cs.RMSE[i] = mean(rmse)
		cs.RMSEStd[i] = stddev(rmse)
		cs.CC[i] = mean(cc)
	}
	for _, rr := range reps {
		cs.merge(rr.stats)
	}
	if cancelled {
		return cs, fmt.Errorf("experiment: %s/%s interrupted at checkpoint %d/%d: %w",
			benchmark, strategyName, usable, len(checkpoints), cancelErr)
	}
	return cs, nil
}

// datasetProvider hands runOnce its repetition dataset and encoded test
// matrix. r is the repetition's root generator: a provider must consume
// exactly one r.Split() whether it builds the dataset or serves a cached
// one, so the generator stream feeding the evaluator and the engine is
// bit-identical across providers.
type datasetProvider func(ctx context.Context, p bench.Problem, sc Scale, repSeed uint64, r *rng.RNG) (*dataset.Dataset, [][]float64, error)

// buildDataset is the direct provider: build the repetition's dataset in
// place, as standalone RunStrategy calls always have.
func buildDataset(ctx context.Context, p bench.Problem, sc Scale, _ uint64, r *rng.RNG) (*dataset.Dataset, [][]float64, error) {
	ds, err := dataset.Build(ctx, p, sc.PoolSize, sc.TestSize, r.Split())
	if err != nil {
		return nil, nil, err
	}
	return ds, ds.TestX(), nil
}

// testPredict evaluates the surrogate on the held-out test matrix. Warm
// runs keep one forest alive across checkpoints with only a few trees
// refreshed in between, so the cached per-tree path recomputes just
// those trees (bit-identical to PredictBatch); cold refits see a fresh
// model at every checkpoint, where a cache could never be reused and the
// plain batch path avoids carrying one.
func testPredict(m core.Model, testX [][]float64, warm bool) []float64 {
	if cp, ok := m.(core.CachedBatchPredictor); warm && ok {
		mu, _ := cp.PredictCached(testX)
		return mu
	}
	mu, _ := m.PredictBatch(testX)
	return mu
}

// runOnce executes one repetition and returns the per-checkpoint RMSE@α
// and CC. A cancellation returns the checkpoints reached so far with the
// ctx error.
func runOnce(ctx context.Context, p bench.Problem, strategyName string, sc Scale, seed uint64, prov datasetProvider) repResult {
	var rr repResult
	r := rng.New(seed)
	ds, testX, err := prov(ctx, p, sc, seed, r)
	if err != nil {
		rr.err = err
		return rr
	}
	strat, err := strategyFor(strategyName, sc.Alpha)
	if err != nil {
		rr.err = err
		return rr
	}

	checkpoints := checkpointSizes(sc)
	want := map[int]bool{}
	for _, s := range checkpoints {
		want[s] = true
	}

	lastRecorded := -1
	obs := func(st *core.State) error {
		n := len(st.TrainY)
		// n == lastRecorded guards against double-recording a
		// checkpoint when a whole batch is skipped under FailSkip.
		if !want[n] || n == lastRecorded {
			return nil
		}
		lastRecorded = n
		pred := testPredict(st.Model, testX, sc.WarmUpdate)
		rr.rmse = append(rr.rmse, metrics.RMSEAtAlpha(ds.TestY, pred, sc.Alpha))
		rr.cc = append(rr.cc, metrics.CumulativeCost(st.TrainY))
		return nil
	}

	var ev core.Evaluator = bench.Evaluator(p, r.Split())
	if sc.Chaos.Active() {
		// Fault streams derive from (scenario seed, rep seed): every
		// repetition misbehaves in its own reproducible way.
		ev = chaos.New(sc.Chaos, rng.Mix(sc.Chaos.Seed, seed), ev)
	}
	params := core.Params{NInit: sc.NInit, NBatch: sc.NBatch, NMax: sc.NMax,
		Forest: sc.Forest, Fitter: sc.Fitter, WarmUpdate: sc.WarmUpdate,
		Failure: sc.Failure, Guard: sc.Guard}
	res, err := core.Run(ctx, p.Space(), ds.Pool, ev, strat, params, r, obs)
	if res != nil {
		rr.stats = res.Telemetry()
	}
	if err != nil {
		rr.err = err
		return rr
	}
	if len(rr.rmse) != len(checkpoints) {
		rr.err = fmt.Errorf("experiment: recorded %d checkpoints, want %d", len(rr.rmse), len(checkpoints))
	}
	return rr
}

// checkpointSizes lists the training-set sizes at which metrics are
// evaluated: the cold-start size, then every EvalEvery-th size reachable
// by the batch schedule, always including NMax.
//
// The sizes are normalized through core.Params.Normalized so the list
// stays in lockstep with the engine's actual labeling schedule: with the
// raw scale values a zero NBatch would never advance (the engine
// defaults it to 1) and a zero NInit/NMax would enumerate a schedule the
// engine never runs.
func checkpointSizes(sc Scale) []int {
	norm := core.Params{NInit: sc.NInit, NBatch: sc.NBatch, NMax: sc.NMax}.Normalized()
	every := sc.EvalEvery
	if every < 1 {
		every = 1
	}
	var out []int
	n := norm.NInit
	out = append(out, n)
	last := n
	for n < norm.NMax {
		n += norm.NBatch
		if n > norm.NMax {
			n = norm.NMax
		}
		if n-last >= every || n == norm.NMax {
			out = append(out, n)
			last = n
		}
	}
	return out
}

// RunAll runs every strategy in names on p and returns the curve sets
// in strategy order. The (strategy × repetition) grid drains through the
// campaign engine (see RunCampaign): one global work-stealing worker
// pool, with each repetition's dataset built once and shared by every
// strategy. Each strategy sees the same experiment seed, so repetition r
// of every strategy works on the same dataset draw; the curves are
// bit-identical to RunAllSequential's for any worker count.
//
// On cancellation it returns the curve sets that reached any checkpoint
// (partial sets, see RunStrategy) together with the first error.
func RunAll(ctx context.Context, p bench.Problem, names []string, sc Scale, seed uint64) ([]*CurveSet, error) {
	res, err := RunCampaign(ctx, Campaign{
		Items:      []CampaignItem{{Problem: p, Scale: sc}},
		Strategies: names,
		Seed:       seed,
		Workers:    sc.Workers,
	})
	if res == nil {
		return nil, err
	}
	out := make([]*CurveSet, 0, len(names))
	for _, cs := range res.Curves[p.Name()] {
		if cs != nil {
			out = append(out, cs)
		}
	}
	return out, err
}

// RunAllSequential is the pre-campaign drain: strategies run one after
// another, each parallel only across its own repetitions, each
// repetition building its own dataset. Retained as the baseline the
// campaign engine's equivalence gate and benchmarks compare against.
func RunAllSequential(ctx context.Context, p bench.Problem, names []string, sc Scale, seed uint64) ([]*CurveSet, error) {
	out := make([]*CurveSet, 0, len(names))
	for _, name := range names {
		cs, err := RunStrategy(ctx, p, name, sc, seed)
		if cs != nil {
			out = append(out, cs)
		}
		if err != nil {
			return out, fmt.Errorf("experiment: %s/%s: %w", p.Name(), name, err)
		}
	}
	return out, nil
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// stddev is the population standard deviation, adequate for error bars
// over repetitions.
func stddev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := mean(xs)
	var acc float64
	for _, x := range xs {
		acc += (x - m) * (x - m)
	}
	return math.Sqrt(acc / float64(len(xs)))
}
