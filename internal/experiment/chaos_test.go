package experiment

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
)

// TestChaosEquivalenceAllStrategies is the gate behind `make
// chaos-equivalence`: under a transient-error-only scenario with enough
// retries to always recover, every strategy's learning curves must be
// bit-identical to the fault-free run. This rests on two properties —
// injected errors never consume the wrapped evaluator's noise stream,
// and the retry path never touches the loop generator.
func TestChaosEquivalenceAllStrategies(t *testing.T) {
	p, err := bench.ByName("mvt")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	const seed = 77
	for _, name := range core.StrategyNames() {
		clean, err := RunStrategy(context.Background(), p, name, sc, seed)
		if err != nil {
			t.Fatalf("%s clean: %v", name, err)
		}
		faulty := sc
		faulty.Chaos = chaos.Scenario{ErrRate: 0.3, Seed: 5}
		faulty.Failure = core.FailurePolicy{MaxRetries: 20}
		dirty, err := RunStrategy(context.Background(), p, name, faulty, seed)
		if err != nil {
			t.Fatalf("%s chaotic: %v", name, err)
		}
		if dirty.Stats.EvalRetries == 0 {
			t.Fatalf("%s: ErrRate=0.3 produced no retries; the injector is not wired in", name)
		}
		if len(clean.RMSE) != len(dirty.RMSE) {
			t.Fatalf("%s: %d vs %d checkpoints", name, len(clean.RMSE), len(dirty.RMSE))
		}
		for i := range clean.RMSE {
			if clean.Samples[i] != dirty.Samples[i] || clean.RMSE[i] != dirty.RMSE[i] || clean.CC[i] != dirty.CC[i] {
				t.Fatalf("%s: checkpoint %d diverged under fully-retried transient faults:\n"+
					"clean n=%d rmse=%v cc=%v\nchaos n=%d rmse=%v cc=%v",
					name, i, clean.Samples[i], clean.RMSE[i], clean.CC[i],
					dirty.Samples[i], dirty.RMSE[i], dirty.CC[i])
			}
		}
	}
}

// TestCampaignQuarantinesPanickedCells: an evaluator panic must fail
// only its own (problem, strategy, rep) cell. The campaign drains, the
// poisoned repetitions land in Quarantined with stack traces, and each
// curve set averages exactly its surviving repetitions.
func TestCampaignQuarantinesPanickedCells(t *testing.T) {
	p, err := bench.ByName("mvt")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	sc.Reps = 3
	// Rare enough that most repetitions finish, frequent enough that
	// (deterministically, at this seed) at least one panics.
	sc.Chaos = chaos.Scenario{PanicRate: 0.01, Seed: 11}
	names := []string{"PWU", "Random"}
	res, err := RunCampaign(context.Background(), Campaign{
		Items:      []CampaignItem{{Problem: p, Scale: sc}},
		Strategies: names,
		Seed:       21,
	})
	if err != nil {
		t.Fatalf("campaign failed instead of quarantining: %v", err)
	}
	if len(res.Quarantined) == 0 {
		t.Fatal("PanicRate=0.01 at this seed quarantined nothing; pick a seed that panics")
	}
	lost := map[string]int{}
	for _, q := range res.Quarantined {
		if q.Value == nil || q.Stack == "" {
			t.Fatalf("quarantined cell %+v missing panic value or stack", q)
		}
		if q.Value != chaos.PanicValue {
			t.Fatalf("quarantined cell panic value %v, want the injected one", q.Value)
		}
		lost[q.Strategy]++
	}
	sets := res.Curves[p.Name()]
	if len(sets) != len(names) {
		t.Fatalf("%d curve sets, want %d", len(sets), len(names))
	}
	for si, cs := range sets {
		if cs == nil {
			t.Fatalf("strategy %s produced no curve set", names[si])
		}
		if want := sc.Reps - lost[names[si]]; cs.Reps != want {
			t.Fatalf("strategy %s averages %d reps, want %d (%d quarantined)",
				names[si], cs.Reps, want, lost[names[si]])
		}
		if cs.Reps > 0 && len(cs.RMSE) != len(checkpointSizes(sc)) {
			t.Fatalf("strategy %s: surviving reps truncated to %d checkpoints", names[si], len(cs.RMSE))
		}
	}
}

// TestGuardBeatsCorruption is the acceptance check for the label guard:
// on a corrupted-label scenario, the guarded run's final RMSE@α must be
// lower than the unguarded run's — the guard catches the wild labels
// before they poison the surrogate.
func TestGuardBeatsCorruption(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	sc := Smoke()
	sc.Chaos = chaos.Scenario{CorruptRate: 0.15, CorruptFactor: 50, Seed: 9}
	const seed = 31
	unguarded, err := RunStrategy(context.Background(), p, "Random", sc, seed)
	if err != nil {
		t.Fatal(err)
	}
	guarded := sc
	guarded.Guard = core.LabelGuard{Z: 3, K: 5}
	g, err := RunStrategy(context.Background(), p, "Random", guarded, seed)
	if err != nil {
		t.Fatal(err)
	}
	if g.Stats.GuardFlagged == 0 || g.Stats.GuardRemeasured == 0 {
		t.Fatalf("guard never fired under 15%% corruption: %+v", g.Stats)
	}
	if g.Stats.GuardCost <= 0 {
		t.Fatal("guard activity billed no cost")
	}
	gf, uf := g.RMSE[len(g.RMSE)-1], unguarded.RMSE[len(unguarded.RMSE)-1]
	if gf >= uf {
		t.Fatalf("guarded final RMSE %v not better than unguarded %v", gf, uf)
	}
}

// TestChaosSoakMixedFaults is the race-soak gate: a campaign under a
// mixed hang/panic/error scenario must drain cleanly — hangs cut by the
// per-evaluation timeout, panics quarantined, transient errors retried —
// and leak no goroutines.
func TestChaosSoakMixedFaults(t *testing.T) {
	p, err := bench.ByName("mvt")
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	sc := Smoke()
	sc.Chaos = chaos.Scenario{ErrRate: 0.1, HangRate: 0.05, PanicRate: 0.005, Seed: 13}
	sc.Failure = core.FailurePolicy{MaxRetries: 50, Timeout: 30 * time.Millisecond}
	res, err := RunCampaign(context.Background(), Campaign{
		Items:      []CampaignItem{{Problem: p, Scale: sc}},
		Strategies: core.StrategyNames(),
		Seed:       41,
	})
	if err != nil {
		t.Fatalf("mixed-fault campaign did not drain: %v", err)
	}
	if res.Scheduler.Tasks != len(core.StrategyNames())*sc.Reps {
		t.Fatalf("drained %d tasks, want %d", res.Scheduler.Tasks, len(core.StrategyNames())*sc.Reps)
	}
	var agg core.RunStats
	for _, cs := range res.Curves[p.Name()] {
		if cs == nil {
			continue
		}
		agg.EvalRetries += cs.Stats.EvalRetries
		agg.EvalTimeouts += cs.Stats.EvalTimeouts
	}
	if agg.EvalRetries == 0 || agg.EvalTimeouts == 0 {
		t.Fatalf("soak exercised no retries (%d) or no timeouts (%d)", agg.EvalRetries, agg.EvalTimeouts)
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines %d before soak, %d after", before, n)
	}
}
