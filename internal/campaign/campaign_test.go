package campaign

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/dataset"
	"repro/internal/rng"
)

// TestSchedulerRunsEveryTaskOnce drains an uneven grid at several pool
// sizes and checks each task ran exactly once.
func TestSchedulerRunsEveryTaskOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		const n = 37
		counts := make([]atomic.Int64, n)
		tasks := make([]Task, n)
		for i := range tasks {
			i := i
			tasks[i] = Task{
				Problem: i / 10, Strategy: i % 3, Rep: i % 5,
				Run: func(context.Context) { counts[i].Add(1) },
			}
		}
		st := Run(context.Background(), workers, tasks)
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, got)
			}
		}
		if st.Tasks != n {
			t.Fatalf("workers=%d: Stats.Tasks = %d, want %d", workers, st.Tasks, n)
		}
		if workers <= n && st.Workers != normWorkers(workers, n) {
			t.Fatalf("workers=%d: Stats.Workers = %d", workers, st.Workers)
		}
		if st.Utilization < 0 || st.Utilization > 1.000001 {
			t.Fatalf("workers=%d: utilization %v out of range", workers, st.Utilization)
		}
	}
}

// TestSchedulerSteals forces an imbalanced load (one worker's deque holds
// a long task plus many short ones) and checks that the other workers
// steal the stranded short tasks instead of idling.
func TestSchedulerSteals(t *testing.T) {
	const n = 16
	tasks := make([]Task, n)
	var ran atomic.Int64
	for i := range tasks {
		i := i
		tasks[i] = Task{Run: func(context.Context) {
			// Task 14 is the tail of worker 0's deque under a 2-worker
			// round-robin deal, so worker 0 pops it first (LIFO) and
			// sleeps while its 7 remaining tasks sit stranded.
			if i == n-2 {
				time.Sleep(50 * time.Millisecond)
			}
			ran.Add(1)
		}}
	}
	// Worker 1 drains its own 8 trivial tasks in microseconds and must
	// steal worker 0's stranded tasks instead of idling out the sleep.
	st := Run(context.Background(), 2, tasks)
	if ran.Load() != n {
		t.Fatalf("ran %d tasks, want %d", ran.Load(), n)
	}
	if st.Steals == 0 {
		t.Fatal("imbalanced drain recorded no steals")
	}
}

// TestSchedulerEmpty checks the degenerate drains.
func TestSchedulerEmpty(t *testing.T) {
	st := Run(context.Background(), 4, nil)
	if st.Tasks != 0 || st.Steals != 0 {
		t.Fatalf("empty drain stats = %+v", st)
	}
}

// TestStatsZeroGuards pins the degenerate-campaign regression: a
// zero-task or zero-wall-clock campaign must derive 0 for utilization
// and steal rate, never NaN or Inf — those values flow straight into
// campaign.csv and the report table.
func TestStatsZeroGuards(t *testing.T) {
	finite := func(label string, v float64) {
		t.Helper()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s is non-finite: %v", label, v)
		}
	}
	empty := Run(context.Background(), 4, nil)
	finite("empty-drain utilization", empty.Utilization)
	if empty.Utilization != 0 || empty.StealRate() != 0 {
		t.Fatalf("empty drain: utilization %v, steal rate %v, want 0, 0", empty.Utilization, empty.StealRate())
	}

	// Hand-built degenerate accumulations: busy time with no wall clock,
	// steals with no tasks (a corrupted or partially merged record).
	cases := []Stats{
		{},
		{Workers: 8},
		{Busy: time.Second},
		{Steals: 17},
		{Workers: 8, Busy: time.Second, Steals: 17},
	}
	for i, st := range cases {
		var acc Stats
		acc.Add(st)
		finite("accumulated utilization", acc.Utilization)
		finite("accumulated steal rate", acc.StealRate())
		if acc.Utilization != 0 || acc.StealRate() != 0 {
			t.Fatalf("case %d: utilization %v, steal rate %v, want 0, 0", i, acc.Utilization, acc.StealRate())
		}
	}

	// And a healthy accumulation still derives real rates.
	var acc Stats
	acc.Add(Stats{Workers: 2, Tasks: 10, Steals: 5, Busy: time.Second, Wall: time.Second})
	if acc.Utilization != 0.5 {
		t.Fatalf("healthy utilization %v, want 0.5", acc.Utilization)
	}
	if acc.StealRate() != 0.5 {
		t.Fatalf("healthy steal rate %v, want 0.5", acc.StealRate())
	}
}

// TestDatasetCacheSingleFlight issues many concurrent Gets for the same
// key and checks the build runs exactly once while every caller receives
// the same dataset and encoded test matrix.
func TestDatasetCacheSingleFlight(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	c := NewDatasets()
	key := Key{Problem: p.Name(), Seed: 9, PoolSize: 40, TestSize: 20}
	var builds atomic.Int64
	build := func() (*dataset.Dataset, error) {
		builds.Add(1)
		return dataset.Build(context.Background(), p, key.PoolSize, key.TestSize, rng.New(key.Seed))
	}

	const callers = 16
	dss := make([]*dataset.Dataset, callers)
	txs := make([][][]float64, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ds, tx, err := c.Get(context.Background(), key, build)
			if err != nil {
				t.Error(err)
				return
			}
			dss[i], txs[i] = ds, tx
		}(i)
	}
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("build ran %d times", got)
	}
	for i := 1; i < callers; i++ {
		if dss[i] != dss[0] || &txs[i][0] != &txs[0][0] {
			t.Fatalf("caller %d got a different dataset or test matrix", i)
		}
	}
	st := c.Stats()
	if st.Builds != 1 || st.Hits != callers-1 {
		t.Fatalf("stats = %+v, want 1 build / %d hits", st, callers-1)
	}
	if st.LabelsSaved != (callers-1)*key.TestSize {
		t.Fatalf("LabelsSaved = %d", st.LabelsSaved)
	}
}

// TestDatasetCacheDistinctKeys checks keys do not collide.
func TestDatasetCacheDistinctKeys(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	c := NewDatasets()
	get := func(seed uint64) *dataset.Dataset {
		ds, _, err := c.Get(context.Background(), Key{Problem: p.Name(), Seed: seed, PoolSize: 30, TestSize: 10},
			func() (*dataset.Dataset, error) {
				return dataset.Build(context.Background(), p, 30, 10, rng.New(seed))
			})
		if err != nil {
			t.Fatal(err)
		}
		return ds
	}
	a, b := get(1), get(2)
	if a == b {
		t.Fatal("different seeds shared a cache slot")
	}
	if st := c.Stats(); st.Builds != 2 || st.Hits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestDatasetCacheFailedBuildEvicted checks a failed build reports its
// error and leaves the slot free for a retry.
func TestDatasetCacheFailedBuildEvicted(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	c := NewDatasets()
	key := Key{Problem: p.Name(), Seed: 3, PoolSize: 20, TestSize: 10}
	boom := errors.New("boom")
	if _, _, err := c.Get(context.Background(), key, func() (*dataset.Dataset, error) {
		return nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	ds, tx, err := c.Get(context.Background(), key, func() (*dataset.Dataset, error) {
		return dataset.Build(context.Background(), p, key.PoolSize, key.TestSize, rng.New(key.Seed))
	})
	if err != nil || ds == nil || len(tx) != key.TestSize {
		t.Fatalf("retry after failed build: ds=%v err=%v", ds, err)
	}
	if st := c.Stats(); st.Builds != 2 {
		t.Fatalf("stats = %+v, want 2 builds", st)
	}
}

// TestSchedulerQuarantinesPanics injects panicking tasks into the grid
// and checks that every other task still runs exactly once, that each
// panic is recorded with its coordinates and a stack trace, and that
// the drain terminates cleanly at several pool sizes.
func TestSchedulerQuarantinesPanics(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		const n = 24
		counts := make([]atomic.Int64, n)
		tasks := make([]Task, n)
		for i := range tasks {
			i := i
			tasks[i] = Task{
				Problem: i / 6, Strategy: i % 6, Rep: i % 2,
				Run: func(context.Context) {
					counts[i].Add(1)
					if i%7 == 3 {
						panic("poisoned evaluator")
					}
				},
			}
		}
		st := Run(context.Background(), workers, tasks)
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("workers=%d: task %d ran %d times after panics elsewhere", workers, i, got)
			}
		}
		want := 0
		for i := 0; i < n; i++ {
			if i%7 == 3 {
				want++
			}
		}
		if len(st.Panics) != want {
			t.Fatalf("workers=%d: %d panics recorded, want %d", workers, len(st.Panics), want)
		}
		for _, p := range st.Panics {
			i := p.Problem*6 + p.Strategy
			if i%7 != 3 {
				t.Fatalf("workers=%d: panic attributed to healthy task %+v", workers, p)
			}
			if p.Value != "poisoned evaluator" {
				t.Fatalf("workers=%d: panic value %v", workers, p.Value)
			}
			if !strings.Contains(p.Stack, "campaign") {
				t.Fatalf("workers=%d: stack trace missing: %q", workers, p.Stack)
			}
		}
	}
}
