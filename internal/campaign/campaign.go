// Package campaign is the throughput engine behind full figure
// campaigns: the grids of (problem × strategy × repetition) runs that
// reproduce Figs. 2–7. The experiment harness used to drain such a grid
// strategy-by-strategy with parallelism only across one strategy's
// repetitions, so a 12-kernel × 6-strategy × 10-rep campaign exposed at
// most Reps-way concurrency at any moment. This package flattens the
// whole grid into independent tasks and drains them through one global
// bounded worker pool with work stealing, so the machine stays saturated
// from the first task to the last.
//
// Two pieces:
//
//   - Run: a work-stealing scheduler. Tasks are dealt round-robin onto
//     per-worker deques; each worker pops its own deque LIFO and, when
//     empty, steals the oldest task from a victim's deque. Because every
//     task derives all randomness from its own (seed, rep) coordinates —
//     never from the schedule — results are bit-identical for any worker
//     count, so stealing is pure throughput.
//
//   - Datasets: a single-flight dataset cache. The six strategies of one
//     repetition share the rep seed and therefore the exact same
//     pool/test draw; the cache builds (and pre-measures) each distinct
//     dataset exactly once and hands the other strategies the built copy
//     together with the already-encoded test matrix.
package campaign

import (
	"context"
	"math"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// normWorkers applies the pool-size defaults: <= 0 means GOMAXPROCS,
// never more workers than tasks.
func normWorkers(workers, tasks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// Task is one cell of the campaign grid. Problem, Strategy and Rep are
// the cell's coordinates (indices into the caller's grid, kept for
// diagnostics); Run executes the cell.
//
// Run must honor ctx itself: the scheduler keeps draining queued tasks
// after a cancellation so that every cell can record its partial result
// (or its cancellation error) exactly as the pre-campaign harness did,
// and relies on cancelled tasks returning quickly.
type Task struct {
	Problem, Strategy, Rep int
	Run                    func(ctx context.Context)
}

// Panic records one task whose Run panicked. The worker recovered it,
// quarantined the cell and kept draining: one poisoned evaluator must
// not take down the other (problem × strategy × rep) cells sharing the
// pool.
type Panic struct {
	// Problem, Strategy, Rep are the poisoned task's grid coordinates.
	Problem, Strategy, Rep int

	// Value is the recovered panic value; Stack the goroutine stack
	// captured at recovery, for the campaign report.
	Value interface{}
	Stack string
}

// Stats describes one scheduler drain.
type Stats struct {
	// Workers is the pool size actually used.
	Workers int

	// Tasks is the number of tasks executed (always len(tasks)).
	Tasks int

	// Steals counts tasks a worker took from another worker's deque.
	Steals int

	// Panics lists the tasks whose Run panicked and was quarantined,
	// in recovery order.
	Panics []Panic

	// Busy is the summed wall time workers spent inside Task.Run;
	// Wall is the drain's elapsed time. Utilization = Busy/(Wall·Workers)
	// — 1.0 means no worker ever idled.
	Busy, Wall  time.Duration
	Utilization float64
}

// deque is one worker's task queue. The owner pops newest-first (LIFO,
// keeping its cache-warm tail local); thieves steal oldest-first so a
// steal grabs the task the owner would have reached last. A mutex is
// plenty here: tasks are whole experiment repetitions (milliseconds to
// minutes), so queue operations are nowhere near contention.
type deque struct {
	mu    sync.Mutex
	tasks []Task
}

func (d *deque) popTail() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return Task{}, false
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t, true
}

func (d *deque) stealHead() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return Task{}, false
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t, true
}

// Run drains tasks through a pool of workers goroutines and returns the
// drain's scheduling statistics. workers <= 0 defaults to GOMAXPROCS and
// is capped at len(tasks). Run returns once every task has completed.
// A task that panics is recovered and quarantined into Stats.Panics
// with its stack trace; the worker keeps draining.
//
// No new tasks are produced while draining, so a worker exits when its
// own deque and every victim's deque are empty; tasks already popped
// elsewhere are by then running or finished.
func Run(ctx context.Context, workers int, tasks []Task) Stats {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(tasks)
	workers = normWorkers(workers, n)
	st := Stats{Workers: workers, Tasks: n}
	if n == 0 {
		return st
	}

	// Deal tasks round-robin so each deque interleaves strategies and
	// repetitions; the expensive cells spread across workers up front and
	// stealing only has to smooth the remainder.
	deques := make([]deque, workers)
	for i, t := range tasks {
		w := i % workers
		deques[w].tasks = append(deques[w].tasks, t)
	}

	var steals atomic.Int64
	var busy atomic.Int64
	var panicMu sync.Mutex
	var panics []Panic
	// runTask shields the worker from a panicking Task.Run: the panic is
	// recorded with its stack and the worker moves on to the next task.
	runTask := func(t Task) {
		defer func() {
			if v := recover(); v != nil {
				panicMu.Lock()
				panics = append(panics, Panic{
					Problem: t.Problem, Strategy: t.Strategy, Rep: t.Rep,
					Value: v, Stack: string(debug.Stack()),
				})
				panicMu.Unlock()
			}
		}()
		t.Run(ctx)
	}
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				t, ok := deques[self].popTail()
				if !ok {
					// Scan victims round-robin starting past self.
					for off := 1; off < workers && !ok; off++ {
						t, ok = deques[(self+off)%workers].stealHead()
					}
					if !ok {
						return
					}
					steals.Add(1)
				}
				ts := time.Now()
				runTask(t)
				busy.Add(int64(time.Since(ts)))
			}
		}(w)
	}
	wg.Wait()

	st.Panics = panics
	st.Steals = int(steals.Load())
	st.Busy = time.Duration(busy.Load())
	st.Wall = time.Since(start)
	st.Utilization = ratio(float64(st.Busy), float64(st.Wall)*float64(workers))
	return st
}

// ratio divides num by den guarded against degenerate campaigns: a zero
// (or negative) denominator — a zero-task drain whose wall clock never
// ticked, an accumulator that has seen nothing — and non-finite inputs
// all yield 0, so no NaN/Inf percentage can leak into campaign.csv or
// the report table.
func ratio(num, den float64) float64 {
	if den <= 0 || math.IsNaN(num) || math.IsInf(num, 0) {
		return 0
	}
	return num / den
}

// StealRate returns steals per executed task — how much rebalancing the
// drain needed after the round-robin deal. A zero-task campaign reports
// 0, never NaN.
func (s *Stats) StealRate() float64 {
	return ratio(float64(s.Steals), float64(s.Tasks))
}

// Add accumulates another drain's statistics (for harnesses that run
// several campaigns and report one summary). Utilization is re-derived
// from the accumulated busy/wall totals.
func (s *Stats) Add(o Stats) {
	if o.Workers > s.Workers {
		s.Workers = o.Workers
	}
	s.Tasks += o.Tasks
	s.Steals += o.Steals
	s.Panics = append(s.Panics, o.Panics...)
	s.Busy += o.Busy
	s.Wall += o.Wall
	s.Utilization = ratio(float64(s.Busy), float64(s.Wall)*float64(s.Workers))
}
