package campaign

import (
	"context"
	"sync"

	"repro/internal/dataset"
)

// Key identifies one dataset draw. Every strategy of one repetition
// derives its dataset from the same (problem, rep-seed, sizes) tuple, so
// tasks sharing a Key would build bit-identical datasets — the cache
// builds each exactly once.
type Key struct {
	Problem            string
	Seed               uint64
	PoolSize, TestSize int
}

// CacheStats counts dataset-cache traffic. For a campaign of S
// strategies × R repetitions on one problem, Builds = R and
// Hits = (S−1)·R: every strategy but the builder reuses each
// repetition's dataset, skipping the re-measurement of all TestSize
// labels.
type CacheStats struct {
	Builds, Hits int

	// LabelsSaved is the number of test-set measurements the hits
	// avoided (Hits × TestSize per hit).
	LabelsSaved int
}

// dsEntry is one single-flight cache slot. done closes when the build
// finishes; waiters read ds/testX/err only after that.
type dsEntry struct {
	done  chan struct{}
	ds    *dataset.Dataset
	testX [][]float64
	err   error
}

// Datasets is a single-flight cache of built datasets plus their encoded
// test matrices. The first Get for a Key runs build; concurrent and
// later Gets for the same Key block until that build finishes and share
// the result. Safe for concurrent use. Cached datasets are shared
// read-only: the run engine never mutates the pool slice, and the test
// matrix rows must not be written by callers.
type Datasets struct {
	mu      sync.Mutex
	entries map[Key]*dsEntry
	stats   CacheStats
}

// NewDatasets returns an empty cache.
func NewDatasets() *Datasets {
	return &Datasets{entries: map[Key]*dsEntry{}}
}

// Get returns the dataset for key, building it via build on the first
// request. The encoded test matrix is computed once per dataset and
// shared by every requester. A failed build is reported to all waiters
// and then evicted so a later independent request can retry; waiting on
// someone else's in-flight build is abandoned when ctx is cancelled.
func (c *Datasets) Get(ctx context.Context, key Key, build func() (*dataset.Dataset, error)) (*dataset.Dataset, [][]float64, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.stats.Hits++
		c.stats.LabelsSaved += key.TestSize
		c.mu.Unlock()
		select {
		case <-e.done:
			return e.ds, e.testX, e.err
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	e := &dsEntry{done: make(chan struct{})}
	c.entries[key] = e
	c.stats.Builds++
	c.mu.Unlock()

	ds, err := build()
	if err != nil {
		e.err = err
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
	} else {
		e.ds = ds
		e.testX = ds.TestX()
	}
	close(e.done)
	return e.ds, e.testX, e.err
}

// Stats returns a snapshot of the cache counters.
func (c *Datasets) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Add accumulates another cache's counters.
func (s *CacheStats) Add(o CacheStats) {
	s.Builds += o.Builds
	s.Hits += o.Hits
	s.LabelsSaved += o.LabelsSaved
}
