// Package calibration quantifies how honest a surrogate's uncertainty
// estimates are. Every sampling strategy in this repository consumes the
// model's σ; the paper's §II-B argues the random forest's between-tree
// spread is "an accurate representative of the uncertainty of
// prediction". This package makes that claim checkable:
//
//   - Coverage: the fraction of held-out residuals that fall within
//     z·σ of the prediction, compared against the Gaussian ideal
//     (68.3% at 1σ, 95.4% at 2σ). Coverage far below ideal means σ is
//     overconfident; far above means it is wastefully wide.
//   - Sharpness: the mean σ — honest uncertainty should also be tight.
//   - Z-score moments: standardized residuals (y−μ)/σ should have
//     roughly zero mean and unit variance for a calibrated model.
//
// The ablation benchmarks use these numbers to compare the forest's two
// σ estimators and the GP.
package calibration

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Report summarises the calibration of one model on one test set.
type Report struct {
	// N is the number of test points used (points with σ = 0 and a
	// non-zero residual are counted in ZeroSigmaMisses instead).
	N int

	// Coverage1 and Coverage2 are the fractions of residuals within 1σ
	// and 2σ. Gaussian ideals: 0.683 and 0.954.
	Coverage1, Coverage2 float64

	// Sharpness is the mean σ.
	Sharpness float64

	// ZMean and ZVar are the mean and variance of (y−μ)/σ.
	ZMean, ZVar float64

	// ZeroSigmaMisses counts test points where the model claimed σ = 0
	// but was wrong — the worst calibration failure.
	ZeroSigmaMisses int
}

// Evaluate computes a calibration report from parallel slices of
// observations, prediction means and prediction uncertainties.
func Evaluate(y, mu, sigma []float64) (*Report, error) {
	if len(y) != len(mu) || len(y) != len(sigma) {
		return nil, fmt.Errorf("calibration: length mismatch %d/%d/%d", len(y), len(mu), len(sigma))
	}
	if len(y) == 0 {
		return nil, fmt.Errorf("calibration: empty test set")
	}
	r := &Report{}
	var zs []float64
	var within1, within2 int
	for i := range y {
		resid := y[i] - mu[i]
		if sigma[i] <= 0 {
			if resid != 0 {
				r.ZeroSigmaMisses++
			} else {
				// A confident and correct prediction: counts toward
				// coverage at every level.
				r.N++
				within1++
				within2++
			}
			continue
		}
		r.N++
		r.Sharpness += sigma[i]
		z := resid / sigma[i]
		zs = append(zs, z)
		if math.Abs(z) <= 1 {
			within1++
		}
		if math.Abs(z) <= 2 {
			within2++
		}
	}
	if r.N == 0 {
		return nil, fmt.Errorf("calibration: no usable test points (all zero-sigma misses)")
	}
	r.Coverage1 = float64(within1) / float64(r.N)
	r.Coverage2 = float64(within2) / float64(r.N)
	r.Sharpness /= float64(r.N)
	if len(zs) > 0 {
		r.ZMean = stats.Mean(zs)
		r.ZVar = stats.Variance(zs)
	}
	return r, nil
}

// GaussianIdeal1 and GaussianIdeal2 are the coverage targets at 1σ and
// 2σ for a perfectly calibrated Gaussian predictive distribution.
const (
	GaussianIdeal1 = 0.6827
	GaussianIdeal2 = 0.9545
)

// Miscalibration returns a single scalar summary: the absolute coverage
// gaps at 1σ and 2σ, averaged. Zero is perfect.
func (r *Report) Miscalibration() float64 {
	return (math.Abs(r.Coverage1-GaussianIdeal1) + math.Abs(r.Coverage2-GaussianIdeal2)) / 2
}

// String renders the report for logs.
func (r *Report) String() string {
	return fmt.Sprintf("n=%d cover1=%.3f (ideal %.3f) cover2=%.3f (ideal %.3f) sharpness=%.4g zmean=%.3f zvar=%.3f zero-sigma-misses=%d",
		r.N, r.Coverage1, GaussianIdeal1, r.Coverage2, GaussianIdeal2, r.Sharpness, r.ZMean, r.ZVar, r.ZeroSigmaMisses)
}
