package calibration

import (
	"math"
	"strings"
	"testing"

	"repro/internal/forest"
	"repro/internal/gp"
	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/tree"
)

func TestEvaluateErrors(t *testing.T) {
	if _, err := Evaluate([]float64{1}, []float64{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Evaluate(nil, nil, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Evaluate([]float64{1}, []float64{2}, []float64{0}); err == nil {
		t.Fatal("all zero-sigma misses accepted")
	}
}

func TestPerfectGaussianCalibration(t *testing.T) {
	// Residuals drawn exactly from N(0, σ) per point: coverage must land
	// near the Gaussian ideals and z-scores near (0, 1).
	r := rng.New(1)
	n := 50000
	y := make([]float64, n)
	mu := make([]float64, n)
	sigma := make([]float64, n)
	for i := range y {
		mu[i] = r.Float64() * 10
		sigma[i] = 0.5 + r.Float64()
		y[i] = mu[i] + r.Normal(0, sigma[i])
	}
	rep, err := Evaluate(y, mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Coverage1-GaussianIdeal1) > 0.01 || math.Abs(rep.Coverage2-GaussianIdeal2) > 0.01 {
		t.Fatalf("coverage %v/%v off ideal", rep.Coverage1, rep.Coverage2)
	}
	if math.Abs(rep.ZMean) > 0.02 || math.Abs(rep.ZVar-1) > 0.05 {
		t.Fatalf("z moments %v/%v", rep.ZMean, rep.ZVar)
	}
	if rep.Miscalibration() > 0.01 {
		t.Fatalf("miscalibration %v", rep.Miscalibration())
	}
}

func TestOverconfidenceDetected(t *testing.T) {
	// σ reported 5x too small: coverage collapses.
	r := rng.New(2)
	n := 20000
	y := make([]float64, n)
	mu := make([]float64, n)
	sigma := make([]float64, n)
	for i := range y {
		mu[i] = 0
		sigma[i] = 0.2 // claimed
		y[i] = r.Normal(0, 1)
	}
	rep, err := Evaluate(y, mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage1 > 0.3 {
		t.Fatalf("overconfidence not detected: cover1 = %v", rep.Coverage1)
	}
	if rep.Miscalibration() < 0.3 {
		t.Fatalf("miscalibration too low: %v", rep.Miscalibration())
	}
}

func TestZeroSigmaMissCounting(t *testing.T) {
	y := []float64{1, 2, 3}
	mu := []float64{1, 2, 5}
	sigma := []float64{0, 1, 0}
	rep, err := Evaluate(y, mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Point 0: zero sigma, correct -> counted, covered.
	// Point 1: normal. Point 2: zero sigma, wrong -> miss.
	if rep.ZeroSigmaMisses != 1 || rep.N != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if !strings.Contains(rep.String(), "zero-sigma-misses=1") {
		t.Fatal("String() missing miss count")
	}
}

// mkRegression builds a noisy 2-feature regression problem.
func mkRegression(r *rng.RNG, n int) ([][]float64, []float64, []space.Feature) {
	fs := []space.Feature{
		{Name: "a", Kind: space.FeatNumeric},
		{Name: "b", Kind: space.FeatNumeric},
	}
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{r.Float64() * 4, r.Float64() * 4}
		y[i] = math.Sin(X[i][0])*3 + X[i][1] + r.Normal(0, 0.3)
	}
	return X, y, fs
}

func TestForestTotalVarianceBetterCalibratedThanBetweenTrees(t *testing.T) {
	// On noisy data the between-tree spread ignores the within-leaf
	// noise and is overconfident; the law-of-total-variance estimator
	// should cover better (this is exactly why Hutter et al. use it).
	r := rng.New(3)
	X, y, fs := mkRegression(r, 600)
	Xt, yt, _ := mkRegression(r, 400)

	evalWith := func(u forest.UncertaintyKind) *Report {
		f, err := forest.Fit(X, y, fs, forest.Config{NumTrees: 64, Uncertainty: u,
			Tree: tree.Config{MinSamplesLeaf: 4}}, rng.New(4))
		if err != nil {
			t.Fatal(err)
		}
		mu, sigma := f.PredictBatch(Xt)
		rep, err := Evaluate(yt, mu, sigma)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	between := evalWith(forest.BetweenTrees)
	total := evalWith(forest.TotalVariance)
	if total.Coverage1 <= between.Coverage1 {
		t.Fatalf("total variance cover1 %v not above between-tree %v", total.Coverage1, between.Coverage1)
	}
}

func TestGPWellCalibratedOnSmoothNoise(t *testing.T) {
	r := rng.New(5)
	X, y, fs := mkRegression(r, 300)
	Xt, yt, _ := mkRegression(r, 300)
	g, err := gp.Fit(X, y, fs, gp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The latent sigma excludes observation noise and must be
	// overconfident against noisy measurements...
	muL, sigmaL := g.PredictBatch(Xt)
	latent, err := Evaluate(yt, muL, sigmaL)
	if err != nil {
		t.Fatal(err)
	}
	// ...while the observation-variance prediction should cover well.
	mu := make([]float64, len(Xt))
	sigma := make([]float64, len(Xt))
	for i, x := range Xt {
		mu[i], sigma[i] = g.PredictObservedWithUncertainty(x)
	}
	observed, err := Evaluate(yt, mu, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Coverage1 <= latent.Coverage1 {
		t.Fatalf("observation variance did not improve coverage: %v vs %v", observed.Coverage1, latent.Coverage1)
	}
	if observed.Coverage2 < 0.8 {
		t.Fatalf("GP observation calibration implausible: %s", observed)
	}
}
