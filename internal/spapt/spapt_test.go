package spapt

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/stats"
)

func TestTwelveKernels(t *testing.T) {
	ks := All()
	if len(ks) != 12 {
		t.Fatalf("got %d kernels, paper models 12", len(ks))
	}
	seen := map[string]bool{}
	for _, k := range ks {
		if seen[k.Name()] {
			t.Fatalf("duplicate kernel %s", k.Name())
		}
		seen[k.Name()] = true
	}
}

func TestParameterCountsInPaperRange(t *testing.T) {
	// Paper §III-A: parameter counts range from 8 to 38.
	lo, hi := math.MaxInt, 0
	for _, k := range All() {
		n := k.NumParams()
		if n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo < 8 || hi > 38 {
		t.Fatalf("parameter counts [%d, %d] outside the paper's 8–38", lo, hi)
	}
	if hi != 38 {
		t.Fatalf("largest kernel has %d params, want 38 (correlation)", hi)
	}
}

func TestSearchSpaceSizesInPaperRange(t *testing.T) {
	// Paper §III-A: search-space sizes range from about 1e10 to 1e30.
	for _, k := range All() {
		lg := k.Space().LogCardinality()
		if lg < 9 || lg > 36 {
			t.Fatalf("%s: log10 cardinality %.1f outside plausible range", k.Name(), lg)
		}
	}
}

func TestADITableI(t *testing.T) {
	// Table I: ADI has 8 tile, 4 unroll-jam, 4 regtile, scalar
	// replacement and vectorization parameters.
	rows := ADI().Table()
	want := map[string]int{"tile": 8, "unrolljam": 4, "regtile": 4, "scalarreplace": 1, "vector": 1}
	got := map[string]int{}
	for _, r := range rows {
		got[r.Type] = r.Number
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("ADI table %s = %d, want %d (table: %+v)", k, got[k], v, rows)
		}
	}
	for _, r := range rows {
		if r.Type == "tile" && !strings.Contains(r.Values, "512") {
			t.Fatalf("tile values %q missing 512", r.Values)
		}
		if r.Type == "unrolljam" && !strings.Contains(r.Values, "31") {
			t.Fatalf("unrolljam values %q missing 31", r.Values)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range Names() {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if k.Name() != name {
			t.Fatalf("ByName(%s).Name() = %s", name, k.Name())
		}
		if k.Description() == "" {
			t.Fatalf("%s has no description", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown kernel accepted")
	}
}

func TestTrueTimePositiveFinite(t *testing.T) {
	r := rng.New(1)
	for _, k := range All() {
		for i := 0; i < 200; i++ {
			c := k.Space().SampleConfig(r)
			y := k.TrueTime(c)
			if y <= 0 || math.IsInf(y, 0) || math.IsNaN(y) {
				t.Fatalf("%s: TrueTime = %v for %s", k.Name(), y, k.Space().String(c))
			}
		}
	}
}

func TestTrueTimeDeterministic(t *testing.T) {
	k := ADI()
	c := k.Space().SampleConfig(rng.New(2))
	if k.TrueTime(c) != k.TrueTime(c) {
		t.Fatal("TrueTime not deterministic")
	}
}

func TestTimesInSubSecondRange(t *testing.T) {
	// §III-B: "execution time of these kernels is usually less than one
	// second". The whole space should sit between 1ms and ~30s, with the
	// median under a second for most kernels.
	r := rng.New(3)
	for _, k := range All() {
		times := make([]float64, 300)
		for i := range times {
			times[i] = k.TrueTime(k.Space().SampleConfig(r))
		}
		med := stats.Median(times)
		if med < 1e-3 || med > 30 {
			t.Fatalf("%s: median time %v implausible", k.Name(), med)
		}
	}
}

func TestSurfaceHasDynamicRange(t *testing.T) {
	// The tuning problem is only interesting if configurations differ a
	// lot: best/worst over a random sample should span at least 2x.
	r := rng.New(4)
	for _, k := range All() {
		times := make([]float64, 400)
		for i := range times {
			times[i] = k.TrueTime(k.Space().SampleConfig(r))
		}
		ratio := stats.Max(times) / stats.Min(times)
		if ratio < 2 {
			t.Fatalf("%s: dynamic range %.2fx too flat to tune", k.Name(), ratio)
		}
	}
}

func TestHighPerformanceRegionIsSmall(t *testing.T) {
	// The top 1% should be clearly faster than the median — a small
	// high-performance subspace is the paper's premise.
	r := rng.New(5)
	for _, k := range All() {
		times := make([]float64, 1000)
		for i := range times {
			times[i] = k.TrueTime(k.Space().SampleConfig(r))
		}
		p1 := stats.Quantile(times, 0.01)
		med := stats.Median(times)
		if p1 >= med {
			t.Fatalf("%s: p1 %v not below median %v", k.Name(), p1, med)
		}
	}
}

// configWith builds a config with all tiles set to tileLevel, unrolls to
// unrollLevel, regtiles to regLevel, and the two booleans.
func configWith(k *Kernel, tileLevel, unrollLevel, regLevel int, screp, vec bool) space.Config {
	sp := k.Space()
	c := make(space.Config, sp.NumParams())
	for i := 0; i < sp.NumParams(); i++ {
		p := sp.Param(i)
		switch {
		case strings.HasPrefix(p.Name, "RT"):
			c[i] = regLevel
		case strings.HasPrefix(p.Name, "T"):
			c[i] = tileLevel
		case strings.HasPrefix(p.Name, "U"):
			c[i] = unrollLevel
		case p.Name == "SCREP":
			if screp {
				c[i] = 1
			}
		case p.Name == "VEC":
			if vec {
				c[i] = 1
			}
		}
	}
	return c
}

func TestTilingNonMonotone(t *testing.T) {
	// Untiled (level 0 = tile size 1) must be slower than a medium tile
	// (64) for the memory-bound kernels: the capacity cliff.
	for _, name := range []string{"atax", "mvt", "jacobi"} {
		k, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		untiled := k.TrueTime(configWith(k, 0, 3, 0, false, false))
		medium := k.TrueTime(configWith(k, 3, 3, 0, false, false))
		if medium >= untiled {
			t.Fatalf("%s: tiling does not pay: untiled %v vs tiled %v", name, untiled, medium)
		}
	}
}

func TestVectorizationHelpsWithLargeTiles(t *testing.T) {
	k, _ := ByName("mm")
	base := k.TrueTime(configWith(k, 4, 3, 1, false, false))
	vec := k.TrueTime(configWith(k, 4, 3, 1, false, true))
	if vec >= base {
		t.Fatalf("mm: vectorization does not help: %v vs %v", base, vec)
	}
}

func TestRegisterPressureCliff(t *testing.T) {
	// Max unroll (level 30 = factor 31) with max register tile (level 2 =
	// 32) must be slower than moderate unroll with no register tile on a
	// compute-bound kernel.
	k, _ := ByName("mm")
	moderate := k.TrueTime(configWith(k, 4, 3, 0, false, false))
	pressure := k.TrueTime(configWith(k, 4, 30, 2, false, false))
	if pressure <= moderate {
		t.Fatalf("mm: no spill cliff: moderate %v vs pressure %v", moderate, pressure)
	}
}

func TestScalarReplacementHelpsHighReuseKernel(t *testing.T) {
	// hessian has reuseFrac 0.8; with memory-bound settings scalar
	// replacement should reduce time.
	k, _ := ByName("hessian")
	off := k.TrueTime(configWith(k, 0, 0, 0, false, false))
	on := k.TrueTime(configWith(k, 0, 0, 0, true, false))
	if on >= off {
		t.Fatalf("hessian: scalar replacement does not help: %v vs %v", off, on)
	}
}

func TestUnrollingHelpsComputeBound(t *testing.T) {
	k, _ := ByName("mm")
	u1 := k.TrueTime(configWith(k, 4, 0, 0, false, false)) // unroll 1
	u6 := k.TrueTime(configWith(k, 4, 5, 0, false, false)) // unroll 6
	if u6 >= u1 {
		t.Fatalf("mm: unrolling does not help: %v vs %v", u1, u6)
	}
}

func TestEveryParameterKindInfluencesTime(t *testing.T) {
	// Flipping each parameter group away from a baseline must change the
	// time for at least one group member — no dead parameter kinds.
	for _, k := range All() {
		base := configWith(k, 3, 3, 1, false, false)
		baseT := k.TrueTime(base)
		changedKinds := map[string]bool{}
		sp := k.Space()
		for i := 0; i < sp.NumParams(); i++ {
			c := base.Clone()
			c[i] = (c[i] + 1) % sp.Param(i).NumLevels()
			if k.TrueTime(c) != baseT {
				p := sp.Param(i)
				switch {
				case strings.HasPrefix(p.Name, "RT"):
					changedKinds["regtile"] = true
				case strings.HasPrefix(p.Name, "T"):
					changedKinds["tile"] = true
				case strings.HasPrefix(p.Name, "U"):
					changedKinds["unroll"] = true
				default:
					changedKinds[p.Name] = true
				}
			}
		}
		for _, kind := range []string{"tile", "unroll", "regtile", "SCREP", "VEC"} {
			if !changedKinds[kind] {
				t.Fatalf("%s: parameter kind %s never affects time", k.Name(), kind)
			}
		}
	}
}

func TestFeasibility(t *testing.T) {
	k := ADI()
	// Default config (everything minimal) is feasible.
	base := make(space.Config, k.Space().NumParams())
	if !k.Feasible(base) {
		t.Fatal("baseline config infeasible")
	}
	// Max unroll (31) with register tile 32 exceeds the body budget.
	bad := configWith(k, 3, 30, 2, false, false)
	if k.Feasible(bad) {
		t.Fatal("u=31 x rt=32 should be infeasible")
	}
	// The constraint predicate matches Feasible.
	if k.Constraint()(bad) || !k.Constraint()(base) {
		t.Fatal("Constraint() disagrees with Feasible")
	}
}

func TestInfeasiblePenalty(t *testing.T) {
	k := ADI()
	bad := configWith(k, 3, 30, 2, false, false)
	good := configWith(k, 3, 3, 0, false, false)
	badT := k.TrueTime(bad)
	if badT <= k.TrueTime(good) {
		t.Fatal("infeasible variant not slower than a good one")
	}
	// Penalty is deterministic (cached baseline) and identical across
	// infeasible configs of the same kernel.
	bad2 := configWith(k, 0, 29, 2, true, true)
	if k.TrueTime(bad2) != badT {
		t.Fatal("infeasible fallback not constant")
	}
}

func TestInfeasibleFractionSmall(t *testing.T) {
	// The constraint must exclude a corner, not the space.
	r := rng.New(11)
	for _, k := range All() {
		bad := 0
		const n = 2000
		for i := 0; i < n; i++ {
			if !k.Feasible(k.Space().SampleConfig(r)) {
				bad++
			}
		}
		// SPAPT reports sizeable failed-variant rates on its larger
		// problems; a quarter of the space is the ceiling we accept.
		if frac := float64(bad) / n; frac > 0.25 {
			t.Fatalf("%s: %.0f%% of space infeasible", k.Name(), frac*100)
		}
	}
}

func TestSampleFeasiblePool(t *testing.T) {
	k := ADI()
	r := rng.New(12)
	pool, err := k.Space().SampleFeasible(r, 500, k.Constraint())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pool {
		if !k.Feasible(c) {
			t.Fatal("SampleFeasible returned infeasible config")
		}
	}
}

func TestSourceListings(t *testing.T) {
	for _, k := range All() {
		src := k.Source()
		if src == "" {
			t.Fatalf("%s has no source listing", k.Name())
		}
		if !strings.Contains(src, "for") {
			t.Fatalf("%s source does not look like a loop nest", k.Name())
		}
	}
	// Listing 1 of the paper: the ADI update involves X, A and B.
	adi := ADI().Source()
	for _, sym := range []string{"X[i1][i2]", "A[i1][i2]", "B[i1][i2-1]"} {
		if !strings.Contains(adi, sym) {
			t.Fatalf("ADI listing missing %s", sym)
		}
	}
}

func BenchmarkTrueTimeADI(b *testing.B) {
	k := ADI()
	c := k.Space().SampleConfig(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.TrueTime(c)
	}
}
