package spapt

// sources holds the main computation code of each kernel, in the style
// of the paper's Listing 1 (which shows ADI). These are the untransformed
// reference loops the cost models describe; cmd/kernels -source prints
// them.
var sources = map[string]string{
	"adi": `for (i1 = 0; i1 <= N-1; i1++)
  for (i2 = 1; i2 <= N-1; i2++) {
    X[i1][i2] = X[i1][i2] - X[i1][i2-1] * A[i1][i2] / B[i1][i2-1];
    B[i1][i2] = B[i1][i2] - A[i1][i2] * A[i1][i2] / B[i1][i2-1];
  }`,
	"atax": `for (i = 0; i < N; i++) {
  tmp[i] = 0;
  for (j = 0; j < N; j++)
    tmp[i] += A[i][j] * x[j];
}
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    y[j] += A[i][j] * tmp[i];`,
	"bicgkernel": `for (i = 0; i < N; i++) {
  for (j = 0; j < N; j++) {
    s[j] += r[i] * A[i][j];
    q[i] += A[i][j] * p[j];
  }
}`,
	"correlation": `for (j1 = 0; j1 < M-1; j1++)
  for (j2 = j1+1; j2 < M; j2++) {
    symmat[j1][j2] = 0.0;
    for (i = 0; i < N; i++)
      symmat[j1][j2] += data[i][j1] * data[i][j2];
    symmat[j2][j1] = symmat[j1][j2];
  }`,
	"dgemv3": `for (i = 0; i < N; i++)
  for (j = 0; j < N; j++) {
    y1[i] += A[i][j] * x1[j];
    y2[i] += B[i][j] * x2[j];
    y3[i] += C[i][j] * x3[j];
  }`,
	"gemver": `for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    B[i][j] = A[i][j] + u1[i]*v1[j] + u2[i]*v2[j];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    x[i] += beta * B[j][i] * y[j];`,
	"gesummv": `for (i = 0; i < N; i++) {
  tmp[i] = 0; y[i] = 0;
  for (j = 0; j < N; j++) {
    tmp[i] += A[i][j] * x[j];
    y[i]   += B[i][j] * x[j];
  }
  y[i] = alpha * tmp[i] + beta * y[i];
}`,
	"hessian": `for (i = 1; i < N-1; i++)
  for (j = 1; j < N-1; j++) {
    Hxx[i][j] = img[i][j+1] - 2*img[i][j] + img[i][j-1];
    Hyy[i][j] = img[i+1][j] - 2*img[i][j] + img[i-1][j];
    Hxy[i][j] = (img[i+1][j+1] - img[i+1][j-1]
               - img[i-1][j+1] + img[i-1][j-1]) / 4;
  }`,
	"jacobi": `for (i = 1; i < N-1; i++)
  for (j = 1; j < N-1; j++)
    B[i][j] = 0.2 * (A[i][j] + A[i][j-1] + A[i][j+1]
                   + A[i-1][j] + A[i+1][j]);`,
	"lu": `for (k = 0; k < N; k++) {
  for (j = k+1; j < N; j++)
    A[k][j] = A[k][j] / A[k][k];
  for (i = k+1; i < N; i++)
    for (j = k+1; j < N; j++)
      A[i][j] = A[i][j] - A[i][k] * A[k][j];
}`,
	"mm": `for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    for (k = 0; k < N; k++)
      C[i][j] += A[i][k] * B[k][j];`,
	"mvt": `for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    x1[i] += A[i][j] * y1[j];
for (i = 0; i < N; i++)
  for (j = 0; j < N; j++)
    x2[i] += A[j][i] * y2[j];`,
}

// Source returns the kernel's reference computation code (Listing 1
// style), or an empty string if unavailable.
func (k *Kernel) Source() string { return sources[k.spec.name] }
