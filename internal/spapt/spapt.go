// Package spapt reproduces the SPAPT search problems (Balaprakash, Wild,
// Norris 2012) the paper models: 12 of the suite's computation kernels,
// each with its configurable compilation parameters — cache tiling, loop
// unroll-jam, register tiling, scalar replacement and vectorization — and
// a cost model that maps a configuration to the execution time of the
// transformed kernel.
//
// The real SPAPT labels a configuration by generating a code variant with
// Orio and timing it on hardware (the paper's Platform A). Neither Orio
// nor the hardware is available here, so TrueTime computes the time
// analytically from the machine model in internal/machine:
//
//   - Cache tiling sets the working set of each loop nest; the nest's
//     memory traffic is served at the bandwidth of the cache level the
//     working set fits in. Untiled (tile = 1) dimensions span the whole
//     problem, spilling the working set to DRAM; tiny tiles fit L1 but
//     pay loop overhead and stride inefficiency. The sweet spot is in
//     the middle — the classic non-monotone tiling surface.
//   - Unroll-jam raises ILP toward the issue width with diminishing
//     returns, but multiplies live values; together with register tiling
//     it can exceed the register file and fall off the spill cliff.
//   - Scalar replacement removes a fraction of the memory traffic
//     proportional to the kernel's data reuse, for a small register cost.
//   - Vectorization speeds up the vectorizable fraction of the compute,
//     gated by the innermost tile being large enough to fill vectors.
//
// The result is a mostly-slow space with a small, interaction-heavy
// high-performance region — the structure the paper's sampling strategies
// are designed to exploit. See DESIGN.md §2 for the substitution
// argument.
package spapt

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"repro/internal/machine"
	"repro/internal/space"
)

// tileValues are the cache-tile sizes of Table I.
var tileValues = []float64{1, 16, 32, 64, 128, 256, 512}

// regTileValues are the register-tile factors of Table I.
var regTileValues = []float64{1, 8, 32}

// spec is the declarative description of one SPAPT kernel.
type spec struct {
	name string
	desc string

	// n is the problem dimension; points is the total iteration count of
	// the kernel (e.g. n² for a matrix-vector kernel, n³ for matmul).
	n      float64
	points float64

	// dims is the loop-nest depth tiling applies to (2 or 3).
	dims int

	// flopsPerPoint / bytesPerPoint characterise the innermost body.
	flopsPerPoint float64
	bytesPerPoint float64

	// wsBytesPerElem is the per-element footprint of one tile of the
	// nest's working set (8 bytes × number of live arrays).
	wsBytesPerElem float64

	// reuseFrac is the fraction of loads removable by scalar
	// replacement (data reuse in registers).
	reuseFrac float64

	// vecFrac is the vectorizable fraction of the compute.
	vecFrac float64

	// baseLive is the number of simultaneously live scalars in the
	// un-transformed body, driving register pressure.
	baseLive float64

	// nTile, nUnroll, nReg are the numbers of tile, unroll-jam and
	// register-tile parameters (SPAPT exposes one per loop).
	nTile, nUnroll, nReg int
}

// Kernel is one SPAPT search problem: a parameter space plus the cost
// model for its transformed variants.
type Kernel struct {
	spec     spec
	space    *space.Space
	platform *machine.Platform

	baselineOnce sync.Once
	baseline     float64
}

// baselineTime returns the untransformed kernel's time (no tiling, no
// unrolling, no register tiling, scalar code) — the fallback charged to
// infeasible variants. Computed once per Kernel; safe for concurrent
// use.
func (k *Kernel) baselineTime() float64 {
	k.baselineOnce.Do(func() {
		c := make(space.Config, k.space.NumParams())
		k.baseline = k.TrueTime(c) // all-zero levels: tile=1, U=1, RT=1, flags off
	})
	return k.baseline
}

// build creates the Kernel for a spec, constructing its parameter space
// in SPAPT's layout: tile parameters T1..Tk, unroll-jam parameters
// U1..Uk, register-tile parameters RT1..RTk, then the two booleans SCREP
// and VEC (compare Table I for the ADI kernel).
func build(s spec) *Kernel {
	var params []space.Parameter
	for i := 1; i <= s.nTile; i++ {
		params = append(params, space.Num(fmt.Sprintf("T%d", i), tileValues...))
	}
	for i := 1; i <= s.nUnroll; i++ {
		params = append(params, space.NumRange(fmt.Sprintf("U%d", i), 1, 31, 1))
	}
	for i := 1; i <= s.nReg; i++ {
		params = append(params, space.Num(fmt.Sprintf("RT%d", i), regTileValues...))
	}
	params = append(params, space.Bool("SCREP"), space.Bool("VEC"))
	return &Kernel{spec: s, space: space.MustNew(params...), platform: machine.PlatformA()}
}

// WithPlatform returns a copy of the kernel whose cost model runs on a
// different platform. The parameter space is unchanged; only the modeled
// hardware differs, so the pair (kernel, kernel.WithPlatform(p)) forms a
// cross-platform transfer problem (the paper's future-work scenario,
// exercised by internal/transfer).
func (k *Kernel) WithPlatform(p *machine.Platform) *Kernel {
	return &Kernel{spec: k.spec, space: k.space, platform: p}
}

// Name returns the kernel's SPAPT name (e.g. "adi").
func (k *Kernel) Name() string { return k.spec.name }

// Description returns a one-line description of the computation.
func (k *Kernel) Description() string { return k.spec.desc }

// Space returns the kernel's compilation-parameter space.
func (k *Kernel) Space() *space.Space { return k.space }

// Platform returns the platform the kernel is modeled on (Platform A).
func (k *Kernel) Platform() *machine.Platform { return k.platform }

// NumParams returns the dimensionality of the search problem.
func (k *Kernel) NumParams() int { return k.space.NumParams() }

// Feasible reports whether configuration c produces a buildable code
// variant. Real SPAPT problems constrain their transformations — a
// source-to-source unroll-jam combined with heavy register tiling can
// blow up the generated code past what the compiler accepts. We model
// the standard constraint: for every loop nest, the unrolled body size
// (unroll factor × register-tile product) must stay within 900
// statements — only the most extreme corner (unroll ≥ 29 with register
// tile 32) is excluded. Infeasible variants do not run; TrueTime charges
// them the untransformed fallback (see there).
func (k *Kernel) Feasible(c space.Config) bool {
	s := &k.spec
	nests := s.nTile / s.dims
	if nests < 1 {
		nests = 1
	}
	for g := 0; g < nests; g++ {
		u := 1.0
		if s.nUnroll > 0 {
			u = k.space.ValueByName(c, fmt.Sprintf("U%d", g%s.nUnroll+1))
		}
		rt := 1.0
		if s.nReg > 0 {
			rt = k.space.ValueByName(c, fmt.Sprintf("RT%d", g%s.nReg+1))
		}
		if u*rt > 900 {
			return false
		}
	}
	return true
}

// Constraint returns the kernel's feasibility predicate as a
// space.Constraint.
func (k *Kernel) Constraint() space.Constraint {
	return func(c space.Config) bool { return k.Feasible(c) }
}

// TrueTime returns the modeled noise-free execution time in seconds of
// the kernel variant generated by configuration c. Infeasible variants
// (see Feasible) fall back to the untransformed kernel plus a rebuild
// penalty — the auto-tuner's view of a failed variant.
//
// The kernel body is treated as nTile/dims independent loop nests (SPAPT
// kernels contain several statements, each with its own tiling); each
// nest processes an equal share of the points and is costed with the
// machine model, using its own tile group and a round-robin assignment
// of the unroll and register-tile parameters.
func (k *Kernel) TrueTime(c space.Config) float64 {
	s := &k.spec
	p := k.platform

	if !k.Feasible(c) {
		return 1.15 * k.baselineTime()
	}

	screp := k.space.ValueByName(c, "SCREP") != 0
	vec := k.space.ValueByName(c, "VEC") != 0

	nests := s.nTile / s.dims
	if nests < 1 {
		nests = 1
	}
	pointsPerNest := s.points / float64(nests)

	total := 50e-6 // fixed process/loop startup
	for g := 0; g < nests; g++ {
		// --- Tiling: working set and traffic of this nest.
		innerTile := s.n
		wsElems := 1.0
		for d := 0; d < s.dims; d++ {
			ti := g*s.dims + d
			var tile float64
			if ti < s.nTile {
				tile = k.space.ValueByName(c, fmt.Sprintf("T%d", ti+1))
			} else {
				tile = 1
			}
			eff := tile
			if eff <= 1 || eff > s.n {
				eff = s.n // untiled: the dimension spans the problem
			}
			wsElems *= eff
			if d == s.dims-1 {
				innerTile = eff
			}
		}
		ws := wsElems * s.wsBytesPerElem

		traffic := pointsPerNest * s.bytesPerPoint
		if screp {
			traffic *= 1 - 0.35*s.reuseFrac
		}
		// Stride efficiency: short innermost tiles waste cache lines and
		// prefetch streams.
		strideEff := innerTile / (innerTile + 24)
		memT := p.MemTime(traffic, ws, strideEff)

		// --- Compute: ILP from unroll-jam, register pressure from
		// register tiling (+ scalar replacement), SIMD gain when enabled.
		u := 1.0
		if s.nUnroll > 0 {
			u = k.space.ValueByName(c, fmt.Sprintf("U%d", g%s.nUnroll+1))
		}
		rt := 1.0
		if s.nReg > 0 {
			rt = k.space.ValueByName(c, fmt.Sprintf("RT%d", g%s.nReg+1))
		}
		live := s.baseLive + math.Sqrt(rt)
		if screp {
			live += 2
		}
		// Register tiling adds ILP like unrolling does.
		ilp := p.ILPEfficiency(u*math.Sqrt(rt), live)
		flops := pointsPerNest * s.flopsPerPoint
		compT := p.ComputeTime(flops, ilp)
		if vec {
			// Vector fill requires a long enough contiguous inner loop.
			gate := innerTile / (innerTile + 4*float64(p.VectorLanes))
			compT /= p.VectorSpeedup(s.vecFrac * gate)
		}

		// --- Loop overhead: per-iteration control flow amortized over
		// the innermost tile, inflated when unrolling is trivial.
		branch := 3.0 / p.FreqHz
		amort := innerTile * math.Min(u, 8)
		ovhT := pointsPerNest * branch / math.Max(1, amort/4)

		// Memory and compute overlap partially (hardware prefetch).
		nestT := math.Max(compT, memT) + 0.3*math.Min(compT, memT) + ovhT
		total += nestT
	}
	return total
}

// specs defines the 12 modeled kernels. Problem sizes follow SPAPT's
// defaults in spirit: each kernel's untransformed time lands in the
// sub-second range the paper reports (§III-B), with a mix of memory-bound
// (atax, mvt, gesummv, jacobi), compute-bound (mm, lu) and intermediate
// kernels, and parameter counts spanning 9–38.
var specs = []spec{
	{
		name: "adi", desc: "ADI stencil: alternating-direction implicit sweeps",
		n: 4000, points: 4000 * 4000 * 2, dims: 2,
		flopsPerPoint: 6, bytesPerPoint: 40, wsBytesPerElem: 24,
		reuseFrac: 0.5, vecFrac: 0.7, baseLive: 5,
		nTile: 8, nUnroll: 4, nReg: 4,
	},
	{
		name: "atax", desc: "matrix transpose & vector multiply: y = Aᵀ(Ax)",
		n: 6000, points: 6000 * 6000 * 2, dims: 2,
		flopsPerPoint: 2, bytesPerPoint: 16, wsBytesPerElem: 16,
		reuseFrac: 0.6, vecFrac: 0.9, baseLive: 3,
		nTile: 4, nUnroll: 3, nReg: 3,
	},
	{
		name: "bicgkernel", desc: "BiCG sub-kernel: q = Ap, s = Aᵀr",
		n: 6000, points: 6000 * 6000 * 2, dims: 2,
		flopsPerPoint: 4, bytesPerPoint: 24, wsBytesPerElem: 24,
		reuseFrac: 0.5, vecFrac: 0.85, baseLive: 4,
		nTile: 4, nUnroll: 4, nReg: 3,
	},
	{
		name: "correlation", desc: "correlation-matrix computation",
		n: 2000, points: 2000 * 2000 * 8, dims: 2,
		flopsPerPoint: 5, bytesPerPoint: 20, wsBytesPerElem: 24,
		reuseFrac: 0.7, vecFrac: 0.8, baseLive: 6,
		nTile: 16, nUnroll: 10, nReg: 10,
	},
	{
		name: "dgemv3", desc: "three chained dense matrix-vector products",
		n: 8000, points: 8000 * 8000 * 3, dims: 2,
		flopsPerPoint: 2, bytesPerPoint: 16, wsBytesPerElem: 16,
		reuseFrac: 0.55, vecFrac: 0.9, baseLive: 3,
		nTile: 12, nUnroll: 9, nReg: 7,
	},
	{
		name: "gemver", desc: "vector multiplication and matrix addition (BLAS gemver)",
		n: 8000, points: 8000 * 8000 * 2, dims: 2,
		flopsPerPoint: 4, bytesPerPoint: 24, wsBytesPerElem: 24,
		reuseFrac: 0.5, vecFrac: 0.85, baseLive: 5,
		nTile: 8, nUnroll: 8, nReg: 6,
	},
	{
		name: "gesummv", desc: "scalar, vector and matrix multiplication: y = αAx + βBx",
		n: 8000, points: 8000 * 8000 * 2, dims: 2,
		flopsPerPoint: 2, bytesPerPoint: 20, wsBytesPerElem: 24,
		reuseFrac: 0.4, vecFrac: 0.9, baseLive: 4,
		nTile: 3, nUnroll: 3, nReg: 3,
	},
	{
		name: "hessian", desc: "3×3 Hessian image filter",
		n: 2000, points: 2000 * 2000 * 9, dims: 2,
		flopsPerPoint: 4, bytesPerPoint: 12, wsBytesPerElem: 16,
		reuseFrac: 0.8, vecFrac: 0.75, baseLive: 7,
		nTile: 4, nUnroll: 3, nReg: 2,
	},
	{
		name: "jacobi", desc: "2-D Jacobi 5-point stencil sweep",
		n: 8000, points: 8000 * 8000, dims: 2,
		flopsPerPoint: 5, bytesPerPoint: 24, wsBytesPerElem: 16,
		reuseFrac: 0.75, vecFrac: 0.8, baseLive: 6,
		nTile: 4, nUnroll: 3, nReg: 2,
	},
	{
		name: "lu", desc: "LU decomposition without pivoting",
		n: 1200, points: 1200 * 1200 * 400, dims: 3,
		flopsPerPoint: 2, bytesPerPoint: 4, wsBytesPerElem: 16,
		reuseFrac: 0.65, vecFrac: 0.85, baseLive: 4,
		nTile: 6, nUnroll: 3, nReg: 3,
	},
	{
		name: "mm", desc: "dense matrix-matrix multiply C = AB",
		n: 1000, points: 1000 * 1000 * 1000, dims: 3,
		flopsPerPoint: 2, bytesPerPoint: 3, wsBytesPerElem: 24,
		reuseFrac: 0.7, vecFrac: 0.95, baseLive: 3,
		nTile: 6, nUnroll: 4, nReg: 4,
	},
	{
		name: "mvt", desc: "matrix-vector multiply with A and Aᵀ",
		n: 8000, points: 8000 * 8000 * 2, dims: 2,
		flopsPerPoint: 2, bytesPerPoint: 16, wsBytesPerElem: 16,
		reuseFrac: 0.5, vecFrac: 0.9, baseLive: 3,
		nTile: 4, nUnroll: 3, nReg: 3,
	},
}

// All returns the 12 modeled kernels, freshly constructed, in suite
// order.
func All() []*Kernel {
	out := make([]*Kernel, len(specs))
	for i, s := range specs {
		out[i] = build(s)
	}
	return out
}

// Names returns the kernel names in suite order.
func Names() []string {
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.name
	}
	return out
}

// ByName returns the named kernel.
func ByName(name string) (*Kernel, error) {
	for _, s := range specs {
		if s.name == name {
			return build(s), nil
		}
	}
	return nil, fmt.Errorf("spapt: unknown kernel %q (have %s)", name, strings.Join(Names(), ", "))
}

// ADI returns the ADI kernel, whose parameter space is the paper's
// Table I.
func ADI() *Kernel {
	k, err := ByName("adi")
	if err != nil {
		panic(err)
	}
	return k
}

// TableRow is one row of a Table I-style parameter summary.
type TableRow struct {
	Type   string
	Number int
	Values string
}

// Table summarises the kernel's parameter space grouped by parameter
// type, reproducing the layout of the paper's Table I.
func (k *Kernel) Table() []TableRow {
	groups := map[string][]space.Parameter{}
	for i := 0; i < k.space.NumParams(); i++ {
		p := k.space.Param(i)
		var g string
		switch {
		case strings.HasPrefix(p.Name, "RT"):
			g = "regtile"
		case strings.HasPrefix(p.Name, "T"):
			g = "tile"
		case strings.HasPrefix(p.Name, "U"):
			g = "unrolljam"
		case p.Name == "SCREP":
			g = "scalarreplace"
		case p.Name == "VEC":
			g = "vector"
		default:
			g = "other"
		}
		groups[g] = append(groups[g], p)
	}
	order := []string{"tile", "unrolljam", "regtile", "scalarreplace", "vector", "other"}
	var rows []TableRow
	for _, g := range order {
		ps, ok := groups[g]
		if !ok {
			continue
		}
		rows = append(rows, TableRow{Type: g, Number: len(ps), Values: levelSummary(ps[0])})
	}
	return rows
}

// levelSummary renders a parameter's levels compactly ("1, 2, 3, ..., 31"
// for long runs).
func levelSummary(p space.Parameter) string {
	n := p.NumLevels()
	var vals []string
	for i := 0; i < n; i++ {
		vals = append(vals, p.LevelString(i))
	}
	if n > 8 {
		return strings.Join(vals[:3], ", ") + ", ..., " + vals[n-1]
	}
	return strings.Join(vals, ", ")
}
