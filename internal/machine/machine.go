// Package machine models the execution platforms of the paper's Table IV
// and provides the analytic hardware primitives the benchmark cost models
// are built on: a cache hierarchy, a superscalar core with vector units
// and registers, and an α–β (latency/bandwidth) interconnect.
//
// The paper labels samples by running programs on two Xeon clusters. That
// hardware is not available here, so the SPAPT/kripke/hypre substrates
// (internal/spapt, internal/kripke, internal/hypre) compute execution
// times from these models instead. The models are deliberately simple —
// the goal is a response surface with the right structure (capacity
// cliffs, register-pressure walls, communication knees), not cycle
// accuracy; see DESIGN.md §2.
package machine

import "math"

// CacheLevel describes one level of the data-cache hierarchy.
type CacheLevel struct {
	Name string

	// SizeBytes is the capacity of the level.
	SizeBytes float64

	// BytesPerSec is the sustainable bandwidth from this level to the
	// core.
	BytesPerSec float64

	// LatencySec is the access latency of the level.
	LatencySec float64
}

// Network is an α–β model of the cluster interconnect: sending an
// n-byte message costs Alpha + n/Beta seconds.
type Network struct {
	// AlphaSec is the per-message latency.
	AlphaSec float64

	// BetaBytesPerSec is the point-to-point bandwidth.
	BetaBytesPerSec float64
}

// MessageTime returns the α–β cost of one message of n bytes.
func (n Network) MessageTime(bytes float64) float64 {
	return n.AlphaSec + bytes/n.BetaBytesPerSec
}

// Platform is a node (plus interconnect) specification, the simulation
// stand-in for a row of Table IV.
type Platform struct {
	Name string

	// CPU identifies the processor model, for table output.
	CPU string

	// FreqHz is the core clock frequency.
	FreqHz float64

	// Cores is the number of physical cores per node.
	Cores int

	// MemoryBytes is the node DRAM capacity.
	MemoryBytes float64

	// IssueWidth is the per-cycle superscalar issue width for arithmetic.
	IssueWidth int

	// VectorLanes is the number of float64 lanes of the SIMD unit
	// (4 for AVX2 on the Haswell/Broadwell parts in Table IV).
	VectorLanes int

	// Registers is the number of architectural floating-point/vector
	// registers available to the register allocator (16 for x86-64 SSE/AVX).
	Registers int

	// FlopsPerCycle is the peak scalar FLOP throughput per cycle per core.
	FlopsPerCycle float64

	// Caches is the hierarchy ordered from L1 outward; the final entry
	// must be DRAM (treated as infinite capacity).
	Caches []CacheLevel

	// Net is the cluster interconnect; zero-valued when the platform is
	// used only for serial kernels.
	Net Network
}

// PlatformA returns the simulation stand-in for Table IV's Platform A:
// dual E5-2680 v3 (Haswell) nodes, 2.5 GHz, 24 cores, 64 GB, used for
// the serial SPAPT kernels.
func PlatformA() *Platform {
	return &Platform{
		Name:          "A",
		CPU:           "E5-2680 v3",
		FreqHz:        2.5e9,
		Cores:         24,
		MemoryBytes:   64e9,
		IssueWidth:    4,
		VectorLanes:   4,
		Registers:     16,
		FlopsPerCycle: 2,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, BytesPerSec: 400e9, LatencySec: 1.6e-9},
			{Name: "L2", SizeBytes: 256 << 10, BytesPerSec: 180e9, LatencySec: 4.8e-9},
			{Name: "L3", SizeBytes: 30 << 20, BytesPerSec: 90e9, LatencySec: 14e-9},
			{Name: "DRAM", SizeBytes: math.Inf(1), BytesPerSec: 20e9, LatencySec: 90e-9},
		},
	}
}

// PlatformB returns the simulation stand-in for Table IV's Platform B:
// E5-2680 v4 (Broadwell) nodes, 2.4 GHz, 28 cores, 128 GB, 100 Gb/s
// Omni-Path, used for the kripke and hypre applications.
func PlatformB() *Platform {
	return &Platform{
		Name:          "B",
		CPU:           "E5-2680 v4",
		FreqHz:        2.4e9,
		Cores:         28,
		MemoryBytes:   128e9,
		IssueWidth:    4,
		VectorLanes:   4,
		Registers:     16,
		FlopsPerCycle: 2,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, BytesPerSec: 400e9, LatencySec: 1.7e-9},
			{Name: "L2", SizeBytes: 256 << 10, BytesPerSec: 180e9, LatencySec: 5e-9},
			{Name: "L3", SizeBytes: 35 << 20, BytesPerSec: 95e9, LatencySec: 15e-9},
			{Name: "DRAM", SizeBytes: math.Inf(1), BytesPerSec: 22e9, LatencySec: 85e-9},
		},
		// 100 Gbps Omni-Path: ~12.5 GB/s, ~1.5 µs MPI latency.
		Net: Network{AlphaSec: 1.5e-6, BetaBytesPerSec: 12.5e9},
	}
}

// PlatformC returns a third, newer node used by the model-portability
// experiments (internal/transfer): a Skylake-class part with AVX-512
// (8 float64 lanes, 32 vector registers), higher clock and a larger but
// non-inclusive L3. It is not part of the paper's Table IV; it plays the
// "new platform" of the paper's future-work question.
func PlatformC() *Platform {
	return &Platform{
		Name:          "C",
		CPU:           "Gold 6148",
		FreqHz:        2.6e9,
		Cores:         40,
		MemoryBytes:   192e9,
		IssueWidth:    4,
		VectorLanes:   8,
		Registers:     32,
		FlopsPerCycle: 2,
		Caches: []CacheLevel{
			{Name: "L1", SizeBytes: 32 << 10, BytesPerSec: 450e9, LatencySec: 1.5e-9},
			{Name: "L2", SizeBytes: 1 << 20, BytesPerSec: 220e9, LatencySec: 4.5e-9},
			{Name: "L3", SizeBytes: 27 << 20, BytesPerSec: 100e9, LatencySec: 16e-9},
			{Name: "DRAM", SizeBytes: math.Inf(1), BytesPerSec: 25e9, LatencySec: 80e-9},
		},
		Net: Network{AlphaSec: 1.2e-6, BetaBytesPerSec: 12.5e9},
	}
}

// PeakFlops returns the peak scalar FLOP/s of one core.
func (p *Platform) PeakFlops() float64 {
	return p.FreqHz * p.FlopsPerCycle
}

// LevelFor returns the innermost cache level whose capacity holds
// workingSetBytes. The DRAM level always fits.
func (p *Platform) LevelFor(workingSetBytes float64) CacheLevel {
	for _, c := range p.Caches {
		if workingSetBytes <= c.SizeBytes {
			return c
		}
	}
	return p.Caches[len(p.Caches)-1]
}

// MemTime returns the time to stream trafficBytes with a working set of
// workingSetBytes: traffic is served at the bandwidth of the cache level
// the working set fits in. strideEfficiency in (0, 1] derates bandwidth
// for non-unit-stride access (1 = perfectly streaming).
func (p *Platform) MemTime(trafficBytes, workingSetBytes, strideEfficiency float64) float64 {
	if strideEfficiency <= 0 {
		strideEfficiency = 1e-3
	}
	if strideEfficiency > 1 {
		strideEfficiency = 1
	}
	lvl := p.LevelFor(workingSetBytes)
	return trafficBytes / (lvl.BytesPerSec * strideEfficiency)
}

// ComputeTime returns the time to execute flops floating-point operations
// at efficiency eff in (0, 1] of single-core peak.
func (p *Platform) ComputeTime(flops, eff float64) float64 {
	if eff <= 0 {
		eff = 1e-3
	}
	if eff > 1 {
		eff = 1
	}
	return flops / (p.PeakFlops() * eff)
}

// ILPEfficiency models how loop unrolling affects pipeline utilisation:
// efficiency grows with the unroll product toward 1 (more independent
// work per iteration hides latency) but collapses once the unrolled body
// needs more than the architectural register count (spill traffic).
//
// unroll is the product of unroll factors applied to the loop nest;
// liveValues is an estimate of simultaneously-live scalar values per
// unrolled iteration.
func (p *Platform) ILPEfficiency(unroll, liveValues float64) float64 {
	if unroll < 1 {
		unroll = 1
	}
	// Diminishing returns toward the issue width: eff in [base, 1).
	base := 0.35
	gain := 1 - math.Exp(-unroll/float64(p.IssueWidth))
	eff := base + (1-base)*gain
	// Register pressure: exceeding the register file costs dearly.
	pressure := liveValues * unroll
	if regs := float64(p.Registers); pressure > regs {
		over := pressure / regs
		eff /= 1 + 0.8*(over-1)
	}
	if eff > 1 {
		eff = 1
	}
	return eff
}

// VectorSpeedup models the gain from enabling vectorization: a fraction
// vecFraction of the work runs at the SIMD width, derated by overhead.
// With vecFraction = 0 it returns 1 (no change).
func (p *Platform) VectorSpeedup(vecFraction float64) float64 {
	if vecFraction <= 0 {
		return 1
	}
	if vecFraction > 1 {
		vecFraction = 1
	}
	lanes := float64(p.VectorLanes)
	// Amdahl over the vectorizable fraction with 85% SIMD efficiency.
	s := 1 / ((1 - vecFraction) + vecFraction/(lanes*0.85))
	if s < 1 {
		s = 1
	}
	return s
}
