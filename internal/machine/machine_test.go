package machine

import (
	"math"
	"testing"
)

func TestPlatformTableIV(t *testing.T) {
	a, b := PlatformA(), PlatformB()
	if a.CPU != "E5-2680 v3" || a.Cores != 24 || a.FreqHz != 2.5e9 || a.MemoryBytes != 64e9 {
		t.Fatalf("Platform A spec mismatch: %+v", a)
	}
	if b.CPU != "E5-2680 v4" || b.Cores != 28 || b.FreqHz != 2.4e9 || b.MemoryBytes != 128e9 {
		t.Fatalf("Platform B spec mismatch: %+v", b)
	}
	if b.Net.BetaBytesPerSec <= 0 || b.Net.AlphaSec <= 0 {
		t.Fatal("Platform B missing 100Gbps OPA network")
	}
	if a.Net.BetaBytesPerSec != 0 {
		t.Fatal("Platform A should have no network (Table IV dash)")
	}
}

func TestCacheHierarchyOrdered(t *testing.T) {
	for _, p := range []*Platform{PlatformA(), PlatformB()} {
		for i := 1; i < len(p.Caches); i++ {
			prev, cur := p.Caches[i-1], p.Caches[i]
			if cur.SizeBytes <= prev.SizeBytes {
				t.Fatalf("%s: cache %s not larger than %s", p.Name, cur.Name, prev.Name)
			}
			if cur.BytesPerSec >= prev.BytesPerSec {
				t.Fatalf("%s: cache %s not slower than %s", p.Name, cur.Name, prev.Name)
			}
			if cur.LatencySec <= prev.LatencySec {
				t.Fatalf("%s: cache %s latency not larger than %s", p.Name, cur.Name, prev.Name)
			}
		}
		last := p.Caches[len(p.Caches)-1]
		if !math.IsInf(last.SizeBytes, 1) {
			t.Fatalf("%s: last level must be DRAM with infinite capacity", p.Name)
		}
	}
}

func TestLevelFor(t *testing.T) {
	p := PlatformA()
	if got := p.LevelFor(16 << 10); got.Name != "L1" {
		t.Fatalf("16KB -> %s", got.Name)
	}
	if got := p.LevelFor(100 << 10); got.Name != "L2" {
		t.Fatalf("100KB -> %s", got.Name)
	}
	if got := p.LevelFor(10 << 20); got.Name != "L3" {
		t.Fatalf("10MB -> %s", got.Name)
	}
	if got := p.LevelFor(1 << 30); got.Name != "DRAM" {
		t.Fatalf("1GB -> %s", got.Name)
	}
}

func TestMemTimeCapacityCliff(t *testing.T) {
	// The same traffic is slower when the working set spills to DRAM.
	p := PlatformA()
	inCache := p.MemTime(1e6, 16<<10, 1)
	inDRAM := p.MemTime(1e6, 1<<30, 1)
	if inDRAM <= inCache*5 {
		t.Fatalf("no capacity cliff: cache %v vs dram %v", inCache, inDRAM)
	}
}

func TestMemTimeStridePenalty(t *testing.T) {
	p := PlatformA()
	good := p.MemTime(1e6, 1<<30, 1)
	bad := p.MemTime(1e6, 1<<30, 0.1)
	if math.Abs(bad/good-10) > 1e-9 {
		t.Fatalf("stride derating wrong: %v vs %v", bad, good)
	}
	// Degenerate efficiencies are clamped, not divide-by-zero.
	if v := p.MemTime(1e6, 1, 0); math.IsInf(v, 0) || math.IsNaN(v) {
		t.Fatalf("zero stride efficiency gave %v", v)
	}
	if v1, v2 := p.MemTime(1e6, 1, 2), p.MemTime(1e6, 1, 1); v1 != v2 {
		t.Fatal("efficiency > 1 not clamped")
	}
}

func TestComputeTime(t *testing.T) {
	p := PlatformA()
	// 5 Gflop at peak 5 Gflop/s and eff 1 is one second.
	if got := p.ComputeTime(p.PeakFlops(), 1); math.Abs(got-1) > 1e-12 {
		t.Fatalf("ComputeTime = %v", got)
	}
	if p.ComputeTime(1e9, 0.5) <= p.ComputeTime(1e9, 1) {
		t.Fatal("lower efficiency not slower")
	}
	if v := p.ComputeTime(1e9, 0); math.IsInf(v, 0) {
		t.Fatal("zero efficiency not clamped")
	}
}

func TestILPEfficiencyRises(t *testing.T) {
	p := PlatformA()
	e1 := p.ILPEfficiency(1, 2)
	e4 := p.ILPEfficiency(4, 2)
	if e4 <= e1 {
		t.Fatalf("unrolling did not help: %v vs %v", e1, e4)
	}
	if e4 > 1 {
		t.Fatalf("efficiency above 1: %v", e4)
	}
}

func TestILPEfficiencyRegisterWall(t *testing.T) {
	p := PlatformA()
	// Live values*unroll far beyond the 16 registers should crush
	// efficiency below the modest-unroll case.
	mid := p.ILPEfficiency(4, 3)   // pressure 12 < 16
	over := p.ILPEfficiency(32, 3) // pressure 96 >> 16
	if over >= mid {
		t.Fatalf("no register-pressure wall: %v vs %v", mid, over)
	}
}

func TestILPEfficiencyClampsUnroll(t *testing.T) {
	p := PlatformA()
	if p.ILPEfficiency(0, 1) != p.ILPEfficiency(1, 1) {
		t.Fatal("unroll < 1 not clamped")
	}
}

func TestVectorSpeedup(t *testing.T) {
	p := PlatformA()
	if got := p.VectorSpeedup(0); got != 1 {
		t.Fatalf("no-vec speedup = %v", got)
	}
	s := p.VectorSpeedup(1)
	if s <= 2 || s > 4 {
		t.Fatalf("full-vec speedup = %v, want in (2, 4]", s)
	}
	if p.VectorSpeedup(0.5) >= s {
		t.Fatal("partial vectorization not slower than full")
	}
	if p.VectorSpeedup(2) != s {
		t.Fatal("fraction > 1 not clamped")
	}
	if p.VectorSpeedup(0.3) < 1 {
		t.Fatal("speedup below 1")
	}
}

func TestMessageTime(t *testing.T) {
	n := Network{AlphaSec: 1e-6, BetaBytesPerSec: 1e9}
	if got := n.MessageTime(0); got != 1e-6 {
		t.Fatalf("empty message = %v", got)
	}
	if got := n.MessageTime(1e9); math.Abs(got-(1e-6+1)) > 1e-12 {
		t.Fatalf("1GB message = %v", got)
	}
}

func TestPeakFlops(t *testing.T) {
	p := PlatformA()
	if got := p.PeakFlops(); got != 5e9 {
		t.Fatalf("PeakFlops = %v", got)
	}
}
