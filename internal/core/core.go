// Package core implements the paper's primary contribution: the active
// learning loop of Algorithm 1 and the sampling strategies it compares —
// most importantly Performance Weighted Uncertainty (PWU).
//
// The loop (Fig. 1 of the paper):
//
//  1. Sample n_init configurations uniformly from the unlabeled pool and
//     evaluate them (cold-start phase).
//  2. Fit a random forest to the labeled set.
//  3. Ask the sampling strategy for the next batch, using the forest's
//     per-configuration prediction mean μ and uncertainty σ over the
//     remaining pool.
//  4. Evaluate the batch, append it to the training set, refit, repeat
//     until n_max samples are labeled.
//
// Everything is deterministic given the caller-provided generator.
//
// Beyond the bare algorithm, Run is a production run engine: evaluations
// receive a context and may fail (labels are real program runs that
// hang, crash, or get cut short by a budget), a configurable failure
// policy retries with capped exponential backoff before skipping or
// aborting, cancellation drains cleanly and returns the partial result,
// per-iteration telemetry is recorded, and the full loop state can be
// snapshotted and resumed bit-identically (see Snapshot and Resume).
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
)

// Evaluator labels a configuration with its measured performance
// (execution time in seconds; smaller is better). Implementations live
// in the benchmark substrates (internal/spapt, internal/kripke,
// internal/hypre, via internal/bench).
//
// Evaluate must honor ctx: a real measurement is a program run that the
// engine may need to abort. A non-nil error marks the measurement as
// failed; when the failed run still consumed machine time (e.g. it was
// cut short by a timeout budget), return that time alongside the error
// and the engine bills it to the cumulative labeling cost.
type Evaluator interface {
	Evaluate(ctx context.Context, c space.Config) (float64, error)
}

// BatchEvaluator is an optional Evaluator capability: measure several
// configurations in one call, in order, as if Evaluate had been called
// on each — same stream, same values. The session driver uses it to
// label a whole ask batch at once, which matters when each call is a
// network round trip (see fleet.RemoteEvaluator); it never changes the
// measurements, only how many trips deliver them.
type BatchEvaluator interface {
	Evaluator
	EvaluateBatch(ctx context.Context, cfgs []space.Config) ([]Label, error)
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(ctx context.Context, c space.Config) (float64, error)

// Evaluate calls f(ctx, c).
func (f EvaluatorFunc) Evaluate(ctx context.Context, c space.Config) (float64, error) {
	return f(ctx, c)
}

// LegacyEvaluator is the original context-free labeling contract, kept
// so infallible evaluators (closed-form models, lookup tables) stay
// trivial to write. Lift one into the engine with AdaptEvaluator.
type LegacyEvaluator interface {
	Evaluate(c space.Config) float64
}

// LegacyEvaluatorFunc adapts a function to LegacyEvaluator.
type LegacyEvaluatorFunc func(c space.Config) float64

// Evaluate calls f(c).
func (f LegacyEvaluatorFunc) Evaluate(c space.Config) float64 { return f(c) }

// AdaptEvaluator lifts a LegacyEvaluator into the context-aware
// contract: the measurement itself cannot fail, and cancellation is
// honored between measurements.
func AdaptEvaluator(ev LegacyEvaluator) Evaluator {
	return EvaluatorFunc(func(ctx context.Context, c space.Config) (float64, error) {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		return ev.Evaluate(c), nil
	})
}

// StatefulEvaluator is an optional Evaluator capability: evaluators
// whose measurements consume internal randomness (the benchmark noise
// protocol) export and restore that generator state, so snapshots
// capture the noise stream and a resumed run replays it bit-identically.
type StatefulEvaluator interface {
	Evaluator

	// EvaluatorState exports the internal generator state.
	EvaluatorState() rng.State

	// RestoreEvaluatorState rewinds the evaluator to an exported state.
	RestoreEvaluatorState(st rng.State) error
}

// Model is the surrogate interface Algorithm 1 requires: point
// predictions plus per-prediction uncertainty. forest.Forest is the
// default implementation; internal/gp provides the Gaussian-process
// comparator discussed in the paper's §II-B.
type Model interface {
	// Predict returns the point prediction for one feature vector.
	Predict(x []float64) float64

	// PredictBatch returns prediction means and uncertainties for a
	// batch of feature vectors.
	PredictBatch(X [][]float64) (mu, sigma []float64)
}

// Fitter builds a surrogate from the current labeled set. Params.Fitter
// defaults to random-forest fitting with Params.Forest.
type Fitter func(X [][]float64, y []float64, features []space.Feature, r *rng.RNG) (Model, error)

// Updatable is an optional Model capability: a warm partial refit on the
// grown training set, instead of training from scratch (the "updated
// partially" path of the paper's Fig. 1 caption).
type Updatable interface {
	// Update refits the model in place given the full current training
	// set (old samples first, new samples appended at the end).
	Update(X [][]float64, y []float64, r *rng.RNG) error
}

// PoolPredictor is an optional Model capability: bind the run's fixed
// pool matrix once, then score arbitrary subsets of it by pool-row
// index. Models that implement it (forest.Forest) let Run skip
// rebuilding the candidate matrix every iteration and reuse cached
// per-tree predictions — after a partial Update only the refreshed
// trees' rows are recomputed. Implementations must return exactly the
// values PredictBatch would return for the same rows.
type PoolPredictor interface {
	// BindPool registers the pool feature matrix; it is called before
	// every PredictPool and must be cheap when the matrix is already
	// bound.
	BindPool(poolX [][]float64)

	// PredictPool returns prediction means and uncertainties for the
	// pool rows with the given indices.
	PredictPool(rows []int) (mu, sigma []float64)
}

// CachedBatchPredictor is an optional Model capability: predict a fixed
// feature matrix (identity-keyed, e.g. a held-out test set evaluated at
// every checkpoint) from cached per-tree predictions, recomputing only
// what a partial Update invalidated. Implementations must return exactly
// the values PredictBatch would return for the same matrix.
// forest.Forest implements it; the experiment harness uses it for
// checkpoint evaluation during warm-update runs.
type CachedBatchPredictor interface {
	// PredictCached returns prediction means and uncertainties for every
	// row of X.
	PredictCached(X [][]float64) (mu, sigma []float64)
}

// FailureAction selects what the engine does with a configuration whose
// evaluation keeps failing after the retry budget is spent.
type FailureAction int

const (
	// FailAbort stops the run with an error (the default: a persistent
	// failure usually means the harness itself is broken).
	FailAbort FailureAction = iota

	// FailSkip drops the configuration from the pool and continues —
	// graceful degradation when individual configurations crash the
	// program under test.
	FailSkip
)

// FailurePolicy governs transient evaluation failures. The zero value
// never retries and aborts on the first failure, matching the engine's
// historical all-or-nothing behavior.
type FailurePolicy struct {
	// MaxRetries is the number of re-attempts after a failed
	// evaluation of the same configuration.
	MaxRetries int

	// Backoff is the delay before the first retry; it doubles after
	// every further failure (capped exponential backoff). Zero retries
	// immediately.
	Backoff time.Duration

	// MaxBackoff caps the exponential growth; <= 0 leaves it uncapped.
	MaxBackoff time.Duration

	// OnExhausted selects FailAbort (default) or FailSkip once
	// MaxRetries re-attempts have failed.
	OnExhausted FailureAction

	// Timeout is the per-attempt evaluation deadline, enforced through
	// the context handed to the evaluator. An attempt that outlives it
	// is a retryable failure (ErrEvalTimeout) — a hung program run
	// surfaces like a crashed one instead of blocking the engine
	// forever. Backoff sleeps are clamped to it too, so a retry is
	// never delayed longer than an attempt may run. <= 0 disables the
	// deadline.
	Timeout time.Duration
}

// ErrEvalTimeout marks an evaluation attempt cut off by
// FailurePolicy.Timeout. It deliberately does not wrap
// context.DeadlineExceeded: the run's own context is still live, and
// upstream layers must not mistake a timed-out measurement for a
// cancelled run.
var ErrEvalTimeout = errors.New("core: evaluation timed out")

// GuardAction selects what LabelGuard does with a flagged label.
type GuardAction int

const (
	// GuardRemeasure re-measures the configuration K times and labels
	// it with the median — the default, since most outliers are one-off
	// measurement garbage.
	GuardRemeasure GuardAction = iota

	// GuardQuarantine drops the configuration from the pool without
	// training on it, like a failure skip.
	GuardQuarantine
)

// LabelGuard screens freshly measured labels against the surrogate's
// current prediction interval. A label y for a candidate the model
// believes to be (μ, σ) is suspect when |y − μ| > Z·σ + Rel·|μ|; suspect
// labels are re-measured (median of K) or quarantined instead of being
// trained on, because one corrupted label steers every subsequent μ/σ
// ranking the strategy sees. The zero value disables the guard. The
// guard is inactive during the cold start (there is no model yet) and
// all guard activity — flags, re-measurements, quarantines, and the
// machine time they consume — is billed into CC and the run telemetry.
type LabelGuard struct {
	// Z is the flag threshold in prediction-uncertainty sigmas; <= 0
	// disables the guard entirely.
	Z float64

	// Rel adds slack proportional to |μ|, so a tight σ on a
	// well-explored region does not flag honest measurement noise.
	Rel float64

	// K is the number of re-measurements under GuardRemeasure; <= 0
	// defaults to 3.
	K int

	// Action selects GuardRemeasure (default) or GuardQuarantine.
	Action GuardAction
}

// enabled reports whether the guard screens labels at all.
func (g LabelGuard) enabled() bool { return g.Z > 0 }

// suspect applies the prediction-interval test. A NaN μ or σ (a
// degenerate model) never flags: the comparison is false, and the label
// passes through unguarded.
func (g LabelGuard) suspect(y, mu, sigma float64) bool {
	return math.Abs(y-mu) > g.Z*sigma+g.Rel*math.Abs(mu)
}

// Params are Algorithm 1's knobs. The paper's defaults (§III-D) are
// NInit = 10, NBatch = 1, NMax = 500.
type Params struct {
	// NInit is the cold-start training-set size.
	NInit int

	// NBatch is the number of configurations evaluated per iteration.
	NBatch int

	// NMax is the final training-set size; the loop stops once reached.
	NMax int

	// Forest configures the surrogate model refitted every iteration.
	// Ignored when Fitter is set.
	Forest forest.Config

	// Fitter overrides the surrogate; nil means random forest with the
	// Forest configuration.
	Fitter Fitter

	// WarmUpdate refits via Model.Update when the model supports it
	// (partial update) instead of training from scratch each iteration.
	WarmUpdate bool

	// RecordSelections retains the (μ, σ) of every strategy-selected
	// sample at selection time, for Fig. 9-style scatter analyses.
	RecordSelections bool

	// Failure governs transient evaluation failures; the zero value
	// aborts on the first failure.
	Failure FailurePolicy

	// Guard screens loop-phase labels against the model's prediction
	// interval (re-measure or quarantine outliers); the zero value
	// trains on every measurement unchecked.
	Guard LabelGuard

	// CheckpointEvery > 0 hands a Snapshot to Checkpoint after the cold
	// start and then after every CheckpointEvery-th completed
	// iteration. A cancellation that lands between iterations also
	// drains a final snapshot, so an interrupted process can resume
	// from the exact boundary it stopped at.
	CheckpointEvery int

	// Checkpoint receives snapshots (see internal/runstate for an
	// atomic file sink). It must serialize or copy what it keeps; the
	// engine reuses nothing, but sinks should not block for long. A
	// checkpoint error aborts the run.
	Checkpoint func(*Snapshot) error

	// ModelLoader reconstructs a snapshot's serialized model during
	// Resume; nil defaults to forest deserialization, which matches the
	// default Fitter. Custom Fitters whose models implement
	// json.Marshaler set this to make their runs resumable.
	ModelLoader func(data []byte) (Model, error)

	// StreamShard and StreamWorkers tune RunStream's sharded pool scan:
	// candidates per scoring shard and concurrent scoring workers
	// (<= 0 uses the pool package defaults of 1024 and GOMAXPROCS).
	// They are performance knobs only — selection is bit-identical
	// across every setting, which the pool-equivalence gate enforces —
	// and the in-memory Run ignores them.
	StreamShard   int
	StreamWorkers int

	// Quant routes RunStream's pool scans through the model's quantized
	// scoring kernel (forest.ScoreBatchQ: packed 8-byte float32 nodes,
	// branchless 8-lane traversal — roughly 3× the exact kernel's
	// per-candidate throughput). The model must support quantization
	// (the default forest does; RunStream fails on the first scan
	// otherwise). Scan scores then carry float32 leaf rounding, so
	// selections may diverge from the exact kernel's within that
	// tolerance — the quant-equivalence gate measures the divergence on
	// the paper's spaces. Selection-time beliefs recorded for the label
	// guard and Result.Selections still come from the exact model.
	// The in-memory Run ignores Quant.
	Quant bool

	// StreamCacheMB bounds the cross-scan score cache (pool.ScanCache)
	// active during warm-update streaming runs: per-candidate per-tree
	// score panels are kept across iterations so each scan re-walks only
	// the ensemble slots the preceding partial Update actually refreshed.
	// 0 means a 256 MiB default, < 0 disables the cache; candidates
	// beyond the budgeted prefix are re-scored from scratch each scan.
	// Results are bit-identical with the cache on, off, or at any
	// budget. Without WarmUpdate every iteration refits a fresh model,
	// no slot survives, and the cache stays off.
	StreamCacheMB int
}

// Normalized returns p with the engine's defaults applied. Callers that
// must mirror the engine's labeling schedule — e.g. the experiment
// harness computing checkpoint sizes — use it to stay in lockstep with
// Run instead of re-implementing the defaulting.
func (p Params) Normalized() Params {
	if p.NInit <= 0 {
		p.NInit = 10
	}
	if p.NBatch <= 0 {
		p.NBatch = 1
	}
	if p.NMax <= 0 {
		p.NMax = 500
	}
	return p
}

// Selection records one strategy decision for later analysis.
type Selection struct {
	Config    space.Config `json:"config"`
	Mu        float64      `json:"mu"`        // model belief at selection time
	Sigma     float64      `json:"sigma"`     // model belief at selection time
	Y         float64      `json:"y"`         // measured value
	Iteration int          `json:"iteration"` // 1-based iteration of the loop phase
}

// IterStats is the telemetry of one engine event: the cold start
// (Iteration 0) or one loop iteration. Durations are wall-clock and
// excluded from the bit-identity guarantees of Resume; the counters are
// deterministic.
type IterStats struct {
	// Iteration is 0 for the cold start, then counts loop iterations.
	Iteration int `json:"iteration"`

	// Samples is the labeled-set size after the event.
	Samples int `json:"samples"`

	// FitTime is the surrogate (re)fit wall time.
	FitTime time.Duration `json:"fit_ns"`

	// SelectTime covers candidate scoring plus strategy selection.
	SelectTime time.Duration `json:"select_ns"`

	// EvalTime is the labeling wall time, including retries and
	// backoff sleeps.
	EvalTime time.Duration `json:"eval_ns"`

	// EvalRetries counts failed evaluation attempts that were retried.
	EvalRetries int `json:"eval_retries,omitempty"`

	// EvalTimeouts counts attempts cut off by FailurePolicy.Timeout
	// (a subset of the retried/failed attempts).
	EvalTimeouts int `json:"eval_timeouts,omitempty"`

	// EvalSkips counts configurations dropped from the pool under
	// FailSkip.
	EvalSkips int `json:"eval_skips,omitempty"`

	// FailedCost is the labeling cost billed by failed attempts.
	FailedCost float64 `json:"failed_cost,omitempty"`

	// GuardFlagged counts labels the label guard found suspect;
	// GuardRemeasured of those were replaced by a median re-measurement
	// and GuardQuarantined were dropped from the pool untrained.
	GuardFlagged     int `json:"guard_flagged,omitempty"`
	GuardRemeasured  int `json:"guard_remeasured,omitempty"`
	GuardQuarantined int `json:"guard_quarantined,omitempty"`

	// GuardCost is the labeling cost billed by guard activity: the
	// machine time of quarantined measurements and of re-measurements
	// beyond the median that became the label.
	GuardCost float64 `json:"guard_cost,omitempty"`

	// PoolCached reports whether candidate scoring went through the
	// pool-prediction cache (PoolPredictor) instead of a rebuilt
	// candidate matrix.
	PoolCached bool `json:"pool_cached,omitempty"`
}

// RunStats aggregates IterStats over a run.
type RunStats struct {
	FitTime    time.Duration
	SelectTime time.Duration
	EvalTime   time.Duration

	EvalRetries  int
	EvalTimeouts int
	EvalSkips    int
	FailedCost   float64

	GuardFlagged     int
	GuardRemeasured  int
	GuardQuarantined int
	GuardCost        float64

	// CachedIterations counts iterations scored via the pool cache.
	CachedIterations int

	// Events counts telemetry events (cold start + iterations).
	Events int
}

// State is the live state of a run, passed to the per-iteration
// observer. Each observer call is one event of the engine's telemetry
// stream.
type State struct {
	// Model is the surrogate fitted to the current training set. Valid
	// only during the observer call; do not retain it across iterations.
	Model Model

	// TrainConfigs / TrainY are the labeled samples so far, in labeling
	// order (cold-start samples first).
	TrainConfigs []space.Config
	TrainY       []float64

	// Iteration counts completed loop iterations; it is 0 for the
	// observer call right after the cold start.
	Iteration int

	// Stats is the telemetry of the event that just completed.
	Stats IterStats

	// LabelCost is the cumulative labeling cost so far (the paper's
	// CC, Eq. 3) including the cost billed by failed attempts and by
	// label-guard activity.
	LabelCost float64
}

// Observer is invoked after every model (re)fit, i.e. once after the cold
// start and once per loop iteration. Returning an error aborts the run.
type Observer func(s *State) error

// ErrPoolExhausted reports that failure skips emptied the pool before
// NMax labels were collected; the run result is still returned.
var ErrPoolExhausted = errors.New("core: pool exhausted before NMax labels")

// Result is the outcome of a run. On errors that interrupt a run midway
// (cancellation, evaluation failure, observer abort) the partial Result
// is returned alongside the error.
type Result struct {
	TrainConfigs []space.Config
	TrainY       []float64
	Model        Model
	Selections   []Selection // nil unless Params.RecordSelections
	Iterations   int

	// Stats is the per-event telemetry stream (cold start first).
	Stats []IterStats

	// FailedCost is the total labeling cost billed by failed
	// evaluation attempts.
	FailedCost float64

	// GuardCost is the total labeling cost billed by label-guard
	// activity (quarantined measurements and non-median
	// re-measurements).
	GuardCost float64

	// RNGState is the loop generator's state when the run returned;
	// with it, two runs can be compared for identical stream position.
	RNGState rng.State
}

// LabelCost returns the run's cumulative labeling cost (the paper's CC,
// Eq. 3) including the cost billed by failed evaluation attempts and by
// label-guard activity.
func (r *Result) LabelCost() float64 {
	var sum float64
	for _, y := range r.TrainY {
		sum += y
	}
	return sum + r.FailedCost + r.GuardCost
}

// Telemetry aggregates the per-event stats of the run.
func (r *Result) Telemetry() RunStats {
	var a RunStats
	for _, s := range r.Stats {
		a.FitTime += s.FitTime
		a.SelectTime += s.SelectTime
		a.EvalTime += s.EvalTime
		a.EvalRetries += s.EvalRetries
		a.EvalTimeouts += s.EvalTimeouts
		a.EvalSkips += s.EvalSkips
		a.FailedCost += s.FailedCost
		a.GuardFlagged += s.GuardFlagged
		a.GuardRemeasured += s.GuardRemeasured
		a.GuardQuarantined += s.GuardQuarantined
		a.GuardCost += s.GuardCost
		if s.PoolCached {
			a.CachedIterations++
		}
		a.Events++
	}
	return a
}

// Run executes Algorithm 1.
//
// ctx cancels the run: the engine drains cleanly at the next boundary
// (between measurements or iterations), writes a final snapshot when a
// Checkpoint sink is configured, and returns the partial Result with an
// error wrapping ctx.Err().
//
// sp describes the parameter space; pool is the unlabeled data pool
// X_pool (the surrogate of the whole space); ev labels configurations;
// strat picks batches; r provides all randomness; obs may be nil.
//
// The pool slice is not modified; Run tracks membership internally.
//
// Run is a thin driver over the ask-tell Session (session.go): it asks
// for batches, labels them in-process under the failure policy, and
// tells the labels back — bit-identical to the historical monolithic
// loop, which the session-equivalence goldens pin.
func Run(ctx context.Context, sp *space.Space, pool []space.Config, ev Evaluator, strat Strategy, params Params, r *rng.RNG, obs Observer) (*Result, error) {
	if sp == nil {
		return nil, fmt.Errorf("core: nil space")
	}
	if ev == nil || strat == nil || r == nil {
		return nil, fmt.Errorf("core: nil evaluator, strategy or generator")
	}
	s, err := NewSession(SessionConfig{
		Space: sp, Pool: pool, Strategy: strat, Params: params,
		RNG: r, Observer: obs, Evaluator: ev,
	})
	if err != nil {
		return nil, err
	}
	return driveSession(ctx, s, ev)
}

// median returns the median of xs (mean of the central pair for even
// lengths). xs is not modified.
func median(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// compact removes the taken pool indices from remaining, preserving order.
func compact(remaining []int, taken map[int]bool) []int {
	out := remaining[:0]
	for _, idx := range remaining {
		if !taken[idx] {
			out = append(out, idx)
		}
	}
	return out
}
