// Package core implements the paper's primary contribution: the active
// learning loop of Algorithm 1 and the sampling strategies it compares —
// most importantly Performance Weighted Uncertainty (PWU).
//
// The loop (Fig. 1 of the paper):
//
//  1. Sample n_init configurations uniformly from the unlabeled pool and
//     evaluate them (cold-start phase).
//  2. Fit a random forest to the labeled set.
//  3. Ask the sampling strategy for the next batch, using the forest's
//     per-configuration prediction mean μ and uncertainty σ over the
//     remaining pool.
//  4. Evaluate the batch, append it to the training set, refit, repeat
//     until n_max samples are labeled.
//
// Everything is deterministic given the caller-provided generator.
package core

import (
	"fmt"

	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
)

// Evaluator labels a configuration with its measured performance
// (execution time in seconds; smaller is better). Implementations live in
// the benchmark substrates (internal/spapt, internal/kripke,
// internal/hypre).
type Evaluator interface {
	Evaluate(c space.Config) float64
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(c space.Config) float64

// Evaluate calls f(c).
func (f EvaluatorFunc) Evaluate(c space.Config) float64 { return f(c) }

// Model is the surrogate interface Algorithm 1 requires: point
// predictions plus per-prediction uncertainty. forest.Forest is the
// default implementation; internal/gp provides the Gaussian-process
// comparator discussed in the paper's §II-B.
type Model interface {
	// Predict returns the point prediction for one feature vector.
	Predict(x []float64) float64

	// PredictBatch returns prediction means and uncertainties for a
	// batch of feature vectors.
	PredictBatch(X [][]float64) (mu, sigma []float64)
}

// Fitter builds a surrogate from the current labeled set. Params.Fitter
// defaults to random-forest fitting with Params.Forest.
type Fitter func(X [][]float64, y []float64, features []space.Feature, r *rng.RNG) (Model, error)

// Updatable is an optional Model capability: a warm partial refit on the
// grown training set, instead of training from scratch (the "updated
// partially" path of the paper's Fig. 1 caption).
type Updatable interface {
	// Update refits the model in place given the full current training
	// set (old samples first, new samples appended at the end).
	Update(X [][]float64, y []float64, r *rng.RNG) error
}

// PoolPredictor is an optional Model capability: bind the run's fixed
// pool matrix once, then score arbitrary subsets of it by pool-row
// index. Models that implement it (forest.Forest) let Run skip
// rebuilding the candidate matrix every iteration and reuse cached
// per-tree predictions — after a partial Update only the refreshed
// trees' rows are recomputed. Implementations must return exactly the
// values PredictBatch would return for the same rows.
type PoolPredictor interface {
	// BindPool registers the pool feature matrix; it is called before
	// every PredictPool and must be cheap when the matrix is already
	// bound.
	BindPool(poolX [][]float64)

	// PredictPool returns prediction means and uncertainties for the
	// pool rows with the given indices.
	PredictPool(rows []int) (mu, sigma []float64)
}

// Params are Algorithm 1's knobs. The paper's defaults (§III-D) are
// NInit = 10, NBatch = 1, NMax = 500.
type Params struct {
	// NInit is the cold-start training-set size.
	NInit int

	// NBatch is the number of configurations evaluated per iteration.
	NBatch int

	// NMax is the final training-set size; the loop stops once reached.
	NMax int

	// Forest configures the surrogate model refitted every iteration.
	// Ignored when Fitter is set.
	Forest forest.Config

	// Fitter overrides the surrogate; nil means random forest with the
	// Forest configuration.
	Fitter Fitter

	// WarmUpdate refits via Model.Update when the model supports it
	// (partial update) instead of training from scratch each iteration.
	WarmUpdate bool

	// RecordSelections retains the (μ, σ) of every strategy-selected
	// sample at selection time, for Fig. 9-style scatter analyses.
	RecordSelections bool
}

func (p Params) withDefaults() Params {
	if p.NInit <= 0 {
		p.NInit = 10
	}
	if p.NBatch <= 0 {
		p.NBatch = 1
	}
	if p.NMax <= 0 {
		p.NMax = 500
	}
	return p
}

// Selection records one strategy decision for later analysis.
type Selection struct {
	Config    space.Config
	Mu, Sigma float64 // model belief at selection time
	Y         float64 // measured value
	Iteration int     // 1-based iteration of the loop phase
}

// State is the live state of a run, passed to the per-iteration observer.
type State struct {
	// Model is the surrogate fitted to the current training set. Valid
	// only during the observer call; do not retain it across iterations.
	Model Model

	// TrainConfigs / TrainY are the labeled samples so far, in labeling
	// order (cold-start samples first).
	TrainConfigs []space.Config
	TrainY       []float64

	// Iteration counts completed loop iterations; it is 0 for the
	// observer call right after the cold start.
	Iteration int
}

// Observer is invoked after every model (re)fit, i.e. once after the cold
// start and once per loop iteration. Returning an error aborts the run.
type Observer func(s *State) error

// Result is the outcome of a completed run.
type Result struct {
	TrainConfigs []space.Config
	TrainY       []float64
	Model        Model
	Selections   []Selection // nil unless Params.RecordSelections
	Iterations   int
}

// Run executes Algorithm 1.
//
// sp describes the parameter space; pool is the unlabeled data pool
// X_pool (the surrogate of the whole space); ev labels configurations;
// strat picks batches; r provides all randomness; obs may be nil.
//
// The pool slice is not modified; Run tracks membership internally.
func Run(sp *space.Space, pool []space.Config, ev Evaluator, strat Strategy, params Params, r *rng.RNG, obs Observer) (*Result, error) {
	p := params.withDefaults()
	if sp == nil {
		return nil, fmt.Errorf("core: nil space")
	}
	if ev == nil || strat == nil || r == nil {
		return nil, fmt.Errorf("core: nil evaluator, strategy or generator")
	}
	if len(pool) < p.NInit {
		return nil, fmt.Errorf("core: pool size %d smaller than NInit %d", len(pool), p.NInit)
	}
	if p.NMax > len(pool) {
		return nil, fmt.Errorf("core: NMax %d exceeds pool size %d", p.NMax, len(pool))
	}
	if p.NInit > p.NMax {
		return nil, fmt.Errorf("core: NInit %d exceeds NMax %d", p.NInit, p.NMax)
	}

	// Encode the pool once; the forest consumes feature vectors.
	poolX := sp.EncodeAll(pool)
	features := sp.Features()

	// remaining holds pool indices still unlabeled, in stable order.
	remaining := make([]int, len(pool))
	for i := range remaining {
		remaining[i] = i
	}

	res := &Result{}

	// Cold-start phase: uniform sample of NInit pool entries.
	initSel := r.Sample(len(remaining), p.NInit)
	taken := make(map[int]bool, p.NInit)
	for _, k := range initSel {
		idx := remaining[k]
		taken[idx] = true
		cfg := pool[idx]
		y := ev.Evaluate(cfg)
		res.TrainConfigs = append(res.TrainConfigs, cfg)
		res.TrainY = append(res.TrainY, y)
	}
	remaining = compact(remaining, taken)

	trainX := make([][]float64, 0, p.NMax)
	for _, cfg := range res.TrainConfigs {
		trainX = append(trainX, sp.Encode(cfg))
	}

	fitter := p.Fitter
	if fitter == nil {
		fc := p.Forest
		fitter = func(X [][]float64, y []float64, fs []space.Feature, fr *rng.RNG) (Model, error) {
			return forest.Fit(X, y, fs, fc, fr)
		}
	}

	model, err := fitter(trainX, res.TrainY, features, r.Split())
	if err != nil {
		return nil, fmt.Errorf("core: cold-start fit: %w", err)
	}
	if obs != nil {
		if err := obs(&State{Model: model, TrainConfigs: res.TrainConfigs, TrainY: res.TrainY, Iteration: 0}); err != nil {
			return nil, err
		}
	}

	// Iteration phase.
	iter := 0
	for len(res.TrainY) < p.NMax {
		iter++
		batch := p.NBatch
		if rem := p.NMax - len(res.TrainY); batch > rem {
			batch = rem
		}

		cand := &Candidates{Rand: r}
		if pp, ok := model.(PoolPredictor); ok {
			// Cached scoring path: no candidate-matrix rebuild, and
			// after a warm Update only refreshed trees re-predict.
			pp.BindPool(poolX)
			cand.Pool, cand.Rows = poolX, remaining
			cand.Mu, cand.Sigma = pp.PredictPool(remaining)
		} else {
			candX := make([][]float64, len(remaining))
			for i, idx := range remaining {
				candX[i] = poolX[idx]
			}
			cand.X = candX
			cand.Mu, cand.Sigma = model.PredictBatch(candX)
		}
		mu, sigma := cand.Mu, cand.Sigma
		bestY := res.TrainY[0]
		for _, y := range res.TrainY[1:] {
			if y < bestY {
				bestY = y
			}
		}
		cand.BestY = bestY
		sel := strat.Select(cand, batch)
		if len(sel) == 0 {
			return nil, fmt.Errorf("core: strategy %q selected nothing at iteration %d", strat.Name(), iter)
		}

		taken = make(map[int]bool, len(sel))
		for _, k := range sel {
			if k < 0 || k >= len(remaining) {
				return nil, fmt.Errorf("core: strategy %q returned out-of-range index %d", strat.Name(), k)
			}
			idx := remaining[k]
			if taken[idx] {
				return nil, fmt.Errorf("core: strategy %q returned duplicate index %d", strat.Name(), k)
			}
			taken[idx] = true
			cfg := pool[idx]
			y := ev.Evaluate(cfg)
			res.TrainConfigs = append(res.TrainConfigs, cfg)
			res.TrainY = append(res.TrainY, y)
			trainX = append(trainX, poolX[idx])
			if p.RecordSelections {
				res.Selections = append(res.Selections, Selection{
					Config: cfg, Mu: mu[k], Sigma: sigma[k], Y: y, Iteration: iter,
				})
			}
		}
		remaining = compact(remaining, taken)

		if u, ok := model.(Updatable); p.WarmUpdate && ok {
			err = u.Update(trainX, res.TrainY, r.Split())
		} else {
			model, err = fitter(trainX, res.TrainY, features, r.Split())
		}
		if err != nil {
			return nil, fmt.Errorf("core: refit at iteration %d: %w", iter, err)
		}
		if obs != nil {
			if err := obs(&State{Model: model, TrainConfigs: res.TrainConfigs, TrainY: res.TrainY, Iteration: iter}); err != nil {
				return nil, err
			}
		}
	}

	res.Model = model
	res.Iterations = iter
	return res, nil
}

// compact removes the taken pool indices from remaining, preserving order.
func compact(remaining []int, taken map[int]bool) []int {
	out := remaining[:0]
	for _, idx := range remaining {
		if !taken[idx] {
			out = append(out, idx)
		}
	}
	return out
}
