package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/pool"
	"repro/internal/rng"
)

// Candidates is what a Strategy sees each iteration: the remaining pool's
// feature vectors with the current model's beliefs about them. Indices
// into these slices are "candidate indices"; Select returns them.
//
// Feature vectors come in one of two forms: a materialised matrix X, or
// an indexed view (Pool, Rows) where candidate i is Pool[Rows[i]] — the
// form core.Run uses on the cached scoring path so the candidate matrix
// is never rebuilt. Strategies access vectors through XAt, which handles
// both.
type Candidates struct {
	X         [][]float64
	Mu, Sigma []float64

	// Pool and Rows are the indexed alternative to X: the full pool
	// matrix and the pool-row index of each candidate. Ignored when X
	// is set.
	Pool [][]float64
	Rows []int

	// BestY is the best (smallest) observed training label so far, the
	// incumbent that acquisition functions like EI improve upon.
	BestY float64

	Rand *rng.RNG
}

// Len returns the number of candidates.
func (c *Candidates) Len() int { return len(c.Mu) }

// XAt returns candidate i's feature vector.
func (c *Candidates) XAt(i int) []float64 {
	if c.X != nil {
		return c.X[i]
	}
	return c.Pool[c.Rows[i]]
}

// Strategy picks the next batch of candidates to evaluate. The returned
// slice must contain nBatch distinct valid candidate indices (or fewer
// only when fewer candidates remain).
type Strategy interface {
	// Name identifies the strategy in tables and figures, e.g. "PWU".
	Name() string

	// Select returns the candidate indices to evaluate next.
	Select(c *Candidates, nBatch int) []int
}

// clampBatch bounds nBatch by the candidate count. A negative request
// clamps to 0 (an empty selection) instead of reaching the selection
// helpers, where a negative slice bound would panic.
func clampBatch(c *Candidates, nBatch int) int {
	if nBatch > c.Len() {
		nBatch = c.Len()
	}
	if nBatch < 0 {
		nBatch = 0
	}
	return nBatch
}

// clampK bounds a selection size into [0, n]. The sort-based helpers
// historically sliced idx[:k] unchecked, so k > len(scores) or k < 0
// panicked; the streaming reducers naturally return min(k, n) entries,
// and the helpers must agree with them on every input.
func clampK(k, n int) int {
	if k > n {
		k = n
	}
	if k < 0 {
		k = 0
	}
	return k
}

// sinkNaNs returns scores with every NaN replaced by sink (−Inf for
// top-k selection, +Inf for bottom-k). A NaN fed to sort's comparator
// makes it non-transitive and the resulting order undefined — and NaN
// scores do happen: a degenerate model can produce σ = NaN, and PWU
// divides by a clamped μ. The input is never mutated; a copy is made
// only when a NaN is actually present.
func sinkNaNs(scores []float64, sink float64) []float64 {
	for i, v := range scores {
		if math.IsNaN(v) {
			cp := make([]float64, len(scores))
			copy(cp, scores)
			for j := i; j < len(cp); j++ {
				if math.IsNaN(cp[j]) {
					cp[j] = sink
				}
			}
			return cp
		}
	}
	return scores
}

// topKByScore returns the indices of the k largest scores (ties broken by
// lower index, deterministically; NaN scores rank last). k is clamped
// into [0, len(scores)].
func topKByScore(scores []float64, k int) []int {
	k = clampK(k, len(scores))
	scores = sinkNaNs(scores, math.Inf(-1))
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	return idx[:k]
}

// xKey builds a hashable key for a feature vector, used to recognise
// pool duplicates during batch selection. It delegates to the streaming
// reducers' key so the two selection paths can never disagree on what
// counts as a duplicate.
func xKey(x []float64) string {
	return pool.VectorKey(x)
}

// topKDistinctByScore returns the k highest-scoring candidate indices
// while avoiding duplicate feature vectors within the batch. On the
// small application spaces (kripke has 2304 points, hypre 3150) the
// paper's sampled pool necessarily contains duplicates; with batch sizes
// above 1 a purely greedy top-k would spend the whole batch on copies of
// one configuration whose model belief cannot change until the refit.
// Duplicates are only used to fill the batch when distinct candidates
// run out. With nBatch = 1 (the paper's setting) this is identical to
// topKByScore. NaN scores rank last. k is clamped into [0, len(scores)].
func topKDistinctByScore(scores []float64, c *Candidates, k int) []int {
	k = clampK(k, len(scores))
	scores = sinkNaNs(scores, math.Inf(-1))
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] > scores[idx[b]] })
	if k <= 1 {
		return idx[:k]
	}
	out := make([]int, 0, k)
	seen := make(map[string]bool, k)
	var dups []int
	for _, i := range idx {
		if len(out) == k {
			return out
		}
		key := xKey(c.XAt(i))
		if seen[key] {
			dups = append(dups, i)
			continue
		}
		seen[key] = true
		out = append(out, i)
	}
	for _, i := range dups {
		if len(out) == k {
			break
		}
		out = append(out, i)
	}
	return out
}

// bottomKByScore returns the indices of the k smallest scores; NaN
// scores rank last. k is clamped into [0, len(scores)].
func bottomKByScore(scores []float64, k int) []int {
	k = clampK(k, len(scores))
	scores = sinkNaNs(scores, math.Inf(1))
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return scores[idx[a]] < scores[idx[b]] })
	return idx[:k]
}

// PWU is the paper's Performance Weighted Uncertainty strategy (Eq. 1):
//
//	s_i = σ_i / μ_i^(1-α)
//
// where μ is predicted execution time (smaller = higher performance) and
// σ is prediction uncertainty. α ∈ (0, 1] is the fraction of the space
// regarded as high-performance; as α→1 the score degenerates to pure
// uncertainty sampling, and as α→0 to the coefficient of variation σ/μ.
type PWU struct {
	// Alpha is the high-performance proportion; the paper uses 0.01,
	// 0.05, 0.10.
	Alpha float64
}

// Name implements Strategy.
func (p PWU) Name() string { return "PWU" }

// Score computes Eq. 1 for a single (μ, σ) pair. μ is clamped to a tiny
// positive value: execution times are positive, but a degenerate model
// could predict 0.
func (p PWU) Score(mu, sigma float64) float64 {
	if mu < 1e-12 {
		mu = 1e-12
	}
	return sigma / math.Pow(mu, 1-p.Alpha)
}

// Select implements Strategy: the nBatch candidates with the highest PWU
// score.
func (p PWU) Select(c *Candidates, nBatch int) []int {
	nBatch = clampBatch(c, nBatch)
	scores := make([]float64, c.Len())
	for i := range scores {
		scores[i] = p.Score(c.Mu[i], c.Sigma[i])
	}
	return topKDistinctByScore(scores, c, nBatch)
}

// PBUS is the Performance Biased Uncertainty Sampling baseline of
// Balaprakash et al. 2013: first restrict attention to the top PerfFrac
// fraction of candidates by predicted performance, then take the most
// uncertain ones from that subset — performance *before* uncertainty,
// the two-stage ordering whose limitation the paper demonstrates.
type PBUS struct {
	// PerfFrac is the fraction of candidates kept by the performance
	// filter; <= 0 defaults to 0.10.
	PerfFrac float64
}

// Name implements Strategy.
func (p PBUS) Name() string { return "PBUS" }

// Select implements Strategy.
func (p PBUS) Select(c *Candidates, nBatch int) []int {
	nBatch = clampBatch(c, nBatch)
	frac := p.PerfFrac
	if frac <= 0 {
		frac = 0.10
	}
	k := int(math.Ceil(float64(c.Len()) * frac))
	if k < nBatch {
		k = nBatch
	}
	if k > c.Len() {
		k = c.Len()
	}
	// Stage 1: top-k by performance (smallest predicted time).
	cand := bottomKByScore(c.Mu, k)
	// Stage 2: most uncertain within the candidate set, de-duplicated
	// across the batch.
	scores := make([]float64, c.Len())
	for i := range scores {
		scores[i] = math.Inf(-1)
	}
	for _, i := range cand {
		scores[i] = c.Sigma[i]
	}
	return topKDistinctByScore(scores, c, nBatch)
}

// BRS is Biased Random Sampling: uniform among the top TopFrac of
// candidates by predicted performance. It exploits the model's
// performance belief but ignores uncertainty entirely.
type BRS struct {
	// TopFrac is the performance-filter fraction; <= 0 defaults to 0.10.
	TopFrac float64
}

// Name implements Strategy.
func (b BRS) Name() string { return "BRS" }

// Select implements Strategy.
func (b BRS) Select(c *Candidates, nBatch int) []int {
	nBatch = clampBatch(c, nBatch)
	frac := b.TopFrac
	if frac <= 0 {
		frac = 0.10
	}
	k := int(math.Ceil(float64(c.Len()) * frac))
	if k < nBatch {
		k = nBatch
	}
	if k > c.Len() {
		k = c.Len()
	}
	cand := bottomKByScore(c.Mu, k)
	pick := c.Rand.Sample(len(cand), nBatch)
	out := make([]int, nBatch)
	for i, j := range pick {
		out[i] = cand[j]
	}
	return out
}

// BestPerf greedily evaluates the candidates with the best (smallest)
// predicted execution time — pure exploitation.
type BestPerf struct{}

// Name implements Strategy.
func (BestPerf) Name() string { return "BestPerf" }

// Select implements Strategy.
func (BestPerf) Select(c *Candidates, nBatch int) []int {
	nBatch = clampBatch(c, nBatch)
	scores := make([]float64, c.Len())
	for i := range scores {
		scores[i] = -c.Mu[i]
	}
	return topKDistinctByScore(scores, c, nBatch)
}

// MaxU evaluates the candidates with the largest uncertainty — the
// classic active-learning uncertainty sampling, pure exploration.
type MaxU struct{}

// Name implements Strategy.
func (MaxU) Name() string { return "MaxU" }

// Select implements Strategy.
func (MaxU) Select(c *Candidates, nBatch int) []int {
	return topKDistinctByScore(c.Sigma, c, clampBatch(c, nBatch))
}

// Random selects uniformly from the remaining pool — the traditional
// random-uniform-sampling baseline of conventional empirical modeling.
type Random struct{}

// Name implements Strategy.
func (Random) Name() string { return "Random" }

// Select implements Strategy.
func (Random) Select(c *Candidates, nBatch int) []int {
	return c.Rand.Sample(c.Len(), clampBatch(c, nBatch))
}

// EI is the Expected Improvement acquisition of sequential model-based
// optimisation (Hutter et al.'s SMAC, discussed in the paper's related
// work): for a minimisation problem with incumbent best observed time
// y*, EI(x) = (y* − μ)Φ(z) + σφ(z) with z = (y* − μ)/σ. It targets
// *optimisation* of the objective rather than *modeling* of the
// high-performance subspace, which is exactly the contrast the paper
// draws with its PWU strategy; it is included as an extension baseline.
type EI struct {
	// Xi is the exploration margin subtracted from the incumbent
	// (0 = plain EI).
	Xi float64
}

// Name implements Strategy.
func (EI) Name() string { return "EI" }

// Score computes the expected improvement of a candidate.
func (e EI) Score(mu, sigma, bestY float64) float64 {
	improve := bestY - e.Xi - mu
	if sigma < 1e-12 {
		if improve > 0 {
			return improve
		}
		return 0
	}
	z := improve / sigma
	return improve*normCDF(z) + sigma*normPDF(z)
}

// Select implements Strategy.
func (e EI) Select(c *Candidates, nBatch int) []int {
	nBatch = clampBatch(c, nBatch)
	scores := make([]float64, c.Len())
	for i := range scores {
		scores[i] = e.Score(c.Mu[i], c.Sigma[i], c.BestY)
	}
	return topKDistinctByScore(scores, c, nBatch)
}

// normCDF is the standard normal CDF.
func normCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// normPDF is the standard normal density.
func normPDF(z float64) float64 {
	return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi)
}

// CV scores candidates by the coefficient of variation σ/μ — PWU's α→0
// limit, kept as a named strategy for the score ablation.
type CV struct{}

// Name implements Strategy.
func (CV) Name() string { return "CV" }

// Select implements Strategy.
func (CV) Select(c *Candidates, nBatch int) []int {
	return PWU{Alpha: 0}.Select(c, nBatch)
}

// ByName returns the strategy registered under name, configured with the
// paper's defaults; alpha parameterizes PWU. Recognised names: PWU, PBUS,
// BRS, BestPerf, MaxU, Random, CV, EI.
func ByName(name string, alpha float64) (Strategy, error) {
	switch name {
	case "PWU":
		return PWU{Alpha: alpha}, nil
	case "PBUS":
		return PBUS{}, nil
	case "BRS":
		return BRS{}, nil
	case "BestPerf":
		return BestPerf{}, nil
	case "MaxU":
		return MaxU{}, nil
	case "Random":
		return Random{}, nil
	case "CV":
		return CV{}, nil
	case "EI":
		return EI{}, nil
	default:
		return nil, fmt.Errorf("core: unknown strategy %q", name)
	}
}

// StrategyNames lists the registered strategy names in the order the
// paper's figures present them.
func StrategyNames() []string {
	return []string{"PWU", "PBUS", "BRS", "BestPerf", "MaxU", "Random"}
}
