package core

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/space"
)

// TestStreamCacheEquivalence: the cross-scan score cache is a pure
// performance device — a warm-update streamed run with the cache on (the
// default), at a starvation budget, and fully off must be bit-identical,
// on both the exact and the quantized kernel.
func TestStreamCacheEquivalence(t *testing.T) {
	sp, ev := quadSpace(t)
	src := pool.NewUniform(sp, 51, 150)
	run := func(cacheMB int, quant bool) *Result {
		t.Helper()
		p := streamParams()
		p.WarmUpdate = true
		p.Quant = quant
		p.StreamCacheMB = cacheMB
		p.StreamShard = 32
		res, err := RunStream(context.Background(), src, ev, PWU{Alpha: 0.05}, p, rng.New(9), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, quant := range []bool{false, true} {
		want := run(-1, quant) // cache disabled
		assertSameResult(t, fmt.Sprintf("quant=%v default cache", quant), run(0, quant), want)
		// A starvation budget covers only a prefix of the pool: the rest
		// takes the fresh-score path every scan. Still bit-identical.
		assertSameResult(t, fmt.Sprintf("quant=%v tiny cache", quant), run(1, quant), want)
	}
}

// TestStreamQuantDeterministic: quantized streamed runs are deterministic
// and invariant across shard sizes and worker counts, like exact ones —
// only the kernel changed, not the selection contract.
func TestStreamQuantDeterministic(t *testing.T) {
	sp, ev := quadSpace(t)
	src := pool.NewUniform(sp, 52, 130)
	run := func(shard, workers int) *Result {
		t.Helper()
		p := streamParams()
		p.Quant = true
		p.StreamShard, p.StreamWorkers = shard, workers
		res, err := RunStream(context.Background(), src, ev, PWU{Alpha: 0.05}, p, rng.New(11), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(0, 1)
	if len(want.TrainY) != streamParams().NMax {
		t.Fatalf("quant run collected %d labels, want %d", len(want.TrainY), streamParams().NMax)
	}
	assertSameResult(t, "shard=17 workers=2", run(17, 2), want)
	assertSameResult(t, "shard=130 workers=4", run(130, 4), want)
}

// TestStreamQuantNeedsQuantizableModel: Params.Quant with a surrogate
// that has no quantized view must fail with a clear error, not panic or
// silently fall back to the exact kernel.
func TestStreamQuantNeedsQuantizableModel(t *testing.T) {
	sp, ev := quadSpace(t)
	src := pool.NewUniform(sp, 53, 80)
	p := streamParams()
	p.Quant = true
	p.Fitter = func(X [][]float64, y []float64, fs []space.Feature, r *rng.RNG) (Model, error) {
		return meanModel{}, nil
	}
	_, err := RunStream(context.Background(), src, ev, PWU{Alpha: 0.05}, p, rng.New(13), nil)
	if err == nil || !strings.Contains(err.Error(), "quantized") {
		t.Fatalf("expected a quantized-scorer error, got %v", err)
	}
}

// meanModel is a minimal Model with no quantized view.
type meanModel struct{}

func (meanModel) Predict(x []float64) float64 { return 0 }
func (meanModel) PredictBatch(X [][]float64) (mu, sigma []float64) {
	return make([]float64, len(X)), make([]float64, len(X))
}
func (meanModel) PredictWithUncertainty(x []float64) (mu, sigma float64) { return 0, 0 }
