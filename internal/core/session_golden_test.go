package core

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/forest"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/space"
)

// The session-equivalence gate: the run engine's observable behavior —
// labels, selections, telemetry counters, RNG stream position, and the
// snapshot wire format — is pinned to goldens captured from the
// pre-refactor monolithic Run/RunStream loops. The ask-tell Session
// rebuild must reproduce them bit for bit for all 8 strategies, in both
// the materialized and the streamed mode, and from a resume at every
// checkpoint prefix.
//
// Regenerate with SESSION_GOLDEN_UPDATE=1 (only legitimate when the
// engine's observable contract deliberately changes).

const sessionGoldenPath = "testdata/session_golden.json"

// goldenSpace is the fixture space: two numeric parameters and one
// categorical, so both feature kinds flow through selection and fitting.
func goldenSpace() *space.Space {
	return space.MustNew(
		space.NumRange("a", 0, 9, 1),
		space.NumRange("b", 0, 7, 1),
		space.Cat("c", "x", "y", "z"),
	)
}

// goldenEvaluator is a pure deterministic objective (no noise state, so
// resume needs no evaluator-state restore).
func goldenEvaluator(sp *space.Space) Evaluator {
	effect := []float64{0.0, 1.5, -0.5}
	return AdaptEvaluator(LegacyEvaluatorFunc(func(c space.Config) float64 {
		a := sp.ValueByName(c, "a")
		b := sp.ValueByName(c, "b")
		k := sp.LevelByName(c, "c")
		return (a-5)*(a-5) + (b-3)*(b-3) + 0.1*a*b + effect[k] + 1
	}))
}

func goldenParams(checkpoint func(*Snapshot) error) Params {
	return Params{
		NInit: 6, NBatch: 3, NMax: 24,
		Forest:           forest.Config{NumTrees: 12, Workers: 2},
		RecordSelections: true,
		CheckpointEvery:  1,
		Checkpoint:       checkpoint,
	}
}

const (
	goldenPoolSeed = 7701
	goldenRunSeed  = 7702
	goldenPoolSize = 200
)

// goldenStrategies returns all eight registered strategies.
func goldenStrategies(t testing.TB) []Strategy {
	t.Helper()
	names := []string{"PWU", "PBUS", "BRS", "BestPerf", "MaxU", "Random", "CV", "EI"}
	out := make([]Strategy, len(names))
	for i, n := range names {
		s, err := ByName(n, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

// goldenCase is one (strategy, mode) cell of the golden table.
type goldenCase struct {
	Strategy     string          `json:"strategy"`
	Streamed     bool            `json:"streamed"`
	TrainConfigs []space.Config  `json:"train_configs"`
	TrainY       []float64       `json:"train_y"`
	Selections   []Selection     `json:"selections"`
	Iterations   int             `json:"iterations"`
	RNG          rng.State       `json:"rng"`
	Stats        []IterStats     `json:"stats"`
	FailedCost   float64         `json:"failed_cost"`
	GuardCost    float64         `json:"guard_cost"`
	SnapshotAt   int             `json:"snapshot_at"`
	Snapshot     json.RawMessage `json:"snapshot"`
}

// zeroDurations strips the wall-clock fields, which are explicitly
// excluded from the engine's bit-identity guarantees.
func zeroDurations(stats []IterStats) []IterStats {
	out := append([]IterStats(nil), stats...)
	for i := range out {
		out[i].FitTime, out[i].SelectTime, out[i].EvalTime = 0, 0, 0
	}
	return out
}

// canonicalSnapshot renders a snapshot deterministically: durations
// zeroed and the serialized model replaced by its SHA-256, so the golden
// stays compact while still pinning the model bytes.
func canonicalSnapshot(t testing.TB, snap *Snapshot) json.RawMessage {
	t.Helper()
	cp := *snap
	cp.Stats = zeroDurations(cp.Stats)
	sum := sha256.Sum256(cp.Model)
	hashed, err := json.Marshal("sha256:" + hex.EncodeToString(sum[:]))
	if err != nil {
		t.Fatal(err)
	}
	cp.Model = hashed
	data, err := json.Marshal(&cp)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// goldenRun executes one cell and returns the case plus every boundary
// snapshot (CheckpointEvery = 1).
func goldenRun(t testing.TB, strat Strategy, streamed bool) (goldenCase, []*Snapshot) {
	t.Helper()
	sp := goldenSpace()
	src := pool.NewUniform(sp, goldenPoolSeed, goldenPoolSize)
	ev := goldenEvaluator(sp)
	var snaps []*Snapshot
	params := goldenParams(func(s *Snapshot) error { snaps = append(snaps, s); return nil })
	var (
		res *Result
		err error
	)
	if streamed {
		res, err = RunStream(context.Background(), src, ev, strat, params, rng.New(goldenRunSeed), nil)
	} else {
		res, err = Run(context.Background(), sp, materialize(t, src), ev, strat, params, rng.New(goldenRunSeed), nil)
	}
	if err != nil {
		t.Fatalf("%s streamed=%v: %v", strat.Name(), streamed, err)
	}
	mid := snaps[len(snaps)/2]
	gc := goldenCase{
		Strategy:     strat.Name(),
		Streamed:     streamed,
		TrainConfigs: res.TrainConfigs,
		TrainY:       res.TrainY,
		Selections:   res.Selections,
		Iterations:   res.Iterations,
		RNG:          res.RNGState,
		Stats:        zeroDurations(res.Stats),
		FailedCost:   res.FailedCost,
		GuardCost:    res.GuardCost,
		SnapshotAt:   mid.Iteration,
		Snapshot:     canonicalSnapshot(t, mid),
	}
	return gc, snaps
}

// materialize drains a source into a config slice, the same candidate
// sequence the streamed mode scores lazily.
func materialize(t testing.TB, src pool.Source) []space.Config {
	t.Helper()
	src.Reset()
	d := src.Space().NumParams()
	out := make([]space.Config, 0, src.Len())
	buf := make([]space.Config, 64)
	for i := range buf {
		buf[i] = make(space.Config, d)
	}
	for {
		n := src.Next(buf)
		if n == 0 {
			break
		}
		for _, c := range buf[:n] {
			out = append(out, c.Clone())
		}
	}
	src.Reset()
	return out
}

// caseKey identifies a golden cell in failure messages.
func caseKey(gc goldenCase) string {
	mode := "run"
	if gc.Streamed {
		mode = "stream"
	}
	return fmt.Sprintf("%s/%s", gc.Strategy, mode)
}

func marshalGolden(t testing.TB, cases []goldenCase) []byte {
	t.Helper()
	data, err := json.MarshalIndent(cases, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestSessionEquivalenceGolden pins every strategy's full run, in both
// modes, to the pre-refactor goldens.
func TestSessionEquivalenceGolden(t *testing.T) {
	var cases []goldenCase
	for _, strat := range goldenStrategies(t) {
		for _, streamed := range []bool{false, true} {
			gc, _ := goldenRun(t, strat, streamed)
			cases = append(cases, gc)
		}
	}
	got := marshalGolden(t, cases)

	if os.Getenv("SESSION_GOLDEN_UPDATE") == "1" {
		if err := os.MkdirAll(filepath.Dir(sessionGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(sessionGoldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", sessionGoldenPath, len(got))
		return
	}

	want, err := os.ReadFile(sessionGoldenPath)
	if err != nil {
		t.Fatalf("reading goldens (regenerate with SESSION_GOLDEN_UPDATE=1): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Locate the first diverging case for a readable failure.
	var wantCases []goldenCase
	if err := json.Unmarshal(want, &wantCases); err != nil {
		t.Fatalf("goldens corrupt: %v", err)
	}
	if len(wantCases) != len(cases) {
		t.Fatalf("golden has %d cases, engine produced %d", len(wantCases), len(cases))
	}
	for i := range cases {
		g, w := marshalGolden(t, cases[i:i+1]), marshalGolden(t, wantCases[i:i+1])
		if !bytes.Equal(g, w) {
			t.Errorf("%s diverged from pre-refactor golden:\n got: %.2000s\nwant: %.2000s", caseKey(cases[i]), g, w)
		}
	}
	if !t.Failed() {
		t.Fatal("golden bytes differ but no case diverged (formatting drift?)")
	}
}

// TestSessionResumeEveryPrefix proves resumability from every checkpoint
// boundary: for each strategy and mode, resuming from each of the run's
// snapshots must land on exactly the uninterrupted run's result.
func TestSessionResumeEveryPrefix(t *testing.T) {
	sp := goldenSpace()
	for _, strat := range goldenStrategies(t) {
		for _, streamed := range []bool{false, true} {
			full, snaps := goldenRun(t, strat, streamed)
			ev := goldenEvaluator(sp)
			for _, snap := range snaps {
				params := goldenParams(nil)
				params.CheckpointEvery = 0
				var (
					res *Result
					err error
				)
				if streamed {
					src := pool.NewUniform(sp, goldenPoolSeed, goldenPoolSize)
					res, err = ResumeStream(context.Background(), snap, src, ev, strat, params, nil)
				} else {
					src := pool.NewUniform(sp, goldenPoolSeed, goldenPoolSize)
					res, err = Resume(context.Background(), snap, sp, materialize(t, src), ev, strat, params, nil)
				}
				if err != nil {
					t.Fatalf("%s: resume from iteration %d: %v", caseKey(full), snap.Iteration, err)
				}
				got := goldenCase{
					Strategy:     full.Strategy,
					Streamed:     streamed,
					TrainConfigs: res.TrainConfigs,
					TrainY:       res.TrainY,
					Selections:   res.Selections,
					Iterations:   res.Iterations,
					RNG:          res.RNGState,
					Stats:        zeroDurations(res.Stats),
					FailedCost:   res.FailedCost,
					GuardCost:    res.GuardCost,
					SnapshotAt:   full.SnapshotAt,
					Snapshot:     full.Snapshot,
				}
				g, w := marshalGolden(t, []goldenCase{got}), marshalGolden(t, []goldenCase{full})
				if !bytes.Equal(g, w) {
					t.Fatalf("%s: resume from iteration %d diverged from the uninterrupted run", caseKey(full), snap.Iteration)
				}
			}
		}
	}
}
