package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
)

// Snapshot wire versions. The engine writes the lowest version that can
// represent the state — version 1 unless the session carries a service
// manifest — and reads every version in the supported range, so
// checkpoints written by older engine generations keep resuming and a
// genuinely unknown version fails with a typed error instead of a
// silent misparse.
const (
	// snapshotVersion is the base wire format (pre-service engine
	// generations wrote nothing else).
	snapshotVersion = 1

	// snapshotVersionService adds the opaque service manifest a
	// daemon-managed session stores for crash recovery.
	snapshotVersionService = 2
)

// SnapshotVersionError reports a snapshot whose wire version this
// engine generation cannot read.
type SnapshotVersionError struct {
	Version int
}

// Error implements error.
func (e *SnapshotVersionError) Error() string {
	return fmt.Sprintf("core: snapshot version %d unsupported (engine speaks %d..%d)",
		e.Version, snapshotVersion, snapshotVersionService)
}

// checkSnapshotVersion rejects wire versions outside the supported
// range with a typed error.
func checkSnapshotVersion(v int) error {
	if v < snapshotVersion || v > snapshotVersionService {
		return &SnapshotVersionError{Version: v}
	}
	return nil
}

// Snapshot is the complete serializable state of a run at an iteration
// boundary. Together with the inputs that are regenerated
// deterministically by the caller (the space, the pool, the evaluator,
// the strategy, the params), it is sufficient for Resume to continue
// the run bit-identically — same labels, same selections, same RNG
// stream position — as if it had never stopped.
//
// The pool itself is not stored (it can be huge and is deterministic
// from the caller's seed); PoolSize and PoolHash fingerprint it so
// Resume can reject a mismatched pool instead of silently diverging.
type Snapshot struct {
	Version   int `json:"version"`
	Iteration int `json:"iteration"`

	// PoolSize / PoolHash fingerprint the pool the run was started with.
	PoolSize int    `json:"pool_size"`
	PoolHash uint64 `json:"pool_hash"`

	// Remaining is the unlabeled pool membership, as indices into the
	// original pool, in engine order. Streamed runs leave it nil: their
	// membership is the complement of Taken, which scales with labels
	// collected instead of pool size.
	Remaining []int `json:"remaining"`

	// Streamed marks a snapshot taken by RunStream. Such snapshots store
	// Taken instead of Remaining, fingerprint the candidate source in
	// PoolHash, and resume via ResumeStream. Both fields are additive to
	// the version-1 format: pre-streaming snapshots load unchanged.
	Streamed bool `json:"streamed,omitempty"`

	// Taken is the sorted set of global source indices already removed
	// from the pool of a streamed run.
	Taken []int `json:"taken,omitempty"`

	// TrainConfigs / TrainY are the labeled set in labeling order.
	TrainConfigs []space.Config `json:"train_configs"`
	TrainY       []float64      `json:"train_y"`

	// RNG is the loop generator's stream position.
	RNG rng.State `json:"rng"`

	// Evaluator is the evaluator's internal generator state, present
	// when the evaluator implements StatefulEvaluator (the benchmark
	// noise stream).
	Evaluator *rng.State `json:"evaluator,omitempty"`

	// Model is the fitted surrogate, serialized by its own marshaler
	// (the forest/tree JSON format by default).
	Model json.RawMessage `json:"model"`

	// Stats, Selections, FailedCost and GuardCost restore the Result
	// bookkeeping so a resumed run's Result matches the uninterrupted
	// one. GuardCost is additive to the version-1 format: snapshots
	// written before the label guard load with a zero value.
	Stats      []IterStats `json:"stats,omitempty"`
	Selections []Selection `json:"selections,omitempty"`
	FailedCost float64     `json:"failed_cost,omitempty"`
	GuardCost  float64     `json:"guard_cost,omitempty"`

	// Service is the opaque session manifest of a daemon-managed
	// session (SessionConfig.Service), stored verbatim. Its presence
	// bumps the wire version to snapshotVersionService; plain runs omit
	// it and keep writing the version-1 format byte for byte.
	Service json.RawMessage `json:"service,omitempty"`
}

// poolHash fingerprints a pool with FNV-1a over its level indices.
func poolHash(pool []space.Config) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(pool)))
	for _, c := range pool {
		mix(uint64(len(c)))
		for _, lvl := range c {
			mix(uint64(int64(lvl)))
		}
	}
	return h
}

// checkpoint hands a snapshot to the configured sink when due: after
// the cold start (iteration 0) and after every CheckpointEvery-th
// completed iteration.
func (s *Session) checkpoint(force bool) error {
	if s.p.Checkpoint == nil {
		return nil
	}
	if !force {
		if s.p.CheckpointEvery <= 0 || s.iter%s.p.CheckpointEvery != 0 {
			return nil
		}
	}
	snap, err := s.snapshot()
	if err != nil {
		return fmt.Errorf("core: snapshot at iteration %d: %w", s.iter, err)
	}
	if err := s.p.Checkpoint(snap); err != nil {
		return fmt.Errorf("core: checkpoint at iteration %d: %w", s.iter, err)
	}
	return nil
}

// drainCheckpoint persists the boundary state when a cancellation lands
// between iterations. The run is already returning ctx.Err(); a sink
// failure here cannot change that outcome, so it is ignored — the
// previous periodic snapshot remains valid.
func (s *Session) drainCheckpoint() {
	if s.p.Checkpoint == nil {
		return
	}
	if snap, err := s.snapshot(); err == nil {
		_ = s.p.Checkpoint(snap)
	}
}

// Snapshot captures the session's state for persistence. It is valid
// only at an iteration boundary (no labels outstanding): mid-batch
// state is deliberately not serializable, because resume re-derives the
// lost batch deterministically from the restored generator.
func (s *Session) Snapshot() (*Snapshot, error) {
	switch s.phase {
	case phaseReady, phaseDone:
		return s.snapshot()
	default:
		return nil, fmt.Errorf("core: snapshot only at an iteration boundary (phase %s)", s.phase)
	}
}

// snapshot captures the session's boundary state. Slices are copied so
// the snapshot stays valid while the session keeps running.
func (s *Session) snapshot() (*Snapshot, error) {
	model, err := json.Marshal(s.model)
	if err != nil {
		return nil, fmt.Errorf("serializing model: %w", err)
	}
	snap := &Snapshot{
		Version:      snapshotVersion,
		Iteration:    s.iter,
		TrainConfigs: append([]space.Config(nil), s.res.TrainConfigs...),
		TrainY:       append([]float64(nil), s.res.TrainY...),
		RNG:          s.r.State(),
		Model:        model,
		Stats:        append([]IterStats(nil), s.res.Stats...),
		Selections:   append([]Selection(nil), s.res.Selections...),
		FailedCost:   s.res.FailedCost,
		GuardCost:    s.res.GuardCost,
	}
	if s.service != nil {
		snap.Version = snapshotVersionService
		snap.Service = append(json.RawMessage(nil), s.service...)
	}
	if s.src != nil {
		snap.Streamed = true
		snap.PoolSize = s.src.Len()
		snap.PoolHash = s.src.Fingerprint()
		snap.Taken = append([]int(nil), s.taken...)
	} else {
		snap.PoolSize = len(s.pl)
		snap.PoolHash = poolHash(s.pl)
		snap.Remaining = append([]int(nil), s.remaining...)
	}
	if sev, ok := s.ev.(StatefulEvaluator); ok {
		st := sev.EvaluatorState()
		snap.Evaluator = &st
	}
	return snap, nil
}

// defaultModelLoader is the Resume/ResumeStream model fallback, matching
// the default forest Fitter.
func defaultModelLoader(data []byte) (Model, error) {
	return forest.Load(bytes.NewReader(data))
}

// ResumeSession rebuilds a Session from a Snapshot at the iteration
// boundary it was taken at. The configuration supplies the regenerated
// deterministic inputs (pool or source — validated against the
// snapshot's fingerprint — strategy and params, which must match the
// original run's); the snapshot restores the labeled set, pool
// membership, the generator, the fitted model and, when present, the
// evaluator's noise stream (via SessionConfig.Evaluator). The
// configuration's RNG is ignored; the generator always resumes from the
// snapshot's stream position.
func ResumeSession(snap *Snapshot, cfg SessionConfig) (*Session, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if err := checkSnapshotVersion(snap.Version); err != nil {
		return nil, err
	}
	if snap.Streamed && cfg.Source == nil {
		return nil, fmt.Errorf("core: snapshot was taken by a streamed run; use a Source to resume it")
	}
	if !snap.Streamed && cfg.Source != nil {
		return nil, fmt.Errorf("core: snapshot was taken by an in-memory run; use a Pool to resume it")
	}
	if cfg.Service == nil {
		cfg.Service = snap.Service
	}
	s, err := newSession(cfg, nil)
	if err != nil {
		return nil, err
	}
	if s.src != nil {
		if s.src.Len() != snap.PoolSize {
			return nil, fmt.Errorf("core: source size %d does not match snapshot's %d", s.src.Len(), snap.PoolSize)
		}
		if h := s.src.Fingerprint(); h != snap.PoolHash {
			return nil, fmt.Errorf("core: source fingerprint %#x does not match snapshot's %#x (different source or seed)", h, snap.PoolHash)
		}
	} else {
		if len(s.pl) != snap.PoolSize {
			return nil, fmt.Errorf("core: pool size %d does not match snapshot's %d", len(s.pl), snap.PoolSize)
		}
		if h := poolHash(s.pl); h != snap.PoolHash {
			return nil, fmt.Errorf("core: pool hash %#x does not match snapshot's %#x (different pool or seed)", h, snap.PoolHash)
		}
	}
	if len(snap.TrainConfigs) != len(snap.TrainY) {
		return nil, fmt.Errorf("core: snapshot has %d configs but %d labels", len(snap.TrainConfigs), len(snap.TrainY))
	}
	if len(snap.TrainY) == 0 || len(snap.TrainY) > s.p.NMax {
		return nil, fmt.Errorf("core: snapshot labeled-set size %d outside (0, NMax=%d]", len(snap.TrainY), s.p.NMax)
	}
	if s.src != nil {
		for i, g := range snap.Taken {
			if g < 0 || g >= s.src.Len() {
				return nil, fmt.Errorf("core: snapshot taken index %d out of source range", g)
			}
			if i > 0 && g <= snap.Taken[i-1] {
				return nil, fmt.Errorf("core: snapshot taken set not sorted and unique at %d", i)
			}
		}
	} else {
		for _, idx := range snap.Remaining {
			if idx < 0 || idx >= len(s.pl) {
				return nil, fmt.Errorf("core: snapshot remaining index %d out of pool range", idx)
			}
		}
	}

	r, err := rng.FromState(snap.RNG)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot RNG: %w", err)
	}
	loader := s.p.ModelLoader
	if loader == nil {
		loader = defaultModelLoader
	}
	model, err := loader(snap.Model)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot model: %w", err)
	}
	if snap.Evaluator != nil {
		sev, ok := cfg.Evaluator.(StatefulEvaluator)
		if !ok {
			return nil, fmt.Errorf("core: snapshot carries evaluator state but evaluator %T cannot restore it", cfg.Evaluator)
		}
		if err := sev.RestoreEvaluatorState(*snap.Evaluator); err != nil {
			return nil, fmt.Errorf("core: restoring evaluator state: %w", err)
		}
	}

	s.r = r
	s.model = model
	s.iter = snap.Iteration
	s.res = &Result{
		TrainConfigs: append([]space.Config(nil), snap.TrainConfigs...),
		TrainY:       append([]float64(nil), snap.TrainY...),
		Selections:   append([]Selection(nil), snap.Selections...),
		Stats:        append([]IterStats(nil), snap.Stats...),
		FailedCost:   snap.FailedCost,
		GuardCost:    snap.GuardCost,
		Iterations:   snap.Iteration,
		Model:        model,
	}
	if s.src != nil {
		s.taken = append(s.taken[:0], snap.Taken...)
	} else {
		s.remaining = append(s.remaining[:0], snap.Remaining...)
	}
	for _, c := range snap.TrainConfigs {
		s.trainX = append(s.trainX, s.sp.Encode(c))
	}
	for _, y := range snap.TrainY {
		s.labelSum += y
	}
	if len(s.res.TrainY) >= s.p.NMax {
		s.phase = phaseDone
	} else {
		s.phase = phaseReady
	}
	return s, nil
}

// Resume continues a run from a Snapshot, bit-identically to the run
// that would have happened without the interruption: same labeled set,
// same selections, same RNG stream position (proven by the equivalence
// test and enforced by `make resume-equivalence`).
//
// The caller regenerates the run's deterministic inputs — the space,
// the pool (validated against the snapshot's fingerprint), the
// evaluator, the strategy and the params, which must match the original
// run — and Resume restores the rest from the snapshot: the labeled
// set, pool membership, the loop generator, the fitted model (via
// params.ModelLoader, defaulting to the forest format) and, for
// StatefulEvaluator evaluators, the evaluator's noise stream.
func Resume(ctx context.Context, snap *Snapshot, sp *space.Space, pool []space.Config, ev Evaluator, strat Strategy, params Params, obs Observer) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if err := checkSnapshotVersion(snap.Version); err != nil {
		return nil, err
	}
	if snap.Streamed {
		return nil, fmt.Errorf("core: snapshot was taken by a streamed run; use ResumeStream")
	}
	if sp == nil {
		return nil, fmt.Errorf("core: nil space")
	}
	if ev == nil || strat == nil {
		return nil, fmt.Errorf("core: nil evaluator or strategy")
	}
	s, err := ResumeSession(snap, SessionConfig{
		Space: sp, Pool: pool, Strategy: strat, Params: params, Observer: obs, Evaluator: ev,
	})
	if err != nil {
		return nil, err
	}
	return driveSession(ctx, s, ev)
}
