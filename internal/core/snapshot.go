package core

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
)

// snapshotVersion guards the wire format; Resume rejects snapshots from
// a different engine generation instead of mis-reading them.
const snapshotVersion = 1

// Snapshot is the complete serializable state of a run at an iteration
// boundary. Together with the inputs that are regenerated
// deterministically by the caller (the space, the pool, the evaluator,
// the strategy, the params), it is sufficient for Resume to continue
// the run bit-identically — same labels, same selections, same RNG
// stream position — as if it had never stopped.
//
// The pool itself is not stored (it can be huge and is deterministic
// from the caller's seed); PoolSize and PoolHash fingerprint it so
// Resume can reject a mismatched pool instead of silently diverging.
type Snapshot struct {
	Version   int `json:"version"`
	Iteration int `json:"iteration"`

	// PoolSize / PoolHash fingerprint the pool the run was started with.
	PoolSize int    `json:"pool_size"`
	PoolHash uint64 `json:"pool_hash"`

	// Remaining is the unlabeled pool membership, as indices into the
	// original pool, in engine order. Streamed runs leave it nil: their
	// membership is the complement of Taken, which scales with labels
	// collected instead of pool size.
	Remaining []int `json:"remaining"`

	// Streamed marks a snapshot taken by RunStream. Such snapshots store
	// Taken instead of Remaining, fingerprint the candidate source in
	// PoolHash, and resume via ResumeStream. Both fields are additive to
	// the version-1 format: pre-streaming snapshots load unchanged.
	Streamed bool `json:"streamed,omitempty"`

	// Taken is the sorted set of global source indices already removed
	// from the pool of a streamed run.
	Taken []int `json:"taken,omitempty"`

	// TrainConfigs / TrainY are the labeled set in labeling order.
	TrainConfigs []space.Config `json:"train_configs"`
	TrainY       []float64      `json:"train_y"`

	// RNG is the loop generator's stream position.
	RNG rng.State `json:"rng"`

	// Evaluator is the evaluator's internal generator state, present
	// when the evaluator implements StatefulEvaluator (the benchmark
	// noise stream).
	Evaluator *rng.State `json:"evaluator,omitempty"`

	// Model is the fitted surrogate, serialized by its own marshaler
	// (the forest/tree JSON format by default).
	Model json.RawMessage `json:"model"`

	// Stats, Selections, FailedCost and GuardCost restore the Result
	// bookkeeping so a resumed run's Result matches the uninterrupted
	// one. GuardCost is additive to the version-1 format: snapshots
	// written before the label guard load with a zero value.
	Stats      []IterStats `json:"stats,omitempty"`
	Selections []Selection `json:"selections,omitempty"`
	FailedCost float64     `json:"failed_cost,omitempty"`
	GuardCost  float64     `json:"guard_cost,omitempty"`
}

// poolHash fingerprints a pool with FNV-1a over its level indices.
func poolHash(pool []space.Config) uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	mix(uint64(len(pool)))
	for _, c := range pool {
		mix(uint64(len(c)))
		for _, lvl := range c {
			mix(uint64(int64(lvl)))
		}
	}
	return h
}

// checkpoint hands a snapshot to the configured sink when due: after
// the cold start (iteration 0) and after every CheckpointEvery-th
// completed iteration.
func (e *engine) checkpoint(force bool) error {
	if e.p.Checkpoint == nil {
		return nil
	}
	if !force {
		if e.p.CheckpointEvery <= 0 || e.iter%e.p.CheckpointEvery != 0 {
			return nil
		}
	}
	snap, err := e.snapshot()
	if err != nil {
		return fmt.Errorf("core: snapshot at iteration %d: %w", e.iter, err)
	}
	if err := e.p.Checkpoint(snap); err != nil {
		return fmt.Errorf("core: checkpoint at iteration %d: %w", e.iter, err)
	}
	return nil
}

// drainCheckpoint persists the boundary state when a cancellation lands
// between iterations. The run is already returning ctx.Err(); a sink
// failure here cannot change that outcome, so it is ignored — the
// previous periodic snapshot remains valid.
func (e *engine) drainCheckpoint() {
	if e.p.Checkpoint == nil {
		return
	}
	if snap, err := e.snapshot(); err == nil {
		_ = e.p.Checkpoint(snap)
	}
}

// snapshot captures the engine's boundary state. Slices are copied so
// the snapshot stays valid while the engine keeps running.
func (e *engine) snapshot() (*Snapshot, error) {
	model, err := json.Marshal(e.model)
	if err != nil {
		return nil, fmt.Errorf("serializing model: %w", err)
	}
	snap := &Snapshot{
		Version:      snapshotVersion,
		Iteration:    e.iter,
		TrainConfigs: append([]space.Config(nil), e.res.TrainConfigs...),
		TrainY:       append([]float64(nil), e.res.TrainY...),
		RNG:          e.r.State(),
		Model:        model,
		Stats:        append([]IterStats(nil), e.res.Stats...),
		Selections:   append([]Selection(nil), e.res.Selections...),
		FailedCost:   e.res.FailedCost,
		GuardCost:    e.res.GuardCost,
	}
	if e.src != nil {
		snap.Streamed = true
		snap.PoolSize = e.src.Len()
		snap.PoolHash = e.src.Fingerprint()
		snap.Taken = append([]int(nil), e.taken...)
	} else {
		snap.PoolSize = len(e.pool)
		snap.PoolHash = poolHash(e.pool)
		snap.Remaining = append([]int(nil), e.remaining...)
	}
	if sev, ok := e.ev.(StatefulEvaluator); ok {
		st := sev.EvaluatorState()
		snap.Evaluator = &st
	}
	return snap, nil
}

// defaultModelLoader is the Resume/ResumeStream model fallback, matching
// the default forest Fitter.
func defaultModelLoader(data []byte) (Model, error) {
	return forest.Load(bytes.NewReader(data))
}

// Resume continues a run from a Snapshot, bit-identically to the run
// that would have happened without the interruption: same labeled set,
// same selections, same RNG stream position (proven by the equivalence
// test and enforced by `make resume-equivalence`).
//
// The caller regenerates the run's deterministic inputs — the space,
// the pool (validated against the snapshot's fingerprint), the
// evaluator, the strategy and the params, which must match the original
// run — and Resume restores the rest from the snapshot: the labeled
// set, pool membership, the loop generator, the fitted model (via
// params.ModelLoader, defaulting to the forest format) and, for
// StatefulEvaluator evaluators, the evaluator's noise stream.
func Resume(ctx context.Context, snap *Snapshot, sp *space.Space, pool []space.Config, ev Evaluator, strat Strategy, params Params, obs Observer) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, engine speaks %d", snap.Version, snapshotVersion)
	}
	if snap.Streamed {
		return nil, fmt.Errorf("core: snapshot was taken by a streamed run; use ResumeStream")
	}
	p := params.Normalized()
	if sp == nil {
		return nil, fmt.Errorf("core: nil space")
	}
	if ev == nil || strat == nil {
		return nil, fmt.Errorf("core: nil evaluator or strategy")
	}
	if len(pool) != snap.PoolSize {
		return nil, fmt.Errorf("core: pool size %d does not match snapshot's %d", len(pool), snap.PoolSize)
	}
	if h := poolHash(pool); h != snap.PoolHash {
		return nil, fmt.Errorf("core: pool hash %#x does not match snapshot's %#x (different pool or seed)", h, snap.PoolHash)
	}
	if len(snap.TrainConfigs) != len(snap.TrainY) {
		return nil, fmt.Errorf("core: snapshot has %d configs but %d labels", len(snap.TrainConfigs), len(snap.TrainY))
	}
	if len(snap.TrainY) == 0 || len(snap.TrainY) > p.NMax {
		return nil, fmt.Errorf("core: snapshot labeled-set size %d outside (0, NMax=%d]", len(snap.TrainY), p.NMax)
	}
	for _, idx := range snap.Remaining {
		if idx < 0 || idx >= len(pool) {
			return nil, fmt.Errorf("core: snapshot remaining index %d out of pool range", idx)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}

	r, err := rng.FromState(snap.RNG)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot RNG: %w", err)
	}
	loader := p.ModelLoader
	if loader == nil {
		loader = defaultModelLoader
	}
	model, err := loader(snap.Model)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot model: %w", err)
	}
	if snap.Evaluator != nil {
		sev, ok := ev.(StatefulEvaluator)
		if !ok {
			return nil, fmt.Errorf("core: snapshot carries evaluator state but evaluator %T cannot restore it", ev)
		}
		if err := sev.RestoreEvaluatorState(*snap.Evaluator); err != nil {
			return nil, fmt.Errorf("core: restoring evaluator state: %w", err)
		}
	}

	e := &engine{
		ctx: ctx, sp: sp, pool: pool, ev: ev, strat: strat, p: p, r: r, obs: obs,
		res: &Result{
			TrainConfigs: append([]space.Config(nil), snap.TrainConfigs...),
			TrainY:       append([]float64(nil), snap.TrainY...),
			Selections:   append([]Selection(nil), snap.Selections...),
			Stats:        append([]IterStats(nil), snap.Stats...),
			FailedCost:   snap.FailedCost,
			GuardCost:    snap.GuardCost,
			Iterations:   snap.Iteration,
			Model:        model,
		},
	}
	e.init()
	defer e.captureRNG()
	e.remaining = append(e.remaining[:0], snap.Remaining...)
	e.iter = snap.Iteration
	e.model = model
	for _, cfg := range snap.TrainConfigs {
		e.trainX = append(e.trainX, e.sp.Encode(cfg))
	}
	for _, y := range snap.TrainY {
		e.labelSum += y
	}
	return e.loop()
}
