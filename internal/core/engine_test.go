package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/space"
)

// flakyEvaluator fails the first failuresPerConfig attempts of every
// configuration, billing failCost per failed attempt, then succeeds with
// the quadratic ground truth. A permanent set of config keys never
// succeeds.
type flakyEvaluator struct {
	sp                *space.Space
	failuresPerConfig int
	failCost          float64
	permanent         map[string]bool
	attempts          map[string]int
	calls             int
	cancelAfter       int // cancel() after this many calls (0 = never)
	cancel            context.CancelFunc
}

func (f *flakyEvaluator) truth(c space.Config) float64 {
	a := f.sp.ValueByName(c, "a")
	b := f.sp.ValueByName(c, "b")
	return (a-5)*(a-5) + (b-3)*(b-3) + 1
}

func (f *flakyEvaluator) Evaluate(ctx context.Context, c space.Config) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	f.calls++
	if f.cancelAfter > 0 && f.calls >= f.cancelAfter && f.cancel != nil {
		f.cancel()
	}
	if f.attempts == nil {
		f.attempts = map[string]int{}
	}
	k := c.Key()
	if f.permanent[k] {
		return f.failCost, fmt.Errorf("flaky: config %s is cursed", k)
	}
	if f.attempts[k] < f.failuresPerConfig {
		f.attempts[k]++
		return f.failCost, fmt.Errorf("flaky: transient failure %d of %s", f.attempts[k], k)
	}
	return f.truth(c), nil
}

func fastRetry(n int, action FailureAction) FailurePolicy {
	return FailurePolicy{MaxRetries: n, Backoff: time.Microsecond, MaxBackoff: 10 * time.Microsecond, OnExhausted: action}
}

func TestRetryPolicyCompletesRun(t *testing.T) {
	sp, _ := quadSpace(t)
	ev := &flakyEvaluator{sp: sp, failuresPerConfig: 2, failCost: 0.5}
	// Distinct configs: the transient-failure counter is per config key,
	// so a duplicated pool entry would sail through on its second visit.
	pool := sp.SampleDistinct(rng.New(50), 60)
	res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NBatch: 3, NMax: 20, Forest: smallForest(),
			Failure: fastRetry(2, FailAbort)},
		rng.New(51), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainY) != 20 {
		t.Fatalf("labeled %d under transient failures", len(res.TrainY))
	}
	agg := res.Telemetry()
	if agg.EvalRetries != 2*20 {
		t.Fatalf("telemetry retries = %d, want 40 (2 per config)", agg.EvalRetries)
	}
	if agg.EvalSkips != 0 {
		t.Fatalf("unexpected skips %d", agg.EvalSkips)
	}
	// Each failed attempt consumed 0.5 s of machine time; CC must count
	// it even though no label came back from those attempts.
	wantFailed := 0.5 * 40
	if math.Abs(res.FailedCost-wantFailed) > 1e-9 || math.Abs(agg.FailedCost-wantFailed) > 1e-9 {
		t.Fatalf("failed cost %v (telemetry %v), want %v", res.FailedCost, agg.FailedCost, wantFailed)
	}
	var labelSum float64
	for _, y := range res.TrainY {
		labelSum += y
	}
	if math.Abs(res.LabelCost()-(labelSum+wantFailed)) > 1e-9 {
		t.Fatalf("LabelCost %v does not include failed-attempt cost", res.LabelCost())
	}
}

func TestZeroPolicyAbortsOnFirstFailure(t *testing.T) {
	sp, _ := quadSpace(t)
	ev := &flakyEvaluator{sp: sp, failuresPerConfig: 1}
	pool := sp.SampleConfigs(rng.New(52), 60)
	res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NMax: 20, Forest: smallForest()}, rng.New(53), nil)
	if err == nil {
		t.Fatal("zero failure policy tolerated a failure")
	}
	if res == nil {
		t.Fatal("no partial result on abort")
	}
	if ev.calls != 1 {
		t.Fatalf("evaluator called %d times, want 1 (no retries)", ev.calls)
	}
}

func TestFailSkipDropsCursedConfigs(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleDistinct(rng.New(54), 60)
	cursed := map[string]bool{pool[3].Key(): true, pool[17].Key(): true, pool[40].Key(): true}
	ev := &flakyEvaluator{sp: sp, permanent: cursed}
	res, err := Run(context.Background(), sp, pool, ev, MaxU{},
		Params{NInit: 8, NBatch: 4, NMax: 40, Forest: smallForest(),
			Failure: fastRetry(1, FailSkip)},
		rng.New(55), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainY) != 40 {
		t.Fatalf("labeled %d, want 40 (skips must not shrink the target)", len(res.TrainY))
	}
	for _, c := range res.TrainConfigs {
		if cursed[c.Key()] {
			t.Fatalf("cursed config %s entered the training set", c.Key())
		}
	}
	agg := res.Telemetry()
	// Each cursed config that the strategy touched costs 1 skip and
	// MaxRetries retries; it may or may not be selected, but the pool is
	// small enough with MaxU that at least one is.
	if agg.EvalSkips == 0 {
		t.Skip("strategy never selected a cursed config at this seed")
	}
	if agg.EvalRetries < agg.EvalSkips {
		t.Fatalf("retries %d < skips %d: retry budget not spent before skipping", agg.EvalRetries, agg.EvalSkips)
	}
}

func TestAllColdStartFailuresExhaustPool(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(56), 30)
	permanent := map[string]bool{}
	for _, c := range pool {
		permanent[c.Key()] = true
	}
	ev := &flakyEvaluator{sp: sp, permanent: permanent}
	_, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NMax: 20, Forest: smallForest(), Failure: fastRetry(0, FailSkip)},
		rng.New(57), nil)
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("err = %v, want ErrPoolExhausted", err)
	}
}

func TestCancelMidColdStart(t *testing.T) {
	sp, _ := quadSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ev := &flakyEvaluator{sp: sp, cancelAfter: 3, cancel: cancel}
	pool := sp.SampleConfigs(rng.New(58), 60)
	res, err := Run(ctx, sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 10, NMax: 30, Forest: smallForest()}, rng.New(59), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	if len(res.TrainY) != len(res.TrainConfigs) {
		t.Fatalf("inconsistent partial result: %d labels, %d configs", len(res.TrainY), len(res.TrainConfigs))
	}
	if len(res.TrainY) >= 10 {
		t.Fatalf("cold start finished (%d labels) despite cancellation", len(res.TrainY))
	}
}

func TestCancelMidLoopDrainsCheckpoint(t *testing.T) {
	sp, ev := quadSpace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var last *Snapshot
	obs := func(s *State) error {
		if s.Iteration == 2 {
			cancel()
		}
		return nil
	}
	res, err := Run(ctx, sp, sp.SampleConfigs(rng.New(60), 80), ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NBatch: 3, NMax: 50, Forest: smallForest(),
			CheckpointEvery: 100, // periodic snapshots never due; only the drain writes
			Checkpoint:      func(s *Snapshot) error { last = s; return nil }},
		rng.New(61), obs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Iterations != 2 {
		t.Fatalf("partial result has %d iterations, want 2", res.Iterations)
	}
	if last == nil {
		t.Fatal("cancellation did not drain a checkpoint")
	}
	if last.Iteration != 2 || len(last.TrainY) != len(res.TrainY) {
		t.Fatalf("drained snapshot at iteration %d with %d labels; run stopped at %d with %d",
			last.Iteration, len(last.TrainY), res.Iterations, len(res.TrainY))
	}
	if len(last.Remaining)+len(last.TrainY) > last.PoolSize {
		t.Fatal("snapshot membership accounting broken")
	}
}

// statefulEval measures the quadratic truth under multiplicative
// log-normal noise drawn from its own generator, and exports/restores
// that generator — the shape of the benchmark noise protocol, local to
// this package's tests.
type statefulEval struct {
	sp *space.Space
	r  *rng.RNG
}

func (s *statefulEval) Evaluate(ctx context.Context, c space.Config) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	a := s.sp.ValueByName(c, "a")
	b := s.sp.ValueByName(c, "b")
	truth := (a-5)*(a-5) + (b-3)*(b-3) + 1
	return truth * s.r.LogNormal(0, 0.05), nil
}

func (s *statefulEval) EvaluatorState() rng.State { return s.r.State() }

func (s *statefulEval) RestoreEvaluatorState(st rng.State) error {
	r, err := rng.FromState(st)
	if err != nil {
		return err
	}
	s.r = r
	return nil
}

// resumeFixture runs the golden resume-equivalence comparison for one
// engine mode: an uninterrupted run vs the same run interrupted at
// iteration stopAt and resumed from the JSON-round-tripped snapshot.
// Both must agree bit for bit on labels, selections, RNG stream position
// and final-model predictions.
func resumeFixture(t *testing.T, warm bool) {
	t.Helper()
	sp := space.MustNew(
		space.NumRange("a", 0, 9, 1),
		space.NumRange("b", 0, 9, 1),
	)
	const seed, evSeed, stopAt = 70, 71, 4
	pool := sp.SampleConfigs(rng.New(seed), 100)
	params := Params{NInit: 8, NBatch: 3, NMax: 44, Forest: smallForest(),
		WarmUpdate: warm, RecordSelections: true}

	// Reference: the run that is never interrupted.
	full, err := Run(context.Background(), sp, pool,
		&statefulEval{sp: sp, r: rng.New(evSeed)}, PWU{Alpha: 0.1}, params, rng.New(seed+1), nil)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted run: cancel once iteration stopAt completes; the drain
	// checkpoint captures the boundary.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var snap *Snapshot
	ip := params
	ip.CheckpointEvery = 1000 // only the drain writes
	ip.Checkpoint = func(s *Snapshot) error { snap = s; return nil }
	_, err = Run(ctx, sp, pool,
		&statefulEval{sp: sp, r: rng.New(evSeed)}, PWU{Alpha: 0.1}, ip, rng.New(seed+1),
		func(s *State) error {
			if s.Iteration == stopAt {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run: err = %v", err)
	}
	if snap == nil || snap.Iteration != stopAt {
		t.Fatalf("no usable snapshot (got %+v)", snap)
	}

	// A real resume crosses a process boundary: round-trip the snapshot
	// through its serialized form before continuing.
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var loaded Snapshot
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(context.Background(), &loaded, sp, pool,
		&statefulEval{sp: sp, r: rng.New(999)}, // wrong seed on purpose; state comes from the snapshot
		PWU{Alpha: 0.1}, params, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Bit-identical labeled set, selection stream and RNG position.
	if len(resumed.TrainY) != len(full.TrainY) {
		t.Fatalf("labeled %d resumed vs %d full", len(resumed.TrainY), len(full.TrainY))
	}
	for i := range full.TrainY {
		if full.TrainY[i] != resumed.TrainY[i] {
			t.Fatalf("label %d: %v full vs %v resumed", i, full.TrainY[i], resumed.TrainY[i])
		}
		if full.TrainConfigs[i].Key() != resumed.TrainConfigs[i].Key() {
			t.Fatalf("config %d differs", i)
		}
	}
	if len(full.Selections) != len(resumed.Selections) {
		t.Fatalf("selections %d vs %d", len(full.Selections), len(resumed.Selections))
	}
	for i := range full.Selections {
		a, b := full.Selections[i], resumed.Selections[i]
		if a.Mu != b.Mu || a.Sigma != b.Sigma || a.Y != b.Y || a.Iteration != b.Iteration {
			t.Fatalf("selection %d: %+v vs %+v", i, a, b)
		}
	}
	if full.Iterations != resumed.Iterations {
		t.Fatalf("iterations %d vs %d", full.Iterations, resumed.Iterations)
	}
	if full.RNGState != resumed.RNGState {
		t.Fatalf("RNG stream positions diverged: %+v vs %+v", full.RNGState, resumed.RNGState)
	}
	// The final models are behaviorally identical.
	probe := sp.EncodeAll(sp.SampleConfigs(rng.New(72), 50))
	muA, sigA := full.Model.PredictBatch(probe)
	muB, sigB := resumed.Model.PredictBatch(probe)
	for i := range muA {
		if muA[i] != muB[i] || sigA[i] != sigB[i] {
			t.Fatalf("model prediction %d differs: (%v,%v) vs (%v,%v)", i, muA[i], sigA[i], muB[i], sigB[i])
		}
	}
	// The resumed telemetry stream covers the whole run.
	if len(resumed.Stats) != len(full.Stats) {
		t.Fatalf("telemetry events %d vs %d", len(resumed.Stats), len(full.Stats))
	}
}

func TestResumeEquivalenceColdRefit(t *testing.T) { resumeFixture(t, false) }

func TestResumeEquivalenceWarmUpdate(t *testing.T) { resumeFixture(t, true) }

func TestResumeValidation(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(80), 60)
	var snap *Snapshot
	_, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NBatch: 5, NMax: 20, Forest: smallForest(),
			CheckpointEvery: 1, Checkpoint: func(s *Snapshot) error { snap = s; return nil }},
		rng.New(81), nil)
	if err != nil || snap == nil {
		t.Fatalf("setup run: err=%v snap=%v", err, snap)
	}

	if _, err := Resume(context.Background(), nil, sp, pool, ev, PWU{Alpha: 0.1}, Params{NMax: 20}, nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	bad := *snap
	bad.Version = 99
	if _, err := Resume(context.Background(), &bad, sp, pool, ev, PWU{Alpha: 0.1}, Params{NMax: 20}, nil); err == nil {
		t.Fatal("wrong snapshot version accepted")
	}
	otherPool := sp.SampleConfigs(rng.New(82), 60)
	if _, err := Resume(context.Background(), snap, sp, otherPool, ev, PWU{Alpha: 0.1}, Params{NMax: 20}, nil); err == nil {
		t.Fatal("mismatched pool accepted (hash check missing)")
	}
	if _, err := Resume(context.Background(), snap, sp, pool[:30], ev, PWU{Alpha: 0.1}, Params{NMax: 20}, nil); err == nil {
		t.Fatal("short pool accepted")
	}
}

func TestCheckpointCadence(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(83), 80)
	var iters []int
	_, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NBatch: 5, NMax: 40, Forest: smallForest(),
			CheckpointEvery: 3, Checkpoint: func(s *Snapshot) error { iters = append(iters, s.Iteration); return nil }},
		rng.New(84), nil)
	if err != nil {
		t.Fatal(err)
	}
	// 7 iterations total (5 -> 40 in steps of 5); snapshots at the cold
	// start (iteration 0) and every 3rd iteration.
	want := []int{0, 3, 6}
	if len(iters) != len(want) {
		t.Fatalf("checkpoints at %v, want %v", iters, want)
	}
	for i := range want {
		if iters[i] != want[i] {
			t.Fatalf("checkpoints at %v, want %v", iters, want)
		}
	}
}

func TestNoGoroutineLeakOnCancel(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(85), 80)
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ev := &flakyEvaluator{sp: sp, cancelAfter: 12, cancel: cancel}
		_, err := Run(ctx, sp, pool, ev, PWU{Alpha: 0.1},
			Params{NInit: 8, NBatch: 2, NMax: 60, Forest: smallForest()}, rng.New(uint64(86+i)), nil)
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run %d: err = %v", i, err)
		}
	}
	// Forest fitting uses bounded worker pools that must all have exited.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines %d before, %d after cancelled runs", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
