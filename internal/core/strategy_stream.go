package core

import (
	"math"

	"repro/internal/pool"
	"repro/internal/rng"
)

// PoolStream is what a streaming strategy sees each iteration: the
// remaining candidate pool as a scored stream instead of a materialized
// (X, Mu, Sigma) view. Candidate indices ("ordinals") are the candidate's
// rank among remaining candidates in source order — exactly the indices
// the in-memory Candidates view would expose for the same pool — and
// SelectStream returns them just like Strategy.Select does.
type PoolStream interface {
	// Len returns the number of remaining candidates.
	Len() int

	// BestY returns the best (smallest) observed training label so far,
	// the incumbent EI improves upon.
	BestY() float64

	// Rand returns the run's generator; streaming strategies must draw
	// from it exactly as their in-memory Select would, so both paths
	// leave the stream at the same position.
	Rand() *rng.RNG

	// Scan streams every remaining candidate through consume exactly
	// once, in unspecified order, with deterministic (ord, x, mu, sigma)
	// values. consume is never called concurrently, and x is only valid
	// during the call. Strategies may scan more than once per selection
	// (the model is fixed, so repeated scans see identical scores).
	Scan(consume func(ord int, x []float64, mu, sigma float64)) error
}

// StreamStrategy is a Strategy that can also select from a streamed pool
// without ever materializing it. The contract is bit-identity: for the
// same remaining pool, model beliefs and rng state, SelectStream must
// return exactly the indices Select would and leave the generator at the
// same position. All built-in strategies implement it; the
// pool-equivalence gate enforces the identity.
type StreamStrategy interface {
	Strategy

	// SelectStream returns the candidate ordinals to evaluate next.
	SelectStream(ps PoolStream, nBatch int) ([]int, error)
}

// clampStreamBatch mirrors clampBatch for the streaming view.
func clampStreamBatch(ps PoolStream, nBatch int) int {
	if n := ps.Len(); nBatch > n {
		nBatch = n
	}
	if nBatch < 0 {
		nBatch = 0
	}
	return nBatch
}

// selectStreamTopK runs one scan reducing score(mu, sigma) into the
// distinct top-nBatch — the streaming counterpart of the score-then-
// topKDistinctByScore shape shared by PWU, BestPerf, MaxU, EI and CV.
func selectStreamTopK(ps PoolStream, nBatch int, score func(mu, sigma float64) float64) ([]int, error) {
	nBatch = clampStreamBatch(ps, nBatch)
	if nBatch == 0 {
		return nil, nil
	}
	tk := pool.NewTopKDistinct(nBatch)
	if err := ps.Scan(func(ord int, x []float64, mu, sigma float64) {
		tk.Push(ord, score(mu, sigma), x)
	}); err != nil {
		return nil, err
	}
	return tk.Result(), nil
}

// SelectStream implements StreamStrategy.
func (p PWU) SelectStream(ps PoolStream, nBatch int) ([]int, error) {
	return selectStreamTopK(ps, nBatch, p.Score)
}

// SelectStream implements StreamStrategy.
func (BestPerf) SelectStream(ps PoolStream, nBatch int) ([]int, error) {
	return selectStreamTopK(ps, nBatch, func(mu, _ float64) float64 { return -mu })
}

// SelectStream implements StreamStrategy.
func (MaxU) SelectStream(ps PoolStream, nBatch int) ([]int, error) {
	return selectStreamTopK(ps, nBatch, func(_, sigma float64) float64 { return sigma })
}

// SelectStream implements StreamStrategy.
func (e EI) SelectStream(ps PoolStream, nBatch int) ([]int, error) {
	bestY := ps.BestY()
	return selectStreamTopK(ps, nBatch, func(mu, sigma float64) float64 {
		return e.Score(mu, sigma, bestY)
	})
}

// SelectStream implements StreamStrategy.
func (CV) SelectStream(ps PoolStream, nBatch int) ([]int, error) {
	return PWU{Alpha: 0}.SelectStream(ps, nBatch)
}

// SelectStream implements StreamStrategy. Random needs no scan at all —
// it draws ordinals directly, consuming the generator exactly as the
// in-memory Select does.
func (Random) SelectStream(ps PoolStream, nBatch int) ([]int, error) {
	nBatch = clampStreamBatch(ps, nBatch)
	return ps.Rand().Sample(ps.Len(), nBatch), nil
}

// perfCutoff computes the stage-1 performance filter size shared by PBUS
// and BRS: ceil(frac·n), at least nBatch, at most n.
func perfCutoff(n, nBatch int, frac, def float64) int {
	if frac <= 0 {
		frac = def
	}
	k := int(math.Ceil(float64(n) * frac))
	if k < nBatch {
		k = nBatch
	}
	if k > n {
		k = n
	}
	return k
}

// SelectStream implements StreamStrategy. BRS keeps the bottom-k'-by-μ
// candidate list (in bottomKByScore order) via a bounded reducer, then
// samples uniformly from it with the same generator draws as the
// in-memory path. Note the reducer holds k' = ceil(frac·n) entries — the
// strategy is defined over that subset, so O(frac·n) selection state is
// inherent to reproducing it exactly.
func (b BRS) SelectStream(ps PoolStream, nBatch int) ([]int, error) {
	nBatch = clampStreamBatch(ps, nBatch)
	if nBatch == 0 {
		return nil, nil
	}
	k := perfCutoff(ps.Len(), nBatch, b.TopFrac, 0.10)
	bk := pool.NewBottomK(k)
	if err := ps.Scan(func(ord int, _ []float64, mu, _ float64) {
		bk.Push(ord, mu, nil)
	}); err != nil {
		return nil, err
	}
	cand := bk.Result()
	pick := ps.Rand().Sample(len(cand), nBatch)
	out := make([]int, nBatch)
	for i, j := range pick {
		out[i] = cand[j]
	}
	return out, nil
}

// SelectStream implements StreamStrategy. PBUS scans twice: pass 1
// reduces the bottom-k' of μ to its boundary (the k'-th smallest under
// the (sunk μ, ordinal) order), pass 2 selects the most uncertain
// candidates inside that boundary. The model is fixed across passes, so
// pass 2 sees the exact μ values pass 1 ranked — membership by
// (μ, ordinal) comparison against the boundary reproduces the in-memory
// stage-1 candidate set without storing it.
func (p PBUS) SelectStream(ps PoolStream, nBatch int) ([]int, error) {
	nBatch = clampStreamBatch(ps, nBatch)
	if nBatch == 0 {
		return nil, nil
	}
	k := perfCutoff(ps.Len(), nBatch, p.PerfFrac, 0.10)
	bk := pool.NewBottomK(k)
	if err := ps.Scan(func(ord int, _ []float64, mu, _ float64) {
		bk.Push(ord, mu, nil)
	}); err != nil {
		return nil, err
	}
	bScore, bOrd, ok := bk.Worst()
	if !ok {
		return nil, nil
	}
	tk := pool.NewTopKDistinct(nBatch)
	if err := ps.Scan(func(ord int, x []float64, mu, sigma float64) {
		if math.IsNaN(mu) {
			mu = math.Inf(1) // the bottom-k sink, so NaN-μ candidates rank last
		}
		score := math.Inf(-1)
		if mu < bScore || (mu == bScore && ord <= bOrd) {
			score = sigma
		}
		tk.Push(ord, score, x)
	}); err != nil {
		return nil, err
	}
	return tk.Result(), nil
}
