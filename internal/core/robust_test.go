package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"repro/internal/rng"
	"repro/internal/space"
)

// hangingEvaluator blocks on the hangSet calls (1-based call numbers)
// until the evaluation context is cancelled; every other call returns
// the quadratic ground truth.
type hangingEvaluator struct {
	sp      *space.Space
	hangSet map[int]bool
	hangAll bool
	calls   int
}

func (h *hangingEvaluator) Evaluate(ctx context.Context, c space.Config) (float64, error) {
	h.calls++
	if h.hangAll || h.hangSet[h.calls] {
		<-ctx.Done()
		return 0, ctx.Err()
	}
	a := h.sp.ValueByName(c, "a")
	b := h.sp.ValueByName(c, "b")
	return (a-5)*(a-5) + (b-3)*(b-3) + 1, nil
}

// TestTimeoutCutsHangAsRetryable is the acceptance test for the
// per-evaluation deadline: an indefinite hang must be cut off within
// Timeout plus scheduling slack and then retried like any transient
// failure, completing the run.
func TestTimeoutCutsHangAsRetryable(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleDistinct(rng.New(90), 60)
	ev := &hangingEvaluator{sp: sp, hangSet: map[int]bool{3: true, 9: true}}
	start := time.Now()
	res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NBatch: 2, NMax: 16, Forest: smallForest(),
			Failure: FailurePolicy{MaxRetries: 1, Timeout: 60 * time.Millisecond}},
		rng.New(91), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainY) != 16 {
		t.Fatalf("labeled %d under injected hangs, want 16", len(res.TrainY))
	}
	agg := res.Telemetry()
	if agg.EvalTimeouts != 2 {
		t.Fatalf("telemetry timeouts = %d, want 2", agg.EvalTimeouts)
	}
	if agg.EvalRetries != 2 {
		t.Fatalf("telemetry retries = %d, want 2 (each hang retried once)", agg.EvalRetries)
	}
	// Two 60 ms hangs plus the real work; anything near seconds means a
	// hang was not cut at its deadline.
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("run took %v; hangs were not cut off near the 60ms deadline", d)
	}
}

// TestTimeoutErrorIsNotCancellation pins the error identity: a timed-out
// attempt that exhausts its retry budget must surface ErrEvalTimeout and
// must NOT look like a context cancellation, or harness layers would
// misclassify a hung evaluator as an interrupted run.
func TestTimeoutErrorIsNotCancellation(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(92), 40)
	ev := &hangingEvaluator{sp: sp, hangAll: true}
	_, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NMax: 10, Forest: smallForest(),
			Failure: FailurePolicy{Timeout: 25 * time.Millisecond}},
		rng.New(93), nil)
	if err == nil {
		t.Fatal("always-hanging evaluator completed a run")
	}
	if !errors.Is(err, ErrEvalTimeout) {
		t.Fatalf("err = %v, want ErrEvalTimeout in the chain", err)
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		t.Fatalf("timeout error %v masquerades as a context cancellation", err)
	}
}

// failNTimesEvaluator fails every configuration's first n attempts.
type failNTimesEvaluator struct {
	sp       *space.Space
	n        int
	attempts map[string]int
}

func (f *failNTimesEvaluator) Evaluate(ctx context.Context, c space.Config) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	if f.attempts == nil {
		f.attempts = map[string]int{}
	}
	k := c.Key()
	if f.attempts[k] < f.n {
		f.attempts[k]++
		return 0, fmt.Errorf("transient failure %d", f.attempts[k])
	}
	a := f.sp.ValueByName(c, "a")
	b := f.sp.ValueByName(c, "b")
	return (a-5)*(a-5) + (b-3)*(b-3) + 1, nil
}

// TestBackoffInterruptedByCancel is the regression test that a retry
// backoff sleep ends promptly on context cancellation instead of
// blocking the drain for the full backoff.
func TestBackoffInterruptedByCancel(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(94), 40)
	ev := &failNTimesEvaluator{sp: sp, n: 1000}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := Run(ctx, sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NMax: 10, Forest: smallForest(),
			Failure: FailurePolicy{MaxRetries: 1000, Backoff: time.Hour}},
		rng.New(95), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("cancellation took %v to interrupt an hour-long backoff", d)
	}
}

// TestBackoffClampedByTimeout is the regression test that a backoff
// sleep never outlives the per-evaluation deadline: with an hour-long
// Backoff and a 30ms Timeout the retry must proceed promptly.
func TestBackoffClampedByTimeout(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleDistinct(rng.New(96), 60)
	ev := &failNTimesEvaluator{sp: sp, n: 1}
	start := time.Now()
	res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NMax: 12, Forest: smallForest(),
			Failure: FailurePolicy{MaxRetries: 2, Backoff: time.Hour, Timeout: 30 * time.Millisecond}},
		rng.New(97), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainY) != 12 {
		t.Fatalf("labeled %d, want 12", len(res.TrainY))
	}
	if res.Telemetry().EvalRetries == 0 {
		t.Fatal("no retries recorded; the clamp was never exercised")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("run took %v; backoff was not clamped to the 30ms timeout", d)
	}
}

// TestNoGoroutineLeakCancelDuringHang cancels runs while a hang is in
// flight and checks the engine (and the evaluator goroutine it is
// blocked in) fully unwinds.
func TestNoGoroutineLeakCancelDuringHang(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(98), 60)
	before := runtime.NumGoroutine()
	for i := 0; i < 4; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ev := &hangingEvaluator{sp: sp, hangSet: map[int]bool{7: true}}
		errc := make(chan error, 1)
		go func() {
			_, err := Run(ctx, sp, pool, ev, PWU{Alpha: 0.1},
				Params{NInit: 5, NBatch: 1, NMax: 30, Forest: smallForest()}, rng.New(uint64(99+i)), nil)
			errc <- err
		}()
		time.Sleep(30 * time.Millisecond) // let the run reach the hang
		cancel()
		select {
		case err := <-errc:
			if err == nil {
				t.Fatalf("run %d completed through an unbounded hang", i)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("run %d did not unwind after cancellation mid-hang", i)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutines %d before, %d after cancelled mid-hang runs", before, n)
	}
}

// intervalModel gives the guard a controlled prediction interval.
type intervalModel struct{ mu, sigma float64 }

func (m intervalModel) Predict(x []float64) float64 { return m.mu }
func (m intervalModel) PredictBatch(X [][]float64) (mu, sigma []float64) {
	mu = make([]float64, len(X))
	sigma = make([]float64, len(X))
	for i := range X {
		mu[i], sigma[i] = m.mu, m.sigma
	}
	return mu, sigma
}

// corruptingEvaluator returns clean = 1.0 except on the corrupt calls
// (1-based), which return 1.0 * factor.
type corruptingEvaluator struct {
	corrupt map[int]bool
	factor  float64
	calls   int
}

func (e *corruptingEvaluator) Evaluate(ctx context.Context, c space.Config) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	e.calls++
	if e.corrupt[e.calls] {
		return e.factor, nil
	}
	return 1.0, nil
}

func guardParams(guard LabelGuard) Params {
	return Params{
		NInit: 5, NBatch: 1, NMax: 12,
		Fitter: func(X [][]float64, y []float64, fs []space.Feature, r *rng.RNG) (Model, error) {
			return intervalModel{mu: 1, sigma: 0.05}, nil
		},
		Guard: guard,
	}
}

// TestGuardRemeasuresOutlier: a corrupted loop-phase label (8x the model
// interval) must be flagged, re-measured, and replaced by the clean
// median, with the wasted machine time billed as guard cost.
func TestGuardRemeasuresOutlier(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleDistinct(rng.New(100), 40)
	// Call 7 is the second loop iteration's measurement (5 cold-start
	// calls, then one per iteration).
	ev := &corruptingEvaluator{corrupt: map[int]bool{7: true}, factor: 8}
	res, err := Run(context.Background(), sp, pool, ev, Random{},
		guardParams(LabelGuard{Z: 4, K: 3}), rng.New(101), nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, y := range res.TrainY {
		if y != 1.0 {
			t.Fatalf("TrainY[%d] = %v; corrupted label reached the training set", i, y)
		}
	}
	agg := res.Telemetry()
	if agg.GuardFlagged != 1 || agg.GuardRemeasured != 1 || agg.GuardQuarantined != 0 {
		t.Fatalf("guard counters flagged/remeasured/quarantined = %d/%d/%d, want 1/1/0",
			agg.GuardFlagged, agg.GuardRemeasured, agg.GuardQuarantined)
	}
	// Machine time: corrupted 8.0 + three re-measurements of 1.0, of
	// which the 1.0 median became the label -> 10.0 of guard overhead.
	if math.Abs(res.GuardCost-10) > 1e-9 || math.Abs(agg.GuardCost-10) > 1e-9 {
		t.Fatalf("guard cost %v (telemetry %v), want 10", res.GuardCost, agg.GuardCost)
	}
	var sum float64
	for _, y := range res.TrainY {
		sum += y
	}
	if math.Abs(res.LabelCost()-(sum+10)) > 1e-9 {
		t.Fatalf("LabelCost %v does not bill guard activity", res.LabelCost())
	}
}

// TestGuardQuarantinesOutlier: with GuardQuarantine the flagged
// configuration is dropped untrained and the run still reaches NMax.
func TestGuardQuarantinesOutlier(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleDistinct(rng.New(102), 40)
	ev := &corruptingEvaluator{corrupt: map[int]bool{7: true}, factor: 8}
	res, err := Run(context.Background(), sp, pool, ev, Random{},
		guardParams(LabelGuard{Z: 4, Action: GuardQuarantine}), rng.New(103), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainY) != 12 {
		t.Fatalf("labeled %d, want 12 (quarantine must not shrink the target)", len(res.TrainY))
	}
	for i, y := range res.TrainY {
		if y != 1.0 {
			t.Fatalf("TrainY[%d] = %v; corrupted label reached the training set", i, y)
		}
	}
	agg := res.Telemetry()
	if agg.GuardQuarantined != 1 || agg.GuardRemeasured != 0 {
		t.Fatalf("guard counters remeasured/quarantined = %d/%d, want 0/1",
			agg.GuardRemeasured, agg.GuardQuarantined)
	}
	if math.Abs(res.GuardCost-8) > 1e-9 {
		t.Fatalf("guard cost %v, want 8 (the quarantined measurement)", res.GuardCost)
	}
	// 5 cold-start + 7 accepted loop labels + the 1 quarantined call.
	if ev.calls != 13 {
		t.Fatalf("evaluator calls %d, want 13 (no re-measurements under quarantine)", ev.calls)
	}
}

// TestGuardPassesHonestLabels: an evaluator inside the interval is never
// flagged, so guarded and unguarded runs are bit-identical.
func TestGuardPassesHonestLabels(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleDistinct(rng.New(104), 40)
	run := func(guard LabelGuard) *Result {
		ev := &corruptingEvaluator{} // always clean
		res, err := Run(context.Background(), sp, pool, ev, Random{}, guardParams(guard), rng.New(105), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	guarded := run(LabelGuard{Z: 4, K: 3})
	plain := run(LabelGuard{})
	if guarded.Telemetry().GuardFlagged != 0 {
		t.Fatalf("honest labels flagged %d times", guarded.Telemetry().GuardFlagged)
	}
	if len(guarded.TrainY) != len(plain.TrainY) {
		t.Fatalf("guarded run labeled %d, plain %d", len(guarded.TrainY), len(plain.TrainY))
	}
	for i := range plain.TrainY {
		if guarded.TrainY[i] != plain.TrainY[i] {
			t.Fatalf("label %d differs: guarded %v, plain %v", i, guarded.TrainY[i], plain.TrainY[i])
		}
	}
	if guarded.RNGState != plain.RNGState {
		t.Fatal("guard consumed loop-generator randomness on honest labels")
	}
}

// TestGuardCostSurvivesSnapshot pins the Snapshot round trip of the new
// GuardCost bookkeeping field.
func TestGuardCostSurvivesSnapshot(t *testing.T) {
	sp, _ := quadSpace(t)
	pool := sp.SampleDistinct(rng.New(106), 40)
	ev := &corruptingEvaluator{corrupt: map[int]bool{7: true}, factor: 8}
	var snap *Snapshot
	params := guardParams(LabelGuard{Z: 4, K: 3})
	// The guard needs a resumable model; the const-model Fitter is not,
	// so capture the snapshot only for its bookkeeping fields.
	params.CheckpointEvery = 1
	params.Checkpoint = func(s *Snapshot) error { snap = s; return nil }
	res, err := Run(context.Background(), sp, pool, ev, Random{}, params, rng.New(107), nil)
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot captured")
	}
	if snap.GuardCost != res.GuardCost {
		t.Fatalf("snapshot guard cost %v, result %v", snap.GuardCost, res.GuardCost)
	}
	if res.GuardCost == 0 {
		t.Fatal("fixture produced no guard cost")
	}
}
