package core

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/space"
)

// assertSameResult requires two runs to be bit-identical in everything
// deterministic: labels, labeled configs, selection records and the final
// generator stream position.
func assertSameResult(t *testing.T, label string, got, want *Result) {
	t.Helper()
	if got.Iterations != want.Iterations {
		t.Fatalf("%s: %d iterations, want %d", label, got.Iterations, want.Iterations)
	}
	if len(got.TrainY) != len(want.TrainY) {
		t.Fatalf("%s: %d labels, want %d", label, len(got.TrainY), len(want.TrainY))
	}
	for i := range want.TrainY {
		if got.TrainY[i] != want.TrainY[i] {
			t.Fatalf("%s: label %d is %v, want %v", label, i, got.TrainY[i], want.TrainY[i])
		}
		if got.TrainConfigs[i].Key() != want.TrainConfigs[i].Key() {
			t.Fatalf("%s: config %d is %v, want %v", label, i, got.TrainConfigs[i], want.TrainConfigs[i])
		}
	}
	if len(got.Selections) != len(want.Selections) {
		t.Fatalf("%s: %d selection records, want %d", label, len(got.Selections), len(want.Selections))
	}
	for i := range want.Selections {
		g, w := got.Selections[i], want.Selections[i]
		if g.Config.Key() != w.Config.Key() || g.Mu != w.Mu || g.Sigma != w.Sigma || g.Y != w.Y || g.Iteration != w.Iteration {
			t.Fatalf("%s: selection %d is %+v, want %+v", label, i, g, w)
		}
	}
	if got.RNGState != want.RNGState {
		t.Fatalf("%s: final generator state diverged", label)
	}
}

func streamParams() Params {
	return Params{NInit: 6, NBatch: 2, NMax: 18, Forest: smallForest(), RecordSelections: true}
}

// TestRunStreamMatchesRun is the pool-equivalence gate in miniature:
// for every paper strategy (plus the extension baselines), the streamed
// engine over a lazily generated pool must reproduce the in-memory
// engine's run bit for bit — same labels, same selections, same final
// generator state — for every shard size and worker count.
func TestRunStreamMatchesRun(t *testing.T) {
	sp, ev := quadSpace(t)
	const poolSeed, n = 91, 120
	mem := sp.SampleConfigs(rng.New(poolSeed), n)

	strategies := []Strategy{
		PWU{Alpha: 0.05}, PBUS{}, BRS{}, BestPerf{}, MaxU{}, Random{}, CV{}, EI{},
	}
	type variant struct {
		name string
		src  pool.Source
	}
	for _, strat := range strategies {
		strat := strat
		t.Run(strat.Name(), func(t *testing.T) {
			want, err := Run(context.Background(), sp, mem, ev, strat, streamParams(), rng.New(7), nil)
			if err != nil {
				t.Fatal(err)
			}
			variants := []variant{
				{"uniform", pool.NewUniform(sp, poolSeed, n)},
				{"slice", pool.NewSlice(sp, mem)},
			}
			shards := []int{64, 1024, n}
			workerSet := []int{1, 2, runtime.GOMAXPROCS(0)}
			for _, v := range variants {
				for _, shard := range shards {
					for _, workers := range workerSet {
						p := streamParams()
						p.StreamShard, p.StreamWorkers = shard, workers
						got, err := RunStream(context.Background(), v.src, ev, strat, p, rng.New(7), nil)
						if err != nil {
							t.Fatal(err)
						}
						assertSameResult(t, fmt.Sprintf("%s src=%s shard=%d workers=%d", strat.Name(), v.name, shard, workers), got, want)
					}
				}
			}
		})
	}
}

// TestRunStreamEnumerationSource drives the streamed engine over a lazily
// enumerated full space — the never-materialized path a 10^7 space uses.
func TestRunStreamEnumerationSource(t *testing.T) {
	sp, ev := quadSpace(t)
	src, err := pool.NewEnumeration(sp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(context.Background(), sp, sp.Enumerate(), ev, PWU{Alpha: 0.05}, streamParams(), rng.New(19), nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunStream(context.Background(), src, ev, PWU{Alpha: 0.05}, streamParams(), rng.New(19), nil)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "enumeration", got, want)
}

// TestResumeStreamEquivalence: interrupting a streamed run at a snapshot
// boundary and resuming reproduces the uninterrupted run exactly.
func TestResumeStreamEquivalence(t *testing.T) {
	sp, ev := quadSpace(t)
	const poolSeed, n = 33, 100
	src := pool.NewUniform(sp, poolSeed, n)

	p := streamParams()
	want, err := RunStream(context.Background(), src, ev, PWU{Alpha: 0.05}, p, rng.New(5), nil)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []*Snapshot
	p2 := streamParams()
	p2.CheckpointEvery = 2
	p2.Checkpoint = func(s *Snapshot) error { snaps = append(snaps, s); return nil }
	if _, err := RunStream(context.Background(), src, ev, PWU{Alpha: 0.05}, p2, rng.New(5), nil); err != nil {
		t.Fatal(err)
	}
	if len(snaps) < 2 {
		t.Fatalf("only %d snapshots taken", len(snaps))
	}
	for _, snap := range snaps {
		if !snap.Streamed {
			t.Fatal("streamed run produced a non-streamed snapshot")
		}
		got, err := ResumeStream(context.Background(), snap, src, ev, PWU{Alpha: 0.05}, streamParams(), nil)
		if err != nil {
			t.Fatalf("resume from iteration %d: %v", snap.Iteration, err)
		}
		assertSameResult(t, fmt.Sprintf("resume@%d", snap.Iteration), got, want)
	}
}

// TestResumeStreamRejectsMismatches: snapshot/source cross-checks.
func TestResumeStreamRejectsMismatches(t *testing.T) {
	sp, ev := quadSpace(t)
	src := pool.NewUniform(sp, 1, 80)
	p := streamParams()
	var snap *Snapshot
	p.CheckpointEvery = 1
	p.Checkpoint = func(s *Snapshot) error { snap = s; return nil }
	if _, err := RunStream(context.Background(), src, ev, PWU{Alpha: 0.05}, p, rng.New(2), nil); err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("no snapshot taken")
	}
	strat := PWU{Alpha: 0.05}
	if _, err := ResumeStream(context.Background(), snap, pool.NewUniform(sp, 2, 80), ev, strat, streamParams(), nil); err == nil {
		t.Fatal("wrong-seed source accepted")
	}
	if _, err := ResumeStream(context.Background(), snap, pool.NewUniform(sp, 1, 81), ev, strat, streamParams(), nil); err == nil {
		t.Fatal("wrong-size source accepted")
	}
	// A streamed snapshot cannot be resumed by the in-memory Resume, and
	// an in-memory snapshot cannot be resumed by ResumeStream.
	memPool := sp.SampleConfigs(rng.New(1), 80)
	if _, err := Resume(context.Background(), snap, sp, memPool, ev, strat, streamParams(), nil); err == nil {
		t.Fatal("Resume accepted a streamed snapshot")
	}
	var memSnap *Snapshot
	pm := streamParams()
	pm.CheckpointEvery = 1
	pm.Checkpoint = func(s *Snapshot) error { memSnap = s; return nil }
	if _, err := Run(context.Background(), sp, memPool, ev, strat, pm, rng.New(2), nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ResumeStream(context.Background(), memSnap, pool.NewUniform(sp, 1, 80), ev, strat, streamParams(), nil); err == nil {
		t.Fatal("ResumeStream accepted an in-memory snapshot")
	}
}

// TestRunStreamValidation mirrors TestRunValidation for the streamed
// entry point.
func TestRunStreamValidation(t *testing.T) {
	sp, ev := quadSpace(t)
	src := pool.NewUniform(sp, 1, 50)
	r := rng.New(2)
	strat := PWU{Alpha: 0.05}
	if _, err := RunStream(context.Background(), nil, ev, strat, Params{}, r, nil); err == nil {
		t.Fatal("nil source accepted")
	}
	if _, err := RunStream(context.Background(), src, nil, strat, Params{}, r, nil); err == nil {
		t.Fatal("nil evaluator accepted")
	}
	if _, err := RunStream(context.Background(), src, ev, nil, Params{}, r, nil); err == nil {
		t.Fatal("nil strategy accepted")
	}
	if _, err := RunStream(context.Background(), src, ev, strat, Params{}, nil, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := RunStream(context.Background(), pool.NewUniform(sp, 1, 5), ev, strat, Params{NInit: 10}, r, nil); err == nil {
		t.Fatal("pool smaller than NInit accepted")
	}
	if _, err := RunStream(context.Background(), src, ev, strat, Params{NMax: 1000}, r, nil); err == nil {
		t.Fatal("NMax beyond pool accepted")
	}
	if _, err := RunStream(context.Background(), src, ev, strat, Params{NInit: 40, NMax: 20}, r, nil); err == nil {
		t.Fatal("NInit beyond NMax accepted")
	}
	if _, err := RunStream(context.Background(), src, ev, memOnlyStrategy{}, Params{NInit: 5, NMax: 10}, r, nil); err == nil {
		t.Fatal("non-streaming strategy accepted")
	}
}

// memOnlyStrategy implements Strategy but not StreamStrategy.
type memOnlyStrategy struct{}

func (memOnlyStrategy) Name() string                           { return "MemOnly" }
func (memOnlyStrategy) Select(c *Candidates, nBatch int) []int { return []int{0} }

// TestFetchConfigsSequentialSource: the generation-only fetch path (no
// random access) must return the right configs for repeated and
// out-of-order global indices.
func TestFetchConfigsSequentialSource(t *testing.T) {
	sp, _ := quadSpace(t)
	src := pool.NewUniform(sp, 8, 60) // Uniform has no At — exercises the scan path
	if _, ok := pool.Source(src).(pool.RandomAccess); ok {
		t.Fatal("test premise broken: Uniform gained random access")
	}
	all := make([]space.Config, 0, 60)
	buf := []space.Config{make(space.Config, sp.NumParams())}
	src.Reset()
	for src.Next(buf) == 1 {
		all = append(all, buf[0].Clone())
	}
	e := &Session{sp: sp, src: src, p: Params{StreamShard: 7}.Normalized()}
	globals := []int{59, 0, 17, 17, 3, 58}
	got, err := e.fetchConfigs(globals)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range globals {
		if got[i].Key() != all[g].Key() {
			t.Fatalf("fetch[%d] (global %d) = %v, want %v", i, g, got[i], all[g])
		}
	}
}
