package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/space"
)

// This file is the in-process driver side of the ask-tell split: the
// retry/timeout/backoff machinery that used to live inside the
// monolithic loop, now operating on the caller's side of a Session.
// Run/RunStream/Resume/ResumeStream are driveSession over an in-process
// labeler; a remote caller (internal/server's clients) implements the
// same contract over HTTP.

// labeler measures configurations under a FailurePolicy and folds the
// attempt telemetry (retries, timeouts, failed-attempt cost) into the
// Label, mirroring the historical evalConfig decision for decision.
type labeler struct {
	ev  Evaluator
	pol FailurePolicy
}

// label measures cfg. A returned error aborts the run (cancellation, a
// run-level evaluator stop, or an exhausted retry budget under
// FailAbort); FailSkip surfaces as a Label with Skip set. Even on error
// the returned Label carries the failed-attempt cost accumulated so
// far, so the driver can bill it before bailing out.
func (lb *labeler) label(ctx context.Context, cfg space.Config) (Label, error) {
	var l Label
	pol := lb.pol
	delay := pol.Backoff
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return l, err
		}
		y, err, timedOut := lb.attempt(ctx, cfg)
		if err == nil {
			l.Y = y
			return l, nil
		}
		// A failed run that still consumed machine time bills the
		// labeling budget: the paper's CC counts time spent, not
		// labels obtained.
		if y > 0 && !math.IsNaN(y) && !math.IsInf(y, 0) {
			l.FailedCost += y
		}
		if ctx.Err() != nil {
			return l, err
		}
		if timedOut {
			// The attempt outlived its per-evaluation deadline while
			// the run's context is still live: a hung measurement, and
			// as retryable as a crashed one.
			l.Timeouts++
			err = fmt.Errorf("%w after %v", ErrEvalTimeout, pol.Timeout)
		} else if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Context errors that are neither the run's nor the
			// attempt deadline's come from the evaluator's own
			// machinery; treat them as a run-level stop, as the engine
			// always has.
			return l, err
		}
		if attempt >= pol.MaxRetries {
			if pol.OnExhausted == FailSkip {
				l.Skip = true
				return l, nil
			}
			return l, fmt.Errorf("evaluation of %v failed after %d attempts: %w", cfg, attempt+1, err)
		}
		l.Retries++
		if delay > 0 {
			sleep := delay
			if pol.Timeout > 0 && sleep > pol.Timeout {
				// A backoff longer than an attempt may run would stall
				// the loop worse than the hang the timeout just cut.
				sleep = pol.Timeout
			}
			if err := sleepCtx(ctx, sleep); err != nil {
				return l, err
			}
			delay *= 2
			if pol.MaxBackoff > 0 && delay > pol.MaxBackoff {
				delay = pol.MaxBackoff
			}
		}
	}
}

// attempt runs one evaluation attempt under the per-evaluation deadline.
// timedOut reports that the attempt's own deadline expired while the
// run's context was still live.
func (lb *labeler) attempt(ctx context.Context, cfg space.Config) (y float64, err error, timedOut bool) {
	timeout := lb.pol.Timeout
	if timeout <= 0 {
		y, err = lb.ev.Evaluate(ctx, cfg)
		return y, err, false
	}
	actx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	y, err = lb.ev.Evaluate(actx, cfg)
	if err != nil && errors.Is(actx.Err(), context.DeadlineExceeded) && ctx.Err() == nil {
		timedOut = true
	}
	return y, err, timedOut
}

// driveSession runs a session to completion with an in-process
// evaluator: Ask a batch, label it one configuration at a time (so
// guard-inserted re-measurements stay aligned), Tell each label back.
// On errors that interrupt the run midway the partial Result is
// returned alongside the error, exactly like the historical loops.
//
// A BatchEvaluator with the label guard disabled takes the batch fast
// path: the whole pending queue is measured as one call — one network
// round trip per ask batch when the evaluator is remote — and told
// back at once. The per-config order inside the batch matches the
// sequential path exactly, so the measurement stream is bit-identical.
// With the guard enabled the driver stays on the per-config path:
// guard-inserted re-measurements must be measured immediately after
// the flag, before any later queue item consumes the stream.
func driveSession(ctx context.Context, s *Session, ev Evaluator) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	lb := &labeler{ev: ev, pol: s.p.Failure}
	be, isBatch := ev.(BatchEvaluator)
	useBatch := isBatch && !s.p.Guard.enabled()
	for !s.Done() {
		if _, err := s.Ask(ctx); err != nil {
			return s.Result(), err
		}
		for len(s.queue) > 0 {
			if useBatch {
				cfgs := make([]space.Config, len(s.queue))
				for i := range s.queue {
					cfgs[i] = s.queue[i].cfg
				}
				labels, err := be.EvaluateBatch(ctx, cfgs)
				if err != nil {
					return s.Result(), s.evalError(err)
				}
				if _, err := s.Tell(ctx, labels); err != nil {
					return s.Result(), err
				}
				continue
			}
			l, err := lb.label(ctx, s.queue[0].cfg)
			if err != nil {
				s.billFailed(l.FailedCost)
				return s.Result(), s.evalError(err)
			}
			if _, err := s.Tell(ctx, []Label{l}); err != nil {
				return s.Result(), err
			}
		}
	}
	return s.Result(), nil
}

// sleepCtx sleeps for d unless ctx is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
