package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/forest"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/space"
)

// streamScorer adapts a Model without a native ScoreBatch to the pool
// scorer contract. The Model interface makes no concurrency promise, so
// calls are serialized; forests bypass this adapter (Forest.ScoreBatch is
// lock-free and concurrent-safe).
type streamScorer struct {
	mu sync.Mutex
	m  Model
}

// ScoreBatch implements pool.BatchScorer.
func (s *streamScorer) ScoreBatch(X [][]float64, mu, sigma []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pm, ps := s.m.PredictBatch(X)
	copy(mu, pm)
	copy(sigma, ps)
}

// batchScorer returns the current model as a pool scorer.
func (e *engine) batchScorer() pool.BatchScorer {
	if bs, ok := e.model.(pool.BatchScorer); ok {
		return bs
	}
	return &streamScorer{m: e.model}
}

// quantizable is the quantized-view hook Params.Quant needs from the
// model; *forest.Forest implements it.
type quantizable interface {
	Quantized() (*forest.QuantScorer, error)
}

// scanScorer returns the scorer the streamed pool scans run on: the
// model's quantized view under Params.Quant (refreshing the compiled
// quantized slots, so warm updates recompile only the trees they
// replaced), the model itself otherwise.
func (e *engine) scanScorer() (pool.BatchScorer, error) {
	if !e.p.Quant {
		return e.batchScorer(), nil
	}
	q, ok := e.model.(quantizable)
	if !ok {
		return nil, fmt.Errorf("core: Params.Quant needs a model with a quantized scorer, %T has none", e.model)
	}
	return q.Quantized()
}

// poolStream is the engine's PoolStream view: the source minus the taken
// set, scored by the current model.
type poolStream struct {
	e     *engine
	bestY float64
}

// Len implements PoolStream.
func (ps *poolStream) Len() int { return ps.e.src.Len() - len(ps.e.taken) }

// BestY implements PoolStream.
func (ps *poolStream) BestY() float64 { return ps.bestY }

// Rand implements PoolStream.
func (ps *poolStream) Rand() *rng.RNG { return ps.e.r }

// Scan implements PoolStream.
func (ps *poolStream) Scan(consume func(ord int, x []float64, mu, sigma float64)) error {
	sc, err := ps.e.scanScorer()
	if err != nil {
		return err
	}
	cfg := pool.ScanConfig{
		Shard:   ps.e.p.StreamShard,
		Workers: ps.e.p.StreamWorkers,
		Skip:    ps.e.taken,
	}
	// The cross-scan cache needs the per-slot scoring contract; the
	// serialized fallback scorer for plain Models doesn't have it.
	if _, ok := sc.(pool.SlotScorer); ok {
		cfg.Cache = ps.e.cache
	}
	return pool.Scan(ps.e.src, sc, cfg, consume)
}

// RunStream executes Algorithm 1 over a lazily generated candidate pool.
//
// It is Run for pools too large to materialize: candidates come from a
// deterministic pool.Source instead of a []space.Config slice, each
// iteration's scoring streams shard-by-shard through the model on a
// bounded set of worker buffers (peak memory O(workers × shard), never
// O(pool)), and the strategy reduces the scored stream with the exact
// selection contract of the in-memory helpers. For the same candidate
// sequence, evaluator, strategy, params and generator, RunStream's result
// is bit-identical to Run's — same labels, same selections, same RNG
// stream position — invariant across shard sizes and worker counts (the
// pool-equivalence gate).
//
// strat must implement StreamStrategy (all built-in strategies do).
// Context handling, failure policy, label guard, telemetry and
// checkpointing behave exactly as in Run; snapshots record the source
// fingerprint and the taken set instead of the remaining list, and are
// resumed with ResumeStream.
func RunStream(ctx context.Context, src pool.Source, ev Evaluator, strat Strategy, params Params, r *rng.RNG, obs Observer) (*Result, error) {
	p := params.Normalized()
	if src == nil {
		return nil, fmt.Errorf("core: nil source")
	}
	sp := src.Space()
	if sp == nil {
		return nil, fmt.Errorf("core: source has nil space")
	}
	if ev == nil || strat == nil || r == nil {
		return nil, fmt.Errorf("core: nil evaluator, strategy or generator")
	}
	ss, ok := strat.(StreamStrategy)
	if !ok {
		return nil, fmt.Errorf("core: strategy %q does not support streaming selection", strat.Name())
	}
	n := src.Len()
	if n < p.NInit {
		return nil, fmt.Errorf("core: pool size %d smaller than NInit %d", n, p.NInit)
	}
	if p.NMax > n {
		return nil, fmt.Errorf("core: NMax %d exceeds pool size %d", p.NMax, n)
	}
	if p.NInit > p.NMax {
		return nil, fmt.Errorf("core: NInit %d exceeds NMax %d", p.NInit, p.NMax)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	e := &engine{
		ctx: ctx, sp: sp, src: src, ev: ev, strat: strat, ss: ss, p: p, r: r, obs: obs,
		res: &Result{},
	}
	e.initStream()
	defer e.captureRNG()

	if err := e.streamColdStart(); err != nil {
		return e.res, err
	}
	return e.streamLoop()
}

// markTaken inserts global index g into the sorted taken set.
func (e *engine) markTaken(g int) {
	i := sort.SearchInts(e.taken, g)
	e.taken = append(e.taken, 0)
	copy(e.taken[i+1:], e.taken[i:])
	e.taken[i] = g
}

// ordToGlobal maps a candidate ordinal — its rank among non-taken
// candidates in source order, the index space strategies select in — to
// the candidate's global source index.
func (e *engine) ordToGlobal(ord int) int {
	g := ord
	for _, t := range e.taken {
		if t <= g {
			g++
		} else {
			break
		}
	}
	return g
}

// fetchConfigs materializes the configurations at the given global source
// indices (which may repeat or arrive in any order): directly for
// random-access sources, otherwise with one generation-only pass over the
// stream — cheap, since nothing is encoded or scored.
func (e *engine) fetchConfigs(globals []int) ([]space.Config, error) {
	d := e.sp.NumParams()
	out := make([]space.Config, len(globals))
	if ra, ok := e.src.(pool.RandomAccess); ok {
		for i, g := range globals {
			c := make(space.Config, d)
			ra.At(g, c)
			out[i] = c
		}
		return out, nil
	}
	order := make([]int, len(globals))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return globals[order[a]] < globals[order[b]] })
	shard := e.p.StreamShard
	if shard <= 0 {
		shard = 1024
	}
	buf := make([]space.Config, shard)
	flat := make([]int, shard*d)
	for i := range buf {
		buf[i] = space.Config(flat[i*d : (i+1)*d : (i+1)*d])
	}
	e.src.Reset()
	base, w := 0, 0
	for w < len(order) {
		n := e.src.Next(buf)
		if n == 0 {
			return nil, fmt.Errorf("core: source ended at %d candidates before index %d", base, globals[order[w]])
		}
		for w < len(order) && globals[order[w]] < base+n {
			out[order[w]] = buf[globals[order[w]]-base].Clone()
			w++
		}
		base += n
	}
	return out, nil
}

// streamColdStart labels the uniform NInit sample and fits the first
// model — the same generator draw, labeling order and fit as coldStart,
// addressed through the source instead of a materialized pool.
func (e *engine) streamColdStart() error {
	stats := IterStats{Iteration: 0}
	initSel := e.r.Sample(e.src.Len(), e.p.NInit)
	cfgs, err := e.fetchConfigs(initSel)
	if err != nil {
		return fmt.Errorf("core: cold-start fetch: %w", err)
	}
	evalStart := time.Now()
	for i, g := range initSel {
		e.markTaken(g)
		cfg := cfgs[i]
		y, rep, err := e.evalConfig(cfg, &stats)
		if err != nil {
			stats.EvalTime = time.Since(evalStart)
			return fmt.Errorf("core: cold-start evaluation: %w", err)
		}
		if rep.skipped {
			continue
		}
		e.res.TrainConfigs = append(e.res.TrainConfigs, cfg)
		e.res.TrainY = append(e.res.TrainY, y)
		e.labelSum += y
	}
	stats.EvalTime = time.Since(evalStart)

	if len(e.res.TrainY) == 0 {
		return fmt.Errorf("core: every cold-start evaluation failed: %w", ErrPoolExhausted)
	}
	for _, cfg := range e.res.TrainConfigs {
		e.trainX = append(e.trainX, e.sp.Encode(cfg))
	}

	fitStart := time.Now()
	model, err := e.fitter(e.trainX, e.res.TrainY, e.features, e.r.Split())
	if err != nil {
		return fmt.Errorf("core: cold-start fit: %w", err)
	}
	stats.FitTime = time.Since(fitStart)
	stats.Samples = len(e.res.TrainY)
	e.model = model
	e.res.Model = model

	if err := e.observe(stats); err != nil {
		return err
	}
	return e.checkpoint(false)
}

// streamLoop runs the iteration phase over the streamed pool until NMax
// labels are collected, mirroring loop() decision for decision.
func (e *engine) streamLoop() (*Result, error) {
	for len(e.res.TrainY) < e.p.NMax {
		if err := e.ctx.Err(); err != nil {
			e.drainCheckpoint()
			return e.res, fmt.Errorf("core: interrupted after %d iterations (%d labels): %w",
				e.iter, len(e.res.TrainY), err)
		}
		remaining := e.src.Len() - len(e.taken)
		if remaining == 0 {
			return e.res, ErrPoolExhausted
		}
		e.iter++
		e.res.Iterations = e.iter
		stats := IterStats{Iteration: e.iter}
		batch := e.p.NBatch
		if rem := e.p.NMax - len(e.res.TrainY); batch > rem {
			batch = rem
		}

		selStart := time.Now()
		bestY := e.res.TrainY[0]
		for _, y := range e.res.TrainY[1:] {
			if y < bestY {
				bestY = y
			}
		}
		sel, err := e.ss.SelectStream(&poolStream{e: e, bestY: bestY}, batch)
		if err != nil {
			return e.res, fmt.Errorf("core: streaming selection at iteration %d: %w", e.iter, err)
		}
		stats.SelectTime = time.Since(selStart)
		if len(sel) == 0 {
			return e.res, fmt.Errorf("core: strategy %q selected nothing at iteration %d", e.strat.Name(), e.iter)
		}

		globals := make([]int, len(sel))
		seen := make(map[int]bool, len(sel))
		for i, o := range sel {
			if o < 0 || o >= remaining {
				return e.res, fmt.Errorf("core: strategy %q returned out-of-range index %d", e.strat.Name(), o)
			}
			g := e.ordToGlobal(o)
			if seen[g] {
				return e.res, fmt.Errorf("core: strategy %q returned duplicate index %d", e.strat.Name(), o)
			}
			seen[g] = true
			globals[i] = g
		}
		cfgs, err := e.fetchConfigs(globals)
		if err != nil {
			return e.res, fmt.Errorf("core: iteration %d: %w", e.iter, err)
		}
		// Selection-time model beliefs, for the guard and the selection
		// record: PredictBatch rows are bit-identical to the values the
		// scan's ScoreBatch produced for the same candidates.
		selX := e.sp.EncodeAll(cfgs)
		selMu, selSigma := e.model.PredictBatch(selX)

		evalStart := time.Now()
		for i, g := range globals {
			e.markTaken(g)
			cfg := cfgs[i]
			y, rep, err := e.evalConfig(cfg, &stats)
			if err != nil {
				stats.EvalTime = time.Since(evalStart)
				return e.res, fmt.Errorf("core: iteration %d: %w", e.iter, err)
			}
			if rep.skipped {
				continue
			}
			if e.p.Guard.enabled() {
				gy, quarantined, gerr := e.guardLabel(cfg, y, selMu[i], selSigma[i], &stats)
				if gerr != nil {
					stats.EvalTime = time.Since(evalStart)
					return e.res, fmt.Errorf("core: iteration %d: label guard: %w", e.iter, gerr)
				}
				if quarantined {
					continue
				}
				y = gy
			}
			e.res.TrainConfigs = append(e.res.TrainConfigs, cfg)
			e.res.TrainY = append(e.res.TrainY, y)
			e.labelSum += y
			e.trainX = append(e.trainX, selX[i])
			if e.p.RecordSelections {
				e.res.Selections = append(e.res.Selections, Selection{
					Config: cfg, Mu: selMu[i], Sigma: selSigma[i], Y: y, Iteration: e.iter,
				})
			}
		}
		stats.EvalTime = time.Since(evalStart)

		fitStart := time.Now()
		var ferr error
		if u, ok := e.model.(Updatable); e.p.WarmUpdate && ok {
			ferr = u.Update(e.trainX, e.res.TrainY, e.r.Split())
		} else {
			e.model, ferr = e.fitter(e.trainX, e.res.TrainY, e.features, e.r.Split())
		}
		if ferr != nil {
			return e.res, fmt.Errorf("core: refit at iteration %d: %w", e.iter, ferr)
		}
		stats.FitTime = time.Since(fitStart)
		stats.Samples = len(e.res.TrainY)
		e.res.Model = e.model

		if err := e.observe(stats); err != nil {
			return e.res, err
		}
		if err := e.checkpoint(false); err != nil {
			return e.res, err
		}
	}
	return e.res, nil
}

// ResumeStream continues a streamed run from a Snapshot taken by
// RunStream, bit-identically to the uninterrupted run. The caller
// regenerates the deterministic inputs — the source (validated against
// the snapshot's fingerprint), the evaluator, the strategy and the params
// — and the snapshot restores the labeled set, the taken set, the loop
// generator, the fitted model and, for StatefulEvaluator evaluators, the
// noise stream.
func ResumeStream(ctx context.Context, snap *Snapshot, src pool.Source, ev Evaluator, strat Strategy, params Params, obs Observer) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if snap.Version != snapshotVersion {
		return nil, fmt.Errorf("core: snapshot version %d, engine speaks %d", snap.Version, snapshotVersion)
	}
	if !snap.Streamed {
		return nil, fmt.Errorf("core: snapshot was taken by an in-memory run; use Resume")
	}
	p := params.Normalized()
	if src == nil {
		return nil, fmt.Errorf("core: nil source")
	}
	sp := src.Space()
	if sp == nil {
		return nil, fmt.Errorf("core: source has nil space")
	}
	if ev == nil || strat == nil {
		return nil, fmt.Errorf("core: nil evaluator or strategy")
	}
	ss, ok := strat.(StreamStrategy)
	if !ok {
		return nil, fmt.Errorf("core: strategy %q does not support streaming selection", strat.Name())
	}
	if src.Len() != snap.PoolSize {
		return nil, fmt.Errorf("core: source size %d does not match snapshot's %d", src.Len(), snap.PoolSize)
	}
	if h := src.Fingerprint(); h != snap.PoolHash {
		return nil, fmt.Errorf("core: source fingerprint %#x does not match snapshot's %#x (different source or seed)", h, snap.PoolHash)
	}
	if len(snap.TrainConfigs) != len(snap.TrainY) {
		return nil, fmt.Errorf("core: snapshot has %d configs but %d labels", len(snap.TrainConfigs), len(snap.TrainY))
	}
	if len(snap.TrainY) == 0 || len(snap.TrainY) > p.NMax {
		return nil, fmt.Errorf("core: snapshot labeled-set size %d outside (0, NMax=%d]", len(snap.TrainY), p.NMax)
	}
	for i, g := range snap.Taken {
		if g < 0 || g >= src.Len() {
			return nil, fmt.Errorf("core: snapshot taken index %d out of source range", g)
		}
		if i > 0 && g <= snap.Taken[i-1] {
			return nil, fmt.Errorf("core: snapshot taken set not sorted and unique at %d", i)
		}
	}
	if ctx == nil {
		ctx = context.Background()
	}

	r, err := rng.FromState(snap.RNG)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot RNG: %w", err)
	}
	loader := p.ModelLoader
	if loader == nil {
		loader = defaultModelLoader
	}
	model, err := loader(snap.Model)
	if err != nil {
		return nil, fmt.Errorf("core: snapshot model: %w", err)
	}
	if snap.Evaluator != nil {
		sev, ok := ev.(StatefulEvaluator)
		if !ok {
			return nil, fmt.Errorf("core: snapshot carries evaluator state but evaluator %T cannot restore it", ev)
		}
		if err := sev.RestoreEvaluatorState(*snap.Evaluator); err != nil {
			return nil, fmt.Errorf("core: restoring evaluator state: %w", err)
		}
	}

	e := &engine{
		ctx: ctx, sp: sp, src: src, ev: ev, strat: strat, ss: ss, p: p, r: r, obs: obs,
		res: &Result{
			TrainConfigs: append([]space.Config(nil), snap.TrainConfigs...),
			TrainY:       append([]float64(nil), snap.TrainY...),
			Selections:   append([]Selection(nil), snap.Selections...),
			Stats:        append([]IterStats(nil), snap.Stats...),
			FailedCost:   snap.FailedCost,
			GuardCost:    snap.GuardCost,
			Iterations:   snap.Iteration,
			Model:        model,
		},
	}
	e.initStream()
	defer e.captureRNG()
	e.taken = append(e.taken[:0], snap.Taken...)
	e.iter = snap.Iteration
	e.model = model
	for _, cfg := range snap.TrainConfigs {
		e.trainX = append(e.trainX, e.sp.Encode(cfg))
	}
	for _, y := range snap.TrainY {
		e.labelSum += y
	}
	return e.streamLoop()
}
