package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"repro/internal/forest"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/space"
)

// streamScorer adapts a Model without a native ScoreBatch to the pool
// scorer contract. The Model interface makes no concurrency promise, so
// calls are serialized; forests bypass this adapter (Forest.ScoreBatch is
// lock-free and concurrent-safe).
type streamScorer struct {
	mu sync.Mutex
	m  Model
}

// ScoreBatch implements pool.BatchScorer.
func (s *streamScorer) ScoreBatch(X [][]float64, mu, sigma []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pm, ps := s.m.PredictBatch(X)
	copy(mu, pm)
	copy(sigma, ps)
}

// batchScorer returns the current model as a pool scorer.
func (s *Session) batchScorer() pool.BatchScorer {
	if bs, ok := s.model.(pool.BatchScorer); ok {
		return bs
	}
	return &streamScorer{m: s.model}
}

// quantizable is the quantized-view hook Params.Quant needs from the
// model; *forest.Forest implements it.
type quantizable interface {
	Quantized() (*forest.QuantScorer, error)
}

// scanScorer returns the scorer the streamed pool scans run on: the
// model's quantized view under Params.Quant (refreshing the compiled
// quantized slots, so warm updates recompile only the trees they
// replaced), the model itself otherwise.
func (s *Session) scanScorer() (pool.BatchScorer, error) {
	if !s.p.Quant {
		return s.batchScorer(), nil
	}
	q, ok := s.model.(quantizable)
	if !ok {
		return nil, fmt.Errorf("core: Params.Quant needs a model with a quantized scorer, %T has none", s.model)
	}
	return q.Quantized()
}

// poolStream is the session's PoolStream view: the source minus the
// taken set, scored by the current model.
type poolStream struct {
	s     *Session
	bestY float64
}

// Len implements PoolStream.
func (ps *poolStream) Len() int { return ps.s.src.Len() - len(ps.s.taken) }

// BestY implements PoolStream.
func (ps *poolStream) BestY() float64 { return ps.bestY }

// Rand implements PoolStream.
func (ps *poolStream) Rand() *rng.RNG { return ps.s.r }

// Scan implements PoolStream.
func (ps *poolStream) Scan(consume func(ord int, x []float64, mu, sigma float64)) error {
	sc, err := ps.s.scanScorer()
	if err != nil {
		return err
	}
	cfg := pool.ScanConfig{
		Shard:   ps.s.p.StreamShard,
		Workers: ps.s.p.StreamWorkers,
		Skip:    ps.s.taken,
	}
	// The cross-scan cache needs the per-slot scoring contract; the
	// serialized fallback scorer for plain Models doesn't have it.
	if _, ok := sc.(pool.SlotScorer); ok {
		cfg.Cache = ps.s.cache
	}
	return pool.Scan(ps.s.src, sc, cfg, consume)
}

// RunStream executes Algorithm 1 over a lazily generated candidate pool.
//
// It is Run for pools too large to materialize: candidates come from a
// deterministic pool.Source instead of a []space.Config slice, each
// iteration's scoring streams shard-by-shard through the model on a
// bounded set of worker buffers (peak memory O(workers × shard), never
// O(pool)), and the strategy reduces the scored stream with the exact
// selection contract of the in-memory helpers. For the same candidate
// sequence, evaluator, strategy, params and generator, RunStream's result
// is bit-identical to Run's — same labels, same selections, same RNG
// stream position — invariant across shard sizes and worker counts (the
// pool-equivalence gate).
//
// strat must implement StreamStrategy (all built-in strategies do).
// Context handling, failure policy, label guard, telemetry and
// checkpointing behave exactly as in Run; snapshots record the source
// fingerprint and the taken set instead of the remaining list, and are
// resumed with ResumeStream. Like Run, it is a thin driver over the
// ask-tell Session.
func RunStream(ctx context.Context, src pool.Source, ev Evaluator, strat Strategy, params Params, r *rng.RNG, obs Observer) (*Result, error) {
	if src == nil {
		return nil, fmt.Errorf("core: nil source")
	}
	if src.Space() == nil {
		return nil, fmt.Errorf("core: source has nil space")
	}
	if ev == nil || strat == nil || r == nil {
		return nil, fmt.Errorf("core: nil evaluator, strategy or generator")
	}
	s, err := NewSession(SessionConfig{
		Source: src, Strategy: strat, Params: params,
		RNG: r, Observer: obs, Evaluator: ev,
	})
	if err != nil {
		return nil, err
	}
	return driveSession(ctx, s, ev)
}

// markTaken inserts global index g into the sorted taken set.
func (s *Session) markTaken(g int) {
	i := sort.SearchInts(s.taken, g)
	s.taken = append(s.taken, 0)
	copy(s.taken[i+1:], s.taken[i:])
	s.taken[i] = g
}

// ordToGlobal maps a candidate ordinal — its rank among non-taken
// candidates in source order, the index space strategies select in — to
// the candidate's global source index.
func (s *Session) ordToGlobal(ord int) int {
	g := ord
	for _, t := range s.taken {
		if t <= g {
			g++
		} else {
			break
		}
	}
	return g
}

// fetchConfigs materializes the configurations at the given global source
// indices (which may repeat or arrive in any order): directly for
// random-access sources, otherwise with one generation-only pass over the
// stream — cheap, since nothing is encoded or scored.
func (s *Session) fetchConfigs(globals []int) ([]space.Config, error) {
	d := s.sp.NumParams()
	out := make([]space.Config, len(globals))
	if ra, ok := s.src.(pool.RandomAccess); ok {
		for i, g := range globals {
			c := make(space.Config, d)
			ra.At(g, c)
			out[i] = c
		}
		return out, nil
	}
	order := make([]int, len(globals))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return globals[order[a]] < globals[order[b]] })
	shard := s.p.StreamShard
	if shard <= 0 {
		shard = 1024
	}
	buf := make([]space.Config, shard)
	flat := make([]int, shard*d)
	for i := range buf {
		buf[i] = space.Config(flat[i*d : (i+1)*d : (i+1)*d])
	}
	s.src.Reset()
	base, w := 0, 0
	for w < len(order) {
		n := s.src.Next(buf)
		if n == 0 {
			return nil, fmt.Errorf("core: source ended at %d candidates before index %d", base, globals[order[w]])
		}
		for w < len(order) && globals[order[w]] < base+n {
			out[order[w]] = buf[globals[order[w]]-base].Clone()
			w++
		}
		base += n
	}
	return out, nil
}

// ResumeStream continues a streamed run from a Snapshot taken by
// RunStream, bit-identically to the uninterrupted run. The caller
// regenerates the deterministic inputs — the source (validated against
// the snapshot's fingerprint), the evaluator, the strategy and the params
// — and the snapshot restores the labeled set, the taken set, the loop
// generator, the fitted model and, for StatefulEvaluator evaluators, the
// noise stream.
func ResumeStream(ctx context.Context, snap *Snapshot, src pool.Source, ev Evaluator, strat Strategy, params Params, obs Observer) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	if err := checkSnapshotVersion(snap.Version); err != nil {
		return nil, err
	}
	if !snap.Streamed {
		return nil, fmt.Errorf("core: snapshot was taken by an in-memory run; use Resume")
	}
	if src == nil {
		return nil, fmt.Errorf("core: nil source")
	}
	if src.Space() == nil {
		return nil, fmt.Errorf("core: source has nil space")
	}
	if ev == nil || strat == nil {
		return nil, fmt.Errorf("core: nil evaluator or strategy")
	}
	s, err := ResumeSession(snap, SessionConfig{
		Source: src, Strategy: strat, Params: params, Observer: obs, Evaluator: ev,
	})
	if err != nil {
		return nil, err
	}
	return driveSession(ctx, s, ev)
}
