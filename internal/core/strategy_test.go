package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

// mkCandidates builds a Candidates from parallel mu/sigma slices.
func mkCandidates(mu, sigma []float64, seed uint64) *Candidates {
	X := make([][]float64, len(mu))
	for i := range X {
		X[i] = []float64{float64(i)}
	}
	return &Candidates{X: X, Mu: mu, Sigma: sigma, Rand: rng.New(seed)}
}

func TestPWUScoreLimits(t *testing.T) {
	// α→1: score reduces to σ.
	p1 := PWU{Alpha: 1}
	if got := p1.Score(123, 4); math.Abs(got-4) > 1e-12 {
		t.Fatalf("alpha=1 score = %v, want sigma", got)
	}
	// α→0: score reduces to σ/μ (coefficient of variation).
	p0 := PWU{Alpha: 0}
	if got := p0.Score(8, 4); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("alpha=0 score = %v, want CV", got)
	}
}

func TestPWUPrefersFastAtEqualUncertainty(t *testing.T) {
	p := PWU{Alpha: 0.05}
	slow := p.Score(100, 2)
	fast := p.Score(1, 2)
	if fast <= slow {
		t.Fatalf("fast %v <= slow %v at equal sigma", fast, slow)
	}
}

func TestPWUPrefersUncertainAtEqualPerformance(t *testing.T) {
	p := PWU{Alpha: 0.05}
	if p.Score(10, 5) <= p.Score(10, 1) {
		t.Fatal("higher sigma did not raise score")
	}
}

func TestPWUZeroMuClamped(t *testing.T) {
	p := PWU{Alpha: 0.05}
	got := p.Score(0, 1)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("zero-mu score = %v", got)
	}
}

func TestPWUSelectTopScores(t *testing.T) {
	mu := []float64{1, 1, 100, 100}
	sigma := []float64{5, 1, 5, 1}
	// Scores rank: idx0 (fast, uncertain) > idx1 (fast) > idx2 (uncertain) > idx3.
	c := mkCandidates(mu, sigma, 1)
	sel := PWU{Alpha: 0.05}.Select(c, 2)
	if sel[0] != 0 || sel[1] != 1 {
		t.Fatalf("PWU selected %v", sel)
	}
}

func TestPBUSRespectsPerformanceFilter(t *testing.T) {
	// 10 candidates; top-10% filter keeps exactly the single fastest one,
	// regardless of a huge sigma elsewhere.
	mu := make([]float64, 10)
	sigma := make([]float64, 10)
	for i := range mu {
		mu[i] = float64(10 - i) // candidate 9 is fastest
		sigma[i] = 1
	}
	sigma[0] = 1e9 // slowest is extremely uncertain, but must be filtered out
	c := mkCandidates(mu, sigma, 1)
	sel := PBUS{PerfFrac: 0.1}.Select(c, 1)
	if sel[0] != 9 {
		t.Fatalf("PBUS selected %v, want 9", sel)
	}
}

func TestPBUSUncertaintyWithinFilter(t *testing.T) {
	// Filter keeps the 2 fastest; among them the more uncertain wins.
	mu := []float64{1, 2, 50, 60}
	sigma := []float64{0.1, 5, 100, 100}
	c := mkCandidates(mu, sigma, 1)
	sel := PBUS{PerfFrac: 0.5}.Select(c, 1)
	if sel[0] != 1 {
		t.Fatalf("PBUS selected %v, want 1", sel)
	}
}

func TestPBUSFilterExpandsToBatch(t *testing.T) {
	// PerfFrac keeps 1 candidate but nBatch=3 needs more.
	mu := []float64{4, 3, 2, 1}
	sigma := []float64{1, 1, 1, 1}
	c := mkCandidates(mu, sigma, 1)
	sel := PBUS{PerfFrac: 0.01}.Select(c, 3)
	if len(sel) != 3 {
		t.Fatalf("PBUS returned %d indices", len(sel))
	}
	seen := map[int]bool{}
	for _, i := range sel {
		seen[i] = true
	}
	if !seen[3] {
		t.Fatal("fastest candidate missing from expanded filter")
	}
}

func TestBRSSamplesWithinTopFraction(t *testing.T) {
	mu := make([]float64, 100)
	sigma := make([]float64, 100)
	for i := range mu {
		mu[i] = float64(i) // ascending: 0..9 are the top 10%
	}
	c := mkCandidates(mu, sigma, 7)
	counts := map[int]int{}
	for rep := 0; rep < 200; rep++ {
		for _, i := range (BRS{TopFrac: 0.1}).Select(c, 1) {
			counts[i]++
		}
	}
	for i := range counts {
		if i >= 10 {
			t.Fatalf("BRS picked index %d outside top 10%%", i)
		}
	}
	if len(counts) < 3 {
		t.Fatalf("BRS not randomizing within filter: %v", counts)
	}
}

func TestBestPerfGreedy(t *testing.T) {
	mu := []float64{5, 1, 3}
	sigma := []float64{9, 9, 9}
	c := mkCandidates(mu, sigma, 1)
	sel := BestPerf{}.Select(c, 2)
	if sel[0] != 1 || sel[1] != 2 {
		t.Fatalf("BestPerf selected %v", sel)
	}
}

func TestMaxUGreedy(t *testing.T) {
	mu := []float64{1, 1, 1}
	sigma := []float64{2, 9, 5}
	c := mkCandidates(mu, sigma, 1)
	sel := MaxU{}.Select(c, 2)
	if sel[0] != 1 || sel[1] != 2 {
		t.Fatalf("MaxU selected %v", sel)
	}
}

func TestRandomUniform(t *testing.T) {
	mu := make([]float64, 50)
	sigma := make([]float64, 50)
	c := mkCandidates(mu, sigma, 11)
	hit := map[int]bool{}
	for rep := 0; rep < 500; rep++ {
		for _, i := range (Random{}).Select(c, 2) {
			hit[i] = true
		}
	}
	if len(hit) < 45 {
		t.Fatalf("Random only covered %d/50 candidates", len(hit))
	}
}

func TestCVEqualsPWUAlphaZero(t *testing.T) {
	mu := []float64{3, 10, 0.5, 7}
	sigma := []float64{1, 8, 0.4, 2}
	c1 := mkCandidates(mu, sigma, 1)
	c2 := mkCandidates(mu, sigma, 1)
	a := CV{}.Select(c1, 2)
	b := PWU{Alpha: 0}.Select(c2, 2)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("CV %v != PWU(0) %v", a, b)
		}
	}
}

func TestEIScore(t *testing.T) {
	e := EI{}
	// Far below incumbent with low sigma: EI about equals the improvement.
	if got := e.Score(1, 1e-13, 10); math.Abs(got-9) > 1e-9 {
		t.Fatalf("deterministic EI = %v, want 9", got)
	}
	// Far above incumbent with no sigma: zero.
	if got := e.Score(20, 1e-13, 10); got != 0 {
		t.Fatalf("hopeless EI = %v", got)
	}
	// At the incumbent, EI = sigma*phi(0) ≈ 0.3989*sigma.
	if got := e.Score(10, 2, 10); math.Abs(got-2*0.39894228) > 1e-6 {
		t.Fatalf("at-incumbent EI = %v", got)
	}
	// More uncertainty means more EI at equal mean.
	if e.Score(12, 5, 10) <= e.Score(12, 1, 10) {
		t.Fatal("sigma does not raise EI")
	}
	// EI is non-negative everywhere.
	for _, mu := range []float64{0, 5, 10, 50} {
		for _, sig := range []float64{0, 0.1, 3} {
			if e.Score(mu, sig, 10) < -1e-12 {
				t.Fatalf("negative EI at mu=%v sigma=%v", mu, sig)
			}
		}
	}
}

func TestEISelect(t *testing.T) {
	mu := []float64{9, 2, 15}
	sigma := []float64{0.1, 0.1, 0.1}
	c := mkCandidates(mu, sigma, 1)
	c.BestY = 10
	sel := EI{}.Select(c, 1)
	if sel[0] != 1 {
		t.Fatalf("EI selected %v, want the clear improver", sel)
	}
}

func TestEIXiMargin(t *testing.T) {
	// With a large xi, marginal improvers lose their EI.
	plain := EI{}.Score(9.5, 0.01, 10)
	cautious := EI{Xi: 2}.Score(9.5, 0.01, 10)
	if cautious >= plain {
		t.Fatal("xi margin did not reduce EI")
	}
}

func TestByName(t *testing.T) {
	for _, name := range StrategyNames() {
		s, err := ByName(name, 0.05)
		if err != nil {
			t.Fatalf("ByName(%s): %v", name, err)
		}
		if s.Name() != name {
			t.Fatalf("ByName(%s).Name() = %s", name, s.Name())
		}
	}
	if _, err := ByName("bogus", 0.05); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if s, err := ByName("CV", 0); err != nil || s.Name() != "CV" {
		t.Fatalf("ByName(CV) = %v, %v", s, err)
	}
	if s, err := ByName("EI", 0); err != nil || s.Name() != "EI" {
		t.Fatalf("ByName(EI) = %v, %v", s, err)
	}
}

func TestAllStrategiesReturnDistinctValidIndices(t *testing.T) {
	strategies := []Strategy{PWU{Alpha: 0.05}, PBUS{}, BRS{}, BestPerf{}, MaxU{}, Random{}, CV{}}
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(80)
		mu := make([]float64, n)
		sigma := make([]float64, n)
		for i := range mu {
			mu[i] = 0.1 + r.Float64()*10
			sigma[i] = r.Float64()
		}
		for _, s := range strategies {
			batch := 1 + r.Intn(5)
			c := mkCandidates(mu, sigma, seed+1)
			sel := s.Select(c, batch)
			want := batch
			if want > n {
				want = n
			}
			if len(sel) != want {
				return false
			}
			seen := map[int]bool{}
			for _, i := range sel {
				if i < 0 || i >= n || seen[i] {
					return false
				}
				seen[i] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchLargerThanPool(t *testing.T) {
	mu := []float64{1, 2}
	sigma := []float64{1, 2}
	for _, s := range []Strategy{PWU{Alpha: 0.05}, PBUS{}, BRS{}, BestPerf{}, MaxU{}, Random{}} {
		c := mkCandidates(mu, sigma, 3)
		sel := s.Select(c, 10)
		if len(sel) != 2 {
			t.Fatalf("%s returned %d indices for oversize batch", s.Name(), len(sel))
		}
	}
}

// ---- NaN score handling ----

func sliceEq(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTopKNaNScoresRankLast: NaN fed to sort's comparator makes the
// order undefined; after sinking, NaN-scored candidates must rank last,
// deterministically, and never displace finite scores.
func TestTopKNaNScoresRankLast(t *testing.T) {
	nan := math.NaN()
	scores := []float64{nan, 5, nan, 3, 8, nan, 1}
	if got := topKByScore(scores, 3); !sliceEq(got, []int{4, 1, 3}) {
		t.Fatalf("topK = %v", got)
	}
	// Overflow into the NaN region stays index-ordered (stable sort).
	if got := topKByScore(scores, 6); !sliceEq(got, []int{4, 1, 3, 6, 0, 2}) {
		t.Fatalf("topK overflow = %v", got)
	}
	if got := bottomKByScore(scores, 2); !sliceEq(got, []int{6, 3}) {
		t.Fatalf("bottomK = %v", got)
	}
	if got := bottomKByScore(scores, 6); !sliceEq(got, []int{6, 3, 1, 4, 0, 2}) {
		t.Fatalf("bottomK overflow = %v", got)
	}
	// The caller's slice must not be mutated by the sink.
	if !math.IsNaN(scores[0]) || !math.IsNaN(scores[2]) || !math.IsNaN(scores[5]) {
		t.Fatalf("input scores mutated: %v", scores)
	}
}

func TestTopKDistinctNaNScoresRankLast(t *testing.T) {
	nan := math.NaN()
	scores := []float64{nan, 5, nan, 3, 8, nan, 1}
	c := mkCandidates(make([]float64, len(scores)), make([]float64, len(scores)), 1)
	if got := topKDistinctByScore(scores, c, 3); !sliceEq(got, []int{4, 1, 3}) {
		t.Fatalf("topKDistinct = %v", got)
	}
	if got := topKDistinctByScore(scores, c, 6); !sliceEq(got, []int{4, 1, 3, 6, 0, 2}) {
		t.Fatalf("topKDistinct overflow = %v", got)
	}
}

// TestStrategiesDeterministicUnderNaN runs every deterministic strategy
// on NaN-laced beliefs twice and requires identical selections.
func TestStrategiesDeterministicUnderNaN(t *testing.T) {
	nan := math.NaN()
	mu := []float64{1, nan, 3, 4, nan, 6, 7, 8}
	sigma := []float64{nan, 1, nan, 2, 1, nan, 2, 1}
	for _, s := range []Strategy{PWU{Alpha: 0.05}, PBUS{PerfFrac: 0.25}, BestPerf{}, MaxU{}, EI{}} {
		a := s.Select(mkCandidates(mu, sigma, 9), 4)
		b := s.Select(mkCandidates(mu, sigma, 9), 4)
		if !sliceEq(a, b) {
			t.Fatalf("%s not deterministic under NaN: %v vs %v", s.Name(), a, b)
		}
		seen := map[int]bool{}
		for _, i := range a {
			if i < 0 || i >= len(mu) || seen[i] {
				t.Fatalf("%s returned invalid selection %v", s.Name(), a)
			}
			seen[i] = true
		}
	}
}
