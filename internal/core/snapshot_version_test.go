package core

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/pool"
	"repro/internal/rng"
)

// TestSnapshotVersionTolerance pins the snapshot version contract:
// version-1 (plain run) and version-2 (service manifest) snapshots both
// round-trip through JSON and resume; an unknown version fails with the
// typed *SnapshotVersionError from every resume entry point instead of
// being silently misparsed.
func TestSnapshotVersionTolerance(t *testing.T) {
	ctx := context.Background()
	sp := goldenSpace()

	// A version-1 snapshot from a plain in-memory run.
	poolCfgs := sp.SampleConfigs(rng.New(401), 80)
	ev := goldenEvaluator(sp)
	var v1 *Snapshot
	_, err := Run(ctx, sp, poolCfgs, ev, PWU{Alpha: 0.1},
		Params{NInit: 5, NBatch: 2, NMax: 15, Forest: smallForest(),
			CheckpointEvery: 1, Checkpoint: func(s *Snapshot) error { v1 = s; return nil }},
		rng.New(402), nil)
	if err != nil || v1 == nil {
		t.Fatalf("setup run: err=%v snap=%v", err, v1)
	}
	if v1.Version != 1 || v1.Service != nil {
		t.Fatalf("plain run wrote version %d service %q, want version 1 and no service", v1.Version, v1.Service)
	}

	// JSON round trip preserves the version and resumes.
	data, err := json.Marshal(v1)
	if err != nil {
		t.Fatal(err)
	}
	var rt Snapshot
	if err := json.Unmarshal(data, &rt); err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(ctx, &rt, sp, poolCfgs, goldenEvaluator(sp), PWU{Alpha: 0.1},
		Params{NInit: 5, NBatch: 2, NMax: 15, Forest: smallForest()}, nil); err != nil {
		t.Fatalf("v1 round-trip resume: %v", err)
	}

	// A version-2 snapshot from a session carrying a service manifest.
	service := json.RawMessage(`{"id":"s-1","tenant":"acme"}`)
	s, label := sessionFixture(t, sessionParams(), service)
	cold, err := s.Ask(ctx)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]Label, len(cold))
	for i, c := range cold {
		labels[i] = Label{Y: label(c)}
	}
	if _, err := s.Tell(ctx, labels); err != nil {
		t.Fatal(err)
	}
	v2, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if v2.Version != 2 {
		t.Fatalf("service session wrote version %d, want 2", v2.Version)
	}
	data, err = json.Marshal(v2)
	if err != nil {
		t.Fatal(err)
	}
	var rt2 Snapshot
	if err := json.Unmarshal(data, &rt2); err != nil {
		t.Fatal(err)
	}
	if string(rt2.Service) != string(service) {
		t.Fatalf("service manifest lost in round trip: %q", rt2.Service)
	}
	src := pool.NewUniform(sp, goldenPoolSeed, goldenPoolSize)
	rs, err := ResumeSession(&rt2, SessionConfig{
		Source: src, Strategy: PWU{Alpha: 0.1}, Params: sessionParams(),
	})
	if err != nil {
		t.Fatalf("v2 resume: %v", err)
	}
	// The manifest rides along into the resumed session and its next
	// snapshots.
	if string(rs.Service()) != string(service) {
		t.Fatalf("resumed session lost the manifest: %q", rs.Service())
	}
	snap2, err := rs.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap2.Version != 2 || string(snap2.Service) != string(service) {
		t.Fatalf("re-snapshot of recovered session: version=%d service=%q", snap2.Version, snap2.Service)
	}

	// Unknown versions: typed rejection everywhere.
	for _, v := range []int{0, 3, 99} {
		bad := *v1
		bad.Version = v
		var verr *SnapshotVersionError
		if _, err := Resume(ctx, &bad, sp, poolCfgs, ev, PWU{Alpha: 0.1}, Params{NMax: 15}, nil); !errors.As(err, &verr) || verr.Version != v {
			t.Fatalf("Resume(version=%d): %v", v, err)
		}
		badStream := *v2
		badStream.Version = v
		if _, err := ResumeStream(ctx, &badStream, src, ev, PWU{Alpha: 0.1}, Params{NMax: 15}, nil); !errors.As(err, &verr) {
			t.Fatalf("ResumeStream(version=%d): %v", v, err)
		}
		if _, err := ResumeSession(&bad, SessionConfig{Space: sp, Pool: poolCfgs, Strategy: PWU{Alpha: 0.1}, Params: Params{NMax: 15}}); !errors.As(err, &verr) {
			t.Fatalf("ResumeSession(version=%d): %v", v, err)
		}
	}
}
