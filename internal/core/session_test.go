package core

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/pool"
	"repro/internal/rng"
)

// sessionFixture builds a streamed session over the golden space with a
// small forest, returning the session and a deterministic labeling
// function for driving it by hand.
func sessionFixture(t *testing.T, params Params, service json.RawMessage) (*Session, func(c []int) float64) {
	t.Helper()
	sp := goldenSpace()
	src := pool.NewUniform(sp, goldenPoolSeed, goldenPoolSize)
	s, err := NewSession(SessionConfig{
		Source: src, Strategy: PWU{Alpha: 0.1}, Params: params,
		RNG: rng.New(991), Service: service,
	})
	if err != nil {
		t.Fatal(err)
	}
	label := func(c []int) float64 {
		a := sp.ValueByName(c, "a")
		b := sp.ValueByName(c, "b")
		return (a-4)*(a-4) + (b-2)*(b-2) + 1
	}
	return s, label
}

func sessionParams() Params {
	return Params{NInit: 5, NBatch: 2, NMax: 11, Forest: smallForest()}
}

// TestSessionAskTellBasics drives a session by hand: cold batch sizes,
// Ask idempotency, batch tells, phase transitions and completion.
func TestSessionAskTellBasics(t *testing.T) {
	ctx := context.Background()
	s, label := sessionFixture(t, sessionParams(), nil)

	if s.Phase() != "cold" || s.Done() {
		t.Fatalf("fresh session: phase=%s done=%v", s.Phase(), s.Done())
	}
	cold, err := s.Ask(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) != 5 {
		t.Fatalf("cold batch = %d, want NInit=5", len(cold))
	}
	again, err := s.Ask(ctx)
	if err != nil || len(again) != 5 {
		t.Fatalf("re-Ask not idempotent: %v %d", err, len(again))
	}
	for i := range cold {
		if cold[i].Key() != again[i].Key() {
			t.Fatalf("re-Ask changed batch at %d", i)
		}
	}

	// Batch tell of the whole cold start at once.
	labels := make([]Label, len(cold))
	for i, c := range cold {
		labels[i] = Label{Y: label(c)}
	}
	rep, err := s.Tell(ctx, labels)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed || rep.Consumed != 5 || rep.Pending != 0 {
		t.Fatalf("cold tell report: %+v", rep)
	}
	if s.Phase() != "ready" || s.Samples() != 5 || s.Model() == nil {
		t.Fatalf("after cold: phase=%s samples=%d model=%v", s.Phase(), s.Samples(), s.Model())
	}

	// Telling at a boundary is an error; so is an oversized tell later.
	if _, err := s.Tell(ctx, []Label{{Y: 1}}); err == nil {
		t.Fatal("tell at boundary accepted")
	}
	for !s.Done() {
		batch, err := s.Ask(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Tell(ctx, make([]Label, len(batch)+1)); err == nil {
			t.Fatal("oversized tell accepted")
		}
		for _, c := range batch {
			if _, err := s.Tell(ctx, []Label{{Y: label(c)}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Samples() != 11 {
		t.Fatalf("done at %d samples, want NMax=11", s.Samples())
	}
	if _, err := s.Ask(ctx); !errors.Is(err, ErrSessionDone) {
		t.Fatalf("Ask after done: %v", err)
	}
	if _, err := s.Tell(ctx, []Label{{Y: 1}}); !errors.Is(err, ErrSessionDone) {
		t.Fatalf("Tell after done: %v", err)
	}
}

// TestSessionGuardRemeasureProtocol exercises the ask-tell form of the
// label guard: a flagged label inserts re-measurement slots, the tell
// stops consuming, and the re-asked queue leads with the flagged
// configuration.
func TestSessionGuardRemeasureProtocol(t *testing.T) {
	ctx := context.Background()
	p := sessionParams()
	p.Guard = LabelGuard{Z: 2, K: 3}
	s, label := sessionFixture(t, p, nil)

	cold, err := s.Ask(ctx)
	if err != nil {
		t.Fatal(err)
	}
	labels := make([]Label, len(cold))
	for i, c := range cold {
		labels[i] = Label{Y: label(c)}
	}
	if _, err := s.Tell(ctx, labels); err != nil {
		t.Fatal(err)
	}

	batch, err := s.Ask(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 2 {
		t.Fatalf("batch = %d, want 2", len(batch))
	}
	// First label is a wild outlier followed by an honest second label:
	// the tell must stop after the outlier (Consumed=1) because the
	// guard queued re-measurements in between.
	rep, err := s.Tell(ctx, []Label{{Y: 1e9}, {Y: label(batch[1])}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Consumed != 1 || rep.Flagged != 1 || rep.Remeasure != 3 {
		t.Fatalf("outlier tell report: %+v", rep)
	}
	if rep.Pending != 4 { // 3 re-measurements + the untold second item
		t.Fatalf("pending = %d, want 4", rep.Pending)
	}
	requeued, err := s.Ask(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if requeued[i].Key() != batch[0].Key() {
			t.Fatalf("re-ask slot %d is not the flagged config", i)
		}
	}
	if requeued[3].Key() != batch[1].Key() {
		t.Fatal("second original item lost after re-measure insertion")
	}
	// Honest re-measurements: median becomes the label, run continues.
	honest := label(batch[0])
	rep, err = s.Tell(ctx, []Label{{Y: honest}, {Y: honest + 0.1}, {Y: honest - 0.1}, {Y: label(batch[1])}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Completed {
		t.Fatalf("batch not completed: %+v", rep)
	}
	res := s.Result()
	tel := res.Telemetry()
	if tel.GuardFlagged != 1 || tel.GuardRemeasured != 1 || tel.GuardQuarantined != 0 {
		t.Fatalf("guard counters: %+v", tel)
	}
	got := res.TrainY[len(res.TrainY)-2] // flagged item trains before the second item
	if math.Abs(got-honest) > 1e-12 {
		t.Fatalf("flagged label = %v, want median %v", got, honest)
	}
}

// TestSessionSnapshotBoundaryOnly pins the snapshot contract: snapshots
// exist only at iteration boundaries, never mid-batch.
func TestSessionSnapshotBoundaryOnly(t *testing.T) {
	ctx := context.Background()
	s, label := sessionFixture(t, sessionParams(), nil)
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("snapshot of cold session accepted")
	}
	cold, _ := s.Ask(ctx)
	if _, err := s.Snapshot(); err == nil {
		t.Fatal("mid-batch snapshot accepted")
	}
	labels := make([]Label, len(cold))
	for i, c := range cold {
		labels[i] = Label{Y: label(c)}
	}
	if _, err := s.Tell(ctx, labels); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Version != 1 || !snap.Streamed || snap.Iteration != 0 {
		t.Fatalf("boundary snapshot: version=%d streamed=%v iter=%d", snap.Version, snap.Streamed, snap.Iteration)
	}
}

// TestSessionHostileLabelSanitization: non-positive / non-finite costs
// and negative counters from an untrusted caller must not corrupt the
// telemetry.
func TestSessionHostileLabelSanitization(t *testing.T) {
	ctx := context.Background()
	s, label := sessionFixture(t, sessionParams(), nil)
	cold, _ := s.Ask(ctx)
	labels := make([]Label, len(cold))
	for i, c := range cold {
		labels[i] = Label{
			Y:          label(c),
			Retries:    -5,
			Timeouts:   -7,
			FailedCost: math.Inf(1),
		}
	}
	if _, err := s.Tell(ctx, labels); err != nil {
		t.Fatal(err)
	}
	tel := s.Result().Telemetry()
	if tel.EvalRetries != 0 || tel.EvalTimeouts != 0 || tel.FailedCost != 0 {
		t.Fatalf("hostile label fields leaked into telemetry: %+v", tel)
	}
}
