package core

import (
	"math"
	"testing"

	"repro/internal/pool"
	"repro/internal/rng"
)

// selectionContractCases is the shared fixture both selection paths run
// against: the in-memory sort-based helpers and the streaming reducers
// must produce identical output on every row, including the edge cases
// that used to panic the helpers (k beyond len, negative k) and the
// NaN/tie/duplicate corners.
var selectionContractCases = []struct {
	name   string
	scores []float64
	vecIDs []int // feature-vector identity per candidate (for distinct mode)
	ks     []int
}{
	{
		name:   "plain-ties",
		scores: []float64{3, 1, 3, 2, 3},
		vecIDs: []int{0, 1, 2, 3, 4},
		ks:     []int{0, 1, 3, 4, 5, 8, -2},
	},
	{
		name:   "nans-and-infs",
		scores: []float64{math.NaN(), math.Inf(1), math.Inf(-1), 2, math.NaN(), 2},
		vecIDs: []int{0, 1, 2, 3, 4, 5},
		ks:     []int{0, 1, 5, 6, 11, -1},
	},
	{
		name:   "all-nan",
		scores: []float64{math.NaN(), math.NaN(), math.NaN()},
		vecIDs: []int{0, 1, 2},
		ks:     []int{0, 1, 2, 3, 7},
	},
	{
		name:   "dups-exhaust-distinct",
		scores: []float64{9, 8, 7, 6, 5},
		vecIDs: []int{0, 0, 0, 1, 1}, // only 2 distinct vectors
		ks:     []int{1, 2, 3, 4, 5, 9},
	},
	{
		name:   "dup-best-swaps-rep",
		scores: []float64{1, 9, 9, 1, 4},
		vecIDs: []int{0, 0, 1, 1, 0},
		ks:     []int{2, 3, 5},
	},
	{
		name:   "empty",
		scores: nil,
		vecIDs: nil,
		ks:     []int{0, 1, 4, -3},
	},
}

func contractCandidates(scores []float64, vecIDs []int) *Candidates {
	X := make([][]float64, len(scores))
	for i := range X {
		X[i] = []float64{float64(vecIDs[i]), 1.5}
	}
	return &Candidates{X: X, Mu: scores, Sigma: scores}
}

// TestSelectionContractSharedTable runs the in-memory helpers and the
// streaming reducers against the same table and requires identical
// output — the satellite bugfix pin: both paths share one contract.
func TestSelectionContractSharedTable(t *testing.T) {
	for _, tc := range selectionContractCases {
		t.Run(tc.name, func(t *testing.T) {
			c := contractCandidates(tc.scores, tc.vecIDs)
			for _, k := range tc.ks {
				memTop := topKByScore(tc.scores, k)
				memBot := bottomKByScore(tc.scores, k)
				memDis := topKDistinctByScore(tc.scores, c, k)

				top, bot, dis := pool.NewTopK(k), pool.NewBottomK(k), pool.NewTopKDistinct(k)
				for i, s := range tc.scores {
					top.Push(i, s, nil)
					bot.Push(i, s, nil)
					dis.Push(i, s, c.XAt(i))
				}
				if got := top.Result(); !sameIdx(got, memTop) {
					t.Fatalf("k=%d top: stream %v, memory %v", k, got, memTop)
				}
				if got := bot.Result(); !sameIdx(got, memBot) {
					t.Fatalf("k=%d bottom: stream %v, memory %v", k, got, memBot)
				}
				if got := dis.Result(); !sameIdx(got, memDis) {
					t.Fatalf("k=%d distinct: stream %v, memory %v", k, got, memDis)
				}
			}
		})
	}
}

// TestSelectionHelpersClampK pins the bugfix directly: out-of-range k
// must clamp, not panic (the helpers used to slice idx[:k] unchecked).
func TestSelectionHelpersClampK(t *testing.T) {
	scores := []float64{2, 1, 3}
	c := contractCandidates(scores, []int{0, 1, 2})
	for _, k := range []int{-5, 4, 100} {
		want := 0
		if k > 0 {
			want = len(scores)
		}
		if got := topKByScore(scores, k); len(got) != want {
			t.Fatalf("topKByScore k=%d returned %d indices, want %d", k, len(got), want)
		}
		if got := bottomKByScore(scores, k); len(got) != want {
			t.Fatalf("bottomKByScore k=%d returned %d indices, want %d", k, len(got), want)
		}
		if got := topKDistinctByScore(scores, c, k); len(got) != want {
			t.Fatalf("topKDistinctByScore k=%d returned %d indices, want %d", k, len(got), want)
		}
	}
}

// memStream adapts an in-memory Candidates view to the PoolStream
// interface: the reference implementation SelectStream is tested against.
type memStream struct {
	c *Candidates
	r *rng.RNG
}

func (m *memStream) Len() int       { return m.c.Len() }
func (m *memStream) BestY() float64 { return m.c.BestY }
func (m *memStream) Rand() *rng.RNG { return m.r }
func (m *memStream) Scan(consume func(ord int, x []float64, mu, sigma float64)) error {
	for i := 0; i < m.c.Len(); i++ {
		consume(i, m.c.XAt(i), m.c.Mu[i], m.c.Sigma[i])
	}
	return nil
}

func sameIdx(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// streamContractCandidates builds a randomized candidate set with
// duplicate vectors, NaN beliefs and heavy μ ties.
func streamContractCandidates(r *rng.RNG, n int) *Candidates {
	X := make([][]float64, n)
	mu := make([]float64, n)
	sigma := make([]float64, n)
	kinds := n/3 + 1
	for i := 0; i < n; i++ {
		X[i] = []float64{float64(r.Intn(kinds)), float64(r.Intn(2))}
		switch r.Intn(8) {
		case 0:
			mu[i] = math.NaN()
		case 1:
			mu[i] = float64(r.Intn(3)) // ties
		default:
			mu[i] = r.Float64()*10 + 0.1
		}
		switch r.Intn(8) {
		case 0:
			sigma[i] = math.NaN()
		default:
			sigma[i] = r.Float64() * 2
		}
	}
	best := math.Inf(1)
	for _, m := range mu {
		if m < best {
			best = m
		}
	}
	return &Candidates{X: X, Mu: mu, Sigma: sigma, BestY: best}
}

// TestSelectStreamMatchesSelect: for every built-in strategy, the
// streaming selection must return exactly the indices the in-memory
// selection returns and leave the generator at the same stream position.
func TestSelectStreamMatchesSelect(t *testing.T) {
	strategies := []Strategy{
		PWU{Alpha: 0.05}, PBUS{}, BRS{}, BestPerf{}, MaxU{}, Random{}, CV{}, EI{},
	}
	gen := rng.New(424242)
	for trial := 0; trial < 30; trial++ {
		n := 1 + gen.Intn(50)
		c := streamContractCandidates(gen, n)
		for _, strat := range strategies {
			ss, ok := strat.(StreamStrategy)
			if !ok {
				t.Fatalf("built-in strategy %s does not implement StreamStrategy", strat.Name())
			}
			for _, nBatch := range []int{0, 1, 3, n, n + 2, -1} {
				seed := gen.Uint64()
				memR, strR := rng.New(seed), rng.New(seed)
				c.Rand = memR
				want := strat.Select(c, nBatch)
				got, err := ss.SelectStream(&memStream{c: c, r: strR}, nBatch)
				if err != nil {
					t.Fatalf("%s: SelectStream: %v", strat.Name(), err)
				}
				if !sameIdx(got, want) {
					t.Fatalf("%s (n=%d, nBatch=%d): stream %v, memory %v\nmu=%v\nsigma=%v",
						strat.Name(), n, nBatch, got, want, c.Mu, c.Sigma)
				}
				if memR.Uint64() != strR.Uint64() {
					t.Fatalf("%s (n=%d, nBatch=%d): generator stream positions diverged", strat.Name(), n, nBatch)
				}
			}
		}
	}
}
