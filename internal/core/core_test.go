package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
)

// quadSpace is a tiny test problem: two numeric parameters, execution
// time = (a-5)^2 + (b-3)^2 + 1, minimum 1 at (5, 3).
func quadSpace(t testing.TB) (*space.Space, Evaluator) {
	t.Helper()
	sp := space.MustNew(
		space.NumRange("a", 0, 9, 1),
		space.NumRange("b", 0, 9, 1),
	)
	ev := AdaptEvaluator(LegacyEvaluatorFunc(func(c space.Config) float64 {
		a := sp.ValueByName(c, "a")
		b := sp.ValueByName(c, "b")
		return (a-5)*(a-5) + (b-3)*(b-3) + 1
	}))
	return sp, ev
}

func smallForest() forest.Config {
	return forest.Config{NumTrees: 16, Workers: 2}
}

func TestRunValidation(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(1), 50)
	r := rng.New(2)
	if _, err := Run(context.Background(), nil, pool, ev, PWU{Alpha: 0.05}, Params{}, r, nil); err == nil {
		t.Fatal("nil space accepted")
	}
	if _, err := Run(context.Background(), sp, pool, nil, PWU{Alpha: 0.05}, Params{}, r, nil); err == nil {
		t.Fatal("nil evaluator accepted")
	}
	if _, err := Run(context.Background(), sp, pool, ev, nil, Params{}, r, nil); err == nil {
		t.Fatal("nil strategy accepted")
	}
	if _, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.05}, Params{}, nil, nil); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := Run(context.Background(), sp, pool[:5], ev, PWU{Alpha: 0.05}, Params{NInit: 10}, r, nil); err == nil {
		t.Fatal("pool smaller than NInit accepted")
	}
	if _, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.05}, Params{NMax: 1000}, r, nil); err == nil {
		t.Fatal("NMax beyond pool accepted")
	}
	if _, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.05}, Params{NInit: 40, NMax: 20}, r, nil); err == nil {
		t.Fatal("NInit beyond NMax accepted")
	}
}

func TestRunReachesNMax(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(3), 80)
	res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.05}, Params{NInit: 8, NBatch: 3, NMax: 30, Forest: smallForest()}, rng.New(4), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainY) != 30 || len(res.TrainConfigs) != 30 {
		t.Fatalf("training set size = %d", len(res.TrainY))
	}
	if res.Model == nil {
		t.Fatal("no final model")
	}
	// NInit=8, batch=3: iterations labeled 8 -> 11 ... -> 29 -> 30 (last
	// batch truncated to 1): ceil(22/3) = 8 iterations.
	if res.Iterations != 8 {
		t.Fatalf("iterations = %d, want 8", res.Iterations)
	}
}

func TestRunDeterministic(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(5), 80)
	run := func() []float64 {
		res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.05}, Params{NInit: 5, NMax: 25, Forest: smallForest()}, rng.New(6), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.TrainY
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at sample %d", i)
		}
	}
}

func TestRunNoDuplicateLabels(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleDistinct(rng.New(7), 60)
	res, err := Run(context.Background(), sp, pool, ev, MaxU{}, Params{NInit: 5, NMax: 40, Forest: smallForest()}, rng.New(8), nil)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, c := range res.TrainConfigs {
		k := c.Key()
		if seen[k] {
			t.Fatalf("config %s labeled twice", k)
		}
		seen[k] = true
	}
}

func TestObserverCalls(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(9), 60)
	var iters []int
	var sizes []int
	obs := func(s *State) error {
		iters = append(iters, s.Iteration)
		sizes = append(sizes, len(s.TrainY))
		if s.Model == nil {
			t.Fatal("observer saw nil model")
		}
		return nil
	}
	_, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.05}, Params{NInit: 5, NBatch: 5, NMax: 20, Forest: smallForest()}, rng.New(10), obs)
	if err != nil {
		t.Fatal(err)
	}
	wantIters := []int{0, 1, 2, 3}
	wantSizes := []int{5, 10, 15, 20}
	if len(iters) != len(wantIters) {
		t.Fatalf("observer calls = %v", iters)
	}
	for i := range wantIters {
		if iters[i] != wantIters[i] || sizes[i] != wantSizes[i] {
			t.Fatalf("observer saw iters=%v sizes=%v", iters, sizes)
		}
	}
}

func TestObserverErrorAborts(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(11), 60)
	boom := errors.New("boom")
	calls := 0
	obs := func(s *State) error {
		calls++
		if calls == 2 {
			return boom
		}
		return nil
	}
	_, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.05}, Params{NInit: 5, NMax: 20, Forest: smallForest()}, rng.New(12), obs)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if calls != 2 {
		t.Fatalf("observer called %d times", calls)
	}
}

func TestRecordSelections(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(13), 60)
	res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.05}, Params{NInit: 5, NMax: 20, Forest: smallForest(), RecordSelections: true}, rng.New(14), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selections) != 15 { // NMax - NInit
		t.Fatalf("selections = %d, want 15", len(res.Selections))
	}
	for _, s := range res.Selections {
		if s.Sigma < 0 || math.IsNaN(s.Mu) || s.Iteration < 1 {
			t.Fatalf("bad selection record %+v", s)
		}
		want, werr := ev.Evaluate(context.Background(), s.Config)
		if werr != nil {
			t.Fatal(werr)
		}
		if s.Y != want {
			t.Fatalf("selection Y %v != evaluator %v", s.Y, want)
		}
	}
}

func TestNoSelectionsWithoutFlag(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(15), 60)
	res, err := Run(context.Background(), sp, pool, ev, Random{}, Params{NInit: 5, NMax: 15, Forest: smallForest()}, rng.New(16), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Selections != nil {
		t.Fatal("selections recorded without flag")
	}
}

func TestActiveLearningBeatsNothingOnQuadratic(t *testing.T) {
	// Sanity: after 60 labels with PWU, the model should predict the
	// high-performance region decently.
	sp, ev := quadSpace(t)
	r := rng.New(17)
	pool := sp.SampleConfigs(r, 90)
	res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1}, Params{NInit: 10, NMax: 60, Forest: forest.Config{NumTrees: 64}}, rng.New(18), nil)
	if err != nil {
		t.Fatal(err)
	}
	best := space.Config{5, 3} // true optimum
	pred := res.Model.Predict(sp.Encode(best))
	if pred > 15 {
		t.Fatalf("prediction at optimum = %v, model learned nothing", pred)
	}
}

func TestBadStrategyIndexRejected(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(19), 60)
	bad := strategyFunc{name: "bad", f: func(c *Candidates, n int) []int { return []int{c.Len() + 5} }}
	if _, err := Run(context.Background(), sp, pool, ev, bad, Params{NInit: 5, NMax: 10, Forest: smallForest()}, rng.New(20), nil); err == nil {
		t.Fatal("out-of-range index accepted")
	}
	dup := strategyFunc{name: "dup", f: func(c *Candidates, n int) []int { return []int{0, 0} }}
	if _, err := Run(context.Background(), sp, pool, ev, dup, Params{NInit: 5, NBatch: 2, NMax: 10, Forest: smallForest()}, rng.New(21), nil); err == nil {
		t.Fatal("duplicate index accepted")
	}
	empty := strategyFunc{name: "empty", f: func(c *Candidates, n int) []int { return nil }}
	if _, err := Run(context.Background(), sp, pool, ev, empty, Params{NInit: 5, NMax: 10, Forest: smallForest()}, rng.New(22), nil); err == nil {
		t.Fatal("empty selection accepted")
	}
}

// strategyFunc lets tests inject malformed strategies.
type strategyFunc struct {
	name string
	f    func(c *Candidates, n int) []int
}

func (s strategyFunc) Name() string                      { return s.name }
func (s strategyFunc) Select(c *Candidates, n int) []int { return s.f(c, n) }

func TestCustomFitter(t *testing.T) {
	// A constant-model fitter: proves Run honours Params.Fitter and
	// never touches the forest path.
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(30), 60)
	fits := 0
	fitter := func(X [][]float64, y []float64, fs []space.Feature, r *rng.RNG) (Model, error) {
		fits++
		mean := 0.0
		for _, v := range y {
			mean += v
		}
		mean /= float64(len(y))
		return constModel{mean}, nil
	}
	res, err := Run(context.Background(), sp, pool, ev, Random{}, Params{NInit: 5, NBatch: 5, NMax: 20, Fitter: fitter}, rng.New(31), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fits != 4 { // cold start + 3 iterations
		t.Fatalf("fitter called %d times", fits)
	}
	if _, ok := res.Model.(constModel); !ok {
		t.Fatalf("result model is %T", res.Model)
	}
}

// constModel is a trivial Model for fitter-injection tests.
type constModel struct{ mean float64 }

func (m constModel) Predict(x []float64) float64 { return m.mean }
func (m constModel) PredictBatch(X [][]float64) (mu, sigma []float64) {
	mu = make([]float64, len(X))
	sigma = make([]float64, len(X))
	for i := range mu {
		mu[i] = m.mean
		sigma[i] = 1
	}
	return mu, sigma
}

func TestWarmUpdatePath(t *testing.T) {
	// With WarmUpdate, the forest is partially refreshed instead of
	// refitted; the run must still complete and produce a usable model.
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(32), 80)
	res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
		Params{NInit: 10, NBatch: 5, NMax: 50, Forest: smallForest(), WarmUpdate: true}, rng.New(33), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TrainY) != 50 {
		t.Fatalf("labeled %d", len(res.TrainY))
	}
	pred := res.Model.Predict(sp.Encode(space.Config{5, 3}))
	if pred > 40 {
		t.Fatalf("warm-updated model useless: predicted %v at optimum", pred)
	}
}

func TestBestYReachesStrategy(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(34), 60)
	var seen []float64
	probe := strategyFunc{name: "probe", f: func(c *Candidates, n int) []int {
		seen = append(seen, c.BestY)
		return []int{0}
	}}
	res, err := Run(context.Background(), sp, pool, ev, probe, Params{NInit: 5, NMax: 10, Forest: smallForest()}, rng.New(35), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 {
		t.Fatalf("strategy called %d times", len(seen))
	}
	// BestY must equal the running minimum of the training labels and
	// never increase.
	min := res.TrainY[0]
	for _, y := range res.TrainY[1:5] {
		if y < min {
			min = y
		}
	}
	for i := 1; i < len(seen); i++ {
		if seen[i] > seen[i-1] {
			t.Fatal("BestY increased")
		}
	}
	if seen[0] != min {
		t.Fatalf("first BestY %v != cold-start min %v", seen[0], min)
	}
}

func TestBatchDedupPrefersDistinctConfigs(t *testing.T) {
	// A pool that is one config duplicated many times plus a few
	// distinct ones: a batch of 3 must not be all-duplicates.
	sp, ev := quadSpace(t)
	base := space.Config{1, 1}
	pool := make([]space.Config, 0, 40)
	for i := 0; i < 30; i++ {
		pool = append(pool, base.Clone())
	}
	pool = append(pool, sp.SampleConfigs(rng.New(36), 10)...)
	res, err := Run(context.Background(), sp, pool, ev, MaxU{}, Params{NInit: 5, NBatch: 3, NMax: 20, Forest: smallForest()}, rng.New(37), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Count how many distinct configs were labeled: with dedup it must
	// exceed the degenerate all-duplicates outcome.
	distinct := map[string]bool{}
	for _, c := range res.TrainConfigs {
		distinct[c.Key()] = true
	}
	if len(distinct) < 8 {
		t.Fatalf("only %d distinct configs labeled out of 20", len(distinct))
	}
}

func TestPoolNotMutated(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(23), 60)
	snapshot := make([]string, len(pool))
	for i, c := range pool {
		snapshot[i] = c.Key()
	}
	if _, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.05}, Params{NInit: 5, NMax: 20, Forest: smallForest()}, rng.New(24), nil); err != nil {
		t.Fatal(err)
	}
	for i, c := range pool {
		if c.Key() != snapshot[i] {
			t.Fatal("pool mutated by Run")
		}
	}
}

// noPoolModel wraps a forest but exposes only the base Model interface,
// hiding the PoolPredictor (and Updatable) capabilities. It forces Run
// onto the candidate-matrix fallback path, the reference for the cached
// pool-scoring path.
type noPoolModel struct{ f *forest.Forest }

func (m noPoolModel) Predict(x []float64) float64 { return m.f.Predict(x) }
func (m noPoolModel) PredictBatch(X [][]float64) (mu, sigma []float64) {
	return m.f.PredictBatch(X)
}

// noPoolUpdatable additionally forwards warm updates, so the warm-update
// loop runs without pool caching.
type noPoolUpdatable struct{ noPoolModel }

func (m noPoolUpdatable) Update(X [][]float64, y []float64, r *rng.RNG) error {
	return m.noPoolModel.f.Update(X, y, r)
}

// TestPoolPredictorPathBitIdentical pins the cached pool-scoring path to
// the plain PredictBatch path bit for bit, end to end through Algorithm
// 1: same seed, same strategy, the only difference being whether the
// model advertises PoolPredictor. Selections (the values the strategy
// acted on) and labels must match exactly, in both cold-refit and
// warm-update modes — the latter exercises cache invalidation after
// partial updates.
func TestPoolPredictorPathBitIdentical(t *testing.T) {
	sp, ev := quadSpace(t)
	pool := sp.SampleConfigs(rng.New(40), 120)
	run := func(fitter Fitter, warm bool) *Result {
		t.Helper()
		res, err := Run(context.Background(), sp, pool, ev, PWU{Alpha: 0.1},
			Params{NInit: 10, NBatch: 3, NMax: 40, Forest: smallForest(),
				Fitter: fitter, WarmUpdate: warm, RecordSelections: true},
			rng.New(41), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	compare := func(mode string, a, b *Result) {
		t.Helper()
		if len(a.TrainY) != len(b.TrainY) || len(a.Selections) != len(b.Selections) {
			t.Fatalf("%s: shapes differ", mode)
		}
		for i := range a.TrainY {
			if a.TrainY[i] != b.TrainY[i] {
				t.Fatalf("%s: label %d differs: %v vs %v", mode, i, a.TrainY[i], b.TrainY[i])
			}
		}
		for i := range a.Selections {
			x, y := a.Selections[i], b.Selections[i]
			if x.Mu != y.Mu || x.Sigma != y.Sigma || x.Y != y.Y {
				t.Fatalf("%s: selection %d differs: %+v vs %+v", mode, i, x, y)
			}
		}
	}

	coldFitter := func(X [][]float64, y []float64, fs []space.Feature, r *rng.RNG) (Model, error) {
		f, err := forest.Fit(X, y, fs, smallForest(), r)
		if err != nil {
			return nil, err
		}
		return noPoolModel{f}, nil
	}
	compare("cold", run(nil, false), run(coldFitter, false))

	warmFitter := func(X [][]float64, y []float64, fs []space.Feature, r *rng.RNG) (Model, error) {
		f, err := forest.Fit(X, y, fs, smallForest(), r)
		if err != nil {
			return nil, err
		}
		return noPoolUpdatable{noPoolModel{f}}, nil
	}
	compare("warm", run(nil, true), run(warmFitter, true))
}
