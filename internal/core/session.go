package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/forest"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/space"
)

// This file is the ask-tell inversion of the run engine. Session owns
// everything Algorithm 1 needs except the evaluator: the surrogate, the
// acquisition state, pool membership, the RNG stream, telemetry and
// checkpointing. The caller owns evaluation — it Asks for a batch of
// configurations, measures them however it likes (locally, remotely, by
// hand), and Tells the labels back. Run/RunStream/Resume/ResumeStream
// are thin drivers over a Session plus an in-process labeler
// (driver.go), bit-identical to the historical monolithic loops — the
// session-equivalence goldens pin that equivalence.
//
// The state machine:
//
//	cold ──Ask──▶ labeling ──Tell×batch──▶ ready ──Ask──▶ labeling ─ ...
//	                                        │
//	                                        └──(NMax labels)──▶ done
//
// Ask is idempotent while labels are outstanding (it re-returns the
// pending batch, which is what makes crash recovery trivial: a restored
// session re-derives the lost batch from the restored RNG). Tell
// consumes labels strictly in batch order; when the label guard demands
// re-measurements, the re-measurement slots are prepended to the
// pending queue and Tell reports how many labels it consumed so a
// batching caller can re-Ask and realign.

// sessionPhase is the state-machine position of a Session.
type sessionPhase int

const (
	// phaseCold: created, the cold-start batch has not been asked yet.
	phaseCold sessionPhase = iota

	// phaseLabeling: a batch is outstanding; Tell consumes its labels.
	phaseLabeling

	// phaseReady: at an iteration boundary with a fitted model; the next
	// Ask selects a batch.
	phaseReady

	// phaseDone: NMax labels collected; the session is complete.
	phaseDone

	// phaseFailed: a terminal engine error; every call re-returns it.
	phaseFailed
)

// String names the phase for diagnostics and the service stats.
func (p sessionPhase) String() string {
	switch p {
	case phaseCold:
		return "cold"
	case phaseLabeling:
		return "labeling"
	case phaseReady:
		return "ready"
	case phaseDone:
		return "done"
	case phaseFailed:
		return "failed"
	}
	return "unknown"
}

// ErrSessionDone reports an Ask or Tell against a session that already
// collected its NMax labels.
var ErrSessionDone = errors.New("core: session complete")

// Label is the caller's answer to one asked configuration, in batch
// order. Beyond the measured value it carries the labeling telemetry
// the measurement accumulated (retries, timeouts, the machine time of
// failed attempts), so a driver that retries externally bills the run
// exactly like the historical in-process engine did.
type Label struct {
	// Y is the measured performance (execution time; smaller is better).
	Y float64 `json:"y"`

	// Skip drops the configuration from the pool unlabeled — the
	// ask-tell form of FailSkip after an exhausted retry budget.
	Skip bool `json:"skip,omitempty"`

	// Retries / Timeouts count failed attempts behind this label that
	// were retried, and the subset cut off by a deadline.
	Retries  int `json:"retries,omitempty"`
	Timeouts int `json:"timeouts,omitempty"`

	// FailedCost is machine time consumed by failed attempts (billed
	// into CC; non-finite or non-positive values are ignored).
	FailedCost float64 `json:"failed_cost,omitempty"`
}

// TellReport summarizes what one Tell call did with its labels.
type TellReport struct {
	// Consumed is how many of the call's labels were applied. It is
	// less than len(labels) only when the label guard inserted
	// re-measurement slots mid-call: the caller's remaining labels no
	// longer line up with the queue and must be re-asked.
	Consumed int `json:"consumed"`

	// Pending is how many labels the session still expects before the
	// current batch completes (0 when the batch just completed).
	Pending int `json:"pending"`

	// Flagged / Quarantined / Remeasure are the guard activity of this
	// call: labels found suspect, labels dropped untrained, and
	// re-measurement slots newly appended to the batch.
	Flagged     int `json:"flagged,omitempty"`
	Quarantined int `json:"quarantined,omitempty"`
	Remeasure   int `json:"remeasure,omitempty"`

	// Completed reports that this call finished the batch: the model
	// was (re)fitted and the session advanced to the next boundary.
	Completed bool `json:"completed"`

	// Done reports the session collected its NMax labels.
	Done bool `json:"done"`
}

// SessionConfig assembles a Session. Exactly one of Pool (in-memory
// candidates) or Source (streamed candidates, bounded memory) must be
// set; with Source the space is taken from the source and Space may be
// nil.
type SessionConfig struct {
	Space    *space.Space
	Pool     []space.Config
	Source   pool.Source
	Strategy Strategy
	Params   Params
	RNG      *rng.RNG
	Observer Observer

	// Evaluator is optional and never called by the Session: it is
	// consulted only when it implements StatefulEvaluator, so snapshots
	// capture (and resumes restore) the evaluator's noise stream.
	Evaluator Evaluator

	// Service is an opaque manifest stored verbatim in snapshots (wire
	// version 2); the tuning service keeps its session identity —
	// tenant, space spec, seeds — here so a daemon restart can rebuild
	// the session's inputs from the checkpoint alone.
	Service json.RawMessage
}

// pendingItem is one queue slot awaiting a label.
type pendingItem struct {
	cfg space.Config
	x   []float64 // encoded features (loop phase only)
	idx int       // pool index (in-memory) or global source index (streamed)

	// mu/sigma are the model's beliefs at selection time; guarded marks
	// loop-phase items the label guard screens (cold-start items have
	// no model to screen against).
	mu, sigma float64
	guarded   bool

	// rm links guard re-measurement slots to their flagged original.
	rm *remeasure
}

// remeasure tracks one guard-flagged label through its K re-measurements.
type remeasure struct {
	item pendingItem // the flagged original (beliefs, features, index)
	y    float64     // the flagged measurement
	vals []float64   // successful re-measurements
	left int         // outstanding re-measurement slots
}

// Session is the resumable ask-tell state machine of Algorithm 1. It is
// not safe for concurrent use; the service layer serializes access per
// session.
type Session struct {
	sp       *space.Space
	pl       []space.Config
	poolX    [][]float64
	features []space.Feature
	strat    Strategy
	p        Params
	r        *rng.RNG
	obs      Observer
	fitter   Fitter
	ev       Evaluator // optional; only StatefulEvaluator state is used

	// src, ss and taken are the streamed pool state: the lazy candidate
	// source, the streaming strategy view, and the sorted global
	// indices already removed from the pool (at most NMax of them — the
	// streaming analogue of `remaining`, inverted so its size scales
	// with labels taken rather than pool size).
	src   pool.Source
	ss    StreamStrategy
	taken []int

	// cache reuses score panels across the streamed run's scans (nil
	// when disabled; see Params.StreamCacheMB).
	cache *pool.ScanCache

	service json.RawMessage

	res       *Result
	trainX    [][]float64
	remaining []int
	model     Model
	iter      int
	labelSum  float64 // running sum of TrainY

	phase     sessionPhase
	queue     []pendingItem
	batchIdx  []int // pool/global indices claimed by the current batch
	cur       IterStats
	evalStart time.Time
	err       error // terminal error (phaseFailed)
}

// NewSession validates the configuration and builds a session in the
// cold phase; the first Ask returns the NInit cold-start batch.
func NewSession(cfg SessionConfig) (*Session, error) {
	if cfg.RNG == nil {
		return nil, fmt.Errorf("core: nil generator")
	}
	return newSession(cfg, cfg.RNG)
}

// newSession is the shared construction path of NewSession and
// ResumeSession (which restores the generator from the snapshot instead
// of taking a fresh one).
func newSession(cfg SessionConfig, r *rng.RNG) (*Session, error) {
	p := cfg.Params.Normalized()
	s := &Session{
		strat: cfg.Strategy, p: p, r: r, obs: cfg.Observer,
		ev: cfg.Evaluator, service: cfg.Service,
		res: &Result{},
	}
	var n int
	if cfg.Source != nil {
		if cfg.Pool != nil {
			return nil, fmt.Errorf("core: both Pool and Source set")
		}
		s.src = cfg.Source
		s.sp = cfg.Source.Space()
		if s.sp == nil {
			return nil, fmt.Errorf("core: source has nil space")
		}
		if s.strat == nil {
			return nil, fmt.Errorf("core: nil strategy")
		}
		ss, ok := s.strat.(StreamStrategy)
		if !ok {
			return nil, fmt.Errorf("core: strategy %q does not support streaming selection", s.strat.Name())
		}
		s.ss = ss
		n = s.src.Len()
	} else {
		s.sp = cfg.Space
		if s.sp == nil {
			return nil, fmt.Errorf("core: nil space")
		}
		if s.strat == nil {
			return nil, fmt.Errorf("core: nil strategy")
		}
		s.pl = cfg.Pool
		n = len(s.pl)
	}
	if n < p.NInit {
		return nil, fmt.Errorf("core: pool size %d smaller than NInit %d", n, p.NInit)
	}
	if p.NMax > n {
		return nil, fmt.Errorf("core: NMax %d exceeds pool size %d", p.NMax, n)
	}
	if p.NInit > p.NMax {
		return nil, fmt.Errorf("core: NInit %d exceeds NMax %d", p.NInit, p.NMax)
	}

	if s.src != nil {
		s.taken = make([]int, 0, p.NMax)
		if p.WarmUpdate && p.StreamCacheMB >= 0 {
			s.cache = pool.NewScanCache(int64(p.StreamCacheMB) << 20)
		}
	} else {
		s.poolX = s.sp.EncodeAll(s.pl)
		s.remaining = make([]int, len(s.pl))
		for i := range s.remaining {
			s.remaining[i] = i
		}
	}
	s.features = s.sp.Features()
	s.trainX = make([][]float64, 0, p.NMax)
	s.fitter = p.Fitter
	if s.fitter == nil {
		fc := p.Forest
		s.fitter = func(X [][]float64, y []float64, fs []space.Feature, fr *rng.RNG) (Model, error) {
			return forest.Fit(X, y, fs, fc, fr)
		}
	}
	return s, nil
}

// fail records a terminal engine error; every subsequent Ask/Tell
// re-returns it.
func (s *Session) fail(err error) error {
	s.phase = phaseFailed
	s.err = err
	return err
}

// Done reports that the session collected its NMax labels.
func (s *Session) Done() bool { return s.phase == phaseDone }

// Err returns the terminal error of a failed session, nil otherwise.
func (s *Session) Err() error { return s.err }

// Phase names the session's state-machine position.
func (s *Session) Phase() string { return s.phase.String() }

// Iteration counts completed loop iterations (0 during/after cold start).
func (s *Session) Iteration() int { return s.iter }

// Samples is the labeled-set size so far.
func (s *Session) Samples() int { return len(s.res.TrainY) }

// Expecting is how many labels the current batch still awaits (0 at a
// boundary).
func (s *Session) Expecting() int { return len(s.queue) }

// Model returns the current surrogate (nil before the cold-start fit).
func (s *Session) Model() Model { return s.model }

// Service returns the opaque manifest the session carries in snapshots.
func (s *Session) Service() json.RawMessage { return s.service }

// Result returns the session's live result, stamping the generator's
// current stream position. The same pointer is returned every call; it
// keeps growing while the session runs.
func (s *Session) Result() *Result {
	if s.r != nil {
		s.res.RNGState = s.r.State()
	}
	return s.res
}

// pendingConfigs returns the queued configurations in labeling order.
// Callers must not mutate the configs.
func (s *Session) pendingConfigs() []space.Config {
	out := make([]space.Config, len(s.queue))
	for i, it := range s.queue {
		out[i] = it.cfg
	}
	return out
}

// Ask returns the next batch of configurations to label. While labels
// are outstanding it is idempotent and re-returns the pending batch; at
// a boundary it advances the machine — the cold-start sample first,
// then one strategy-selected batch per call. A cancelled ctx at a loop
// boundary drains a final checkpoint and returns the interruption
// without consuming any randomness, so a later Ask with a live context
// continues exactly where the session stopped.
func (s *Session) Ask(ctx context.Context) ([]space.Config, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch s.phase {
	case phaseFailed:
		return nil, s.err
	case phaseDone:
		return nil, ErrSessionDone
	case phaseLabeling:
		return s.pendingConfigs(), nil
	case phaseCold:
		return s.askCold()
	default:
		return s.askLoop(ctx)
	}
}

// askCold stages the uniform NInit cold-start sample — the same
// generator draw and labeling order as the historical coldStart.
func (s *Session) askCold() ([]space.Config, error) {
	s.cur = IterStats{Iteration: 0}
	var items []pendingItem
	if s.src != nil {
		initSel := s.r.Sample(s.src.Len(), s.p.NInit)
		cfgs, err := s.fetchConfigs(initSel)
		if err != nil {
			return nil, s.fail(fmt.Errorf("core: cold-start fetch: %w", err))
		}
		items = make([]pendingItem, len(initSel))
		for i, g := range initSel {
			items[i] = pendingItem{cfg: cfgs[i], idx: g}
		}
	} else {
		initSel := s.r.Sample(len(s.remaining), s.p.NInit)
		items = make([]pendingItem, len(initSel))
		for i, k := range initSel {
			idx := s.remaining[k]
			items[i] = pendingItem{cfg: s.pl[idx], idx: idx}
		}
	}
	return s.stage(items), nil
}

// askLoop advances one loop iteration to its labeling phase: scoring,
// strategy selection, and upfront validation of the selected batch.
func (s *Session) askLoop(ctx context.Context) ([]space.Config, error) {
	if err := ctx.Err(); err != nil {
		// Drain: this is an iteration boundary, so the state is
		// snapshot-clean; persist it for resume before bailing out.
		s.drainCheckpoint()
		return nil, fmt.Errorf("core: interrupted after %d iterations (%d labels): %w",
			s.iter, len(s.res.TrainY), err)
	}
	remaining := s.remainingCount()
	if remaining == 0 {
		return nil, ErrPoolExhausted
	}
	s.iter++
	s.res.Iterations = s.iter
	s.cur = IterStats{Iteration: s.iter}
	batch := s.p.NBatch
	if rem := s.p.NMax - len(s.res.TrainY); batch > rem {
		batch = rem
	}
	if s.src != nil {
		return s.selectStream(batch, remaining)
	}
	return s.selectPool(batch)
}

// remainingCount is the unlabeled pool size.
func (s *Session) remainingCount() int {
	if s.src != nil {
		return s.src.Len() - len(s.taken)
	}
	return len(s.remaining)
}

// bestY is the best (smallest) label so far; only valid after the cold
// start.
func (s *Session) bestY() float64 {
	best := s.res.TrainY[0]
	for _, y := range s.res.TrainY[1:] {
		if y < best {
			best = y
		}
	}
	return best
}

// selectPool runs the in-memory selection of one iteration and stages
// the chosen batch.
func (s *Session) selectPool(batch int) ([]space.Config, error) {
	selStart := time.Now()
	cand := &Candidates{Rand: s.r}
	if pp, ok := s.model.(PoolPredictor); ok {
		// Cached scoring path: no candidate-matrix rebuild, and after a
		// warm Update only refreshed trees re-predict.
		pp.BindPool(s.poolX)
		cand.Pool, cand.Rows = s.poolX, s.remaining
		cand.Mu, cand.Sigma = pp.PredictPool(s.remaining)
		s.cur.PoolCached = true
	} else {
		candX := make([][]float64, len(s.remaining))
		for i, idx := range s.remaining {
			candX[i] = s.poolX[idx]
		}
		cand.X = candX
		cand.Mu, cand.Sigma = s.model.PredictBatch(candX)
	}
	cand.BestY = s.bestY()
	sel := s.strat.Select(cand, batch)
	s.cur.SelectTime = time.Since(selStart)
	if len(sel) == 0 {
		return nil, s.fail(fmt.Errorf("core: strategy %q selected nothing at iteration %d", s.strat.Name(), s.iter))
	}
	items := make([]pendingItem, 0, len(sel))
	seen := make(map[int]bool, len(sel))
	for _, k := range sel {
		if k < 0 || k >= len(s.remaining) {
			return nil, s.fail(fmt.Errorf("core: strategy %q returned out-of-range index %d", s.strat.Name(), k))
		}
		idx := s.remaining[k]
		if seen[idx] {
			return nil, s.fail(fmt.Errorf("core: strategy %q returned duplicate index %d", s.strat.Name(), k))
		}
		seen[idx] = true
		items = append(items, pendingItem{
			cfg: s.pl[idx], x: s.poolX[idx], idx: idx,
			mu: cand.Mu[k], sigma: cand.Sigma[k], guarded: true,
		})
	}
	return s.stage(items), nil
}

// selectStream runs the streamed selection of one iteration — a sharded
// scan reduced by the strategy — and stages the chosen batch.
func (s *Session) selectStream(batch, remaining int) ([]space.Config, error) {
	selStart := time.Now()
	sel, err := s.ss.SelectStream(&poolStream{s: s, bestY: s.bestY()}, batch)
	if err != nil {
		return nil, s.fail(fmt.Errorf("core: streaming selection at iteration %d: %w", s.iter, err))
	}
	s.cur.SelectTime = time.Since(selStart)
	if len(sel) == 0 {
		return nil, s.fail(fmt.Errorf("core: strategy %q selected nothing at iteration %d", s.strat.Name(), s.iter))
	}
	globals := make([]int, len(sel))
	seen := make(map[int]bool, len(sel))
	for i, o := range sel {
		if o < 0 || o >= remaining {
			return nil, s.fail(fmt.Errorf("core: strategy %q returned out-of-range index %d", s.strat.Name(), o))
		}
		g := s.ordToGlobal(o)
		if seen[g] {
			return nil, s.fail(fmt.Errorf("core: strategy %q returned duplicate index %d", s.strat.Name(), o))
		}
		seen[g] = true
		globals[i] = g
	}
	cfgs, err := s.fetchConfigs(globals)
	if err != nil {
		return nil, s.fail(fmt.Errorf("core: iteration %d: %w", s.iter, err))
	}
	// Selection-time model beliefs, for the guard and the selection
	// record: PredictBatch rows are bit-identical to the values the
	// scan's ScoreBatch produced for the same candidates.
	selX := s.sp.EncodeAll(cfgs)
	selMu, selSigma := s.model.PredictBatch(selX)
	items := make([]pendingItem, len(globals))
	for i, g := range globals {
		items[i] = pendingItem{
			cfg: cfgs[i], x: selX[i], idx: g,
			mu: selMu[i], sigma: selSigma[i], guarded: true,
		}
	}
	return s.stage(items), nil
}

// stage installs a validated batch as the pending queue and flips the
// machine to the labeling phase.
func (s *Session) stage(items []pendingItem) []space.Config {
	s.queue = items
	s.batchIdx = s.batchIdx[:0]
	for _, it := range items {
		s.batchIdx = append(s.batchIdx, it.idx)
	}
	s.phase = phaseLabeling
	s.evalStart = time.Now()
	return s.pendingConfigs()
}

// Tell applies labels to the pending batch, in batch order. When the
// last expected label arrives the iteration completes: pool membership
// is updated, the surrogate is (re)fitted, the observer and checkpoint
// sink run, and the session advances to the next boundary (or done).
//
// Tell may consume fewer labels than given: when the label guard flags
// a label under GuardRemeasure, K re-measurement slots are inserted at
// the front of the queue and the call stops consuming, because the
// caller's remaining labels no longer correspond to what the session
// expects. The report says how many were consumed; re-Ask to realign.
func (s *Session) Tell(ctx context.Context, labels []Label) (*TellReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	switch s.phase {
	case phaseFailed:
		return nil, s.err
	case phaseDone:
		return nil, ErrSessionDone
	case phaseLabeling:
	default:
		return nil, fmt.Errorf("core: no labels expected (call Ask first)")
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("core: empty tell")
	}
	if len(labels) > len(s.queue) {
		return nil, fmt.Errorf("core: %d labels told, %d expected", len(labels), len(s.queue))
	}
	rep := &TellReport{}
	for _, l := range labels {
		rep.Consumed++
		if s.apply(l, rep) && rep.Consumed < len(labels) {
			// Re-measurement slots were inserted mid-call; stop before
			// misaligned labels land on the wrong configurations.
			break
		}
	}
	rep.Pending = len(s.queue)
	if len(s.queue) > 0 {
		return rep, nil
	}
	if err := s.completeBatch(); err != nil {
		return rep, err
	}
	rep.Completed = true
	rep.Done = s.phase == phaseDone
	return rep, nil
}

// apply consumes one label against the queue front. It returns true
// when guard re-measurement slots were inserted (the queue no longer
// lines up with the caller's label stream).
func (s *Session) apply(l Label, rep *TellReport) (inserted bool) {
	it := s.queue[0]
	s.queue = s.queue[1:]
	if l.Retries > 0 {
		s.cur.EvalRetries += l.Retries
	}
	if l.Timeouts > 0 {
		s.cur.EvalTimeouts += l.Timeouts
	}
	s.billFailed(l.FailedCost)
	if it.rm != nil {
		// A guard re-measurement: collect toward the median. Skips
		// count against K but contribute no value; re-measured labels
		// are themselves never re-guarded.
		if l.Skip {
			s.cur.EvalSkips++
		} else {
			it.rm.vals = append(it.rm.vals, l.Y)
		}
		it.rm.left--
		if it.rm.left == 0 {
			s.resolveRemeasure(it.rm, rep)
		}
		return false
	}
	if l.Skip {
		s.cur.EvalSkips++
		return false
	}
	y := l.Y
	if it.guarded && s.p.Guard.enabled() && s.p.Guard.suspect(y, it.mu, it.sigma) {
		s.cur.GuardFlagged++
		rep.Flagged++
		if s.p.Guard.Action == GuardQuarantine {
			s.billGuard(y)
			s.cur.GuardQuarantined++
			rep.Quarantined++
			return false
		}
		k := s.p.Guard.K
		if k <= 0 {
			k = 3
		}
		rm := &remeasure{item: it, y: y, left: k}
		slots := make([]pendingItem, k, k+len(s.queue))
		for j := range slots {
			slots[j] = pendingItem{cfg: it.cfg, idx: it.idx, rm: rm}
		}
		s.queue = append(slots, s.queue...)
		rep.Remeasure += k
		return true
	}
	s.accept(it, y)
	return false
}

// resolveRemeasure finishes a flagged label once its K re-measurement
// slots are consumed: median label, or quarantine when every
// re-measurement failed.
func (s *Session) resolveRemeasure(rm *remeasure, rep *TellReport) {
	if len(rm.vals) == 0 {
		// Every re-measurement failed its retry budget: the
		// configuration is poison either way.
		s.billGuard(rm.y)
		s.cur.GuardQuarantined++
		rep.Quarantined++
		return
	}
	s.cur.GuardRemeasured++
	m := median(rm.vals)
	// The run spent y plus every re-measurement of machine time on this
	// label; the median becomes the label (counted in CC through
	// TrainY), the rest is guard overhead.
	waste := rm.y - m
	for _, v := range rm.vals {
		waste += v
	}
	s.billGuard(waste)
	s.accept(rm.item, m)
}

// accept trains on a labeled configuration.
func (s *Session) accept(it pendingItem, y float64) {
	s.res.TrainConfigs = append(s.res.TrainConfigs, it.cfg)
	s.res.TrainY = append(s.res.TrainY, y)
	s.labelSum += y
	if s.cur.Iteration > 0 {
		s.trainX = append(s.trainX, it.x)
		if s.p.RecordSelections {
			s.res.Selections = append(s.res.Selections, Selection{
				Config: it.cfg, Mu: it.mu, Sigma: it.sigma, Y: y, Iteration: s.cur.Iteration,
			})
		}
	}
}

// billFailed accounts machine time consumed by failed attempts.
func (s *Session) billFailed(cost float64) {
	if cost <= 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return
	}
	s.cur.FailedCost += cost
	s.res.FailedCost += cost
}

// billGuard accounts guard-consumed machine time.
func (s *Session) billGuard(cost float64) {
	if cost <= 0 || math.IsNaN(cost) || math.IsInf(cost, 0) {
		return
	}
	s.cur.GuardCost += cost
	s.res.GuardCost += cost
}

// completeBatch closes the labeled batch: membership update, (re)fit,
// telemetry, observer, checkpoint, and the phase transition.
func (s *Session) completeBatch() error {
	s.cur.EvalTime = time.Since(s.evalStart)
	if s.src != nil {
		for _, g := range s.batchIdx {
			s.markTaken(g)
		}
	} else {
		tk := make(map[int]bool, len(s.batchIdx))
		for _, idx := range s.batchIdx {
			tk[idx] = true
		}
		s.remaining = compact(s.remaining, tk)
	}

	cold := s.cur.Iteration == 0
	if cold {
		if len(s.res.TrainY) == 0 {
			return s.fail(fmt.Errorf("core: every cold-start evaluation failed: %w", ErrPoolExhausted))
		}
		for _, cfg := range s.res.TrainConfigs {
			s.trainX = append(s.trainX, s.sp.Encode(cfg))
		}
	}

	fitStart := time.Now()
	var err error
	if u, ok := s.model.(Updatable); !cold && s.p.WarmUpdate && ok {
		err = u.Update(s.trainX, s.res.TrainY, s.r.Split())
	} else {
		var m Model
		m, err = s.fitter(s.trainX, s.res.TrainY, s.features, s.r.Split())
		if err == nil {
			s.model = m
		}
	}
	if err != nil {
		if cold {
			return s.fail(fmt.Errorf("core: cold-start fit: %w", err))
		}
		return s.fail(fmt.Errorf("core: refit at iteration %d: %w", s.iter, err))
	}
	s.cur.FitTime = time.Since(fitStart)
	s.cur.Samples = len(s.res.TrainY)
	s.res.Model = s.model

	if err := s.observe(s.cur); err != nil {
		return s.fail(err)
	}
	if err := s.checkpoint(false); err != nil {
		return s.fail(err)
	}
	if len(s.res.TrainY) >= s.p.NMax {
		s.phase = phaseDone
	} else {
		s.phase = phaseReady
	}
	return nil
}

// observe appends the event to the telemetry stream and notifies the
// observer.
func (s *Session) observe(stats IterStats) error {
	s.res.Stats = append(s.res.Stats, stats)
	if s.obs == nil {
		return nil
	}
	return s.obs(&State{
		Model:        s.model,
		TrainConfigs: s.res.TrainConfigs,
		TrainY:       s.res.TrainY,
		Iteration:    s.iter,
		Stats:        stats,
		LabelCost:    s.labelSum + s.res.FailedCost + s.res.GuardCost,
	})
}

// evalError phrases a driver-side labeling failure exactly as the
// historical monolithic loops did, based on where the machine stands.
func (s *Session) evalError(err error) error {
	if s.cur.Iteration == 0 {
		return fmt.Errorf("core: cold-start evaluation: %w", err)
	}
	if len(s.queue) > 0 && s.queue[0].rm != nil {
		return fmt.Errorf("core: iteration %d: label guard: %w", s.iter, err)
	}
	return fmt.Errorf("core: iteration %d: %w", s.iter, err)
}
