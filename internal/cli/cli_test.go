package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("boom"), ExitFailure},
		{context.Canceled, ExitInterrupt},
		{context.DeadlineExceeded, ExitInterrupt},
		{fmt.Errorf("model phase: %w", context.Canceled), ExitInterrupt},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", context.DeadlineExceeded)), ExitInterrupt},
		{fmt.Errorf("mentions context.Canceled but does not wrap it"), ExitFailure},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}
