package cli

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{errors.New("boom"), ExitFailure},
		{context.Canceled, ExitInterrupt},
		{context.DeadlineExceeded, ExitInterrupt},
		{fmt.Errorf("model phase: %w", context.Canceled), ExitInterrupt},
		{fmt.Errorf("outer: %w", fmt.Errorf("inner: %w", context.DeadlineExceeded)), ExitInterrupt},
		{fmt.Errorf("mentions context.Canceled but does not wrap it"), ExitFailure},
	}
	for _, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("ExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

func TestIntValidators(t *testing.T) {
	cases := []struct {
		fn   func(string, int) error
		name string
		v    int
		ok   bool
	}{
		{PositiveInt, "-shard", 1, true},
		{PositiveInt, "-shard", 1024, true},
		{PositiveInt, "-shard", 0, false},
		{PositiveInt, "-every", -3, false},
		{NonNegativeInt, "-workers", 0, true},
		{NonNegativeInt, "-workers", 8, true},
		{NonNegativeInt, "-workers", -1, false},
	}
	for _, c := range cases {
		err := c.fn(c.name, c.v)
		if (err == nil) != c.ok {
			t.Errorf("validator(%s, %d): err = %v, want ok=%v", c.name, c.v, err, c.ok)
		}
		if err != nil && !contains(err.Error(), c.name) {
			t.Errorf("error %q does not name the flag %s", err, c.name)
		}
	}
}

func TestDurationValidators(t *testing.T) {
	cases := []struct {
		fn   func(string, time.Duration) error
		name string
		v    time.Duration
		ok   bool
	}{
		{PositiveDuration, "-drain-timeout", time.Second, true},
		{PositiveDuration, "-drain-timeout", 0, false},
		{PositiveDuration, "-drain-timeout", -time.Second, false},
		{NonNegativeDuration, "-timeout", 0, true},
		{NonNegativeDuration, "-timeout", time.Minute, true},
		{NonNegativeDuration, "-timeout", -time.Millisecond, false},
	}
	for _, c := range cases {
		err := c.fn(c.name, c.v)
		if (err == nil) != c.ok {
			t.Errorf("validator(%s, %v): err = %v, want ok=%v", c.name, c.v, err, c.ok)
		}
	}
}

func TestFraction(t *testing.T) {
	cases := []struct {
		v  float64
		ok bool
	}{
		{0.05, true}, {1, true}, {0, false}, {-0.1, false}, {1.5, false},
	}
	for _, c := range cases {
		if err := Fraction("-alpha", c.v); (err == nil) != c.ok {
			t.Errorf("Fraction(%g): err = %v, want ok=%v", c.v, err, c.ok)
		}
	}
}

func TestListenAddr(t *testing.T) {
	cases := []struct {
		addr string
		ok   bool
	}{
		{":8080", true},
		{"localhost:9090", true},
		{"127.0.0.1:0", true},
		{"", false},
		{"localhost", false},
		{"http://localhost:9090", false},
	}
	for _, c := range cases {
		if err := ListenAddr("-addr", c.addr); (err == nil) != c.ok {
			t.Errorf("ListenAddr(%q): err = %v, want ok=%v", c.addr, err, c.ok)
		}
	}
}

func TestRemoteURL(t *testing.T) {
	cases := []struct {
		raw  string
		want string // "" means error expected
	}{
		{"localhost:9090", "http://localhost:9090"},
		{"http://localhost:9090", "http://localhost:9090"},
		{"https://coord.example:443", "https://coord.example:443"},
		{"http://localhost:9090/", "http://localhost:9090"},
		{"", ""},
		{"localhost", ""},                   // no port
		{"ftp://localhost:9090", ""},        // bad scheme
		{"http://localhost:9090/fleet", ""}, // path not allowed
	}
	for _, c := range cases {
		got, err := RemoteURL("-remote", c.raw)
		if c.want == "" {
			if err == nil {
				t.Errorf("RemoteURL(%q) = %q, want error", c.raw, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("RemoteURL(%q): unexpected error %v", c.raw, err)
			continue
		}
		if got != c.want {
			t.Errorf("RemoteURL(%q) = %q, want %q", c.raw, got, c.want)
		}
	}
}

func TestFirstError(t *testing.T) {
	e1, e2 := errors.New("one"), errors.New("two")
	if got := FirstError(nil, nil); got != nil {
		t.Errorf("FirstError(nil, nil) = %v", got)
	}
	if got := FirstError(nil, e1, e2); got != e1 {
		t.Errorf("FirstError = %v, want %v", got, e1)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
