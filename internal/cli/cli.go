// Package cli centralizes the exit-code conventions shared by every
// binary in cmd/: 0 for success, 1 for failure, and 130 (128 + SIGINT)
// for a run that ended because it was cancelled — so shell scripts and
// CI can tell "the experiment is wrong" from "the operator hit Ctrl-C".
package cli

import (
	"context"
	"errors"
	"fmt"
	"os"
)

// Exit codes. ExitInterrupt follows the shell convention of 128 + the
// signal number, SIGINT being 2.
const (
	ExitOK        = 0
	ExitFailure   = 1
	ExitInterrupt = 130
)

// ExitCode classifies err: nil is success, a context cancellation (the
// signal handler's fingerprint) is an interrupt, anything else a
// failure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return ExitInterrupt
	default:
		return ExitFailure
	}
}

// Fatal prints err to stderr and exits with its classified code. A nil
// err exits 0 silently.
func Fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
	}
	os.Exit(ExitCode(err))
}

// Fatalf prints a formatted failure to stderr and exits ExitFailure —
// for usage and validation errors that never involve a context.
func Fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "error: "+format+"\n", args...)
	os.Exit(ExitFailure)
}
