// Package cli centralizes the exit-code conventions shared by every
// binary in cmd/: 0 for success, 1 for failure, and 130 (128 + SIGINT)
// for a run that ended because it was cancelled — so shell scripts and
// CI can tell "the experiment is wrong" from "the operator hit Ctrl-C".
package cli

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/url"
	"os"
	"strings"
	"time"
)

// Exit codes. ExitInterrupt follows the shell convention of 128 + the
// signal number, SIGINT being 2.
const (
	ExitOK        = 0
	ExitFailure   = 1
	ExitInterrupt = 130
)

// ExitCode classifies err: nil is success, a context cancellation (the
// signal handler's fingerprint) is an interrupt, anything else a
// failure.
func ExitCode(err error) int {
	switch {
	case err == nil:
		return ExitOK
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		return ExitInterrupt
	default:
		return ExitFailure
	}
}

// Fatal prints err to stderr and exits with its classified code. A nil
// err exits 0 silently.
func Fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "error:", err)
	}
	os.Exit(ExitCode(err))
}

// Fatalf prints a formatted failure to stderr and exits ExitFailure —
// for usage and validation errors that never involve a context.
func Fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "error: "+format+"\n", args...)
	os.Exit(ExitFailure)
}

// Flag validation helpers, shared by every binary in cmd/ so a bad
// value fails at startup with a uniform message instead of being
// silently clamped or panicking minutes into a run. Each returns nil
// or an error naming the flag; collect them with FirstError and hand
// the result to Fatal.

// PositiveInt rejects values < 1 for flags where zero is meaningless
// (-shard, -every, -trees, -max-sessions, ...).
func PositiveInt(name string, v int) error {
	if v < 1 {
		return fmt.Errorf("%s must be positive, got %d", name, v)
	}
	return nil
}

// NonNegativeInt rejects negative values for flags where 0 is a
// documented "use the default" sentinel (-workers meaning GOMAXPROCS).
func NonNegativeInt(name string, v int) error {
	if v < 0 {
		return fmt.Errorf("%s must not be negative, got %d", name, v)
	}
	return nil
}

// PositiveDuration rejects non-positive durations.
func PositiveDuration(name string, v time.Duration) error {
	if v <= 0 {
		return fmt.Errorf("%s must be positive, got %v", name, v)
	}
	return nil
}

// NonNegativeDuration rejects negative durations where 0 means
// "disabled".
func NonNegativeDuration(name string, v time.Duration) error {
	if v < 0 {
		return fmt.Errorf("%s must not be negative, got %v", name, v)
	}
	return nil
}

// Fraction rejects values outside (0, 1] for proportion flags
// (-alpha).
func Fraction(name string, v float64) error {
	if v <= 0 || v > 1 {
		return fmt.Errorf("%s must be in (0, 1], got %g", name, v)
	}
	return nil
}

// ListenAddr validates a bind address of the form host:port (empty
// host and port 0 are fine: "bind anywhere, pick a port").
func ListenAddr(name, addr string) error {
	if addr == "" {
		return fmt.Errorf("%s must not be empty", name)
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return fmt.Errorf("%s %q is not host:port: %v", name, addr, err)
	}
	return nil
}

// RemoteURL validates and normalizes a coordinator address: either a
// host:port or a full http(s) URL. The returned base URL always
// carries a scheme (http by default) and no trailing slash, ready for
// a fleet worker or client to dial.
func RemoteURL(name, raw string) (string, error) {
	if raw == "" {
		return "", fmt.Errorf("%s must not be empty", name)
	}
	s := raw
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("%s %q: %v", name, raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("%s %q: scheme must be http or https", name, raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("%s %q has no host", name, raw)
	}
	if _, _, err := net.SplitHostPort(u.Host); err != nil {
		return "", fmt.Errorf("%s %q is not host:port: %v", name, raw, err)
	}
	if u.Path != "" && u.Path != "/" {
		return "", fmt.Errorf("%s %q must not carry a path", name, raw)
	}
	return u.Scheme + "://" + u.Host, nil
}

// FirstError returns the first non-nil error, for validating a flag
// set in one statement.
func FirstError(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
