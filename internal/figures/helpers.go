package figures

import (
	"context"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// speedupFromCurves computes the Fig. 7 statistic from two curve sets.
func speedupFromCurves(pwu, pbus *experiment.CurveSet) (speedup, target float64, ok bool) {
	return metrics.SpeedupToTarget(pwu.RMSECurve(), pwu.CCCurve(), pbus.RMSECurve(), pbus.CCCurve(), 1.05)
}

// surrogateModel builds the Fig. 8 surrogate: the model produced by a
// PWU active-learning run at the given scale.
func surrogateModel(ctx context.Context, p bench.Problem, sc experiment.Scale, r *rng.RNG) (core.Model, error) {
	ds, err := dataset.Build(ctx, p, sc.PoolSize, sc.TestSize, r.Split())
	if err != nil {
		return nil, err
	}
	res, err := core.Run(ctx, p.Space(), ds.Pool, bench.Evaluator(p, r.Split()), core.PWU{Alpha: sc.Alpha},
		core.Params{NInit: sc.NInit, NBatch: sc.NBatch, NMax: sc.NMax, Forest: sc.Forest}, r.Split(), nil)
	if err != nil {
		return nil, err
	}
	return res.Model, nil
}
