// Package figures renders the paper's tables and figures from the
// experiment harness, one method per artifact. Each method writes an
// ASCII rendering (.txt) plus the raw series (.csv) into the output
// directory. Learning-curve runs are cached inside the Generator so
// figures sharing data (Fig. 2/3, Fig. 4/5) run the experiments once.
package figures

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/campaign"
	"repro/internal/experiment"
	"repro/internal/fleet"
	"repro/internal/machine"
	"repro/internal/rng"
	"repro/internal/spapt"
	"repro/internal/textplot"
	"repro/internal/tuning"
)

// Generator renders the paper's artifacts.
type Generator struct {
	Scale  experiment.Scale
	Seed   uint64
	OutDir string
	Stdout io.Writer

	// Ctx cancels the underlying experiment runs; nil means Background.
	Ctx context.Context

	Kernels []bench.Problem
	Apps    []bench.Problem

	// AppScale, when non-nil, overrides Scale for the application
	// benchmarks (they need the paper's batch size 1; see
	// experiment.QuickApp).
	AppScale *experiment.Scale

	// Workers bounds the campaign engine's worker pool; <= 0 means
	// GOMAXPROCS.
	Workers int

	// Fleet, when non-nil, drains campaigns through this submitter's
	// registered remote workers (experiment.RunCampaignFleet) instead
	// of the in-process scheduler — the embedded coordinator of
	// -remote, or a fleet.Client against a resident fleetd. Curves are
	// bit-identical either way; only the telemetry changes meaning
	// (steals become lease re-queues, the dataset cache lives per
	// worker).
	Fleet fleet.Submitter

	// curve cache: benchmark name -> per-strategy curves.
	curves map[string][]*experiment.CurveSet

	// sched and dstats accumulate the campaign drains' telemetry, for
	// the Telemetry artifact.
	sched  campaign.Stats
	dstats campaign.CacheStats
}

// ctx returns the generator's context.
func (g *Generator) ctx() context.Context {
	if g.Ctx != nil {
		return g.Ctx
	}
	return context.Background()
}

// scaleFor picks the experiment scale for a problem.
func (g *Generator) scaleFor(p bench.Problem) experiment.Scale {
	if g.AppScale != nil {
		for _, a := range g.Apps {
			if a.Name() == p.Name() {
				return *g.AppScale
			}
		}
	}
	return g.Scale
}

// strategies is the figure ordering of the compared methods.
var strategies = []string{"PWU", "PBUS", "BRS", "BestPerf", "MaxU", "Random"}

// ensureCurves runs one campaign covering every given problem that has
// no cached curves yet. Batching the problems into a single drain keeps
// the worker pool saturated across problem boundaries (the last
// repetitions of one kernel overlap the first of the next) instead of
// paying a sync barrier per problem.
func (g *Generator) ensureCurves(problems []bench.Problem) error {
	if g.curves == nil {
		g.curves = map[string][]*experiment.CurveSet{}
	}
	var items []experiment.CampaignItem
	tasks := 0
	for _, p := range problems {
		if _, ok := g.curves[p.Name()]; ok {
			continue
		}
		items = append(items, experiment.CampaignItem{Problem: p, Scale: g.scaleFor(p)})
		tasks += g.scaleFor(p).Reps * len(strategies)
	}
	if len(items) == 0 {
		return nil
	}
	fmt.Fprintf(g.Stdout, "    campaign: %d problems x %d strategies (%d tasks)...\n",
		len(items), len(strategies), tasks)
	camp := experiment.Campaign{
		Items: items, Strategies: strategies, Seed: g.Seed, Workers: g.Workers,
	}
	var (
		res *experiment.CampaignResult
		err error
	)
	if g.Fleet != nil {
		res, err = experiment.RunCampaignFleet(g.ctx(), camp, g.Fleet)
	} else {
		res, err = experiment.RunCampaign(g.ctx(), camp)
	}
	if res != nil {
		g.sched.Add(res.Scheduler)
		g.dstats.Add(res.Datasets)
	}
	if err != nil {
		return err
	}
	for _, it := range items {
		g.curves[it.Problem.Name()] = res.Curves[it.Problem.Name()]
	}
	fmt.Fprintf(g.Stdout, "    campaign: %d workers %.0f%% busy, %d steals, datasets %d built / %d served from cache\n",
		res.Scheduler.Workers, 100*res.Scheduler.Utilization, res.Scheduler.Steals,
		res.Datasets.Builds, res.Datasets.Hits)
	return nil
}

// curvesFor runs (or returns cached) all-strategy curves for p.
func (g *Generator) curvesFor(p bench.Problem) ([]*experiment.CurveSet, error) {
	if err := g.ensureCurves([]bench.Problem{p}); err != nil {
		return nil, err
	}
	return g.curves[p.Name()], nil
}

// writeFile writes content into OutDir/name.
func (g *Generator) writeFile(name, content string) error {
	return os.WriteFile(filepath.Join(g.OutDir, name), []byte(content), 0o644)
}

// writeCSV writes series CSV into OutDir/name.
func (g *Generator) writeCSV(name string, series []textplot.Series) error {
	f, err := os.Create(filepath.Join(g.OutDir, name))
	if err != nil {
		return err
	}
	defer f.Close()
	return textplot.WriteCSV(f, series)
}

// Table1 renders the ADI kernel's compilation-parameter table.
func (g *Generator) Table1() error {
	var b strings.Builder
	b.WriteString("Table I: Compilation parameters of ADI kernel\n")
	b.WriteString(fmt.Sprintf("%-15s %-7s %s\n", "Type", "Number", "Values"))
	for _, row := range spapt.ADI().Table() {
		b.WriteString(fmt.Sprintf("%-15s %-7d %s\n", row.Type, row.Number, row.Values))
	}
	fmt.Fprint(g.Stdout, b.String())
	return g.writeFile("table1_adi.txt", b.String())
}

// spaceTable renders a Table II/III-style listing of a space.
func spaceTable(title string, p bench.Problem) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString(fmt.Sprintf("%-12s %s\n", "Name", "Values"))
	sp := p.Space()
	for i := 0; i < sp.NumParams(); i++ {
		par := sp.Param(i)
		var vals []string
		for l := 0; l < par.NumLevels(); l++ {
			vals = append(vals, par.LevelString(l))
		}
		v := strings.Join(vals, ", ")
		if len(vals) > 12 {
			v = strings.Join(vals[:6], ", ") + ", ..., " + vals[len(vals)-1]
		}
		b.WriteString(fmt.Sprintf("%-12s %s\n", par.Name, v))
	}
	return b.String()
}

// Table2 renders the kripke parameter table.
func (g *Generator) Table2() error {
	s := spaceTable("Table II: Parameters of kripke", kripkeProblem(g))
	fmt.Fprint(g.Stdout, s)
	return g.writeFile("table2_kripke.txt", s)
}

// Table3 renders the hypre parameter table.
func (g *Generator) Table3() error {
	s := spaceTable("Table III: Parameters of hypre", hypreProblem(g))
	fmt.Fprint(g.Stdout, s)
	return g.writeFile("table3_hypre.txt", s)
}

func kripkeProblem(g *Generator) bench.Problem {
	for _, p := range g.Apps {
		if p.Name() == "kripke" {
			return p
		}
	}
	panic("figures: kripke missing from Apps")
}

func hypreProblem(g *Generator) bench.Problem {
	for _, p := range g.Apps {
		if p.Name() == "hypre" {
			return p
		}
	}
	panic("figures: hypre missing from Apps")
}

// Table4 renders the platform table.
func (g *Generator) Table4() error {
	a, bp := machine.PlatformA(), machine.PlatformB()
	var b strings.Builder
	b.WriteString("Table IV: Node configuration of two platforms\n")
	row := func(name, va, vb string) {
		b.WriteString(fmt.Sprintf("%-15s %-12s %s\n", name, va, vb))
	}
	row("Specification", "Platform A", "Platform B")
	row("CPU type", a.CPU, bp.CPU)
	row("CPU frequency", fmt.Sprintf("%.1fGHz", a.FreqHz/1e9), fmt.Sprintf("%.1fGHz", bp.FreqHz/1e9))
	row("#core", fmt.Sprint(a.Cores), fmt.Sprint(bp.Cores))
	row("memory", fmt.Sprintf("%.0fGB", a.MemoryBytes/1e9), fmt.Sprintf("%.0fGB", bp.MemoryBytes/1e9))
	net := "-"
	if bp.Net.BetaBytesPerSec > 0 {
		net = fmt.Sprintf("%.0fGbps OPA", bp.Net.BetaBytesPerSec*8/1e9)
	}
	row("network", "-", net)
	fmt.Fprint(g.Stdout, b.String())
	return g.writeFile("table4_platforms.txt", b.String())
}

// rmseSeries converts curve sets to RMSE-vs-samples plot series.
func rmseSeries(cs []*experiment.CurveSet) []textplot.Series {
	out := make([]textplot.Series, len(cs))
	for i, c := range cs {
		xs := make([]float64, len(c.Samples))
		for j, s := range c.Samples {
			xs[j] = float64(s)
		}
		out[i] = textplot.Series{Name: c.Strategy, X: xs, Y: c.RMSE}
	}
	return out
}

// ccSeries converts curve sets to CC-vs-samples plot series.
func ccSeries(cs []*experiment.CurveSet) []textplot.Series {
	out := make([]textplot.Series, len(cs))
	for i, c := range cs {
		xs := make([]float64, len(c.Samples))
		for j, s := range c.Samples {
			xs[j] = float64(s)
		}
		out[i] = textplot.Series{Name: c.Strategy, X: xs, Y: c.CC}
	}
	return out
}

// rmseVsCostSeries converts curve sets to RMSE-vs-CC plot series (Fig 5).
func rmseVsCostSeries(cs []*experiment.CurveSet) []textplot.Series {
	out := make([]textplot.Series, len(cs))
	for i, c := range cs {
		out[i] = textplot.Series{Name: c.Strategy, X: c.CC, Y: c.RMSE}
	}
	return out
}

// Fig2 renders RMSE-vs-samples for the 12 kernels (α = 0.01 in the
// paper; we use the generator's Scale.Alpha, 0.05 by default, and note
// it in the title).
func (g *Generator) Fig2() error {
	if err := g.ensureCurves(g.Kernels); err != nil {
		return err
	}
	for _, p := range g.Kernels {
		cs, err := g.curvesFor(p)
		if err != nil {
			return err
		}
		series := rmseSeries(cs)
		title := fmt.Sprintf("Fig 2 (%s): RMSE@alpha=%.2f vs #samples", p.Name(), g.Scale.Alpha)
		plot := textplot.LinePlot(title, series, 72, 18, true)
		if err := g.writeFile(fmt.Sprintf("fig2_%s.txt", p.Name()), plot); err != nil {
			return err
		}
		if err := g.writeCSV(fmt.Sprintf("fig2_%s.csv", p.Name()), series); err != nil {
			return err
		}
	}
	fmt.Fprintln(g.Stdout, "  fig2: 12 kernel RMSE curves written")
	return nil
}

// Fig3 renders CC-vs-samples for the 12 kernels.
func (g *Generator) Fig3() error {
	if err := g.ensureCurves(g.Kernels); err != nil {
		return err
	}
	for _, p := range g.Kernels {
		cs, err := g.curvesFor(p)
		if err != nil {
			return err
		}
		series := ccSeries(cs)
		title := fmt.Sprintf("Fig 3 (%s): cumulative cost vs #samples", p.Name())
		plot := textplot.LinePlot(title, series, 72, 18, true)
		if err := g.writeFile(fmt.Sprintf("fig3_%s.txt", p.Name()), plot); err != nil {
			return err
		}
		if err := g.writeCSV(fmt.Sprintf("fig3_%s.csv", p.Name()), series); err != nil {
			return err
		}
	}
	fmt.Fprintln(g.Stdout, "  fig3: 12 kernel CC curves written")
	return nil
}

// Fig4 renders RMSE and CC vs samples for the two applications.
func (g *Generator) Fig4() error {
	if err := g.ensureCurves(g.Apps); err != nil {
		return err
	}
	for _, p := range g.Apps {
		cs, err := g.curvesFor(p)
		if err != nil {
			return err
		}
		rs := rmseSeries(cs)
		ccs := ccSeries(cs)
		plot := textplot.LinePlot(fmt.Sprintf("Fig 4a (%s): RMSE@alpha=%.2f vs #samples", p.Name(), g.Scale.Alpha), rs, 72, 18, true) +
			"\n" +
			textplot.LinePlot(fmt.Sprintf("Fig 4b (%s): cumulative cost vs #samples", p.Name()), ccs, 72, 18, true)
		if err := g.writeFile(fmt.Sprintf("fig4_%s.txt", p.Name()), plot); err != nil {
			return err
		}
		if err := g.writeCSV(fmt.Sprintf("fig4_%s_rmse.csv", p.Name()), rs); err != nil {
			return err
		}
		if err := g.writeCSV(fmt.Sprintf("fig4_%s_cc.csv", p.Name()), ccs); err != nil {
			return err
		}
	}
	fmt.Fprintln(g.Stdout, "  fig4: application RMSE/CC curves written")
	return nil
}

// Fig5 renders RMSE vs cumulative cost for the two applications.
func (g *Generator) Fig5() error {
	if err := g.ensureCurves(g.Apps); err != nil {
		return err
	}
	for _, p := range g.Apps {
		cs, err := g.curvesFor(p)
		if err != nil {
			return err
		}
		series := rmseVsCostSeries(cs)
		title := fmt.Sprintf("Fig 5 (%s): RMSE@alpha=%.2f vs cumulative cost (s)", p.Name(), g.Scale.Alpha)
		plot := textplot.LinePlot(title, series, 72, 18, true)
		if err := g.writeFile(fmt.Sprintf("fig5_%s.txt", p.Name()), plot); err != nil {
			return err
		}
		if err := g.writeCSV(fmt.Sprintf("fig5_%s.csv", p.Name()), series); err != nil {
			return err
		}
	}
	fmt.Fprintln(g.Stdout, "  fig5: RMSE-vs-cost curves written")
	return nil
}

// Fig6 compares PBUS and PWU on atax at α in {0.01, 0.05, 0.10}.
func (g *Generator) Fig6() error {
	p, err := bench.ByName("atax")
	if err != nil {
		return err
	}
	var all []textplot.Series
	for _, alpha := range []float64{0.01, 0.05, 0.10} {
		sc := g.Scale
		sc.Alpha = alpha
		for _, strat := range []string{"PWU", "PBUS"} {
			cs, err := experiment.RunStrategy(g.ctx(), p, strat, sc, g.Seed)
			if err != nil {
				return err
			}
			xs := make([]float64, len(cs.Samples))
			for j, s := range cs.Samples {
				xs[j] = float64(s)
			}
			all = append(all, textplot.Series{
				Name: fmt.Sprintf("%s@%.2f", strat, alpha), X: xs, Y: cs.RMSE,
			})
		}
	}
	plot := textplot.LinePlot("Fig 6 (atax): RMSE vs #samples at different alpha", all, 72, 20, true)
	if err := g.writeFile("fig6_atax_alpha.txt", plot); err != nil {
		return err
	}
	if err := g.writeCSV("fig6_atax_alpha.csv", all); err != nil {
		return err
	}
	fmt.Fprintln(g.Stdout, "  fig6: alpha sweep written")
	return nil
}

// Fig7 renders the PWU-vs-PBUS cumulative-cost speedup bars for all
// benchmarks, reusing the cached curves.
func (g *Generator) Fig7() error {
	all := append(append([]bench.Problem{}, g.Kernels...), g.Apps...)
	if err := g.ensureCurves(all); err != nil {
		return err
	}
	var names []string
	var speedups []float64
	var lines []string
	for _, p := range all {
		cs, err := g.curvesFor(p)
		if err != nil {
			return err
		}
		byName := map[string]*experiment.CurveSet{}
		for _, c := range cs {
			byName[c.Strategy] = c
		}
		pwu, pbus := byName["PWU"], byName["PBUS"]
		row := experiment.SpeedupRow{Benchmark: p.Name()}
		if pwu != nil && pbus != nil {
			sp, target, ok := speedupOf(pwu, pbus)
			row.Speedup, row.Target, row.OK = sp, target, ok
		}
		if row.OK {
			names = append(names, row.Benchmark)
			speedups = append(speedups, row.Speedup)
			lines = append(lines, fmt.Sprintf("%s,%.3f,%.6g", row.Benchmark, row.Speedup, row.Target))
		} else {
			lines = append(lines, fmt.Sprintf("%s,unreached,", row.Benchmark))
		}
	}
	chart := textplot.BarChart("Fig 7: CC speedup of PWU over PBUS (cost ratio to reach shared RMSE target)", names, speedups, 50)
	fmt.Fprint(g.Stdout, chart)
	if err := g.writeFile("fig7_speedup.txt", chart); err != nil {
		return err
	}
	return g.writeFile("fig7_speedup.csv", "benchmark,speedup,target\n"+strings.Join(lines, "\n")+"\n")
}

func speedupOf(pwu, pbus *experiment.CurveSet) (speedup, target float64, ok bool) {
	return speedupFromCurves(pwu, pbus)
}

// Fig8 renders the atax tuning comparison: ground-truth vs surrogate
// annotator.
func (g *Generator) Fig8() error {
	p, err := bench.ByName("atax")
	if err != nil {
		return err
	}
	r := rng.New(rng.Mix(g.Seed, 0x516))
	// Build the surrogate with a PWU active-learning run at the
	// generator's scale.
	sur, err := surrogateModel(g.ctx(), p, g.Scale, r.Split())
	if err != nil {
		return err
	}
	cands := p.Space().SampleConfigs(r.Split(), g.Scale.TestSize)
	params := tuning.Params{NInit: 10, Iterations: 80, Forest: g.Scale.Forest}

	direct, err := tuning.Run(p, cands, tuning.NewTrueAnnotator(p, r.Split()), params, rng.New(rng.Mix(g.Seed, 1)))
	if err != nil {
		return err
	}
	surTrace, err := tuning.Run(p, cands, tuning.NewSurrogateAnnotator(p.Space(), sur), params, rng.New(rng.Mix(g.Seed, 1)))
	if err != nil {
		return err
	}
	mk := func(tr *tuning.Trace) textplot.Series {
		xs := make([]float64, len(tr.BestTrue))
		for i := range xs {
			xs[i] = float64(i)
		}
		return textplot.Series{Name: tr.Annotator, X: xs, Y: tr.BestTrue}
	}
	series := []textplot.Series{mk(direct), mk(surTrace)}
	plot := textplot.LinePlot("Fig 8 (atax): best true time found vs tuning iteration", series, 72, 18, false)
	fmt.Fprint(g.Stdout, plot)
	if err := g.writeFile("fig8_tuning.txt", plot); err != nil {
		return err
	}
	return g.writeCSV("fig8_tuning.csv", series)
}

// Fig9 renders the PBUS-vs-PWU selection scatter on atax.
func (g *Generator) Fig9() error {
	p, err := bench.ByName("atax")
	if err != nil {
		return err
	}
	var out strings.Builder
	var csv []textplot.Series
	for _, strat := range []string{"PBUS", "PWU"} {
		s, err := experiment.SelectionScatter(g.ctx(), p, strat, g.Scale, rng.Mix(g.Seed, 0x519))
		if err != nil {
			return err
		}
		series := []textplot.Series{
			{Name: "pool", X: s.PoolMu, Y: s.PoolSigma},
			{Name: "selected", X: s.SelMu, Y: s.SelSigma},
		}
		out.WriteString(textplot.ScatterPlot(
			fmt.Sprintf("Fig 9 (%s on atax): predicted time (x) vs uncertainty (y)", strat),
			series, 72, 20))
		out.WriteString("\n")
		csv = append(csv,
			textplot.Series{Name: strat + "_pool", X: s.PoolMu, Y: s.PoolSigma},
			textplot.Series{Name: strat + "_selected", X: s.SelMu, Y: s.SelSigma})
	}
	fmt.Fprint(g.Stdout, out.String())
	if err := g.writeFile("fig9_scatter.txt", out.String()); err != nil {
		return err
	}
	return g.writeCSV("fig9_scatter.csv", csv)
}

// Telemetry writes the run engine's aggregated per-strategy telemetry
// for every benchmark whose learning curves this generator produced (or
// runs them now): wall time spent fitting, selecting and evaluating,
// plus retry/skip counters and pool-cache usage. The artifact lets
// cmd/report surface where the labeling budget's wall-clock actually
// went.
func (g *Generator) Telemetry() error {
	if err := g.ensureCurves(append(append([]bench.Problem{}, g.Kernels...), g.Apps...)); err != nil {
		return err
	}
	names := make([]string, 0, len(g.curves))
	for name := range g.curves {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	b.WriteString("benchmark,strategy,reps,events,fit_ms,select_ms,eval_ms,retries,skips,cached_iterations," +
		"timeouts,guard_flagged,guard_remeasured,guard_quarantined,guard_cost\n")
	ms := func(d time.Duration) string { return fmt.Sprintf("%.3f", float64(d)/float64(time.Millisecond)) }
	for _, name := range names {
		for _, cs := range g.curves[name] {
			st := cs.Stats
			b.WriteString(fmt.Sprintf("%s,%s,%d,%d,%s,%s,%s,%d,%d,%d,%d,%d,%d,%d,%.4f\n",
				name, cs.Strategy, cs.Reps, st.Events,
				ms(st.FitTime), ms(st.SelectTime), ms(st.EvalTime),
				st.EvalRetries, st.EvalSkips, st.CachedIterations,
				st.EvalTimeouts, st.GuardFlagged, st.GuardRemeasured, st.GuardQuarantined, st.GuardCost))
		}
	}
	if err := g.writeFile("telemetry.csv", b.String()); err != nil {
		return err
	}

	// The campaign drains' scheduler and dataset-cache summary, for
	// cmd/report: how parallel the figure runs actually were and how
	// much labeling the single-flight cache avoided.
	var cb strings.Builder
	cb.WriteString("workers,tasks,steals,busy_ms,wall_ms,utilization,dataset_builds,dataset_hits,labels_saved,steal_rate\n")
	cb.WriteString(fmt.Sprintf("%d,%d,%d,%s,%s,%.4f,%d,%d,%d,%.4f\n",
		g.sched.Workers, g.sched.Tasks, g.sched.Steals,
		ms(g.sched.Busy), ms(g.sched.Wall), g.sched.Utilization,
		g.dstats.Builds, g.dstats.Hits, g.dstats.LabelsSaved, g.sched.StealRate()))
	if err := g.writeFile("campaign.csv", cb.String()); err != nil {
		return err
	}
	fmt.Fprintln(g.Stdout, "  telemetry: engine timing/retry and campaign tables written")
	return nil
}
