package figures

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/experiment"
)

// testGenerator builds a Generator at smoke scale with a reduced
// benchmark set so the full artifact suite runs in test time.
func testGenerator(t *testing.T) (*Generator, *bytes.Buffer) {
	t.Helper()
	dir := t.TempDir()
	var out bytes.Buffer
	atax, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	return &Generator{
		Scale:   experiment.Smoke(),
		Seed:    1,
		OutDir:  dir,
		Stdout:  &out,
		Kernels: []bench.Problem{atax},
		Apps:    bench.Applications(),
	}, &out
}

func mustRead(t *testing.T, g *Generator, name string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(g.OutDir, name))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestTables(t *testing.T) {
	g, _ := testGenerator(t)
	if err := g.Table1(); err != nil {
		t.Fatal(err)
	}
	t1 := mustRead(t, g, "table1_adi.txt")
	for _, want := range []string{"tile", "unrolljam", "regtile", "scalarreplace", "vector", "512", "31"} {
		if !strings.Contains(t1, want) {
			t.Fatalf("table1 missing %q:\n%s", want, t1)
		}
	}
	if err := g.Table2(); err != nil {
		t.Fatal(err)
	}
	t2 := mustRead(t, g, "table2_kripke.txt")
	for _, want := range []string{"layout", "DGZ", "gset", "dset", "pmethod", "sweep", "bj", "#process"} {
		if !strings.Contains(t2, want) {
			t.Fatalf("table2 missing %q", want)
		}
	}
	if err := g.Table3(); err != nil {
		t.Fatal(err)
	}
	t3 := mustRead(t, g, "table3_hypre.txt")
	for _, want := range []string{"solver", "coarsening", "pmis", "hmis", "smtype", "#process"} {
		if !strings.Contains(t3, want) {
			t.Fatalf("table3 missing %q", want)
		}
	}
	if err := g.Table4(); err != nil {
		t.Fatal(err)
	}
	t4 := mustRead(t, g, "table4_platforms.txt")
	for _, want := range []string{"E5-2680 v3", "E5-2680 v4", "2.5GHz", "2.4GHz", "24", "28", "64GB", "128GB", "100Gbps OPA"} {
		if !strings.Contains(t4, want) {
			t.Fatalf("table4 missing %q:\n%s", want, t4)
		}
	}
}

func TestFig2And3ShareRuns(t *testing.T) {
	g, out := testGenerator(t)
	if err := g.Fig2(); err != nil {
		t.Fatal(err)
	}
	if err := g.Fig3(); err != nil {
		t.Fatal(err)
	}
	// The cache means the campaign drains the kernel grid exactly once;
	// Fig3 must find every curve already cached.
	if n := strings.Count(out.String(), "campaign: 1 problems"); n != 1 {
		t.Fatalf("atax campaign ran %d times, want 1 (cache broken):\n%s", n, out.String())
	}
	f2 := mustRead(t, g, "fig2_atax.txt")
	for _, s := range strategies {
		if !strings.Contains(f2, s) {
			t.Fatalf("fig2 missing strategy %s", s)
		}
	}
	csv := mustRead(t, g, "fig2_atax.csv")
	if !strings.HasPrefix(csv, "series,x,y\n") {
		t.Fatal("fig2 csv malformed")
	}
	if _, err := os.Stat(filepath.Join(g.OutDir, "fig3_atax.csv")); err != nil {
		t.Fatal(err)
	}
}

func TestFig4And5(t *testing.T) {
	g, _ := testGenerator(t)
	// Shrink to one app for speed.
	g.Apps = g.Apps[:1]
	if err := g.Fig4(); err != nil {
		t.Fatal(err)
	}
	if err := g.Fig5(); err != nil {
		t.Fatal(err)
	}
	f4 := mustRead(t, g, "fig4_kripke.txt")
	if !strings.Contains(f4, "Fig 4a") || !strings.Contains(f4, "Fig 4b") {
		t.Fatal("fig4 panels missing")
	}
	f5 := mustRead(t, g, "fig5_kripke.txt")
	if !strings.Contains(f5, "cumulative cost") {
		t.Fatal("fig5 title missing")
	}
}

func TestFig6(t *testing.T) {
	g, _ := testGenerator(t)
	if err := g.Fig6(); err != nil {
		t.Fatal(err)
	}
	f6 := mustRead(t, g, "fig6_atax_alpha.txt")
	for _, want := range []string{"PWU@0.01", "PBUS@0.01", "PWU@0.05", "PWU@0.10"} {
		if !strings.Contains(f6, want) {
			t.Fatalf("fig6 missing %q", want)
		}
	}
}

func TestFig7(t *testing.T) {
	g, _ := testGenerator(t)
	g.Apps = nil // kernels only, for speed
	if err := g.Fig7(); err != nil {
		t.Fatal(err)
	}
	f7 := mustRead(t, g, "fig7_speedup.csv")
	if !strings.Contains(f7, "atax") {
		t.Fatalf("fig7 csv missing atax: %s", f7)
	}
}

func TestTelemetryArtifacts(t *testing.T) {
	g, _ := testGenerator(t)
	g.Apps = nil
	if err := g.Telemetry(); err != nil {
		t.Fatal(err)
	}
	tele := mustRead(t, g, "telemetry.csv")
	if !strings.HasPrefix(tele, "benchmark,strategy,reps,events,") {
		t.Fatalf("telemetry.csv malformed:\n%s", tele)
	}
	if !strings.Contains(tele, "atax,PWU,") {
		t.Fatalf("telemetry.csv missing atax rows:\n%s", tele)
	}
	camp := mustRead(t, g, "campaign.csv")
	if !strings.HasPrefix(camp, "workers,tasks,steals,busy_ms,wall_ms,utilization,dataset_builds,dataset_hits,labels_saved,steal_rate\n") {
		t.Fatalf("campaign.csv malformed:\n%s", camp)
	}
	// One atax drain: 6 strategies x Smoke reps tasks, one dataset build
	// per rep, the other five strategies hitting the cache.
	sc := experiment.Smoke()
	fields := strings.Split(strings.TrimSpace(strings.SplitN(camp, "\n", 2)[1]), ",")
	if len(fields) != 10 {
		t.Fatalf("campaign.csv row has %d fields:\n%s", len(fields), camp)
	}
	for _, f := range []string{fields[5], fields[9]} {
		if strings.Contains(f, "NaN") || strings.Contains(f, "Inf") {
			t.Fatalf("campaign.csv leaked a non-finite rate:\n%s", camp)
		}
	}
	if want := fmt.Sprint(6 * sc.Reps); fields[1] != want {
		t.Fatalf("campaign.csv tasks = %s, want %s", fields[1], want)
	}
	if want := fmt.Sprint(sc.Reps); fields[6] != want {
		t.Fatalf("campaign.csv dataset builds = %s, want %s", fields[6], want)
	}
	if want := fmt.Sprint(5 * sc.Reps); fields[7] != want {
		t.Fatalf("campaign.csv dataset hits = %s, want %s", fields[7], want)
	}
}

func TestFig8(t *testing.T) {
	g, _ := testGenerator(t)
	if err := g.Fig8(); err != nil {
		t.Fatal(err)
	}
	f8 := mustRead(t, g, "fig8_tuning.txt")
	if !strings.Contains(f8, "ground truth") || !strings.Contains(f8, "surrogate model") {
		t.Fatal("fig8 legend missing annotators")
	}
}

func TestFig9(t *testing.T) {
	g, _ := testGenerator(t)
	if err := g.Fig9(); err != nil {
		t.Fatal(err)
	}
	f9 := mustRead(t, g, "fig9_scatter.txt")
	if !strings.Contains(f9, "PBUS") || !strings.Contains(f9, "PWU") {
		t.Fatal("fig9 missing panels")
	}
	csv := mustRead(t, g, "fig9_scatter.csv")
	for _, want := range []string{"PBUS_pool", "PBUS_selected", "PWU_pool", "PWU_selected"} {
		if !strings.Contains(csv, want) {
			t.Fatalf("fig9 csv missing %q", want)
		}
	}
}
