package dataset

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/rng"
)

func TestBuildSizes(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Build(context.Background(), p, 700, 300, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Pool) != 700 || len(ds.Test) != 300 {
		t.Fatalf("sizes %d/%d", len(ds.Pool), len(ds.Test))
	}
	if len(ds.TestY) != 300 || len(ds.TestTrue) != 300 {
		t.Fatal("missing test labels")
	}
}

func TestPaperSizes(t *testing.T) {
	pool, test := PaperSizes()
	if pool != 7000 || test != 3000 {
		t.Fatalf("paper sizes = %d/%d", pool, test)
	}
}

func TestTestLabelsNearTruth(t *testing.T) {
	p, _ := bench.ByName("mvt")
	ds, err := Build(context.Background(), p, 100, 200, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Test {
		if ds.TestY[i] <= 0 {
			t.Fatalf("non-positive label %v", ds.TestY[i])
		}
		rel := math.Abs(ds.TestY[i]-ds.TestTrue[i]) / ds.TestTrue[i]
		if rel > 0.25 {
			t.Fatalf("label %d off truth by %.0f%%", i, rel*100)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	p, _ := bench.ByName("adi")
	a, errA := Build(context.Background(), p, 50, 50, rng.New(3))
	b, errB := Build(context.Background(), p, 50, 50, rng.New(3))
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	for i := range a.Pool {
		if a.Pool[i].Key() != b.Pool[i].Key() {
			t.Fatal("pool not deterministic")
		}
	}
	for i := range a.TestY {
		if a.TestY[i] != b.TestY[i] {
			t.Fatal("test labels not deterministic")
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	p, _ := bench.ByName("kripke")
	ds, err := Build(context.Background(), p, 40, 25, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	ds2, err := ReadCSV(p, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(ds2.Pool) != 40 || len(ds2.Test) != 25 {
		t.Fatalf("round trip sizes %d/%d", len(ds2.Pool), len(ds2.Test))
	}
	for i := range ds.Pool {
		if ds.Pool[i].Key() != ds2.Pool[i].Key() {
			t.Fatal("pool config corrupted")
		}
	}
	for i := range ds.Test {
		if ds.Test[i].Key() != ds2.Test[i].Key() || ds.TestY[i] != ds2.TestY[i] {
			t.Fatal("test row corrupted")
		}
		if ds2.TestTrue[i] != p.TrueTime(ds2.Test[i]) {
			t.Fatal("TestTrue not recomputed")
		}
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	p, _ := bench.ByName("kripke")
	cases := []string{
		"",      // empty
		"a,b\n", // wrong header width
		"layout,gset,dset,pmethod,#process,set,y\n1,2\n",                // short row
		"layout,gset,dset,pmethod,#process,set,y\n9,0,0,0,0,pool,\n",    // out-of-range level
		"layout,gset,dset,pmethod,#process,set,y\n0,0,0,0,0,weird,\n",   // unknown set
		"layout,gset,dset,pmethod,#process,set,y\n0,0,0,0,0,test,abc\n", // bad y
		"layout,gset,dset,pmethod,#process,set,y\nx,0,0,0,0,pool,\n",    // bad int
		"wrong,gset,dset,pmethod,#process,set,y\n",                      // wrong name
	}
	for i, s := range cases {
		if _, err := ReadCSV(p, strings.NewReader(s)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestTestXEncoding(t *testing.T) {
	p, _ := bench.ByName("hypre")
	ds, err := Build(context.Background(), p, 10, 5, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	X := ds.TestX()
	if len(X) != 5 || len(X[0]) != p.Space().NumParams() {
		t.Fatalf("TestX shape %dx%d", len(X), len(X[0]))
	}
}
