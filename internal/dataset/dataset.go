// Package dataset implements the paper's data protocol (§III-D): sample
// a large surrogate pool of configurations from the parameter space,
// split it into an unlabeled training pool and a pre-measured test set,
// and persist either as CSV.
//
// Paper defaults: 10 000 configurations sampled uniformly, split into a
// 7000-point pool (X_pool of Algorithm 1) and a 3000-point test set whose
// labels are measured in advance and reused at every evaluation
// checkpoint.
package dataset

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/bench"
	"repro/internal/rng"
	"repro/internal/space"
)

// Dataset is the pool/test split for one benchmark.
type Dataset struct {
	// Problem is the benchmark this data was drawn from.
	Problem bench.Problem

	// Pool is the unlabeled data pool handed to Algorithm 1.
	Pool []space.Config

	// Test are the held-out configurations, with TestY their labels
	// (measured in advance under the problem's noise protocol) and
	// TestTrue the noise-free ground truth for diagnostics.
	Test     []space.Config
	TestY    []float64
	TestTrue []float64
}

// Build samples poolSize + testSize configurations uniformly (with
// replacement, matching the paper's protocol on the small application
// spaces) and measures the test labels in advance. All randomness comes
// from r. Measuring the test set is the expensive part; ctx cancels it
// between measurements.
func Build(ctx context.Context, p bench.Problem, poolSize, testSize int, r *rng.RNG) (*Dataset, error) {
	sp := p.Space()
	all := sp.SampleConfigs(r, poolSize+testSize)
	ds := &Dataset{
		Problem: p,
		Pool:    all[:poolSize],
		Test:    all[poolSize:],
	}
	ev := bench.Evaluator(p, r.Split())
	ds.TestY = make([]float64, testSize)
	ds.TestTrue = make([]float64, testSize)
	for i, c := range ds.Test {
		y, err := ev.Evaluate(ctx, c)
		if err != nil {
			return nil, fmt.Errorf("dataset: measuring test label %d/%d: %w", i+1, testSize, err)
		}
		ds.TestY[i] = y
		ds.TestTrue[i] = p.TrueTime(c)
	}
	return ds, nil
}

// PaperSizes returns the paper's pool and test sizes (7000, 3000).
func PaperSizes() (poolSize, testSize int) { return 7000, 3000 }

// WriteCSV writes the dataset as CSV: a header of parameter names plus
// "set" and "y" columns; pool rows have an empty y.
func (d *Dataset) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	sp := d.Problem.Space()
	var header []string
	for i := 0; i < sp.NumParams(); i++ {
		header = append(header, sp.Param(i).Name)
	}
	header = append(header, "set", "y")
	if _, err := fmt.Fprintln(bw, strings.Join(header, ",")); err != nil {
		return err
	}
	// One reused row buffer; cells are appended directly so a paper-scale
	// dump (10 000 rows) allocates nothing per row.
	row := make([]byte, 0, 128)
	writeRow := func(c space.Config, set string, y float64, hasY bool) error {
		row = row[:0]
		for _, lvl := range c {
			row = strconv.AppendInt(row, int64(lvl), 10)
			row = append(row, ',')
		}
		row = append(row, set...)
		row = append(row, ',')
		if hasY {
			row = strconv.AppendFloat(row, y, 'g', -1, 64)
		}
		row = append(row, '\n')
		_, err := bw.Write(row)
		return err
	}
	for _, c := range d.Pool {
		if err := writeRow(c, "pool", 0, false); err != nil {
			return err
		}
	}
	for i, c := range d.Test {
		if err := writeRow(c, "test", d.TestY[i], true); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV reads a dataset written by WriteCSV back for problem p. The
// header must match p's parameter names; TestTrue is recomputed from the
// model.
func ReadCSV(p bench.Problem, rd io.Reader) (*Dataset, error) {
	sp := p.Space()
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("dataset: empty CSV")
	}
	header := strings.Split(sc.Text(), ",")
	d := sp.NumParams()
	if len(header) != d+2 {
		return nil, fmt.Errorf("dataset: header has %d columns, want %d", len(header), d+2)
	}
	for i := 0; i < d; i++ {
		if header[i] != sp.Param(i).Name {
			return nil, fmt.Errorf("dataset: column %d is %q, want %q", i, header[i], sp.Param(i).Name)
		}
	}
	ds := &Dataset{Problem: p}
	line := 1
	for sc.Scan() {
		line++
		cells := strings.Split(sc.Text(), ",")
		if len(cells) != d+2 {
			return nil, fmt.Errorf("dataset: line %d has %d columns, want %d", line, len(cells), d+2)
		}
		c := make(space.Config, d)
		for i := 0; i < d; i++ {
			v, err := strconv.Atoi(cells[i])
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d column %d: %v", line, i, err)
			}
			c[i] = v
		}
		if err := sp.Validate(c); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %v", line, err)
		}
		switch cells[d] {
		case "pool":
			ds.Pool = append(ds.Pool, c)
		case "test":
			y, err := strconv.ParseFloat(cells[d+1], 64)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: bad y: %v", line, err)
			}
			ds.Test = append(ds.Test, c)
			ds.TestY = append(ds.TestY, y)
			ds.TestTrue = append(ds.TestTrue, p.TrueTime(c))
		default:
			return nil, fmt.Errorf("dataset: line %d: unknown set %q", line, cells[d])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return ds, nil
}

// TestX returns the encoded test design matrix.
func (d *Dataset) TestX() [][]float64 {
	return d.Problem.Space().EncodeAll(d.Test)
}
