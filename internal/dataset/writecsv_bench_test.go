package dataset

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/rng"
	"repro/internal/space"
)

// benchDataset builds one mid-sized split for the CSV benchmarks.
func benchDataset(b *testing.B) *Dataset {
	b.Helper()
	p, err := bench.ByName("atax")
	if err != nil {
		b.Fatal(err)
	}
	ds, err := Build(context.Background(), p, 1400, 600, rng.New(8))
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

// TestWriteCSVMatchesNaive pins the optimized writer to the baseline's
// exact output bytes.
func TestWriteCSVMatchesNaive(t *testing.T) {
	p, err := bench.ByName("kripke")
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Build(context.Background(), p, 60, 40, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var fast, naive strings.Builder
	if err := ds.WriteCSV(&fast); err != nil {
		t.Fatal(err)
	}
	if err := writeCSVNaive(ds, &naive); err != nil {
		t.Fatal(err)
	}
	if fast.String() != naive.String() {
		t.Fatal("optimized WriteCSV output diverged from the baseline")
	}
}

// BenchmarkWriteCSV measures the row-buffer writer: cells append into
// one reused byte slice, so allocs/op stays flat in the row count.
func BenchmarkWriteCSV(b *testing.B) {
	ds := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ds.WriteCSV(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWriteCSVNaive is the retained baseline: a fresh []string of
// cells joined and Fprintln'd per row, as WriteCSV used to do. The gap
// to BenchmarkWriteCSV is the per-row allocation cost the buffer reuse
// removed.
func BenchmarkWriteCSVNaive(b *testing.B) {
	ds := benchDataset(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := writeCSVNaive(ds, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func writeCSVNaive(d *Dataset, w io.Writer) error {
	bw := bufio.NewWriter(w)
	sp := d.Problem.Space()
	var header []string
	for i := 0; i < sp.NumParams(); i++ {
		header = append(header, sp.Param(i).Name)
	}
	header = append(header, "set", "y")
	if _, err := fmt.Fprintln(bw, strings.Join(header, ",")); err != nil {
		return err
	}
	writeRow := func(c space.Config, set string, y string) error {
		var cells []string
		for _, lvl := range c {
			cells = append(cells, strconv.Itoa(lvl))
		}
		cells = append(cells, set, y)
		_, err := fmt.Fprintln(bw, strings.Join(cells, ","))
		return err
	}
	for _, c := range d.Pool {
		if err := writeRow(c, "pool", ""); err != nil {
			return err
		}
	}
	for i, c := range d.Test {
		if err := writeRow(c, "test", strconv.FormatFloat(d.TestY[i], 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}
