package autotune

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/runstate"
)

// TestTuneCheckpointResume proves the pipeline-level resume contract:
// an interrupted model phase leaves a snapshot behind, and rerunning
// Tune with the same inputs picks it up and lands on the exact outcome
// of a never-interrupted run.
//
// The interruption is staged deterministically: the test rebuilds the
// model phase exactly as Tune wires it (same seed-derived RNG splits,
// same pool, same params) and cancels via an observer after a few
// iterations, so a real drain snapshot lands at the checkpoint path.
func TestTuneCheckpointResume(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	const seed = 77

	want, err := Tune(context.Background(), p, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "tune.ckpt")
	r := rng.New(seed)
	sp := p.Space()
	ev := bench.Evaluator(p, r.Split())
	pool := sp.SampleConfigs(r.Split(), cfg.PoolSize)
	params := core.Params{
		NInit: 10, NBatch: 5, NMax: cfg.ModelBudget,
		Forest: cfg.Forest, Failure: cfg.Failure,
		CheckpointEvery: 10, Checkpoint: runstate.FileSink(ckpt),
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = core.Run(ctx, sp, pool, ev, core.PWU{Alpha: cfg.Alpha}, params, r.Split(),
		func(s *core.State) error {
			if s.Iteration == 4 {
				cancel()
			}
			return nil
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("staged interruption returned %v, want context.Canceled", err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("interrupted run left no checkpoint: %v", err)
	}

	cfg.CheckpointPath = ckpt
	got, err := Tune(context.Background(), p, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.Key() != want.Best.Key() {
		t.Fatalf("resumed best %v, fresh best %v", got.Best, want.Best)
	}
	if got.BestMeasured != want.BestMeasured || got.PredictedBest != want.PredictedBest {
		t.Fatalf("resumed outcome (%v, %v) differs from fresh (%v, %v)",
			got.BestMeasured, got.PredictedBest, want.BestMeasured, want.PredictedBest)
	}
	if got.ModelCost != want.ModelCost || got.RealRuns != want.RealRuns {
		t.Fatalf("resumed accounting (cost %v, runs %d) differs from fresh (cost %v, runs %d)",
			got.ModelCost, got.RealRuns, want.ModelCost, want.RealRuns)
	}
	if got.SearchEvaluations != want.SearchEvaluations {
		t.Fatalf("search evaluations %d vs %d", got.SearchEvaluations, want.SearchEvaluations)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatal("completed run did not clear its checkpoint")
	}
}

// TestTuneRejectsForeignCheckpoint: a snapshot from a different run
// (different pool fingerprint) must be refused, not silently continued.
func TestTuneRejectsForeignCheckpoint(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(t.TempDir(), "tune.ckpt")

	// Stage an interrupted run under one seed...
	cfg := smallCfg()
	cfg.CheckpointPath = ckpt
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Tune(ctx, p, cfg, 5); err == nil {
		t.Fatal("pre-cancelled Tune succeeded")
	}
	// A pre-cancelled run may or may not have reached the cold start;
	// ensure a snapshot exists by staging a real one when it did not.
	if _, statErr := os.Stat(ckpt); statErr != nil {
		r := rng.New(5)
		sp := p.Space()
		ev := bench.Evaluator(p, r.Split())
		pool := sp.SampleConfigs(r.Split(), cfg.PoolSize)
		params := core.Params{
			NInit: 10, NBatch: 5, NMax: cfg.ModelBudget,
			Forest: cfg.Forest, Failure: cfg.Failure,
			CheckpointEvery: 10, Checkpoint: runstate.FileSink(ckpt),
		}
		ictx, icancel := context.WithCancel(context.Background())
		defer icancel()
		_, runErr := core.Run(ictx, sp, pool, ev, core.PWU{Alpha: cfg.Alpha}, params, r.Split(),
			func(s *core.State) error {
				if s.Iteration == 2 {
					icancel()
				}
				return nil
			})
		if !errors.Is(runErr, context.Canceled) {
			t.Fatalf("staging run returned %v", runErr)
		}
	}

	// ...then resume under a different seed: the regenerated pool no
	// longer matches the snapshot's fingerprint.
	if _, err := Tune(context.Background(), p, cfg, 6); err == nil {
		t.Fatal("checkpoint from seed 5 accepted by a seed-6 run")
	}
}

// TestTuneColdStartsOverCorruptCheckpoint: a damaged checkpoint file
// must not brick the pipeline — Tune warns, starts cold, and lands on
// the exact outcome of a run that never had a checkpoint; the wreckage
// is cleared on completion.
func TestTuneColdStartsOverCorruptCheckpoint(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	const seed = 88
	want, err := Tune(context.Background(), p, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "tune.ckpt")
	if err := os.WriteFile(ckpt, []byte(`{"version":1,"iter`), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg.CheckpointPath = ckpt
	var warned bool
	cfg.Logf = func(format string, args ...interface{}) { warned = true }
	got, err := Tune(context.Background(), p, cfg, seed)
	if err != nil {
		t.Fatalf("corrupt checkpoint bricked the pipeline: %v", err)
	}
	if !warned {
		t.Fatal("cold start over a corrupt checkpoint emitted no warning")
	}
	if got.Best.Key() != want.Best.Key() || got.BestMeasured != want.BestMeasured {
		t.Fatalf("cold-started outcome (%v, %v) differs from checkpoint-free run (%v, %v)",
			got.Best, got.BestMeasured, want.Best, want.BestMeasured)
	}
	if _, err := os.Stat(ckpt); !os.IsNotExist(err) {
		t.Fatal("completed run did not clear the corrupt checkpoint")
	}
}

// TestTuneChaosTransparent: a transient-only scenario, fully retried,
// must leave the tuning outcome bit-identical to the fault-free run —
// the pipeline-level face of the chaos-equivalence property.
func TestTuneChaosTransparent(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	const seed = 91
	want, err := Tune(context.Background(), p, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Chaos = chaos.Scenario{ErrRate: 0.25, Seed: 3}
	cfg.Failure = core.FailurePolicy{MaxRetries: 20}
	got, err := Tune(context.Background(), p, cfg, seed)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best.Key() != want.Best.Key() || got.BestMeasured != want.BestMeasured ||
		got.ModelCost != want.ModelCost || got.Speedup != want.Speedup {
		t.Fatalf("chaotic outcome (%v, %v, %v) differs from clean (%v, %v, %v)",
			got.Best, got.BestMeasured, got.ModelCost, want.Best, want.BestMeasured, want.ModelCost)
	}
}
