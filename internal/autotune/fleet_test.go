package autotune

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/experiment"
	"repro/internal/fleet"
)

// TestTuneRemoteMatchesLocal offloads every measurement — model,
// verification and baseline phases — to a fleet worker and requires the
// outcome to equal the local run exactly: the remote evaluator carries
// the noise-stream state back and forth, so where a label is computed
// never changes its value.
func TestTuneRemoteMatchesLocal(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	local, err := Tune(context.Background(), p, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}

	coord := fleet.New(fleet.Config{
		LeaseTTL:  500 * time.Millisecond,
		Heartbeat: 100 * time.Millisecond,
		Poll:      5 * time.Millisecond,
	})
	srv := httptest.NewServer(coord.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	w := &fleet.Worker{Coordinator: srv.URL, Name: "tune-test", Runner: experiment.NewFleetRunner(), Logf: t.Logf}
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(ctx) }()

	rcfg := cfg
	rcfg.Remote = coord
	remote, err := Tune(context.Background(), p, rcfg, 9)
	if err != nil {
		t.Fatalf("remote tune: %v", err)
	}

	cancel()
	select {
	case err := <-errCh:
		if err != nil {
			t.Errorf("worker exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not drain")
	}
	srv.Close()
	coord.Close()

	if !reflect.DeepEqual(remote.Best, local.Best) {
		t.Errorf("Best diverged: remote %v, local %v", remote.Best, local.Best)
	}
	if remote.BestMeasured != local.BestMeasured ||
		remote.BaselineMeasured != local.BaselineMeasured ||
		remote.Speedup != local.Speedup ||
		remote.ModelCost != local.ModelCost ||
		remote.RealRuns != local.RealRuns ||
		remote.PredictedBest != local.PredictedBest {
		t.Errorf("outcome diverged:\nremote %+v\nlocal  %+v", remote, local)
	}
}
