package autotune

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/forest"
	"repro/internal/stats"

	"repro/internal/rng"
)

func smallCfg() Config {
	cfg := Default()
	cfg.PoolSize = 600
	cfg.ModelBudget = 120
	cfg.SearchBudget = 4000
	cfg.Forest = forest.Config{NumTrees: 32}
	return cfg
}

func TestValidation(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	cfg := smallCfg()
	cfg.ModelBudget = 5
	if _, err := Tune(context.Background(), p, cfg, 1); err == nil {
		t.Fatal("tiny model budget accepted")
	}
	cfg = smallCfg()
	cfg.Verify = 0
	if _, err := Tune(context.Background(), p, cfg, 1); err == nil {
		t.Fatal("zero verify accepted")
	}
	cfg = smallCfg()
	cfg.Searcher = "bogus"
	if _, err := Tune(context.Background(), p, cfg, 1); err == nil {
		t.Fatal("unknown searcher accepted")
	}
	cfg = smallCfg()
	cfg.Quant = true // without Stream
	if _, err := Tune(context.Background(), p, cfg, 1); err == nil {
		t.Fatal("Quant without Stream accepted")
	}
}

func TestTuneBeatsRandomSample(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	out, err := Tune(context.Background(), p, smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Compare the tuned config against the space's distribution.
	r := rng.New(3)
	times := make([]float64, 500)
	for i := range times {
		times[i] = p.TrueTime(p.Space().SampleConfig(r))
	}
	p5 := stats.Quantile(times, 0.05)
	if out.BestMeasured > p5 {
		t.Fatalf("tuned config %.4g not within the top 5%% (%.4g)", out.BestMeasured, p5)
	}
	if out.Speedup < 1 {
		t.Fatalf("speedup %v below 1 against the default config", out.Speedup)
	}
	if out.RealRuns > smallCfg().ModelBudget+smallCfg().Verify+1 {
		t.Fatalf("real runs %d exceed budget", out.RealRuns)
	}
	if out.SearchEvaluations != smallCfg().SearchBudget {
		t.Fatalf("search evaluations %d", out.SearchEvaluations)
	}
}

func TestTuneDeterministic(t *testing.T) {
	p, _ := bench.ByName("mvt")
	a, err := Tune(context.Background(), p, smallCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(context.Background(), p, smallCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if a.Best.Key() != b.Best.Key() || a.BestMeasured != b.BestMeasured {
		t.Fatal("tuning not deterministic")
	}
}

func TestAllSearchersWork(t *testing.T) {
	p, _ := bench.ByName("gesummv")
	for _, s := range []string{"random", "hill", "anneal"} {
		cfg := smallCfg()
		cfg.Searcher = s
		cfg.SearchBudget = 1500
		out, err := Tune(context.Background(), p, cfg, 5)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if out.Best == nil || out.BestMeasured <= 0 {
			t.Fatalf("%s: bad outcome %+v", s, out)
		}
	}
}

func TestWorksOnApplications(t *testing.T) {
	p, _ := bench.ByName("kripke")
	cfg := smallCfg()
	out, err := Tune(context.Background(), p, cfg, 6)
	if err != nil {
		t.Fatal(err)
	}
	// kripke's default config is serial (1 process); any sensible tuning
	// result is far faster.
	if out.Speedup < 5 {
		t.Fatalf("kripke speedup only %.1fx (best %s)", out.Speedup, p.Space().String(out.Best))
	}
}
