package autotune

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/forest"
)

// TestStreamMatchesInMemory: the streamed pipeline must produce the exact
// outcome of the in-memory one for the same seed — the lazy pool source
// replays the identical candidate sequence and every generator draw lines
// up, so the whole pipeline (model, search, verify) is unchanged.
func TestStreamMatchesInMemory(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.PoolSize = 400
	cfg.ModelBudget = 60
	cfg.SearchBudget = 1500
	cfg.Forest = forest.Config{NumTrees: 16}

	want, err := Tune(context.Background(), p, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range []int{0, 64} {
		s := cfg
		s.Stream = true
		s.StreamShard = shard
		got, err := Tune(context.Background(), p, s, 7)
		if err != nil {
			t.Fatalf("shard=%d: %v", shard, err)
		}
		if got.Best.Key() != want.Best.Key() {
			t.Fatalf("shard=%d: streamed best %v, in-memory best %v", shard, got.Best, want.Best)
		}
		if got.BestMeasured != want.BestMeasured || got.ModelCost != want.ModelCost ||
			got.RealRuns != want.RealRuns || got.SearchEvaluations != want.SearchEvaluations {
			t.Fatalf("shard=%d: streamed outcome %+v, in-memory %+v", shard, got, want)
		}
	}
}

// TestStreamQuantWarm: the quantized kernel plus warm updates (with the
// cross-scan cache active) drive the full pipeline to a sane outcome —
// quantized scores may shift individual selections within float32
// tolerance, so this checks the pipeline contract, not bit-equality
// with the exact kernel.
func TestStreamQuantWarm(t *testing.T) {
	p, err := bench.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.PoolSize = 400
	cfg.ModelBudget = 60
	cfg.SearchBudget = 1500
	cfg.Forest = forest.Config{NumTrees: 16}
	cfg.Stream = true
	cfg.Quant = true
	cfg.WarmUpdate = true

	got, err := Tune(context.Background(), p, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best == nil || got.BestMeasured <= 0 || got.RealRuns < cfg.ModelBudget {
		t.Fatalf("quantized streamed tune produced an implausible outcome: %+v", got)
	}
	// Determinism holds within the quantized kernel.
	again, err := Tune(context.Background(), p, cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	if again.Best.Key() != got.Best.Key() || again.BestMeasured != got.BestMeasured {
		t.Fatal("quantized streamed tune not deterministic under a fixed seed")
	}
}
