// Package autotune assembles the complete auto-tuning pipeline the paper
// builds toward: spend a modest budget of real runs on PWU active
// learning to obtain a surrogate, search the surrogate heuristically at
// zero marginal cost, then verify the most promising candidates with a
// handful of real measurements and return the best.
//
// The division of labour mirrors the paper's Fig. 8 case study: the
// surrogate "enables negligible cost of thousands of annotations", so
// the search phase can afford to be exhaustive where direct tuning could
// not.
package autotune

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/forest"
	"repro/internal/metrics"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/runstate"
	"repro/internal/search"
	"repro/internal/space"
)

// Config sizes the pipeline phases.
type Config struct {
	// PoolSize is the unlabeled pool for the active-learning phase.
	PoolSize int

	// ModelBudget is the number of real program runs spent building the
	// surrogate (Algorithm 1 with PWU).
	ModelBudget int

	// Alpha is the PWU high-performance proportion.
	Alpha float64

	// Forest configures the surrogate.
	Forest forest.Config

	// Searcher names the surrogate optimiser: "random", "hill",
	// "anneal".
	Searcher string

	// SearchBudget is the number of surrogate evaluations the searcher
	// may spend (these are free in real time).
	SearchBudget int

	// Verify is the number of distinct top candidates re-measured with
	// real runs before the final pick.
	Verify int

	// Failure is the run engine's policy for transiently failing
	// measurements during the model phase (retry/skip/abort).
	Failure core.FailurePolicy

	// CheckpointPath, when non-empty, makes the model phase resumable:
	// a snapshot is written atomically to this path every
	// CheckpointEvery iterations (default 10) and on a drained
	// cancellation. When Tune starts and a snapshot already exists at
	// the path, the model phase resumes from it bit-identically instead
	// of starting over; the file is removed once the phase completes.
	CheckpointPath string

	// CheckpointEvery is the snapshot cadence in iterations; <= 0 means
	// every 10.
	CheckpointEvery int

	// Chaos injects deterministic faults into the model phase's
	// evaluator (see chaos.Scenario) — a drill harness for the failure
	// policy. The verify and baseline measurements stay fault-free. The
	// zero scenario injects nothing.
	Chaos chaos.Scenario

	// Stream runs the model phase through core.RunStream: the candidate
	// pool is generated lazily shard by shard instead of being
	// materialized as PoolSize configs up front, so PoolSize can scale to
	// production spaces (10^6–10^8) with memory bounded by
	// O(StreamWorkers × StreamShard). The pool sequence is bit-identical
	// to the in-memory one, so for the same seed both modes produce the
	// same outcome — the pool-equivalence gate pins this.
	Stream bool

	// StreamShard and StreamWorkers tune the sharded pool scan
	// (candidates per scoring shard, concurrent scoring workers); <= 0
	// uses the pool package defaults. Ignored without Stream.
	StreamShard   int
	StreamWorkers int

	// Quant scores streamed pool scans on the forest's quantized kernel
	// (packed float32 trees, ~3× per-candidate throughput; scores carry
	// float32 rounding, so selections may diverge from the exact kernel
	// within that tolerance — see the quant-equivalence gate). Requires
	// Stream; Tune rejects Quant without it.
	Quant bool

	// WarmUpdate refits the surrogate by partially updating the
	// ensemble each iteration instead of retraining from scratch. With
	// Stream it also enables the cross-scan score cache: unchanged
	// trees' scores are reused between iterations and only the
	// refreshed trees are re-walked.
	WarmUpdate bool

	// Logf, when set, receives warnings the pipeline can recover from —
	// e.g. a corrupt checkpoint being discarded for a cold start. Nil
	// discards them.
	Logf func(format string, args ...interface{})

	// Remote, when set, offloads every real measurement — model-phase
	// labels, verification runs, the baseline — to fleet workers
	// through this submitter: the embedded coordinator of -remote, or
	// a fleet.Client against a resident fleetd. The local evaluator
	// stays as the noise-stream mirror (see fleet.RemoteEvaluator), so
	// the outcome is bit-identical to a local run; model-phase ask
	// batches travel as one task each. Chaos composes: the injector
	// wraps the remote evaluator exactly as it wraps a local one.
	Remote fleet.Submitter
}

// logf emits a recoverable-warning line when a sink is configured.
func (c Config) logf(format string, args ...interface{}) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// Default returns a balanced configuration.
func Default() Config {
	return Config{
		PoolSize:     2000,
		ModelBudget:  200,
		Alpha:        0.05,
		Forest:       forest.Config{NumTrees: 64},
		Searcher:     "anneal",
		SearchBudget: 20000,
		Verify:       5,
	}
}

// Outcome is a completed tuning run.
type Outcome struct {
	// Best is the selected configuration; BestMeasured its real
	// (measured) execution time.
	Best         space.Config
	BestMeasured float64

	// BaselineMeasured is the measured time of the all-default
	// configuration (every parameter at its first level), and Speedup
	// the ratio baseline/best.
	BaselineMeasured float64
	Speedup          float64

	// ModelCost is the cumulative real time spent labeling during the
	// active-learning phase (the paper's CC), and RealRuns the total
	// count of real executions including verification.
	ModelCost float64
	RealRuns  int

	// SearchEvaluations counts the free surrogate evaluations.
	SearchEvaluations int

	// PredictedBest is the surrogate's belief about Best, for
	// model-trust diagnostics.
	PredictedBest float64
}

// Tune runs the full pipeline on problem p. Cancelling ctx drains the
// current measurement and returns the ctx error; with a CheckpointPath
// configured, the interrupted model phase leaves a snapshot behind and a
// rerun of Tune with the same inputs resumes from it bit-identically.
func Tune(ctx context.Context, p bench.Problem, cfg Config, seed uint64) (*Outcome, error) {
	if cfg.ModelBudget < 20 {
		return nil, fmt.Errorf("autotune: model budget %d too small", cfg.ModelBudget)
	}
	if cfg.Verify < 1 {
		return nil, fmt.Errorf("autotune: verify count %d", cfg.Verify)
	}
	if cfg.Quant && !cfg.Stream {
		return nil, fmt.Errorf("autotune: Quant requires Stream (the quantized kernel serves streamed pool scans)")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	searcher, err := search.ByName(cfg.Searcher)
	if err != nil {
		return nil, err
	}
	r := rng.New(seed)
	sp := p.Space()
	var ev core.Evaluator = bench.Evaluator(p, r.Split())
	if cfg.Remote != nil {
		ev, err = fleet.NewRemoteEvaluator(cfg.Remote, p.Name(), ev)
		if err != nil {
			return nil, fmt.Errorf("autotune: %w", err)
		}
	}

	// Phase 1: surrogate via PWU active learning. Every input below is
	// regenerated deterministically from the seed, which is what lets a
	// resumed phase validate the pool fingerprint and continue the
	// exact run. poolR seeds the unlabeled pool: materialized via
	// SampleConfigs, or replayed lazily by a pool.Uniform source carrying
	// the same seed — the two yield the identical candidate sequence.
	poolR := r.Split()
	params := core.Params{
		NInit: 10, NBatch: 5, NMax: cfg.ModelBudget,
		Forest: cfg.Forest, Failure: cfg.Failure,
		StreamShard: cfg.StreamShard, StreamWorkers: cfg.StreamWorkers,
		Quant: cfg.Quant, WarmUpdate: cfg.WarmUpdate,
	}
	if cfg.CheckpointPath != "" {
		params.CheckpointEvery = cfg.CheckpointEvery
		if params.CheckpointEvery <= 0 {
			params.CheckpointEvery = 10
		}
		params.Checkpoint = runstate.FileSink(cfg.CheckpointPath)
	}
	strat := core.PWU{Alpha: cfg.Alpha}

	// The model phase optionally runs under fault injection; verify and
	// baseline measurements below use the clean evaluator.
	var modelEv core.Evaluator = ev
	if cfg.Chaos.Active() {
		modelEv = chaos.Evaluator(cfg.Chaos, rng.Mix(cfg.Chaos.Seed, seed), ev)
	}

	var res *core.Result
	loopR := r.Split() // consumed even on resume, to keep later phases' streams aligned
	var snap *core.Snapshot
	if cfg.CheckpointPath != "" {
		if _, statErr := os.Stat(cfg.CheckpointPath); statErr == nil {
			var loadErr error
			snap, loadErr = runstate.Load(cfg.CheckpointPath)
			if loadErr != nil {
				if !errors.Is(loadErr, runstate.ErrCorrupt) {
					return nil, fmt.Errorf("autotune: loading checkpoint: %w", loadErr)
				}
				// A damaged checkpoint is a recoverable loss, not a
				// reason to refuse to tune: warn, cold-start, and let
				// the next periodic snapshot overwrite the wreckage.
				cfg.logf("warning: ignoring corrupt checkpoint %s, starting cold: %v", cfg.CheckpointPath, loadErr)
				snap = nil
			}
		}
	}
	if cfg.Stream {
		src := pool.NewUniform(sp, poolR.Seed(), cfg.PoolSize)
		if snap != nil {
			res, err = core.ResumeStream(ctx, snap, src, modelEv, strat, params, nil)
		} else {
			res, err = core.RunStream(ctx, src, modelEv, strat, params, loopR, nil)
		}
	} else {
		mem := sp.SampleConfigs(poolR, cfg.PoolSize)
		if snap != nil {
			res, err = core.Resume(ctx, snap, sp, mem, modelEv, strat, params, nil)
		} else {
			res, err = core.Run(ctx, sp, mem, modelEv, strat, params, loopR, nil)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("autotune: model phase: %w", err)
	}
	if cfg.CheckpointPath != "" {
		// The phase completed; a stale snapshot would otherwise make
		// the next fresh run resume into an already-finished loop.
		if rmErr := os.Remove(cfg.CheckpointPath); rmErr != nil && !os.IsNotExist(rmErr) {
			return nil, fmt.Errorf("autotune: clearing checkpoint: %w", rmErr)
		}
	}
	out := &Outcome{
		ModelCost: metrics.CumulativeCost(res.TrainY),
		RealRuns:  len(res.TrainY),
	}

	// Phase 2: heuristic search over the surrogate (free).
	model := res.Model
	obj := func(c space.Config) float64 { return model.Predict(sp.Encode(c)) }
	sres, err := searcher(sp, obj, cfg.SearchBudget, r.Split())
	if err != nil {
		return nil, fmt.Errorf("autotune: search phase: %w", err)
	}
	out.SearchEvaluations = sres.Evaluations

	// Phase 3: verify the search winner plus the best predicted labeled
	// configs and distinct random elite candidates.
	candidates := topCandidates(sp, model, sres, res, cfg.Verify)
	bestV := 0.0
	for i, c := range candidates {
		v, err := ev.Evaluate(ctx, c)
		if err != nil {
			return nil, fmt.Errorf("autotune: verify phase: %w", err)
		}
		out.RealRuns++
		if i == 0 || v < bestV {
			bestV = v
			out.Best = c.Clone()
		}
	}
	out.BestMeasured = bestV
	out.PredictedBest = obj(out.Best)

	baseline := make(space.Config, sp.NumParams())
	out.BaselineMeasured, err = ev.Evaluate(ctx, baseline)
	if err != nil {
		return nil, fmt.Errorf("autotune: baseline measurement: %w", err)
	}
	out.RealRuns++
	if out.BestMeasured > 0 {
		out.Speedup = out.BaselineMeasured / out.BestMeasured
	}
	return out, nil
}

// topCandidates assembles up to n distinct verification candidates: the
// search winner first, then the best labeled configurations by measured
// time.
func topCandidates(sp *space.Space, model core.Model, sres *search.Result, ares *core.Result, n int) []space.Config {
	out := []space.Config{sres.Best}
	seen := map[string]bool{sres.Best.Key(): true}

	order := make([]int, len(ares.TrainY))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return ares.TrainY[order[a]] < ares.TrainY[order[b]] })
	for _, i := range order {
		if len(out) >= n {
			break
		}
		c := ares.TrainConfigs[i]
		if seen[c.Key()] {
			continue
		}
		seen[c.Key()] = true
		out = append(out, c)
	}
	return out
}
