package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestRMSE(t *testing.T) {
	y := []float64{1, 2, 3}
	yhat := []float64{1, 2, 3}
	if got := RMSE(y, yhat); got != 0 {
		t.Fatalf("perfect RMSE = %v", got)
	}
	yhat2 := []float64{2, 3, 4}
	if got := RMSE(y, yhat2); math.Abs(got-1) > 1e-12 {
		t.Fatalf("unit-offset RMSE = %v", got)
	}
	if !math.IsNaN(RMSE(nil, nil)) {
		t.Fatal("empty RMSE should be NaN")
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestMAE(t *testing.T) {
	if got := MAE([]float64{0, 0}, []float64{3, -1}); got != 2 {
		t.Fatalf("MAE = %v", got)
	}
}

func TestMAPE(t *testing.T) {
	if got := MAPE([]float64{10, 20}, []float64{11, 18}); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE = %v", got)
	}
	// zeros skipped
	if got := MAPE([]float64{0, 10}, []float64{5, 11}); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("MAPE with zero obs = %v", got)
	}
	if !math.IsNaN(MAPE([]float64{0}, []float64{1})) {
		t.Fatal("all-zero MAPE should be NaN")
	}
}

func TestR2(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	if got := R2(y, y); got != 1 {
		t.Fatalf("perfect R2 = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(y, mean); math.Abs(got) > 1e-12 {
		t.Fatalf("mean-predictor R2 = %v", got)
	}
	if !math.IsNaN(R2([]float64{1, 1}, []float64{1, 2})) {
		t.Fatal("constant-y R2 should be NaN")
	}
}

func TestTopAlphaIndices(t *testing.T) {
	y := []float64{5, 1, 3, 2, 4}  // best (smallest) first: indices 1,3,2,0? no: 1(1),3(2),2(3),4(4),0(5)
	idx := TopAlphaIndices(y, 0.4) // m = 2
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 3 {
		t.Fatalf("TopAlphaIndices = %v", idx)
	}
}

func TestTopAlphaMinimumOne(t *testing.T) {
	y := []float64{3, 1, 2}
	idx := TopAlphaIndices(y, 0.01) // ⌊3*0.01⌋ = 0 -> forced to 1
	if len(idx) != 1 || idx[0] != 1 {
		t.Fatalf("TopAlphaIndices = %v", idx)
	}
}

func TestTopAlphaFull(t *testing.T) {
	y := []float64{3, 1, 2}
	idx := TopAlphaIndices(y, 1)
	if len(idx) != 3 {
		t.Fatalf("alpha=1 returned %d indices", len(idx))
	}
}

func TestTopAlphaPanics(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("alpha=%v did not panic", a)
				}
			}()
			TopAlphaIndices([]float64{1}, a)
		}()
	}
}

func TestRMSEAtAlphaOnlyTopMatters(t *testing.T) {
	// Predictions are perfect on the fast half, terrible on the slow half.
	y := []float64{1, 2, 100, 200}
	yhat := []float64{1, 2, 0, 0}
	if got := RMSEAtAlpha(y, yhat, 0.5); got != 0 {
		t.Fatalf("top-half RMSE = %v, want 0", got)
	}
	if got := RMSE(y, yhat); got == 0 {
		t.Fatal("overall RMSE should be nonzero")
	}
}

func TestRMSEAtAlphaValue(t *testing.T) {
	y := []float64{1, 2, 3, 4}
	yhat := []float64{2, 2, 3, 4} // error only on the single best sample
	got := RMSEAtAlpha(y, yhat, 0.25)
	if math.Abs(got-1) > 1e-12 {
		t.Fatalf("RMSE@0.25 = %v", got)
	}
}

func TestCumulativeCost(t *testing.T) {
	if got := CumulativeCost([]float64{1.5, 2.5, 3}); got != 7 {
		t.Fatalf("CC = %v", got)
	}
	if got := CumulativeCost(nil); got != 0 {
		t.Fatalf("empty CC = %v", got)
	}
}

func TestCurveAt(t *testing.T) {
	c := Curve{Samples: []int{10, 20, 30}, Values: []float64{5, 3, 1}}
	if v, ok := c.At(20); !ok || v != 3 {
		t.Fatalf("At(20) = %v, %v", v, ok)
	}
	if _, ok := c.At(25); ok {
		t.Fatal("At(25) found a checkpoint")
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestFirstReach(t *testing.T) {
	c := Curve{Samples: []int{1, 2, 3}, Values: []float64{9, 4, 2}}
	if i := c.FirstReach(4); i != 1 {
		t.Fatalf("FirstReach(4) = %d", i)
	}
	if i := c.FirstReach(1); i != -1 {
		t.Fatalf("FirstReach(1) = %d", i)
	}
}

func TestCostToReach(t *testing.T) {
	rmse := Curve{Samples: []int{1, 2, 3}, Values: []float64{9, 4, 2}}
	cost := Curve{Samples: []int{1, 2, 3}, Values: []float64{10, 25, 60}}
	if v, ok := CostToReach(rmse, cost, 4); !ok || v != 25 {
		t.Fatalf("CostToReach = %v, %v", v, ok)
	}
	if _, ok := CostToReach(rmse, cost, 0.5); ok {
		t.Fatal("unreachable target reported reached")
	}
}

func TestSpeedupToTarget(t *testing.T) {
	// Method reaches RMSE 2 at cost 50; baseline reaches 2*1.05 at cost 200.
	m := Curve{Samples: []int{1, 2}, Values: []float64{5, 2}}
	mc := Curve{Samples: []int{1, 2}, Values: []float64{10, 50}}
	b := Curve{Samples: []int{1, 2, 3}, Values: []float64{9, 4, 2.05}}
	bc := Curve{Samples: []int{1, 2, 3}, Values: []float64{40, 120, 200}}
	sp, target, ok := SpeedupToTarget(m, mc, b, bc, 1.05)
	if !ok {
		t.Fatal("speedup not computed")
	}
	if math.Abs(target-2.05*1.05) > 1e-12 {
		t.Fatalf("target = %v", target)
	}
	if math.Abs(sp-200.0/50) > 1e-9 {
		t.Fatalf("speedup = %v", sp)
	}
}

func TestSpeedupEmptyCurves(t *testing.T) {
	if _, _, ok := SpeedupToTarget(Curve{}, Curve{}, Curve{}, Curve{}, 1.05); ok {
		t.Fatal("empty curves produced a speedup")
	}
}

func TestRMSEAtAlphaSubsetProperty(t *testing.T) {
	// Property: RMSE@α depends only on the top-⌊nα⌋ samples — corrupting
	// predictions of slow samples cannot change it.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 20 + r.Intn(100)
		y := make([]float64, n)
		yhat := make([]float64, n)
		for i := range y {
			y[i] = 1 + r.Float64()*99
			yhat[i] = y[i] + r.Normal(0, 3)
		}
		alpha := 0.1
		base := RMSEAtAlpha(y, yhat, alpha)
		idx := TopAlphaIndices(y, alpha)
		top := map[int]bool{}
		for _, i := range idx {
			top[i] = true
		}
		corrupted := append([]float64(nil), yhat...)
		for i := range corrupted {
			if !top[i] {
				corrupted[i] += 1e6
			}
		}
		return math.Abs(RMSEAtAlpha(y, corrupted, alpha)-base) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Zero reaching costs are legitimate (free cold-start labels put the
// first checkpoint at cost 0) and must not divide to NaN.
func TestSpeedupZeroCostBoth(t *testing.T) {
	m := Curve{Samples: []int{1, 2}, Values: []float64{1, 1}}
	mc := Curve{Samples: []int{1, 2}, Values: []float64{0, 5}}
	b := Curve{Samples: []int{1, 2}, Values: []float64{1, 1}}
	bc := Curve{Samples: []int{1, 2}, Values: []float64{0, 3}}
	sp, _, ok := SpeedupToTarget(m, mc, b, bc, 1.05)
	if !ok {
		t.Fatal("zero-cost curves rejected")
	}
	if sp != 1 {
		t.Fatalf("speedup = %v, want 1 when neither method paid anything", sp)
	}
}

func TestSpeedupZeroCostMethodOnly(t *testing.T) {
	m := Curve{Samples: []int{1, 2}, Values: []float64{1, 1}}
	mc := Curve{Samples: []int{1, 2}, Values: []float64{0, 5}}
	b := Curve{Samples: []int{1, 2}, Values: []float64{9, 1}}
	bc := Curve{Samples: []int{1, 2}, Values: []float64{4, 7}}
	sp, _, ok := SpeedupToTarget(m, mc, b, bc, 1.05)
	if !ok {
		t.Fatal("zero-cost method rejected")
	}
	if !math.IsInf(sp, 1) {
		t.Fatalf("speedup = %v, want +Inf when only the method was free", sp)
	}
}
