// Package metrics implements the paper's evaluation metrics.
//
// The paper measures (a) the Root Mean-Square Error restricted to the
// top-⌊nα⌋ best-performing test samples (Eq. 2) — because the point of
// the model is to be accurate where performance is good — and (b) the
// Cumulative time Cost CC (Eq. 3), the total execution time spent
// labeling the training samples. Fig. 7 derives a speedup: the ratio of
// the cumulative costs two methods need to first reach the same error
// level.
//
// Performance convention: observations are execution times in seconds,
// so smaller y means higher performance.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// RMSE returns the root mean-square error between observations y and
// predictions yhat. It panics on length mismatch and returns NaN for
// empty input.
func RMSE(y, yhat []float64) float64 {
	if len(y) != len(yhat) {
		panic("metrics: RMSE length mismatch")
	}
	if len(y) == 0 {
		return math.NaN()
	}
	var sse float64
	for i := range y {
		d := y[i] - yhat[i]
		sse += d * d
	}
	return math.Sqrt(sse / float64(len(y)))
}

// MAE returns the mean absolute error.
func MAE(y, yhat []float64) float64 {
	if len(y) != len(yhat) {
		panic("metrics: MAE length mismatch")
	}
	if len(y) == 0 {
		return math.NaN()
	}
	var acc float64
	for i := range y {
		acc += math.Abs(y[i] - yhat[i])
	}
	return acc / float64(len(y))
}

// MAPE returns the mean absolute percentage error (fractions, not
// percent). Observations equal to zero are skipped; if all are zero the
// result is NaN.
func MAPE(y, yhat []float64) float64 {
	if len(y) != len(yhat) {
		panic("metrics: MAPE length mismatch")
	}
	var acc float64
	n := 0
	for i := range y {
		if y[i] == 0 {
			continue
		}
		acc += math.Abs((y[i] - yhat[i]) / y[i])
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return acc / float64(n)
}

// R2 returns the coefficient of determination. A constant observation
// vector yields NaN.
func R2(y, yhat []float64) float64 {
	if len(y) != len(yhat) {
		panic("metrics: R2 length mismatch")
	}
	if len(y) == 0 {
		return math.NaN()
	}
	mean := stats.Mean(y)
	var ssRes, ssTot float64
	for i := range y {
		d := y[i] - yhat[i]
		ssRes += d * d
		t := y[i] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// TopAlphaIndices returns the indices of the m = ⌊nα⌋ best-performing
// (smallest execution time) observations, per Eq. 2. If ⌊nα⌋ is zero it
// returns the single best index so the metric stays defined, mirroring
// the "top-1" degenerate case. It panics for α outside (0, 1].
func TopAlphaIndices(y []float64, alpha float64) []int {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("metrics: alpha %v outside (0,1]", alpha))
	}
	if len(y) == 0 {
		return nil
	}
	m := int(float64(len(y)) * alpha)
	if m < 1 {
		m = 1
	}
	order := stats.ArgSort(y)
	return order[:m]
}

// RMSEAtAlpha implements Eq. 2: RMSE over the top-⌊nα⌋ samples of y in
// performance ranking (ascending execution time).
func RMSEAtAlpha(y, yhat []float64, alpha float64) float64 {
	if len(y) != len(yhat) {
		panic("metrics: RMSEAtAlpha length mismatch")
	}
	idx := TopAlphaIndices(y, alpha)
	if len(idx) == 0 {
		return math.NaN()
	}
	var sse float64
	for _, i := range idx {
		d := y[i] - yhat[i]
		sse += d * d
	}
	return math.Sqrt(sse / float64(len(idx)))
}

// CumulativeCost implements Eq. 3: the sum of the execution times of all
// labeled samples.
func CumulativeCost(y []float64) float64 {
	return stats.Sum(y)
}

// Curve is a learning curve: one value per evaluation checkpoint, indexed
// by the number of labeled samples at that checkpoint.
type Curve struct {
	Samples []int     // training-set size at each checkpoint
	Values  []float64 // metric value at each checkpoint
}

// Len returns the number of checkpoints.
func (c Curve) Len() int { return len(c.Samples) }

// At returns the value at the checkpoint with the given sample count,
// with ok=false if that checkpoint does not exist.
func (c Curve) At(samples int) (float64, bool) {
	for i, s := range c.Samples {
		if s == samples {
			return c.Values[i], true
		}
	}
	return 0, false
}

// FirstReach returns the index of the first checkpoint whose value is <=
// target, or -1 if the curve never reaches it.
func (c Curve) FirstReach(target float64) int {
	for i, v := range c.Values {
		if v <= target {
			return i
		}
	}
	return -1
}

// CostToReach returns the cumulative cost at the first checkpoint where
// rmse <= target, where cost is a curve aligned with rmse (same
// checkpoints). ok=false if the target is never reached.
func CostToReach(rmse, cost Curve, target float64) (float64, bool) {
	if len(rmse.Values) != len(cost.Values) {
		panic("metrics: misaligned curves")
	}
	i := rmse.FirstReach(target)
	if i < 0 {
		return 0, false
	}
	return cost.Values[i], true
}

// SpeedupToTarget computes Fig. 7's statistic: the ratio of the
// cumulative cost the baseline needs to reach the error target to the
// cost the method needs. The target is chosen as the max of the two
// curves' final (converged) RMSE values scaled by headroom (e.g. 1.05),
// so both methods provably reach it. Returns the speedup and the target
// used; ok=false if either curve is empty or never reaches the target.
//
// A zero reaching cost is legitimate, not an error: when the NInit
// cold-start labels are free (or the synthetic evaluator charges
// nothing) the first checkpoint sits at cost 0, and a method can hit
// the target there. Both costs zero means neither method did paid work
// to reach the target — speedup 1. Only the method at zero cost means
// an unbounded speedup, reported as +Inf.
func SpeedupToTarget(methodRMSE, methodCost, baseRMSE, baseCost Curve, headroom float64) (speedup, target float64, ok bool) {
	if methodRMSE.Len() == 0 || baseRMSE.Len() == 0 {
		return 0, 0, false
	}
	mFinal := methodRMSE.Values[methodRMSE.Len()-1]
	bFinal := baseRMSE.Values[baseRMSE.Len()-1]
	target = math.Max(mFinal, bFinal) * headroom
	mCost, ok1 := CostToReach(methodRMSE, methodCost, target)
	bCost, ok2 := CostToReach(baseRMSE, baseCost, target)
	if !ok1 || !ok2 || mCost < 0 {
		return 0, target, false
	}
	if mCost == 0 {
		if bCost == 0 {
			return 1, target, true
		}
		return math.Inf(1), target, true
	}
	return bCost / mCost, target, true
}
