package search

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/space"
)

// bowl is a smooth objective with minimum 1 at (5, 5, 5).
func bowl(t *testing.T) (*space.Space, Objective) {
	t.Helper()
	sp := space.MustNew(
		space.NumRange("a", 0, 10, 1),
		space.NumRange("b", 0, 10, 1),
		space.NumRange("c", 0, 10, 1),
	)
	obj := func(c space.Config) float64 {
		var acc float64
		for i := 0; i < 3; i++ {
			d := sp.Value(c, i) - 5
			acc += d * d
		}
		return acc + 1
	}
	return sp, obj
}

func TestBudgetValidation(t *testing.T) {
	sp, obj := bowl(t)
	r := rng.New(1)
	if _, err := RandomSearch(sp, obj, 0, r); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := HillClimb(sp, obj, 0, r); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := Anneal(sp, obj, 0, AnnealConfig{}, r); err == nil {
		t.Fatal("zero budget accepted")
	}
}

func TestRandomSearchFindsDecentPoint(t *testing.T) {
	sp, obj := bowl(t)
	res, err := RandomSearch(sp, obj, 500, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 500 || len(res.Trace) != 500 {
		t.Fatalf("evaluations %d trace %d", res.Evaluations, len(res.Trace))
	}
	if res.BestValue > 10 {
		t.Fatalf("random search best %v", res.BestValue)
	}
}

func TestHillClimbFindsOptimumOnConvexBowl(t *testing.T) {
	sp, obj := bowl(t)
	res, err := HillClimb(sp, obj, 400, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 1 {
		t.Fatalf("hill climbing missed the bowl minimum: %v at %v", res.BestValue, res.Best)
	}
}

func TestAnnealFindsOptimum(t *testing.T) {
	sp, obj := bowl(t)
	res, err := Anneal(sp, obj, 3000, AnnealConfig{}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue > 2 {
		t.Fatalf("annealing best %v at %v", res.BestValue, res.Best)
	}
}

func TestTraceMonotone(t *testing.T) {
	sp, obj := bowl(t)
	run := func(f func() (*Result, error)) {
		res, err := f()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(res.Trace); i++ {
			if res.Trace[i] > res.Trace[i-1] {
				t.Fatal("best-so-far trace increased")
			}
		}
		if res.Trace[len(res.Trace)-1] != res.BestValue {
			t.Fatal("trace end != BestValue")
		}
	}
	run(func() (*Result, error) { return RandomSearch(sp, obj, 200, rng.New(5)) })
	run(func() (*Result, error) { return HillClimb(sp, obj, 200, rng.New(6)) })
	run(func() (*Result, error) { return Anneal(sp, obj, 200, AnnealConfig{}, rng.New(7)) })
}

func TestBudgetsRespected(t *testing.T) {
	sp, obj := bowl(t)
	count := 0
	counted := func(c space.Config) float64 { count++; return obj(c) }
	for _, f := range []func() (*Result, error){
		func() (*Result, error) { return RandomSearch(sp, counted, 123, rng.New(8)) },
		func() (*Result, error) { return HillClimb(sp, counted, 123, rng.New(9)) },
		func() (*Result, error) { return Anneal(sp, counted, 123, AnnealConfig{}, rng.New(10)) },
	} {
		count = 0
		res, err := f()
		if err != nil {
			t.Fatal(err)
		}
		if count != 123 || res.Evaluations != 123 {
			t.Fatalf("budget violated: %d calls, %d recorded", count, res.Evaluations)
		}
	}
}

func TestHillClimbEscapesViaRestarts(t *testing.T) {
	// Two-basin objective: a wide shallow basin and a narrow deep one.
	sp := space.MustNew(space.NumRange("x", 0, 100, 1))
	obj := func(c space.Config) float64 {
		x := sp.Value(c, 0)
		wide := (x-70)*(x-70)/100 + 5
		deep := (x - 10) * (x - 10)
		return math.Min(wide, deep)
	}
	res, err := HillClimb(sp, obj, 2000, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 0 {
		t.Fatalf("restarts failed to find the deep basin: best %v at %v", res.BestValue, res.Best)
	}
}

func TestAnnealAcceptsWorseMovesEarly(t *testing.T) {
	// With a huge temperature the walk must wander: count accepted
	// configurations distinct from the incumbent path of a greedy run.
	sp, obj := bowl(t)
	res, err := Anneal(sp, obj, 500, AnnealConfig{Temp0: 1e9, Cooling: 0.9999}, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	// A pure greedy walk on the bowl converges fast; a hot walk keeps
	// evaluating scattered values, so the mean trace stays above the
	// optimum for a while. Check it at least terminated with the budget.
	if res.Evaluations != 500 {
		t.Fatalf("evaluations %d", res.Evaluations)
	}
}

func TestByName(t *testing.T) {
	sp, obj := bowl(t)
	for _, name := range []string{"random", "hill", "anneal"} {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f(sp, obj, 50, rng.New(13)); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown searcher accepted")
	}
}

func TestDeterministic(t *testing.T) {
	sp, obj := bowl(t)
	a, _ := Anneal(sp, obj, 300, AnnealConfig{}, rng.New(14))
	b, _ := Anneal(sp, obj, 300, AnnealConfig{}, rng.New(14))
	if a.BestValue != b.BestValue || a.Best.Key() != b.Best.Key() {
		t.Fatal("annealing not deterministic")
	}
}

func TestSingleLevelParameter(t *testing.T) {
	// A space containing a one-level parameter must not break the
	// mutation logic.
	sp := space.MustNew(space.Num("fixed", 42), space.NumRange("x", 0, 9, 1))
	obj := func(c space.Config) float64 { return sp.Value(c, 1) }
	res, err := Anneal(sp, obj, 200, AnnealConfig{}, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestValue != 0 {
		t.Fatalf("best %v", res.BestValue)
	}
}
