// Package search provides heuristic optimisers over a parameter space —
// the consumers an empirical performance model exists for. The paper's
// abstract frames EPM as the enabler of "efficient heuristic methods to
// find sub-optimal parameter configurations": once the surrogate is
// built, these searchers can afford tens of thousands of (free) model
// evaluations where direct search could afford only dozens of real runs.
//
// Three searchers are provided, all minimising a black-box objective
// over a space.Space:
//
//   - RandomSearch: uniform sampling, the canonical baseline.
//   - HillClimb: restarted steepest-descent over level neighbourhoods
//     (each neighbour changes one parameter by one level).
//   - Anneal: simulated annealing with geometric cooling, randomly
//     mutating one parameter per step.
//
// All searchers respect an evaluation budget and are deterministic given
// the caller's generator.
package search

import (
	"fmt"
	"math"

	"repro/internal/rng"
	"repro/internal/space"
)

// Objective evaluates a configuration; searchers minimise it. With a
// surrogate model, this is typically model.Predict ∘ space.Encode.
type Objective func(c space.Config) float64

// Result is a completed search.
type Result struct {
	// Best is the best configuration found and BestValue its objective.
	Best      space.Config
	BestValue float64

	// Evaluations counts objective calls consumed.
	Evaluations int

	// Trace records the best-so-far value after each evaluation, for
	// convergence plots.
	Trace []float64
}

// track folds an evaluation into the running result.
func (res *Result) track(c space.Config, v float64) {
	res.Evaluations++
	if res.Best == nil || v < res.BestValue {
		res.Best = c.Clone()
		res.BestValue = v
	}
	res.Trace = append(res.Trace, res.BestValue)
}

// RandomSearch evaluates budget uniform samples.
func RandomSearch(sp *space.Space, obj Objective, budget int, r *rng.RNG) (*Result, error) {
	if budget < 1 {
		return nil, fmt.Errorf("search: budget %d", budget)
	}
	res := &Result{}
	for i := 0; i < budget; i++ {
		c := sp.SampleConfig(r)
		res.track(c, obj(c))
	}
	return res, nil
}

// neighbors enumerates the one-level moves from c: for every parameter,
// the level above and below (when they exist).
func neighbors(sp *space.Space, c space.Config) []space.Config {
	var out []space.Config
	for i := 0; i < sp.NumParams(); i++ {
		for _, d := range []int{-1, 1} {
			l := c[i] + d
			if l < 0 || l >= sp.Param(i).NumLevels() {
				continue
			}
			n := c.Clone()
			n[i] = l
			out = append(out, n)
		}
	}
	return out
}

// HillClimb runs steepest-descent from random restarts until the budget
// is exhausted. Each step evaluates the full one-level neighbourhood and
// moves to the best neighbour; a local minimum triggers a restart.
func HillClimb(sp *space.Space, obj Objective, budget int, r *rng.RNG) (*Result, error) {
	if budget < 1 {
		return nil, fmt.Errorf("search: budget %d", budget)
	}
	res := &Result{}
	for res.Evaluations < budget {
		cur := sp.SampleConfig(r)
		curV := obj(cur)
		res.track(cur, curV)
		for res.Evaluations < budget {
			bestN := space.Config(nil)
			bestV := curV
			for _, n := range neighbors(sp, cur) {
				if res.Evaluations >= budget {
					break
				}
				v := obj(n)
				res.track(n, v)
				if v < bestV {
					bestN, bestV = n, v
				}
			}
			if bestN == nil {
				break // local minimum: restart
			}
			cur, curV = bestN, bestV
		}
	}
	return res, nil
}

// AnnealConfig tunes the simulated-annealing schedule. Zero values get
// sensible defaults: initial temperature equal to a tenth of the first
// sample's objective and a cooling factor spreading the schedule over
// the budget.
type AnnealConfig struct {
	// Temp0 is the initial temperature in objective units.
	Temp0 float64

	// Cooling is the per-step geometric cooling factor in (0, 1).
	Cooling float64
}

// Anneal runs simulated annealing for exactly budget objective
// evaluations, mutating one uniformly chosen parameter to a uniformly
// chosen level per step and accepting worse moves with the Metropolis
// probability exp(-Δ/T).
func Anneal(sp *space.Space, obj Objective, budget int, cfg AnnealConfig, r *rng.RNG) (*Result, error) {
	if budget < 1 {
		return nil, fmt.Errorf("search: budget %d", budget)
	}
	res := &Result{}
	cur := sp.SampleConfig(r)
	curV := obj(cur)
	res.track(cur, curV)

	temp := cfg.Temp0
	if temp <= 0 {
		temp = math.Abs(curV) * 0.1
		if temp == 0 {
			temp = 1
		}
	}
	cooling := cfg.Cooling
	if cooling <= 0 || cooling >= 1 {
		// Aim to decay temperature by ~1e3 over the budget.
		cooling = math.Pow(1e-3, 1/math.Max(1, float64(budget-1)))
	}

	for res.Evaluations < budget {
		n := cur.Clone()
		i := r.Intn(sp.NumParams())
		levels := sp.Param(i).NumLevels()
		if levels > 1 {
			l := r.Intn(levels - 1)
			if l >= n[i] {
				l++ // uniform over levels != current
			}
			n[i] = l
		}
		v := obj(n)
		res.track(n, v)
		if v <= curV || r.Float64() < math.Exp(-(v-curV)/temp) {
			cur, curV = n, v
		}
		temp *= cooling
	}
	return res, nil
}

// ByName returns the named searcher as a uniform closure signature.
// Recognised names: "random", "hill", "anneal".
func ByName(name string) (func(sp *space.Space, obj Objective, budget int, r *rng.RNG) (*Result, error), error) {
	switch name {
	case "random":
		return RandomSearch, nil
	case "hill":
		return HillClimb, nil
	case "anneal":
		return func(sp *space.Space, obj Objective, budget int, r *rng.RNG) (*Result, error) {
			return Anneal(sp, obj, budget, AnnealConfig{}, r)
		}, nil
	default:
		return nil, fmt.Errorf("search: unknown searcher %q (have random, hill, anneal)", name)
	}
}
