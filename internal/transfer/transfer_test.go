package transfer

import (
	"context"
	"testing"

	"repro/internal/bench"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/spapt"
)

// problemOn adapts a SPAPT kernel on an arbitrary platform to
// bench.Problem.
type problemOn struct {
	*spapt.Kernel
}

func (problemOn) Noise() noise.Model { return noise.Kernel() }

func pair(t *testing.T, name string) (source, target bench.Problem) {
	t.Helper()
	k, err := spapt.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return problemOn{k}, problemOn{k.WithPlatform(machine.PlatformC())}
}

func smallCfg() Config {
	cfg := Default()
	cfg.SourceBudget = 120
	cfg.TargetBudgets = []int{10, 30, 80}
	cfg.PoolSize, cfg.TestSize = 600, 300
	cfg.Forest.NumTrees = 32
	return cfg
}

func TestSpacesMustMatch(t *testing.T) {
	src, _ := pair(t, "atax")
	other, err := bench.ByName("adi")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), src, other, smallCfg(), 1); err == nil {
		t.Fatal("mismatched spaces accepted")
	}
}

func TestTransferBeatsColdAtSmallBudgets(t *testing.T) {
	src, tgt := pair(t, "atax")
	res, err := Run(context.Background(), src, tgt, smallCfg(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.SourcePlatform != "A" || res.TargetPlatform != "C" {
		t.Fatalf("platforms %s -> %s", res.SourcePlatform, res.TargetPlatform)
	}
	// At the smallest budget the stacked model must win clearly.
	if res.TransferRMSE[0] >= res.ColdRMSE[0] {
		t.Fatalf("transfer %v not better than cold %v at budget %d",
			res.TransferRMSE[0], res.ColdRMSE[0], res.Budgets[0])
	}
	for i, v := range res.TransferRMSE {
		if v <= 0 || v != v {
			t.Fatalf("bad transfer RMSE at %d: %v", i, v)
		}
	}
}

func TestTargetLabelsStillHelp(t *testing.T) {
	// More target labels should reduce the transfer model's error
	// compared to zero-shot source-only application.
	src, tgt := pair(t, "mvt")
	res, err := Run(context.Background(), src, tgt, smallCfg(), 3)
	if err != nil {
		t.Fatal(err)
	}
	last := len(res.TransferRMSE) - 1
	if res.TransferRMSE[last] >= res.SourceOnlyRMSE {
		t.Fatalf("transfer with %d labels (%v) no better than zero-shot (%v)",
			res.Budgets[last], res.TransferRMSE[last], res.SourceOnlyRMSE)
	}
}

func TestDeterministic(t *testing.T) {
	src, tgt := pair(t, "atax")
	a, err := Run(context.Background(), src, tgt, smallCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), src, tgt, smallCfg(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ColdRMSE {
		if a.ColdRMSE[i] != b.ColdRMSE[i] || a.TransferRMSE[i] != b.TransferRMSE[i] {
			t.Fatal("transfer experiment not deterministic")
		}
	}
}

func TestBudgetValidation(t *testing.T) {
	src, tgt := pair(t, "atax")
	cfg := smallCfg()
	cfg.TargetBudgets = []int{1}
	if _, err := Run(context.Background(), src, tgt, cfg, 5); err == nil {
		t.Fatal("degenerate budget accepted")
	}
	cfg = smallCfg()
	cfg.TargetBudgets = []int{100000}
	if _, err := Run(context.Background(), src, tgt, cfg, 5); err == nil {
		t.Fatal("oversized budget accepted")
	}
}

func TestPlatformsActuallyDiffer(t *testing.T) {
	// Sanity: the same configuration takes different times on A and C,
	// else the transfer problem is trivial.
	k, err := spapt.ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	kc := k.WithPlatform(machine.PlatformC())
	diff := 0
	sp := k.Space()
	for i := 0; i < 20; i++ {
		c := make([]int, sp.NumParams())
		for j := range c {
			c[j] = (i + j) % sp.Param(j).NumLevels()
		}
		if k.TrueTime(c) != kc.TrueTime(c) {
			diff++
		}
	}
	if diff < 15 {
		t.Fatalf("platforms nearly identical: only %d/20 configs differ", diff)
	}
}
