// Package transfer implements the paper's future-work experiment: the
// portability of performance models across platforms ("to avoid building
// models from scratch when encountering new kernels or platforms",
// §VI).
//
// The setting: a kernel has been modeled thoroughly on a *source*
// platform; the same kernel must now be modeled on a *target* platform
// with as few target-platform runs as possible. The transfer mechanism
// is multiplicative residual learning: the target model predicts the
// *correction ratio* y_target / ŷ_source and the final prediction is
// ŷ_source(x) × correction(x). Because the two platforms share most of
// the response-surface structure (the same transformations help or hurt
// in the same places, with different constants), the correction is
// nearly constant and a handful of target labels pin it down — so the
// transferred model reaches a given accuracy with far fewer target
// labels than a from-scratch model. The source prediction is also
// appended as an input feature of the correction forest (stacking), so
// structured corrections remain learnable at larger budgets.
package transfer

import (
	"context"
	"fmt"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/forest"
	"repro/internal/metrics"
	"repro/internal/rng"
	"repro/internal/space"
)

// Config sizes a transfer experiment.
type Config struct {
	// SourceBudget is the number of source-platform labels used to build
	// the source model (source runs are treated as sunk cost).
	SourceBudget int

	// TargetBudgets are the target-label budgets at which both models
	// are evaluated (ascending).
	TargetBudgets []int

	// PoolSize/TestSize split the target dataset.
	PoolSize, TestSize int

	// Alpha is the RMSE@α metric parameter.
	Alpha float64

	// Forest configures all models.
	Forest forest.Config
}

// Default returns a moderate-size experiment configuration.
func Default() Config {
	return Config{
		SourceBudget:  300,
		TargetBudgets: []int{10, 20, 40, 80, 160},
		PoolSize:      1500,
		TestSize:      600,
		Alpha:         0.05,
		Forest:        forest.Config{NumTrees: 48},
	}
}

// Result compares from-scratch and transfer modeling on the target.
type Result struct {
	Kernel         string
	SourcePlatform string
	TargetPlatform string

	// Budgets[i] target labels give ColdRMSE[i] (fresh model) and
	// TransferRMSE[i] (stacked model reusing the source model).
	Budgets      []int
	ColdRMSE     []float64
	TransferRMSE []float64

	// SourceOnlyRMSE is the error of applying the source model to the
	// target with zero target labels (scaling mismatch included).
	SourceOnlyRMSE float64
}

// Run executes the experiment: source and target must share a parameter
// space (e.g. a SPAPT kernel and its WithPlatform variant).
func Run(ctx context.Context, source, target bench.Problem, cfg Config, seed uint64) (*Result, error) {
	if source.Space().NumParams() != target.Space().NumParams() {
		return nil, fmt.Errorf("transfer: source and target spaces differ")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	r := rng.New(seed)

	// Build the source model with PWU active learning on the source
	// platform.
	srcPool := source.Space().SampleConfigs(r.Split(), cfg.PoolSize)
	srcRes, err := core.Run(ctx, source.Space(), srcPool, bench.Evaluator(source, r.Split()),
		core.PWU{Alpha: cfg.Alpha},
		core.Params{NInit: 10, NBatch: 5, NMax: cfg.SourceBudget, Forest: cfg.Forest}, r.Split(), nil)
	if err != nil {
		return nil, fmt.Errorf("transfer: source model: %w", err)
	}
	srcModel := srcRes.Model

	// Target data: pool + pre-measured test set.
	ds, err := dataset.Build(ctx, target, cfg.PoolSize, cfg.TestSize, r.Split())
	if err != nil {
		return nil, err
	}
	testX := ds.TestX()

	res := &Result{
		Kernel:         target.Name(),
		SourcePlatform: source.Platform().Name,
		TargetPlatform: target.Platform().Name,
	}

	// Zero-shot: the source model applied directly to the target.
	srcPred, _ := srcModel.PredictBatch(testX)
	res.SourceOnlyRMSE = metrics.RMSEAtAlpha(ds.TestY, srcPred, cfg.Alpha)

	// Stacked feature schema: original columns plus the source
	// prediction.
	features := target.Space().Features()
	stackedFeatures := append(append([]space.Feature(nil), features...),
		space.Feature{Name: "__source_pred", Kind: space.FeatNumeric})
	stack := func(X [][]float64) [][]float64 {
		mu, _ := srcModel.PredictBatch(X)
		out := make([][]float64, len(X))
		for i := range X {
			out[i] = append(append([]float64(nil), X[i]...), mu[i])
		}
		return out
	}
	stackedTestX := stack(testX)

	// Shared target labels: one random draw covering the largest budget,
	// so every budget is a prefix (paired comparison).
	maxBudget := cfg.TargetBudgets[len(cfg.TargetBudgets)-1]
	if maxBudget > len(ds.Pool) {
		return nil, fmt.Errorf("transfer: budget %d exceeds pool %d", maxBudget, len(ds.Pool))
	}
	order := r.Sample(len(ds.Pool), maxBudget)
	ev := bench.Evaluator(target, r.Split())
	labX := make([][]float64, maxBudget)
	labY := make([]float64, maxBudget)
	for i, idx := range order {
		labX[i] = target.Space().Encode(ds.Pool[idx])
		y, err := ev.Evaluate(ctx, ds.Pool[idx])
		if err != nil {
			return nil, fmt.Errorf("transfer: target label %d/%d: %w", i+1, maxBudget, err)
		}
		labY[i] = y
	}
	stackedLabX := stack(labX)

	// Correction-ratio targets: y_target / ŷ_source for the labeled rows.
	srcOnLabels, _ := srcModel.PredictBatch(labX)
	ratios := make([]float64, maxBudget)
	for i := range ratios {
		ratios[i] = labY[i] / positive(srcOnLabels[i])
	}
	srcOnTest, _ := srcModel.PredictBatch(testX)

	for _, budget := range cfg.TargetBudgets {
		if budget < 2 {
			return nil, fmt.Errorf("transfer: budget %d too small", budget)
		}
		cold, err := forest.Fit(labX[:budget], labY[:budget], features, cfg.Forest, r.Split())
		if err != nil {
			return nil, err
		}
		coldPred, _ := cold.PredictBatch(testX)

		// Regularize the correction at small budgets: wide leaves make
		// the forest interpolate toward the global mean ratio (a pure
		// rescaling) until enough target labels support structure.
		corrCfg := cfg.Forest
		if reg := 1 + budget/10; corrCfg.Tree.MinSamplesLeaf < reg {
			corrCfg.Tree.MinSamplesLeaf = reg
		}
		if corrCfg.Tree.MinSamplesLeaf > 5 {
			corrCfg.Tree.MinSamplesLeaf = 5
		}
		corr, err := forest.Fit(stackedLabX[:budget], ratios[:budget], stackedFeatures, corrCfg, r.Split())
		if err != nil {
			return nil, err
		}
		corrPred, _ := corr.PredictBatch(stackedTestX)
		warmPred := make([]float64, len(testX))
		for i := range warmPred {
			warmPred[i] = positive(srcOnTest[i]) * corrPred[i]
		}

		res.Budgets = append(res.Budgets, budget)
		res.ColdRMSE = append(res.ColdRMSE, metrics.RMSEAtAlpha(ds.TestY, coldPred, cfg.Alpha))
		res.TransferRMSE = append(res.TransferRMSE, metrics.RMSEAtAlpha(ds.TestY, warmPred, cfg.Alpha))
	}
	return res, nil
}

// positive clamps a source prediction to a tiny positive floor so ratio
// targets stay finite (execution times are positive, but a degenerate
// model could emit 0).
func positive(v float64) float64 {
	if v < 1e-12 {
		return 1e-12
	}
	return v
}
