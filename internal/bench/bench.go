// Package bench unifies the paper's 14 benchmarks — 12 SPAPT kernels plus
// kripke and hypre — behind a single Problem interface, pairing each with
// its measurement-noise profile and platform, and adapting them to the
// active-learning Evaluator of internal/core.
package bench

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/hypre"
	"repro/internal/kripke"
	"repro/internal/machine"
	"repro/internal/noise"
	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/spapt"
)

// Problem is one benchmark: a parameter space plus the modeled noise-free
// performance function and the noise profile of its measurements.
type Problem interface {
	// Name is the benchmark's short name ("adi", ..., "kripke", "hypre").
	Name() string

	// Description is a one-line human description.
	Description() string

	// Space is the tunable parameter space.
	Space() *space.Space

	// TrueTime is the modeled noise-free execution time in seconds.
	TrueTime(c space.Config) float64

	// Noise is the measurement noise profile (§III-B protocol).
	Noise() noise.Model

	// Platform is the execution platform of Table IV.
	Platform() *machine.Platform
}

// kernelProblem adapts a SPAPT kernel to Problem.
type kernelProblem struct {
	*spapt.Kernel
}

// Noise returns the kernel measurement profile (35 averaged repeats).
func (kernelProblem) Noise() noise.Model { return noise.Kernel() }

// kripkeProblem adapts kripke to Problem.
type kripkeProblem struct {
	*kripke.Kripke
}

// Noise returns the application measurement profile.
func (kripkeProblem) Noise() noise.Model { return noise.Application() }

// hypreProblem adapts hypre to Problem.
type hypreProblem struct {
	*hypre.Hypre
}

// Noise returns the application measurement profile.
func (hypreProblem) Noise() noise.Model { return noise.Application() }

// Kernels returns the 12 SPAPT kernel problems in suite order.
func Kernels() []Problem {
	ks := spapt.All()
	out := make([]Problem, len(ks))
	for i, k := range ks {
		out[i] = kernelProblem{k}
	}
	return out
}

// Applications returns the kripke and hypre problems.
func Applications() []Problem {
	return []Problem{kripkeProblem{kripke.New()}, hypreProblem{hypre.New()}}
}

// All returns all 14 problems: the kernels followed by the applications.
func All() []Problem {
	return append(Kernels(), Applications()...)
}

// Names lists all benchmark names in suite order.
func Names() []string {
	ps := All()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name()
	}
	return out
}

// ByName returns the named problem.
func ByName(name string) (Problem, error) {
	switch name {
	case "kripke":
		return kripkeProblem{kripke.New()}, nil
	case "hypre":
		return hypreProblem{hypre.New()}, nil
	}
	k, err := spapt.ByName(name)
	if err != nil {
		return nil, fmt.Errorf("bench: unknown benchmark %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return kernelProblem{k}, nil
}

// KernelOn returns the named SPAPT kernel re-hosted on an arbitrary
// platform — the target side of a model-portability experiment
// (internal/transfer). The parameter space is identical to the Platform
// A original.
func KernelOn(name string, p *machine.Platform) (Problem, error) {
	k, err := spapt.ByName(name)
	if err != nil {
		return nil, err
	}
	return kernelProblem{k.WithPlatform(p)}, nil
}

// NoisyEvaluator measures a problem's configurations under its noise
// profile, drawing noise from an internal generator. It implements
// core.StatefulEvaluator: the noise stream position can be exported into
// a run snapshot and restored on resume, so interrupted noisy runs
// continue bit-identically.
type NoisyEvaluator struct {
	p Problem
	n noise.Model
	r *rng.RNG
}

// Evaluate simulates the full §III-B protocol (repeated runs, averaged)
// for one configuration. The simulated measurement itself cannot fail;
// cancellation is honored between measurements.
func (e *NoisyEvaluator) Evaluate(ctx context.Context, c space.Config) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return e.n.Measure(e.p.TrueTime(c), e.r), nil
}

// EvaluatorState exports the noise generator's stream position.
func (e *NoisyEvaluator) EvaluatorState() rng.State { return e.r.State() }

// RestoreEvaluatorState rewinds the noise stream to an exported state.
func (e *NoisyEvaluator) RestoreEvaluatorState(st rng.State) error {
	r, err := rng.FromState(st)
	if err != nil {
		return err
	}
	e.r = r
	return nil
}

// Evaluator returns a core.Evaluator that measures p's configurations
// under its noise profile, drawing noise from r. Each Evaluate call
// simulates the full §III-B protocol (repeated runs, averaged).
func Evaluator(p Problem, r *rng.RNG) *NoisyEvaluator {
	return &NoisyEvaluator{p: p, n: p.Noise(), r: r}
}

// TrueEvaluator returns a noise-free evaluator for p (used by ablations
// and the tuning ground truth).
func TrueEvaluator(p Problem) core.Evaluator {
	return core.AdaptEvaluator(core.LegacyEvaluatorFunc(p.TrueTime))
}
