package bench

import (
	"context"
	"math"
	"testing"

	"repro/internal/rng"
)

func TestFourteenProblems(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("got %d problems, want 14 (12 kernels + 2 applications)", len(all))
	}
	if len(Kernels()) != 12 || len(Applications()) != 2 {
		t.Fatal("wrong kernel/application split")
	}
}

func TestNamesUniqueAndResolvable(t *testing.T) {
	seen := map[string]bool{}
	for _, name := range Names() {
		if seen[name] {
			t.Fatalf("duplicate benchmark %s", name)
		}
		seen[name] = true
		p, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name() != name {
			t.Fatalf("ByName(%s).Name() = %s", name, p.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestPlatformAssignment(t *testing.T) {
	// §III-B: kernels on Platform A, applications on Platform B.
	for _, p := range Kernels() {
		if p.Platform().Name != "A" {
			t.Fatalf("%s on platform %s, want A", p.Name(), p.Platform().Name)
		}
	}
	for _, p := range Applications() {
		if p.Platform().Name != "B" {
			t.Fatalf("%s on platform %s, want B", p.Name(), p.Platform().Name)
		}
	}
}

func TestNoiseProfiles(t *testing.T) {
	for _, p := range Kernels() {
		if p.Noise().Repeats != 35 {
			t.Fatalf("%s: kernel noise repeats = %d, want 35", p.Name(), p.Noise().Repeats)
		}
	}
	for _, p := range Applications() {
		if p.Noise().Repeats == 35 {
			t.Fatalf("%s: application should not use the 35-repeat kernel protocol", p.Name())
		}
	}
}

func TestEvaluatorNoisyButClose(t *testing.T) {
	p, err := ByName("atax")
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	c := p.Space().SampleConfig(r)
	truth := p.TrueTime(c)
	ev := Evaluator(p, rng.New(2))
	got, err := ev.Evaluate(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if got == truth {
		t.Fatal("evaluator returned noise-free value")
	}
	if math.Abs(got-truth)/truth > 0.2 {
		t.Fatalf("averaged measurement %v too far from truth %v", got, truth)
	}
}

func TestTrueEvaluatorExact(t *testing.T) {
	p, _ := ByName("mm")
	c := p.Space().SampleConfig(rng.New(3))
	got, err := TrueEvaluator(p).Evaluate(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	if got != p.TrueTime(c) {
		t.Fatal("TrueEvaluator not exact")
	}
}

func TestEvaluatorDeterministicPerSeed(t *testing.T) {
	p, _ := ByName("kripke")
	c := p.Space().SampleConfig(rng.New(4))
	a, _ := Evaluator(p, rng.New(7)).Evaluate(context.Background(), c)
	b, _ := Evaluator(p, rng.New(7)).Evaluate(context.Background(), c)
	if a != b {
		t.Fatal("evaluator not deterministic under seed")
	}
}

func TestAllProblemsEvaluate(t *testing.T) {
	r := rng.New(5)
	for _, p := range All() {
		ev := Evaluator(p, r.Split())
		for i := 0; i < 5; i++ {
			y, err := ev.Evaluate(context.Background(), p.Space().SampleConfig(r))
			if err != nil {
				t.Fatal(err)
			}
			if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
				t.Fatalf("%s: measurement %v", p.Name(), y)
			}
		}
	}
}
