package hypre

import (
	"math"
	"testing"

	"repro/internal/space"
	"repro/internal/stats"
)

func TestTableIIISpace(t *testing.T) {
	h := New()
	sp := h.Space()
	if sp.NumParams() != 4 {
		t.Fatalf("hypre has %d params, Table III lists 4", sp.NumParams())
	}
	solver, _ := sp.ByName("solver")
	if solver.Kind != space.Categorical || solver.NumLevels() != 25 {
		t.Fatalf("solver = %d levels, Table III lists 25 ids", solver.NumLevels())
	}
	co, _ := sp.ByName("coarsening")
	if co.NumLevels() != 2 {
		t.Fatalf("coarsening = %+v", co)
	}
	sm, _ := sp.ByName("smtype")
	if sm.NumLevels() != 9 {
		t.Fatalf("smtype = %+v", sm)
	}
	pr, _ := sp.ByName("#process")
	if pr.NumLevels() != 7 || pr.Levels[0] != 8 || pr.Levels[6] != 512 {
		t.Fatalf("#process = %+v", pr)
	}
}

func TestAllSolverIDsHaveTraits(t *testing.T) {
	if len(SolverIDs) != 25 {
		t.Fatalf("%d solver ids, want 25", len(SolverIDs))
	}
	for _, id := range SolverIDs {
		if _, ok := solverTraits[id]; !ok {
			t.Fatalf("solver %d has no traits", id)
		}
	}
	for _, id := range SolverIDs {
		tr := solverTraits[id]
		if tr.rho <= 0 || tr.rho >= 1 {
			t.Fatalf("solver %d rho = %v outside (0,1)", id, tr.rho)
		}
		if tr.setupUnits <= 0 || tr.iterUnits <= 0 || tr.commFactor <= 0 {
			t.Fatalf("solver %d has non-positive cost units", id)
		}
	}
}

func TestTrueTimePositiveFinite(t *testing.T) {
	h := New()
	for _, c := range h.Space().Enumerate() {
		y := h.TrueTime(c)
		if y <= 0 || math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("TrueTime(%s) = %v", h.Space().String(c), y)
		}
	}
}

// mk builds a config by level indices.
func mk(h *Hypre, solverLevel, coarsenLevel, smLevel, procLevel int) space.Config {
	sp := h.Space()
	c := make(space.Config, sp.NumParams())
	c[sp.IndexOf("solver")] = solverLevel
	c[sp.IndexOf("coarsening")] = coarsenLevel
	c[sp.IndexOf("smtype")] = smLevel
	c[sp.IndexOf("#process")] = procLevel
	return c
}

func TestAMGBeatsUnpreconditioned(t *testing.T) {
	h := New()
	// Solver level 1 = AMG-PCG, level 11 = plain PCG (id 11), same rest.
	amg := h.TrueTime(mk(h, 1, 0, 3, 3))
	plain := h.TrueTime(mk(h, 11, 0, 3, 3))
	if amg >= plain {
		t.Fatalf("AMG-PCG %v not faster than plain PCG %v on the Laplacian", amg, plain)
	}
}

func TestIterationCapCreatesOutliers(t *testing.T) {
	// CGNR without preconditioner (id 15, level index?) is nearly
	// divergent: it must hit the cap and be dramatically slower than the
	// best configuration.
	h := New()
	sp := h.Space()
	var worst, best = 0.0, math.Inf(1)
	for _, c := range sp.Enumerate() {
		y := h.TrueTime(c)
		if y > worst {
			worst = y
		}
		if y < best {
			best = y
		}
	}
	if worst/best < 10 {
		t.Fatalf("outlier ratio %v too small; hypre spaces are wilder", worst/best)
	}
}

func TestSmootherMattersOnlyWithAMG(t *testing.T) {
	h := New()
	// AMG solver: smoother changes time.
	a0 := h.TrueTime(mk(h, 1, 0, 0, 3))
	a3 := h.TrueTime(mk(h, 1, 0, 3, 3))
	if a0 == a3 {
		t.Fatal("smoother dead for AMG solver")
	}
	// DS-PCG (level 2 = id 2): smoother inert, like the real driver.
	d0 := h.TrueTime(mk(h, 2, 0, 0, 3))
	d3 := h.TrueTime(mk(h, 2, 0, 3, 3))
	if d0 != d3 {
		t.Fatal("smoother affected a non-AMG solver")
	}
}

func TestCoarseningTradeoff(t *testing.T) {
	h := New()
	// hmis improves convergence but costs more setup; with a good
	// smoother both should be within 3x and differ.
	pmis := h.TrueTime(mk(h, 1, 0, 3, 3))
	hmis := h.TrueTime(mk(h, 1, 1, 3, 3))
	if pmis == hmis {
		t.Fatal("coarsening is a dead parameter")
	}
	if ratio := math.Max(pmis, hmis) / math.Min(pmis, hmis); ratio > 3 {
		t.Fatalf("coarsening effect implausibly large: %v", ratio)
	}
}

func TestStrongScalingSaturates(t *testing.T) {
	h := New()
	// AMG-PCG: going 8 -> 64 ranks should speed up clearly; going 256 ->
	// 512 should gain much less (latency floor), possibly regress.
	t8 := h.TrueTime(mk(h, 1, 0, 3, 0))
	t64 := h.TrueTime(mk(h, 1, 0, 3, 3))
	t256 := h.TrueTime(mk(h, 1, 0, 3, 5))
	t512 := h.TrueTime(mk(h, 1, 0, 3, 6))
	if t64 >= t8 {
		t.Fatalf("no strong scaling: 8 ranks %v vs 64 ranks %v", t8, t64)
	}
	early := t8 / t64
	late := t256 / t512
	if late >= early {
		t.Fatalf("scaling did not saturate: early %vx late %vx", early, late)
	}
}

func TestBadSmootherPenalty(t *testing.T) {
	// Chaotic GS (type 5) with AMG should be much worse than default (3).
	h := New()
	good := h.TrueTime(mk(h, 1, 0, 3, 3))
	bad := h.TrueTime(mk(h, 1, 0, 5, 3))
	if bad < good*3 {
		t.Fatalf("bad smoother not penalised: good %v bad %v", good, bad)
	}
}

func TestDynamicRangeAndScale(t *testing.T) {
	h := New()
	var times []float64
	for _, c := range h.Space().Enumerate() {
		times = append(times, h.TrueTime(c))
	}
	if stats.Min(times) < 0.1 || stats.Max(times) > 5000 {
		t.Fatalf("times [%v, %v] implausible", stats.Min(times), stats.Max(times))
	}
	// Median should be moderate: most of the space is mediocre, not awful.
	med := stats.Median(times)
	if med > stats.Max(times)/3 {
		t.Fatalf("median %v too close to max %v", med, stats.Max(times))
	}
}

func TestSolverID(t *testing.T) {
	h := New()
	c := mk(h, 18, 0, 0, 0) // level 18 -> id 43
	if got := h.SolverID(c); got != 43 {
		t.Fatalf("SolverID = %d, want 43", got)
	}
}
