// Package hypre models the hypre new_ij test driver solving a 27-point
// 3-D Laplacian — the second application benchmark of the paper — with
// the tunable parameters of Table III:
//
//	solver     — new_ij solver id: 0–15, 18, 20, 43–45, 50–51, 60–61
//	             (BoomerAMG, AMG/DS/ParaSails/PILUT/Schwarz/Euclid
//	             preconditioned PCG/GMRES/BiCGSTAB/CGNR variants,
//	             hybrid and LGMRES/FlexGMRES solvers)
//	coarsening — BoomerAMG coarsening scheme: pmis or hmis
//	smtype     — BoomerAMG relaxation (smoother) type 0–8
//	#process   — MPI ranks: 8..512
//
// TrueTime computes the solve time from the textbook iterative-solver
// decomposition
//
//	time = setup(P) + iterations(ρ) × cycle(P)
//
// where ρ is the convergence factor of the (solver, coarsening, smoother)
// combination, iterations = log(tol)/log(ρ) capped at the driver's
// maximum, and cycle(P) contains the per-rank flops plus an α–β halo
// exchange and latency-bound coarse-grid/allreduce terms that stop strong
// scaling at high rank counts.
//
// The traits table gives the modeled space the hypre character the paper
// relies on: a few excellent AMG-preconditioned configurations, a broad
// mediocre middle, and genuinely awful corners (weakly preconditioned
// Krylov on a 27-point Laplacian hits the iteration cap) that produce the
// outliers random forests must tolerate. See DESIGN.md §2.
package hypre

import (
	"fmt"
	"math"

	"repro/internal/machine"
	"repro/internal/space"
)

// Problem scale: 27-point Laplacian on a 200³ grid.
const (
	gridN      = 200
	unknowns   = gridN * gridN * gridN
	nnzPerRow  = 27
	tol        = 1e-8
	maxIter    = 500
	flopPerNnz = 2
)

// SolverIDs are the new_ij solver ids of Table III, in table order.
var SolverIDs = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 18, 20, 43, 44, 45, 50, 51, 60, 61}

// traits describe a solver id's behaviour on the 27-pt Laplacian.
type traits struct {
	// usesAMG: BoomerAMG appears as solver or preconditioner, making the
	// coarsening and smoother parameters live.
	usesAMG bool

	// setupUnits is the setup cost in units of one fine-grid matvec.
	setupUnits float64

	// iterUnits is the per-iteration cost in matvec units (Krylov vector
	// work + preconditioner application).
	iterUnits float64

	// rho is the base convergence factor per iteration.
	rho float64

	// commFactor scales the per-iteration latency-bound communication
	// (AMG V-cycles traverse coarse levels; plain Krylov does not).
	commFactor float64
}

// solverTraits maps each Table III solver id to its modeled behaviour.
// The ids follow the hypre new_ij driver: 0 = BoomerAMG standalone,
// 1 = AMG-PCG, 2 = DS-PCG, 3 = AMG-GMRES, 4 = DS-GMRES, 5 = AMG-CGNR,
// 6 = DS-CGNR, 7 = PILUT-GMRES, 8 = ParaSails-PCG, 9 = AMG-BiCGSTAB,
// 10 = DS-BiCGSTAB, 11 = PCG (no preconditioner), 12 = Schwarz-PCG,
// 13 = GMRES, 14 = BiCGSTAB, 15 = CGNR, 18 = ParaSails-GMRES,
// 20 = AMG-hybrid, 43–45 = Euclid-PCG/GMRES/BiCGSTAB, 50–51 = LGMRES /
// AMG-LGMRES, 60–61 = FlexGMRES / AMG-FlexGMRES.
var solverTraits = map[int]traits{
	0:  {usesAMG: true, setupUnits: 30, iterUnits: 3.2, rho: 0.12, commFactor: 2.2},
	1:  {usesAMG: true, setupUnits: 30, iterUnits: 3.8, rho: 0.10, commFactor: 2.2},
	2:  {setupUnits: 2, iterUnits: 1.3, rho: 0.945, commFactor: 1},
	3:  {usesAMG: true, setupUnits: 30, iterUnits: 4.1, rho: 0.11, commFactor: 2.2},
	4:  {setupUnits: 2, iterUnits: 1.6, rho: 0.950, commFactor: 1},
	5:  {usesAMG: true, setupUnits: 30, iterUnits: 4.6, rho: 0.35, commFactor: 2.2},
	6:  {setupUnits: 2, iterUnits: 2.2, rho: 0.985, commFactor: 1},
	7:  {setupUnits: 45, iterUnits: 2.6, rho: 0.55, commFactor: 1.2},
	8:  {setupUnits: 25, iterUnits: 2.2, rho: 0.60, commFactor: 1.1},
	9:  {usesAMG: true, setupUnits: 30, iterUnits: 5.2, rho: 0.09, commFactor: 2.2},
	10: {setupUnits: 2, iterUnits: 2.4, rho: 0.940, commFactor: 1},
	11: {setupUnits: 1, iterUnits: 1.2, rho: 0.965, commFactor: 1},
	12: {setupUnits: 35, iterUnits: 3.0, rho: 0.50, commFactor: 1.3},
	13: {setupUnits: 1, iterUnits: 1.5, rho: 0.970, commFactor: 1},
	14: {setupUnits: 1, iterUnits: 2.2, rho: 0.960, commFactor: 1},
	15: {setupUnits: 1, iterUnits: 2.0, rho: 0.992, commFactor: 1},
	18: {setupUnits: 25, iterUnits: 2.5, rho: 0.62, commFactor: 1.1},
	20: {usesAMG: true, setupUnits: 18, iterUnits: 3.0, rho: 0.18, commFactor: 1.8},
	43: {setupUnits: 40, iterUnits: 2.4, rho: 0.48, commFactor: 1.2},
	44: {setupUnits: 40, iterUnits: 2.7, rho: 0.50, commFactor: 1.2},
	45: {setupUnits: 40, iterUnits: 3.3, rho: 0.46, commFactor: 1.2},
	50: {setupUnits: 1, iterUnits: 1.7, rho: 0.968, commFactor: 1},
	51: {usesAMG: true, setupUnits: 30, iterUnits: 4.3, rho: 0.12, commFactor: 2.2},
	60: {setupUnits: 1, iterUnits: 1.8, rho: 0.966, commFactor: 1},
	61: {usesAMG: true, setupUnits: 30, iterUnits: 4.4, rho: 0.11, commFactor: 2.2},
}

// smootherRho is the multiplicative effect of BoomerAMG relaxation type
// 0–8 on the AMG convergence factor (and smootherCost on cycle cost).
// Types model hypre's relax menu: 0 = Jacobi (weak, cheap), 3/4 = hybrid
// Gauss-Seidel forward/backward (the solid default), 6 = symmetric GS
// (strong, costlier), 8 = l1-symmetric GS, others in between; type 5
// (chaotic GS) degrades badly at scale and supplies the space's
// bad-smoother corner.
var (
	smootherRho  = [9]float64{1.9, 1.5, 1.4, 1.0, 1.05, 9.0, 0.85, 1.25, 0.9}
	smootherCost = [9]float64{0.7, 0.8, 0.9, 1.0, 1.0, 0.9, 1.5, 1.1, 1.4}
)

// Hypre is the modeled application benchmark.
type Hypre struct {
	space    *space.Space
	platform *machine.Platform
}

// New returns the hypre benchmark on Platform B.
func New() *Hypre {
	names := make([]string, len(SolverIDs))
	for i, id := range SolverIDs {
		names[i] = fmt.Sprintf("%d", id)
	}
	sp := space.MustNew(
		space.Cat("solver", names...),
		space.Cat("coarsening", "pmis", "hmis"),
		space.NumRange("smtype", 0, 8, 1),
		space.Num("#process", 8, 16, 32, 64, 128, 256, 512),
	)
	return &Hypre{space: sp, platform: machine.PlatformB()}
}

// Name returns "hypre".
func (h *Hypre) Name() string { return "hypre" }

// Description returns a one-line description.
func (h *Hypre) Description() string {
	return "hypre new_ij driver, 27-pt 3-D Laplacian (Table III parameters)"
}

// Space returns the Table III parameter space.
func (h *Hypre) Space() *space.Space { return h.space }

// Platform returns Platform B.
func (h *Hypre) Platform() *machine.Platform { return h.platform }

// SolverID returns the numeric new_ij solver id of configuration c.
func (h *Hypre) SolverID(c space.Config) int {
	return SolverIDs[h.space.LevelByName(c, "solver")]
}

// TrueTime returns the modeled noise-free solve wall time in seconds for
// configuration c.
func (h *Hypre) TrueTime(c space.Config) float64 {
	p := h.platform
	tr, ok := solverTraits[h.SolverID(c)]
	if !ok {
		panic(fmt.Sprintf("hypre: no traits for solver %d", h.SolverID(c)))
	}
	hmis := h.space.NameOf(c, h.space.IndexOf("coarsening")) == "hmis"
	sm := h.space.LevelByName(c, "smtype")
	procs := h.space.ValueByName(c, "#process")

	// --- Convergence factor of the full combination.
	rho := tr.rho
	setup := tr.setupUnits
	iterCost := tr.iterUnits
	if tr.usesAMG {
		// Smoother quality multiplies the AMG convergence factor.
		rho = math.Min(0.999, rho*smootherRho[sm])
		iterCost *= smootherCost[sm]
		if hmis {
			// HMIS: denser coarsening — better convergence, costlier
			// setup and cycles.
			rho *= 0.85
			setup *= 1.25
			iterCost *= 1.12
		} else {
			rho *= 1.0
			iterCost *= 1.0
		}
	}
	iters := math.Ceil(math.Log(tol) / math.Log(rho))
	if iters < 1 {
		iters = 1
	}
	if iters > maxIter {
		iters = maxIter // driver hits the iteration cap: an outlier run
	}

	// --- One fine-grid matvec on P ranks.
	flops := float64(unknowns) * nnzPerRow * flopPerNnz
	perRankFlops := flops / procs
	matvecComp := p.ComputeTime(perRankFlops, 0.25) // SpMV runs far from peak

	// Halo exchange: 6 faces of the per-rank subdomain.
	perRankCells := float64(unknowns) / procs
	faceBytes := math.Pow(perRankCells, 2.0/3.0) * 8
	halo := 6 * p.Net.MessageTime(faceBytes)

	// Latency-bound terms: dot-product allreduces and (for AMG) the
	// coarse-level ladder, both growing with log P.
	latency := (4 + 10*tr.commFactor) * math.Log2(procs) * p.Net.AlphaSec * 20

	matvec := matvecComp + halo + latency

	setupTime := setup * matvec * 1.4 // setup is matrix-matrix heavy
	solveTime := iters * iterCost * matvec
	return 0.3 + setupTime + solveTime
}
