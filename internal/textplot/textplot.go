// Package textplot renders learning curves and scatter plots as ASCII
// charts and emits the underlying data as CSV, so every figure of the
// paper can be regenerated and inspected without a plotting stack.
package textplot

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named line of a chart.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// markers are assigned to series in order.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// LinePlot renders the series into a width×height ASCII grid with
// axis labels. Y may be plotted in log scale with logY (non-positive
// values are dropped). It returns the rendered plot.
func LinePlot(title string, series []Series, width, height int, logY bool) string {
	if width < 20 {
		width = 20
	}
	if height < 5 {
		height = 5
	}
	// Collect bounds.
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	ty := func(y float64) float64 {
		if logY {
			return math.Log10(y)
		}
		return y
	}
	for _, s := range series {
		for i := range s.X {
			y := s.Y[i]
			if logY && y <= 0 {
				continue
			}
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, ty(y))
			maxY = math.Max(maxY, ty(y))
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	plot := func(x, y float64, mark byte) {
		col := int((x - minX) / (maxX - minX) * float64(width-1))
		row := int((maxY - y) / (maxY - minY) * float64(height-1))
		if col < 0 || col >= width || row < 0 || row >= height {
			return
		}
		grid[row][col] = mark
	}
	for si, s := range series {
		mark := markers[si%len(markers)]
		// Draw with linear interpolation between consecutive points so
		// curves read as lines.
		type pt struct{ x, y float64 }
		var pts []pt
		for i := range s.X {
			if logY && s.Y[i] <= 0 {
				continue
			}
			pts = append(pts, pt{s.X[i], ty(s.Y[i])})
		}
		sort.Slice(pts, func(a, b int) bool { return pts[a].x < pts[b].x })
		for i := range pts {
			plot(pts[i].x, pts[i].y, mark)
			if i > 0 {
				steps := 2 * width
				for k := 1; k < steps; k++ {
					f := float64(k) / float64(steps)
					plot(pts[i-1].x+f*(pts[i].x-pts[i-1].x), pts[i-1].y+f*(pts[i].y-pts[i-1].y), mark)
				}
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	yLabel := func(v float64) string {
		if logY {
			return fmt.Sprintf("%9.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for r, row := range grid {
		yv := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%s |%s\n", yLabel(yv), string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*g%*g\n", strings.Repeat(" ", 9), width/2, minX, width-width/2, maxX)
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, "  "))
	return b.String()
}

// ScatterPlot renders point clouds (no interpolation); the first series
// is drawn with '.', later ones with the line markers, so a dense
// background pool plus highlighted selections reads like Fig. 9.
func ScatterPlot(title string, series []Series, width, height int) string {
	if len(series) == 0 {
		return title + "\n(no data)\n"
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	if math.IsInf(minX, 1) {
		return title + "\n(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		mark := byte('.')
		if si > 0 {
			mark = markers[(si-1)%len(markers)]
		}
		for i := range s.X {
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			row := int((maxY - s.Y[i]) / (maxY - minY) * float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = mark
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	for r, row := range grid {
		yv := maxY - (maxY-minY)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%9.3g |%s\n", yv, string(row))
	}
	fmt.Fprintf(&b, "%s +%s\n", strings.Repeat(" ", 9), strings.Repeat("-", width))
	fmt.Fprintf(&b, "%s  %-*g%*g\n", strings.Repeat(" ", 9), width/2, minX, width-width/2, maxX)
	var legend []string
	for si, s := range series {
		mark := byte('.')
		if si > 0 {
			mark = markers[(si-1)%len(markers)]
		}
		legend = append(legend, fmt.Sprintf("%c=%s", mark, s.Name))
	}
	fmt.Fprintf(&b, "legend: %s\n", strings.Join(legend, "  "))
	return b.String()
}

// WriteCSV emits the series as long-form CSV: series,x,y.
func WriteCSV(w io.Writer, series []Series) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "series,x,y"); err != nil {
		return err
	}
	for _, s := range series {
		for i := range s.X {
			if _, err := fmt.Fprintf(bw, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// BarChart renders named values as a horizontal ASCII bar chart.
func BarChart(title string, names []string, values []float64, width int) string {
	if len(names) != len(values) {
		panic("textplot: BarChart length mismatch")
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	maxV := 0.0
	maxName := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(names[i]) > maxName {
			maxName = len(names[i])
		}
	}
	if maxV <= 0 {
		maxV = 1
	}
	for i, v := range values {
		n := int(v / maxV * float64(width))
		if n < 0 {
			n = 0
		}
		fmt.Fprintf(&b, "%-*s |%s %.2f\n", maxName, names[i], strings.Repeat("=", n), v)
	}
	return b.String()
}
