package textplot

import (
	"bytes"
	"strings"
	"testing"
)

func twoSeries() []Series {
	return []Series{
		{Name: "a", X: []float64{0, 1, 2}, Y: []float64{1, 2, 3}},
		{Name: "b", X: []float64{0, 1, 2}, Y: []float64{3, 2, 1}},
	}
}

func TestLinePlotContainsMarkersAndLegend(t *testing.T) {
	out := LinePlot("test plot", twoSeries(), 40, 10, false)
	if !strings.Contains(out, "test plot") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("missing series markers")
	}
	if !strings.Contains(out, "*=a") || !strings.Contains(out, "o=b") {
		t.Fatal("missing legend")
	}
}

func TestLinePlotEmpty(t *testing.T) {
	out := LinePlot("empty", nil, 40, 10, false)
	if !strings.Contains(out, "no data") {
		t.Fatalf("empty plot = %q", out)
	}
}

func TestLinePlotLogScaleDropsNonPositive(t *testing.T) {
	s := []Series{{Name: "a", X: []float64{0, 1, 2}, Y: []float64{-1, 0, 100}}}
	out := LinePlot("log", s, 40, 8, true)
	if !strings.Contains(out, "*") {
		t.Fatal("positive point not plotted")
	}
}

func TestLinePlotConstantSeries(t *testing.T) {
	s := []Series{{Name: "c", X: []float64{1, 1}, Y: []float64{5, 5}}}
	out := LinePlot("const", s, 30, 6, false)
	if !strings.Contains(out, "*") {
		t.Fatal("constant series not plotted")
	}
}

func TestLinePlotMinimumDimensions(t *testing.T) {
	out := LinePlot("tiny", twoSeries(), 1, 1, false)
	if out == "" {
		t.Fatal("no output for tiny dimensions")
	}
}

func TestScatterPlot(t *testing.T) {
	series := []Series{
		{Name: "pool", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 1, 2}},
		{Name: "selected", X: []float64{1.5}, Y: []float64{1.5}},
	}
	out := ScatterPlot("fig9", series, 40, 10)
	if !strings.Contains(out, ".") || !strings.Contains(out, "*") {
		t.Fatalf("scatter missing markers:\n%s", out)
	}
	if !strings.Contains(out, ".=pool") || !strings.Contains(out, "*=selected") {
		t.Fatal("scatter legend wrong")
	}
}

func TestScatterPlotEmpty(t *testing.T) {
	if out := ScatterPlot("e", nil, 40, 10); !strings.Contains(out, "no data") {
		t.Fatal("empty scatter should say no data")
	}
	empty := []Series{{Name: "x"}}
	if out := ScatterPlot("e", empty, 40, 10); !strings.Contains(out, "no data") {
		t.Fatal("series with no points should say no data")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, twoSeries()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "series,x,y" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 7 { // header + 3 + 3
		t.Fatalf("%d lines", len(lines))
	}
	if lines[1] != "a,0,1" {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("speedups", []string{"adi", "atax"}, []float64{2, 4}, 20)
	if !strings.Contains(out, "adi") || !strings.Contains(out, "atax") {
		t.Fatal("missing names")
	}
	// atax bar should be twice as long as adi's.
	var adiLen, ataxLen int
	for _, line := range strings.Split(out, "\n") {
		n := strings.Count(line, "=")
		if strings.HasPrefix(line, "adi") {
			adiLen = n
		}
		if strings.HasPrefix(line, "atax") {
			ataxLen = n
		}
	}
	if ataxLen != 2*adiLen {
		t.Fatalf("bar lengths %d vs %d", adiLen, ataxLen)
	}
}

func TestBarChartPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	BarChart("x", []string{"a"}, []float64{1, 2}, 10)
}

func TestBarChartAllZero(t *testing.T) {
	out := BarChart("z", []string{"a"}, []float64{0}, 10)
	if !strings.Contains(out, "a") {
		t.Fatal("zero chart broken")
	}
}
