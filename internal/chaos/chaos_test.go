package chaos

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/space"
)

// countingEval returns 1, 2, 3, ... so tests can observe exactly how many
// measurements the injector consumed from the wrapped evaluator.
type countingEval struct{ calls int }

func (e *countingEval) Evaluate(ctx context.Context, c space.Config) (float64, error) {
	e.calls++
	return float64(e.calls), nil
}

func testConfig() space.Config { return space.Config{0} }

// faultTrace replays an injector against a benign evaluator and records
// which fault (if any) fired on each call. ctx is pre-cancelled so hangs
// return immediately.
func faultTrace(t *testing.T, sc Scenario, seed uint64, calls int) []string {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	inj := New(sc, seed, &countingEval{})
	var trace []string
	for i := 0; i < calls; i++ {
		trace = append(trace, oneCall(ctx, inj))
	}
	return trace
}

// oneCall classifies a single Evaluate outcome, recovering panics.
func oneCall(ctx context.Context, inj *Injector) (kind string) {
	before := inj.Stats()
	defer func() {
		if v := recover(); v != nil {
			kind = "panic"
		}
	}()
	_, err := inj.Evaluate(ctx, testConfig())
	after := inj.Stats()
	switch {
	case after.Hangs > before.Hangs:
		return "hang"
	case errors.Is(err, ErrInjected):
		return "err"
	case after.Corruptions > before.Corruptions:
		return "corrupt"
	case err != nil:
		return "other-error"
	default:
		return "ok"
	}
}

func TestInjectorDeterminism(t *testing.T) {
	sc := Scenario{ErrRate: 0.3, HangRate: 0.1, PanicRate: 0.1, CorruptRate: 0.2, CorruptFactor: 8}
	a := faultTrace(t, sc, 7, 400)
	b := faultTrace(t, sc, 7, 400)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("call %d: %s vs %s — fault sequence not reproducible", i, a[i], b[i])
		}
	}
	kinds := map[string]int{}
	for _, k := range a {
		kinds[k]++
	}
	for _, want := range []string{"err", "hang", "panic", "corrupt", "ok"} {
		if kinds[want] == 0 {
			t.Fatalf("400 calls at these rates never produced %q: %v", want, kinds)
		}
	}
	if kinds["other-error"] != 0 {
		t.Fatalf("unexpected non-injected errors: %v", kinds)
	}
	c := faultTrace(t, sc, 8, 400)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault sequences")
	}
}

// TestInjectedErrorPreservesInnerStream is the property the equivalence
// gate rests on: a transient injected failure must not consume the
// wrapped evaluator, so the retry sees the exact measurement the fault
// displaced.
func TestInjectedErrorPreservesInnerStream(t *testing.T) {
	inner := &countingEval{}
	inj := New(Scenario{ErrRate: 0.5}, 3, inner)
	ctx := context.Background()
	var got []float64
	for len(got) < 50 {
		y, err := inj.Evaluate(ctx, testConfig())
		if errors.Is(err, ErrInjected) {
			continue // retry
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, y)
	}
	for i, y := range got {
		if y != float64(i+1) {
			t.Fatalf("label %d = %v, want %v: injected error consumed an inner measurement", i, y, i+1)
		}
	}
	if inner.calls != 50 {
		t.Fatalf("inner evaluator called %d times, want 50", inner.calls)
	}
	if inj.Stats().Errors == 0 {
		t.Fatal("scenario with ErrRate=0.5 injected no errors in 50+ calls")
	}
}

func TestHangBlocksUntilCancel(t *testing.T) {
	inj := New(Scenario{HangRate: 1}, 1, &countingEval{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := inj.Evaluate(ctx, testConfig())
		done <- err
	}()
	select {
	case err := <-done:
		t.Fatalf("hang returned before cancellation: %v", err)
	case <-time.After(30 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("hang returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang did not return after cancellation")
	}
}

func TestCorruptionMultiplies(t *testing.T) {
	inner := core.EvaluatorFunc(func(ctx context.Context, c space.Config) (float64, error) {
		return 2, nil
	})
	inj := New(Scenario{CorruptRate: 1, CorruptFactor: 8}, 5, inner)
	y, err := inj.Evaluate(context.Background(), testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if y != 16 {
		t.Fatalf("corrupted label %v, want 16", y)
	}
}

func TestLatencyDelays(t *testing.T) {
	inj := New(Scenario{LatencyRate: 1, Latency: 40 * time.Millisecond}, 2, &countingEval{})
	start := time.Now()
	if _, err := inj.Evaluate(context.Background(), testConfig()); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 40*time.Millisecond {
		t.Fatalf("latency spike took %v, want >= 40ms", d)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"none",
		"err=0.1",
		"err=0.1,hang=0.01,panic=0.002",
		"corrupt=0.05x12",
		"lat=0.2:50ms",
		"err=0.3,corrupt=0.1x10,lat=0.5:1s,seed=99",
	}
	for _, spec := range cases {
		sc, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		back, err := Parse(sc.String())
		if err != nil {
			t.Fatalf("Parse(String()=%q): %v", sc.String(), err)
		}
		if back != sc {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v", spec, sc, sc.String(), back)
		}
	}
	if sc, err := Parse(""); err != nil || sc.Active() {
		t.Fatalf("empty spec: %+v, %v", sc, err)
	}
	for _, bad := range []string{"bogus=1", "err=2", "err=-0.1", "lat=0.5", "corrupt=0.1x0", "err"} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("Parse(%q) accepted invalid spec", bad)
		}
	}
}
