package chaos

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Grammar is the scenario specification accepted by Parse, for -h texts.
const Grammar = `comma-separated key=value fields (or "none"):
  err=RATE           transient-failure probability per evaluation
  hang=RATE          indefinite-hang probability (needs a -timeout to survive)
  panic=RATE         evaluator-panic probability
  corrupt=RATE[xF]   label-corruption probability, multiplying the label by F (default 10)
  lat=RATE:DUR       latency-spike probability and duration (Go duration, e.g. 50ms)
  seed=N             fault-stream seed (default 0)
e.g. "err=0.1,hang=0.01,corrupt=0.05x10,lat=0.2:20ms,seed=7"`

// Parse builds a Scenario from its textual form (see Grammar). The empty
// string and "none" parse to the inactive zero scenario.
func Parse(spec string) (Scenario, error) {
	var sc Scenario
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return sc, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return sc, fmt.Errorf("chaos: field %q is not key=value", field)
		}
		var err error
		switch key {
		case "err":
			sc.ErrRate, err = parseRate(val)
		case "hang":
			sc.HangRate, err = parseRate(val)
		case "panic":
			sc.PanicRate, err = parseRate(val)
		case "corrupt":
			rate, factor, cut := strings.Cut(val, "x")
			if sc.CorruptRate, err = parseRate(rate); err == nil && cut {
				sc.CorruptFactor, err = strconv.ParseFloat(factor, 64)
				if err == nil && sc.CorruptFactor <= 0 {
					err = fmt.Errorf("factor %v not positive", sc.CorruptFactor)
				}
			}
		case "lat":
			rate, dur, cut := strings.Cut(val, ":")
			if !cut {
				return sc, fmt.Errorf("chaos: lat needs RATE:DUR, got %q", val)
			}
			if sc.LatencyRate, err = parseRate(rate); err == nil {
				sc.Latency, err = time.ParseDuration(dur)
			}
		case "seed":
			sc.Seed, err = strconv.ParseUint(val, 10, 64)
		default:
			return sc, fmt.Errorf("chaos: unknown field %q (want err, hang, panic, corrupt, lat or seed)", key)
		}
		if err != nil {
			return sc, fmt.Errorf("chaos: field %q: %v", field, err)
		}
	}
	return sc, nil
}

// parseRate parses a probability in [0, 1].
func parseRate(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("rate %v outside [0, 1]", v)
	}
	return v, nil
}

// String renders the scenario in the grammar Parse accepts; the zero
// scenario renders as "none".
func (s Scenario) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", k, v))
		}
	}
	add("err", s.ErrRate)
	add("hang", s.HangRate)
	add("panic", s.PanicRate)
	if s.CorruptRate > 0 {
		f := s.CorruptFactor
		if f <= 0 {
			f = 10
		}
		parts = append(parts, fmt.Sprintf("corrupt=%vx%v", s.CorruptRate, f))
	}
	if s.LatencyRate > 0 && s.Latency > 0 {
		parts = append(parts, fmt.Sprintf("lat=%v:%v", s.LatencyRate, s.Latency))
	}
	if s.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", s.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}
