// Package chaos is a deterministic fault injector for evaluators: it
// wraps any core.Evaluator and makes it misbehave the way real program
// runs do — transient errors, latency spikes, indefinite hangs, panics,
// and silently corrupted timings — at rates prescribed by a Scenario.
//
// Every fault kind draws from its own generator stream seeded from the
// scenario seed, so a scenario replays bit-identically: the i-th call
// sees exactly the same faults no matter what the wrapped evaluator
// returns, how long it takes, or which faults fired before. That is what
// lets the equivalence gate (`make chaos-equivalence`) prove that a
// transient-only scenario, once fully retried, yields curves
// byte-identical to the fault-free run.
//
// An Injector is not safe for concurrent use, matching the evaluator
// contract of core.Run (one evaluator per run); give each campaign cell
// its own Injector.
package chaos

import (
	"context"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/space"
)

// ErrInjected is the error returned for an injected transient failure;
// retry layers see it as an ordinary failed measurement.
var ErrInjected = fmt.Errorf("chaos: injected transient failure")

// PanicValue is the value an injected panic unwinds with, so recovery
// layers (internal/campaign) can tell injected panics from real bugs in
// their tests.
const PanicValue = "chaos: injected evaluator panic"

// Scenario prescribes fault rates. The zero value injects nothing. All
// rates are probabilities in [0, 1] applied independently per Evaluate
// call, each from its own deterministic stream.
type Scenario struct {
	// Seed seeds the per-fault generator streams. Two injectors built
	// from the same scenario and seed inject identical fault sequences.
	Seed uint64

	// ErrRate is the probability of a transient failure: the call
	// returns ErrInjected without consuming the wrapped evaluator (so a
	// retry observes exactly the measurement the fault displaced).
	ErrRate float64

	// HangRate is the probability the call blocks until its context is
	// cancelled — an evaluator that never returns. Only a per-evaluation
	// timeout (core.FailurePolicy.Timeout) or run cancellation ends it.
	HangRate float64

	// PanicRate is the probability the call panics with PanicValue.
	PanicRate float64

	// CorruptRate is the probability a successful measurement is
	// multiplied by CorruptFactor before being returned — a garbage
	// timing that looks like a valid label.
	CorruptRate float64

	// CorruptFactor is the multiplicative corruption; <= 0 defaults
	// to 10.
	CorruptFactor float64

	// LatencyRate is the probability the call sleeps Latency before
	// proceeding (a slow but correct measurement).
	LatencyRate float64

	// Latency is the injected delay; <= 0 disables latency spikes.
	Latency time.Duration
}

// Active reports whether the scenario injects any fault at all.
func (s Scenario) Active() bool {
	return s.ErrRate > 0 || s.HangRate > 0 || s.PanicRate > 0 ||
		s.CorruptRate > 0 || (s.LatencyRate > 0 && s.Latency > 0)
}

// Stats counts the faults an Injector has fired.
type Stats struct {
	Calls       int // Evaluate calls observed
	Errors      int // transient failures injected
	Hangs       int // hangs injected
	Panics      int // panics injected
	Corruptions int // labels corrupted
	Latencies   int // latency spikes injected
}

// Injector wraps an evaluator with scenario-driven fault injection. It
// implements core.Evaluator; construct with New.
type Injector struct {
	inner core.Evaluator
	sc    Scenario

	// One stream per fault kind: a fault firing (or not) never shifts
	// another kind's stream, so fault sequences replay bit-identically
	// and scenarios compose predictably.
	errR, hangR, panicR, corruptR, latR *rng.RNG

	stats Stats
}

// New wraps inner with deterministic fault injection. seed overrides the
// scenario's own seed so one Scenario can drive many independent
// injectors (e.g. one per campaign repetition, seeded by rng.Mix of the
// scenario seed and the repetition seed).
func New(sc Scenario, seed uint64, inner core.Evaluator) *Injector {
	if sc.CorruptFactor <= 0 {
		sc.CorruptFactor = 10
	}
	return &Injector{
		inner:    inner,
		sc:       sc,
		errR:     rng.New(rng.Mix(seed, 0xe1)),
		hangR:    rng.New(rng.Mix(seed, 0xa2)),
		panicR:   rng.New(rng.Mix(seed, 0xb3)),
		corruptR: rng.New(rng.Mix(seed, 0xc4)),
		latR:     rng.New(rng.Mix(seed, 0xd5)),
	}
}

// Wrap wraps inner with sc using the scenario's own seed.
func Wrap(sc Scenario, inner core.Evaluator) *Injector { return New(sc, sc.Seed, inner) }

// Stats returns the fault counts fired so far.
func (i *Injector) Stats() Stats { return i.stats }

// Evaluate draws this call's fault decisions — always in the same order,
// one per active fault kind, so the streams stay aligned across replays
// — then either injects the chosen fault or delegates to the wrapped
// evaluator. Fault precedence when several fire at once: panic, hang,
// latency (which then proceeds), transient error, corruption.
func (i *Injector) Evaluate(ctx context.Context, c space.Config) (float64, error) {
	i.stats.Calls++
	doPanic := i.sc.PanicRate > 0 && i.panicR.Bool(i.sc.PanicRate)
	doHang := i.sc.HangRate > 0 && i.hangR.Bool(i.sc.HangRate)
	doLat := i.sc.LatencyRate > 0 && i.sc.Latency > 0 && i.latR.Bool(i.sc.LatencyRate)
	doErr := i.sc.ErrRate > 0 && i.errR.Bool(i.sc.ErrRate)
	doCorrupt := i.sc.CorruptRate > 0 && i.corruptR.Bool(i.sc.CorruptRate)

	if doPanic {
		i.stats.Panics++
		panic(PanicValue)
	}
	if doHang {
		i.stats.Hangs++
		<-ctx.Done()
		return 0, ctx.Err()
	}
	if doLat {
		i.stats.Latencies++
		t := time.NewTimer(i.sc.Latency)
		select {
		case <-ctx.Done():
			t.Stop()
			return 0, ctx.Err()
		case <-t.C:
		}
	}
	if doErr {
		// The wrapped evaluator is NOT consumed: the measurement this
		// fault displaced is still the next one its stream will produce,
		// which is what makes full retries bit-identical to no faults.
		i.stats.Errors++
		return 0, ErrInjected
	}
	y, err := i.inner.Evaluate(ctx, c)
	if err == nil && doCorrupt {
		i.stats.Corruptions++
		y *= i.sc.CorruptFactor
	}
	return y, err
}

// statefulInjector pairs an Injector with the wrapped evaluator's
// core.StatefulEvaluator capability, so a chaotic run stays
// checkpointable. The fault streams themselves are deliberately not
// part of the snapshot: a resumed run replays its scenario from the
// start, keeping the snapshot format unaware of the testing harness.
type statefulInjector struct {
	*Injector
	stateful core.StatefulEvaluator
}

func (i statefulInjector) EvaluatorState() rng.State { return i.stateful.EvaluatorState() }
func (i statefulInjector) RestoreEvaluatorState(st rng.State) error {
	return i.stateful.RestoreEvaluatorState(st)
}

// Evaluator wraps inner with fault injection while preserving its
// StatefulEvaluator capability when it has one — use this wherever the
// wrapped run may be checkpointed.
func Evaluator(sc Scenario, seed uint64, inner core.Evaluator) core.Evaluator {
	inj := New(sc, seed, inner)
	if s, ok := inner.(core.StatefulEvaluator); ok {
		return statefulInjector{inj, s}
	}
	return inj
}
