package report

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/server"
)

// Service renders a tuned daemon stats dump (the GET /stats payload,
// e.g. `curl host:8080/stats > stats.json`) as a Markdown section.
func Service(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var s server.Stats
	if err := json.Unmarshal(data, &s); err != nil {
		return fmt.Errorf("report: parsing %s: %w", path, err)
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "## Service\n\n")
	fmt.Fprintf(bw, "Sessions: %d active, %d created, %d recovered, %d completed, %d deleted.\n\n",
		s.Active, s.Created, s.Recovered, s.Completed, s.Deleted)

	fmt.Fprintf(bw, "| Counter | Value |\n|---|---|\n")
	rows := []struct {
		name  string
		value int64
	}{
		{"Asks", s.Asks},
		{"Tells", s.Tells},
		{"Labels ingested", s.Labels},
		{"Tell replays (idempotent retransmits)", s.TellReplays},
		{"Tell conflicts (stale cursors)", s.TellConflicts},
		{"Guard: labels flagged", s.GuardFlagged},
		{"Guard: labels quarantined", s.GuardQuarantined},
		{"Rejected: tenant quota", s.QuotaRejections},
		{"Rejected: capacity", s.CapacityRejections},
		{"Rejected: malformed labels", s.BadLabels},
		{"Recovery: checkpoints skipped", s.RecoverySkips},
	}
	for _, r := range rows {
		fmt.Fprintf(bw, "| %s | %d |\n", r.name, r.value)
	}
	bw.WriteString("\n")

	if s.Tells > 0 {
		fmt.Fprintf(bw, "Mean batch per tell: %.2f labels. ", float64(s.Labels)/float64(s.Tells))
	}
	if total := s.Tells + s.TellReplays; total > 0 {
		fmt.Fprintf(bw, "Retransmission rate: %.1f%%.", 100*float64(s.TellReplays)/float64(total))
	}
	bw.WriteString("\n")
	return bw.Flush()
}
