package report

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	in := "series,x,y\nPWU,10,0.5\nPWU,20,0.3\nPBUS,10,0.6\n"
	series, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 2 || series[0].Name != "PWU" || series[1].Name != "PBUS" {
		t.Fatalf("series = %+v", series)
	}
	if len(series[0].X) != 2 || series[0].Y[1] != 0.3 {
		t.Fatalf("PWU series = %+v", series[0])
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,here\n",
		"series,x,y\nonly,two\n",
		"series,x,y\nA,notnum,1\n",
		"series,x,y\nA,1,notnum\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Fatalf("case %d accepted", i)
		}
	}
}

func TestFinal(t *testing.T) {
	s := Series{X: []float64{30, 10, 20}, Y: []float64{3, 1, 2}}
	if got := s.Final(); got != 3 {
		t.Fatalf("Final = %v", got)
	}
	if !math.IsNaN((Series{}).Final()) {
		t.Fatal("empty Final should be NaN")
	}
}

func TestGenerate(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("fig2_atax.csv", "series,x,y\nPWU,10,0.5\nPWU,160,0.1\nPBUS,10,0.6\nPBUS,160,0.4\n")
	write("fig2_mm.csv", "series,x,y\nPWU,160,2.0\nPBUS,160,1.0\n")
	write("fig4_kripke_rmse.csv", "series,x,y\nPWU,300,1.5\nRandom,300,2.5\n")
	write("fig7_speedup.csv", "benchmark,speedup,target\natax,4.0,0.2\nmm,unreached,\n")
	write("fig8_tuning.csv", "series,x,y\nground truth,80,0.027\nsurrogate model,80,0.027\n")
	write("campaign.csv", "workers,tasks,steals,busy_ms,wall_ms,utilization,dataset_builds,dataset_hits,labels_saved\n"+
		"8,288,17,52000.000,7100.000,0.9155,24,120,18000\n")

	var buf bytes.Buffer
	if err := Generate(dir, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Kernels", "| atax | 0.1 | 0.4 | yes |", "PWU has the lowest final RMSE on 1 of 2 kernels",
		"kripke", "PWU 1.5",
		"| atax | 4.0 | 0.2 |",
		"Geometric-mean speedup 4.00x",
		"ground truth: best true time found 0.027",
		"Campaign engine",
		"workers: 8, tasks: 288, steals: 17",
		"worker utilization: 92%",
		"24 built, 120 served from cache (18000 pool/test labels not re-measured)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateEmptyDir(t *testing.T) {
	var buf bytes.Buffer
	if err := Generate(t.TempDir(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Measured results") {
		t.Fatal("empty report missing header")
	}
}

// TestTelemetrySectionBothGenerations: the report must parse both the
// original ten-column telemetry artifact and the hardened-evaluation
// extension, rendering the guard table only when something fired.
func TestTelemetrySectionBothGenerations(t *testing.T) {
	run := func(csv string) string {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "telemetry.csv"), []byte(csv), 0o644); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Generate(dir, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	v1 := run("benchmark,strategy,reps,events,fit_ms,select_ms,eval_ms,retries,skips,cached_iterations\n" +
		"atax,PWU,3,45,1200.000,80.000,3400.000,2,0,44\n")
	if !strings.Contains(v1, "Run-engine telemetry") || !strings.Contains(v1, "| PWU | 45 |") {
		t.Fatalf("v1 telemetry not rendered:\n%s", v1)
	}
	if strings.Contains(v1, "Hardened evaluation") {
		t.Fatalf("v1 artifact rendered a guard table:\n%s", v1)
	}

	v2 := run("benchmark,strategy,reps,events,fit_ms,select_ms,eval_ms,retries,skips,cached_iterations," +
		"timeouts,guard_flagged,guard_remeasured,guard_quarantined,guard_cost\n" +
		"atax,PWU,3,45,1200.000,80.000,3400.000,7,0,44,3,5,4,1,12.5000\n")
	for _, want := range []string{"Run-engine telemetry", "Hardened evaluation", "| PWU | 3 | 5 | 4 | 1 | 12.500 |"} {
		if !strings.Contains(v2, want) {
			t.Fatalf("v2 report missing %q:\n%s", want, v2)
		}
	}

	quiet := run("benchmark,strategy,reps,events,fit_ms,select_ms,eval_ms,retries,skips,cached_iterations," +
		"timeouts,guard_flagged,guard_remeasured,guard_quarantined,guard_cost\n" +
		"atax,PWU,3,45,1200.000,80.000,3400.000,0,0,44,0,0,0,0,0.0000\n")
	if strings.Contains(quiet, "Hardened evaluation") {
		t.Fatalf("quiet v2 artifact rendered an empty guard table:\n%s", quiet)
	}
}

// TestCampaignSectionBothGenerations: the campaign table renders from
// both csv generations, the steal rate shows up when present, and a
// degenerate or corrupt artifact's NaN/Inf utilization renders as 0%.
func TestCampaignSectionBothGenerations(t *testing.T) {
	run := func(csv string) string {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "campaign.csv"), []byte(csv), 0o644); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Generate(dir, &buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	v1 := run("workers,tasks,steals,busy_ms,wall_ms,utilization,dataset_builds,dataset_hits,labels_saved\n" +
		"8,288,17,52000.000,7100.000,0.9155,24,120,18000\n")
	if !strings.Contains(v1, "steals: 17\n") || !strings.Contains(v1, "worker utilization: 92%") {
		t.Fatalf("v1 campaign not rendered:\n%s", v1)
	}

	v2 := run("workers,tasks,steals,busy_ms,wall_ms,utilization,dataset_builds,dataset_hits,labels_saved,steal_rate\n" +
		"8,288,17,52000.000,7100.000,0.9155,24,120,18000,0.0590\n")
	if !strings.Contains(v2, "steals: 17 (0.06 per task)") {
		t.Fatalf("v2 steal rate not rendered:\n%s", v2)
	}

	for _, bad := range []string{"NaN", "+Inf"} {
		out := run("workers,tasks,steals,busy_ms,wall_ms,utilization,dataset_builds,dataset_hits,labels_saved,steal_rate\n" +
			"0,0,0,0.000,0.000," + bad + ",0,0,0," + bad + "\n")
		if !strings.Contains(out, "worker utilization: 0%") {
			t.Fatalf("%s utilization leaked into the report:\n%s", bad, out)
		}
		if strings.Contains(out, "per task") {
			t.Fatalf("%s steal rate leaked into the report:\n%s", bad, out)
		}
	}
}
