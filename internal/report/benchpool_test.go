package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchPoolRendersLatestPerKernel(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_pool.json")
	// Two exact entries (the stale one must lose) plus one quant entry.
	data := `[
	  {"bench":"PoolStreamPWU","kernel":"exact","ns_per_candidate":9000,"b_per_op":1,"pool_size":1000,"shard":1024,"workers":1,"git_sha":"old","timestamp":"t0"},
	  {"bench":"PoolStreamPWU","kernel":"exact","ns_per_candidate":4000,"b_per_op":2,"pool_size":200000,"shard":1024,"workers":1,"git_sha":"abc1234","timestamp":"t1"},
	  {"bench":"PoolStreamPWU","kernel":"quant","ns_per_candidate":1000,"b_per_op":3,"pool_size":200000,"shard":1024,"workers":2,"git_sha":"abc1234","timestamp":"t1"}
	]`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := BenchPool(path, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"| exact | 4000 |",      // newest exact entry, not the stale 9000
		"| quant | 1000 | 2000", // per-core ns = ns x workers
		"abc1234",
		"speedup: 2.00x per core", // 4000x1 vs 1000x2
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "| exact | 9000 |") {
		t.Fatalf("stale exact entry rendered:\n%s", out)
	}
}

func TestBenchPoolErrors(t *testing.T) {
	if err := BenchPool(filepath.Join(t.TempDir(), "missing.json"), &bytes.Buffer{}); err == nil {
		t.Fatal("missing file: want error")
	}
	dir := t.TempDir()
	for name, data := range map[string]string{
		"garbage.json": "{not json",
		"empty.json":   "[]",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := BenchPool(path, &bytes.Buffer{}); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}
