// Package report turns the CSV artifacts written by cmd/figures into a
// compact Markdown results summary — the generated half of
// EXPERIMENTS.md. It reads only the long-form "series,x,y" CSVs, so it
// works on any output directory regardless of the scale that produced
// it.
package report

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Series is one named (x, y) sequence parsed from a figure CSV.
type Series struct {
	Name string
	X, Y []float64
}

// ReadCSV parses a long-form "series,x,y" CSV into named series, in
// first-appearance order.
func ReadCSV(r io.Reader) ([]Series, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("report: empty CSV")
	}
	if got := sc.Text(); got != "series,x,y" {
		return nil, fmt.Errorf("report: unexpected header %q", got)
	}
	index := map[string]int{}
	var out []Series
	line := 1
	for sc.Scan() {
		line++
		parts := strings.Split(sc.Text(), ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("report: line %d has %d fields", line, len(parts))
		}
		x, err := strconv.ParseFloat(parts[1], 64)
		if err != nil {
			return nil, fmt.Errorf("report: line %d x: %v", line, err)
		}
		y, err := strconv.ParseFloat(parts[2], 64)
		if err != nil {
			return nil, fmt.Errorf("report: line %d y: %v", line, err)
		}
		i, ok := index[parts[0]]
		if !ok {
			i = len(out)
			index[parts[0]] = i
			out = append(out, Series{Name: parts[0]})
		}
		out[i].X = append(out[i].X, x)
		out[i].Y = append(out[i].Y, y)
	}
	return out, sc.Err()
}

// Final returns the y value at the largest x of the series.
func (s Series) Final() float64 {
	best := math.Inf(-1)
	val := math.NaN()
	for i := range s.X {
		if s.X[i] >= best {
			best = s.X[i]
			val = s.Y[i]
		}
	}
	return val
}

// Generate walks dir for the cmd/figures artifacts and writes a Markdown
// summary: per-kernel final RMSE per strategy (fig2), application RMSE
// (fig4), the Fig. 7 speedup table, and the Fig. 8 tuning endpoint.
func Generate(dir string, w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "## Measured results (artifacts in %s)\n\n", dir)

	// --- Fig. 2: kernel learning-curve endpoints.
	fig2, err := filepath.Glob(filepath.Join(dir, "fig2_*.csv"))
	if err != nil {
		return err
	}
	sort.Strings(fig2)
	if len(fig2) > 0 {
		fmt.Fprintln(bw, "### Kernels — final RMSE@α by strategy (Fig. 2)")
		fmt.Fprintln(bw)
		var strategies []string
		rows := map[string]map[string]float64{}
		var kernels []string
		for _, path := range fig2 {
			kernel := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "fig2_"), ".csv")
			series, err := readFile(path)
			if err != nil {
				return err
			}
			rows[kernel] = map[string]float64{}
			for _, s := range series {
				rows[kernel][s.Name] = s.Final()
				if !contains(strategies, s.Name) {
					strategies = append(strategies, s.Name)
				}
			}
			kernels = append(kernels, kernel)
		}
		fmt.Fprintf(bw, "| kernel | %s | PWU wins |\n", strings.Join(strategies, " | "))
		fmt.Fprintf(bw, "|---|%s---|\n", strings.Repeat("---|", len(strategies)))
		pwuWins := 0
		for _, kernel := range kernels {
			var cells []string
			best := math.Inf(1)
			bestName := ""
			for _, st := range strategies {
				v := rows[kernel][st]
				cells = append(cells, fmt.Sprintf("%.4g", v))
				if v < best {
					best = v
					bestName = st
				}
			}
			win := ""
			if bestName == "PWU" {
				win = "yes"
				pwuWins++
			}
			fmt.Fprintf(bw, "| %s | %s | %s |\n", kernel, strings.Join(cells, " | "), win)
		}
		fmt.Fprintf(bw, "\nPWU has the lowest final RMSE on %d of %d kernels.\n\n", pwuWins, len(kernels))
	}

	// --- Fig. 4: application endpoints.
	fig4, _ := filepath.Glob(filepath.Join(dir, "fig4_*_rmse.csv"))
	sort.Strings(fig4)
	if len(fig4) > 0 {
		fmt.Fprintln(bw, "### Applications — final RMSE@α by strategy (Fig. 4)")
		fmt.Fprintln(bw)
		for _, path := range fig4 {
			app := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "fig4_"), "_rmse.csv")
			series, err := readFile(path)
			if err != nil {
				return err
			}
			var cells []string
			for _, s := range series {
				cells = append(cells, fmt.Sprintf("%s %.4g", s.Name, s.Final()))
			}
			fmt.Fprintf(bw, "- **%s**: %s\n", app, strings.Join(cells, ", "))
		}
		fmt.Fprintln(bw)
	}

	// --- Fig. 7: speedups.
	if f, err := os.Open(filepath.Join(dir, "fig7_speedup.csv")); err == nil {
		defer f.Close()
		fmt.Fprintln(bw, "### Cost speedup of PWU over PBUS (Fig. 7)")
		fmt.Fprintln(bw)
		fmt.Fprintln(bw, "| benchmark | speedup | shared RMSE target |")
		fmt.Fprintln(bw, "|---|---|---|")
		sc := bufio.NewScanner(f)
		sc.Scan() // header
		var speedups []float64
		for sc.Scan() {
			parts := strings.Split(sc.Text(), ",")
			if len(parts) != 3 {
				continue
			}
			fmt.Fprintf(bw, "| %s | %s | %s |\n", parts[0], parts[1], parts[2])
			if v, err := strconv.ParseFloat(parts[1], 64); err == nil {
				speedups = append(speedups, v)
			}
		}
		if len(speedups) > 0 {
			fmt.Fprintf(bw, "\nGeometric-mean speedup %.2fx, max %.1fx over %d benchmarks with a reachable shared target.\n\n",
				geomean(speedups), maxOf(speedups), len(speedups))
		}
	}

	// --- Fig. 8: tuning endpoints.
	if series, err := readFile(filepath.Join(dir, "fig8_tuning.csv")); err == nil {
		fmt.Fprintln(bw, "### Surrogate vs direct tuning (Fig. 8)")
		fmt.Fprintln(bw)
		for _, s := range series {
			fmt.Fprintf(bw, "- %s: best true time found %.5g s\n", s.Name, s.Final())
		}
		fmt.Fprintln(bw)
	}

	// --- Run-engine telemetry.
	if err := telemetrySection(filepath.Join(dir, "telemetry.csv"), bw); err != nil {
		return err
	}

	// --- Campaign-engine telemetry.
	if err := campaignSection(filepath.Join(dir, "campaign.csv"), bw); err != nil {
		return err
	}

	return bw.Flush()
}

// campaignSection summarizes the campaign engine's drain statistics
// (written by cmd/figures): pool size, utilization, steals, and how much
// labeling the single-flight dataset cache avoided. A missing file is
// fine — older artifact directories predate the campaign engine.
func campaignSection(path string, bw *bufio.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()

	// Two header generations: the original nine columns, and the
	// extension with the derived steal rate. Older artifact directories
	// stay readable.
	const campHeaderV1 = "workers,tasks,steals,busy_ms,wall_ms,utilization,dataset_builds,dataset_hits,labels_saved"
	const campHeaderV2 = campHeaderV1 + ",steal_rate"
	sc := bufio.NewScanner(f)
	if !sc.Scan() || (sc.Text() != campHeaderV1 && sc.Text() != campHeaderV2) {
		return fmt.Errorf("report: unexpected campaign header in %s", path)
	}
	if !sc.Scan() {
		return sc.Err()
	}
	parts := strings.Split(sc.Text(), ",")
	if len(parts) < 9 {
		return nil
	}
	// A degenerate campaign (zero tasks, zero wall clock) must render as
	// 0%, never NaN/Inf, even in artifacts written before the guarded
	// derivations.
	util, _ := strconv.ParseFloat(parts[5], 64)
	if math.IsNaN(util) || math.IsInf(util, 0) {
		util = 0
	}
	steals := parts[2]
	if len(parts) >= 10 {
		if rate, err := strconv.ParseFloat(parts[9], 64); err == nil && !math.IsNaN(rate) && !math.IsInf(rate, 0) {
			steals = fmt.Sprintf("%s (%.2f per task)", steals, rate)
		}
	}
	fmt.Fprintln(bw, "### Campaign engine")
	fmt.Fprintln(bw)
	fmt.Fprintf(bw, "- workers: %s, tasks: %s, steals: %s\n", parts[0], parts[1], steals)
	fmt.Fprintf(bw, "- worker utilization: %.0f%% (busy %s ms of wall %s ms per worker)\n", 100*util, parts[3], parts[4])
	fmt.Fprintf(bw, "- dataset cache: %s built, %s served from cache (%s pool/test labels not re-measured)\n",
		parts[6], parts[7], parts[8])
	fmt.Fprintln(bw)
	return nil
}

// telemetrySection summarizes the run engine's telemetry artifact
// (written by cmd/figures): where the wall-clock went per strategy, and
// whether any evaluations had to be retried or skipped. A missing file
// is fine — older artifact directories simply predate the telemetry
// stream.
func telemetrySection(path string, bw *bufio.Writer) error {
	f, err := os.Open(path)
	if err != nil {
		return nil
	}
	defer f.Close()

	// Two header generations: the original ten columns, and the chaos
	// harness's extension with timeout and label-guard counters. Older
	// artifact directories stay readable.
	const headerV1 = "benchmark,strategy,reps,events,fit_ms,select_ms,eval_ms,retries,skips,cached_iterations"
	const headerV2 = headerV1 + ",timeouts,guard_flagged,guard_remeasured,guard_quarantined,guard_cost"

	sc := bufio.NewScanner(f)
	if !sc.Scan() {
		return fmt.Errorf("report: empty telemetry file %s", path)
	}
	header := sc.Text()
	if header != headerV1 && header != headerV2 {
		return fmt.Errorf("report: unexpected telemetry header in %s", path)
	}
	cols := 10
	guarded := header == headerV2
	if guarded {
		cols = 15
	}
	type agg struct {
		fit, sel, eval      float64
		retries, skips      int
		cachedIters, events int
		timeouts            int
		flagged, remeasured int
		quarantined         int
		guardCost           float64
	}
	byStrategy := map[string]*agg{}
	var order []string
	for sc.Scan() {
		parts := strings.Split(sc.Text(), ",")
		if len(parts) != cols {
			continue
		}
		a, ok := byStrategy[parts[1]]
		if !ok {
			a = &agg{}
			byStrategy[parts[1]] = a
			order = append(order, parts[1])
		}
		ev, _ := strconv.Atoi(parts[3])
		fit, _ := strconv.ParseFloat(parts[4], 64)
		sel, _ := strconv.ParseFloat(parts[5], 64)
		evalMs, _ := strconv.ParseFloat(parts[6], 64)
		retries, _ := strconv.Atoi(parts[7])
		skips, _ := strconv.Atoi(parts[8])
		cached, _ := strconv.Atoi(parts[9])
		a.events += ev
		a.fit += fit
		a.sel += sel
		a.eval += evalMs
		a.retries += retries
		a.skips += skips
		a.cachedIters += cached
		if guarded {
			timeouts, _ := strconv.Atoi(parts[10])
			flagged, _ := strconv.Atoi(parts[11])
			remeasured, _ := strconv.Atoi(parts[12])
			quarantined, _ := strconv.Atoi(parts[13])
			gcost, _ := strconv.ParseFloat(parts[14], 64)
			a.timeouts += timeouts
			a.flagged += flagged
			a.remeasured += remeasured
			a.quarantined += quarantined
			a.guardCost += gcost
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(order) == 0 {
		return nil
	}

	fmt.Fprintln(bw, "### Run-engine telemetry")
	fmt.Fprintln(bw)
	fmt.Fprintln(bw, "| strategy | iterations | fit s | select s | eval s | retries | skips | pool-cached |")
	fmt.Fprintln(bw, "|---|---|---|---|---|---|---|---|")
	for _, name := range order {
		a := byStrategy[name]
		fmt.Fprintf(bw, "| %s | %d | %.2f | %.2f | %.2f | %d | %d | %d |\n",
			name, a.events, a.fit/1000, a.sel/1000, a.eval/1000, a.retries, a.skips, a.cachedIters)
	}
	fmt.Fprintln(bw)

	// Hardened-evaluation activity, shown only when the artifact carries
	// it and something actually fired.
	if guarded {
		any := false
		for _, name := range order {
			a := byStrategy[name]
			if a.timeouts+a.flagged+a.remeasured+a.quarantined > 0 || a.guardCost > 0 {
				any = true
				break
			}
		}
		if any {
			fmt.Fprintln(bw, "### Hardened evaluation")
			fmt.Fprintln(bw)
			fmt.Fprintln(bw, "| strategy | timeouts | flagged | re-measured | quarantined | guard cost |")
			fmt.Fprintln(bw, "|---|---|---|---|---|---|")
			for _, name := range order {
				a := byStrategy[name]
				fmt.Fprintf(bw, "| %s | %d | %d | %d | %d | %.3f |\n",
					name, a.timeouts, a.flagged, a.remeasured, a.quarantined, a.guardCost)
			}
			fmt.Fprintln(bw)
		}
	}
	return nil
}

func readFile(path string) ([]Series, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadCSV(f)
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func geomean(xs []float64) float64 {
	acc := 0.0
	n := 0
	for _, x := range xs {
		if x > 0 {
			acc += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return math.Exp(acc / float64(n))
}

func maxOf(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
