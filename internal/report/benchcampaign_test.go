package report

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchCampaignRendersTrajectory(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_campaign.json")
	// Two local entries (both rendered in the trajectory; the newest
	// feeds the overhead line) plus one fleet entry.
	data := `[
	  {"bench":"CampaignFig2","mode":"local","ms_per_cell":30,"wall_ms":720,"cells":24,"workers":1,"utilization":0.99,"requeues":0,"git_sha":"old","timestamp":"t0"},
	  {"bench":"CampaignFig2","mode":"local","ms_per_cell":10,"wall_ms":480,"cells":48,"workers":1,"utilization":0.99,"requeues":0,"git_sha":"abc1234","timestamp":"t1"},
	  {"bench":"CampaignFig2","mode":"fleet","ms_per_cell":7.5,"wall_ms":720,"cells":48,"workers":2,"utilization":0.61,"requeues":3,"git_sha":"abc1234","timestamp":"t1"}
	]`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := BenchCampaign(path, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"| local | 30.0 |",         // the full trajectory is rendered,
		"| local | 10.0 | 10.0 |",  // newest local: per-core ms = ms x workers
		"| fleet | 7.5 | 15.0 |",   // fleet per-core: 7.5 x 2 workers
		"| 3 | abc1234 |",          // requeue count and commit survive
		"overhead: 1.50x per core", // 15.0 vs newest local 10.0, not the stale 30.0
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestBenchCampaignErrors(t *testing.T) {
	if err := BenchCampaign(filepath.Join(t.TempDir(), "missing.json"), &bytes.Buffer{}); err == nil {
		t.Fatal("missing file: want error")
	}
	dir := t.TempDir()
	for name, data := range map[string]string{
		"garbage.json": "{not json",
		"empty.json":   "[]",
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := BenchCampaign(path, &bytes.Buffer{}); err == nil {
			t.Fatalf("%s: want error", name)
		}
	}
}
