package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestServiceSection(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stats.json")
	dump := `{"active":3,"created":10,"recovered":2,"completed":7,"deleted":1,
		"asks":120,"tells":90,"labels":300,"tell_replays":10,"tell_conflicts":2,
		"guard_flagged":4,"guard_quarantined":3,"quota_rejections":1,
		"capacity_rejections":0,"bad_labels":5,"recovery_skips":1}`
	if err := os.WriteFile(path, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Service(path, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"## Service",
		"3 active, 10 created, 2 recovered, 7 completed, 1 deleted",
		"| Labels ingested | 300 |",
		"| Guard: labels quarantined | 3 |",
		"Mean batch per tell: 3.33 labels.",
		"Retransmission rate: 10.0%.",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("section missing %q:\n%s", want, out)
		}
	}
}

func TestServiceErrors(t *testing.T) {
	if err := Service(filepath.Join(t.TempDir(), "nope.json"), &strings.Builder{}); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if err := Service(bad, &strings.Builder{}); err == nil {
		t.Fatal("malformed dump accepted")
	}
}
