package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// BenchPoolEntry mirrors the schema of BENCH_pool.json, the
// machine-readable trajectory `make bench-pool` appends to (see
// pool_bench_test.go for the writer).
type BenchPoolEntry struct {
	Bench          string  `json:"bench"`
	Kernel         string  `json:"kernel"`
	NsPerCandidate float64 `json:"ns_per_candidate"`
	BPerOp         int64   `json:"b_per_op"`
	PoolSize       int     `json:"pool_size"`
	Shard          int     `json:"shard"`
	Workers        int     `json:"workers"`
	GitSHA         string  `json:"git_sha"`
	Timestamp      string  `json:"timestamp"`
}

// BenchPool renders the newest recorded bench-pool measurement per
// kernel as a Markdown section: the per-candidate and per-core cost,
// the projected wall-clock for a 10^7-candidate pool, and — when both
// kernels have entries — the quantized kernel's speedup over exact.
func BenchPool(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []BenchPoolEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("%s: no recorded entries", path)
	}
	latest := map[string]BenchPoolEntry{}
	var order []string
	for _, e := range entries { // newest entry per kernel wins
		if _, seen := latest[e.Kernel]; !seen {
			order = append(order, e.Kernel)
		}
		latest[e.Kernel] = e
	}

	fmt.Fprintf(w, "## Streaming pool scoring (`make bench-pool`)\n\n")
	fmt.Fprintf(w, "| kernel | ns/candidate | per-core ns | 10^7 pool | B/op | pool | workers | commit |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|\n")
	for _, k := range order {
		e := latest[k]
		perCore := e.NsPerCandidate * float64(e.Workers)
		fmt.Fprintf(w, "| %s | %.0f | %.0f | %.1f s | %d | %d | %d | %s |\n",
			e.Kernel, e.NsPerCandidate, perCore,
			e.NsPerCandidate*1e7/1e9, e.BPerOp, e.PoolSize, e.Workers, e.GitSHA)
	}
	if ex, ok := latest["exact"]; ok {
		if q, ok := latest["quant"]; ok && q.NsPerCandidate > 0 {
			exCore := ex.NsPerCandidate * float64(ex.Workers)
			qCore := q.NsPerCandidate * float64(q.Workers)
			fmt.Fprintf(w, "\nQuantized kernel speedup: %.2fx per core (exact %.0f ns, quant %.0f ns).\n",
				exCore/qCore, exCore, qCore)
		}
	}
	return nil
}
