package report

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// BenchCampaignEntry mirrors the schema of BENCH_campaign.json, the
// machine-readable trajectory `make bench-campaign` appends to (see
// campaign_bench_test.go for the writer).
type BenchCampaignEntry struct {
	Bench       string  `json:"bench"`
	Mode        string  `json:"mode"` // "local" | "fleet"
	MsPerCell   float64 `json:"ms_per_cell"`
	WallMs      float64 `json:"wall_ms"`
	Cells       int     `json:"cells"`
	Workers     int     `json:"workers"`
	Utilization float64 `json:"utilization"`
	Requeues    int     `json:"requeues"`
	GitSHA      string  `json:"git_sha"`
	Timestamp   string  `json:"timestamp"`
}

// BenchCampaign renders a bench-campaign trajectory as a Markdown
// section: every recorded entry in order (newest last), then — when
// both modes have entries — the fleet transport's per-core overhead
// over the local work-stealing drain, from the newest entry of each.
func BenchCampaign(path string, w io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var entries []BenchCampaignEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(entries) == 0 {
		return fmt.Errorf("%s: no recorded entries", path)
	}

	fmt.Fprintf(w, "## Campaign drain (`make bench-campaign`)\n\n")
	fmt.Fprintf(w, "| mode | ms/cell | per-core ms | cells | workers | util | requeues | commit | recorded |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|\n")
	latest := map[string]BenchCampaignEntry{}
	for _, e := range entries {
		fmt.Fprintf(w, "| %s | %.1f | %.1f | %d | %d | %.2f | %d | %s | %s |\n",
			e.Mode, e.MsPerCell, e.MsPerCell*float64(e.Workers),
			e.Cells, e.Workers, e.Utilization, e.Requeues, e.GitSHA, e.Timestamp)
		latest[e.Mode] = e
	}
	if lo, ok := latest["local"]; ok {
		if fl, ok := latest["fleet"]; ok && lo.MsPerCell > 0 {
			loCore := lo.MsPerCell * float64(lo.Workers)
			flCore := fl.MsPerCell * float64(fl.Workers)
			fmt.Fprintf(w, "\nFleet transport overhead: %.2fx per core (local %.1f ms/cell, fleet %.1f ms/cell); curves are bit-identical either way.\n",
				flCore/loCore, loCore, flCore)
		}
	}
	return nil
}
