// Package server is the tuning-as-a-service layer: a session manager
// multiplexing many concurrent core.Sessions behind an HTTP/JSON API.
// The caller owns evaluation (the ask-tell inversion of core.Run); the
// server owns the surrogate, acquisition and checkpoint state of every
// session, with admission control, per-tenant quotas, idempotent label
// ingestion, label-guard policing of hostile clients, and crash
// recovery from internal/runstate checkpoints.
package server

import (
	"encoding/json"
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/space"
)

// ParamSpec is the wire description of one space parameter. Exactly one
// form applies: Levels (categorical), Values (explicit numeric levels),
// Bool, or Min/Max/Step (integer range).
type ParamSpec struct {
	Name   string    `json:"name"`
	Min    int       `json:"min,omitempty"`
	Max    int       `json:"max,omitempty"`
	Step   int       `json:"step,omitempty"`
	Levels []string  `json:"levels,omitempty"`
	Values []float64 `json:"values,omitempty"`
	Bool   bool      `json:"bool,omitempty"`
}

// BuildSpace assembles a space.Space from wire parameter specs.
func BuildSpace(specs []ParamSpec) (*space.Space, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("server: empty space")
	}
	params := make([]space.Parameter, len(specs))
	for i, ps := range specs {
		switch {
		case len(ps.Levels) > 0:
			params[i] = space.Cat(ps.Name, ps.Levels...)
		case len(ps.Values) > 0:
			params[i] = space.Num(ps.Name, ps.Values...)
		case ps.Bool:
			params[i] = space.Bool(ps.Name)
		default:
			step := ps.Step
			if step <= 0 {
				step = 1
			}
			if ps.Max < ps.Min {
				return nil, fmt.Errorf("server: parameter %q range [%d,%d] is empty", ps.Name, ps.Min, ps.Max)
			}
			params[i] = space.NumRange(ps.Name, ps.Min, ps.Max, step)
		}
	}
	return space.New(params...)
}

// SpecFromSpace renders a space back into wire parameter specs —
// categorical and boolean parameters by kind, numeric ones as explicit
// values (lossless for any level spacing).
func SpecFromSpace(sp *space.Space) []ParamSpec {
	specs := make([]ParamSpec, sp.NumParams())
	for i := range specs {
		p := sp.Param(i)
		switch p.Kind {
		case space.Categorical:
			specs[i] = ParamSpec{Name: p.Name, Levels: append([]string(nil), p.Names...)}
		case space.Boolean:
			specs[i] = ParamSpec{Name: p.Name, Bool: true}
		default:
			specs[i] = ParamSpec{Name: p.Name, Values: append([]float64(nil), p.Levels...)}
		}
	}
	return specs
}

// Manifest is the durable identity of a service-managed session: every
// deterministic input needed to rebuild the session's pool source,
// strategy and params after a daemon restart. It is stored verbatim in
// the session's snapshots (core.Snapshot.Service, wire version 2), so a
// checkpoint file alone is sufficient for recovery.
type Manifest struct {
	ID     string      `json:"id"`
	Tenant string      `json:"tenant,omitempty"`
	Space  []ParamSpec `json:"space"`

	// PoolSeed / PoolSize parameterize the uniform candidate source.
	// Serving from a lazy source instead of a materialized pool is the
	// per-session memory bound: state scales with labels taken, never
	// with pool size.
	PoolSeed uint64 `json:"pool_seed"`
	PoolSize int    `json:"pool_size"`

	// Seed feeds the session's loop generator; the whole trajectory is
	// deterministic given it.
	Seed uint64 `json:"seed"`

	Strategy string  `json:"strategy"`
	Alpha    float64 `json:"alpha,omitempty"`

	NInit  int `json:"n_init"`
	NBatch int `json:"n_batch"`
	NMax   int `json:"n_max"`

	// Trees overrides the manager's forest size for this session.
	Trees int `json:"trees,omitempty"`

	// GuardZ/GuardRel/GuardRemeasure configure the label guard policing
	// this session's client (zero Z disables).
	GuardZ         float64 `json:"guard_z,omitempty"`
	GuardRel       float64 `json:"guard_rel,omitempty"`
	GuardRemeasure bool    `json:"guard_remeasure,omitempty"`
}

// encode marshals the manifest for storage in snapshots.
func (m *Manifest) encode() (json.RawMessage, error) {
	data, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("server: encoding manifest: %w", err)
	}
	return data, nil
}

// decodeManifest parses a snapshot's service blob.
func decodeManifest(raw json.RawMessage) (*Manifest, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("server: snapshot carries no service manifest")
	}
	var m Manifest
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("server: decoding manifest: %w", err)
	}
	if m.ID == "" {
		return nil, fmt.Errorf("server: manifest has no session id")
	}
	return &m, nil
}

// seedFor derives a deterministic default seed from a session id, so
// clients that do not pin seeds still get reproducible (and distinct)
// sessions.
func seedFor(id string, salt uint64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(id))
	return h.Sum64() ^ salt
}

// guard renders the manifest's guard settings as a core.LabelGuard. The
// server defaults to quarantine: it cannot re-measure on its own, and
// asking a hostile client to re-measure its own lie is only useful when
// the client is merely buggy — GuardRemeasure opts into that mode,
// where re-measurement slots ride the ask-tell queue like any batch.
func (m *Manifest) guard() core.LabelGuard {
	g := core.LabelGuard{Z: m.GuardZ, Rel: m.GuardRel, Action: core.GuardQuarantine}
	if m.GuardRemeasure {
		g.Action = core.GuardRemeasure
	}
	return g
}
