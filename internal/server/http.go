package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// CreateRequest opens a session. Space is required; everything else has
// deterministic defaults derived from the assigned session id.
type CreateRequest struct {
	Tenant string      `json:"tenant,omitempty"`
	Space  []ParamSpec `json:"space"`

	PoolSize int    `json:"pool_size,omitempty"`
	PoolSeed uint64 `json:"pool_seed,omitempty"`
	Seed     uint64 `json:"seed,omitempty"`

	Strategy string  `json:"strategy,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`

	NInit  int `json:"n_init,omitempty"`
	NBatch int `json:"n_batch,omitempty"`
	NMax   int `json:"n_max,omitempty"`
	Trees  int `json:"trees,omitempty"`

	GuardZ         float64 `json:"guard_z,omitempty"`
	GuardRel       float64 `json:"guard_rel,omitempty"`
	GuardRemeasure bool    `json:"guard_remeasure,omitempty"`
}

// CreateResponse echoes the effective session parameters.
type CreateResponse struct {
	ID       string `json:"id"`
	Strategy string `json:"strategy"`
	PoolSize int    `json:"pool_size"`
	NInit    int    `json:"n_init"`
	NBatch   int    `json:"n_batch"`
	NMax     int    `json:"n_max"`
}

// AskResponse carries the pending batch. Batch/Step is the tell cursor
// the next tell must target. Asks are idempotent: re-asking mid-batch
// returns the still-unlabeled remainder of the same batch.
type AskResponse struct {
	Batch   int     `json:"batch"`
	Step    int     `json:"step"`
	Configs [][]int `json:"configs,omitempty"`
	Samples int     `json:"samples"`
	Done    bool    `json:"done,omitempty"`
}

// TellRequest delivers labels for the queue front at an exact cursor
// position. Labels are core.Label on the wire.
type TellRequest struct {
	Batch  int          `json:"batch"`
	Step   int          `json:"step"`
	Labels []core.Label `json:"labels"`
}

// TellResponse reports how the session absorbed the labels.
type TellResponse struct {
	Batch       int  `json:"batch"`
	Step        int  `json:"step"`
	Consumed    int  `json:"consumed"`
	Pending     int  `json:"pending"`
	Flagged     int  `json:"flagged,omitempty"`
	Quarantined int  `json:"quarantined,omitempty"`
	Remeasure   int  `json:"remeasure,omitempty"`
	Completed   bool `json:"completed"`
	Done        bool `json:"done,omitempty"`
	Samples     int  `json:"samples"`
}

// GuardStats summarizes label-guard activity for one session.
type GuardStats struct {
	Flagged     int `json:"flagged"`
	Quarantined int `json:"quarantined"`
	Remeasured  int `json:"remeasured"`
}

// SessionInfo is the GET /sessions/{id}/model view: progress, the
// incumbent best, and guard telemetry.
type SessionInfo struct {
	ID         string     `json:"id"`
	Tenant     string     `json:"tenant,omitempty"`
	Strategy   string     `json:"strategy"`
	Phase      string     `json:"phase"`
	Batch      int        `json:"batch"`
	Step       int        `json:"step"`
	Samples    int        `json:"samples"`
	NMax       int        `json:"n_max"`
	Expecting  int        `json:"expecting"`
	Done       bool       `json:"done"`
	BestConfig []int      `json:"best_config,omitempty"`
	BestY      float64    `json:"best_y,omitempty"`
	LabelCost  float64    `json:"label_cost"`
	GuardStats GuardStats `json:"guard"`
}

// errorBody is every non-2xx payload. ExpectBatch/ExpectStep are set on
// tell conflicts so the client can resynchronize without an extra ask.
type errorBody struct {
	Error       string `json:"error"`
	ExpectBatch *int   `json:"expect_batch,omitempty"`
	ExpectStep  *int   `json:"expect_step,omitempty"`
}

// Handler serves the session API:
//
//	POST   /sessions            create
//	GET    /sessions            list ids
//	POST   /sessions/{id}/ask   get (or re-get) the pending batch
//	POST   /sessions/{id}/tell  deliver labels (idempotent per cursor)
//	GET    /sessions/{id}/model session progress + incumbent
//	DELETE /sessions/{id}       drop the session and its checkpoint
//	GET    /stats               service counters
//	GET    /healthz             liveness
func (m *Manager) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", m.handleCreate)
	mux.HandleFunc("GET /sessions", m.handleList)
	mux.HandleFunc("POST /sessions/{id}/ask", m.handleAsk)
	mux.HandleFunc("POST /sessions/{id}/tell", m.handleTell)
	mux.HandleFunc("GET /sessions/{id}/model", m.handleModel)
	mux.HandleFunc("DELETE /sessions/{id}", m.handleDelete)
	mux.HandleFunc("GET /stats", m.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// errStatus maps a manager error to an HTTP status.
func errStatus(err error) int {
	switch {
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrCapacity), errors.Is(err, ErrQuota):
		return http.StatusTooManyRequests
	case isClientError(err):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

func decodeBody(r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("server: decoding request: %w", err)
	}
	return nil
}

func (m *Manager) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s, err := m.Create(&req)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	s.mu.Lock()
	resp := CreateResponse{
		ID:       s.id,
		Strategy: s.man.Strategy,
		PoolSize: s.man.PoolSize,
		NInit:    s.man.NInit,
		NBatch:   s.man.NBatch,
		NMax:     s.man.NMax,
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, resp)
}

func (m *Manager) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string][]string{"sessions": m.ids()})
}

func (m *Manager) handleAsk(w http.ResponseWriter, r *http.Request) {
	s, err := m.get(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	resp, err := s.ask(r.Context(), m)
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (m *Manager) handleTell(w http.ResponseWriter, r *http.Request) {
	s, err := m.get(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	var req TellRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.tell(r.Context(), m, &req)
	if err != nil {
		if c, ok := isConflict(err); ok {
			writeJSON(w, http.StatusConflict, errorBody{
				Error:       err.Error(),
				ExpectBatch: &c.Batch,
				ExpectStep:  &c.Step,
			})
			return
		}
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (m *Manager) handleModel(w http.ResponseWriter, r *http.Request) {
	s, err := m.get(r.PathValue("id"))
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	info, err := s.info()
	if err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (m *Manager) handleDelete(w http.ResponseWriter, r *http.Request) {
	if err := m.Delete(r.PathValue("id")); err != nil {
		writeError(w, errStatus(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}

func (m *Manager) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, m.Stats())
}
