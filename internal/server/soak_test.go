package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"
)

// soakSessions is the concurrency scale of the soak test; override with
// SOAK_SESSIONS. The default exercises >1000 live sessions.
func soakSessions(t *testing.T) int {
	if s := os.Getenv("SOAK_SESSIONS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("SOAK_SESSIONS=%q: %v", s, err)
		}
		return n
	}
	return 1024
}

// soakClient drives the handler directly (no TCP) so the soak test
// measures the service, not the loopback stack.
type soakClient struct {
	h http.Handler
}

func (c *soakClient) do(method, path string, body, out any) (int, error) {
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
	}
	req := httptest.NewRequest(method, path, &buf)
	rec := httptest.NewRecorder()
	c.h.ServeHTTP(rec, req)
	if out != nil && rec.Code < 300 {
		if err := json.NewDecoder(rec.Body).Decode(out); err != nil {
			return rec.Code, fmt.Errorf("%s %s: %w", method, path, err)
		}
	}
	return rec.Code, nil
}

// soakCreate is a deliberately tiny session so a thousand of them fit
// in one test: pool 64, 4+2×3 labels, 4-tree forests.
func soakCreate(tenant string, i int) *CreateRequest {
	return &CreateRequest{
		Tenant:   tenant,
		Space:    testSpace(),
		PoolSize: 64,
		PoolSeed: uint64(1000 + i),
		Seed:     uint64(2000 + i),
		NInit:    4,
		NBatch:   2,
		NMax:     10,
		Trees:    4,
	}
}

// step asks once and tells the whole pending batch, optionally
// retransmitting the tell to exercise idempotent replay. Returns done.
func (c *soakClient) step(t *testing.T, id string, replay bool) (bool, error) {
	var ask AskResponse
	if code, err := c.do("POST", "/sessions/"+id+"/ask", nil, &ask); err != nil || code != http.StatusOK {
		return false, fmt.Errorf("ask: code=%d err=%v", code, err)
	}
	if ask.Done {
		return true, nil
	}
	req := &TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labelConfigs(ask.Configs)}
	var tell TellResponse
	if code, err := c.do("POST", "/sessions/"+id+"/tell", req, &tell); err != nil || code != http.StatusOK {
		return false, fmt.Errorf("tell: code=%d err=%v", code, err)
	}
	if replay {
		var again TellResponse
		if code, err := c.do("POST", "/sessions/"+id+"/tell", req, &again); err != nil || code != http.StatusOK {
			return false, fmt.Errorf("replay tell: code=%d err=%v", code, err)
		}
		if again != tell {
			return false, fmt.Errorf("replay diverged: %+v vs %+v", again, tell)
		}
	}
	return tell.Done, nil
}

// TestSoakConcurrentSessions floods one manager with >1000 concurrent
// sessions under mixed behavior — run to completion, retransmit every
// tell, abandon mid-batch, delete — then simulates a crash and has a
// second manager adopt the survivors from their checkpoints and finish
// them. Run under -race (make soak-server does); a goroutine-leak check
// closes it out.
func TestSoakConcurrentSessions(t *testing.T) {
	n := soakSessions(t)
	baseline := runtime.NumGoroutine()
	dir := t.TempDir()

	m1 := NewManager(Config{
		CheckpointDir:   dir,
		CheckpointEvery: 2,
		MaxSessions:     2 * n,
		MaxPerTenant:    2 * n,
	})
	c1 := &soakClient{h: m1.Handler()}

	ids := make([]string, n)
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := fmt.Sprintf("t%d", i%8)
			var created CreateResponse
			code, err := c1.do("POST", "/sessions", soakCreate(tenant, i), &created)
			if err != nil || code != http.StatusCreated {
				errs <- fmt.Errorf("session %d: create code=%d err=%v", i, code, err)
				return
			}
			ids[i] = created.ID
			id := created.ID
			switch i % 4 {
			case 0: // run to completion
				for {
					done, err := c1.step(t, id, false)
					if err != nil {
						errs <- fmt.Errorf("session %s: %v", id, err)
						return
					}
					if done {
						return
					}
				}
			case 1: // retransmit every tell, then complete
				for {
					done, err := c1.step(t, id, true)
					if err != nil {
						errs <- fmt.Errorf("session %s: %v", id, err)
						return
					}
					if done {
						return
					}
				}
			case 2: // abandon mid-batch after the cold start
				if _, err := c1.step(t, id, false); err != nil {
					errs <- fmt.Errorf("session %s: %v", id, err)
					return
				}
				var ask AskResponse
				if code, err := c1.do("POST", "/sessions/"+id+"/ask", nil, &ask); err != nil || code != http.StatusOK {
					errs <- fmt.Errorf("session %s: abandon ask code=%d err=%v", id, code, err)
				}
				// walk away with the batch outstanding
			case 3: // partial progress, then delete
				if _, err := c1.step(t, id, false); err != nil {
					errs <- fmt.Errorf("session %s: %v", id, err)
					return
				}
				if code, err := c1.do("DELETE", "/sessions/"+id, nil, nil); err != nil || code != http.StatusOK {
					errs <- fmt.Errorf("session %s: delete code=%d err=%v", id, code, err)
				}
			}
		}(i)
	}
	// Concurrent observers hammer the read endpoints while the fleet runs.
	stop := make(chan struct{})
	var obs sync.WaitGroup
	for w := 0; w < 4; w++ {
		obs.Add(1)
		go func() {
			defer obs.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c1.do("GET", "/stats", nil, nil)
				c1.do("GET", "/sessions", nil, nil)
			}
		}()
	}
	wg.Wait()
	close(stop)
	obs.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	s1 := m1.Stats()
	if s1.Created != int64(n) || s1.Completed < int64(n/2) || s1.TellReplays == 0 {
		t.Fatalf("wave-1 stats: %+v", s1)
	}

	// "Crash": drop m1 without drain. A fresh manager adopts everything
	// still checkpointed (deleted sessions are gone) and finishes the
	// abandoned ones — their interrupted batches are re-derived from the
	// restored generators.
	m2 := NewManager(Config{
		CheckpointDir: dir,
		MaxSessions:   2 * n,
		MaxPerTenant:  2 * n,
	})
	adopted, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	want := n - n/4 // i%4==3 deleted theirs
	if adopted != want {
		t.Fatalf("adopted %d sessions, want %d", adopted, want)
	}
	c2 := &soakClient{h: m2.Handler()}
	errs2 := make(chan error, n)
	var wg2 sync.WaitGroup
	for i := 0; i < n; i++ {
		if i%4 == 3 || ids[i] == "" {
			continue
		}
		wg2.Add(1)
		go func(id string) {
			defer wg2.Done()
			for {
				done, err := c2.step(t, id, false)
				if err != nil {
					errs2 <- fmt.Errorf("recovered %s: %v", id, err)
					return
				}
				if done {
					return
				}
			}
		}(ids[i])
	}
	wg2.Wait()
	close(errs2)
	for err := range errs2 {
		t.Error(err)
	}
	s2 := m2.Stats()
	if s2.Recovered != int64(want) {
		t.Fatalf("wave-2 stats: %+v", s2)
	}

	// Leak check: the handlers own no goroutines, so the count returns
	// to the baseline once the drivers exit.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if g := runtime.NumGoroutine(); g <= baseline+8 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", g, baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
