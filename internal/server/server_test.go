package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

// testSpace is a small tuning space used across the server tests.
func testSpace() []ParamSpec {
	return []ParamSpec{
		{Name: "a", Min: 0, Max: 9},
		{Name: "b", Min: 0, Max: 7},
		{Name: "c", Levels: []string{"x", "y", "z"}},
	}
}

// testCreate is a deterministic small-session request.
func testCreate(tenant string) *CreateRequest {
	return &CreateRequest{
		Tenant:   tenant,
		Space:    testSpace(),
		PoolSize: 200,
		PoolSeed: 11,
		Seed:     12,
		NInit:    5,
		NBatch:   2,
		NMax:     11,
		Trees:    8,
	}
}

// labelConfigs scores ask responses with a fixed quadratic (parameter
// level indices double as values for the integer ranges).
func labelConfigs(configs [][]int) []core.Label {
	out := make([]core.Label, len(configs))
	for i, c := range configs {
		a, b := float64(c[0]), float64(c[1])
		out[i] = core.Label{Y: (a-4)*(a-4) + (b-2)*(b-2) + 1}
	}
	return out
}

// api wraps an httptest server around a Manager's handler.
type api struct {
	t   *testing.T
	srv *httptest.Server
}

func newAPI(t *testing.T, m *Manager) *api {
	t.Helper()
	srv := httptest.NewServer(m.Handler())
	t.Cleanup(srv.Close)
	return &api{t: t, srv: srv}
}

// do issues a request and decodes the JSON response into out (when
// non-nil), returning the status code.
func (a *api) do(method, path string, body, out any) int {
	a.t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			a.t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, a.srv.URL+path, &buf)
	if err != nil {
		a.t.Fatal(err)
	}
	resp, err := a.srv.Client().Do(req)
	if err != nil {
		a.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			a.t.Fatalf("%s %s: decoding response: %v", method, path, err)
		}
	}
	return resp.StatusCode
}

// drive runs one session to completion over the API and returns the
// label curve.
func (a *api) drive(id string) []float64 {
	a.t.Helper()
	var curve []float64
	for {
		var ask AskResponse
		if code := a.do("POST", "/sessions/"+id+"/ask", nil, &ask); code != http.StatusOK {
			a.t.Fatalf("ask: status %d", code)
		}
		if ask.Done {
			return curve
		}
		labels := labelConfigs(ask.Configs)
		for _, l := range labels {
			curve = append(curve, l.Y)
		}
		var tell TellResponse
		code := a.do("POST", "/sessions/"+id+"/tell",
			&TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labels}, &tell)
		if code != http.StatusOK {
			a.t.Fatalf("tell: status %d", code)
		}
		if tell.Done {
			return curve
		}
	}
}

// TestServerSessionLifecycle drives a full session over HTTP: create,
// ask/tell to completion, model inspection, delete.
func TestServerSessionLifecycle(t *testing.T) {
	m := NewManager(Config{})
	a := newAPI(t, m)

	var created CreateResponse
	if code := a.do("POST", "/sessions", testCreate("acme"), &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	if created.NInit != 5 || created.NBatch != 2 || created.NMax != 11 || created.Strategy != "PWU" {
		t.Fatalf("create response: %+v", created)
	}

	curve := a.drive(created.ID)
	if len(curve) != 11 {
		t.Fatalf("drove %d labels, want NMax=11", len(curve))
	}

	var info SessionInfo
	if code := a.do("GET", "/sessions/"+created.ID+"/model", nil, &info); code != http.StatusOK {
		t.Fatalf("model: status %d", code)
	}
	if !info.Done || info.Samples != 11 || info.Phase != "done" {
		t.Fatalf("final info: %+v", info)
	}
	best := math.Inf(1)
	for _, y := range curve {
		best = math.Min(best, y)
	}
	if info.BestY != best {
		t.Fatalf("best_y = %v, want %v", info.BestY, best)
	}

	var stats Stats
	a.do("GET", "/stats", nil, &stats)
	if stats.Created != 1 || stats.Completed != 1 || stats.Labels != 11 || stats.Active != 1 {
		t.Fatalf("stats: %+v", stats)
	}

	if code := a.do("DELETE", "/sessions/"+created.ID, nil, nil); code != http.StatusOK {
		t.Fatalf("delete failed")
	}
	if code := a.do("POST", "/sessions/"+created.ID+"/ask", nil, nil); code != http.StatusNotFound {
		t.Fatalf("ask after delete: status %d", code)
	}
}

// TestServerDeterministicTrajectory: two sessions created with identical
// manifests produce identical curves — the service preserves the
// engine's determinism.
func TestServerDeterministicTrajectory(t *testing.T) {
	m := NewManager(Config{})
	a := newAPI(t, m)
	var c1, c2 CreateResponse
	a.do("POST", "/sessions", testCreate("t1"), &c1)
	a.do("POST", "/sessions", testCreate("t2"), &c2)
	curve1, curve2 := a.drive(c1.ID), a.drive(c2.ID)
	if len(curve1) != len(curve2) {
		t.Fatalf("curve lengths differ: %d vs %d", len(curve1), len(curve2))
	}
	for i := range curve1 {
		if curve1[i] != curve2[i] {
			t.Fatalf("curves diverge at %d: %v vs %v", i, curve1[i], curve2[i])
		}
	}
}

// TestServerIdempotentTell: retransmitting the same tell replays the
// cached response without double-applying; a stale cursor conflicts and
// reports the expected position.
func TestServerIdempotentTell(t *testing.T) {
	m := NewManager(Config{})
	a := newAPI(t, m)
	var created CreateResponse
	a.do("POST", "/sessions", testCreate(""), &created)
	id := created.ID

	var ask AskResponse
	a.do("POST", "/sessions/"+id+"/ask", nil, &ask)
	labels := labelConfigs(ask.Configs)

	req := &TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labels}
	var first, replay TellResponse
	if code := a.do("POST", "/sessions/"+id+"/tell", req, &first); code != http.StatusOK {
		t.Fatalf("tell: status %d", code)
	}
	// Exact retransmission (e.g. client retried after a lost response).
	if code := a.do("POST", "/sessions/"+id+"/tell", req, &replay); code != http.StatusOK {
		t.Fatalf("replay: status %d", code)
	}
	if replay != first {
		t.Fatalf("replay diverged: %+v vs %+v", replay, first)
	}
	var info SessionInfo
	a.do("GET", "/sessions/"+id+"/model", nil, &info)
	if info.Samples != 5 {
		t.Fatalf("replay double-applied: %d samples", info.Samples)
	}

	// A third identical tell at a now-stale cursor: conflict with the
	// expected position in the body.
	var conflict struct {
		Error       string `json:"error"`
		ExpectBatch *int   `json:"expect_batch"`
		ExpectStep  *int   `json:"expect_step"`
	}
	stale := &TellRequest{Batch: 99, Step: 0, Labels: labels[:1]}
	if code := a.do("POST", "/sessions/"+id+"/tell", stale, &conflict); code != http.StatusConflict {
		t.Fatalf("stale tell: status %d", code)
	}
	if conflict.ExpectBatch == nil || conflict.ExpectStep == nil {
		t.Fatalf("conflict body lacks expected cursor: %+v", conflict)
	}

	var stats Stats
	a.do("GET", "/stats", nil, &stats)
	if stats.TellReplays != 1 || stats.TellConflicts != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestServerRejectsHostileLabels: non-finite labels are rejected with
// 400 before touching the session, and guard quarantine polices wild
// outliers from a lying client.
func TestServerRejectsHostileLabels(t *testing.T) {
	m := NewManager(Config{})
	a := newAPI(t, m)
	req := testCreate("")
	req.GuardZ = 2
	var created CreateResponse
	a.do("POST", "/sessions", req, &created)
	id := created.ID

	var ask AskResponse
	a.do("POST", "/sessions/"+id+"/ask", nil, &ask)
	// JSON itself cannot carry NaN/Inf, so a hostile client sends an
	// overflowing number — rejected at decode with 400.
	resp, err := http.Post(a.srv.URL+"/sessions/"+id+"/tell", "application/json",
		bytes.NewBufferString(`{"batch":0,"step":0,"labels":[{"y":1e999}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("overflowing label: status %d", resp.StatusCode)
	}
	// The non-finite guard itself (for non-JSON transports) rejects
	// before the session sees anything.
	s, err := m.get(id)
	if err != nil {
		t.Fatal(err)
	}
	for _, y := range []float64{math.NaN(), math.Inf(1)} {
		if _, err := s.tell(context.Background(), m,
			&TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: []core.Label{{Y: y}}}); err == nil {
			t.Fatalf("non-finite label %v accepted", y)
		}
	}

	// Finish the cold start honestly, then lie wildly: the guard
	// quarantines the outlier instead of training on it.
	a.do("POST", "/sessions/"+id+"/tell",
		&TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labelConfigs(ask.Configs)}, nil)
	var loop AskResponse
	a.do("POST", "/sessions/"+id+"/ask", nil, &loop)
	lies := make([]core.Label, len(loop.Configs))
	for i := range lies {
		lies[i] = core.Label{Y: 1e12}
	}
	var tell TellResponse
	a.do("POST", "/sessions/"+id+"/tell",
		&TellRequest{Batch: loop.Batch, Step: loop.Step, Labels: lies}, &tell)
	if tell.Quarantined == 0 {
		t.Fatalf("outliers not quarantined: %+v", tell)
	}
	var info SessionInfo
	a.do("GET", "/sessions/"+id+"/model", nil, &info)
	if info.GuardStats.Quarantined == 0 {
		t.Fatalf("guard telemetry missing: %+v", info)
	}
	var stats Stats
	a.do("GET", "/stats", nil, &stats)
	if stats.BadLabels != 2 || stats.GuardQuarantined == 0 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestServerAdmissionControl: the session cap and per-tenant quota both
// reject with 429.
func TestServerAdmissionControl(t *testing.T) {
	m := NewManager(Config{MaxSessions: 3, MaxPerTenant: 2})
	a := newAPI(t, m)
	if code := a.do("POST", "/sessions", testCreate("acme"), nil); code != http.StatusCreated {
		t.Fatal("first create failed")
	}
	if code := a.do("POST", "/sessions", testCreate("acme"), nil); code != http.StatusCreated {
		t.Fatal("second create failed")
	}
	if code := a.do("POST", "/sessions", testCreate("acme"), nil); code != http.StatusTooManyRequests {
		t.Fatalf("tenant quota not enforced: %d", code)
	}
	if code := a.do("POST", "/sessions", testCreate("other"), nil); code != http.StatusCreated {
		t.Fatal("other tenant blocked by acme's quota")
	}
	if code := a.do("POST", "/sessions", testCreate("third"), nil); code != http.StatusTooManyRequests {
		t.Fatalf("capacity not enforced: %d", code)
	}
	var stats Stats
	a.do("GET", "/stats", nil, &stats)
	if stats.QuotaRejections != 1 || stats.CapacityRejections != 1 {
		t.Fatalf("stats: %+v", stats)
	}
}

// TestServerCrashRecovery: kill the manager (drop it), adopt the
// checkpoints with a fresh one on the same directory, and finish the
// session — the combined curve matches an uninterrupted run, because
// the resumed generator re-derives the batch that died with the
// process.
func TestServerCrashRecovery(t *testing.T) {
	dir := t.TempDir()

	// Reference: uninterrupted run on an identical manifest.
	ref := NewManager(Config{})
	refAPI := newAPI(t, ref)
	var refCreated CreateResponse
	refAPI.do("POST", "/sessions", testCreate("acme"), &refCreated)
	want := refAPI.drive(refCreated.ID)

	// Interrupted run: one full cold batch plus one loop batch, then
	// the process "dies" (we simply stop using the manager).
	m1 := NewManager(Config{CheckpointDir: dir})
	a1 := newAPI(t, m1)
	var created CreateResponse
	a1.do("POST", "/sessions", testCreate("acme"), &created)
	id := created.ID
	var got []float64
	for i := 0; i < 2; i++ {
		var ask AskResponse
		a1.do("POST", "/sessions/"+id+"/ask", nil, &ask)
		labels := labelConfigs(ask.Configs)
		for _, l := range labels {
			got = append(got, l.Y)
		}
		a1.do("POST", "/sessions/"+id+"/tell",
			&TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labels}, nil)
	}

	// Plant a corrupt checkpoint next to the good one: recovery must
	// skip it, not die.
	if err := os.WriteFile(filepath.Join(dir, "s-corrupt.ckpt"), []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	m2 := NewManager(Config{CheckpointDir: dir})
	n, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("recovered %d sessions, want 1", n)
	}
	if m2.Stats().RecoverySkips != 1 {
		t.Fatalf("corrupt checkpoint not counted as skipped: %+v", m2.Stats())
	}
	a2 := newAPI(t, m2)
	got = append(got, a2.drive(id)...)

	if len(got) != len(want) {
		t.Fatalf("recovered curve has %d labels, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("recovered curve diverges at %d: %v vs %v", i, got[i], want[i])
		}
	}

	// Fresh ids do not collide with recovered ones.
	var next CreateResponse
	a2.do("POST", "/sessions", testCreate("acme"), &next)
	if next.ID == id {
		t.Fatalf("fresh id collided with recovered session %s", id)
	}
}

// TestServerRecoveredTellReplay: a tell whose response the crash ate is
// retransmitted to the recovered manager. The labels are already inside
// the checkpoint the new manager adopted, so the session's cursor sits
// one batch ahead of the retransmission — which must replay a
// synthesized success, not 409, or the at-least-once client wedges
// against its own applied tell.
func TestServerRecoveredTellReplay(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(Config{CheckpointDir: dir})
	a1 := newAPI(t, m1)
	var created CreateResponse
	a1.do("POST", "/sessions", testCreate("acme"), &created)
	id := created.ID
	var ask AskResponse
	a1.do("POST", "/sessions/"+id+"/ask", nil, &ask)
	labels := labelConfigs(ask.Configs)
	tellReq := &TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labels}
	var first TellResponse
	if code := a1.do("POST", "/sessions/"+id+"/tell", tellReq, &first); code != http.StatusOK {
		t.Fatalf("tell: status %d", code)
	}
	if !first.Completed {
		t.Fatalf("batch not completed: %+v", first)
	}
	// The crash: the applied, checkpointed tell's response never reached
	// the client. A second manager adopts the checkpoint.
	m2 := NewManager(Config{CheckpointDir: dir})
	if n, err := m2.Recover(); err != nil || n != 1 {
		t.Fatalf("recover: n=%d err=%v", n, err)
	}
	a2 := newAPI(t, m2)
	var replay TellResponse
	if code := a2.do("POST", "/sessions/"+id+"/tell", tellReq, &replay); code != http.StatusOK {
		t.Fatalf("retransmitted tell: status %d, want 200 replay", code)
	}
	if !replay.Completed || replay.Batch != tellReq.Batch || replay.Consumed != len(labels) {
		t.Fatalf("replay response: %+v", replay)
	}
	if m2.Stats().TellReplays != 1 {
		t.Fatalf("replay not counted: %+v", m2.Stats())
	}
	// A genuinely misaligned tell still conflicts.
	bad := &TellRequest{Batch: tellReq.Batch + 5, Step: 0, Labels: labels}
	if code := a2.do("POST", "/sessions/"+id+"/tell", bad, nil); code != http.StatusConflict {
		t.Fatalf("misaligned tell: status %d, want 409", code)
	}
	// And the session keeps going to completion from where it stood.
	a2.drive(id)

	// Same crash one batch later: the loop-batch shape, where the
	// checkpointed iteration counter sits one past the retransmission.
	dir2 := t.TempDir()
	m3 := NewManager(Config{CheckpointDir: dir2})
	a3 := newAPI(t, m3)
	a3.do("POST", "/sessions", testCreate("acme"), &created)
	id = created.ID
	var loopTell *TellRequest
	for i := 0; i < 2; i++ {
		a3.do("POST", "/sessions/"+id+"/ask", nil, &ask)
		loopTell = &TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labelConfigs(ask.Configs)}
		a3.do("POST", "/sessions/"+id+"/tell", loopTell, nil)
	}
	m4 := NewManager(Config{CheckpointDir: dir2})
	if n, err := m4.Recover(); err != nil || n != 1 {
		t.Fatalf("recover loop case: n=%d err=%v", n, err)
	}
	a4 := newAPI(t, m4)
	if code := a4.do("POST", "/sessions/"+id+"/tell", loopTell, &replay); code != http.StatusOK {
		t.Fatalf("retransmitted loop tell: status %d, want 200 replay", code)
	}
	if !replay.Completed || replay.Batch != loopTell.Batch {
		t.Fatalf("loop replay response: %+v", replay)
	}
	a4.drive(id)
}

// TestServerDrainPersistsBoundaries: Drain writes a checkpoint for a
// session whose cadence would otherwise have skipped the latest
// boundary.
func TestServerDrainPersistsBoundaries(t *testing.T) {
	dir := t.TempDir()
	m := NewManager(Config{CheckpointDir: dir, CheckpointEvery: 1000})
	a := newAPI(t, m)
	var created CreateResponse
	a.do("POST", "/sessions", testCreate(""), &created)
	var ask AskResponse
	a.do("POST", "/sessions/"+created.ID+"/ask", nil, &ask)
	a.do("POST", "/sessions/"+created.ID+"/tell",
		&TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labelConfigs(ask.Configs)}, nil)

	m.Drain(context.Background())
	m2 := NewManager(Config{CheckpointDir: dir})
	if n, err := m2.Recover(); err != nil || n != 1 {
		t.Fatalf("recover after drain: n=%d err=%v", n, err)
	}
}

// TestServerRecoveryRespectsCapacity: more checkpoints than MaxSessions
// adopts only up to the cap.
func TestServerRecoveryRespectsCapacity(t *testing.T) {
	dir := t.TempDir()
	m1 := NewManager(Config{CheckpointDir: dir})
	a1 := newAPI(t, m1)
	for i := 0; i < 3; i++ {
		var created CreateResponse
		a1.do("POST", "/sessions", testCreate(fmt.Sprintf("t%d", i)), &created)
		var ask AskResponse
		a1.do("POST", "/sessions/"+created.ID+"/ask", nil, &ask)
		a1.do("POST", "/sessions/"+created.ID+"/tell",
			&TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labelConfigs(ask.Configs)}, nil)
	}
	m2 := NewManager(Config{CheckpointDir: dir, MaxSessions: 2})
	n, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("recovered %d, want cap 2", n)
	}
}

// TestBuildSpaceRoundTrip: SpecFromSpace(BuildSpace(specs)) preserves
// the space, and invalid specs are rejected.
func TestBuildSpaceRoundTrip(t *testing.T) {
	specs := []ParamSpec{
		{Name: "threads", Min: 1, Max: 64, Step: 4},
		{Name: "opt", Levels: []string{"O0", "O2", "O3"}},
		{Name: "simd", Bool: true},
		{Name: "tile", Values: []float64{8, 16, 32, 128}},
	}
	sp, err := BuildSpace(specs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := BuildSpace(SpecFromSpace(sp))
	if err != nil {
		t.Fatal(err)
	}
	wantCard, _ := sp.Cardinality()
	gotCard, _ := back.Cardinality()
	if gotCard != wantCard || back.NumParams() != sp.NumParams() {
		t.Fatalf("round trip changed the space: %d/%d vs %d/%d",
			gotCard, back.NumParams(), wantCard, sp.NumParams())
	}
	if _, err := BuildSpace(nil); err == nil {
		t.Fatal("empty space accepted")
	}
	if _, err := BuildSpace([]ParamSpec{{Name: "bad", Min: 5, Max: 1}}); err == nil {
		t.Fatal("empty range accepted")
	}
}
