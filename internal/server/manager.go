package server

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/pool"
	"repro/internal/rng"
	"repro/internal/runstate"
)

// Typed admission errors; the HTTP layer maps them to status codes.
var (
	ErrCapacity = errors.New("server: session capacity exhausted")
	ErrQuota    = errors.New("server: tenant quota exhausted")
	ErrNotFound = errors.New("server: no such session")
)

// conflictError reports a tell whose (batch, step) position does not
// match the session's cursor; it carries the expected position so the
// client can resynchronize with a single ask.
type conflictError struct {
	Batch, Step int
}

func (e *conflictError) Error() string {
	return fmt.Sprintf("server: tell out of sequence (expect batch %d step %d)", e.Batch, e.Step)
}

// Config parameterizes a Manager.
type Config struct {
	// MaxSessions bounds live sessions across all tenants; <= 0
	// defaults to 1024. Together with per-session lazy pool sources
	// this is the service memory bound: each session's state scales
	// with labels taken, never with pool size.
	MaxSessions int

	// MaxPerTenant bounds live sessions per tenant; <= 0 defaults to 64.
	MaxPerTenant int

	// CheckpointDir holds one <id>.ckpt per session. Empty disables
	// persistence (and therefore crash recovery).
	CheckpointDir string

	// CheckpointEvery is the per-session checkpoint cadence in
	// iterations; <= 0 defaults to 1.
	CheckpointEvery int

	// Trees is the default surrogate forest size for sessions that do
	// not override it; <= 0 defaults to 32.
	Trees int

	// Logf receives operational log lines; nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) normalized() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxPerTenant <= 0 {
		c.MaxPerTenant = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.Trees <= 0 {
		c.Trees = 32
	}
	return c
}

// Stats is the service-wide counter dump served at /stats and rendered
// by cmd/report's Service section.
type Stats struct {
	Active    int   `json:"active"`
	Created   int64 `json:"created"`
	Recovered int64 `json:"recovered"`
	Completed int64 `json:"completed"`
	Deleted   int64 `json:"deleted"`

	Asks   int64 `json:"asks"`
	Tells  int64 `json:"tells"`
	Labels int64 `json:"labels"`

	TellReplays   int64 `json:"tell_replays"`
	TellConflicts int64 `json:"tell_conflicts"`

	GuardFlagged     int64 `json:"guard_flagged"`
	GuardQuarantined int64 `json:"guard_quarantined"`

	QuotaRejections    int64 `json:"quota_rejections"`
	CapacityRejections int64 `json:"capacity_rejections"`
	BadLabels          int64 `json:"bad_labels"`
	RecoverySkips      int64 `json:"recovery_skips"`
}

// counters is the lock-free backing store for Stats.
type counters struct {
	created, recovered, completed, deleted atomic.Int64
	asks, tells, labels                    atomic.Int64
	tellReplays, tellConflicts             atomic.Int64
	guardFlagged, guardQuarantined         atomic.Int64
	quotaRejections, capacityRejections    atomic.Int64
	badLabels, recoverySkips               atomic.Int64
}

// Manager owns the live session table: admission, quotas, recovery and
// drain. Per-session serialization lives in managed; the Manager mutex
// only guards the table itself, so slow asks on one session never block
// tells on another.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*managed
	tenants  map[string]int
	nextID   int64

	stats counters
}

// NewManager builds an empty manager. Call Recover to adopt checkpoints
// left by a previous process.
func NewManager(cfg Config) *Manager {
	return &Manager{
		cfg:      cfg.normalized(),
		sessions: make(map[string]*managed),
		tenants:  make(map[string]int),
	}
}

func (m *Manager) logf(format string, args ...any) {
	if m.cfg.Logf != nil {
		m.cfg.Logf(format, args...)
	}
}

// managed wraps one core.Session with the per-session serialization and
// idempotency state the wire protocol needs. All field access goes
// through mu; core.Session itself is not safe for concurrent use.
type managed struct {
	mu     sync.Mutex
	id     string
	tenant string
	man    *Manifest
	sess   *core.Session

	// told is the label cursor inside the current batch: how many
	// labels have been applied since the batch was staged. A tell must
	// arrive at (Iteration, told) exactly; the immediately previous
	// position replays its cached response instead of double-applying.
	told      int
	lastBatch int
	lastStep  int
	lastResp  *TellResponse
	hasLast   bool

	gone bool // deleted while a handler held a reference
}

// checkpointPath is the session's durable home, or "" when persistence
// is off.
func (m *Manager) checkpointPath(id string) string {
	if m.cfg.CheckpointDir == "" {
		return ""
	}
	return filepath.Join(m.cfg.CheckpointDir, id+".ckpt")
}

// manifestFromRequest fills defaults and normalizes a creation request
// into the durable manifest. The manifest records effective values, so
// recovery never depends on default drift.
func (m *Manager) manifestFromRequest(id string, req *CreateRequest) (*Manifest, error) {
	man := &Manifest{
		ID:             id,
		Tenant:         req.Tenant,
		Space:          req.Space,
		PoolSeed:       req.PoolSeed,
		PoolSize:       req.PoolSize,
		Seed:           req.Seed,
		Strategy:       req.Strategy,
		Alpha:          req.Alpha,
		Trees:          req.Trees,
		GuardZ:         req.GuardZ,
		GuardRel:       req.GuardRel,
		GuardRemeasure: req.GuardRemeasure,
	}
	if man.PoolSize <= 0 {
		man.PoolSize = 4096
	}
	if man.PoolSeed == 0 {
		man.PoolSeed = seedFor(id, 0x9e3779b97f4a7c15)
	}
	if man.Seed == 0 {
		man.Seed = seedFor(id, 0xd1b54a32d192ed03)
	}
	if man.Strategy == "" {
		man.Strategy = "PWU"
	}
	if man.Alpha <= 0 {
		man.Alpha = 0.05
	}
	if man.Trees <= 0 {
		man.Trees = m.cfg.Trees
	}
	p := core.Params{NInit: req.NInit, NBatch: req.NBatch, NMax: req.NMax}.Normalized()
	man.NInit, man.NBatch, man.NMax = p.NInit, p.NBatch, p.NMax
	if man.NMax > man.PoolSize {
		return nil, fmt.Errorf("server: n_max %d exceeds pool_size %d", man.NMax, man.PoolSize)
	}
	return man, nil
}

// sessionConfig rebuilds the full deterministic session configuration
// from a manifest — shared by Create and Recover so a recovered session
// is indistinguishable from one that never died.
func (m *Manager) sessionConfig(man *Manifest) (core.SessionConfig, error) {
	sp, err := BuildSpace(man.Space)
	if err != nil {
		return core.SessionConfig{}, err
	}
	strat, err := core.ByName(man.Strategy, man.Alpha)
	if err != nil {
		return core.SessionConfig{}, fmt.Errorf("server: %w", err)
	}
	service, err := man.encode()
	if err != nil {
		return core.SessionConfig{}, err
	}
	p := core.Params{
		NInit:           man.NInit,
		NBatch:          man.NBatch,
		NMax:            man.NMax,
		Guard:           man.guard(),
		CheckpointEvery: m.cfg.CheckpointEvery,
	}
	p.Forest.NumTrees = man.Trees
	if path := m.checkpointPath(man.ID); path != "" {
		p.Checkpoint = runstate.FileSink(path)
	}
	return core.SessionConfig{
		Source:   pool.NewUniform(sp, man.PoolSeed, man.PoolSize),
		Strategy: strat,
		Params:   p,
		Service:  service,
	}, nil
}

// Create admits a new session. Admission is checked and the slot
// reserved under the table lock; the (cheap) session construction
// happens outside it.
func (m *Manager) Create(req *CreateRequest) (*managed, error) {
	tenant := req.Tenant

	m.mu.Lock()
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		m.stats.capacityRejections.Add(1)
		return nil, ErrCapacity
	}
	if m.tenants[tenant] >= m.cfg.MaxPerTenant {
		m.mu.Unlock()
		m.stats.quotaRejections.Add(1)
		return nil, ErrQuota
	}
	var id string
	for {
		m.nextID++
		id = fmt.Sprintf("s-%08d", m.nextID)
		if _, taken := m.sessions[id]; !taken {
			break
		}
	}
	// Reserve the slot so concurrent creates respect the caps while we
	// build the session outside the lock.
	placeholder := &managed{id: id, tenant: tenant}
	m.sessions[id] = placeholder
	m.tenants[tenant]++
	m.mu.Unlock()

	release := func() {
		m.mu.Lock()
		delete(m.sessions, id)
		m.tenants[tenant]--
		if m.tenants[tenant] <= 0 {
			delete(m.tenants, tenant)
		}
		m.mu.Unlock()
	}

	man, err := m.manifestFromRequest(id, req)
	if err != nil {
		release()
		return nil, err
	}
	cfg, err := m.sessionConfig(man)
	if err != nil {
		release()
		return nil, err
	}
	cfg.RNG = rng.New(man.Seed)
	sess, err := core.NewSession(cfg)
	if err != nil {
		release()
		return nil, err
	}
	placeholder.mu.Lock()
	placeholder.man, placeholder.sess = man, sess
	placeholder.mu.Unlock()
	m.stats.created.Add(1)
	m.logf("session %s created (tenant=%q strategy=%s pool=%d nmax=%d)",
		id, tenant, man.Strategy, man.PoolSize, man.NMax)
	return placeholder, nil
}

// get returns a live session by id.
func (m *Manager) get(id string) (*managed, error) {
	m.mu.Lock()
	s, ok := m.sessions[id]
	m.mu.Unlock()
	if !ok || s.sessUnset() {
		return nil, ErrNotFound
	}
	return s, nil
}

// sessUnset reports a placeholder whose construction has not finished
// (or failed and is about to be released).
func (s *managed) sessUnset() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sess == nil
}

// Delete removes a session and its checkpoint file.
func (m *Manager) Delete(id string) error {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
		m.tenants[s.tenant]--
		if m.tenants[s.tenant] <= 0 {
			delete(m.tenants, s.tenant)
		}
	}
	m.mu.Unlock()
	if !ok {
		return ErrNotFound
	}
	s.mu.Lock()
	s.gone = true
	s.mu.Unlock()
	if path := m.checkpointPath(id); path != "" {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			m.logf("session %s: removing checkpoint: %v", id, err)
		}
	}
	m.stats.deleted.Add(1)
	m.logf("session %s deleted", id)
	return nil
}

// Recover scans the checkpoint directory and adopts every decodable
// snapshot that carries a service manifest. Damaged or alien files are
// skipped with a log line — a half-written checkpoint from a crash must
// not block the daemon from serving. Returns the number of sessions
// adopted.
func (m *Manager) Recover() (int, error) {
	if m.cfg.CheckpointDir == "" {
		return 0, nil
	}
	paths, err := filepath.Glob(filepath.Join(m.cfg.CheckpointDir, "*.ckpt"))
	if err != nil {
		return 0, fmt.Errorf("server: scanning checkpoints: %w", err)
	}
	sort.Strings(paths)
	adopted := 0
	for _, path := range paths {
		if err := m.recoverOne(path); err != nil {
			m.stats.recoverySkips.Add(1)
			m.logf("recovery: skipping %s: %v", filepath.Base(path), err)
			continue
		}
		adopted++
	}
	return adopted, nil
}

func (m *Manager) recoverOne(path string) error {
	snap, err := runstate.Load(path)
	if err != nil {
		return err
	}
	man, err := decodeManifest(snap.Service)
	if err != nil {
		return err
	}
	if want := filepath.Base(path); want != man.ID+".ckpt" {
		return fmt.Errorf("server: manifest id %q does not match file %s", man.ID, want)
	}

	m.mu.Lock()
	if _, dup := m.sessions[man.ID]; dup {
		m.mu.Unlock()
		return fmt.Errorf("server: session %s already live", man.ID)
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		m.mu.Unlock()
		m.stats.capacityRejections.Add(1)
		return ErrCapacity
	}
	placeholder := &managed{id: man.ID, tenant: man.Tenant}
	m.sessions[man.ID] = placeholder
	m.tenants[man.Tenant]++
	// Keep fresh ids ahead of every recovered one.
	var n int64
	if _, err := fmt.Sscanf(man.ID, "s-%d", &n); err == nil && n > m.nextID {
		m.nextID = n
	}
	m.mu.Unlock()

	cfg, err := m.sessionConfig(man)
	if err == nil {
		var sess *core.Session
		sess, err = core.ResumeSession(snap, cfg)
		if err == nil {
			placeholder.mu.Lock()
			placeholder.man, placeholder.sess = man, sess
			placeholder.mu.Unlock()
			m.stats.recovered.Add(1)
			m.logf("session %s recovered at iteration %d (%d labels)",
				man.ID, sess.Iteration(), sess.Samples())
			return nil
		}
	}
	m.mu.Lock()
	delete(m.sessions, man.ID)
	m.tenants[man.Tenant]--
	if m.tenants[man.Tenant] <= 0 {
		delete(m.tenants, man.Tenant)
	}
	m.mu.Unlock()
	return err
}

// Drain checkpoints every session that sits at an iteration boundary.
// Mid-batch sessions already have their last boundary on disk — the
// resumed session's Ask re-derives the lost batch from the restored
// generator, so nothing is lost either way.
func (m *Manager) Drain(ctx context.Context) {
	if m.cfg.CheckpointDir == "" {
		return
	}
	m.mu.Lock()
	live := make([]*managed, 0, len(m.sessions))
	for _, s := range m.sessions {
		live = append(live, s)
	}
	m.mu.Unlock()
	for _, s := range live {
		if ctx.Err() != nil {
			return
		}
		s.mu.Lock()
		if s.sess == nil || s.gone {
			s.mu.Unlock()
			continue
		}
		snap, err := s.sess.Snapshot()
		id := s.id
		s.mu.Unlock()
		if err != nil {
			continue // mid-batch: last boundary checkpoint stands
		}
		if err := runstate.Save(m.checkpointPath(id), snap); err != nil {
			m.logf("drain: session %s: %v", id, err)
		}
	}
}

// Stats snapshots the counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	active := len(m.sessions)
	m.mu.Unlock()
	return Stats{
		Active:             active,
		Created:            m.stats.created.Load(),
		Recovered:          m.stats.recovered.Load(),
		Completed:          m.stats.completed.Load(),
		Deleted:            m.stats.deleted.Load(),
		Asks:               m.stats.asks.Load(),
		Tells:              m.stats.tells.Load(),
		Labels:             m.stats.labels.Load(),
		TellReplays:        m.stats.tellReplays.Load(),
		TellConflicts:      m.stats.tellConflicts.Load(),
		GuardFlagged:       m.stats.guardFlagged.Load(),
		GuardQuarantined:   m.stats.guardQuarantined.Load(),
		QuotaRejections:    m.stats.quotaRejections.Load(),
		CapacityRejections: m.stats.capacityRejections.Load(),
		BadLabels:          m.stats.badLabels.Load(),
		RecoverySkips:      m.stats.recoverySkips.Load(),
	}
}

// ids returns the live session ids, sorted.
func (m *Manager) ids() []string {
	m.mu.Lock()
	out := make([]string, 0, len(m.sessions))
	for id := range m.sessions {
		out = append(out, id)
	}
	m.mu.Unlock()
	sort.Strings(out)
	return out
}

// ask serializes an Ask on the session and renders the wire response.
func (s *managed) ask(ctx context.Context, m *Manager) (*AskResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone || s.sess == nil {
		return nil, ErrNotFound
	}
	m.stats.asks.Add(1)
	cfgs, err := s.sess.Ask(ctx)
	if errors.Is(err, core.ErrSessionDone) {
		return s.askDoneLocked(), nil
	}
	if err != nil {
		return nil, err
	}
	resp := &AskResponse{
		Batch:   s.sess.Iteration(),
		Step:    s.told,
		Samples: s.sess.Samples(),
		Configs: make([][]int, len(cfgs)),
	}
	for i, c := range cfgs {
		resp.Configs[i] = append([]int(nil), c...)
	}
	return resp, nil
}

func (s *managed) askDoneLocked() *AskResponse {
	return &AskResponse{
		Batch:   s.sess.Iteration(),
		Step:    0,
		Samples: s.sess.Samples(),
		Done:    true,
	}
}

// tell applies labels at an exact (batch, step) position. The position
// the client just told is cached; retransmissions of it replay the
// cached response instead of double-applying — idempotent ingestion
// over an at-least-once transport. Anything else is a conflict carrying
// the expected cursor.
func (s *managed) tell(ctx context.Context, m *Manager, req *TellRequest) (*TellResponse, error) {
	for i, l := range req.Labels {
		if !l.Skip && (math.IsNaN(l.Y) || math.IsInf(l.Y, 0)) {
			m.stats.badLabels.Add(1)
			return nil, fmt.Errorf("server: label %d: non-finite y", i)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone || s.sess == nil {
		return nil, ErrNotFound
	}
	if s.hasLast && req.Batch == s.lastBatch && req.Step == s.lastStep {
		m.stats.tellReplays.Add(1)
		resp := *s.lastResp
		return &resp, nil
	}
	// A recovered session has no in-memory replay cache, but its
	// checkpoint already contains every batch told before the write: a
	// retransmission aimed at one of them (the crash ate the response,
	// not the labels) must replay, not conflict, or an at-least-once
	// client wedges against its own successfully-applied tell. The
	// shape is unmistakable: a cursor that has never moved in this
	// process (hasLast false, told 0, nothing asked yet) on a session
	// that already holds samples — only recovery produces that — and a
	// batch number no later than the checkpointed iteration. A tell
	// that was applied but missed the checkpoint resumes at an earlier
	// iteration, so its retransmission still conflicts and sends the
	// client back to re-ask and re-derive. The synthesized response is
	// what the lost one said: batch consumed whole, cursor at the next
	// batch's start.
	recoveredReplay := !s.hasLast && s.told == 0 && s.sess.Expecting() == 0 &&
		s.sess.Samples() > 0 && req.Batch <= s.sess.Iteration()
	if recoveredReplay {
		m.stats.tellReplays.Add(1)
		return &TellResponse{
			Batch:     req.Batch,
			Step:      0,
			Consumed:  len(req.Labels),
			Completed: true,
			Done:      s.sess.Done(),
			Samples:   s.sess.Samples(),
		}, nil
	}
	if req.Batch != s.sess.Iteration() || req.Step != s.told || s.sess.Expecting() == 0 {
		m.stats.tellConflicts.Add(1)
		return nil, &conflictError{Batch: s.sess.Iteration(), Step: s.told}
	}
	m.stats.tells.Add(1)
	rep, err := s.sess.Tell(ctx, req.Labels)
	if err != nil {
		return nil, err
	}
	m.stats.labels.Add(int64(rep.Consumed))
	m.stats.guardFlagged.Add(int64(rep.Flagged))
	m.stats.guardQuarantined.Add(int64(rep.Quarantined))
	prevStep := s.told
	if rep.Completed {
		s.told = 0
	} else {
		s.told += rep.Consumed
	}
	if rep.Done {
		m.stats.completed.Add(1)
	}
	resp := &TellResponse{
		Batch:       req.Batch,
		Step:        s.told,
		Consumed:    rep.Consumed,
		Pending:     rep.Pending,
		Flagged:     rep.Flagged,
		Quarantined: rep.Quarantined,
		Remeasure:   rep.Remeasure,
		Completed:   rep.Completed,
		Done:        rep.Done,
		Samples:     s.sess.Samples(),
	}
	s.lastBatch, s.lastStep, s.hasLast = req.Batch, prevStep, true
	cached := *resp
	s.lastResp = &cached
	return resp, nil
}

// info renders the session's public state for GET /sessions/{id}/model.
func (s *managed) info() (*SessionInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gone || s.sess == nil {
		return nil, ErrNotFound
	}
	res := s.sess.Result()
	tel := res.Telemetry()
	info := &SessionInfo{
		ID:        s.id,
		Tenant:    s.tenant,
		Strategy:  s.man.Strategy,
		Phase:     s.sess.Phase(),
		Batch:     s.sess.Iteration(),
		Step:      s.told,
		Samples:   s.sess.Samples(),
		NMax:      s.man.NMax,
		Expecting: s.sess.Expecting(),
		Done:      s.sess.Done(),
		LabelCost: res.LabelCost(),
		GuardStats: GuardStats{
			Flagged:     tel.GuardFlagged,
			Quarantined: tel.GuardQuarantined,
			Remeasured:  tel.GuardRemeasured,
		},
	}
	if best := bestIndex(res.TrainY); best >= 0 {
		info.BestY = res.TrainY[best]
		info.BestConfig = append([]int(nil), res.TrainConfigs[best]...)
	}
	return info, nil
}

func bestIndex(y []float64) int {
	best := -1
	for i, v := range y {
		if best < 0 || v < y[best] {
			best = i
		}
	}
	return best
}

// isConflict classifies an error for the HTTP layer.
func isConflict(err error) (*conflictError, bool) {
	var c *conflictError
	if errors.As(err, &c) {
		return c, true
	}
	return nil, false
}

// isClientError reports errors caused by a malformed request rather
// than a server fault.
func isClientError(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "non-finite y") ||
		strings.Contains(msg, "labels told") ||
		strings.Contains(msg, "empty tell") ||
		strings.Contains(msg, "no labels expected") ||
		strings.Contains(msg, "unknown strategy") ||
		strings.HasPrefix(msg, "server: empty space") ||
		strings.Contains(msg, "exceeds pool_size") ||
		strings.HasPrefix(msg, "space:")
}
