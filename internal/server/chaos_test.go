package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// chaosDriver drives one session like api.drive, but wraps every
// operation in client-side faults: each ask is preceded by a doomed
// ask whose connection is dropped before the response is read, each
// tell is preceded by a stalled duplicate that dies halfway through
// its body, and each successful tell is retransmitted verbatim — the
// lost-response retry a real client performs. The protocol absorbs all
// of it: asks are idempotent, a truncated body never reaches the
// session, and the tell cache replays the original response.
type chaosDriver struct {
	t    *testing.T
	a    *api
	id   string
	tcp  string // raw listener address for half-open connections
	dups int    // retransmitted tells
}

// droppedAsk POSTs the ask and severs the connection without reading
// the response, modeling a client that dies between send and receive.
// The server still advances nothing: asking is a read of the pending
// batch.
func (d *chaosDriver) droppedAsk() {
	d.t.Helper()
	conn, err := net.Dial("tcp", d.tcp)
	if err != nil {
		d.t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /sessions/%s/ask HTTP/1.1\r\nHost: chaos\r\nContent-Length: 0\r\n\r\n", d.id)
	// Give the server a beat to process before the hangup lands.
	time.Sleep(5 * time.Millisecond)
	conn.Close()
}

// stalledTell writes the headers and half the tell body, stalls, and
// drops the connection — the mid-flight client crash. The server reads
// a truncated JSON document and must reject it without touching the
// session cursor.
func (d *chaosDriver) stalledTell(req *TellRequest) {
	d.t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		d.t.Fatal(err)
	}
	conn, err := net.Dial("tcp", d.tcp)
	if err != nil {
		d.t.Fatal(err)
	}
	fmt.Fprintf(conn, "POST /sessions/%s/tell HTTP/1.1\r\nHost: chaos\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		d.id, len(body))
	conn.Write(body[:len(body)/2])
	time.Sleep(5 * time.Millisecond)
	conn.Close()
}

// drive runs the session to completion under the fault schedule and
// returns the label curve.
func (d *chaosDriver) drive() []float64 {
	d.t.Helper()
	var curve []float64
	for i := 0; ; i++ {
		d.droppedAsk()
		var ask AskResponse
		if code := d.a.do("POST", "/sessions/"+d.id+"/ask", nil, &ask); code != http.StatusOK {
			d.t.Fatalf("ask: status %d", code)
		}
		if i == 1 {
			// Mid-batch re-ask: the pending batch must come back
			// unchanged, not a fresh draw.
			var again AskResponse
			d.a.do("POST", "/sessions/"+d.id+"/ask", nil, &again)
			if again.Batch != ask.Batch || again.Step != ask.Step || len(again.Configs) != len(ask.Configs) {
				d.t.Fatalf("re-ask drew a different batch: %+v vs %+v", again, ask)
			}
		}
		if ask.Done {
			return curve
		}
		labels := labelConfigs(ask.Configs)
		for _, l := range labels {
			curve = append(curve, l.Y)
		}
		req := &TellRequest{Batch: ask.Batch, Step: ask.Step, Labels: labels}
		d.stalledTell(req)
		var tell, replay TellResponse
		if code := d.a.do("POST", "/sessions/"+d.id+"/tell", req, &tell); code != http.StatusOK {
			d.t.Fatalf("tell: status %d", code)
		}
		// Retransmit as if the response above was lost on the wire.
		if code := d.a.do("POST", "/sessions/"+d.id+"/tell", req, &replay); code != http.StatusOK {
			d.t.Fatalf("retransmit: status %d", code)
		}
		if replay != tell {
			d.t.Fatalf("retransmit diverged: %+v vs %+v", replay, tell)
		}
		d.dups++
		if tell.Done {
			return curve
		}
	}
}

// TestServerChaosClientFaults is the client-fault drill: a session
// driven by a client that drops connections mid-ask, stalls and dies
// mid-tell, and retransmits every tell must converge to exactly the
// curve of an undisturbed client on an identical manifest — every
// fault absorbed by idempotency, none by state corruption.
func TestServerChaosClientFaults(t *testing.T) {
	clean := NewManager(Config{})
	ca := newAPI(t, clean)
	var ref CreateResponse
	if code := ca.do("POST", "/sessions", testCreate("calm"), &ref); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	want := ca.drive(ref.ID)

	m := NewManager(Config{})
	a := newAPI(t, m)
	var created CreateResponse
	if code := a.do("POST", "/sessions", testCreate("chaos"), &created); code != http.StatusCreated {
		t.Fatalf("create: status %d", code)
	}
	d := &chaosDriver{t: t, a: a, id: created.ID,
		tcp: a.srv.Listener.Addr().String()}
	got := d.drive()

	if len(got) != len(want) {
		t.Fatalf("chaotic client drove %d labels, undisturbed %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("curves diverge at %d: %v vs %v", i, got[i], want[i])
		}
	}

	var ci, wi SessionInfo
	a.do("GET", "/sessions/"+created.ID+"/model", nil, &ci)
	ca.do("GET", "/sessions/"+ref.ID+"/model", nil, &wi)
	if !ci.Done || ci.Samples != wi.Samples || ci.BestY != wi.BestY {
		t.Fatalf("final state diverged: %+v vs %+v", ci, wi)
	}

	var stats Stats
	a.do("GET", "/stats", nil, &stats)
	if stats.TellReplays != int64(d.dups) {
		t.Errorf("TellReplays = %d, want %d (one per retransmission)", stats.TellReplays, d.dups)
	}
	if stats.TellConflicts != 0 {
		t.Errorf("TellConflicts = %d: a fault leaked into the cursor", stats.TellConflicts)
	}
}
