// Package gp implements Gaussian-process regression — the surrogate the
// paper's §II-B discusses and rejects in favour of random forests. It is
// included as a comparator: GPs "usually work well for numerical
// features but not categorical features and fit only noise-free or
// Gaussian noise observations". The ablation benchmarks make that
// comparison concrete on this repo's mixed spaces.
//
// The model is standard exact GP regression (Rasmussen & Williams ch. 2)
// with a product kernel over dimensions: a squared-exponential kernel on
// standardized numeric features and an overlap kernel (1 if equal, δ
// otherwise) on categorical features. Hyperparameters are chosen by a
// coarse grid search over the log marginal likelihood unless fixed in
// the Config. Training is O(n³) in the number of labeled samples, which
// is fine at active-learning scales (n ≤ 500).
package gp

import (
	"fmt"
	"math"

	"repro/internal/linalg"
	"repro/internal/rng"
	"repro/internal/space"
)

// Config controls GP fitting. Zero values mean "choose automatically":
// length scale 1 (on standardized inputs), signal variance Var(y), noise
// variance 1% of Var(y), categorical δ 0.5, with a marginal-likelihood
// grid search refining length scale and noise.
type Config struct {
	// LengthScale is the shared SE length scale on standardized numeric
	// inputs; 0 enables the grid search.
	LengthScale float64

	// NoiseVar is the observation noise variance relative to Var(y);
	// 0 enables the grid search.
	NoiseVar float64

	// CatDelta is the kernel value for unequal categorical levels
	// (0 < δ < 1); 0 defaults to 0.5.
	CatDelta float64
}

// GP is a fitted Gaussian-process regressor. It satisfies the
// core.Model surrogate interface.
type GP struct {
	features []space.Feature
	cfg      Config

	// standardization of inputs (numeric dims) and targets.
	xMean, xStd []float64
	yMean, yStd float64

	X     [][]float64 // standardized training inputs
	alpha []float64   // (K+σ²I)⁻¹ y_std
	chol  [][]float64 // Cholesky factor of K+σ²I

	lengthScale float64
	noiseVar    float64 // in standardized-y units
	catDelta    float64
	lml         float64
}

// Fit trains a GP on (X, y) with the column description features. r is
// accepted for interface symmetry with forest.Fit; exact GP fitting is
// deterministic and ignores it.
func Fit(X [][]float64, y []float64, features []space.Feature, cfg Config, r *rng.RNG) (*GP, error) {
	_ = r
	n := len(X)
	if n == 0 {
		return nil, fmt.Errorf("gp: empty training set")
	}
	if n != len(y) {
		return nil, fmt.Errorf("gp: len(X)=%d but len(y)=%d", n, len(y))
	}
	d := len(features)
	if d == 0 {
		return nil, fmt.Errorf("gp: no features")
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("gp: row %d has %d columns, want %d", i, len(row), d)
		}
	}

	g := &GP{features: features, cfg: cfg}
	g.catDelta = cfg.CatDelta
	if g.catDelta <= 0 || g.catDelta >= 1 {
		g.catDelta = 0.5
	}

	// Standardize inputs per numeric dimension and the targets.
	g.xMean = make([]float64, d)
	g.xStd = make([]float64, d)
	for j := 0; j < d; j++ {
		if features[j].Kind == space.FeatCategorical {
			g.xStd[j] = 1
			continue
		}
		var mean float64
		for i := 0; i < n; i++ {
			mean += X[i][j]
		}
		mean /= float64(n)
		var varr float64
		for i := 0; i < n; i++ {
			dv := X[i][j] - mean
			varr += dv * dv
		}
		varr /= float64(n)
		g.xMean[j] = mean
		g.xStd[j] = math.Sqrt(varr)
		if g.xStd[j] == 0 {
			g.xStd[j] = 1
		}
	}
	for _, v := range y {
		g.yMean += v
	}
	g.yMean /= float64(n)
	for _, v := range y {
		dv := v - g.yMean
		g.yStd += dv * dv
	}
	g.yStd = math.Sqrt(g.yStd / float64(n))
	if g.yStd == 0 {
		g.yStd = 1
	}

	g.X = make([][]float64, n)
	for i := range X {
		g.X[i] = g.standardize(X[i])
	}
	ys := make([]float64, n)
	for i := range y {
		ys[i] = (y[i] - g.yMean) / g.yStd
	}

	// Hyperparameter candidates: fixed values or a coarse grid.
	lengthScales := []float64{cfg.LengthScale}
	if cfg.LengthScale <= 0 {
		lengthScales = []float64{0.3, 0.7, 1.5, 3}
	}
	noises := []float64{cfg.NoiseVar}
	if cfg.NoiseVar <= 0 {
		noises = []float64{1e-4, 1e-2, 1e-1}
	}

	bestLML := math.Inf(-1)
	var fitted bool
	for _, ls := range lengthScales {
		for _, nv := range noises {
			chol, alpha, lml, err := g.factorize(ys, ls, nv)
			if err != nil {
				continue
			}
			if lml > bestLML {
				bestLML = lml
				g.chol, g.alpha = chol, alpha
				g.lengthScale, g.noiseVar = ls, nv
				g.lml = lml
				fitted = true
			}
		}
	}
	if !fitted {
		return nil, fmt.Errorf("gp: no hyperparameter candidate produced a positive-definite kernel")
	}
	return g, nil
}

// standardize maps a raw feature vector to kernel space.
func (g *GP) standardize(x []float64) []float64 {
	out := make([]float64, len(x))
	for j := range x {
		if g.features[j].Kind == space.FeatCategorical {
			out[j] = x[j]
			continue
		}
		out[j] = (x[j] - g.xMean[j]) / g.xStd[j]
	}
	return out
}

// kernel evaluates the product kernel between standardized points.
func (g *GP) kernel(a, b []float64, ls float64) float64 {
	k := 1.0
	for j := range a {
		if g.features[j].Kind == space.FeatCategorical {
			if a[j] != b[j] {
				k *= g.catDelta
			}
			continue
		}
		dv := (a[j] - b[j]) / ls
		k *= math.Exp(-0.5 * dv * dv)
	}
	return k
}

// factorize builds K+σ²I for the candidate hyperparameters, returning
// the Cholesky factor, alpha and log marginal likelihood.
func (g *GP) factorize(ys []float64, ls, noiseVar float64) (chol [][]float64, alpha []float64, lml float64, err error) {
	n := len(g.X)
	K := make([][]float64, n)
	for i := range K {
		K[i] = make([]float64, n)
		for j := 0; j <= i; j++ {
			v := g.kernel(g.X[i], g.X[j], ls)
			K[i][j] = v
			K[j][i] = v
		}
	}
	jitter := noiseVar
	if jitter < 1e-10 {
		jitter = 1e-10
	}
	for attempt := 0; attempt < 4; attempt++ {
		for i := range K {
			K[i][i] = 1 + jitter
		}
		chol, err = linalg.Cholesky(K)
		if err == nil {
			break
		}
		jitter *= 10
	}
	if err != nil {
		return nil, nil, 0, err
	}
	alpha = linalg.CholeskySolve(chol, ys)
	// log p(y) = -0.5 yᵀα - 0.5 log|K| - n/2 log 2π
	lml = -0.5*linalg.Dot(ys, alpha) - 0.5*linalg.LogDetFromChol(chol) - float64(n)/2*math.Log(2*math.Pi)
	return chol, alpha, lml, nil
}

// Predict returns the posterior mean at x (raw feature space).
func (g *GP) Predict(x []float64) float64 {
	mu, _ := g.PredictWithUncertainty(x)
	return mu
}

// PredictWithUncertainty returns the posterior mean and the latent
// standard deviation at x.
func (g *GP) PredictWithUncertainty(x []float64) (mu, sigma float64) {
	xs := g.standardize(x)
	n := len(g.X)
	ks := make([]float64, n)
	for i := range g.X {
		ks[i] = g.kernel(xs, g.X[i], g.lengthScale)
	}
	muStd := linalg.Dot(ks, g.alpha)
	v := linalg.SolveLower(g.chol, ks)
	varStd := 1 - linalg.Dot(v, v)
	if varStd < 0 {
		varStd = 0
	}
	return muStd*g.yStd + g.yMean, math.Sqrt(varStd) * g.yStd
}

// PredictObservedWithUncertainty returns the posterior mean and the
// *observation* standard deviation at x — the latent variance plus the
// fitted noise variance. Use this when comparing against noisy
// measurements (calibration); the latent sigma of
// PredictWithUncertainty is the right signal for active-learning
// acquisition, where re-sampling a well-understood point only to fight
// label noise is wasted budget.
func (g *GP) PredictObservedWithUncertainty(x []float64) (mu, sigma float64) {
	mu, latent := g.PredictWithUncertainty(x)
	latentStd := latent / g.yStd
	varStd := latentStd*latentStd + g.noiseVar
	return mu, math.Sqrt(varStd) * g.yStd
}

// PredictBatch predicts every row of X; together with Predict it
// satisfies the core.Model interface.
func (g *GP) PredictBatch(X [][]float64) (mu, sigma []float64) {
	mu = make([]float64, len(X))
	sigma = make([]float64, len(X))
	for i, x := range X {
		mu[i], sigma[i] = g.PredictWithUncertainty(x)
	}
	return mu, sigma
}

// LogMarginalLikelihood returns the selected model's log marginal
// likelihood (standardized-target units).
func (g *GP) LogMarginalLikelihood() float64 { return g.lml }

// Hyperparameters returns the selected length scale and noise variance.
func (g *GP) Hyperparameters() (lengthScale, noiseVar float64) {
	return g.lengthScale, g.noiseVar
}
