package gp

import (
	"math"
	"testing"

	"repro/internal/forest"
	"repro/internal/rng"
	"repro/internal/space"
)

func numFeatures(n int) []space.Feature {
	fs := make([]space.Feature, n)
	for i := range fs {
		fs[i] = space.Feature{Name: string(rune('a' + i)), Kind: space.FeatNumeric}
	}
	return fs
}

func TestFitErrors(t *testing.T) {
	fs := numFeatures(1)
	if _, err := Fit(nil, nil, fs, Config{}, nil); err == nil {
		t.Fatal("empty accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, fs, Config{}, nil); err == nil {
		t.Fatal("mismatch accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, nil, Config{}, nil); err == nil {
		t.Fatal("no features accepted")
	}
	if _, err := Fit([][]float64{{1, 2}}, []float64{1}, fs, Config{}, nil); err == nil {
		t.Fatal("ragged row accepted")
	}
}

func TestInterpolatesSmoothFunction(t *testing.T) {
	r := rng.New(1)
	n := 60
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		v := r.Float64() * 6
		X[i] = []float64{v}
		y[i] = math.Sin(v)
	}
	g, err := Fit(X, y, numFeatures(1), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		v := r.Float64() * 6
		got := g.Predict([]float64{v})
		if math.Abs(got-math.Sin(v)) > 0.1 {
			t.Fatalf("sin(%v): predicted %v", v, got)
		}
	}
}

func TestUncertaintySmallAtDataLargeAway(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 1, 0, 1}
	g, err := Fit(X, y, numFeatures(1), Config{LengthScale: 1, NoiseVar: 1e-4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, atData := g.PredictWithUncertainty([]float64{1})
	_, away := g.PredictWithUncertainty([]float64{50})
	if atData >= away {
		t.Fatalf("sigma at data %v >= away %v", atData, away)
	}
	if away <= 0 {
		t.Fatal("no extrapolation uncertainty")
	}
}

func TestMeanRevertsToPrior(t *testing.T) {
	// Far from data the posterior mean returns to the target mean.
	X := [][]float64{{0}, {1}}
	y := []float64{10, 20}
	g, err := Fit(X, y, numFeatures(1), Config{LengthScale: 1, NoiseVar: 1e-4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	far := g.Predict([]float64{1000})
	if math.Abs(far-15) > 0.5 {
		t.Fatalf("far prediction %v, want prior mean 15", far)
	}
}

func TestGridSearchPicksBetterLML(t *testing.T) {
	r := rng.New(2)
	n := 50
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		v := r.Float64() * 10
		X[i] = []float64{v}
		y[i] = math.Sin(v) + 0.01*r.Norm()
	}
	auto, err := Fit(X, y, numFeatures(1), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// A deliberately bad fixed configuration.
	bad, err := Fit(X, y, numFeatures(1), Config{LengthScale: 100, NoiseVar: 0.5}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if auto.LogMarginalLikelihood() <= bad.LogMarginalLikelihood() {
		t.Fatalf("grid search LML %v not better than bad %v", auto.LogMarginalLikelihood(), bad.LogMarginalLikelihood())
	}
}

func TestCategoricalKernel(t *testing.T) {
	fs := []space.Feature{
		{Name: "x", Kind: space.FeatNumeric},
		{Name: "c", Kind: space.FeatCategorical, NumCategories: 3},
	}
	var X [][]float64
	var y []float64
	r := rng.New(3)
	for i := 0; i < 90; i++ {
		c := float64(r.Intn(3))
		v := r.Float64()
		X = append(X, []float64{v, c})
		y = append(y, v+5*c)
	}
	g, err := Fit(X, y, fs, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	p0 := g.Predict([]float64{0.5, 0})
	p2 := g.Predict([]float64{0.5, 2})
	if p2-p0 < 5 {
		t.Fatalf("categorical effect not learned: %v vs %v", p0, p2)
	}
}

func TestConstantTarget(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []float64{7, 7, 7}
	g, err := Fit(X, y, numFeatures(1), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Predict([]float64{2}); math.Abs(got-7) > 1e-6 {
		t.Fatalf("constant prediction %v", got)
	}
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	r := rng.New(4)
	var X [][]float64
	var y []float64
	for i := 0; i < 40; i++ {
		v := r.Float64()
		X = append(X, []float64{v})
		y = append(y, v*v)
	}
	g, err := Fit(X, y, numFeatures(1), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := g.PredictBatch(X)
	for i := range X {
		m, s := g.PredictWithUncertainty(X[i])
		if mu[i] != m || sigma[i] != s {
			t.Fatal("batch mismatch")
		}
	}
}

func TestDuplicateInputsWithNoise(t *testing.T) {
	// Identical x with different y (noisy measurements) must not break
	// the factorization (the noise/jitter term keeps K PD).
	X := [][]float64{{1}, {1}, {1}, {2}}
	y := []float64{1.0, 1.1, 0.9, 5}
	g, err := Fit(X, y, numFeatures(1), Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Predict([]float64{1}); math.Abs(got-1) > 0.3 {
		t.Fatalf("noisy duplicate prediction %v", got)
	}
}

func TestRFBeatsGPOnTreeStructuredSpace(t *testing.T) {
	// The paper's §II-B argument: on a mixed space with interactions and
	// multiplicative structure (like compilation-parameter surfaces),
	// random forests outperform a plain GP. Construct such a surface.
	fs := []space.Feature{
		{Name: "tile", Kind: space.FeatNumeric},
		{Name: "mode", Kind: space.FeatCategorical, NumCategories: 4},
		{Name: "u", Kind: space.FeatNumeric},
	}
	r := rng.New(5)
	gen := func(n int) ([][]float64, []float64) {
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			tile := float64(int(1) << uint(r.Intn(8))) // 1..128: multiplicative scale
			mode := float64(r.Intn(4))
			u := float64(1 + r.Intn(16))
			X[i] = []float64{tile, mode, u}
			t := 1 / (1 + tile/32)
			if tile > 64 {
				t *= 3 // capacity cliff
			}
			if mode == 2 {
				t *= 0.5
			}
			if u > 8 && mode != 1 {
				t *= 1.8 // interaction
			}
			y[i] = t
		}
		return X, y
	}
	X, y := gen(250)
	Xt, yt := gen(300)

	g, err := Fit(X, y, fs, Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	f, err := forest.Fit(X, y, fs, forest.Config{NumTrees: 64}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	rmse := func(pred []float64) float64 {
		var sse float64
		for i := range yt {
			d := pred[i] - yt[i]
			sse += d * d
		}
		return math.Sqrt(sse / float64(len(yt)))
	}
	gpMu, _ := g.PredictBatch(Xt)
	rfMu, _ := f.PredictBatch(Xt)
	if rmse(rfMu) >= rmse(gpMu) {
		t.Fatalf("RF %v not better than GP %v on tree-structured space", rmse(rfMu), rmse(gpMu))
	}
}
