package fleet

// The coordinator's write-ahead journal. Every durable state
// transition — job submission, lease grant, completion, permanent
// failure, job cancellation and key release — is appended as one
// checksummed record (runstate.AppendLog framing) and fsync'd before
// the transition is acknowledged, so a coordinator killed at any
// instant can be restarted from the journal directory with its task
// state reconstructed:
//
//   - completed tasks keep their checksummed payloads and are never
//     re-leased (the paper's premise: labels are the expensive
//     resource, a paid-for evaluation must survive any process death);
//   - leased-but-unfinished tasks are conservatively re-queued (the
//     lessee may have died with the coordinator, and re-execution is
//     safe because tasks are deterministic and ingestion idempotent);
//   - queued tasks come back queued, in submission order;
//   - released jobs (results already collected by their submitter)
//     stay gone, so re-submitting the same coordinates later works.
//
// Record grammar (JSON payloads inside the al1 frame, one op each):
//
//	{"op":"submit","job":J,"specs":[TaskSpec...]}   job J enqueued
//	{"op":"lease","key":K,"worker":W}               one attempt granted
//	{"op":"complete","key":K,"worker":W,
//	 "payload":P,"sum":S,"elapsed_ns":E}            first valid result
//	{"op":"fail","key":K,"msg":M,"attempts":A}      permanent failure
//	{"op":"cancel","job":J}                         job canceled
//	{"op":"release","job":J}                        results collected
//
// Journal files live in the configured directory as seg-<n>.wal
// segments: each boot replays every *.wal in name order, then opens a
// fresh segment for its own appends. When the last live job is
// released the state is empty by construction, so the segments are
// deleted and numbering restarts — the journal never grows across
// campaigns, only within one.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/runstate"
)

// Journal op codes.
const (
	opSubmit   = "submit"
	opLease    = "lease"
	opComplete = "complete"
	opFail     = "fail"
	opCancel   = "cancel"
	opRelease  = "release"
)

// journalRecord is the wire form of one journal entry. Field presence
// depends on Op (see the grammar above).
type journalRecord struct {
	Op    string     `json:"op"`
	Job   string     `json:"job,omitempty"`
	Specs []TaskSpec `json:"specs,omitempty"`

	Key       string          `json:"key,omitempty"`
	Worker    string          `json:"worker,omitempty"`
	Payload   json.RawMessage `json:"payload,omitempty"`
	Sum       uint64          `json:"sum,omitempty"`
	ElapsedNS int64           `json:"elapsed_ns,omitempty"`

	Msg      string `json:"msg,omitempty"`
	Attempts int    `json:"attempts,omitempty"`
}

// journal owns the coordinator's current WAL segment. All methods are
// called under the coordinator's mutex.
type journal struct {
	dir  string
	seq  int // current segment number
	log  *runstate.AppendLog
	logf func(format string, args ...interface{})
}

func segName(n int) string { return fmt.Sprintf("seg-%06d.wal", n) }

// openJournal creates the directory if needed and opens a fresh
// segment numbered after the highest existing one.
func openJournal(dir string, after int, logf func(string, ...interface{})) (*journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: creating journal dir: %w", err)
	}
	j := &journal{dir: dir, seq: after + 1, logf: logf}
	log, err := runstate.OpenAppendLog(filepath.Join(dir, segName(j.seq)))
	if err != nil {
		return nil, err
	}
	j.log = log
	return j, nil
}

// append journals one record. A write failure is reported to the
// caller; the coordinator surfaces it on the transition that needed it
// (durability must not be silently lost).
func (j *journal) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: encoding journal record: %w", err)
	}
	if err := j.log.Append(data); err != nil {
		return fmt.Errorf("fleet: journal append: %w", err)
	}
	return nil
}

// close closes the current segment.
func (j *journal) close() {
	if j.log != nil {
		_ = j.log.Close()
		j.log = nil
	}
}

// compact is called when the coordinator's state is empty (no live
// tasks, no unreleased jobs): everything in the journal is history, so
// the segments are deleted and a fresh one opened. A crash anywhere in
// the middle is safe — replaying any surviving subset of segments
// still reconstructs the empty state, because every job in them has
// its release record or is gone entirely.
func (j *journal) compact() {
	segs, err := journalSegments(j.dir)
	if err != nil {
		return
	}
	j.close()
	for _, s := range segs {
		_ = os.Remove(filepath.Join(j.dir, s))
	}
	j.seq++
	log, err := runstate.OpenAppendLog(filepath.Join(j.dir, segName(j.seq)))
	if err != nil {
		if j.logf != nil {
			j.logf("fleet: journal compaction lost the log: %v", err)
		}
		return
	}
	j.log = log
}

// journalSegments lists the directory's *.wal files in name order —
// segment numbers are zero-padded, so lexicographic is boot order.
func journalSegments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("fleet: reading journal dir: %w", err)
	}
	var segs []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".wal" {
			segs = append(segs, e.Name())
		}
	}
	sort.Strings(segs)
	return segs, nil
}

// recovery is the state reconstructed from a journal replay.
type recovery struct {
	tasks   map[string]*task
	order   []*task          // live tasks in submission order
	jobs    map[string][]*task // unreleased jobs → their tasks in order
	jobFPs  map[string]uint64  // job → spec fingerprint
	lastSeg int                // highest segment number seen
	autoSeq int64              // highest auto job number seen

	completed []string // keys finished with a valid payload
	requeued  []string // keys that were mid-lease and bounced back
	torn      int      // bytes skipped across all segments
	corrupt   int      // completion records dropped by payload checksum
}

// replayJournal scans every *.wal segment in dir and folds the records
// into a recovery. A torn tail in any segment is skipped with its byte
// count recorded; records after the tear (there are none under the
// crash model, but bit rot happens) are abandoned with it.
func replayJournal(dir string, logf func(string, ...interface{})) (*recovery, error) {
	rec := &recovery{
		tasks:  make(map[string]*task),
		jobs:   make(map[string][]*task),
		jobFPs: make(map[string]uint64),
	}
	segs, err := journalSegments(dir)
	if err != nil {
		return nil, err
	}
	for _, seg := range segs {
		var n int
		if _, err := fmt.Sscanf(seg, "seg-%d.wal", &n); err == nil && n > rec.lastSeg {
			rec.lastSeg = n
		}
		records, torn, err := runstate.ReplayLog(filepath.Join(dir, seg))
		if err != nil {
			return nil, err
		}
		if torn > 0 {
			rec.torn += torn
			if logf != nil {
				logf("fleet: journal %s: skipping %d-byte torn tail", seg, torn)
			}
		}
		for _, raw := range records {
			var jr journalRecord
			if err := json.Unmarshal(raw, &jr); err != nil {
				// A framed-but-unparsable record is journal damage
				// beyond the crash model; stop trusting this segment.
				if logf != nil {
					logf("fleet: journal %s: undecodable record skipped: %v", seg, err)
				}
				continue
			}
			rec.apply(&jr, logf)
		}
	}
	return rec, nil
}

// apply folds one journal record into the recovery state. Records that
// reference unknown keys or jobs (possible after a skipped tear) are
// dropped — the conservative direction, since an unknown completion
// cannot be matched to a task anyway.
func (r *recovery) apply(jr *journalRecord, logf func(string, ...interface{})) {
	switch jr.Op {
	case opSubmit:
		var n int64
		if _, err := fmt.Sscanf(jr.Job, "job-%d", &n); err == nil && n > r.autoSeq {
			r.autoSeq = n
		}
		if _, dup := r.jobs[jr.Job]; dup {
			return
		}
		var ts []*task
		ok := true
		for i := range jr.Specs {
			if _, live := r.tasks[jr.Specs[i].Key]; live {
				ok = false
				break
			}
		}
		if !ok {
			if logf != nil {
				logf("fleet: journal: submit %s collides with live keys; dropped", jr.Job)
			}
			return
		}
		for i := range jr.Specs {
			t := &task{spec: jr.Specs[i], state: taskQueued}
			r.tasks[t.spec.Key] = t
			r.order = append(r.order, t)
			ts = append(ts, t)
		}
		r.jobs[jr.Job] = ts
		r.jobFPs[jr.Job] = specsFingerprint(jr.Specs)
	case opLease:
		if t := r.tasks[jr.Key]; t != nil && t.state != taskFinished {
			t.state = taskLeased
			t.attempts++
			t.worker = jr.Worker
		}
	case opComplete:
		t := r.tasks[jr.Key]
		if t == nil || t.state == taskFinished {
			return
		}
		if Checksum(jr.Payload) != jr.Sum {
			r.corrupt++
			if logf != nil {
				logf("fleet: journal: completion for %s fails its checksum; task re-queued", jr.Key)
			}
			t.state = taskQueued
			t.worker = ""
			return
		}
		t.state = taskFinished
		t.res = TaskResult{
			Key: jr.Key, Payload: jr.Payload, Worker: jr.Worker,
			Attempts: t.attempts, Elapsed: time.Duration(jr.ElapsedNS),
		}
	case opFail:
		if t := r.tasks[jr.Key]; t != nil && t.state != taskFinished {
			t.state = taskFinished
			t.res = TaskResult{Key: jr.Key, Attempts: jr.Attempts, Failed: jr.Msg}
		}
	case opCancel:
		for _, t := range r.jobs[jr.Job] {
			if t.state != taskFinished {
				t.state = taskFinished
				t.res = TaskResult{Key: t.spec.Key, Attempts: t.attempts, Failed: "canceled"}
			}
		}
	case opRelease:
		for _, t := range r.jobs[jr.Job] {
			delete(r.tasks, t.spec.Key)
			t.state = taskFinished // mark for order-slice filtering
			t.released = true
		}
		delete(r.jobs, jr.Job)
		delete(r.jobFPs, jr.Job)
	default:
		if logf != nil {
			logf("fleet: journal: unknown op %q skipped", jr.Op)
		}
	}
}

// finish settles the replayed state for a fresh boot: in-flight leases
// bounce back to the queue (their lessees died with, or before, the
// old coordinator) and the completed/requeued key lists are collected
// for the recovery report.
func (r *recovery) finish() {
	for _, t := range r.order {
		if t.released {
			continue
		}
		switch t.state {
		case taskLeased:
			t.state = taskQueued
			t.worker = ""
			r.requeued = append(r.requeued, t.spec.Key)
		case taskFinished:
			if t.res.Failed == "" {
				r.completed = append(r.completed, t.spec.Key)
			}
		}
	}
}

// specsFingerprint digests a job's specs so a reattach can verify it
// is resuming the same work, not colliding with a different job that
// reused the ID.
func specsFingerprint(specs []TaskSpec) uint64 {
	var buf []byte
	for i := range specs {
		b, _ := json.Marshal(&specs[i])
		buf = append(buf, b...)
		buf = append(buf, '\n')
	}
	return Checksum(buf)
}
