package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// Runner executes leased tasks. The fleet package defines the
// transport and the lease protocol; what a cell or an evaluation
// actually does is injected by the experiment layer (see
// experiment.NewFleetRunner), keeping the dependency arrow pointing
// one way.
type Runner interface {
	// RunCell executes one campaign cell. Implementations must return
	// a result whose bytes depend only on the task spec (and report
	// cancellation via ErrKindCanceled), so re-executions after a
	// lease bounce are bit-identical.
	RunCell(ctx context.Context, t *CellTask) *CellResult

	// RunEval measures the task's configurations in order from the
	// carried generator state.
	RunEval(ctx context.Context, t *EvalTask) *EvalResult
}

// ErrKilled is returned by Worker.Run after Kill: the worker died
// abruptly, abandoning its leases. It wraps context.Canceled so the
// cli exit-code contract classifies it as an interrupt.
var ErrKilled = fmt.Errorf("fleet: worker killed: %w", context.Canceled)

// Worker is one evaluator process: it registers with a coordinator,
// leases tasks, heartbeats while executing, and reports results (or
// failures) back. Cancelling Run's context drains gracefully — no new
// leases, in-flight tasks finish within DrainTimeout, then the worker
// deregisters. Kill abandons everything mid-lease, the crash the
// coordinator's lease expiry exists to absorb.
type Worker struct {
	// Coordinator is the base URL, e.g. "http://127.0.0.1:9090".
	Coordinator string

	// Name labels the worker in coordinator logs; default "evald".
	Name string

	// Runner executes the leased tasks. Required.
	Runner Runner

	// Chaos injects process-level faults for fleet drills and the
	// equivalence gates. Zero value injects nothing.
	Chaos WorkerChaos

	// Slots is the number of concurrent leases; <= 0 means 1.
	Slots int

	// DrainTimeout bounds the graceful drain; <= 0 defaults to 30s.
	// Past it, in-flight tasks are cancelled and abandoned.
	DrainTimeout time.Duration

	// Client overrides the HTTP client (tests inject short timeouts).
	Client *http.Client

	// Logf, when set, receives worker events.
	Logf func(format string, args ...interface{})

	// OnLease, when set, is called with each leased task key before
	// execution — a test hook for killing a worker mid-lease.
	OnLease func(key string)

	initOnce sync.Once
	inj      *chaosInjector
	killCh   chan struct{}
	killOnce sync.Once

	mu          sync.Mutex
	leases      map[string]context.CancelFunc
	frozenUntil time.Time
}

func (w *Worker) init() {
	w.initOnce.Do(func() {
		w.killCh = make(chan struct{})
		w.leases = make(map[string]context.CancelFunc)
		if w.Chaos.Active() {
			w.inj = newChaosInjector(w.Chaos)
		}
	})
}

func (w *Worker) logf(format string, args ...interface{}) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

func (w *Worker) name() string {
	if w.Name == "" {
		return "evald"
	}
	return w.Name
}

func (w *Worker) slots() int {
	if w.Slots <= 0 {
		return 1
	}
	return w.Slots
}

func (w *Worker) drainTimeout() time.Duration {
	if w.DrainTimeout <= 0 {
		return 30 * time.Second
	}
	return w.DrainTimeout
}

func (w *Worker) client() *http.Client {
	if w.Client != nil {
		return w.Client
	}
	return &http.Client{Timeout: 10 * time.Second}
}

// Kill makes the worker die on the spot: heartbeats stop, in-flight
// executions are cancelled and never reported, Run returns ErrKilled.
// The coordinator recovers the abandoned leases by expiry.
func (w *Worker) Kill() {
	w.init()
	w.killOnce.Do(func() { close(w.killCh) })
}

func (w *Worker) killed() bool {
	select {
	case <-w.killCh:
		return true
	default:
		return false
	}
}

// freeze stops the whole worker — heartbeats included — until now+d,
// modeling a frozen machine rather than a slow evaluation.
func (w *Worker) freeze(d time.Duration) {
	w.mu.Lock()
	defer w.mu.Unlock()
	until := time.Now().Add(d)
	if until.After(w.frozenUntil) {
		w.frozenUntil = until
	}
}

func (w *Worker) frozen() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return time.Now().Before(w.frozenUntil)
}

func (w *Worker) leaseKeys() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	keys := make([]string, 0, len(w.leases))
	for k := range w.leases {
		keys = append(keys, k)
	}
	return keys
}

func (w *Worker) cancelLease(key string) {
	w.mu.Lock()
	cancel := w.leases[key]
	w.mu.Unlock()
	if cancel != nil {
		w.logf("fleet: abandoning dropped lease %s", key)
		cancel()
	}
}

// Run is the worker's lifetime: register (retrying while the
// coordinator is unreachable, so a resident worker survives
// coordinator restarts), serve leases, re-register when the
// coordinator forgot us, drain on cancellation. It returns nil after
// a clean drain, ErrKilled after Kill, and a context-wrapping error
// when the drain exceeded its budget — matching the cli exit-code
// contract (0 / 130).
func (w *Worker) Run(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if w.Runner == nil {
		return errors.New("fleet: worker has no runner")
	}
	w.init()

	// hardCtx governs in-flight executions: it outlives ctx so a drain
	// can finish its leases, and dies on Kill or drain timeout.
	hardCtx, hardCancel := context.WithCancel(context.Background())
	defer hardCancel()
	var forced atomic.Bool
	go func() {
		select {
		case <-hardCtx.Done():
			return
		case <-w.killCh:
			hardCancel()
			return
		case <-ctx.Done():
		}
		t := time.NewTimer(w.drainTimeout())
		defer t.Stop()
		select {
		case <-hardCtx.Done():
		case <-w.killCh:
			hardCancel()
		case <-t.C:
			forced.Store(true)
			w.logf("fleet: drain exceeded %v, abandoning in-flight leases", w.drainTimeout())
			hardCancel()
		}
	}()

	for {
		id, params, err := w.register(ctx)
		if err != nil {
			if w.killed() {
				return ErrKilled
			}
			// Shutdown while idle and unregistered: a clean exit.
			return nil
		}
		again := w.serve(ctx, hardCtx, id, params)
		if again {
			continue
		}
		if w.killed() {
			return ErrKilled
		}
		if forced.Load() {
			return fmt.Errorf("fleet: drain exceeded %v: %w", w.drainTimeout(), context.Canceled)
		}
		return nil
	}
}

// registerBackoff schedules a worker's re-registration retries: capped
// exponential with multiplicative jitter drawn from a generator seeded
// by the worker's name. When a restarted coordinator comes back, every
// resident worker notices within the same heartbeat window — without
// jitter they would all retry in lockstep forever (the retry period is
// deterministic), hammering the recovering coordinator as a thundering
// herd. Seeding from the name keeps each worker's schedule unique
// across the fleet yet reproducible in tests.
type registerBackoff struct {
	r    *rng.RNG
	next time.Duration
	max  time.Duration
}

func newRegisterBackoff(name string) *registerBackoff {
	return &registerBackoff{
		r:    rng.New(Checksum([]byte(name))),
		next: 50 * time.Millisecond,
		max:  2 * time.Second,
	}
}

// delay returns the next wait: the current exponential step scaled
// into [0.5x, 1.5x).
func (b *registerBackoff) delay() time.Duration {
	d := time.Duration(float64(b.next) * b.r.Uniform(0.5, 1.5))
	b.next *= 2
	if b.next > b.max {
		b.next = b.max
	}
	return d
}

// register retries until admitted, ctx cancelled, or killed.
func (w *Worker) register(ctx context.Context) (string, Config, error) {
	bo := newRegisterBackoff(w.name())
	warned := false
	for {
		if w.killed() {
			return "", Config{}, ErrKilled
		}
		if err := ctx.Err(); err != nil {
			return "", Config{}, err
		}
		var resp RegisterResponse
		status, err := w.post("/fleet/workers", RegisterRequest{Name: w.name()}, &resp)
		if err == nil && status == http.StatusCreated {
			w.logf("fleet: registered as %s (ttl %dms, heartbeat %dms)",
				resp.Worker, resp.LeaseTTLMS, resp.HeartbeatMS)
			return resp.Worker, Config{
				LeaseTTL:  time.Duration(resp.LeaseTTLMS) * time.Millisecond,
				Heartbeat: time.Duration(resp.HeartbeatMS) * time.Millisecond,
				Poll:      time.Duration(resp.PollMS) * time.Millisecond,
			}, nil
		}
		if !warned {
			w.logf("fleet: coordinator unreachable (%v, status %d), retrying", err, status)
			warned = true
		}
		w.sleep(ctx, bo.delay())
	}
}

// serve runs one registration's lease loops until drain or until the
// coordinator forgets the worker (returns true: re-register).
func (w *Worker) serve(ctx context.Context, hardCtx context.Context, id string, params Config) bool {
	// sctx stops leasing: on drain (ctx) or on a 404 (re-register).
	sctx, scancel := context.WithCancel(ctx)
	defer scancel()
	var reregged atomic.Bool
	trigger := func() {
		if reregged.CompareAndSwap(false, true) {
			scancel()
		}
	}

	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go w.heartbeatLoop(id, params, hbStop, hbDone, trigger)

	var wg sync.WaitGroup
	for i := 0; i < w.slots(); i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.slotLoop(sctx, hardCtx, id, params, trigger)
		}()
	}
	wg.Wait()
	// Keep heartbeating until the slots drained their in-flight
	// leases, then stop the beat and (on a graceful exit) deregister.
	close(hbStop)
	<-hbDone

	if reregged.Load() && !w.killed() {
		return true
	}
	if !w.killed() {
		_, _ = w.post(fmt.Sprintf("/fleet/workers/%s", id), nil, nil)
	}
	return false
}

func (w *Worker) slotLoop(sctx, hardCtx context.Context, id string, params Config, trigger func()) {
	for {
		select {
		case <-sctx.Done():
			return
		case <-w.killCh:
			return
		default:
		}
		if w.frozen() {
			w.sleep(sctx, 10*time.Millisecond)
			continue
		}
		spec, status, err := w.lease(id)
		if err != nil {
			w.sleep(sctx, params.Poll)
			continue
		}
		if status == http.StatusNotFound {
			trigger()
			return
		}
		if spec == nil {
			if status == http.StatusServiceUnavailable {
				// Coordinator shutting down; poll until it vanishes.
				w.sleep(sctx, params.Poll)
				continue
			}
			w.sleep(sctx, params.Poll)
			continue
		}
		w.execute(hardCtx, id, spec, params)
		if w.killed() {
			return
		}
	}
}

// execute runs one leased task through the chaos injector and the
// runner, then reports the outcome. A cancelled task context (the
// lease was dropped, the worker killed, the drain forced) abandons the
// work silently: the coordinator has already re-queued or failed it.
func (w *Worker) execute(hardCtx context.Context, id string, spec *TaskSpec, params Config) {
	start := time.Now()
	tctx, cancel := context.WithCancel(hardCtx)
	w.mu.Lock()
	w.leases[spec.Key] = cancel
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.leases, spec.Key)
		w.mu.Unlock()
		cancel()
	}()
	if w.OnLease != nil {
		w.OnLease(spec.Key)
	}

	var d chaosDraw
	if w.inj != nil {
		d = w.inj.draw()
	}
	if d.crash {
		w.logf("fleet: chaos crash on lease %s", spec.Key)
		w.Kill()
		return
	}
	if d.hang {
		dur := w.Chaos.HangFor
		if dur <= 0 {
			dur = 3 * params.LeaseTTL
		}
		w.logf("fleet: chaos hang for %v on lease %s", dur, spec.Key)
		w.freeze(dur)
		if !w.sleepHard(tctx, dur) {
			return
		}
	}

	payload, err := w.runTask(tctx, spec, d.panic_)
	if tctx.Err() != nil {
		return
	}
	if err != nil {
		w.postFail(id, spec.Key, err.Error())
		return
	}
	sum := Checksum(payload)
	if d.corrupt && len(payload) > 0 {
		w.logf("fleet: chaos corrupting payload for %s", spec.Key)
		payload = append([]byte(nil), payload...)
		payload[len(payload)/2] ^= 0x20
	}
	w.postComplete(id, spec.Key, payload, sum, time.Since(start))
}

// runTask executes the task body, recovering panics — injected ones
// and real runner bugs — into a reportable failure.
func (w *Worker) runTask(ctx context.Context, spec *TaskSpec, injectPanic bool) (payload []byte, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = fmt.Errorf("panic: %v", v)
		}
	}()
	if injectPanic {
		panic("fleet chaos: injected panic")
	}
	var res interface{}
	switch {
	case spec.Cell != nil:
		res = w.Runner.RunCell(ctx, spec.Cell)
	case spec.Eval != nil:
		res = w.Runner.RunEval(ctx, spec.Eval)
	default:
		return nil, fmt.Errorf("fleet: task %s carries no body", spec.Key)
	}
	return json.Marshal(res)
}

func (w *Worker) heartbeatLoop(id string, params Config, stop, done chan struct{}, trigger func()) {
	defer close(done)
	tk := time.NewTicker(params.Heartbeat)
	defer tk.Stop()
	for {
		select {
		case <-stop:
			return
		case <-w.killCh:
			return
		case <-tk.C:
			if w.frozen() {
				continue
			}
			var resp HeartbeatResponse
			status, err := w.post("/fleet/heartbeat", HeartbeatRequest{Worker: id, Keys: w.leaseKeys()}, &resp)
			if err != nil {
				continue
			}
			if status == http.StatusNotFound {
				trigger()
				return
			}
			for _, key := range resp.Drop {
				w.cancelLease(key)
			}
		}
	}
}

func (w *Worker) lease(id string) (*TaskSpec, int, error) {
	var resp LeaseResponse
	status, err := w.post("/fleet/lease", LeaseRequest{Worker: id}, &resp)
	if err != nil {
		return nil, status, err
	}
	if status == http.StatusOK {
		return resp.Task, status, nil
	}
	return nil, status, nil
}

// postComplete delivers a result, retrying transport errors a few
// times; if delivery keeps failing the lease simply expires and the
// task re-runs elsewhere.
func (w *Worker) postComplete(id, key string, payload []byte, sum uint64, elapsed time.Duration) {
	req := CompleteRequest{Worker: id, Key: key, Payload: payload, Sum: sum, ElapsedMS: elapsed.Milliseconds()}
	for attempt := 0; attempt < 3; attempt++ {
		var resp CompleteResponse
		status, err := w.post("/fleet/complete", req, &resp)
		if err == nil {
			switch resp.Status {
			case StatusCorrupt:
				w.logf("fleet: coordinator rejected payload for %s as corrupt", key)
			case StatusDuplicate:
				w.logf("fleet: completion for %s was a duplicate", key)
			}
			_ = status
			return
		}
		if !w.sleepHardPlain(100 * time.Millisecond) {
			return
		}
	}
	w.logf("fleet: could not deliver result for %s; leaving it to lease expiry", key)
}

func (w *Worker) postFail(id, key, msg string) {
	for attempt := 0; attempt < 3; attempt++ {
		var resp FailResponse
		if _, err := w.post("/fleet/fail", FailRequest{Worker: id, Key: key, Error: msg}, &resp); err == nil {
			return
		}
		if !w.sleepHardPlain(100 * time.Millisecond) {
			return
		}
	}
}

// post sends one JSON request. A nil body sends a DELETE (the only
// bodyless call in the protocol); out may be nil to discard the
// response.
func (w *Worker) post(path string, body, out interface{}) (int, error) {
	base := strings.TrimRight(w.Coordinator, "/")
	var (
		req *http.Request
		err error
	)
	if body == nil {
		req, err = http.NewRequest(http.MethodDelete, base+path, nil)
	} else {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
		req, err = http.NewRequest(http.MethodPost, base+path, &buf)
		if req != nil {
			req.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return 0, err
	}
	resp, err := w.client().Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if out != nil && resp.StatusCode < 300 && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// sleep waits d or until ctx/kill; returns false when interrupted.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-w.killCh:
		return false
	case <-t.C:
		return true
	}
}

// sleepHard waits d or until the task context/kill cuts it short.
func (w *Worker) sleepHard(tctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-tctx.Done():
		return false
	case <-w.killCh:
		return false
	case <-t.C:
		return true
	}
}

// sleepHardPlain waits d or until kill.
func (w *Worker) sleepHardPlain(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-w.killCh:
		return false
	case <-t.C:
		return true
	}
}
