package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/space"
)

// RemoteEvaluator offloads an evaluator's measurements to the fleet as
// batched EvalTasks while keeping the local evaluator as the state
// mirror: each batch ships the mirror's exported noise-stream state,
// the worker measures from exactly that position, and the returned
// final state is restored locally. The stream therefore advances
// bit-identically to in-process evaluation, so checkpoints, resumes
// and any later local measurements are unaffected by where the labels
// were computed.
//
// It implements core.BatchEvaluator (the session driver sends a whole
// ask batch as one task) and core.StatefulEvaluator (delegated to the
// mirror, so snapshotting keeps working).
type RemoteEvaluator struct {
	sub     Submitter
	problem string
	inner   core.StatefulEvaluator

	mu  sync.Mutex // serializes state export/restore around a task
	seq atomic.Int64
}

// NewRemoteEvaluator wraps inner, which must export its generator
// state (core.StatefulEvaluator) — without that the fleet could not
// resume the measurement stream where the local engine left it. sub is
// either the embedded *Coordinator or a *Client against a resident
// fleetd.
func NewRemoteEvaluator(sub Submitter, problem string, inner core.Evaluator) (*RemoteEvaluator, error) {
	st, ok := inner.(core.StatefulEvaluator)
	if !ok {
		return nil, fmt.Errorf("fleet: evaluator for %s does not export state; cannot offload to the fleet", problem)
	}
	if sub == nil {
		return nil, errors.New("fleet: nil submitter")
	}
	return &RemoteEvaluator{sub: sub, problem: problem, inner: st}, nil
}

// Evaluate measures one configuration remotely (a batch of one).
func (e *RemoteEvaluator) Evaluate(ctx context.Context, cfg space.Config) (float64, error) {
	labels, err := e.EvaluateBatch(ctx, []space.Config{cfg})
	if err != nil {
		return 0, err
	}
	return labels[0].Y, nil
}

// EvaluateBatch measures cfgs in order as one fleet task.
func (e *RemoteEvaluator) EvaluateBatch(ctx context.Context, cfgs []space.Config) ([]core.Label, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	configs := make([][]int, len(cfgs))
	for i, c := range cfgs {
		configs[i] = []int(c)
	}
	key := fmt.Sprintf("eval/%s/%d", e.problem, e.seq.Add(1))
	job, _, err := e.sub.SubmitTasks("", []TaskSpec{{
		Key:  key,
		Eval: &EvalTask{Problem: e.problem, State: e.inner.EvaluatorState(), Configs: configs},
	}})
	if err != nil {
		return nil, err
	}
	results, err := job.Wait(ctx)
	if err != nil {
		return nil, err
	}
	if len(results) != 1 {
		return nil, fmt.Errorf("fleet: task %s returned %d results", key, len(results))
	}
	tr := results[0]
	if tr.Failed != "" {
		return nil, fmt.Errorf("fleet: task %s failed: %s", key, tr.Failed)
	}
	var res EvalResult
	if err := json.Unmarshal(tr.Payload, &res); err != nil {
		return nil, fmt.Errorf("fleet: task %s: decoding result: %w", key, err)
	}
	switch res.ErrKind {
	case "":
	case ErrKindCanceled:
		return nil, fmt.Errorf("fleet: task %s: %s: %w", key, res.Err, context.Canceled)
	default:
		return nil, fmt.Errorf("fleet: task %s: %s", key, res.Err)
	}
	if len(res.Ys) != len(cfgs) {
		return nil, fmt.Errorf("fleet: task %s returned %d measurements for %d configs", key, len(res.Ys), len(cfgs))
	}
	if err := e.inner.RestoreEvaluatorState(res.State); err != nil {
		return nil, fmt.Errorf("fleet: task %s: restoring evaluator state: %w", key, err)
	}
	labels := make([]core.Label, len(res.Ys))
	for i, y := range res.Ys {
		labels[i] = core.Label{Y: y}
	}
	return labels, nil
}

// EvaluatorState exports the mirror's stream position.
func (e *RemoteEvaluator) EvaluatorState() rng.State {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.EvaluatorState()
}

// RestoreEvaluatorState rewinds the mirror.
func (e *RemoteEvaluator) RestoreEvaluatorState(st rng.State) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.inner.RestoreEvaluatorState(st)
}
