package fleet

import "context"

// Handle is one submitted job as seen by its submitter: wait for the
// results, and keep the ID for a reattach after a restart.
type Handle interface {
	// ID is the job's durable identifier.
	ID() string

	// Wait blocks for the results. ctx's error means the submitter gave
	// up; ErrCoordinatorClosed means the coordinator went away and the
	// job may be resumable once it is back.
	Wait(ctx context.Context) ([]TaskResult, error)
}

// Submitter is anything that accepts fleet jobs: the in-process
// *Coordinator, or a *Client talking to a resident fleetd over HTTP.
// experiment.RunCampaignFleet and NewRemoteEvaluator take a Submitter,
// so the same campaign code runs against either.
type Submitter interface {
	// SubmitTasks enqueues specs as one job. With a non-empty id it is
	// submit-or-attach: if a live job already holds that id (this
	// submitter's previous incarnation submitted it), the specs
	// fingerprint is verified and the existing job returned with
	// attached=true. An empty id always submits a fresh auto-named job.
	SubmitTasks(id string, specs []TaskSpec) (h Handle, attached bool, err error)

	// SubmitterStats snapshots the coordinator's counters — over the
	// wire for a remote submitter, hence the error.
	SubmitterStats() (Stats, error)
}

// SubmitTasks implements Submitter on the in-process coordinator.
func (c *Coordinator) SubmitTasks(id string, specs []TaskSpec) (Handle, bool, error) {
	if id == "" {
		j, err := c.Submit(specs)
		if err != nil {
			return nil, false, err
		}
		return j, false, nil
	}
	j, attached, err := c.SubmitOrAttach(id, specs)
	if err != nil {
		return nil, false, err
	}
	return j, attached, nil
}

// SubmitterStats implements Submitter on the in-process coordinator.
func (c *Coordinator) SubmitterStats() (Stats, error) { return c.Stats(), nil }
