package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Wire types for the coordinator's worker-facing API. Timings travel
// as integer milliseconds; payload checksums as decimal uint64 (Go's
// encoder round-trips uint64 exactly).

// RegisterRequest admits a worker to the fleet.
type RegisterRequest struct {
	Name string `json:"name"`
}

// RegisterResponse assigns the worker id and the lease timing contract
// the worker must honor.
type RegisterResponse struct {
	Worker      string `json:"worker"`
	LeaseTTLMS  int64  `json:"lease_ttl_ms"`
	HeartbeatMS int64  `json:"heartbeat_ms"`
	PollMS      int64  `json:"poll_ms"`
}

// LeaseRequest asks for one task.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// LeaseResponse carries the leased task; the queue-empty case is a
// bare 204.
type LeaseResponse struct {
	Task *TaskSpec `json:"task"`
}

// HeartbeatRequest renews the worker's registration and its leases.
type HeartbeatRequest struct {
	Worker string   `json:"worker"`
	Keys   []string `json:"keys,omitempty"`
}

// HeartbeatResponse lists leases the worker must abandon.
type HeartbeatResponse struct {
	Drop []string `json:"drop,omitempty"`
}

// CompleteRequest delivers one finished task's payload. Sum is the
// FNV-1a checksum of Payload computed before transmission; ElapsedMS
// the worker-side execution time for utilization accounting.
type CompleteRequest struct {
	Worker    string          `json:"worker"`
	Key       string          `json:"key"`
	Payload   json.RawMessage `json:"payload"`
	Sum       uint64          `json:"sum"`
	ElapsedMS int64           `json:"elapsed_ms"`
}

// CompleteResponse reports how the coordinator ingested the result:
// accepted, duplicate (dropped), corrupt (rejected, lease re-queued)
// or unknown (task released; drop it).
type CompleteResponse struct {
	Status string `json:"status"`
}

// FailRequest reports an execution failure for a held lease.
type FailRequest struct {
	Worker string `json:"worker"`
	Key    string `json:"key"`
	Error  string `json:"error"`
}

// FailResponse reports the lease's fate: requeued, failed (attempts
// exhausted) or stale (not this worker's lease anymore).
type FailResponse struct {
	Status string `json:"status"`
}

// SubmitJobRequest submits specs as one job. A non-empty ID makes the
// call submit-or-attach (the durable resume primitive); empty submits
// a fresh auto-named job.
type SubmitJobRequest struct {
	ID    string     `json:"id,omitempty"`
	Specs []TaskSpec `json:"specs"`
}

// SubmitJobResponse names the job and reports whether the submission
// attached to a surviving job instead of enqueuing a new one.
type SubmitJobResponse struct {
	Job      string `json:"job"`
	Attached bool   `json:"attached,omitempty"`
	Total    int    `json:"total"`
}

// JobStatusResponse is one job's progress. Results is populated only
// once Done — the submitter polls until then, reads the results, and
// releases the job with DELETE.
type JobStatusResponse struct {
	Job       string       `json:"job"`
	Total     int          `json:"total"`
	Remaining int          `json:"remaining"`
	Done      bool         `json:"done"`
	Results   []TaskResult `json:"results,omitempty"`
}

// RecoveredResponse lists the task keys the boot-time journal replay
// restored — the failover drill's evidence that completed cells were
// never re-evaluated.
type RecoveredResponse struct {
	Completed []string `json:"completed,omitempty"`
	Requeued  []string `json:"requeued,omitempty"`
}

type fleetErrorBody struct {
	Error string `json:"error"`
}

// Handler serves the coordinator API:
//
//	POST   /fleet/workers       register
//	DELETE /fleet/workers/{id}  deregister (graceful drain)
//	POST   /fleet/lease         lease one task (204 when idle)
//	POST   /fleet/heartbeat     renew registration + leases
//	POST   /fleet/complete      deliver a result (idempotent per key)
//	POST   /fleet/fail          report an execution failure
//	GET    /fleet/stats         counters
//	GET    /healthz             liveness
//
// and the submitter-facing job API (what fleet.Client speaks):
//
//	POST   /fleet/jobs          submit, or submit-or-attach with an ID
//	GET    /fleet/jobs/{id}     progress; results once done (IDs may contain slashes)
//	DELETE /fleet/jobs/{id}     release the job's keys (idempotent)
//	GET    /fleet/recovered     keys restored by the boot journal replay
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/workers", c.handleRegister)
	mux.HandleFunc("DELETE /fleet/workers/{id}", c.handleDeregister)
	mux.HandleFunc("POST /fleet/lease", c.handleLease)
	mux.HandleFunc("POST /fleet/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fleet/complete", c.handleComplete)
	mux.HandleFunc("POST /fleet/fail", c.handleFail)
	mux.HandleFunc("GET /fleet/stats", c.handleStats)
	mux.HandleFunc("POST /fleet/jobs", c.handleSubmitJob)
	mux.HandleFunc("GET /fleet/jobs/{id...}", c.handleJobStatus)
	mux.HandleFunc("DELETE /fleet/jobs/{id...}", c.handleReleaseJob)
	mux.HandleFunc("GET /fleet/recovered", c.handleRecovered)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fleetWriteJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func fleetWriteJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func fleetWriteError(w http.ResponseWriter, status int, err error) {
	fleetWriteJSON(w, status, fleetErrorBody{Error: err.Error()})
}

// fleetErrStatus maps a coordinator error to an HTTP status.
func fleetErrStatus(err error) int {
	switch {
	case errors.Is(err, ErrUnknownWorker), errors.Is(err, ErrUnknownJob):
		return http.StatusNotFound
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func fleetDecodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("fleet: decoding request: %w", err)
	}
	return nil
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := fleetDecodeBody(r, &req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, err)
		return
	}
	id, cfg, err := c.Register(req.Name)
	if err != nil {
		fleetWriteError(w, fleetErrStatus(err), err)
		return
	}
	fleetWriteJSON(w, http.StatusCreated, RegisterResponse{
		Worker:      id,
		LeaseTTLMS:  cfg.LeaseTTL.Milliseconds(),
		HeartbeatMS: cfg.Heartbeat.Milliseconds(),
		PollMS:      cfg.Poll.Milliseconds(),
	})
}

func (c *Coordinator) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if err := c.Deregister(r.PathValue("id")); err != nil {
		fleetWriteError(w, fleetErrStatus(err), err)
		return
	}
	fleetWriteJSON(w, http.StatusOK, map[string]string{"status": "deregistered"})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := fleetDecodeBody(r, &req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, err)
		return
	}
	spec, err := c.Lease(req.Worker)
	if err != nil {
		fleetWriteError(w, fleetErrStatus(err), err)
		return
	}
	if spec == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	fleetWriteJSON(w, http.StatusOK, LeaseResponse{Task: spec})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := fleetDecodeBody(r, &req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, err)
		return
	}
	drop, err := c.Heartbeat(req.Worker, req.Keys)
	if err != nil {
		fleetWriteError(w, fleetErrStatus(err), err)
		return
	}
	fleetWriteJSON(w, http.StatusOK, HeartbeatResponse{Drop: drop})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if err := fleetDecodeBody(r, &req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, err)
		return
	}
	status, err := c.Complete(req.Worker, req.Key, req.Payload, req.Sum,
		time.Duration(req.ElapsedMS)*time.Millisecond)
	if err != nil {
		fleetWriteError(w, fleetErrStatus(err), err)
		return
	}
	code := http.StatusOK
	if status == StatusCorrupt {
		code = http.StatusUnprocessableEntity
	}
	fleetWriteJSON(w, code, CompleteResponse{Status: status})
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req FailRequest
	if err := fleetDecodeBody(r, &req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, err)
		return
	}
	status, err := c.Fail(req.Worker, req.Key, req.Error)
	if err != nil {
		fleetWriteError(w, fleetErrStatus(err), err)
		return
	}
	fleetWriteJSON(w, http.StatusOK, FailResponse{Status: status})
}

func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	fleetWriteJSON(w, http.StatusOK, c.Stats())
}

func (c *Coordinator) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	var req SubmitJobRequest
	if err := fleetDecodeBody(r, &req); err != nil {
		fleetWriteError(w, http.StatusBadRequest, err)
		return
	}
	h, attached, err := c.SubmitTasks(req.ID, req.Specs)
	if err != nil {
		code := fleetErrStatus(err)
		if code == http.StatusInternalServerError {
			// Key collisions, spec-fingerprint mismatches, invalid
			// specs: the submission conflicts with coordinator state.
			code = http.StatusConflict
		}
		fleetWriteError(w, code, err)
		return
	}
	j := h.(*Job)
	total, _ := j.progress()
	fleetWriteJSON(w, http.StatusCreated, SubmitJobResponse{Job: j.ID(), Attached: attached, Total: total})
}

func (c *Coordinator) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j, err := c.Attach(r.PathValue("id"))
	if err != nil {
		fleetWriteError(w, fleetErrStatus(err), err)
		return
	}
	total, remaining := j.progress()
	resp := JobStatusResponse{Job: j.ID(), Total: total, Remaining: remaining, Done: remaining == 0}
	if resp.Done {
		// A peek, not a release: the client reads the results and then
		// releases with DELETE, so a client crash between the two never
		// loses collected work.
		resp.Results = j.collect(false)
	}
	fleetWriteJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleReleaseJob(w http.ResponseWriter, r *http.Request) {
	if j, err := c.Attach(r.PathValue("id")); err == nil {
		j.collect(true)
	}
	// Unknown means already released — DELETE is idempotent.
	fleetWriteJSON(w, http.StatusOK, map[string]string{"status": "released"})
}

func (c *Coordinator) handleRecovered(w http.ResponseWriter, r *http.Request) {
	completed, requeued := c.Recovered()
	fleetWriteJSON(w, http.StatusOK, RecoveredResponse{Completed: completed, Requeued: requeued})
}
