package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func journalConfig(dir string) Config {
	cfg := testConfig()
	cfg.Journal = dir
	return cfg
}

// copyDir snapshots a journal directory — the disk image a SIGKILL'd
// coordinator would leave behind, taken while the victim still runs.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

func leaseKey(t *testing.T, c *Coordinator, worker string) string {
	t.Helper()
	spec, err := c.Lease(worker)
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if spec == nil {
		t.Fatal("Lease: empty queue")
	}
	return spec.Key
}

func completeKey(t *testing.T, c *Coordinator, worker, key string, payload []byte) {
	t.Helper()
	status, err := c.Complete(worker, key, payload, Checksum(payload), time.Millisecond)
	if err != nil || status != StatusAccepted {
		t.Fatalf("Complete(%s): status=%s err=%v", key, status, err)
	}
}

// TestJournalCrashRecovery is the tentpole's core property: a
// coordinator killed mid-job (simulated by snapshotting its journal
// directory while it runs) restarts with completed payloads intact and
// never re-issued, the mid-lease task re-queued, and the job
// attachable — finishing to the same results the uncrashed run would
// have produced.
func TestJournalCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	live := filepath.Join(dir, "live")
	crash := filepath.Join(dir, "crash")

	c, err := Open(journalConfig(live))
	if err != nil {
		t.Fatal(err)
	}
	specs := []TaskSpec{cellSpec("a", 0), cellSpec("b", 1), cellSpec("c", 2), cellSpec("d", 3)}
	if _, err := c.SubmitJob("job-x", specs); err != nil {
		t.Fatal(err)
	}
	w, _, err := c.Register("w1")
	if err != nil {
		t.Fatal(err)
	}
	doneKey := leaseKey(t, c, w)
	donePayload, _ := json.Marshal(map[string]string{"from": "before-crash"})
	completeKey(t, c, w, doneKey, donePayload)
	midKey := leaseKey(t, c, w) // leased, never completed: in flight at the kill

	copyDir(t, live, crash) // the SIGKILL disk image
	c.Close()

	c2, err := Open(journalConfig(crash))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	st := c2.Stats()
	if st.RecoveredTasks != 4 || st.RecoveredCompleted != 1 || st.RecoveredRequeued != 1 {
		t.Fatalf("recovered counters: %+v", st)
	}
	if st.Queued != 3 || st.Completed != 1 {
		t.Fatalf("recovered queue: %+v", st)
	}
	completed, requeued := c2.Recovered()
	if len(completed) != 1 || completed[0] != doneKey {
		t.Fatalf("Recovered completed = %v, want [%s]", completed, doneKey)
	}
	if len(requeued) != 1 || requeued[0] != midKey {
		t.Fatalf("Recovered requeued = %v, want [%s]", requeued, midKey)
	}

	// The reattach protocol: same ID, same specs → the surviving job.
	job, attached, err := c2.SubmitOrAttach("job-x", specs)
	if err != nil || !attached {
		t.Fatalf("SubmitOrAttach: attached=%v err=%v", attached, err)
	}
	if _, _, err := c2.SubmitOrAttach("job-x", specs[:2]); err == nil {
		t.Error("SubmitOrAttach with different specs attached")
	}

	// Drain the survivors; the completed key must never be re-leased.
	w2, _, err := c2.Register("w2")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		key := leaseKey(t, c2, w2)
		if key == doneKey {
			t.Fatalf("completed key %s re-leased after recovery", doneKey)
		}
		payload, _ := json.Marshal(map[string]string{"from": key})
		completeKey(t, c2, w2, key, payload)
	}
	results, err := job.Wait(context.Background())
	if err != nil || len(results) != 4 {
		t.Fatalf("Wait: %d results, err=%v", len(results), err)
	}
	for _, r := range results {
		if r.Failed != "" {
			t.Errorf("task %s failed: %s", r.Key, r.Failed)
		}
		if r.Key == doneKey && string(r.Payload) != string(donePayload) {
			t.Errorf("recovered payload for %s = %s, want the pre-crash bytes %s",
				r.Key, r.Payload, donePayload)
		}
	}
}

// TestJournalTornTailRecovered cuts into the final record of a
// segment — the disk state of a crash mid-append — and requires the
// replay to warn, skip the tear, and recover every prior record's
// state intact.
func TestJournalTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob("job-t", []TaskSpec{cellSpec("a", 0), cellSpec("b", 1)}); err != nil {
		t.Fatal(err)
	}
	w, _, err := c.Register("w1")
	if err != nil {
		t.Fatal(err)
	}
	key := leaseKey(t, c, w)
	payload, _ := json.Marshal(map[string]int{"v": 1})
	completeKey(t, c, w, key, payload) // the record the tear will eat
	c.Halt()

	seg := filepath.Join(dir, segName(1))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-10], 0o644); err != nil {
		t.Fatal(err)
	}

	var mu sync.Mutex
	var logs []string
	cfg := journalConfig(dir)
	cfg.Logf = func(format string, args ...interface{}) {
		mu.Lock()
		defer mu.Unlock()
		logs = append(logs, format)
	}
	c2, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()

	st := c2.Stats()
	// The completion is gone with the tear; the lease record survives,
	// so the task comes back re-queued alongside the untouched one.
	if st.RecoveredTasks != 2 || st.RecoveredCompleted != 0 || st.RecoveredRequeued != 1 {
		t.Fatalf("recovered counters after tear: %+v", st)
	}
	if st.Queued != 2 {
		t.Fatalf("queued after tear = %d, want 2", st.Queued)
	}
	mu.Lock()
	defer mu.Unlock()
	warned := false
	for _, l := range logs {
		if strings.Contains(l, "torn tail") {
			warned = true
		}
	}
	if !warned {
		t.Errorf("no torn-tail warning logged; logs: %v", logs)
	}
}

// TestJournalTruncateEveryOffset is the fleet-level crash-injection
// property (the runstate append-log has the frame-level twin): a
// segment cut at EVERY byte offset — any possible torn write — must
// still open, recovering an atomic prefix of the record sequence:
// either both submitted tasks or none, a completion only with its
// full checksummed payload, and counters that agree with the queue.
func TestJournalTruncateEveryOffset(t *testing.T) {
	master := t.TempDir()
	c, err := Open(journalConfig(master))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.SubmitJob("job-e", []TaskSpec{cellSpec("a", 0), cellSpec("b", 1)}); err != nil {
		t.Fatal(err)
	}
	w, _, err := c.Register("w1")
	if err != nil {
		t.Fatal(err)
	}
	key := leaseKey(t, c, w)
	payload, _ := json.Marshal(map[string]int{"v": 7})
	completeKey(t, c, w, key, payload)
	c.Halt()

	data, err := os.ReadFile(filepath.Join(master, segName(1)))
	if err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	for off := 0; off <= len(data); off++ {
		dir := filepath.Join(root, strconv.Itoa(off))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		c2, err := Open(journalConfig(dir))
		if err != nil {
			t.Fatalf("offset %d: Open: %v", off, err)
		}
		st := c2.Stats()
		if st.RecoveredTasks != 0 && st.RecoveredTasks != 2 {
			t.Fatalf("offset %d: submit record split: %d tasks recovered", off, st.RecoveredTasks)
		}
		if int64(st.Queued)+st.RecoveredCompleted != st.RecoveredTasks {
			t.Fatalf("offset %d: inconsistent counters: %+v", off, st)
		}
		if st.RecoveredCompleted > 0 {
			// Only a fully-written completion recovers; its payload
			// must be the original bytes. Finish the job to read it.
			w2, _, err := c2.Register("w2")
			if err != nil {
				t.Fatal(err)
			}
			other := leaseKey(t, c2, w2)
			if other == key {
				t.Fatalf("offset %d: completed task %s re-leased", off, key)
			}
			completeKey(t, c2, w2, other, payload)
			j, err := c2.Attach("job-e")
			if err != nil {
				t.Fatalf("offset %d: Attach: %v", off, err)
			}
			results, err := j.Wait(context.Background())
			if err != nil {
				t.Fatalf("offset %d: Wait: %v", off, err)
			}
			for _, tr := range results {
				if tr.Key == key && string(tr.Payload) != string(payload) {
					t.Fatalf("offset %d: recovered payload %q, want %q", off, tr.Payload, payload)
				}
			}
		}
		c2.Close()
	}
}

// TestJournalCompaction proves the journal does not grow across
// campaigns: once the last job is released the segments are replaced
// by one fresh empty one, and the same task keys can be re-submitted.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	specs := []TaskSpec{cellSpec("a", 0), cellSpec("b", 1)}
	job, err := c.SubmitJob("job-c", specs)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := c.Register("w1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		key := leaseKey(t, c, w)
		payload, _ := json.Marshal(map[string]string{"k": key})
		completeKey(t, c, w, key, payload)
	}
	if _, err := job.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}

	segs, err := journalSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("segments after release = %v, want one fresh segment", segs)
	}
	rec, err := replayJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.tasks) != 0 || len(rec.jobs) != 0 {
		t.Fatalf("compacted journal replays state: %d tasks, %d jobs", len(rec.tasks), len(rec.jobs))
	}
	if _, err := c.SubmitJob("job-c2", specs); err != nil {
		t.Fatalf("re-submitting released keys: %v", err)
	}
}

// TestJournalHaltPreservesJobs: Halt (the drain path) interrupts
// waiters with ErrCoordinatorClosed, keeps the job attachable across a
// reopen, and the reattached Wait delivers the full results.
func TestJournalHaltPreservesJobs(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	job, err := c.SubmitJob("job-h", []TaskSpec{cellSpec("a", 0)})
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := job.Wait(context.Background())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Halt()
	if err := <-errc; !errors.Is(err, ErrCoordinatorClosed) {
		t.Fatalf("Wait across Halt: %v", err)
	}

	c2, err := Open(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	job2, err := c2.Attach("job-h")
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := c2.Register("w1")
	if err != nil {
		t.Fatal(err)
	}
	key := leaseKey(t, c2, w)
	payload, _ := json.Marshal(map[string]int{"v": 7})
	completeKey(t, c2, w, key, payload)
	results, err := job2.Wait(context.Background())
	if err != nil || len(results) != 1 || results[0].Failed != "" {
		t.Fatalf("reattached Wait: results=%+v err=%v", results, err)
	}
	if _, err := c2.Attach("job-h"); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("Attach after release: %v, want ErrUnknownJob", err)
	}
}
