package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Config tunes the coordinator's failure detection. The defaults suit
// real fleets (seconds-long leases); tests shrink them to milliseconds
// to force lease bounces quickly.
type Config struct {
	// LeaseTTL is how long a lease (and a worker's registration) stays
	// valid without a heartbeat; <= 0 defaults to 15s. A worker that
	// goes silent for a TTL loses its leases back to the queue.
	LeaseTTL time.Duration

	// Heartbeat is the beat interval advertised to workers; <= 0
	// defaults to LeaseTTL/3.
	Heartbeat time.Duration

	// Poll is the idle lease-poll interval advertised to workers; <= 0
	// defaults to 200ms.
	Poll time.Duration

	// MaxAttempts bounds lease grants per task before it is failed
	// permanently; <= 0 defaults to 5. Each expiry, worker-reported
	// failure or corrupt completion consumes one attempt.
	MaxAttempts int

	// Logf, when set, receives coordinator events (expiries, re-queues,
	// rejected payloads).
	Logf func(format string, args ...interface{})
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL <= 0 {
		return 15 * time.Second
	}
	return c.LeaseTTL
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return c.leaseTTL() / 3
	}
	return c.Heartbeat
}

func (c Config) poll() time.Duration {
	if c.Poll <= 0 {
		return 200 * time.Millisecond
	}
	return c.Poll
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 5
	}
	return c.MaxAttempts
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	// Workers is the live worker count; PeakWorkers the maximum seen;
	// Registered the lifetime registration count (a worker that
	// re-registers after an expiry counts again).
	Workers     int   `json:"workers"`
	PeakWorkers int   `json:"peak_workers"`
	Registered  int64 `json:"registered"`

	// Queued and Leased count live tasks by state.
	Queued int `json:"queued"`
	Leased int `json:"leased"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`

	// Requeues counts leases that bounced back to the queue (expiry,
	// worker-reported failure, corrupt payload); Expired the subset
	// caused by lease/worker timeouts; Duplicates the completions
	// dropped because the task had already finished; Corrupt the
	// payloads rejected by checksum.
	Requeues   int64 `json:"requeues"`
	Expired    int64 `json:"expired"`
	Duplicates int64 `json:"duplicates"`
	Corrupt    int64 `json:"corrupt"`

	// Busy sums worker-reported execution time over accepted
	// completions — the fleet analogue of campaign.Stats.Busy.
	Busy time.Duration `json:"busy_ns"`
}

// Completion statuses returned to workers.
const (
	StatusAccepted  = "accepted"
	StatusDuplicate = "duplicate"
	StatusCorrupt   = "corrupt"
	StatusUnknown   = "unknown"
	StatusRequeued  = "requeued"
	StatusFailed    = "failed"
	StatusStale     = "stale"
)

// ErrUnknownWorker is returned for a worker id the coordinator does not
// know — never registered, expired, or deregistered. The HTTP layer
// maps it to 404 and workers respond by re-registering.
var ErrUnknownWorker = errors.New("fleet: unknown worker")

// ErrClosed is returned once the coordinator has shut down.
var ErrClosed = errors.New("fleet: coordinator closed")

type taskState int

const (
	taskQueued taskState = iota
	taskLeased
	taskFinished
)

type task struct {
	spec     TaskSpec
	job      *Job
	state    taskState
	attempts int
	worker   string // current lessee while leased
	deadline time.Time
	res      TaskResult
}

type workerState struct {
	id       string
	name     string
	deadline time.Time
	leases   map[string]*task
}

// Coordinator owns the task queue and the lease table. It is a plain
// library — embed it in any process (cmd/figures and cmd/tune serve it
// next to their own work; tests drive it in-process) and expose
// Handler() to the fleet.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	tasks   map[string]*task
	queue   []*task
	workers map[string]*workerState
	nextID  int64
	closed  bool
	st      Stats

	stop chan struct{}
	done chan struct{}
}

// New starts a coordinator and its lease sweeper.
func New(cfg Config) *Coordinator {
	c := &Coordinator{
		cfg:     cfg,
		tasks:   make(map[string]*task),
		workers: make(map[string]*workerState),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go c.sweep()
	return c
}

// Close shuts the coordinator down: pending tasks fail, waiting jobs
// unblock, the sweeper exits. Safe to call once.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, t := range c.tasks {
		if t.state != taskFinished {
			c.finishLocked(t, TaskResult{Failed: "coordinator closed"})
		}
	}
	c.mu.Unlock()
	close(c.stop)
	<-c.done
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// sweep expires silent workers and overdue leases. The tick is a
// fraction of the TTL so an expiry is detected within ~1.25 TTLs.
func (c *Coordinator) sweep() {
	defer close(c.done)
	tick := c.cfg.leaseTTL() / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tk.C:
			c.expire(now)
		}
	}
}

func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, w := range c.workers {
		if now.After(w.deadline) {
			c.logf("fleet: worker %s (%s) lost: no heartbeat in %v, %d leases re-queued",
				id, w.name, c.cfg.leaseTTL(), len(w.leases))
			for _, t := range w.leases {
				c.st.Expired++
				c.requeueLocked(t, "worker lost")
			}
			delete(c.workers, id)
			continue
		}
		for key, t := range w.leases {
			if now.After(t.deadline) {
				c.logf("fleet: lease %s on worker %s expired", key, id)
				delete(w.leases, key)
				c.st.Expired++
				c.requeueLocked(t, "lease expired")
			}
		}
	}
}

// requeueLocked returns a bounced lease to the queue, or fails the task
// permanently once its attempts are exhausted. Callers must have
// removed the task from its lessee's lease map.
func (c *Coordinator) requeueLocked(t *task, cause string) {
	if t.state != taskLeased {
		return
	}
	if t.attempts >= c.cfg.maxAttempts() {
		c.finishLocked(t, TaskResult{
			Failed: fmt.Sprintf("%s; %d attempts exhausted", cause, t.attempts),
		})
		return
	}
	t.state = taskQueued
	t.worker = ""
	c.queue = append(c.queue, t)
	c.st.Requeues++
}

// finishLocked records a task's terminal result and notifies its job.
func (c *Coordinator) finishLocked(t *task, res TaskResult) {
	if t.state == taskFinished {
		return
	}
	if t.state == taskLeased {
		if w := c.workers[t.worker]; w != nil {
			delete(w.leases, t.spec.Key)
		}
	}
	res.Key = t.spec.Key
	res.Attempts = t.attempts
	t.state = taskFinished
	t.res = res
	if res.Failed != "" {
		c.st.Failed++
	} else {
		c.st.Completed++
		c.st.Busy += res.Elapsed
	}
	t.job.taskDone()
}

// Register admits a worker and returns its id plus the lease timing
// parameters it must honor.
func (c *Coordinator) Register(name string) (string, Config, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", Config{}, ErrClosed
	}
	c.nextID++
	id := fmt.Sprintf("w%d", c.nextID)
	c.workers[id] = &workerState{
		id: id, name: name,
		deadline: time.Now().Add(c.cfg.leaseTTL()),
		leases:   make(map[string]*task),
	}
	c.st.Registered++
	if len(c.workers) > c.st.PeakWorkers {
		c.st.PeakWorkers = len(c.workers)
	}
	c.logf("fleet: worker %s (%s) registered", id, name)
	return id, Config{
		LeaseTTL:  c.cfg.leaseTTL(),
		Heartbeat: c.cfg.heartbeat(),
		Poll:      c.cfg.poll(),
	}, nil
}

// Deregister removes a worker after a graceful drain. Any lease it
// still holds (it should hold none) bounces back to the queue.
func (c *Coordinator) Deregister(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return ErrUnknownWorker
	}
	for _, t := range w.leases {
		c.requeueLocked(t, "worker deregistered")
	}
	delete(c.workers, id)
	c.logf("fleet: worker %s (%s) deregistered", id, w.name)
	return nil
}

// Lease hands the worker the oldest queued task, or nil when the queue
// is empty. A lease counts one attempt and must be renewed by
// heartbeat within the TTL.
func (c *Coordinator) Lease(workerID string) (*TaskSpec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	w := c.workers[workerID]
	if w == nil {
		return nil, ErrUnknownWorker
	}
	now := time.Now()
	w.deadline = now.Add(c.cfg.leaseTTL())
	for len(c.queue) > 0 {
		t := c.queue[0]
		c.queue = c.queue[1:]
		if t.state != taskQueued {
			continue // finished while queued (job canceled)
		}
		t.state = taskLeased
		t.attempts++
		t.worker = workerID
		t.deadline = now.Add(c.cfg.leaseTTL())
		w.leases[t.spec.Key] = t
		spec := t.spec
		return &spec, nil
	}
	return nil, nil
}

// Heartbeat renews the worker's registration and the named leases. The
// returned drop list names leases the worker no longer holds —
// expired and re-assigned, or canceled — so it can abandon the
// duplicated work instead of finishing it.
func (c *Coordinator) Heartbeat(workerID string, keys []string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return nil, ErrUnknownWorker
	}
	now := time.Now()
	w.deadline = now.Add(c.cfg.leaseTTL())
	var drop []string
	for _, key := range keys {
		t := c.tasks[key]
		if t != nil && t.state == taskLeased && t.worker == workerID {
			t.deadline = now.Add(c.cfg.leaseTTL())
			continue
		}
		drop = append(drop, key)
	}
	return drop, nil
}

// Complete ingests one result. Ingestion is idempotent on the task
// key: the first checksum-valid payload finishes the task, later
// completions — a lease that bounced mid-flight and both executions
// reported — are dropped as duplicates, never double-counted. A
// checksum mismatch rejects the payload; if it came from the current
// lessee the lease bounces so another attempt can produce clean bytes.
//
// A valid payload is accepted even from a stale lessee: tasks are
// deterministic, so the bytes are the ones any attempt would produce.
func (c *Coordinator) Complete(workerID, key string, payload json.RawMessage, sum uint64, elapsed time.Duration) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[workerID]; w != nil {
		w.deadline = time.Now().Add(c.cfg.leaseTTL())
		delete(w.leases, key)
	}
	t := c.tasks[key]
	if t == nil {
		return StatusUnknown, nil
	}
	if t.state == taskFinished {
		c.st.Duplicates++
		return StatusDuplicate, nil
	}
	if Checksum(payload) != sum {
		c.st.Corrupt++
		c.logf("fleet: task %s: corrupt payload from worker %s rejected", key, workerID)
		if t.state == taskLeased && t.worker == workerID {
			c.requeueLocked(t, "corrupt payload")
		}
		return StatusCorrupt, nil
	}
	if t.state == taskLeased && t.worker != workerID {
		// Stale lessee finished first; the current one will learn via
		// its heartbeat drop list or land here as a duplicate.
		if w := c.workers[t.worker]; w != nil {
			delete(w.leases, key)
		}
	}
	c.finishLocked(t, TaskResult{Payload: payload, Worker: workerID, Elapsed: elapsed})
	return StatusAccepted, nil
}

// Fail records a worker-reported execution failure (an injected or
// real panic in the runner). The lease bounces; attempts exhausted
// fail the task permanently.
func (c *Coordinator) Fail(workerID, key, msg string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[workerID]; w != nil {
		w.deadline = time.Now().Add(c.cfg.leaseTTL())
		delete(w.leases, key)
	}
	t := c.tasks[key]
	if t == nil || t.state == taskFinished {
		return StatusStale, nil
	}
	if t.state == taskLeased && t.worker != workerID {
		return StatusStale, nil
	}
	c.logf("fleet: task %s failed on worker %s: %s", key, workerID, msg)
	c.requeueLocked(t, fmt.Sprintf("worker error: %s", msg))
	if t.state == taskFinished {
		return StatusFailed, nil
	}
	return StatusRequeued, nil
}

// Stats snapshots the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.Workers = len(c.workers)
	for _, t := range c.tasks {
		switch t.state {
		case taskQueued:
			st.Queued++
		case taskLeased:
			st.Leased++
		}
	}
	return st
}

// Job tracks one Submit's tasks until they all finish.
type Job struct {
	c         *Coordinator
	keys      []string
	remaining int
	mu        sync.Mutex
	done      chan struct{}
	released  bool
}

func (j *Job) taskDone() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.remaining--
	if j.remaining == 0 {
		close(j.done)
	}
}

// Submit enqueues specs as one job, FIFO behind whatever is already
// queued. Keys must be unique among the coordinator's live tasks; a
// job's keys are released when its Wait returns, so re-submitting the
// same coordinates later (a re-run campaign) is fine.
func (c *Coordinator) Submit(specs []TaskSpec) (*Job, error) {
	j := &Job{c: c, remaining: len(specs), done: make(chan struct{})}
	if len(specs) == 0 {
		close(j.done)
		return j, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.tasks[specs[i].Key]; dup {
			return nil, fmt.Errorf("fleet: duplicate task key %q", specs[i].Key)
		}
	}
	for i := range specs {
		t := &task{spec: specs[i], job: j, state: taskQueued}
		c.tasks[t.spec.Key] = t
		c.queue = append(c.queue, t)
		j.keys = append(j.keys, t.spec.Key)
	}
	c.st.Submitted += int64(len(specs))
	return j, nil
}

// Wait blocks until every task of the job finished, then returns the
// results in submission order. Cancelling ctx fails the job's
// unfinished tasks ("canceled"), drops their leases at the workers'
// next heartbeat, and returns the partial results with ctx's error.
// Either way the job's keys are released for re-submission.
func (j *Job) Wait(ctx context.Context) ([]TaskResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var werr error
	select {
	case <-j.done:
	case <-ctx.Done():
		werr = ctx.Err()
		j.cancel()
	}
	return j.collect(), werr
}

// cancel fails every unfinished task of the job.
func (j *Job) cancel() {
	c := j.c
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, key := range j.keys {
		if t := c.tasks[key]; t != nil && t.state != taskFinished {
			c.finishLocked(t, TaskResult{Failed: "canceled"})
		}
	}
}

// collect gathers the results and releases the job's keys.
func (j *Job) collect() []TaskResult {
	c := j.c
	c.mu.Lock()
	defer c.mu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]TaskResult, 0, len(j.keys))
	for _, key := range j.keys {
		t := c.tasks[key]
		if t == nil {
			continue // released by an earlier Wait
		}
		out = append(out, t.res)
		if !j.released {
			delete(c.tasks, key)
		}
	}
	j.released = true
	return out
}

// LiveKeys lists the unfinished task keys, oldest submission first —
// a diagnostic view for the stats endpoint.
func (c *Coordinator) LiveKeys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var keys []string
	for key, t := range c.tasks {
		if t.state != taskFinished {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}
