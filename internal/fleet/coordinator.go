package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Config tunes the coordinator's failure detection. The defaults suit
// real fleets (seconds-long leases); tests shrink them to milliseconds
// to force lease bounces quickly.
type Config struct {
	// LeaseTTL is how long a lease (and a worker's registration) stays
	// valid without a heartbeat; <= 0 defaults to 15s. A worker that
	// goes silent for a TTL loses its leases back to the queue.
	LeaseTTL time.Duration

	// Heartbeat is the beat interval advertised to workers; <= 0
	// defaults to LeaseTTL/3.
	Heartbeat time.Duration

	// Poll is the idle lease-poll interval advertised to workers; <= 0
	// defaults to 200ms.
	Poll time.Duration

	// MaxAttempts bounds lease grants per task before it is failed
	// permanently; <= 0 defaults to 5. Each expiry, worker-reported
	// failure or corrupt completion consumes one attempt.
	MaxAttempts int

	// Journal, when set, is a directory where every state transition is
	// written ahead as a checksummed fsync'd record, so the coordinator
	// can be killed at any instant and restarted with Open: completed
	// payloads survive, in-flight leases bounce back to the queue, and
	// submitters reattach to their jobs by ID. Empty keeps the
	// coordinator purely in-memory (the embedded default).
	Journal string

	// Logf, when set, receives coordinator events (expiries, re-queues,
	// rejected payloads, journal recovery).
	Logf func(format string, args ...interface{})
}

func (c Config) leaseTTL() time.Duration {
	if c.LeaseTTL <= 0 {
		return 15 * time.Second
	}
	return c.LeaseTTL
}

func (c Config) heartbeat() time.Duration {
	if c.Heartbeat <= 0 {
		return c.leaseTTL() / 3
	}
	return c.Heartbeat
}

func (c Config) poll() time.Duration {
	if c.Poll <= 0 {
		return 200 * time.Millisecond
	}
	return c.Poll
}

func (c Config) maxAttempts() int {
	if c.MaxAttempts <= 0 {
		return 5
	}
	return c.MaxAttempts
}

// Stats is a snapshot of the coordinator's counters.
type Stats struct {
	// Workers is the live worker count; PeakWorkers the maximum seen;
	// Registered the lifetime registration count (a worker that
	// re-registers after an expiry counts again).
	Workers     int   `json:"workers"`
	PeakWorkers int   `json:"peak_workers"`
	Registered  int64 `json:"registered"`

	// Queued and Leased count live tasks by state; Jobs the unreleased
	// jobs holding them.
	Queued int `json:"queued"`
	Leased int `json:"leased"`
	Jobs   int `json:"jobs"`

	Submitted int64 `json:"submitted"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`

	// Requeues counts leases that bounced back to the queue (expiry,
	// worker-reported failure, corrupt payload); Expired the subset
	// caused by lease/worker timeouts; Duplicates the completions
	// dropped because the task had already finished; Corrupt the
	// payloads rejected by checksum.
	Requeues   int64 `json:"requeues"`
	Expired    int64 `json:"expired"`
	Duplicates int64 `json:"duplicates"`
	Corrupt    int64 `json:"corrupt"`

	// RecoveredTasks, RecoveredCompleted and RecoveredRequeued describe
	// the journal replay that booted this coordinator: live tasks
	// reconstructed, of which how many came back already completed
	// (their payloads will never be re-evaluated) and how many were
	// mid-lease and conservatively re-queued. All zero on a fresh boot.
	RecoveredTasks     int64 `json:"recovered_tasks,omitempty"`
	RecoveredCompleted int64 `json:"recovered_completed,omitempty"`
	RecoveredRequeued  int64 `json:"recovered_requeued,omitempty"`

	// Busy sums worker-reported execution time over accepted
	// completions — the fleet analogue of campaign.Stats.Busy.
	Busy time.Duration `json:"busy_ns"`
}

// Completion statuses returned to workers.
const (
	StatusAccepted  = "accepted"
	StatusDuplicate = "duplicate"
	StatusCorrupt   = "corrupt"
	StatusUnknown   = "unknown"
	StatusRequeued  = "requeued"
	StatusFailed    = "failed"
	StatusStale     = "stale"
)

// ErrUnknownWorker is returned for a worker id the coordinator does not
// know — never registered, expired, or deregistered. The HTTP layer
// maps it to 404 and workers respond by re-registering.
var ErrUnknownWorker = errors.New("fleet: unknown worker")

// ErrClosed is returned once the coordinator has shut down.
var ErrClosed = errors.New("fleet: coordinator closed")

// ErrCoordinatorClosed is returned by Job.Wait when the coordinator
// shut down under the job — distinct from the submitter's own context
// error so callers can tell "my deadline fired" (abort) from "the
// coordinator went away" (reattach once it is back; a journaled
// coordinator keeps the job across the restart). It wraps ErrClosed,
// so errors.Is(err, ErrClosed) also holds.
var ErrCoordinatorClosed = fmt.Errorf("%w under a waiting job", ErrClosed)

// ErrUnknownJob is returned by Attach for a job ID the coordinator does
// not hold — never submitted, or already released to its submitter.
var ErrUnknownJob = errors.New("fleet: unknown job")

type taskState int

const (
	taskQueued taskState = iota
	taskLeased
	taskFinished
)

type task struct {
	spec     TaskSpec
	job      *Job
	state    taskState
	attempts int
	worker   string // current lessee while leased
	deadline time.Time
	res      TaskResult
	released bool // results collected; kept only during journal replay
}

type workerState struct {
	id       string
	name     string
	deadline time.Time
	leases   map[string]*task
}

// Coordinator owns the task queue and the lease table. It is a plain
// library — embed it in any process (cmd/figures and cmd/tune serve it
// next to their own work; tests drive it in-process), run it resident
// via cmd/fleetd, and expose Handler() to the fleet.
type Coordinator struct {
	cfg Config

	mu      sync.Mutex
	tasks   map[string]*task
	queue   []*task
	jobs    map[string]*Job
	workers map[string]*workerState
	nextID  int64
	jobSeq  int64
	closed  bool
	st      Stats
	jnl     *journal

	recCompleted []string
	recRequeued  []string

	stop chan struct{}
	done chan struct{}
}

// New starts an in-memory coordinator and its lease sweeper. For a
// journaled coordinator use Open; New panics if cfg.Journal is set and
// cannot be opened.
func New(cfg Config) *Coordinator {
	c, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return c
}

// Open starts a coordinator. With cfg.Journal set it first replays the
// journal directory: every *.wal segment is scanned in order, torn
// tails are skipped with a warning, completed tasks come back with
// their checksummed payloads, mid-lease tasks are conservatively
// re-queued, and unreleased jobs become attachable by ID.
func Open(cfg Config) (*Coordinator, error) {
	c := &Coordinator{
		cfg:     cfg,
		tasks:   make(map[string]*task),
		jobs:    make(map[string]*Job),
		workers: make(map[string]*workerState),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	if cfg.Journal != "" {
		rec, err := replayJournal(cfg.Journal, cfg.Logf)
		if err != nil {
			return nil, err
		}
		rec.finish()
		c.adoptRecovery(rec)
		jnl, err := openJournal(cfg.Journal, rec.lastSeg, cfg.Logf)
		if err != nil {
			return nil, err
		}
		c.jnl = jnl
	}
	go c.sweep()
	return c, nil
}

// adoptRecovery installs a journal replay as the coordinator's state.
func (c *Coordinator) adoptRecovery(r *recovery) {
	c.tasks = r.tasks
	c.jobSeq = r.autoSeq
	for id, ts := range r.jobs {
		j := &Job{c: c, id: id, fp: r.jobFPs[id], done: make(chan struct{}), intr: make(chan struct{})}
		for _, t := range ts {
			t.job = j
			j.keys = append(j.keys, t.spec.Key)
			if t.state != taskFinished {
				j.remaining++
			}
		}
		if j.remaining == 0 {
			close(j.done)
		}
		c.jobs[id] = j
	}
	for _, t := range r.order {
		if !t.released && t.state == taskQueued {
			c.queue = append(c.queue, t)
		}
	}
	live := int64(len(c.tasks))
	c.st.Submitted = live
	c.st.Completed = int64(len(r.completed))
	c.st.RecoveredTasks = live
	c.st.RecoveredCompleted = int64(len(r.completed))
	c.st.RecoveredRequeued = int64(len(r.requeued))
	c.recCompleted = r.completed
	c.recRequeued = r.requeued
	if live > 0 {
		c.logf("fleet: journal recovery: %d tasks across %d jobs (%d completed, %d re-queued)",
			live, len(c.jobs), len(r.completed), len(r.requeued))
	}
}

// Close shuts the coordinator down hard: pending tasks fail, waiting
// jobs unblock with ErrCoordinatorClosed, the sweeper exits. This is
// the embedded-coordinator exit — the failures are NOT journaled, so a
// journaled coordinator closed mid-job would resurrect the tasks on
// the next Open; a resident coordinator draining for a restart should
// use Halt instead. Safe to call once.
func (c *Coordinator) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, t := range c.tasks {
		if t.state != taskFinished {
			t.job.interrupt()
			c.finishLocked(t, TaskResult{Failed: "coordinator closed"})
		}
	}
	if c.jnl != nil {
		c.jnl.close()
		c.jnl = nil
	}
	c.mu.Unlock()
	close(c.stop)
	<-c.done
}

// Halt drains the coordinator for a restart: it stops granting leases
// and accepting work, unblocks waiting submitters with
// ErrCoordinatorClosed (their jobs' keys stay held, so a reattach
// after the restart resumes them), closes the journal segment and
// stops the sweeper — leaving the journaled task state exactly as it
// stands for the next Open. Safe to call once; Close after Halt is a
// no-op.
func (c *Coordinator) Halt() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	for _, j := range c.jobs {
		j.interruptIfPending()
	}
	if c.jnl != nil {
		c.jnl.close()
		c.jnl = nil
	}
	c.mu.Unlock()
	close(c.stop)
	<-c.done
}

func (c *Coordinator) logf(format string, args ...interface{}) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// sweep expires silent workers and overdue leases. The tick is a
// fraction of the TTL so an expiry is detected within ~1.25 TTLs.
func (c *Coordinator) sweep() {
	defer close(c.done)
	tick := c.cfg.leaseTTL() / 4
	if tick < 10*time.Millisecond {
		tick = 10 * time.Millisecond
	}
	tk := time.NewTicker(tick)
	defer tk.Stop()
	for {
		select {
		case <-c.stop:
			return
		case now := <-tk.C:
			c.expire(now)
		}
	}
}

func (c *Coordinator) expire(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, w := range c.workers {
		if now.After(w.deadline) {
			c.logf("fleet: worker %s (%s) lost: no heartbeat in %v, %d leases re-queued",
				id, w.name, c.cfg.leaseTTL(), len(w.leases))
			for _, t := range w.leases {
				c.st.Expired++
				c.requeueLocked(t, "worker lost")
			}
			delete(c.workers, id)
			continue
		}
		for key, t := range w.leases {
			if now.After(t.deadline) {
				c.logf("fleet: lease %s on worker %s expired", key, id)
				delete(w.leases, key)
				c.st.Expired++
				c.requeueLocked(t, "lease expired")
			}
		}
	}
}

// requeueLocked returns a bounced lease to the queue, or fails the task
// permanently once its attempts are exhausted. Callers must have
// removed the task from its lessee's lease map.
func (c *Coordinator) requeueLocked(t *task, cause string) {
	if t.state != taskLeased {
		return
	}
	if t.attempts >= c.cfg.maxAttempts() {
		msg := fmt.Sprintf("%s; %d attempts exhausted", cause, t.attempts)
		if c.jnl != nil {
			if err := c.jnl.append(journalRecord{Op: opFail, Key: t.spec.Key, Msg: msg, Attempts: t.attempts}); err != nil {
				c.logf("fleet: journaling failure of %s: %v", t.spec.Key, err)
			}
		}
		c.finishLocked(t, TaskResult{Failed: msg})
		return
	}
	t.state = taskQueued
	t.worker = ""
	c.queue = append(c.queue, t)
	c.st.Requeues++
}

// finishLocked records a task's terminal result and notifies its job.
func (c *Coordinator) finishLocked(t *task, res TaskResult) {
	if t.state == taskFinished {
		return
	}
	if t.state == taskLeased {
		if w := c.workers[t.worker]; w != nil {
			delete(w.leases, t.spec.Key)
		}
	}
	res.Key = t.spec.Key
	res.Attempts = t.attempts
	t.state = taskFinished
	t.res = res
	if res.Failed != "" {
		c.st.Failed++
	} else {
		c.st.Completed++
		c.st.Busy += res.Elapsed
	}
	t.job.taskDone()
}

// Register admits a worker and returns its id plus the lease timing
// parameters it must honor.
func (c *Coordinator) Register(name string) (string, Config, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return "", Config{}, ErrClosed
	}
	c.nextID++
	id := fmt.Sprintf("w%d", c.nextID)
	c.workers[id] = &workerState{
		id: id, name: name,
		deadline: time.Now().Add(c.cfg.leaseTTL()),
		leases:   make(map[string]*task),
	}
	c.st.Registered++
	if len(c.workers) > c.st.PeakWorkers {
		c.st.PeakWorkers = len(c.workers)
	}
	c.logf("fleet: worker %s (%s) registered", id, name)
	return id, Config{
		LeaseTTL:  c.cfg.leaseTTL(),
		Heartbeat: c.cfg.heartbeat(),
		Poll:      c.cfg.poll(),
	}, nil
}

// Deregister removes a worker after a graceful drain. Any lease it
// still holds (it should hold none) bounces back to the queue.
func (c *Coordinator) Deregister(id string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return ErrUnknownWorker
	}
	for _, t := range w.leases {
		c.requeueLocked(t, "worker deregistered")
	}
	delete(c.workers, id)
	c.logf("fleet: worker %s (%s) deregistered", id, w.name)
	return nil
}

// Lease hands the worker the oldest queued task, or nil when the queue
// is empty. A lease counts one attempt, is journaled before it is
// granted (so replayed attempts still respect MaxAttempts), and must
// be renewed by heartbeat within the TTL.
func (c *Coordinator) Lease(workerID string) (*TaskSpec, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	w := c.workers[workerID]
	if w == nil {
		return nil, ErrUnknownWorker
	}
	now := time.Now()
	w.deadline = now.Add(c.cfg.leaseTTL())
	for len(c.queue) > 0 {
		t := c.queue[0]
		if t.state != taskQueued {
			c.queue = c.queue[1:]
			continue // finished while queued (job canceled)
		}
		if c.jnl != nil {
			if err := c.jnl.append(journalRecord{Op: opLease, Key: t.spec.Key, Worker: w.name}); err != nil {
				return nil, err // task stays queued; the worker polls again
			}
		}
		c.queue = c.queue[1:]
		t.state = taskLeased
		t.attempts++
		t.worker = workerID
		t.deadline = now.Add(c.cfg.leaseTTL())
		w.leases[t.spec.Key] = t
		spec := t.spec
		return &spec, nil
	}
	return nil, nil
}

// Heartbeat renews the worker's registration and the named leases. The
// returned drop list names leases the worker no longer holds —
// expired and re-assigned, or canceled — so it can abandon the
// duplicated work instead of finishing it.
func (c *Coordinator) Heartbeat(workerID string, keys []string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[workerID]
	if w == nil {
		return nil, ErrUnknownWorker
	}
	now := time.Now()
	w.deadline = now.Add(c.cfg.leaseTTL())
	var drop []string
	for _, key := range keys {
		t := c.tasks[key]
		if t != nil && t.state == taskLeased && t.worker == workerID {
			t.deadline = now.Add(c.cfg.leaseTTL())
			continue
		}
		drop = append(drop, key)
	}
	return drop, nil
}

// Complete ingests one result. Ingestion is idempotent on the task
// key: the first checksum-valid payload finishes the task, later
// completions — a lease that bounced mid-flight and both executions
// reported — are dropped as duplicates, never double-counted. A
// checksum mismatch rejects the payload; if it came from the current
// lessee the lease bounces so another attempt can produce clean bytes.
//
// A valid payload is accepted even from a stale lessee: tasks are
// deterministic, so the bytes are the ones any attempt would produce.
// The accepted payload is journaled (write-ahead) before the task
// finishes; a journal write failure is returned to the worker, which
// reposts — durability is never silently dropped.
func (c *Coordinator) Complete(workerID, key string, payload json.RawMessage, sum uint64, elapsed time.Duration) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[workerID]; w != nil {
		w.deadline = time.Now().Add(c.cfg.leaseTTL())
		delete(w.leases, key)
	}
	t := c.tasks[key]
	if t == nil {
		return StatusUnknown, nil
	}
	if t.state == taskFinished {
		c.st.Duplicates++
		return StatusDuplicate, nil
	}
	if Checksum(payload) != sum {
		c.st.Corrupt++
		c.logf("fleet: task %s: corrupt payload from worker %s rejected", key, workerID)
		if t.state == taskLeased && t.worker == workerID {
			c.requeueLocked(t, "corrupt payload")
		}
		return StatusCorrupt, nil
	}
	if c.jnl != nil {
		rec := journalRecord{
			Op: opComplete, Key: key, Worker: workerID,
			Payload: payload, Sum: sum, ElapsedNS: int64(elapsed),
		}
		if err := c.jnl.append(rec); err != nil {
			return "", err
		}
	}
	if t.state == taskLeased && t.worker != workerID {
		// Stale lessee finished first; the current one will learn via
		// its heartbeat drop list or land here as a duplicate.
		if w := c.workers[t.worker]; w != nil {
			delete(w.leases, key)
		}
	}
	c.finishLocked(t, TaskResult{Payload: payload, Worker: workerID, Elapsed: elapsed})
	return StatusAccepted, nil
}

// Fail records a worker-reported execution failure (an injected or
// real panic in the runner). The lease bounces; attempts exhausted
// fail the task permanently.
func (c *Coordinator) Fail(workerID, key, msg string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[workerID]; w != nil {
		w.deadline = time.Now().Add(c.cfg.leaseTTL())
		delete(w.leases, key)
	}
	t := c.tasks[key]
	if t == nil || t.state == taskFinished {
		return StatusStale, nil
	}
	if t.state == taskLeased && t.worker != workerID {
		return StatusStale, nil
	}
	c.logf("fleet: task %s failed on worker %s: %s", key, workerID, msg)
	c.requeueLocked(t, fmt.Sprintf("worker error: %s", msg))
	if t.state == taskFinished {
		return StatusFailed, nil
	}
	return StatusRequeued, nil
}

// Stats snapshots the counters.
func (c *Coordinator) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.st
	st.Workers = len(c.workers)
	st.Jobs = len(c.jobs)
	for _, t := range c.tasks {
		switch t.state {
		case taskQueued:
			st.Queued++
		case taskLeased:
			st.Leased++
		}
	}
	return st
}

// Recovered reports the task keys the boot-time journal replay
// restored: completed keys whose payloads will never be re-evaluated,
// and keys that were mid-lease at the crash and were re-queued. Both
// sorted; both empty on a fresh boot. The failover gate asserts no
// completed key is ever executed again.
func (c *Coordinator) Recovered() (completed, requeued []string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	completed = append([]string(nil), c.recCompleted...)
	requeued = append([]string(nil), c.recRequeued...)
	sort.Strings(completed)
	sort.Strings(requeued)
	return completed, requeued
}

// Job tracks one submission's tasks until they all finish. A job is
// held by the coordinator — surviving restarts when journaled — until
// its results are collected by a successful Wait; until then any
// process that knows the ID can Attach and Wait on it.
type Job struct {
	c           *Coordinator
	id          string
	fp          uint64 // fingerprint of the submitted specs, for attach checks
	keys        []string
	remaining   int
	mu          sync.Mutex
	done        chan struct{}
	intr        chan struct{}
	interrupted bool
	released    bool
}

// ID returns the job's identifier, usable with Attach after a
// submitter restart.
func (j *Job) ID() string { return j.id }

func (j *Job) taskDone() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.remaining--
	if j.remaining == 0 {
		close(j.done)
	}
}

// interrupt flags the job as shut down under its waiter.
func (j *Job) interrupt() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.interrupted {
		j.interrupted = true
		close(j.intr)
	}
}

// interruptIfPending interrupts only jobs with unfinished tasks — a
// job that completed before the shutdown delivers its results with a
// nil error.
func (j *Job) interruptIfPending() {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.remaining > 0 && !j.interrupted {
		j.interrupted = true
		close(j.intr)
	}
}

// progress reports the job's size and unfinished-task count.
func (j *Job) progress() (total, remaining int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.keys), j.remaining
}

func (j *Job) wasInterrupted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.interrupted
}

// Submit enqueues specs as one auto-named job, FIFO behind whatever is
// already queued. Keys must be unique among the coordinator's live
// tasks; a job's keys are released when its Wait returns, so
// re-submitting the same coordinates later (a re-run campaign) is
// fine.
func (c *Coordinator) Submit(specs []TaskSpec) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(specs) == 0 {
		j := &Job{c: c, done: make(chan struct{}), intr: make(chan struct{})}
		close(j.done)
		return j, nil
	}
	if c.closed {
		return nil, ErrClosed
	}
	c.jobSeq++
	return c.submitLocked(fmt.Sprintf("job-%d", c.jobSeq), specs)
}

// SubmitJob enqueues specs under a caller-chosen job ID — the durable
// handle a submitter uses to reattach after its own restart. The ID
// must not collide with a live job.
func (c *Coordinator) SubmitJob(id string, specs []TaskSpec) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if id == "" {
		return nil, errors.New("fleet: empty job id")
	}
	if _, dup := c.jobs[id]; dup {
		return nil, fmt.Errorf("fleet: job %q already exists", id)
	}
	return c.submitLocked(id, specs)
}

// SubmitOrAttach submits specs under id, or — when the job already
// exists, typically because this submitter's previous incarnation
// submitted it before dying — attaches to it after verifying the
// specs fingerprint matches (attached reports which happened). This is
// the idempotent resume primitive: a restarted submitter re-derives
// its specs deterministically and calls SubmitOrAttach with the same
// ID.
func (c *Coordinator) SubmitOrAttach(id string, specs []TaskSpec) (j *Job, attached bool, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if id == "" {
		return nil, false, errors.New("fleet: empty job id")
	}
	if j := c.jobs[id]; j != nil {
		if j.fp != specsFingerprint(specs) {
			return nil, false, fmt.Errorf("fleet: job %q exists with different specs", id)
		}
		return j, true, nil
	}
	if c.closed {
		return nil, false, ErrClosed
	}
	j, err = c.submitLocked(id, specs)
	return j, false, err
}

// Attach returns the live job with the given ID, or ErrUnknownJob —
// which a submitter should read as "released or never submitted".
func (c *Coordinator) Attach(id string) (*Job, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j := c.jobs[id]
	if j == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownJob, id)
	}
	return j, nil
}

// submitLocked validates, journals and enqueues one job.
func (c *Coordinator) submitLocked(id string, specs []TaskSpec) (*Job, error) {
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, err
		}
		if _, dup := c.tasks[specs[i].Key]; dup {
			return nil, fmt.Errorf("fleet: duplicate task key %q", specs[i].Key)
		}
	}
	if c.jnl != nil {
		if err := c.jnl.append(journalRecord{Op: opSubmit, Job: id, Specs: specs}); err != nil {
			return nil, err
		}
	}
	j := &Job{
		c: c, id: id, fp: specsFingerprint(specs),
		remaining: len(specs),
		done:      make(chan struct{}),
		intr:      make(chan struct{}),
	}
	for i := range specs {
		t := &task{spec: specs[i], job: j, state: taskQueued}
		c.tasks[t.spec.Key] = t
		c.queue = append(c.queue, t)
		j.keys = append(j.keys, t.spec.Key)
	}
	c.jobs[id] = j
	c.st.Submitted += int64(len(specs))
	return j, nil
}

// Wait blocks until every task of the job finished, then returns the
// results in submission order and releases the job's keys.
//
// Two interruptions are distinguished. Cancelling ctx fails the job's
// unfinished tasks ("canceled"), drops their leases at the workers'
// next heartbeat, releases the keys and returns the partial results
// with ctx's error — the submitter gave up. The coordinator shutting
// down under the job instead returns ErrCoordinatorClosed with the
// results finished so far and does NOT release the keys: on a
// journaled coordinator the job survives the restart, and the
// submitter resumes it with Attach or SubmitOrAttach.
func (j *Job) Wait(ctx context.Context) ([]TaskResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var werr error
	select {
	case <-j.done:
		if j.wasInterrupted() {
			// Close failed the pending tasks under us.
			werr = ErrCoordinatorClosed
		}
	case <-j.intr:
		werr = ErrCoordinatorClosed
	case <-ctx.Done():
		werr = ctx.Err()
		j.cancel()
	}
	release := !errors.Is(werr, ErrClosed)
	return j.collect(release), werr
}

// cancel fails every unfinished task of the job.
func (j *Job) cancel() {
	c := j.c
	c.mu.Lock()
	defer c.mu.Unlock()
	canceled := false
	for _, key := range j.keys {
		if t := c.tasks[key]; t != nil && t.state != taskFinished {
			c.finishLocked(t, TaskResult{Failed: "canceled"})
			canceled = true
		}
	}
	if canceled && c.jnl != nil && j.id != "" {
		if err := c.jnl.append(journalRecord{Op: opCancel, Job: j.id}); err != nil {
			c.logf("fleet: journaling cancel of %s: %v", j.id, err)
		}
	}
}

// collect gathers the finished results and, when release is set,
// releases the job's keys, journals the release, and compacts the
// journal once the coordinator is empty.
func (j *Job) collect(release bool) []TaskResult {
	c := j.c
	c.mu.Lock()
	defer c.mu.Unlock()
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]TaskResult, 0, len(j.keys))
	for _, key := range j.keys {
		t := c.tasks[key]
		if t == nil || t.state != taskFinished {
			continue // released by an earlier Wait, or still pending (Halt)
		}
		out = append(out, t.res)
		if release && !j.released {
			delete(c.tasks, key)
		}
	}
	if release && !j.released {
		j.released = true
		if j.id != "" && c.jobs[j.id] == j {
			delete(c.jobs, j.id)
			if c.jnl != nil {
				if err := c.jnl.append(journalRecord{Op: opRelease, Job: j.id}); err != nil {
					c.logf("fleet: journaling release of %s: %v", j.id, err)
				}
			}
		}
		if c.jnl != nil && len(c.tasks) == 0 && len(c.jobs) == 0 {
			c.jnl.compact()
		}
	}
	return out
}

// LiveKeys lists the unfinished task keys, oldest submission first —
// a diagnostic view for the stats endpoint.
func (c *Coordinator) LiveKeys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var keys []string
	for key, t := range c.tasks {
		if t.state != taskFinished {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}
