package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is a Submitter backed by a resident coordinator's HTTP job
// API (cmd/fleetd). It is built for the failover story: Wait polls
// through coordinator outages and restarts — the journal keeps the job
// alive on the other side — and cancelling Wait's context abandons the
// poll without cancelling the job server-side, which is exactly what a
// submitter that intends to restart and reattach wants. Results are
// read before the job is released, so a submitter crash between the
// two never loses collected work.
type Client struct {
	// Base is the coordinator's base URL, e.g. "http://127.0.0.1:9070".
	Base string

	// Poll is the job-status poll interval; <= 0 defaults to 200ms.
	Poll time.Duration

	// RetryFor bounds how long SubmitTasks and SubmitterStats retry
	// transient failures (transport errors, a draining coordinator)
	// before giving up; <= 0 defaults to 30s. Wait polls are unbounded:
	// only its context stops them.
	RetryFor time.Duration

	// HTTP overrides the transport (tests inject short timeouts).
	HTTP *http.Client

	// Logf, when set, receives outage notices.
	Logf func(format string, args ...interface{})
}

// NewClient returns a Submitter for the coordinator at base.
func NewClient(base string) *Client { return &Client{Base: base} }

func (cl *Client) poll() time.Duration {
	if cl.Poll <= 0 {
		return 200 * time.Millisecond
	}
	return cl.Poll
}

func (cl *Client) retryFor() time.Duration {
	if cl.RetryFor <= 0 {
		return 30 * time.Second
	}
	return cl.RetryFor
}

func (cl *Client) http() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return &http.Client{Timeout: 10 * time.Second}
}

func (cl *Client) logf(format string, args ...interface{}) {
	if cl.Logf != nil {
		cl.Logf(format, args...)
	}
}

// do sends one JSON request and decodes the response into out (when
// non-nil and the status is a 2xx). Error-status bodies are decoded
// into a readable error.
func (cl *Client) do(method, path string, body, out interface{}) (int, error) {
	base := strings.TrimRight(cl.Base, "/")
	var rd io.Reader
	if body != nil {
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			return 0, err
		}
		rd = &buf
	}
	req, err := http.NewRequest(method, base+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.http().Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode >= 300 {
		var eb fleetErrorBody
		if json.NewDecoder(resp.Body).Decode(&eb) == nil && eb.Error != "" {
			return resp.StatusCode, fmt.Errorf("fleet: coordinator: %s", eb.Error)
		}
		return resp.StatusCode, fmt.Errorf("fleet: coordinator returned %d for %s %s", resp.StatusCode, method, path)
	}
	if out != nil && resp.StatusCode != http.StatusNoContent {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// retriable reports whether a submission should be retried: transport
// errors (status 0) and a coordinator mid-drain or mid-restart (503).
func retriable(status int) bool {
	return status == 0 || status == http.StatusServiceUnavailable
}

// SubmitTasks implements Submitter over the job API, retrying
// transient failures for up to RetryFor so a submission races a
// coordinator restart instead of dying to it.
func (cl *Client) SubmitTasks(id string, specs []TaskSpec) (Handle, bool, error) {
	deadline := time.Now().Add(cl.retryFor())
	warned := false
	for {
		var resp SubmitJobResponse
		status, err := cl.do(http.MethodPost, "/fleet/jobs", SubmitJobRequest{ID: id, Specs: specs}, &resp)
		if err == nil {
			return &remoteJob{cl: cl, id: resp.Job}, resp.Attached, nil
		}
		if !retriable(status) || time.Now().After(deadline) {
			return nil, false, err
		}
		if !warned {
			cl.logf("fleet: submit: coordinator unreachable (%v), retrying", err)
			warned = true
		}
		time.Sleep(cl.poll())
	}
}

// SubmitterStats implements Submitter: the coordinator's counters over
// the wire.
func (cl *Client) SubmitterStats() (Stats, error) {
	deadline := time.Now().Add(cl.retryFor())
	for {
		var st Stats
		status, err := cl.do(http.MethodGet, "/fleet/stats", nil, &st)
		if err == nil {
			return st, nil
		}
		if !retriable(status) || time.Now().After(deadline) {
			return Stats{}, err
		}
		time.Sleep(cl.poll())
	}
}

// Recovered fetches the keys the coordinator's boot journal replay
// restored — the failover drill reads this to assert completed cells
// were carried over, not re-run.
func (cl *Client) Recovered() (completed, requeued []string, err error) {
	var resp RecoveredResponse
	if _, err := cl.do(http.MethodGet, "/fleet/recovered", nil, &resp); err != nil {
		return nil, nil, err
	}
	return resp.Completed, resp.Requeued, nil
}

// remoteJob is the Handle for a job living in an external coordinator.
type remoteJob struct {
	cl *Client
	id string
}

func (r *remoteJob) ID() string { return r.id }

// Wait polls the job until done, reads the results, then releases the
// job. Outages are ridden out, not surfaced: an unreachable or
// draining coordinator just extends the poll, because the journaled
// job will still be there when it returns. ctx's cancellation abandons
// the poll with ctx's error and leaves the job held — Attach later to
// resume. An unknown job (released by a previous Wait, or a
// coordinator that lost its journal) is a hard error.
func (r *remoteJob) Wait(ctx context.Context) ([]TaskResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	warned := false
	for {
		var resp JobStatusResponse
		status, err := r.cl.do(http.MethodGet, "/fleet/jobs/"+r.id, nil, &resp)
		switch {
		case err == nil && resp.Done:
			r.release()
			return resp.Results, nil
		case err == nil:
			warned = false
		case status == http.StatusNotFound:
			return nil, fmt.Errorf("%w: %q", ErrUnknownJob, r.id)
		case retriable(status):
			if !warned {
				r.cl.logf("fleet: job %s: coordinator unreachable (%v), waiting it out", r.id, err)
				warned = true
			}
		default:
			return nil, err
		}
		t := time.NewTimer(r.cl.poll())
		select {
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// release drops the job's keys after its results were read. Best
// effort: an undelivered release leaves the job held until the journal
// is next compacted, never loses data.
func (r *remoteJob) release() {
	for attempt := 0; attempt < 3; attempt++ {
		if _, err := r.cl.do(http.MethodDelete, "/fleet/jobs/"+r.id, nil, nil); err == nil {
			return
		}
		time.Sleep(r.cl.poll())
	}
	r.cl.logf("fleet: could not release job %s; it will be compacted away later", r.id)
}
