package fleet

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/rng"
)

// WorkerChaos injects process-level faults into a Worker, mirroring
// internal/chaos's evaluator-level scenario one layer up: where the
// chaos injector misbehaves inside one evaluation, WorkerChaos
// misbehaves as a machine — freezing (heartbeats included), panicking
// mid-task, corrupting result payloads on the wire, or crashing and
// abandoning its leases. Every fault is recoverable at the coordinator
// through lease expiry, re-queueing and checksum rejection, which is
// exactly what the fleet equivalence gates exercise.
//
// Fault draws derive from per-kind generator streams seeded from Seed,
// one draw per kind per lease in fixed order, so a fleet drill replays
// identically.
type WorkerChaos struct {
	// Seed seeds the per-fault streams.
	Seed uint64

	// CrashRate is the probability a lease makes the worker die on the
	// spot: no completion, no deregistration, leases abandoned.
	CrashRate float64

	// HangRate is the probability the worker freezes — execution and
	// heartbeats both — for HangFor before resuming. A freeze longer
	// than the lease TTL expires the lease; the late completion then
	// exercises duplicate-drop ingestion.
	HangRate float64

	// HangFor is the freeze duration; <= 0 defaults to 3x the
	// coordinator's advertised lease TTL, long enough to guarantee the
	// lease bounces.
	HangFor time.Duration

	// PanicRate is the probability the task execution panics before
	// running; the worker recovers it and reports the lease failed.
	PanicRate float64

	// CorruptRate is the probability the completion payload has one
	// byte flipped after checksumming — a corrupted result the
	// coordinator must reject.
	CorruptRate float64
}

// Active reports whether any fault can fire.
func (c WorkerChaos) Active() bool {
	return c.CrashRate > 0 || c.HangRate > 0 || c.PanicRate > 0 || c.CorruptRate > 0
}

// WorkerChaosGrammar documents the ParseWorkerChaos spec format.
const WorkerChaosGrammar = "crash=RATE,hang=RATE[:DUR],panic=RATE,corrupt=RATE,seed=N"

// ParseWorkerChaos parses a compact comma-separated fault spec, e.g.
// "hang=0.05:2s,panic=0.02,corrupt=0.1,seed=7". An empty spec is the
// inactive zero scenario.
func ParseWorkerChaos(spec string) (WorkerChaos, error) {
	var c WorkerChaos
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return c, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return c, fmt.Errorf("fleet: chaos field %q is not key=value (grammar: %s)", field, WorkerChaosGrammar)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return c, fmt.Errorf("fleet: chaos seed %q: %v", v, err)
			}
			c.Seed = n
		case "hang":
			rate, dur, hasDur := strings.Cut(v, ":")
			r, err := parseRate(k, rate)
			if err != nil {
				return c, err
			}
			c.HangRate = r
			if hasDur {
				d, err := time.ParseDuration(dur)
				if err != nil {
					return c, fmt.Errorf("fleet: chaos hang duration %q: %v", dur, err)
				}
				c.HangFor = d
			}
		case "crash", "panic", "corrupt":
			r, err := parseRate(k, v)
			if err != nil {
				return c, err
			}
			switch k {
			case "crash":
				c.CrashRate = r
			case "panic":
				c.PanicRate = r
			case "corrupt":
				c.CorruptRate = r
			}
		default:
			return c, fmt.Errorf("fleet: unknown chaos field %q (grammar: %s)", k, WorkerChaosGrammar)
		}
	}
	return c, nil
}

func parseRate(key, v string) (float64, error) {
	r, err := strconv.ParseFloat(v, 64)
	if err != nil || r < 0 || r > 1 {
		return 0, fmt.Errorf("fleet: chaos %s rate %q must be a probability in [0, 1]", key, v)
	}
	return r, nil
}

// chaosDraw is one lease's fault decisions.
type chaosDraw struct {
	crash, hang, panic_, corrupt bool
}

// chaosInjector holds the per-kind streams. Each kind draws from its
// own generator every lease whether or not it fires, in fixed order,
// so one fault kind's rate never shifts another's sequence — the same
// stream-independence discipline as internal/chaos.
type chaosInjector struct {
	cfg WorkerChaos

	mu                           sync.Mutex
	crash, hang, panic_, corrupt *rng.RNG
}

func newChaosInjector(cfg WorkerChaos) *chaosInjector {
	return &chaosInjector{
		cfg:     cfg,
		crash:   rng.New(rng.Mix(cfg.Seed, 0x9b1a4ef382cd03d1)),
		hang:    rng.New(rng.Mix(cfg.Seed, 0xc53f8a260de974b3)),
		panic_:  rng.New(rng.Mix(cfg.Seed, 0x3d70b9e61f28ac55)),
		corrupt: rng.New(rng.Mix(cfg.Seed, 0x61ec25d8b49f0737)),
	}
}

// draw rolls every fault kind for one lease.
func (ci *chaosInjector) draw() chaosDraw {
	ci.mu.Lock()
	defer ci.mu.Unlock()
	return chaosDraw{
		crash:   ci.crash.Bool(ci.cfg.CrashRate),
		hang:    ci.hang.Bool(ci.cfg.HangRate),
		panic_:  ci.panic_.Bool(ci.cfg.PanicRate),
		corrupt: ci.corrupt.Bool(ci.cfg.CorruptRate),
	}
}
