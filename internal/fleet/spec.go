// Package fleet extends the campaign work-stealing scheduler across
// processes: a coordinator leases deterministic tasks — whole
// (problem × strategy × repetition) campaign cells, or single batched
// evaluations asked by a core.Session — to evaluator workers over
// HTTP/JSON, with registration, heartbeats, lease expiry → re-queue,
// and idempotent result ingestion keyed by the task coordinates.
//
// Every task is a pure function of its spec: cell seeds derive from
// (campaign seed, rep) and evaluation tasks carry the evaluator's full
// generator state, so a task re-executed after a lease bounce produces
// the same bytes and duplicate completions are dropped, not
// double-billed. Results travel as checksummed canonical JSON; a
// corrupted payload is rejected at ingestion and the lease re-queued.
package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/rng"
)

// ScaleSpec is the serializable subset of experiment.Scale shipped with
// a campaign cell. It mirrors every field except the in-process-only
// ones: Fitter (a function value, rejected at submission) and Workers
// (each cell runs one repetition; the worker's own forest parallelism
// comes from Forest.Workers).
type ScaleSpec struct {
	PoolSize int `json:"pool_size"`
	TestSize int `json:"test_size"`

	NInit  int `json:"n_init"`
	NBatch int `json:"n_batch"`
	NMax   int `json:"n_max"`

	Reps      int     `json:"reps"`
	Alpha     float64 `json:"alpha"`
	EvalEvery int     `json:"eval_every"`

	Forest     forest.Config      `json:"forest"`
	WarmUpdate bool               `json:"warm_update,omitempty"`
	Failure    core.FailurePolicy `json:"failure"`
	Guard      core.LabelGuard    `json:"guard"`
	Chaos      chaos.Scenario     `json:"chaos"`
}

// CellTask is one campaign cell: repetition Rep of Strategy on Problem.
// The repetition seed is rng.Mix(Seed, Rep), exactly as in
// experiment.RunCampaign, so a remotely-executed cell is bit-identical
// to the local one.
type CellTask struct {
	Problem  string    `json:"problem"`
	Strategy string    `json:"strategy"`
	Rep      int       `json:"rep"`
	Seed     uint64    `json:"seed"`
	Scale    ScaleSpec `json:"scale"`
}

// Error kinds a worker reports inside a task result payload. They
// distinguish a deterministic outcome (a panicking evaluator
// quarantines its repetition on every execution) from a cancellation
// that only the submitting side can interpret.
const (
	ErrKindPanic    = "panic"
	ErrKindCanceled = "canceled"
	ErrKindError    = "error"
)

// CellResult is a cell's learning curves. ErrKind is empty on success;
// a "panic" carries the recovered value and stack so the campaign can
// quarantine the repetition exactly like the local scheduler does.
type CellResult struct {
	RMSE  []float64     `json:"rmse,omitempty"`
	CC    []float64     `json:"cc,omitempty"`
	Stats core.RunStats `json:"stats"`

	ErrKind    string `json:"err_kind,omitempty"`
	Err        string `json:"err,omitempty"`
	PanicValue string `json:"panic_value,omitempty"`
	PanicStack string `json:"panic_stack,omitempty"`
}

// EvalTask is one batched evaluation for a remote session: measure
// Configs in order on Problem's evaluator starting from the exported
// noise-stream State.
type EvalTask struct {
	Problem string    `json:"problem"`
	State   rng.State `json:"state"`
	Configs [][]int   `json:"configs"`
}

// EvalResult carries the measurements and the advanced stream state,
// which the submitting side restores into its local mirror so
// checkpointing and later local evaluation stay bit-identical.
type EvalResult struct {
	Ys    []float64 `json:"ys,omitempty"`
	State rng.State `json:"state"`

	ErrKind string `json:"err_kind,omitempty"`
	Err     string `json:"err,omitempty"`
}

// TaskSpec is one leasable unit of work. Key is the deterministic task
// coordinate (e.g. "cell/atax/pwu/3") and the idempotency key for
// result ingestion: the first checksum-valid completion wins, every
// later one is dropped as a duplicate.
type TaskSpec struct {
	Key  string    `json:"key"`
	Cell *CellTask `json:"cell,omitempty"`
	Eval *EvalTask `json:"eval,omitempty"`
}

// Validate rejects specs that could never execute.
func (s *TaskSpec) Validate() error {
	if s.Key == "" {
		return errors.New("fleet: task spec has no key")
	}
	if (s.Cell == nil) == (s.Eval == nil) {
		return fmt.Errorf("fleet: task %q must carry exactly one of cell or eval", s.Key)
	}
	return nil
}

// TaskResult is the coordinator's record of one finished task. Payload
// is the checksum-verified result JSON (a CellResult or EvalResult);
// Failed is non-empty when the task permanently failed (attempts
// exhausted, submission canceled) and Payload is nil.
type TaskResult struct {
	Key      string          `json:"key"`
	Payload  json.RawMessage `json:"payload,omitempty"`
	Worker   string          `json:"worker,omitempty"`
	Attempts int             `json:"attempts"`
	Elapsed  time.Duration   `json:"elapsed_ns"`
	Failed   string          `json:"failed,omitempty"`
}

// Checksum is the FNV-1a digest a worker stamps on its marshaled
// result payload and the coordinator recomputes at ingestion. It
// guards the payload bytes in transit — a flipped byte (chaos's
// corruption fault, a truncated body) is rejected and the lease
// re-queued rather than ingested as a plausible-looking curve.
func Checksum(b []byte) uint64 {
	h := fnv.New64a()
	_, _ = h.Write(b)
	return h.Sum64()
}
