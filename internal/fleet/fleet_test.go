package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/space"
)

// testConfig shrinks the lease timings so expiry paths run in
// milliseconds.
func testConfig() Config {
	return Config{
		LeaseTTL:    150 * time.Millisecond,
		Heartbeat:   40 * time.Millisecond,
		Poll:        5 * time.Millisecond,
		MaxAttempts: 8,
	}
}

func cellSpec(key string, rep int) TaskSpec {
	return TaskSpec{Key: key, Cell: &CellTask{Problem: "p", Strategy: "s", Rep: rep, Seed: 42}}
}

func mustSubmit(t *testing.T, c *Coordinator, specs []TaskSpec) *Job {
	t.Helper()
	job, err := c.Submit(specs)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	return job
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	c := New(testConfig())
	defer c.Close()

	job := mustSubmit(t, c, []TaskSpec{cellSpec("a", 0), cellSpec("b", 1)})
	id, params, err := c.Register("unit")
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	if params.LeaseTTL != 150*time.Millisecond {
		t.Errorf("advertised TTL = %v", params.LeaseTTL)
	}

	for i := 0; i < 2; i++ {
		spec, err := c.Lease(id)
		if err != nil || spec == nil {
			t.Fatalf("Lease %d: spec=%v err=%v", i, spec, err)
		}
		payload := []byte(fmt.Sprintf(`{"rmse":[%d]}`, i))
		status, err := c.Complete(id, spec.Key, payload, Checksum(payload), time.Millisecond)
		if err != nil || status != StatusAccepted {
			t.Fatalf("Complete %s: status=%s err=%v", spec.Key, status, err)
		}
	}
	// Queue drained.
	if spec, err := c.Lease(id); err != nil || spec != nil {
		t.Fatalf("Lease on empty queue: spec=%v err=%v", spec, err)
	}

	results, err := job.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if len(results) != 2 || results[0].Key != "a" || results[1].Key != "b" {
		t.Fatalf("results out of order: %+v", results)
	}
	for _, r := range results {
		if r.Failed != "" || r.Attempts != 1 || len(r.Payload) == 0 {
			t.Errorf("result %s: %+v", r.Key, r)
		}
	}
	st := c.Stats()
	if st.Completed != 2 || st.Failed != 0 || st.Requeues != 0 {
		t.Errorf("stats: %+v", st)
	}

	// Keys released: the same coordinates can be resubmitted.
	job2 := mustSubmit(t, c, []TaskSpec{cellSpec("a", 0)})
	spec, _ := c.Lease(id)
	if spec == nil || spec.Key != "a" {
		t.Fatalf("resubmitted key not leasable: %v", spec)
	}
	p := []byte(`{}`)
	c.Complete(id, "a", p, Checksum(p), 0)
	if _, err := job2.Wait(context.Background()); err != nil {
		t.Fatalf("Wait 2: %v", err)
	}
}

func TestCoordinatorIdempotentCompletion(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	mustSubmit(t, c, []TaskSpec{cellSpec("a", 0)})
	id, _, _ := c.Register("w")
	spec, _ := c.Lease(id)
	payload := []byte(`{"rmse":[1,2]}`)
	if status, _ := c.Complete(id, spec.Key, payload, Checksum(payload), 0); status != StatusAccepted {
		t.Fatalf("first completion: %s", status)
	}
	if status, _ := c.Complete(id, spec.Key, payload, Checksum(payload), 0); status != StatusDuplicate {
		t.Fatalf("second completion: %s", status)
	}
	st := c.Stats()
	if st.Completed != 1 || st.Duplicates != 1 {
		t.Errorf("stats: completed=%d duplicates=%d", st.Completed, st.Duplicates)
	}
}

func TestCoordinatorCorruptPayloadRequeues(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	mustSubmit(t, c, []TaskSpec{cellSpec("a", 0)})
	id, _, _ := c.Register("w")
	spec, _ := c.Lease(id)
	payload := []byte(`{"rmse":[1]}`)
	if status, _ := c.Complete(id, spec.Key, payload, Checksum(payload)+1, 0); status != StatusCorrupt {
		t.Fatalf("corrupt completion accepted")
	}
	// The lease bounced; the task is leasable again and a clean payload
	// finishes it on attempt two.
	spec2, _ := c.Lease(id)
	if spec2 == nil || spec2.Key != "a" {
		t.Fatalf("task not requeued after corrupt payload: %v", spec2)
	}
	if status, _ := c.Complete(id, "a", payload, Checksum(payload), 0); status != StatusAccepted {
		t.Fatalf("clean completion rejected")
	}
	st := c.Stats()
	if st.Corrupt != 1 || st.Requeues != 1 {
		t.Errorf("stats: %+v", st)
	}
}

func TestCoordinatorLeaseExpiry(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	mustSubmit(t, c, []TaskSpec{cellSpec("a", 0)})
	id1, _, _ := c.Register("silent")
	spec, _ := c.Lease(id1)
	if spec == nil {
		t.Fatal("no lease")
	}
	// id1 never heartbeats: within ~TTL + sweep tick the worker is lost
	// and the task re-queued for id2.
	id2, _, _ := c.Register("alive")
	deadline := time.Now().Add(2 * time.Second)
	var spec2 *TaskSpec
	for time.Now().Before(deadline) {
		if _, err := c.Heartbeat(id2, nil); err != nil {
			t.Fatalf("heartbeat: %v", err)
		}
		spec2, _ = c.Lease(id2)
		if spec2 != nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if spec2 == nil || spec2.Key != "a" {
		t.Fatal("expired lease never re-queued")
	}
	st := c.Stats()
	if st.Expired == 0 || st.Requeues == 0 {
		t.Errorf("stats: %+v", st)
	}
	// The silent worker is gone; its calls 404.
	if _, err := c.Heartbeat(id1, nil); !errors.Is(err, ErrUnknownWorker) {
		t.Errorf("silent worker heartbeat: %v", err)
	}
	// But its (stale) checksum-valid completion still ingests: tasks
	// are deterministic, the bytes are the bytes.
	payload := []byte(`{"rmse":[9]}`)
	if status, _ := c.Complete(id1, "a", payload, Checksum(payload), 0); status != StatusAccepted {
		t.Errorf("stale valid completion not accepted")
	}
	// The current lessee's heartbeat now drops the lease.
	drop, err := c.Heartbeat(id2, []string{"a"})
	if err != nil || len(drop) != 1 || drop[0] != "a" {
		t.Errorf("drop = %v, err = %v", drop, err)
	}
}

func TestCoordinatorMaxAttemptsExhausted(t *testing.T) {
	cfg := testConfig()
	cfg.MaxAttempts = 2
	c := New(cfg)
	defer c.Close()
	job := mustSubmit(t, c, []TaskSpec{cellSpec("a", 0)})
	id, _, _ := c.Register("w")
	for i := 0; i < 2; i++ {
		spec, _ := c.Lease(id)
		if spec == nil {
			t.Fatalf("attempt %d: no lease", i)
		}
		c.Fail(id, spec.Key, "boom")
	}
	results, err := job.Wait(context.Background())
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if results[0].Failed == "" || !strings.Contains(results[0].Failed, "attempts exhausted") {
		t.Errorf("task not failed permanently: %+v", results[0])
	}
	if results[0].Attempts != 2 {
		t.Errorf("attempts = %d", results[0].Attempts)
	}
}

func TestCoordinatorSubmitValidation(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	if _, err := c.Submit([]TaskSpec{{Key: ""}}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := c.Submit([]TaskSpec{{Key: "x"}}); err == nil {
		t.Error("bodyless task accepted")
	}
	if _, err := c.Submit([]TaskSpec{
		{Key: "x", Cell: &CellTask{}, Eval: &EvalTask{}},
	}); err == nil {
		t.Error("two-body task accepted")
	}
	mustSubmit(t, c, []TaskSpec{cellSpec("live", 0)})
	if _, err := c.Submit([]TaskSpec{cellSpec("live", 0)}); err == nil {
		t.Error("duplicate live key accepted")
	}
}

func TestJobWaitCancel(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	job := mustSubmit(t, c, []TaskSpec{cellSpec("a", 0), cellSpec("b", 1)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := job.Wait(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait: %v", err)
	}
	for _, r := range results {
		if r.Failed != "canceled" {
			t.Errorf("result %s: %+v", r.Key, r)
		}
	}
}

func TestCoordinatorCloseFailsPending(t *testing.T) {
	c := New(testConfig())
	job := mustSubmit(t, c, []TaskSpec{cellSpec("a", 0)})
	c.Close()
	results, err := job.Wait(context.Background())
	if !errors.Is(err, ErrCoordinatorClosed) {
		t.Fatalf("Wait after Close: err = %v, want ErrCoordinatorClosed", err)
	}
	if !errors.Is(err, ErrClosed) {
		t.Errorf("ErrCoordinatorClosed does not wrap ErrClosed: %v", err)
	}
	if results[0].Failed == "" {
		t.Errorf("pending task survived Close: %+v", results[0])
	}
	if _, _, err := c.Register("late"); !errors.Is(err, ErrClosed) {
		t.Errorf("Register after Close: %v", err)
	}
}

// TestJobWaitShutdownVsContext pins the two interruption channels of
// Wait apart: the submitter's own context error means abort, the
// coordinator shutting down means reattach — conflating them was the
// bug this distinction exists for.
func TestJobWaitShutdownVsContext(t *testing.T) {
	// Context path: a deadline fires while the coordinator is healthy.
	c := New(testConfig())
	job := mustSubmit(t, c, []TaskSpec{cellSpec("ctx", 0)})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := job.Wait(ctx); !errors.Is(err, context.Canceled) || errors.Is(err, ErrClosed) {
		t.Fatalf("ctx-canceled Wait: err = %v, want context.Canceled and not ErrClosed", err)
	}
	c.Close()

	// Shutdown path: Close while a Wait blocks.
	c2 := New(testConfig())
	job2 := mustSubmit(t, c2, []TaskSpec{cellSpec("shut", 0)})
	errc := make(chan error, 1)
	go func() {
		_, err := job2.Wait(context.Background())
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c2.Close()
	if err := <-errc; !errors.Is(err, ErrCoordinatorClosed) {
		t.Fatalf("Wait across Close: err = %v, want ErrCoordinatorClosed", err)
	}

	// A job that finished before the shutdown is not retroactively
	// interrupted: its results are complete and its error nil.
	c3 := New(testConfig())
	job3 := mustSubmit(t, c3, []TaskSpec{cellSpec("fin", 0)})
	id, _, err := c3.Register("w")
	if err != nil {
		t.Fatal(err)
	}
	spec, err := c3.Lease(id)
	if err != nil || spec == nil {
		t.Fatalf("Lease: %v %v", spec, err)
	}
	payload, _ := json.Marshal(map[string]int{"ok": 1})
	if _, err := c3.Complete(id, spec.Key, payload, Checksum(payload), 0); err != nil {
		t.Fatal(err)
	}
	c3.Halt()
	results, err := job3.Wait(context.Background())
	if err != nil || len(results) != 1 || results[0].Failed != "" {
		t.Fatalf("finished job across Halt: results=%+v err=%v", results, err)
	}
}

func TestParseWorkerChaos(t *testing.T) {
	cases := []struct {
		spec string
		want WorkerChaos
		ok   bool
	}{
		{"", WorkerChaos{}, true},
		{"crash=0.01", WorkerChaos{CrashRate: 0.01}, true},
		{"hang=0.05:2s,panic=0.02,corrupt=0.1,seed=7",
			WorkerChaos{Seed: 7, HangRate: 0.05, HangFor: 2 * time.Second, PanicRate: 0.02, CorruptRate: 0.1}, true},
		{"hang=0.5", WorkerChaos{HangRate: 0.5}, true},
		{"crash=1.5", WorkerChaos{}, false},
		{"crash=-0.1", WorkerChaos{}, false},
		{"hang=0.1:xx", WorkerChaos{}, false},
		{"nonsense", WorkerChaos{}, false},
		{"bogus=0.1", WorkerChaos{}, false},
		{"seed=abc", WorkerChaos{}, false},
	}
	for _, tc := range cases {
		got, err := ParseWorkerChaos(tc.spec)
		if (err == nil) != tc.ok {
			t.Errorf("ParseWorkerChaos(%q): err = %v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseWorkerChaos(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

func TestChaosInjectorDeterminism(t *testing.T) {
	cfg := WorkerChaos{Seed: 3, CrashRate: 0.2, HangRate: 0.3, PanicRate: 0.1, CorruptRate: 0.4}
	a, b := newChaosInjector(cfg), newChaosInjector(cfg)
	fired := false
	for i := 0; i < 200; i++ {
		da, db := a.draw(), b.draw()
		if da != db {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, da, db)
		}
		if da.crash || da.hang || da.panic_ || da.corrupt {
			fired = true
		}
	}
	if !fired {
		t.Error("no fault ever fired at these rates")
	}
}

// echoRunner returns deterministic payloads derived from the task spec,
// standing in for the experiment layer.
type echoRunner struct{}

func (echoRunner) RunCell(ctx context.Context, t *CellTask) *CellResult {
	return &CellResult{RMSE: []float64{float64(t.Rep) + 0.5}, CC: []float64{float64(t.Rep)}}
}

func (echoRunner) RunEval(ctx context.Context, t *EvalTask) *EvalResult {
	r, err := rng.FromState(t.State)
	if err != nil {
		return &EvalResult{ErrKind: ErrKindError, Err: err.Error()}
	}
	ys := make([]float64, len(t.Configs))
	for i, cfg := range t.Configs {
		ys[i] = r.Float64() + float64(cfg[0])
	}
	return &EvalResult{Ys: ys, State: r.State()}
}

func startWorker(t *testing.T, w *Worker) chan error {
	t.Helper()
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(context.Background()) }()
	return errCh
}

func runWorker(t *testing.T, w *Worker, ctx context.Context) chan error {
	t.Helper()
	errCh := make(chan error, 1)
	go func() { errCh <- w.Run(ctx) }()
	return errCh
}

func waitWorker(t *testing.T, errCh chan error, want error) {
	t.Helper()
	select {
	case err := <-errCh:
		if !errors.Is(err, want) && (want != nil || err != nil) {
			t.Errorf("worker exit = %v, want %v", err, want)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("worker did not exit")
	}
}

func TestWorkerEndToEnd(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	w := &Worker{Coordinator: srv.URL, Name: "e2e", Runner: echoRunner{}, Logf: t.Logf}
	errCh := runWorker(t, w, ctx)

	specs := make([]TaskSpec, 5)
	for i := range specs {
		specs[i] = cellSpec(fmt.Sprintf("cell/p/s/%d", i), i)
	}
	job := mustSubmit(t, c, specs)
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	results, err := job.Wait(wctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for i, r := range results {
		if r.Failed != "" {
			t.Fatalf("task %s failed: %s", r.Key, r.Failed)
		}
		var res CellResult
		if err := json.Unmarshal(r.Payload, &res); err != nil {
			t.Fatalf("task %s payload: %v", r.Key, err)
		}
		if len(res.RMSE) != 1 || res.RMSE[0] != float64(i)+0.5 {
			t.Errorf("task %s: rmse = %v", r.Key, res.RMSE)
		}
	}

	// Graceful drain: cancel → worker deregisters and exits nil.
	cancel()
	waitWorker(t, errCh, nil)
	st := c.Stats()
	if st.Workers != 0 || st.Completed != 5 {
		t.Errorf("stats after drain: %+v", st)
	}
}

func TestWorkerKilledMidLeaseRecovers(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	victim := &Worker{Coordinator: srv.URL, Name: "victim", Runner: echoRunner{}, Logf: t.Logf}
	var killOnce sync.Once
	victim.OnLease = func(key string) {
		killOnce.Do(func() {
			victim.Kill()
			// Block this execution until the kill lands so no result
			// escapes before death.
			time.Sleep(50 * time.Millisecond)
		})
	}
	victimCh := startWorker(t, victim)

	job := mustSubmit(t, c, []TaskSpec{cellSpec("cell/p/s/0", 0)})
	waitWorker(t, victimCh, ErrKilled)

	// The abandoned lease expires and a healthy worker finishes the task.
	ctx, cancel := context.WithCancel(context.Background())
	healthy := &Worker{Coordinator: srv.URL, Name: "healthy", Runner: echoRunner{}, Logf: t.Logf}
	healthyCh := runWorker(t, healthy, ctx)
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	results, err := job.Wait(wctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if results[0].Failed != "" {
		t.Fatalf("task failed: %s", results[0].Failed)
	}
	if results[0].Attempts < 2 {
		t.Errorf("attempts = %d, want >= 2 (kill consumed one)", results[0].Attempts)
	}
	if st := c.Stats(); st.Expired == 0 {
		t.Errorf("no expiry recorded: %+v", st)
	}
	cancel()
	waitWorker(t, healthyCh, nil)
}

func TestWorkerCorruptChaosRecovers(t *testing.T) {
	cfg := testConfig()
	cfg.MaxAttempts = 10
	c := New(cfg)
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Corrupting worker: every payload has a byte flipped, so the
	// coordinator must reject each one by checksum.
	bad := &Worker{Coordinator: srv.URL, Name: "bad", Runner: echoRunner{},
		Chaos: WorkerChaos{Seed: 1, CorruptRate: 1}, Logf: t.Logf}
	good := &Worker{Coordinator: srv.URL, Name: "good", Runner: echoRunner{}, Logf: t.Logf}
	badCh := runWorker(t, bad, ctx)
	goodCh := runWorker(t, good, ctx)

	job := mustSubmit(t, c, []TaskSpec{cellSpec("cell/p/s/0", 0), cellSpec("cell/p/s/1", 1)})
	wctx, wcancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer wcancel()
	results, err := job.Wait(wctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	for i, r := range results {
		if r.Failed != "" {
			t.Fatalf("task %s failed: %s", r.Key, r.Failed)
		}
		var res CellResult
		if err := json.Unmarshal(r.Payload, &res); err != nil {
			t.Fatalf("payload: %v", err)
		}
		if res.RMSE[0] != float64(i)+0.5 {
			t.Errorf("task %s: rmse = %v", r.Key, res.RMSE)
		}
	}
	cancel()
	waitWorker(t, badCh, nil)
	waitWorker(t, goodCh, nil)
}

func TestWorkerPanicChaosReported(t *testing.T) {
	cfg := testConfig()
	cfg.MaxAttempts = 2
	c := New(cfg)
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Coordinator: srv.URL, Name: "panicky", Runner: echoRunner{},
		Chaos: WorkerChaos{Seed: 1, PanicRate: 1}, Logf: t.Logf}
	errCh := runWorker(t, w, ctx)

	job := mustSubmit(t, c, []TaskSpec{cellSpec("cell/p/s/0", 0)})
	wctx, wcancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer wcancel()
	results, err := job.Wait(wctx)
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if results[0].Failed == "" || !strings.Contains(results[0].Failed, "panic") {
		t.Errorf("panicking worker did not fail the task: %+v", results[0])
	}
	cancel()
	waitWorker(t, errCh, nil)
}

// statefulFake is a minimal core.StatefulEvaluator whose measurements
// come from an owned generator, mirroring bench evaluators.
type statefulFake struct{ r *rng.RNG }

func (f *statefulFake) Evaluate(ctx context.Context, cfg space.Config) (float64, error) {
	return f.r.Float64() + float64(cfg[0]), nil
}
func (f *statefulFake) EvaluatorState() rng.State { return f.r.State() }
func (f *statefulFake) RestoreEvaluatorState(st rng.State) error {
	r, err := rng.FromState(st)
	if err != nil {
		return err
	}
	f.r = r
	return nil
}

func TestRemoteEvaluatorMatchesLocal(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Coordinator: srv.URL, Runner: echoRunner{}, Logf: t.Logf}
	errCh := runWorker(t, w, ctx)

	local := &statefulFake{r: rng.New(7)}
	mirror := &statefulFake{r: rng.New(7)}
	remote, err := NewRemoteEvaluator(c, "p", mirror)
	if err != nil {
		t.Fatal(err)
	}

	cfgs := []space.Config{{1, 0}, {2, 0}, {3, 0}}
	labels, err := remote.EvaluateBatch(context.Background(), cfgs)
	if err != nil {
		t.Fatalf("EvaluateBatch: %v", err)
	}
	for i, cfg := range cfgs {
		want, _ := local.Evaluate(context.Background(), cfg)
		if labels[i].Y != want {
			t.Errorf("config %v: remote %v, local %v", cfg, labels[i].Y, want)
		}
	}
	// The mirror's stream advanced exactly as far as the local one: the
	// next measurement agrees no matter where it runs.
	yr, _ := mirror.Evaluate(context.Background(), space.Config{4, 0})
	yl, _ := local.Evaluate(context.Background(), space.Config{4, 0})
	if yr != yl {
		t.Errorf("stream diverged after remote batch: %v vs %v", yr, yl)
	}
	cancel()
	waitWorker(t, errCh, nil)

	if _, err := NewRemoteEvaluator(c, "p", core.EvaluatorFunc(func(ctx context.Context, cfg space.Config) (float64, error) {
		return 0, nil
	})); err == nil {
		t.Error("stateless evaluator accepted")
	}
}

func TestChecksum(t *testing.T) {
	a := Checksum([]byte(`{"x":1}`))
	if a != Checksum([]byte(`{"x":1}`)) {
		t.Error("checksum not deterministic")
	}
	if a == Checksum([]byte(`{"x":2}`)) {
		t.Error("checksum collision on differing payloads")
	}
}
