package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// swapHandler stands in for a resident coordinator's address: the
// handler behind it can be taken down (503, the drain signal) and
// replaced by a restarted coordinator's, while clients keep talking to
// the same URL.
type swapHandler struct {
	mu   sync.Mutex
	h    http.Handler
	down bool
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h, down := s.h, s.down
	s.mu.Unlock()
	if down {
		http.Error(w, `{"error":"restarting"}`, http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

func (s *swapHandler) swap(h http.Handler, down bool) {
	s.mu.Lock()
	s.h, s.down = h, down
	s.mu.Unlock()
}

func testClient(url string) *Client {
	cl := NewClient(url)
	cl.Poll = 5 * time.Millisecond
	cl.RetryFor = 5 * time.Second
	return cl
}

// TestClientSubmitWaitRelease drives the whole remote-submitter
// protocol against an in-process coordinator.
func TestClientSubmitWaitRelease(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	cl := testClient(srv.URL)

	h, attached, err := cl.SubmitTasks("", []TaskSpec{cellSpec("a", 0), cellSpec("b", 1)})
	if err != nil || attached {
		t.Fatalf("SubmitTasks: attached=%v err=%v", attached, err)
	}
	w, _, err := c.Register("w1")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		key := leaseKey(t, c, w)
		payload, _ := json.Marshal(map[string]string{"k": key})
		completeKey(t, c, w, key, payload)
	}
	results, err := h.Wait(context.Background())
	if err != nil || len(results) != 2 {
		t.Fatalf("Wait: %d results, err=%v", len(results), err)
	}
	// Wait released the job: the keys are free again.
	if _, _, err := cl.SubmitTasks("", []TaskSpec{cellSpec("a", 0)}); err != nil {
		t.Fatalf("re-submitting released keys: %v", err)
	}
	if st, err := cl.SubmitterStats(); err != nil || st.Completed != 2 {
		t.Fatalf("SubmitterStats: %+v err=%v", st, err)
	}
}

// TestClientWaitCtxAbandonsNotCancels: a submitter's context expiry
// abandons the poll but leaves the job running server-side — the
// precondition for its restarted incarnation to reattach.
func TestClientWaitCtxAbandonsNotCancels(t *testing.T) {
	c := New(testConfig())
	defer c.Close()
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	cl := testClient(srv.URL)

	specs := []TaskSpec{cellSpec("a", 0)}
	h, _, err := cl.SubmitTasks("job-abandon", specs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := h.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Wait: %v, want context.Canceled", err)
	}
	// The job survived the abandoned Wait.
	if _, attached, err := cl.SubmitTasks("job-abandon", specs); err != nil || !attached {
		t.Fatalf("reattach after abandoned Wait: attached=%v err=%v", attached, err)
	}
}

// TestClientRidesOutCoordinatorRestart is the submitter's half of the
// failover story, in-process: the coordinator is halted and reopened
// from its journal behind the same address while a client Wait is in
// flight; the Wait rides out the outage and delivers results that
// include the pre-restart payload bit-identically.
func TestClientRidesOutCoordinatorRestart(t *testing.T) {
	dir := t.TempDir()
	c1, err := Open(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	sw := &swapHandler{h: c1.Handler()}
	srv := httptest.NewServer(sw)
	defer srv.Close()
	cl := testClient(srv.URL)

	specs := []TaskSpec{cellSpec("a", 0), cellSpec("b", 1)}
	h, _, err := cl.SubmitTasks("job-r", specs)
	if err != nil {
		t.Fatal(err)
	}
	w, _, err := c1.Register("w1")
	if err != nil {
		t.Fatal(err)
	}
	doneKey := leaseKey(t, c1, w)
	donePayload, _ := json.Marshal(map[string]string{"from": "before-restart"})
	completeKey(t, c1, w, doneKey, donePayload)

	type waitOut struct {
		results []TaskResult
		err     error
	}
	outc := make(chan waitOut, 1)
	go func() {
		results, err := h.Wait(context.Background())
		outc <- waitOut{results, err}
	}()

	// Down for a restart...
	sw.swap(nil, true)
	c1.Halt()
	time.Sleep(30 * time.Millisecond) // let the Wait poll hit the outage
	// ...and back, recovered from the journal.
	c2, err := Open(journalConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	sw.swap(c2.Handler(), false)

	// The restarted submitter path: same ID + specs attaches.
	if _, attached, err := cl.SubmitTasks("job-r", specs); err != nil || !attached {
		t.Fatalf("reattach after restart: attached=%v err=%v", attached, err)
	}
	completed, _, err := cl.Recovered()
	if err != nil || len(completed) != 1 || completed[0] != doneKey {
		t.Fatalf("Recovered: %v err=%v", completed, err)
	}

	w2, _, err := c2.Register("w2")
	if err != nil {
		t.Fatal(err)
	}
	key := leaseKey(t, c2, w2)
	if key == doneKey {
		t.Fatalf("completed key %s re-leased after restart", doneKey)
	}
	payload, _ := json.Marshal(map[string]string{"from": "after-restart"})
	completeKey(t, c2, w2, key, payload)

	out := <-outc
	if out.err != nil || len(out.results) != 2 {
		t.Fatalf("Wait across restart: %d results, err=%v", len(out.results), out.err)
	}
	for _, r := range out.results {
		if r.Key == doneKey && string(r.Payload) != string(donePayload) {
			t.Errorf("payload for %s changed across restart: %s", r.Key, r.Payload)
		}
	}
}

// TestRegisterBackoff pins the jitter contract: deterministic per
// name, distinct across names, envelope [0.5x, 1.5x) of the capped
// exponential steps.
func TestRegisterBackoff(t *testing.T) {
	a1, a2, b := newRegisterBackoff("wa"), newRegisterBackoff("wa"), newRegisterBackoff("wb")
	base := 50 * time.Millisecond
	max := 2 * time.Second
	differs := false
	for i := 0; i < 12; i++ {
		da, da2, db := a1.delay(), a2.delay(), b.delay()
		if da != da2 {
			t.Fatalf("step %d: same-name backoffs diverge: %v vs %v", i, da, da2)
		}
		if da != db {
			differs = true
		}
		step := base << uint(i)
		if step > max {
			step = max
		}
		lo, hi := step/2, step+step/2
		if da < lo || da >= hi {
			t.Errorf("step %d: delay %v outside [%v, %v)", i, da, lo, hi)
		}
	}
	if !differs {
		t.Error("different worker names produced identical backoff schedules")
	}
}
