// Package space models tunable parameter spaces: the cross product of a
// set of named parameters, each with a finite list of levels.
//
// This is the repository's representation of the search problems the paper
// tunes over — SPAPT compilation parameters (Table I), kripke run
// parameters (Table II) and hypre solver parameters (Table III). A point
// in a space is a Config: one chosen level index per parameter.
//
// Parameters come in three kinds:
//
//   - Numeric: ordered numeric levels (tile sizes, unroll factors,
//     process counts). Surrogate models may exploit the ordering.
//   - Categorical: unordered named levels (kripke layouts, hypre
//     coarsening schemes). Models must not assume an ordering.
//   - Boolean: a two-level convenience kind (scalar replacement on/off),
//     encoded numerically as 0/1.
package space

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/rng"
)

// Kind classifies a parameter's level structure.
type Kind int

// The three parameter kinds. See the package comment.
const (
	Numeric Kind = iota
	Categorical
	Boolean
)

// String returns the lower-case kind name.
func (k Kind) String() string {
	switch k {
	case Numeric:
		return "numeric"
	case Categorical:
		return "categorical"
	case Boolean:
		return "boolean"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Parameter is one tunable dimension of a space.
type Parameter struct {
	Name string
	Kind Kind

	// Levels holds the numeric level values for Numeric parameters,
	// ascending. For Boolean it is {0, 1}. Unused for Categorical.
	Levels []float64

	// Names holds the level names for Categorical parameters. Unused
	// for Numeric and Boolean.
	Names []string
}

// NumLevels returns the number of levels the parameter can take.
func (p Parameter) NumLevels() int {
	if p.Kind == Categorical {
		return len(p.Names)
	}
	return len(p.Levels)
}

// LevelString renders level index i human-readably.
func (p Parameter) LevelString(i int) string {
	switch p.Kind {
	case Categorical:
		return p.Names[i]
	case Boolean:
		if p.Levels[i] != 0 {
			return "true"
		}
		return "false"
	default:
		return strconv.FormatFloat(p.Levels[i], 'g', -1, 64)
	}
}

// Num constructs a Numeric parameter. Levels must be strictly ascending.
func Num(name string, levels ...float64) Parameter {
	return Parameter{Name: name, Kind: Numeric, Levels: levels}
}

// NumRange constructs a Numeric parameter with integer levels
// lo, lo+step, ..., up to and including hi when reachable.
func NumRange(name string, lo, hi, step int) Parameter {
	var levels []float64
	for v := lo; v <= hi; v += step {
		levels = append(levels, float64(v))
	}
	return Num(name, levels...)
}

// Cat constructs a Categorical parameter from its level names.
func Cat(name string, names ...string) Parameter {
	return Parameter{Name: name, Kind: Categorical, Names: names}
}

// Bool constructs a Boolean parameter with levels false (0) and true (1).
func Bool(name string) Parameter {
	return Parameter{Name: name, Kind: Boolean, Levels: []float64{0, 1}}
}

// Space is an immutable cross product of parameters.
type Space struct {
	params []Parameter
	index  map[string]int
}

// New validates the parameters and builds a Space. Names must be unique
// and non-empty; every parameter needs at least one level; Numeric levels
// must be strictly ascending.
func New(params ...Parameter) (*Space, error) {
	if len(params) == 0 {
		return nil, errors.New("space: no parameters")
	}
	index := make(map[string]int, len(params))
	for i, p := range params {
		if p.Name == "" {
			return nil, fmt.Errorf("space: parameter %d has empty name", i)
		}
		if _, dup := index[p.Name]; dup {
			return nil, fmt.Errorf("space: duplicate parameter %q", p.Name)
		}
		if p.NumLevels() == 0 {
			return nil, fmt.Errorf("space: parameter %q has no levels", p.Name)
		}
		switch p.Kind {
		case Numeric, Boolean:
			for j := 1; j < len(p.Levels); j++ {
				if p.Levels[j] <= p.Levels[j-1] {
					return nil, fmt.Errorf("space: parameter %q levels not strictly ascending", p.Name)
				}
			}
		case Categorical:
			seen := make(map[string]bool, len(p.Names))
			for _, nm := range p.Names {
				if seen[nm] {
					return nil, fmt.Errorf("space: parameter %q has duplicate level %q", p.Name, nm)
				}
				seen[nm] = true
			}
		default:
			return nil, fmt.Errorf("space: parameter %q has invalid kind %d", p.Name, p.Kind)
		}
		index[p.Name] = i
	}
	return &Space{params: append([]Parameter(nil), params...), index: index}, nil
}

// MustNew is New but panics on error; intended for statically-known
// benchmark space definitions.
func MustNew(params ...Parameter) *Space {
	s, err := New(params...)
	if err != nil {
		panic(err)
	}
	return s
}

// NumParams returns the dimensionality of the space.
func (s *Space) NumParams() int { return len(s.params) }

// Param returns parameter i.
func (s *Space) Param(i int) Parameter { return s.params[i] }

// ByName looks a parameter up by name.
func (s *Space) ByName(name string) (Parameter, bool) {
	i, ok := s.index[name]
	if !ok {
		return Parameter{}, false
	}
	return s.params[i], true
}

// IndexOf returns the position of the named parameter, or -1.
func (s *Space) IndexOf(name string) int {
	i, ok := s.index[name]
	if !ok {
		return -1
	}
	return i
}

// LogCardinality returns log10 of the number of distinct configurations.
// The spaces in this repo range up to ~10^38, beyond uint64, so the
// logarithm is the robust representation.
func (s *Space) LogCardinality() float64 {
	acc := 0.0
	for _, p := range s.params {
		acc += math.Log10(float64(p.NumLevels()))
	}
	return acc
}

// Cardinality returns the exact number of configurations if it fits in an
// int64, with ok=false otherwise.
func (s *Space) Cardinality() (n int64, ok bool) {
	n = 1
	for _, p := range s.params {
		l := int64(p.NumLevels())
		if n > math.MaxInt64/l {
			return 0, false
		}
		n *= l
	}
	return n, true
}

// Config is a point in a space: one level index per parameter, in
// parameter order.
type Config []int

// Clone returns a copy of the config.
func (c Config) Clone() Config { return append(Config(nil), c...) }

// Key returns a compact string key usable for deduplication maps.
func (c Config) Key() string {
	var b strings.Builder
	for i, v := range c {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// Validate checks that the config indexes valid levels of s.
func (s *Space) Validate(c Config) error {
	if len(c) != len(s.params) {
		return fmt.Errorf("space: config has %d entries, space has %d parameters", len(c), len(s.params))
	}
	for i, v := range c {
		if v < 0 || v >= s.params[i].NumLevels() {
			return fmt.Errorf("space: parameter %q level index %d out of [0,%d)", s.params[i].Name, v, s.params[i].NumLevels())
		}
	}
	return nil
}

// Value returns the numeric value of parameter i under config c: the
// level value for Numeric/Boolean parameters and the level index for
// Categorical ones.
func (s *Space) Value(c Config, i int) float64 {
	p := s.params[i]
	if p.Kind == Categorical {
		return float64(c[i])
	}
	return p.Levels[c[i]]
}

// ValueByName is Value addressed by parameter name; it panics if the name
// is unknown (benchmark cost models address parameters statically).
func (s *Space) ValueByName(c Config, name string) float64 {
	i, ok := s.index[name]
	if !ok {
		panic("space: unknown parameter " + name)
	}
	return s.Value(c, i)
}

// LevelByName returns the raw level index of the named parameter.
func (s *Space) LevelByName(c Config, name string) int {
	i, ok := s.index[name]
	if !ok {
		panic("space: unknown parameter " + name)
	}
	return c[i]
}

// NameOf returns the display string of parameter i's level under c.
func (s *Space) NameOf(c Config, i int) string {
	return s.params[i].LevelString(c[i])
}

// String renders c as "name=value" pairs.
func (s *Space) String(c Config) string {
	var b strings.Builder
	for i, p := range s.params {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(p.Name)
		b.WriteByte('=')
		b.WriteString(p.LevelString(c[i]))
	}
	return b.String()
}

// SampleConfig draws a uniform random configuration.
func (s *Space) SampleConfig(r *rng.RNG) Config {
	c := make(Config, len(s.params))
	for i, p := range s.params {
		c[i] = r.Intn(p.NumLevels())
	}
	return c
}

// SampleConfigs draws n uniform configurations with replacement. With the
// very large kernel spaces duplicates are vanishingly rare; with the small
// application spaces (kripke has only a few thousand points) duplicates
// are expected and mirror the paper's "sample 10,000 configurations"
// protocol.
func (s *Space) SampleConfigs(r *rng.RNG, n int) []Config {
	out := make([]Config, n)
	for i := range out {
		out[i] = s.SampleConfig(r)
	}
	return out
}

// Constraint restricts a space to feasible configurations; it returns
// true when c is feasible. SPAPT-style search problems attach one to
// exclude parameter combinations whose code variant fails to build.
type Constraint func(c Config) bool

// SampleFeasible draws n configurations satisfying the constraint by
// rejection sampling. It returns an error when the acceptance rate makes
// that hopeless (fewer than n hits in 1000×n tries), which indicates the
// constraint excludes essentially the whole space.
func (s *Space) SampleFeasible(r *rng.RNG, n int, feasible Constraint) ([]Config, error) {
	if feasible == nil {
		return s.SampleConfigs(r, n), nil
	}
	out := make([]Config, 0, n)
	for tries := 0; len(out) < n; tries++ {
		if tries >= 1000*n {
			return nil, fmt.Errorf("space: constraint acceptance below 0.1%%: %d/%d after %d tries", len(out), n, tries)
		}
		if c := s.SampleConfig(r); feasible(c) {
			out = append(out, c)
		}
	}
	return out, nil
}

// SampleDistinct draws up to n distinct configurations. If the space has
// fewer than n points it enumerates them all instead.
func (s *Space) SampleDistinct(r *rng.RNG, n int) []Config {
	if card, ok := s.Cardinality(); ok && card <= int64(n) {
		return s.Enumerate()
	}
	seen := make(map[string]bool, n)
	out := make([]Config, 0, n)
	for len(out) < n {
		c := s.SampleConfig(r)
		k := c.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

// Enumerate lists every configuration of the space in odometer order. It
// panics if the space has more than 1<<22 points; callers should check
// Cardinality first for anything that could be large (and use Iter to
// stream such spaces instead of materializing them).
func (s *Space) Enumerate() []Config {
	card, ok := s.Cardinality()
	if !ok || card > 1<<22 {
		panic("space: Enumerate on a space that is too large")
	}
	out := make([]Config, 0, card)
	it := s.Iter()
	cur := make(Config, len(s.params))
	for it.Next(cur) {
		out = append(out, cur.Clone())
	}
	return out
}

// FeatureKind tells a learner how to treat an encoded feature column.
type FeatureKind int

// Feature encodings: FeatNumeric columns are ordered, FeatCategorical
// columns hold category indices with no ordering.
const (
	FeatNumeric FeatureKind = iota
	FeatCategorical
)

// Feature describes one column of the model's design matrix.
type Feature struct {
	Name          string
	Kind          FeatureKind
	NumCategories int // only for FeatCategorical
}

// Features returns the model-facing description of the encoded columns,
// one per parameter: Numeric/Boolean parameters become FeatNumeric
// columns carrying the level value; Categorical parameters become
// FeatCategorical columns carrying the level index.
func (s *Space) Features() []Feature {
	fs := make([]Feature, len(s.params))
	for i, p := range s.params {
		if p.Kind == Categorical {
			fs[i] = Feature{Name: p.Name, Kind: FeatCategorical, NumCategories: len(p.Names)}
		} else {
			fs[i] = Feature{Name: p.Name, Kind: FeatNumeric}
		}
	}
	return fs
}

// Encode maps a config to its model feature vector (see Features).
func (s *Space) Encode(c Config) []float64 {
	x := make([]float64, len(s.params))
	for i := range s.params {
		x[i] = s.Value(c, i)
	}
	return x
}

// EncodeAll encodes a batch of configs into a fresh matrix.
func (s *Space) EncodeAll(cs []Config) [][]float64 {
	xs := make([][]float64, len(cs))
	for i, c := range cs {
		xs[i] = s.Encode(c)
	}
	return xs
}

// SortedNames returns the parameter names in lexicographic order; useful
// for stable table output.
func (s *Space) SortedNames() []string {
	names := make([]string, len(s.params))
	for i, p := range s.params {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
