package space

import (
	"testing"

	"repro/internal/rng"
)

func iterTestSpace(t *testing.T) *Space {
	t.Helper()
	return MustNew(
		Num("tile", 8, 16, 32, 64),
		Cat("layout", "DGZ", "DZG", "GDZ"),
		Bool("fuse"),
		NumRange("unroll", 1, 4, 1),
	)
}

func TestIteratorMatchesEnumerate(t *testing.T) {
	sp := iterTestSpace(t)
	want := sp.Enumerate()
	it := sp.Iter()
	cur := make(Config, sp.NumParams())
	for i := 0; it.Next(cur); i++ {
		if i >= len(want) {
			t.Fatalf("iterator produced more than %d configs", len(want))
		}
		if cur.Key() != want[i].Key() {
			t.Fatalf("config %d: iterator %v, enumerate %v", i, cur, want[i])
		}
	}
	if it.Next(cur) {
		t.Fatal("exhausted iterator produced another config")
	}
}

// TestIteratorShardInvariance is the lazy-enumeration half of the
// shard-size-invariance contract: reading the stream in bursts of any
// size yields the identical sequence as one config at a time.
func TestIteratorShardInvariance(t *testing.T) {
	sp := iterTestSpace(t)
	want := sp.Enumerate()
	for _, burst := range []int{1, 2, 7, 64, len(want), len(want) + 13} {
		it := sp.Iter()
		got := 0
		buf := make([]Config, burst)
		for i := range buf {
			buf[i] = make(Config, sp.NumParams())
		}
		for {
			k := 0
			for k < burst && it.Next(buf[k]) {
				k++
			}
			for i := 0; i < k; i++ {
				if buf[i].Key() != want[got].Key() {
					t.Fatalf("burst %d: config %d: got %v, want %v", burst, got, buf[i], want[got])
				}
				got++
			}
			if k < burst {
				break
			}
		}
		if got != len(want) {
			t.Fatalf("burst %d: produced %d configs, want %d", burst, got, len(want))
		}
	}
}

func TestIteratorReset(t *testing.T) {
	sp := iterTestSpace(t)
	it := sp.Iter()
	cur := make(Config, sp.NumParams())
	for i := 0; i < 5; i++ {
		it.Next(cur)
	}
	it.Reset()
	if !it.Next(cur) {
		t.Fatal("reset iterator is exhausted")
	}
	if cur.Key() != sp.Enumerate()[0].Key() {
		t.Fatalf("after Reset got %v, want the first config", cur)
	}
}

func TestConfigAtMatchesEnumerationOrder(t *testing.T) {
	sp := iterTestSpace(t)
	want := sp.Enumerate()
	got := make(Config, sp.NumParams())
	for i, w := range want {
		sp.ConfigAt(int64(i), got)
		if got.Key() != w.Key() {
			t.Fatalf("ConfigAt(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestConfigAtOutOfRangePanics(t *testing.T) {
	sp := iterTestSpace(t)
	card, _ := sp.Cardinality()
	for _, idx := range []int64{-1, card, card + 7} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ConfigAt(%d) did not panic", idx)
				}
			}()
			sp.ConfigAt(idx, make(Config, sp.NumParams()))
		}()
	}
}

func TestEncodeIntoMatchesEncode(t *testing.T) {
	sp := iterTestSpace(t)
	r := rng.New(7)
	buf := make([]float64, sp.NumParams())
	for i := 0; i < 50; i++ {
		c := sp.SampleConfig(r)
		sp.EncodeInto(c, buf)
		want := sp.Encode(c)
		for j := range want {
			if buf[j] != want[j] {
				t.Fatalf("EncodeInto(%v)[%d] = %v, want %v", c, j, buf[j], want[j])
			}
		}
	}
}

// TestSampleLHSColumnsReconstruction is the LHS half of the
// shard-size-invariance contract: the precomputed columns consume the
// generator identically to SampleLHS, so reading them in any chunking
// reproduces the materialized draw bit for bit.
func TestSampleLHSColumnsReconstruction(t *testing.T) {
	sp := iterTestSpace(t)
	const n = 37
	want := sp.SampleLHS(rng.New(99), n)
	cols := sp.SampleLHSColumns(rng.New(99), n)
	for i := 0; i < n; i++ {
		for j := 0; j < sp.NumParams(); j++ {
			if cols[j][i] != want[i][j] {
				t.Fatalf("sample %d param %d: columns give %d, SampleLHS gave %d", i, j, cols[j][i], want[i][j])
			}
		}
	}
	// And the generators end at the same stream position.
	ra, rb := rng.New(99), rng.New(99)
	sp.SampleLHS(ra, n)
	sp.SampleLHSColumns(rb, n)
	if ra.Uint64() != rb.Uint64() {
		t.Fatal("SampleLHS and SampleLHSColumns consume the generator differently")
	}
}
