package space

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func testSpace(t *testing.T) *Space {
	t.Helper()
	s, err := New(
		Num("tile", 1, 16, 32, 64),
		Cat("layout", "DGZ", "DZG", "GDZ"),
		Bool("vector"),
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		params []Parameter
	}{
		{"empty", nil},
		{"empty name", []Parameter{Num("", 1)}},
		{"dup name", []Parameter{Num("a", 1), Cat("a", "x")}},
		{"no levels", []Parameter{Num("a")}},
		{"descending", []Parameter{Num("a", 2, 1)}},
		{"dup level value", []Parameter{Num("a", 1, 1)}},
		{"dup category", []Parameter{Cat("a", "x", "x")}},
		{"bad kind", []Parameter{{Name: "a", Kind: Kind(99), Levels: []float64{1}}}},
	}
	for _, c := range cases {
		if _, err := New(c.params...); err == nil {
			t.Errorf("New(%s) succeeded, want error", c.name)
		}
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad space did not panic")
		}
	}()
	MustNew()
}

func TestAccessors(t *testing.T) {
	s := testSpace(t)
	if s.NumParams() != 3 {
		t.Fatalf("NumParams = %d", s.NumParams())
	}
	p, ok := s.ByName("layout")
	if !ok || p.Kind != Categorical || p.NumLevels() != 3 {
		t.Fatalf("ByName(layout) = %+v, %v", p, ok)
	}
	if _, ok := s.ByName("missing"); ok {
		t.Fatal("ByName(missing) found something")
	}
	if s.IndexOf("vector") != 2 || s.IndexOf("nope") != -1 {
		t.Fatal("IndexOf wrong")
	}
}

func TestCardinality(t *testing.T) {
	s := testSpace(t)
	n, ok := s.Cardinality()
	if !ok || n != 4*3*2 {
		t.Fatalf("Cardinality = %d, %v", n, ok)
	}
	if got := s.LogCardinality(); math.Abs(got-math.Log10(24)) > 1e-12 {
		t.Fatalf("LogCardinality = %v", got)
	}
}

func TestCardinalityOverflow(t *testing.T) {
	// 40 parameters with 10 levels each = 10^40 > MaxInt64.
	params := make([]Parameter, 40)
	for i := range params {
		params[i] = NumRange("p"+string(rune('a'+i%26))+string(rune('0'+i/26)), 1, 10, 1)
	}
	s := MustNew(params...)
	if _, ok := s.Cardinality(); ok {
		t.Fatal("Cardinality should overflow")
	}
	if got := s.LogCardinality(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("LogCardinality = %v, want 40", got)
	}
}

func TestNumRange(t *testing.T) {
	p := NumRange("u", 1, 31, 1)
	if p.NumLevels() != 31 || p.Levels[0] != 1 || p.Levels[30] != 31 {
		t.Fatalf("NumRange = %+v", p)
	}
	p2 := NumRange("v", 0, 10, 4) // 0,4,8
	if p2.NumLevels() != 3 || p2.Levels[2] != 8 {
		t.Fatalf("NumRange step = %+v", p2)
	}
}

func TestValidate(t *testing.T) {
	s := testSpace(t)
	if err := s.Validate(Config{0, 2, 1}); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := s.Validate(Config{0, 2}); err == nil {
		t.Fatal("short config accepted")
	}
	if err := s.Validate(Config{0, 3, 1}); err == nil {
		t.Fatal("out-of-range level accepted")
	}
	if err := s.Validate(Config{-1, 0, 0}); err == nil {
		t.Fatal("negative level accepted")
	}
}

func TestValueAndEncode(t *testing.T) {
	s := testSpace(t)
	c := Config{2, 1, 1} // tile=32, layout=DZG, vector=true
	if got := s.Value(c, 0); got != 32 {
		t.Fatalf("Value(tile) = %v", got)
	}
	if got := s.Value(c, 1); got != 1 { // categorical encodes as index
		t.Fatalf("Value(layout) = %v", got)
	}
	if got := s.ValueByName(c, "vector"); got != 1 {
		t.Fatalf("ValueByName(vector) = %v", got)
	}
	if got := s.LevelByName(c, "tile"); got != 2 {
		t.Fatalf("LevelByName(tile) = %v", got)
	}
	x := s.Encode(c)
	want := []float64{32, 1, 1}
	for i := range want {
		if x[i] != want[i] {
			t.Fatalf("Encode = %v", x)
		}
	}
}

func TestValueByNamePanics(t *testing.T) {
	s := testSpace(t)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on unknown name")
		}
	}()
	s.ValueByName(Config{0, 0, 0}, "bogus")
}

func TestStringRendering(t *testing.T) {
	s := testSpace(t)
	got := s.String(Config{1, 0, 1})
	want := "tile=16 layout=DGZ vector=true"
	if got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
	if s.NameOf(Config{0, 2, 0}, 1) != "GDZ" {
		t.Fatal("NameOf wrong")
	}
}

func TestConfigKeyAndClone(t *testing.T) {
	c := Config{1, 2, 3}
	if c.Key() != "1,2,3" {
		t.Fatalf("Key = %q", c.Key())
	}
	d := c.Clone()
	d[0] = 9
	if c[0] != 1 {
		t.Fatal("Clone aliases original")
	}
}

func TestSampleConfigValid(t *testing.T) {
	s := testSpace(t)
	r := rng.New(1)
	for i := 0; i < 1000; i++ {
		if err := s.Validate(s.SampleConfig(r)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSampleConfigsCount(t *testing.T) {
	s := testSpace(t)
	cs := s.SampleConfigs(rng.New(2), 57)
	if len(cs) != 57 {
		t.Fatalf("got %d configs", len(cs))
	}
}

func TestSampleDistinct(t *testing.T) {
	s := testSpace(t)
	cs := s.SampleDistinct(rng.New(3), 10)
	seen := map[string]bool{}
	for _, c := range cs {
		k := c.Key()
		if seen[k] {
			t.Fatal("duplicate in SampleDistinct")
		}
		seen[k] = true
	}
	if len(cs) != 10 {
		t.Fatalf("got %d configs", len(cs))
	}
}

func TestSampleDistinctSmallSpaceEnumerates(t *testing.T) {
	s := MustNew(Bool("a"), Bool("b"))
	cs := s.SampleDistinct(rng.New(4), 100)
	if len(cs) != 4 {
		t.Fatalf("small space returned %d configs, want 4", len(cs))
	}
}

func TestEnumerate(t *testing.T) {
	s := MustNew(Num("x", 1, 2), Cat("y", "a", "b", "c"))
	all := s.Enumerate()
	if len(all) != 6 {
		t.Fatalf("Enumerate len = %d", len(all))
	}
	seen := map[string]bool{}
	for _, c := range all {
		if err := s.Validate(c); err != nil {
			t.Fatal(err)
		}
		if seen[c.Key()] {
			t.Fatal("Enumerate produced duplicate")
		}
		seen[c.Key()] = true
	}
}

func TestFeatures(t *testing.T) {
	s := testSpace(t)
	fs := s.Features()
	if fs[0].Kind != FeatNumeric || fs[1].Kind != FeatCategorical || fs[2].Kind != FeatNumeric {
		t.Fatalf("Features = %+v", fs)
	}
	if fs[1].NumCategories != 3 {
		t.Fatalf("NumCategories = %d", fs[1].NumCategories)
	}
}

func TestEncodeAll(t *testing.T) {
	s := testSpace(t)
	cs := []Config{{0, 0, 0}, {3, 2, 1}}
	xs := s.EncodeAll(cs)
	if len(xs) != 2 || xs[1][0] != 64 || xs[1][1] != 2 || xs[1][2] != 1 {
		t.Fatalf("EncodeAll = %v", xs)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	s := testSpace(t)
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var s2 Space
	if err := json.Unmarshal(data, &s2); err != nil {
		t.Fatal(err)
	}
	if s2.NumParams() != s.NumParams() {
		t.Fatal("round trip lost parameters")
	}
	for i := 0; i < s.NumParams(); i++ {
		a, b := s.Param(i), s2.Param(i)
		if a.Name != b.Name || a.Kind != b.Kind || a.NumLevels() != b.NumLevels() {
			t.Fatalf("param %d mismatch: %+v vs %+v", i, a, b)
		}
	}
}

func TestJSONRejectsBadKind(t *testing.T) {
	var s Space
	err := json.Unmarshal([]byte(`{"params":[{"name":"a","kind":"weird","levels":[1]}]}`), &s)
	if err == nil {
		t.Fatal("bad kind accepted")
	}
}

func TestSampleUniformityPerParameter(t *testing.T) {
	s := testSpace(t)
	r := rng.New(7)
	counts := make([]int, 4)
	const n = 40000
	for i := 0; i < n; i++ {
		counts[s.SampleConfig(r)[0]]++
	}
	want := float64(n) / 4
	for lvl, c := range counts {
		if math.Abs(float64(c)-want) > 0.06*want {
			t.Fatalf("tile level %d count %d deviates from %v", lvl, c, want)
		}
	}
}

func TestEncodeDecodePropertyValid(t *testing.T) {
	// Property: every sampled config validates and encodes to a vector
	// whose numeric entries equal declared levels.
	s := testSpace(t)
	f := func(seed uint64) bool {
		r := rng.New(seed)
		c := s.SampleConfig(r)
		if s.Validate(c) != nil {
			return false
		}
		x := s.Encode(c)
		tile := s.Param(0)
		found := false
		for _, lv := range tile.Levels {
			if x[0] == lv {
				found = true
			}
		}
		return found && x[1] >= 0 && x[1] < 3 && (x[2] == 0 || x[2] == 1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
