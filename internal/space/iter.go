package space

// Iterator walks every configuration of a space lazily in odometer order:
// the first configuration is all-zeros and the LAST parameter's level index
// advances fastest, exactly matching the order Enumerate materializes. It
// exists so callers can stream arbitrarily large spaces (up to 10^18+
// points) one configuration at a time without ever holding the pool in
// memory. The iterator is deterministic and resettable: any interleaving of
// Next calls — one at a time, or shard-sized bursts — yields the identical
// sequence as a single pass.
//
// An Iterator is not safe for concurrent use; give each goroutine its own
// or coordinate externally.
type Iterator struct {
	s       *Space
	cur     Config
	started bool
	done    bool
}

// Iter returns a fresh iterator positioned before the first configuration.
func (s *Space) Iter() *Iterator {
	return &Iterator{s: s, cur: make(Config, len(s.params))}
}

// Reset rewinds the iterator to before the first configuration.
func (it *Iterator) Reset() {
	for i := range it.cur {
		it.cur[i] = 0
	}
	it.started = false
	it.done = false
}

// Next writes the next configuration into dst (which must have length
// NumParams) and reports whether one was produced. After it returns false
// the iterator stays exhausted until Reset.
func (it *Iterator) Next(dst Config) bool {
	if it.done {
		return false
	}
	if !it.started {
		it.started = true
		copy(dst, it.cur)
		return true
	}
	i := len(it.cur) - 1
	for i >= 0 {
		it.cur[i]++
		if it.cur[i] < it.s.params[i].NumLevels() {
			break
		}
		it.cur[i] = 0
		i--
	}
	if i < 0 {
		it.done = true
		return false
	}
	copy(dst, it.cur)
	return true
}

// ConfigAt decodes the idx-th configuration of the enumeration order into
// dst without iterating: the space is a mixed-radix number system whose
// least-significant digit is the last parameter (matching Enumerate and
// Iterator). It panics if idx is outside [0, Cardinality).
func (s *Space) ConfigAt(idx int64, dst Config) {
	if idx < 0 {
		panic("space: ConfigAt negative index")
	}
	for i := len(s.params) - 1; i >= 0; i-- {
		l := int64(s.params[i].NumLevels())
		dst[i] = int(idx % l)
		idx /= l
	}
	if idx != 0 {
		panic("space: ConfigAt index out of range")
	}
}

// EncodeInto encodes c into the provided feature buffer (length NumParams)
// without allocating; the streaming scorer reuses one buffer per worker.
func (s *Space) EncodeInto(c Config, x []float64) {
	for i := range s.params {
		x[i] = s.Value(c, i)
	}
}
