package space

import (
	"encoding/json"
	"fmt"
)

// jsonParameter is the wire form of a Parameter.
type jsonParameter struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Levels []float64 `json:"levels,omitempty"`
	Names  []string  `json:"names,omitempty"`
}

// jsonSpace is the wire form of a Space.
type jsonSpace struct {
	Params []jsonParameter `json:"params"`
}

// MarshalJSON encodes the space as a stable, human-editable document.
func (s *Space) MarshalJSON() ([]byte, error) {
	doc := jsonSpace{Params: make([]jsonParameter, len(s.params))}
	for i, p := range s.params {
		doc.Params[i] = jsonParameter{
			Name:   p.Name,
			Kind:   p.Kind.String(),
			Levels: p.Levels,
			Names:  p.Names,
		}
	}
	return json.Marshal(doc)
}

// UnmarshalJSON decodes and validates a space document.
func (s *Space) UnmarshalJSON(data []byte) error {
	var doc jsonSpace
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	params := make([]Parameter, len(doc.Params))
	for i, jp := range doc.Params {
		var kind Kind
		switch jp.Kind {
		case "numeric":
			kind = Numeric
		case "categorical":
			kind = Categorical
		case "boolean":
			kind = Boolean
		default:
			return fmt.Errorf("space: unknown kind %q for parameter %q", jp.Kind, jp.Name)
		}
		params[i] = Parameter{Name: jp.Name, Kind: kind, Levels: jp.Levels, Names: jp.Names}
	}
	ns, err := New(params...)
	if err != nil {
		return err
	}
	*s = *ns
	return nil
}
