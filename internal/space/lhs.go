package space

import "repro/internal/rng"

// SampleLHSColumns precomputes the per-parameter level columns that define
// a discrete Latin-hypercube draw of size n: column j holds, for each of
// the n samples, the level index of parameter j. Stratum i of n maps onto
// level floor(i*L/n) — levels are hit round-robin with remainders spread
// evenly — and the assignment order is then shuffled per parameter.
//
// The rng stream is consumed entirely here, in one fixed pass over the
// parameters, so a caller that hands the columns to a lazy source and reads
// the samples in shards consumes exactly the same random draws as one that
// materializes all n configs up front. That shard-size invariance is what
// lets the streaming pool pipeline reproduce SampleLHS bit-for-bit.
func (s *Space) SampleLHSColumns(r *rng.RNG, n int) [][]int {
	if n <= 0 {
		return nil
	}
	cols := make([][]int, len(s.params))
	for j, p := range s.params {
		L := p.NumLevels()
		col := make([]int, n)
		for i := 0; i < n; i++ {
			col[i] = i * L / n
		}
		r.Shuffle(n, func(a, b int) { col[a], col[b] = col[b], col[a] })
		cols[j] = col
	}
	return cols
}

// SampleLHS draws n configurations by discrete Latin-hypercube sampling:
// for every parameter independently, the n draws are stratified so each
// level receives as equal a share of the samples as possible (with the
// assignment order shuffled per parameter). Compared with uniform
// sampling it guarantees marginal coverage of every level once
// n >= NumLevels, which matters for small pools — an alternative
// cold-start/pool design ablated in the benchmarks.
func (s *Space) SampleLHS(r *rng.RNG, n int) []Config {
	cols := s.SampleLHSColumns(r, n)
	if cols == nil {
		return nil
	}
	out := make([]Config, n)
	for i := 0; i < n; i++ {
		c := make(Config, len(s.params))
		for j := range s.params {
			c[j] = cols[j][i]
		}
		out[i] = c
	}
	return out
}
