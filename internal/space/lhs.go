package space

import "repro/internal/rng"

// SampleLHS draws n configurations by discrete Latin-hypercube sampling:
// for every parameter independently, the n draws are stratified so each
// level receives as equal a share of the samples as possible (with the
// assignment order shuffled per parameter). Compared with uniform
// sampling it guarantees marginal coverage of every level once
// n >= NumLevels, which matters for small pools — an alternative
// cold-start/pool design ablated in the benchmarks.
func (s *Space) SampleLHS(r *rng.RNG, n int) []Config {
	if n <= 0 {
		return nil
	}
	cols := make([][]int, len(s.params))
	for j, p := range s.params {
		L := p.NumLevels()
		col := make([]int, n)
		for i := 0; i < n; i++ {
			// Stratum i of n maps onto level floor(i*L/n): levels are
			// hit round-robin with remainders spread evenly.
			col[i] = i * L / n
		}
		r.Shuffle(n, func(a, b int) { col[a], col[b] = col[b], col[a] })
		cols[j] = col
	}
	out := make([]Config, n)
	for i := 0; i < n; i++ {
		c := make(Config, len(s.params))
		for j := range s.params {
			c[j] = cols[j][i]
		}
		out[i] = c
	}
	return out
}
