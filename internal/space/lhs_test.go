package space

import (
	"testing"

	"repro/internal/rng"
)

func TestLHSValidAndCount(t *testing.T) {
	s := testSpace(t)
	r := rng.New(1)
	cs := s.SampleLHS(r, 37)
	if len(cs) != 37 {
		t.Fatalf("got %d configs", len(cs))
	}
	for _, c := range cs {
		if err := s.Validate(c); err != nil {
			t.Fatal(err)
		}
	}
	if s.SampleLHS(r, 0) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestLHSMarginalBalance(t *testing.T) {
	// With n a multiple of every level count, every level appears
	// exactly n/L times in each dimension.
	s := MustNew(
		Num("a", 1, 2, 3, 4),
		Cat("b", "x", "y", "z"),
	)
	n := 24
	cs := s.SampleLHS(rng.New(2), n)
	for j := 0; j < s.NumParams(); j++ {
		counts := make([]int, s.Param(j).NumLevels())
		for _, c := range cs {
			counts[c[j]]++
		}
		want := n / s.Param(j).NumLevels()
		for lvl, got := range counts {
			if got != want {
				t.Fatalf("param %d level %d: %d draws, want %d", j, lvl, got, want)
			}
		}
	}
}

func TestLHSCoversAllLevelsWhenPossible(t *testing.T) {
	// Uniform sampling of 31 levels with n=31 misses many levels; LHS
	// must hit every one.
	s := MustNew(NumRange("u", 1, 31, 1))
	cs := s.SampleLHS(rng.New(3), 31)
	seen := make([]bool, 31)
	for _, c := range cs {
		seen[c[0]] = true
	}
	for lvl, ok := range seen {
		if !ok {
			t.Fatalf("level %d never drawn", lvl)
		}
	}
}

func TestLHSFewerSamplesThanLevels(t *testing.T) {
	s := MustNew(NumRange("u", 1, 31, 1))
	cs := s.SampleLHS(rng.New(4), 5)
	// 5 samples over 31 levels: all distinct strata.
	seen := map[int]bool{}
	for _, c := range cs {
		if seen[c[0]] {
			t.Fatalf("stratified draw duplicated level %d", c[0])
		}
		seen[c[0]] = true
	}
}

func TestLHSDeterministic(t *testing.T) {
	s := testSpace(t)
	a := s.SampleLHS(rng.New(5), 20)
	b := s.SampleLHS(rng.New(5), 20)
	for i := range a {
		if a[i].Key() != b[i].Key() {
			t.Fatal("LHS not deterministic")
		}
	}
}

func TestSampleFeasible(t *testing.T) {
	s := MustNew(NumRange("a", 0, 9, 1), NumRange("b", 0, 9, 1))
	r := rng.New(7)
	even := func(c Config) bool { return c[0]%2 == 0 }
	out, err := s.SampleFeasible(r, 50, even)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 50 {
		t.Fatalf("got %d configs", len(out))
	}
	for _, c := range out {
		if !even(c) {
			t.Fatal("infeasible config returned")
		}
	}
	// nil constraint falls back to plain sampling.
	out2, err := s.SampleFeasible(r, 5, nil)
	if err != nil || len(out2) != 5 {
		t.Fatalf("nil constraint: %v, %d", err, len(out2))
	}
}

func TestSampleFeasibleHopelessConstraint(t *testing.T) {
	s := MustNew(NumRange("a", 0, 9, 1))
	never := func(Config) bool { return false }
	if _, err := s.SampleFeasible(rng.New(8), 3, never); err == nil {
		t.Fatal("unsatisfiable constraint accepted")
	}
}

func TestLHSShufflesBetweenDimensions(t *testing.T) {
	// The per-dimension shuffles must decorrelate columns: with two
	// identical parameter definitions the two columns should not be
	// equal everywhere.
	s := MustNew(NumRange("a", 0, 9, 1), NumRange("b", 0, 9, 1))
	cs := s.SampleLHS(rng.New(6), 10)
	same := 0
	for _, c := range cs {
		if c[0] == c[1] {
			same++
		}
	}
	if same == 10 {
		t.Fatal("columns perfectly correlated; shuffle missing")
	}
}
