package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	x, y := r.Uint64(), r.Uint64()
	if x == 0 && y == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestChildStable(t *testing.T) {
	r1 := New(7)
	c1 := r1.Child(3)
	// Advance the parent a lot; Child must be unaffected.
	r2 := New(7)
	for i := 0; i < 100; i++ {
		r2.Uint64()
	}
	c2 := r2.Child(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatal("Child depends on parent position")
		}
	}
}

func TestChildIndependentStreams(t *testing.T) {
	r := New(9)
	a, b := r.Child(0), r.Child(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("children 0 and 1 collided %d/100 times", same)
	}
}

func TestSplitDiffersFromParent(t *testing.T) {
	r := New(11)
	s := r.Split()
	if r.Uint64() == s.Uint64() {
		t.Fatal("split stream equals parent stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(5)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want about 0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for n := 1; n < 20; n++ {
		for i := 0; i < 1000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d", n, v)
			}
		}
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(17)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Fatalf("bucket %d count %d deviates from %v by >5%%", i, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestNormalScaling(t *testing.T) {
	r := New(29)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Normal(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal(10,2) mean = %v", mean)
	}
}

func TestLogNormalUnitMean(t *testing.T) {
	r := New(31)
	sigma := 0.2
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.LogNormal(-sigma*sigma/2, sigma)
	}
	if mean := sum / n; math.Abs(mean-1) > 0.01 {
		t.Fatalf("unit-mean lognormal mean = %v", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(37)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(41)
	for n := 1; n <= 40; n++ {
		for k := 0; k <= n; k++ {
			s := r.Sample(n, k)
			if len(s) != k {
				t.Fatalf("Sample(%d,%d) len %d", n, k, len(s))
			}
			seen := map[int]bool{}
			for _, v := range s {
				if v < 0 || v >= n || seen[v] {
					t.Fatalf("Sample(%d,%d) invalid: %v", n, k, s)
				}
				seen[v] = true
			}
		}
	}
}

func TestSampleCoversAllElements(t *testing.T) {
	// Every index should be selectable, including with Floyd's path (k<<n).
	r := New(43)
	hit := make([]bool, 100)
	for i := 0; i < 5000; i++ {
		for _, v := range r.Sample(100, 5) {
			hit[v] = true
		}
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("index %d never sampled", i)
		}
	}
}

func TestSamplePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestPickWeighted(t *testing.T) {
	r := New(47)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Pick(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight bucket picked %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if math.Abs(ratio-3) > 0.2 {
		t.Fatalf("weight ratio = %v, want about 3", ratio)
	}
}

func TestPickPanicsOnAllZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Pick(all-zero) did not panic")
		}
	}()
	New(1).Pick([]float64{0, 0})
}

func TestMixDeterministic(t *testing.T) {
	if Mix(1, 2) != Mix(1, 2) {
		t.Fatal("Mix not deterministic")
	}
	if Mix(1, 2) == Mix(2, 1) {
		t.Fatal("Mix symmetric; expected order sensitivity")
	}
}

func TestShuffleProperty(t *testing.T) {
	// Property: shuffling preserves the multiset of elements.
	f := func(seed uint64, raw []int8) bool {
		r := New(seed)
		vals := make([]int, len(raw))
		for i, v := range raw {
			vals[i] = int(v)
		}
		orig := map[int]int{}
		for _, v := range vals {
			orig[v]++
		}
		r.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		got := map[int]int{}
		for _, v := range vals {
			got[v]++
		}
		if len(orig) != len(got) {
			return false
		}
		for k, v := range orig {
			if got[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRange(t *testing.T) {
	r := New(53)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(-3, 7)
		if v < -3 || v >= 7 {
			t.Fatalf("Uniform(-3,7) = %v", v)
		}
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(59)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.25) {
			hits++
		}
	}
	p := float64(hits) / n
	if math.Abs(p-0.25) > 0.01 {
		t.Fatalf("Bool(0.25) rate = %v", p)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink = r.Uint64()
	}
	_ = sink
}

func BenchmarkNorm(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink = r.Norm()
	}
	_ = sink
}
