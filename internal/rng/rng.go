// Package rng provides a deterministic, splittable pseudo-random number
// generator used throughout the repository.
//
// Every experiment in this repo must be exactly reproducible from a single
// root seed. The standard library's math/rand/v2 sources are adequate
// generators but do not define a stable cross-version splitting scheme, so
// we implement the classic pairing of SplitMix64 (for seeding and
// splitting) with xoshiro256** (for the stream). Both algorithms are
// public-domain constructions by Blackman and Vigna.
//
// The zero value of RNG is not usable; construct one with New or Split.
package rng

import (
	"errors"
	"math"
)

// splitMix64 advances a SplitMix64 state and returns the next output.
// SplitMix64 passes BigCrush and is the recommended seeder for xoshiro.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix returns a well-scrambled 64-bit value derived from the pair (a, b).
// It is used to derive independent child seeds, e.g. per repetition or per
// tree, without correlations between the resulting streams.
func Mix(a, b uint64) uint64 {
	s := a
	_ = splitMix64(&s)
	s ^= 0x9e3779b97f4a7c15 * (b + 0x632be59bd9b4e019)
	return splitMix64(&s)
}

// RNG is a xoshiro256** generator. It is NOT safe for concurrent use; give
// each goroutine its own RNG via Split.
type RNG struct {
	s [4]uint64

	// seed is the value passed to New; kept so Child can derive stable
	// sub-streams regardless of how far this generator has advanced.
	seed uint64

	// cached second normal variate from the Box-Muller transform.
	hasGauss bool
	gauss    float64
}

// New returns a generator seeded from seed via SplitMix64, per the
// xoshiro authors' recommendation.
func New(seed uint64) *RNG {
	var r RNG
	r.seed = seed
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not be seeded with the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return &r
}

// Split returns a new generator whose stream is statistically independent
// of r's. r advances by one step.
func (r *RNG) Split() *RNG {
	return New(Mix(r.Uint64(), 0xa0761d6478bd642f))
}

// Child returns a deterministic child generator for index i. Unlike Split
// it does not advance r, so Child(i) is stable no matter how many other
// children were created; use it to hand seeds to parallel workers.
func (r *RNG) Child(i uint64) *RNG {
	return New(Mix(r.seed, i+1))
}

// Seed returns the seed the generator was constructed with. It identifies
// the stream (New(r.Seed()) restarts it from the beginning) and lets a
// caller hand an equivalent-from-scratch generator to a lazy source whose
// resets must replay the exact draw sequence.
func (r *RNG) Seed() uint64 { return r.seed }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += a0 * b1
	hi = a1*b1 + w2 + w1>>32
	lo = a * b
	return
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Uniform returns a uniform float64 in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal variate via the Box-Muller transform.
func (r *RNG) Norm() float64 {
	if r.hasGauss {
		r.hasGauss = false
		return r.gauss
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.gauss = v * f
	r.hasGauss = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.Norm()
}

// LogNormal returns exp(N(mu, sigma)). With mu = -sigma*sigma/2 the
// variate has unit mean, which is how the measurement-noise model uses it.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Perm returns a random permutation of [0, n) via Fisher-Yates.
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. It panics if k > n or k < 0.
func (r *RNG) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample k out of range")
	}
	if k == 0 {
		return nil
	}
	// For small k relative to n, Floyd's algorithm avoids the O(n) perm.
	if k*4 <= n {
		chosen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for j := n - k; j < n; j++ {
			t := r.Intn(j + 1)
			if _, dup := chosen[t]; dup {
				t = j
			}
			chosen[t] = struct{}{}
			out = append(out, t)
		}
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	p := r.Perm(n)
	return p[:k]
}

// State is the complete serializable state of an RNG. It exists for
// checkpoint/resume: a generator restored with FromState continues its
// stream exactly where State was taken, including the cached Box-Muller
// variate. All fields are exported (and integer-typed) so the state
// survives JSON round trips bit-exactly.
type State struct {
	S        [4]uint64 `json:"s"`
	Seed     uint64    `json:"seed"`
	HasGauss bool      `json:"has_gauss,omitempty"`
	// Gauss carries the cached second normal variate as raw IEEE-754
	// bits; encoding it as a JSON float would be exact too, but bits
	// make the invariant impossible to break by a formatting change.
	Gauss uint64 `json:"gauss,omitempty"`
}

// State exports the generator's full state. The generator is not
// advanced.
func (r *RNG) State() State {
	return State{
		S:        r.s,
		Seed:     r.seed,
		HasGauss: r.hasGauss,
		Gauss:    math.Float64bits(r.gauss),
	}
}

// FromState reconstructs a generator from an exported State. The
// returned generator produces exactly the continuation of the stream the
// state was taken from. It returns an error for the all-zero xoshiro
// state, which is unreachable from New and marks a corrupt snapshot.
func FromState(st State) (*RNG, error) {
	if st.S[0]|st.S[1]|st.S[2]|st.S[3] == 0 {
		return nil, errors.New("rng: all-zero state")
	}
	return &RNG{
		s:        st.S,
		seed:     st.Seed,
		hasGauss: st.HasGauss,
		gauss:    math.Float64frombits(st.Gauss),
	}, nil
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Pick returns a uniformly random element index weighted by w (w >= 0,
// not all zero). It panics on invalid weights.
func (r *RNG) Pick(w []float64) int {
	total := 0.0
	for _, x := range w {
		if x < 0 || math.IsNaN(x) {
			panic("rng: Pick with negative or NaN weight")
		}
		total += x
	}
	if total <= 0 {
		panic("rng: Pick with all-zero weights")
	}
	target := r.Float64() * total
	acc := 0.0
	for i, x := range w {
		acc += x
		if target < acc {
			return i
		}
	}
	return len(w) - 1
}
