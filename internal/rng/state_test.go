package rng

import (
	"encoding/json"
	"testing"
)

// drain exercises every kind of draw so state round trips are tested
// against the full method surface, not just Uint64.
func drain(r *RNG, n int) []float64 {
	out := make([]float64, 0, 6*n)
	for i := 0; i < n; i++ {
		out = append(out,
			float64(r.Uint64()),
			float64(r.Intn(1000)),
			r.Float64(),
			r.Norm(),
			r.Normal(3, 0.5),
			r.LogNormal(-0.02, 0.2),
		)
		p := r.Perm(7)
		for _, v := range p {
			out = append(out, float64(v))
		}
		for _, v := range r.Sample(50, 5) {
			out = append(out, float64(v))
		}
	}
	return out
}

func TestStateRoundTripMidStream(t *testing.T) {
	r := New(12345)
	drain(r, 10) // advance well into the stream

	restored, err := FromState(r.State())
	if err != nil {
		t.Fatal(err)
	}
	a, b := drain(r, 20), drain(restored, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverged at draw %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestStateCapturesCachedGaussian(t *testing.T) {
	// Norm caches the second Box-Muller variate; a state taken between
	// the two draws must carry it, or the restored stream shifts.
	r := New(99)
	_ = r.Norm() // leaves hasGauss = true
	st := r.State()
	if !st.HasGauss {
		t.Fatal("state did not record the cached gaussian")
	}
	restored, err := FromState(st)
	if err != nil {
		t.Fatal(err)
	}
	if g1, g2 := r.Norm(), restored.Norm(); g1 != g2 {
		t.Fatalf("cached gaussian lost: %v vs %v", g1, g2)
	}
	a, b := drain(r, 5), drain(restored, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStateJSONRoundTripExact(t *testing.T) {
	r := New(7)
	drain(r, 3)
	_ = r.Norm()
	st := r.State()

	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var back State
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != st {
		t.Fatalf("JSON round trip changed state: %+v vs %+v", back, st)
	}
	restored, err := FromState(back)
	if err != nil {
		t.Fatal(err)
	}
	a, b := drain(r, 10), drain(restored, 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestStateChildStable(t *testing.T) {
	// Child derives sub-streams from the original seed; a restored
	// generator must hand out the same children.
	r := New(41)
	drain(r, 2)
	restored, err := FromState(r.State())
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 4; i++ {
		if r.Child(i).Uint64() != restored.Child(i).Uint64() {
			t.Fatalf("child %d differs after restore", i)
		}
	}
}

func TestFromStateRejectsZeroState(t *testing.T) {
	if _, err := FromState(State{}); err == nil {
		t.Fatal("all-zero state accepted")
	}
}
