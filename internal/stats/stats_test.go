package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVariance(t *testing.T) {
	if got := Variance([]float64{2, 2, 2}); got != 0 {
		t.Fatalf("constant variance = %v", got)
	}
	// Population variance of {1,2,3,4} = 1.25.
	if got := Variance([]float64{1, 2, 3, 4}); !almostEq(got, 1.25, 1e-12) {
		t.Fatalf("Variance = %v", got)
	}
}

func TestSampleVariance(t *testing.T) {
	if got := SampleVariance([]float64{1, 2, 3, 4}); !almostEq(got, 5.0/3, 1e-12) {
		t.Fatalf("SampleVariance = %v", got)
	}
	if got := SampleVariance([]float64{7}); got != 0 {
		t.Fatalf("single-element sample variance = %v", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 || Sum(xs) != 11 {
		t.Fatalf("min/max/sum = %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max sentinels wrong")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almostEq(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Median([]float64{5}); got != 5 {
		t.Fatalf("Median single = %v", got)
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated input")
	}
}

func TestQuantilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for q>1")
		}
	}()
	Quantile([]float64{1}, 1.5)
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 30, 20})
	want := []float64{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v", got)
		}
	}
}

func TestRanksTies(t *testing.T) {
	got := Ranks([]float64{5, 5, 1})
	// 1 has rank 1; the two 5s share ranks 2,3 -> 2.5 each.
	if got[2] != 1 || got[0] != 2.5 || got[1] != 2.5 {
		t.Fatalf("Ranks with ties = %v", got)
	}
}

func TestArgSortStable(t *testing.T) {
	xs := []float64{2, 1, 2, 0}
	got := ArgSort(xs)
	want := []int{3, 1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgSort = %v", got)
		}
	}
}

func TestPearsonPerfect(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almostEq(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v", got)
	}
}

func TestPearsonConstantNaN(t *testing.T) {
	if got := Pearson([]float64{1, 1}, []float64{2, 3}); !math.IsNaN(got) {
		t.Fatalf("Pearson constant = %v", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone transform gives Spearman exactly 1.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{1, 8, 27, 64, 125}
	if got := Spearman(xs, ys); !almostEq(got, 1, 1e-12) {
		t.Fatalf("Spearman = %v", got)
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	r := rng.New(1)
	xs := make([]float64, 1000)
	var w Welford
	for i := range xs {
		xs[i] = r.Normal(3, 2)
		w.Add(xs[i])
	}
	if !almostEq(w.Mean(), Mean(xs), 1e-9) {
		t.Fatalf("Welford mean %v vs %v", w.Mean(), Mean(xs))
	}
	if !almostEq(w.Variance(), Variance(xs), 1e-9) {
		t.Fatalf("Welford variance %v vs %v", w.Variance(), Variance(xs))
	}
	if w.N() != 1000 {
		t.Fatalf("Welford N = %d", w.N())
	}
}

func TestWelfordMerge(t *testing.T) {
	r := rng.New(2)
	var all, a, b Welford
	for i := 0; i < 500; i++ {
		x := r.Float64()
		all.Add(x)
		a.Add(x)
	}
	for i := 0; i < 700; i++ {
		x := r.Float64() * 3
		all.Add(x)
		b.Add(x)
	}
	a.Merge(b)
	if a.N() != all.N() || !almostEq(a.Mean(), all.Mean(), 1e-9) || !almostEq(a.Variance(), all.Variance(), 1e-9) {
		t.Fatalf("merge mismatch: %v/%v vs %v/%v", a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(5)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 5 {
		t.Fatal("merge with empty broke accumulator")
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 5 {
		t.Fatal("merge into empty broke accumulator")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 12}
	h := Histogram(xs, 0, 1, 2)
	// -5 clamps to bin 0, 12 clamps to bin 1.
	if h[0] != 3 || h[1] != 3 {
		t.Fatalf("Histogram = %v", h)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 100}); !almostEq(got, 10, 1e-9) {
		t.Fatalf("GeoMean = %v", got)
	}
	if !math.IsNaN(GeoMean([]float64{1, -2})) {
		t.Fatal("GeoMean with negative should be NaN")
	}
	if !math.IsNaN(GeoMean(nil)) {
		t.Fatal("GeoMean empty should be NaN")
	}
}

func TestRanksPropertyPermutationInvariant(t *testing.T) {
	// Property: ranks of distinct values are a permutation of 1..n.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i) * 1.5
		}
		r.Shuffle(n, func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		ranks := Ranks(xs)
		seen := make([]bool, n)
		for _, rk := range ranks {
			i := int(rk) - 1
			if float64(i+1) != rk || i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantilePropertyBounds(t *testing.T) {
	// Property: any quantile lies within [min, max].
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Normal(0, 10)
		}
		for _, q := range []float64{0, 0.1, 0.5, 0.9, 1} {
			v := Quantile(xs, q)
			if v < Min(xs)-1e-9 || v > Max(xs)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
