// Package stats provides the small set of descriptive statistics the rest
// of the repository needs: streaming moments, quantiles, rankings and
// correlation coefficients.
//
// All functions treat their inputs as plain float64 slices; none of them
// mutate the caller's data unless explicitly documented.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance (divide by n) of xs, or NaN
// for an empty slice. The population form matches how random-forest
// prediction spread is defined in Hutter et al. 2014.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	acc := 0.0
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (divide by n-1).
// It returns 0 for slices with fewer than two elements.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	acc := 0.0
	for _, x := range xs {
		d := x - m
		acc += d * d
	}
	return acc / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the same convention as numpy's
// default). It returns NaN for an empty slice and panics if q is outside
// [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if q < 0 || q > 1 {
		panic("stats: quantile out of [0,1]")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// quantileSorted is Quantile on already-sorted data.
func quantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// Ranks returns the 1-based fractional ranks of xs (average rank for
// ties), as used by the Spearman correlation.
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}

// ArgSort returns the indices that would sort xs ascending. Ties keep
// their original relative order (stable).
func ArgSort(xs []float64) []int {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	return idx
}

// Pearson returns the Pearson correlation coefficient of (xs, ys). It
// panics if the lengths differ and returns NaN if either series is
// constant or empty.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation of (xs, ys).
func Spearman(xs, ys []float64) float64 {
	return Pearson(Ranks(xs), Ranks(ys))
}

// Welford is a streaming accumulator of count, mean and variance using
// Welford's numerically stable recurrence. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add folds x into the accumulator.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean, or NaN before any observation.
func (w *Welford) Mean() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.mean
}

// Variance returns the running population variance, or NaN before any
// observation.
func (w *Welford) Variance() float64 {
	if w.n == 0 {
		return math.NaN()
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge folds another accumulator into w (parallel variance merge,
// Chan et al.). Useful when per-goroutine accumulators are combined.
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	w.n = n
}

// Histogram counts xs into nbins equal-width bins spanning [lo, hi].
// Values outside the range are clamped into the first/last bin. It panics
// if nbins <= 0 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, nbins int) []int {
	if nbins <= 0 || hi <= lo {
		panic("stats: invalid histogram bounds")
	}
	counts := make([]int, nbins)
	width := (hi - lo) / float64(nbins)
	for _, x := range xs {
		b := int((x - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= nbins {
			b = nbins - 1
		}
		counts[b]++
	}
	return counts
}

// GeoMean returns the geometric mean of strictly positive xs; it returns
// NaN if the slice is empty or contains a non-positive value.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	acc := 0.0
	for _, x := range xs {
		if x <= 0 {
			return math.NaN()
		}
		acc += math.Log(x)
	}
	return math.Exp(acc / float64(len(xs)))
}
