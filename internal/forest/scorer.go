package forest

import "sync"

// scoreScratch recycles ScoreBatch's per-call accumulator block (three
// float64s per row) across calls and goroutines, so a streaming scan's
// steady-state allocation is zero no matter how many shards it scores.
var scoreScratch = sync.Pool{New: func() interface{} { s := []float64(nil); return &s }}

// ScoreBatch scores every row of X into the caller-provided mu/sigma
// buffers. It is the forest's implementation of the streaming pool
// scorer contract (internal/pool.BatchScorer): safe for concurrent calls
// (it only reads the fitted ensemble and uses pooled scratch) and
// bit-identical per row to PredictBatch and PredictWithUncertainty,
// because each row's Welford accumulation runs serially in ascending
// tree order no matter how the rows are batched or sharded.
//
// The loop nest is tree-outer/row-inner like PredictBatch's worker chunks:
// one compiled tree's flat arrays stay cache-resident while the whole
// shard streams through them. The accumulator scratch is O(len X) —
// three float64s per row, recycled through a pool — which keeps a
// streaming scan's footprint at shard scale.
func (f *Forest) ScoreBatch(X [][]float64, mu, sigma []float64) {
	n := len(X)
	if n == 0 {
		return
	}
	sp := scoreScratch.Get().(*[]float64)
	if cap(*sp) < 3*n {
		*sp = make([]float64, 3*n)
	}
	s := (*sp)[:3*n]
	for i := range s {
		s[i] = 0
	}
	mean, m2, leafVar := s[:n], s[n:2*n], s[2*n:3*n]
	for t, c := range f.compiled {
		for j := 0; j < n; j++ {
			pm, pv, _ := c.PredictStats(X[j])
			d := pm - mean[j]
			mean[j] += d / float64(t+1)
			m2[j] += d * (pm - mean[j])
			leafVar[j] += pv
		}
	}
	for j := 0; j < n; j++ {
		mu[j], sigma[j] = f.finishMoments(mean[j], m2[j], leafVar[j])
	}
	scoreScratch.Put(sp)
}
