package forest

import "sync"

// Blocked scoring kernels. Both batch scorers — the exact float64
// ScoreBatch and the quantized ScoreBatchQ — run the same
// (tree-block × row-tile) loop nest:
//
//	for each tree block (node arrays totalling <= treeBlockBytes, ~L2)
//	    for each row tile (rowTile rows: x rows + accumulator panel, ~L1)
//	        for each tree of the block, in ascending ensemble order
//	            walk the tile's rows through the tree
//
// One block's node arrays stay L2-resident while every tile streams
// through them, and one tile's feature rows and Welford panel stay
// L1-resident while the block's trees revisit them — instead of the
// whole ensemble cycling through cache once per shard. Each row's
// Welford accumulation still happens in ascending tree order (blocks
// partition the ensemble in order, and every row visits the blocks in
// order), so the exact kernel stays bit-identical to
// PredictWithUncertainty no matter how the blocking divides the work.

// rowTile is the blocking tile: enough rows to amortize a tree's node
// array walking over a hot panel, small enough that the tile's rows
// (rowTile × d float64/float32) and its 3×rowTile float64 accumulator
// panel fit comfortably in L1 alongside the current node path.
const rowTile = 128

// treeBlockBytes is the L2 budget one tree block's node arrays must fit
// in. Paper-scale ensembles (64 trees on a few hundred training rows)
// fit a single block on any recent core — the kernels then skip the row
// tiling entirely, since there is no second block pass to keep panels
// resident for — and blocking engages only for ensembles that genuinely
// overflow L2.
const treeBlockBytes = 1 << 20

// scoreScratch recycles the per-call accumulator block (three float64s
// per row) across calls and goroutines, so a streaming scan's
// steady-state allocation is zero no matter how many shards it scores.
var scoreScratch = sync.Pool{New: func() interface{} { s := []float64(nil); return &s }}

// accPanels checks out a zeroed 3n-float64 accumulator block.
func accPanels(n int) (sp *[]float64, mean, m2, leafVar []float64) {
	sp = scoreScratch.Get().(*[]float64)
	if cap(*sp) < 3*n {
		*sp = make([]float64, 3*n)
	}
	s := (*sp)[:3*n]
	for i := range s {
		s[i] = 0
	}
	return sp, s[:n], s[n : 2*n], s[2*n : 3*n]
}

// treeBlocks partitions ensemble slots [0, b) into contiguous runs whose
// summed node-array bytes stay within treeBlockBytes (every block holds
// at least one tree). bytesOf reports slot t's node-array footprint.
func treeBlocks(b int, bytesOf func(t int) int) [][2]int {
	var blocks [][2]int
	lo, sz := 0, 0
	for t := 0; t < b; t++ {
		n := bytesOf(t)
		if t > lo && sz+n > treeBlockBytes {
			blocks = append(blocks, [2]int{lo, t})
			lo, sz = t, 0
		}
		sz += n
	}
	if lo < b {
		blocks = append(blocks, [2]int{lo, b})
	}
	return blocks
}

// ScoreBatch scores every row of X into the caller-provided mu/sigma
// buffers. It is the forest's implementation of the streaming pool
// scorer contract (internal/pool.BatchScorer): safe for concurrent calls
// (it only reads the fitted ensemble and uses pooled scratch) and
// bit-identical per row to PredictBatch and PredictWithUncertainty,
// because each row's Welford accumulation runs serially in ascending
// tree order no matter how the rows are batched, sharded or blocked.
func (f *Forest) ScoreBatch(X [][]float64, mu, sigma []float64) {
	n := len(X)
	if n == 0 {
		return
	}
	sp, mean, m2, leafVar := accPanels(n)
	blocks := treeBlocks(len(f.compiled), func(t int) int {
		// flatNode is 16 bytes and the variance array adds 8 per node.
		return 24 * f.compiled[t].NumNodes()
	})
	tile := rowTile
	if len(blocks) == 1 {
		// One resident block means no second pass over the accumulator
		// panels; the scalar walk is latency-bound, not bandwidth-bound,
		// so tiling would only add loop overhead here. (The transposed
		// quantized kernel keeps its tile even then — its eight
		// concurrent walks are fast enough that L1 residence of the key
		// tile is what feeds them; see ScoreBatchQ.)
		tile = n
	}
	for _, blk := range blocks {
		for lo := 0; lo < n; lo += tile {
			hi := lo + tile
			if hi > n {
				hi = n
			}
			for t := blk[0]; t < blk[1]; t++ {
				c := f.compiled[t]
				bt := float64(t + 1)
				for j := lo; j < hi; j++ {
					pm, pv, _ := c.PredictStats(X[j])
					d := pm - mean[j]
					mean[j] += d / bt
					m2[j] += d * (pm - mean[j])
					leafVar[j] += pv
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		mu[j], sigma[j] = f.finishMoments(mean[j], m2[j], leafVar[j])
	}
	scoreScratch.Put(sp)
}

// NumSlots returns the ensemble size; part of the slot-scorer contract
// the cross-scan cache (internal/pool.ScanCache) keys its panels by.
func (f *Forest) NumSlots() int { return len(f.compiled) }

// ScorerIdentity keys cached cross-scan panels: a warm Update keeps the
// forest (its slot generations record what changed), while a fresh Fit
// returns a new forest — whose generation counters restart at zero — and
// therefore a new identity, forcing a cache cold start.
func (f *Forest) ScorerIdentity() interface{} { return f }

// SlotGens returns a copy of the per-slot generation counters: a slot's
// counter advances exactly when Update replaces its tree, so equality of
// two SlotGens snapshots proves the slot's predictions are unchanged.
func (f *Forest) SlotGens() []uint64 {
	return append([]uint64(nil), f.treeGen...)
}

// ScoreSlots writes the per-tree leaf mean and within-leaf variance of
// every row into the given panel rows (mean[i][t], lvar[i][t]) for only
// the requested ensemble slots, leaving other slots' columns untouched.
// It is the cross-scan cache's partial-rescore entry: after a warm
// Update refreshed k of b trees, only those k slots are re-walked. Safe
// for concurrent calls on disjoint panel rows.
func (f *Forest) ScoreSlots(X [][]float64, slots []int, mean, lvar [][]float64) {
	for _, t := range slots {
		c := f.compiled[t]
		for i, x := range X {
			pm, pv, _ := c.PredictStats(x)
			mean[i][t] = pm
			lvar[i][t] = pv
		}
	}
}

// AggregateSlots folds full per-tree panels into (μ, σ) per row, with
// the same ascending-slot Welford accumulation as ScoreBatch — given
// panels produced by ScoreSlots over all slots, the results are
// bit-identical to ScoreBatch on the same rows.
func (f *Forest) AggregateSlots(mean, lvar [][]float64, mu, sigma []float64) {
	b := len(f.compiled)
	for i := range mean {
		var m, m2, lv float64
		mrow, vrow := mean[i], lvar[i]
		for t := 0; t < b; t++ {
			pm := mrow[t]
			d := pm - m
			m += d / float64(t+1)
			m2 += d * (pm - m)
			lv += vrow[t]
		}
		mu[i], sigma[i] = f.finishMoments(m, m2, lv)
	}
}
