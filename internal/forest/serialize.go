package forest

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/space"
	"repro/internal/tree"
)

// forestDump is the wire form of a fitted Forest. Trees are stored as
// raw JSON messages so the tree package owns its own format.
type forestDump struct {
	Config   Config            `json:"config"`
	Features []space.Feature   `json:"features"`
	OOB      *float64          `json:"oob,omitempty"` // nil encodes NaN
	Trees    []json.RawMessage `json:"trees"`

	// NextRefresh preserves the partial-update rotation cursor, so a
	// reloaded forest continues warm updates exactly where the original
	// left off (required for bit-identical checkpoint/resume).
	NextRefresh int `json:"next_refresh,omitempty"`
}

// MarshalJSON encodes the fitted forest, including every tree, the
// feature schema and the training configuration — enough to reload and
// predict on another machine, the "model portability" the paper's
// conclusion points at.
func (f *Forest) MarshalJSON() ([]byte, error) {
	d := forestDump{Config: f.cfg, Features: f.features, NextRefresh: f.nextRefresh}
	if !math.IsNaN(f.oob) {
		v := f.oob
		d.OOB = &v
	}
	for _, t := range f.trees {
		raw, err := json.Marshal(t)
		if err != nil {
			return nil, err
		}
		d.Trees = append(d.Trees, raw)
	}
	return json.Marshal(d)
}

// UnmarshalJSON decodes a forest serialized by MarshalJSON.
func (f *Forest) UnmarshalJSON(data []byte) error {
	var d forestDump
	if err := json.Unmarshal(data, &d); err != nil {
		return err
	}
	if len(d.Trees) == 0 {
		return fmt.Errorf("forest: dump has no trees")
	}
	if len(d.Features) == 0 {
		return fmt.Errorf("forest: dump has no feature schema")
	}
	trees := make([]*tree.Regressor, len(d.Trees))
	for i, raw := range d.Trees {
		t, err := tree.UnmarshalJSONWithFeatures(raw, d.Features)
		if err != nil {
			return fmt.Errorf("forest: tree %d: %w", i, err)
		}
		trees[i] = t
	}
	f.trees = trees
	f.compiled = make([]*tree.Compiled, len(trees))
	for i, t := range trees {
		f.compiled[i] = t.Compile()
	}
	f.features = d.Features
	f.cfg = d.Config
	f.oob = math.NaN()
	if d.OOB != nil {
		f.oob = *d.OOB
	}
	f.nextRefresh = d.NextRefresh % len(trees)
	f.treeGen = make([]uint64, len(trees))
	f.cache = nil
	return nil
}

// Save writes the forest as JSON to w.
func (f *Forest) Save(w io.Writer) error {
	data, err := json.Marshal(f)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Load reads a forest serialized with Save.
func Load(r io.Reader) (*Forest, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var f Forest
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, err
	}
	return &f, nil
}
