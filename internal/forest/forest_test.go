package forest

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/space"
	"repro/internal/tree"
)

func numFeatures(n int) []space.Feature {
	fs := make([]space.Feature, n)
	for i := range fs {
		fs[i] = space.Feature{Name: string(rune('a' + i)), Kind: space.FeatNumeric}
	}
	return fs
}

// friedman generates the Friedman #1 benchmark function, a standard
// regression test surface with interactions and irrelevant features.
func friedman(r *rng.RNG, n int) (X [][]float64, y []float64) {
	X = make([][]float64, n)
	y = make([]float64, n)
	for i := range X {
		row := make([]float64, 7)
		for j := range row {
			row[j] = r.Float64()
		}
		X[i] = row
		y[i] = 10*math.Sin(math.Pi*row[0]*row[1]) + 20*(row[2]-0.5)*(row[2]-0.5) + 10*row[3] + 5*row[4]
	}
	return X, y
}

func TestFitErrors(t *testing.T) {
	fs := numFeatures(1)
	r := rng.New(1)
	if _, err := Fit(nil, nil, fs, Config{}, r); err == nil {
		t.Fatal("empty training set accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, fs, Config{}, r); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, nil, Config{}, r); err == nil {
		t.Fatal("no features accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, fs, Config{}, nil); err == nil {
		t.Fatal("nil RNG accepted")
	}
}

func TestDefaults(t *testing.T) {
	X, y := friedman(rng.New(2), 50)
	f, err := Fit(X, y, numFeatures(7), Config{}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumTrees() != 64 {
		t.Fatalf("default NumTrees = %d", f.NumTrees())
	}
}

func TestDeterministicUnderSeed(t *testing.T) {
	X, y := friedman(rng.New(4), 100)
	fs := numFeatures(7)
	cfg := Config{NumTrees: 16, Workers: 4}
	f1, err := Fit(X, y, fs, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	// Different worker count must not change the result: per-tree streams
	// come from Child(t), not from scheduling order.
	cfg.Workers = 1
	f2, err := Fit(X, y, fs, cfg, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	probe := X[13]
	m1, s1 := f1.PredictWithUncertainty(probe)
	m2, s2 := f2.PredictWithUncertainty(probe)
	if m1 != m2 || s1 != s2 {
		t.Fatalf("determinism broken: (%v,%v) vs (%v,%v)", m1, s1, m2, s2)
	}
}

func TestLearnsFriedman(t *testing.T) {
	r := rng.New(5)
	X, y := friedman(r, 600)
	Xt, yt := friedman(r, 300)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 64}, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	rmse := f.rmseOn(Xt, yt)
	// Friedman #1 has target stddev about 5; a working forest should get
	// well under half of that.
	if rmse > 2.8 {
		t.Fatalf("test RMSE = %v, forest is not learning", rmse)
	}
}

func TestUncertaintyHigherOffManifold(t *testing.T) {
	// Train on x in [0, 0.5]; uncertainty at x=0.95 (extrapolation) should
	// exceed the mean uncertainty inside the training range.
	r := rng.New(8)
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		v := r.Float64() * 0.5
		X[i] = []float64{v, r.Float64()}
		y[i] = math.Sin(8*v) + 0.05*r.Norm()
	}
	// A random subspace (mtry=1) keeps trees diverse enough that the
	// boundary leaf disagrees across trees; with mtry=d all trees can
	// agree on the extrapolation region and underestimate its σ — a
	// known random-forest limitation.
	f, err := Fit(X, y, numFeatures(2), Config{NumTrees: 64, Tree: tree.Config{MaxFeatures: 1}}, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	var inRange float64
	const probes = 50
	for i := 0; i < probes; i++ {
		_, s := f.PredictWithUncertainty([]float64{0.25 + 0.1*r.Float64(), 0.5})
		inRange += s
	}
	inRange /= probes
	_, sOut := f.PredictWithUncertainty([]float64{0.95, 0.5})
	if sOut < inRange {
		t.Fatalf("extrapolation sigma %v < in-range mean sigma %v", sOut, inRange)
	}
}

func TestTotalVarianceAtLeastBetweenTrees(t *testing.T) {
	X, y := friedman(rng.New(10), 200)
	fs := numFeatures(7)
	fb, err := Fit(X, y, fs, Config{NumTrees: 32, Uncertainty: BetweenTrees, Tree: tree.Config{MinSamplesLeaf: 5}}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	ft, err := Fit(X, y, fs, Config{NumTrees: 32, Uncertainty: TotalVariance, Tree: tree.Config{MinSamplesLeaf: 5}}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_, sb := fb.PredictWithUncertainty(X[i])
		_, st := ft.PredictWithUncertainty(X[i])
		if st < sb-1e-12 {
			t.Fatalf("total variance %v < between-tree %v", st, sb)
		}
	}
}

func TestPredictBatchMatchesSingle(t *testing.T) {
	X, y := friedman(rng.New(12), 150)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 16}, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := f.PredictBatch(X)
	for i := range X {
		m, s := f.PredictWithUncertainty(X[i])
		if mu[i] != m || sigma[i] != s {
			t.Fatalf("batch mismatch at %d", i)
		}
	}
}

func TestPredictBatchEmpty(t *testing.T) {
	X, y := friedman(rng.New(14), 50)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 4}, rng.New(15))
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma := f.PredictBatch(nil)
	if len(mu) != 0 || len(sigma) != 0 {
		t.Fatal("empty batch returned data")
	}
}

func TestOOBReasonable(t *testing.T) {
	X, y := friedman(rng.New(16), 400)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 64}, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	oob := f.OOBRMSE()
	if math.IsNaN(oob) || oob <= 0 || oob > 5 {
		t.Fatalf("OOB RMSE = %v", oob)
	}
}

func TestOOBNaNWithoutBagging(t *testing.T) {
	X, y := friedman(rng.New(18), 100)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 8, DisableBagging: true}, rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(f.OOBRMSE()) {
		t.Fatal("OOB defined despite DisableBagging")
	}
}

func TestDisableBaggingStillSubspaces(t *testing.T) {
	// Without bagging, trees differ only through the random subspace; the
	// ensemble must still show some between-tree spread on an interacting
	// target.
	X, y := friedman(rng.New(20), 200)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 16, DisableBagging: true, Tree: tree.Config{MaxFeatures: 2}}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	// Probe at fresh points: at the training points themselves every
	// unbagged tree isolates the sample in a pure leaf and all trees
	// agree exactly, so the honest between-tree variance is 0 there (the
	// naive sumSq/b − μ² estimator used to report cancellation noise
	// instead). Off the training set the random subspaces disagree.
	probes, _ := friedman(rng.New(99), 50)
	var total float64
	for _, x := range probes {
		_, s := f.PredictWithUncertainty(x)
		total += s
	}
	if total == 0 {
		t.Fatal("no diversity without bagging + subspace")
	}
}

func TestFeatureUsageFindsSignal(t *testing.T) {
	// y depends only on features 0 and 3.
	r := rng.New(22)
	n := 400
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, 6)
		for j := range row {
			row[j] = r.Float64()
		}
		X[i] = row
		y[i] = 10*row[0] + 5*row[3]
	}
	f, err := Fit(X, y, numFeatures(6), Config{NumTrees: 32}, rng.New(23))
	if err != nil {
		t.Fatal(err)
	}
	usage := f.FeatureUsage()
	if usage[0] < usage[1] || usage[0] < usage[2] || usage[3] < usage[1] {
		t.Fatalf("usage did not find signal features: %v", usage)
	}
	var sum float64
	for _, u := range usage {
		sum += u
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("usage does not sum to 1: %v", sum)
	}
}

func TestPermutationImportance(t *testing.T) {
	r := rng.New(24)
	n := 300
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		row := make([]float64, 4)
		for j := range row {
			row[j] = r.Float64()
		}
		X[i] = row
		y[i] = 20 * row[1]
	}
	f, err := Fit(X, y, numFeatures(4), Config{NumTrees: 32}, rng.New(25))
	if err != nil {
		t.Fatal(err)
	}
	imp := f.PermutationImportance(X, y, 3, rng.New(26))
	for j := 0; j < 4; j++ {
		if j == 1 {
			continue
		}
		if imp[1] <= imp[j] {
			t.Fatalf("importance of signal feature not dominant: %v", imp)
		}
	}
}

func TestCategoricalFeatures(t *testing.T) {
	// Mixed numeric + categorical target: group parity decides the level.
	fs := []space.Feature{
		{Name: "x", Kind: space.FeatNumeric},
		{Name: "c", Kind: space.FeatCategorical, NumCategories: 6},
	}
	r := rng.New(27)
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		c := r.Intn(6)
		X[i] = []float64{r.Float64(), float64(c)}
		y[i] = X[i][0]
		if c%2 == 0 {
			y[i] += 10
		}
	}
	f, err := Fit(X, y, fs, Config{NumTrees: 32}, rng.New(28))
	if err != nil {
		t.Fatal(err)
	}
	evenPred := f.Predict([]float64{0.5, 2})
	oddPred := f.Predict([]float64{0.5, 3})
	if evenPred-oddPred < 8 {
		t.Fatalf("categorical effect not learned: even=%v odd=%v", evenPred, oddPred)
	}
}

func TestRobustToOutliers(t *testing.T) {
	// One wild outlier should shift predictions far from it only locally.
	r := rng.New(29)
	n := 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		X[i] = []float64{float64(i) / float64(n)}
		y[i] = 1
	}
	y[0] = 1e6 // outlier at x near 0
	f, err := Fit(X, y, numFeatures(1), Config{NumTrees: 64}, rng.New(30))
	if err != nil {
		t.Fatal(err)
	}
	if p := f.Predict([]float64{0.9}); math.Abs(p-1) > 100 {
		t.Fatalf("outlier contaminated distant prediction: %v", p)
	}
	_ = r
}

func TestTreeDepthStats(t *testing.T) {
	X, y := friedman(rng.New(31), 200)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 8, Tree: tree.Config{MaxDepth: 4}}, rng.New(32))
	if err != nil {
		t.Fatal(err)
	}
	min, mean, max := f.TreeDepthStats()
	if min < 0 || max > 4 || mean < float64(min) || mean > float64(max) {
		t.Fatalf("depth stats %d %v %d", min, mean, max)
	}
}

// TestForestFitBaggingModes pins the strided-worker fit path in both
// bagging modes: the fitted forest must be identical across worker
// counts (per-tree streams come from Child(t), and the per-worker
// bootstrap/workspace scratch must not bleed between trees), and OOB
// must be defined exactly when bagging is on. Run under -race this also
// gates the presorted engine's concurrent use from multiple workers.
func TestForestFitBaggingModes(t *testing.T) {
	X, y := friedman(rng.New(40), 250)
	probes, _ := friedman(rng.New(41), 60)
	fs := numFeatures(7)
	for _, disable := range []bool{false, true} {
		cfg := Config{NumTrees: 24, DisableBagging: disable, Workers: 5,
			Tree: tree.Config{MaxFeatures: 3}}
		f1, err := Fit(X, y, fs, cfg, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Workers = 1
		f2, err := Fit(X, y, fs, cfg, rng.New(42))
		if err != nil {
			t.Fatal(err)
		}
		mu1, s1 := f1.PredictBatch(probes)
		mu2, s2 := f2.PredictBatch(probes)
		for i := range probes {
			if mu1[i] != mu2[i] || s1[i] != s2[i] {
				t.Fatalf("disable=%v: worker count changed predictions at row %d", disable, i)
			}
		}
		if disable && !math.IsNaN(f1.OOBRMSE()) {
			t.Fatalf("OOB defined with bagging disabled: %v", f1.OOBRMSE())
		}
		if !disable && (math.IsNaN(f1.OOBRMSE()) || f1.OOBRMSE() != f2.OOBRMSE()) {
			t.Fatalf("OOB not reproducible across worker counts: %v vs %v", f1.OOBRMSE(), f2.OOBRMSE())
		}
	}
}

// TestOOBParallelMatchesSerial checks the chunked-parallel OOB pass
// against a plain serial recomputation: same votes, bit-identical RMSE,
// for several worker counts (including more workers than rows would
// split evenly across).
func TestOOBParallelMatchesSerial(t *testing.T) {
	X, y := friedman(rng.New(44), 150)
	n := len(X)
	for _, workers := range []int{1, 3, 8} {
		f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 32, Workers: workers}, rng.New(45))
		if err != nil {
			t.Fatal(err)
		}
		// Reconstruct the bootstrap membership from the same child
		// streams Fit used.
		root := rng.New(45)
		inBag := make([][]bool, f.NumTrees())
		for tr := 0; tr < f.NumTrees(); tr++ {
			child := root.Child(uint64(tr))
			bag := make([]bool, n)
			for i := 0; i < n; i++ {
				bag[child.Intn(n)] = true
			}
			inBag[tr] = bag
		}
		var sse float64
		covered := 0
		for i := range X {
			var sum float64
			votes := 0
			for tr, c := range f.compiled {
				if inBag[tr][i] {
					continue
				}
				sum += c.Predict(X[i])
				votes++
			}
			if votes == 0 {
				continue
			}
			d := sum/float64(votes) - y[i]
			sse += d * d
			covered++
		}
		want := math.Sqrt(sse / float64(covered))
		if got := f.OOBRMSE(); got != want {
			t.Fatalf("workers=%d: parallel OOB %v != serial %v", workers, got, want)
		}
		// The method itself must also be invariant to its own chunking.
		if again := f.oobRMSE(X, y, inBag); again != want {
			t.Fatalf("workers=%d: oobRMSE recomputation drifted: %v != %v", workers, again, want)
		}
	}
}

func BenchmarkFitForest(b *testing.B) {
	X, y := friedman(rng.New(1), 500)
	fs := numFeatures(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(X, y, fs, Config{NumTrees: 64}, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPredictBatch7000(b *testing.B) {
	X, y := friedman(rng.New(1), 500)
	pool, _ := friedman(rng.New(2), 7000)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 64}, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictBatch(pool)
	}
}

// BenchmarkPredictBatch7000Reference is the pointer-walking baseline for
// BenchmarkPredictBatch7000: same forest, same pool, same parallelism,
// but traversing the heap-allocated node structs instead of the flat
// arrays.
func BenchmarkPredictBatch7000Reference(b *testing.B) {
	X, y := friedman(rng.New(1), 500)
	pool, _ := friedman(rng.New(2), 7000)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 64}, rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictBatchReference(pool)
	}
}
