package forest

import (
	"testing"

	"repro/internal/rng"
)

func fitWithPool(t *testing.T, trees int) (*Forest, [][]float64) {
	t.Helper()
	X, y := friedman(rng.New(20), 200)
	pool, _ := friedman(rng.New(21), 300)
	f, err := Fit(X, y, numFeatures(7), Config{NumTrees: trees}, rng.New(22))
	if err != nil {
		t.Fatal(err)
	}
	return f, pool
}

// assertPoolMatchesBatch checks PredictPool against PredictBatch bit for
// bit over the given row subset.
func assertPoolMatchesBatch(t *testing.T, f *Forest, pool [][]float64, rows []int) {
	t.Helper()
	mu, sigma := f.PredictPool(rows)
	sub := make([][]float64, len(rows))
	for i, r := range rows {
		sub[i] = pool[r]
	}
	bmu, bsigma := f.PredictBatch(sub)
	for i := range rows {
		if mu[i] != bmu[i] || sigma[i] != bsigma[i] {
			t.Fatalf("row %d: pool (%v,%v) batch (%v,%v)", rows[i], mu[i], sigma[i], bmu[i], bsigma[i])
		}
	}
}

func TestPredictPoolMatchesBatch(t *testing.T) {
	f, pool := fitWithPool(t, 16)
	f.BindPool(pool)
	rows := []int{0, 7, 13, 99, 299, 150, 13} // unsorted, with a repeat
	assertPoolMatchesBatch(t, f, pool, rows)
}

func TestPredictPoolPanicsWithoutBind(t *testing.T) {
	f, _ := fitWithPool(t, 8)
	defer func() {
		if recover() == nil {
			t.Fatal("PredictPool without BindPool did not panic")
		}
	}()
	f.PredictPool([]int{0})
}

func TestBindPoolIdempotent(t *testing.T) {
	f, pool := fitWithPool(t, 8)
	f.BindPool(pool)
	c := f.cache
	f.BindPool(pool)
	if f.cache != c {
		t.Fatal("rebinding the same matrix rebuilt the cache")
	}
	other, _ := friedman(rng.New(23), 100)
	f.BindPool(other)
	if f.cache == c {
		t.Fatal("binding a different matrix kept the old cache")
	}
	assertPoolMatchesBatch(t, f, other, []int{0, 50, 99})
}

// TestPredictPoolAfterUpdate exercises the generation bookkeeping: a
// partial Update refreshes a quarter of the ensemble, PredictPool must
// recompute exactly those slots' cached rows and stay bit-identical to
// PredictBatch.
func TestPredictPoolAfterUpdate(t *testing.T) {
	f, pool := fitWithPool(t, 16)
	f.BindPool(pool)
	f.PredictPool([]int{0, 1})

	X, y := friedman(rng.New(24), 250)
	if err := f.Update(X, y, rng.New(25)); err != nil {
		t.Fatal(err)
	}
	stale := 0
	for tr := range f.cache.gen {
		if f.cache.gen[tr] != f.treeGen[tr] {
			stale++
		}
	}
	if stale != 4 { // Update refreshes b/4 slots
		t.Fatalf("%d stale slots after update, want 4", stale)
	}

	assertPoolMatchesBatch(t, f, pool, []int{0, 5, 100, 299})
	for tr := range f.cache.gen {
		if f.cache.gen[tr] != f.treeGen[tr] {
			t.Fatalf("slot %d still stale after PredictPool", tr)
		}
	}
}

// TestUpdateRotationKeepsCacheConsistent cycles every ensemble slot via
// repeated updates, interleaving PredictPool calls, and checks the cache
// never drifts from the ground-truth batch path.
func TestUpdateRotationKeepsCacheConsistent(t *testing.T) {
	f, pool := fitWithPool(t, 8)
	f.BindPool(pool)
	orig := append([]uint64(nil), f.treeGen...)
	X, y := friedman(rng.New(26), 250)
	rows := []int{3, 44, 150, 299}
	for i := 0; i < 4; i++ {
		if err := f.Update(X, y, rng.New(uint64(27+i))); err != nil {
			t.Fatal(err)
		}
		assertPoolMatchesBatch(t, f, pool, rows)
	}
	// 4 updates x 2 trees = every slot refreshed exactly once.
	for tr, g := range f.treeGen {
		if g != orig[tr]+1 {
			t.Fatalf("slot %d generation %d, want %d", tr, g, orig[tr]+1)
		}
	}
}
