package forest

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestUncertaintyLargeOffset is the regression test for the catastrophic
// cancellation the Welford accumulation fixes: targets near 1e8 with a
// milli-scale spread. The naive sumSq/b − μ² form loses the spread
// entirely (double precision leaves ~1 absolute error at 1e16, swamping
// the ~1e-6 true variance) and reports σ = 0 or garbage; Welford keeps
// the milli-scale between-tree disagreement.
func TestUncertaintyLargeOffset(t *testing.T) {
	r := rng.New(1)
	const n = 200
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := range X {
		x := r.Float64()
		X[i] = []float64{x}
		y[i] = 1e8 + 1e-3*math.Sin(12*x)
	}
	f, err := Fit(X, y, numFeatures(1), Config{NumTrees: 32}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	var maxSigma float64
	for i := 0; i < 50; i++ {
		_, s := f.PredictWithUncertainty([]float64{(float64(i) + 0.5) / 50})
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("probe %d: σ = %v", i, s)
		}
		if s > maxSigma {
			maxSigma = s
		}
	}
	// Bagged trees must disagree somewhere at milli scale — but only at
	// milli scale: anything near 1 would itself be cancellation noise.
	if maxSigma <= 0 {
		t.Fatal("σ identically zero: between-tree spread cancelled away")
	}
	if maxSigma >= 1 {
		t.Fatalf("σ = %v, far above the 1e-3 target spread", maxSigma)
	}
}

// TestPredictBatchMatchesReference pins the flat engine to the
// pointer-walking baseline bit for bit, on both uncertainty estimators.
func TestPredictBatchMatchesReference(t *testing.T) {
	X, y := friedman(rng.New(3), 300)
	pool, _ := friedman(rng.New(4), 500)
	for _, u := range []UncertaintyKind{BetweenTrees, TotalVariance} {
		f, err := Fit(X, y, numFeatures(7), Config{NumTrees: 32, Uncertainty: u}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		mu, sigma := f.PredictBatch(pool)
		rmu, rsigma := f.PredictBatchReference(pool)
		for i := range pool {
			if mu[i] != rmu[i] || sigma[i] != rsigma[i] {
				t.Fatalf("estimator %v row %d: flat (%v,%v) reference (%v,%v)",
					u, i, mu[i], sigma[i], rmu[i], rsigma[i])
			}
		}
	}
}
