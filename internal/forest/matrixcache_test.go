package forest

import (
	"testing"

	"repro/internal/rng"
)

// assertCachedMatchesBatch checks PredictCached against PredictBatch bit
// for bit over the full matrix.
func assertCachedMatchesBatch(t *testing.T, f *Forest, X [][]float64) {
	t.Helper()
	mu, sigma := f.PredictCached(X)
	bmu, bsigma := f.PredictBatch(X)
	if len(mu) != len(X) || len(sigma) != len(X) {
		t.Fatalf("PredictCached returned %d/%d values for %d rows", len(mu), len(sigma), len(X))
	}
	for i := range X {
		if mu[i] != bmu[i] || sigma[i] != bsigma[i] {
			t.Fatalf("row %d: cached (%v,%v) batch (%v,%v)", i, mu[i], sigma[i], bmu[i], bsigma[i])
		}
	}
}

// TestPredictCachedMatchesBatch is the bit-identity contract of the
// checkpoint-evaluation cache: first fill, steady-state reuse, and the
// partial-update reconciliation must all reproduce PredictBatch exactly.
func TestPredictCachedMatchesBatch(t *testing.T) {
	f, pool := fitWithPool(t, 16)
	testX, _ := friedman(rng.New(31), 120)

	// First call fills the cache, second serves from it.
	assertCachedMatchesBatch(t, f, testX)
	if len(f.aux) != 1 {
		t.Fatalf("%d auxiliary caches after first call, want 1", len(f.aux))
	}
	assertCachedMatchesBatch(t, f, testX)
	if len(f.aux) != 1 {
		t.Fatalf("repeat call grew auxiliary caches to %d", len(f.aux))
	}

	// The pool slot and the auxiliary slot coexist.
	f.BindPool(pool)
	assertPoolMatchesBatch(t, f, pool, []int{0, 17, 299})
	assertCachedMatchesBatch(t, f, testX)
	if len(f.aux) != 1 {
		t.Fatalf("BindPool disturbed auxiliary caches: %d", len(f.aux))
	}

	// Partial updates invalidate a quarter of the ensemble; the cached
	// path must recompute exactly those slots and stay bit-identical.
	X, y := friedman(rng.New(32), 220)
	for i := 0; i < 5; i++ {
		if err := f.Update(X, y, rng.New(uint64(33+i))); err != nil {
			t.Fatal(err)
		}
		assertCachedMatchesBatch(t, f, testX)
		assertPoolMatchesBatch(t, f, pool, []int{1, 42, 250})
	}
}

// TestPredictCachedPoolIdentity checks that PredictCached on the matrix
// already bound via BindPool reuses the pool slot instead of duplicating
// the cache.
func TestPredictCachedPoolIdentity(t *testing.T) {
	f, pool := fitWithPool(t, 8)
	f.BindPool(pool)
	assertCachedMatchesBatch(t, f, pool)
	if len(f.aux) != 0 {
		t.Fatalf("PredictCached duplicated the bound pool into %d aux caches", len(f.aux))
	}
}

// TestPredictCachedDistinctMatrices keeps two auxiliary matrices cached
// at once, as a run evaluating both a validation and a test split would.
func TestPredictCachedDistinctMatrices(t *testing.T) {
	f, _ := fitWithPool(t, 8)
	a, _ := friedman(rng.New(35), 60)
	bX, _ := friedman(rng.New(36), 40)
	assertCachedMatchesBatch(t, f, a)
	assertCachedMatchesBatch(t, f, bX)
	if len(f.aux) != 2 {
		t.Fatalf("%d auxiliary caches, want 2", len(f.aux))
	}
	// Revisiting both still serves from the existing slots.
	assertCachedMatchesBatch(t, f, a)
	assertCachedMatchesBatch(t, f, bX)
	if len(f.aux) != 2 {
		t.Fatalf("revisits grew auxiliary caches to %d", len(f.aux))
	}
}
