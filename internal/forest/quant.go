package forest

import (
	"fmt"
	"sync"

	"repro/internal/tree"
)

// Quantized scoring. EnableQuant compiles every ensemble slot into its
// float32 CompiledQ form (internal/tree); ScoreBatchQ then scores batches
// through the packed trees with the same (tree-block × row-tile) blocking
// as ScoreBatch plus two quantized-only wins: each row is narrowed to
// float32 once per batch — into transposed feature-major 8-row groups —
// and rows walk the trees eight at a time (tree.CompiledQ.Leaf8T),
// overlapping the eight branchless traversal chains in the out-of-order
// core. The 8-byte packed nodes fit roughly twice as many trees per
// L2-resident block as the exact engine's 16-byte nodes.
//
// The quantized path is opt-in and approximate (float32 leaf statistics;
// see the error bounds pinned in internal/tree/quant_test.go); the exact
// ScoreBatch path remains the default and is untouched. Like every other
// forest entry, EnableQuant must not run concurrently with Update, but
// ScoreBatchQ is safe for concurrent calls once the quantized slots are
// compiled.

// quantState carries the compiled quantized slots plus the generation
// snapshot they were compiled at, so partial Updates recompile exactly
// the refreshed slots.
type quantState struct {
	compiled []*tree.CompiledQ
	gens     []uint64
}

// EnableQuant (re)compiles the quantized form of every ensemble slot
// whose tree changed since the last call (all of them, the first time).
// It fails only when a tree exceeds the packed node format's limits
// (tree.CompiledQ); the forest is unchanged on error.
func (f *Forest) EnableQuant() error {
	q := f.qstate
	if q == nil {
		q = &quantState{
			compiled: make([]*tree.CompiledQ, len(f.compiled)),
			gens:     make([]uint64, len(f.compiled)),
		}
	}
	for t, c := range f.compiled {
		if q.compiled[t] != nil && q.gens[t] == f.treeGen[t] {
			continue
		}
		qc, err := c.Quantize()
		if err != nil {
			return fmt.Errorf("forest: quantizing tree %d: %w", t, err)
		}
		q.compiled[t] = qc
		q.gens[t] = f.treeGen[t]
	}
	f.qstate = q
	return nil
}

// Quantized refreshes the quantized slots and returns the forest's
// quantized scorer view — a pool.BatchScorer/SlotScorer whose batches run
// on the packed float32 trees. The view reads the forest it came from;
// like the forest itself it must not be used concurrently with Update,
// and it must be re-obtained (or EnableQuant re-run) after one.
func (f *Forest) Quantized() (*QuantScorer, error) {
	if err := f.EnableQuant(); err != nil {
		return nil, err
	}
	return &QuantScorer{f: f}, nil
}

// QuantScorer is the quantized scoring view of a Forest.
type QuantScorer struct {
	f *Forest
}

// Forest returns the underlying forest.
func (q *QuantScorer) Forest() *Forest { return q.f }

// ScoreBatch implements pool.BatchScorer on the quantized trees.
func (q *QuantScorer) ScoreBatch(X [][]float64, mu, sigma []float64) {
	q.f.ScoreBatchQ(X, mu, sigma)
}

// NumSlots implements the slot-scorer contract.
func (q *QuantScorer) NumSlots() int { return len(q.f.compiled) }

// SlotGens implements the slot-scorer contract; generations advance with
// the underlying trees, so cache invalidation is shared with the exact
// path.
func (q *QuantScorer) SlotGens() []uint64 { return q.f.SlotGens() }

// quantIdent distinguishes the quantized view's cached panels from the
// exact view's over the same forest.
type quantIdent struct{ f *Forest }

// ScorerIdentity keys cached cross-scan panels; see Forest.ScorerIdentity.
// The identity follows the underlying forest (the QuantScorer view itself
// is re-obtained every scan), tagged so exact and quantized panels never
// mix.
func (q *QuantScorer) ScorerIdentity() interface{} { return quantIdent{q.f} }

// ScoreSlots writes the quantized per-tree leaf statistics of every row
// into the given panel rows for the requested slots only (see
// Forest.ScoreSlots). Values are the float64-widened float32 leaf
// statistics, so cached re-aggregation reproduces fresh quantized scores
// bit for bit. Rows walk the trees through the same transposed 8-lane
// kernel as ScoreBatchQ — this is the cross-scan cache's warm-rescore
// hot path.
func (q *QuantScorer) ScoreSlots(X [][]float64, slots []int, mean, lvar [][]float64) {
	n := len(X)
	if n == 0 || len(slots) == 0 {
		return
	}
	qs := q.f.qstate
	d := len(q.f.features)
	ng := (n + 7) / 8
	sp, xq := qrowScratch(ng * 8 * d)
	for j, row := range X {
		g, k := j/8, j%8
		tree.QuantizeRowStride(row, xq[g*8*d+k:], 8)
	}
	padRaggedGroup(xq, n, d)
	for _, t := range slots {
		c := qs.compiled[t]
		for j := 0; j < n; j += 8 {
			l0, l1, l2, l3, l4, l5, l6, l7 := c.Leaf8T(xq[j*d:(j+8)*d], d)
			leaves := [8]int32{l0, l1, l2, l3, l4, l5, l6, l7}
			for k := 0; k < 8 && j+k < n; k++ {
				l := leaves[k]
				mean[j+k][t] = c.LeafMean(l)
				lvar[j+k][t] = c.LeafVariance(l)
			}
		}
	}
	qrowPool.Put(sp)
}

// AggregateSlots folds full panels into (μ, σ) with the same
// sum/sum-of-squares arithmetic as ScoreBatchQ — ascending-slot folds of
// Σm, Σm² and Σvar finished by finishSums — so re-aggregating cached
// quantized panels reproduces fresh quantized scores bit for bit. (The
// exact view runs Welford instead; the two differ only by float
// re-association, inside the quantized path's documented tolerance.)
func (q *QuantScorer) AggregateSlots(mean, lvar [][]float64, mu, sigma []float64) {
	b := len(q.f.compiled)
	for i := range mean {
		var s1, s2, lv float64
		mrow, vrow := mean[i], lvar[i]
		for t := 0; t < b; t++ {
			pm := mrow[t]
			s1 += pm
			s2 += pm * pm
			lv += vrow[t]
		}
		mu[i], sigma[i] = q.f.finishSums(s1, s2, lv)
	}
}

// qrowPool recycles the key-form row-conversion scratch of the quantized
// kernels.
var qrowPool = sync.Pool{New: func() interface{} { s := []int32(nil); return &s }}

func qrowScratch(n int) (sp *[]int32, xq []int32) {
	sp = qrowPool.Get().(*[]int32)
	if cap(*sp) < n {
		*sp = make([]int32, n)
	}
	return sp, (*sp)[:n]
}

// padRaggedGroup fills the empty lanes of a ragged final 8-row group
// with copies of the last real row: any real row terminates the 8-lane
// walk, and pad lanes' results are simply never read.
func padRaggedGroup(xq []int32, n, d int) {
	if n%8 == 0 {
		return
	}
	base := (n / 8) * 8 * d
	lastK := (n - 1) % 8
	for k := n % 8; k < 8; k++ {
		for f := 0; f < d; f++ {
			xq[base+f*8+k] = xq[base+f*8+lastK]
		}
	}
}

// ScoreBatchQ scores every row of X through the quantized trees into the
// caller-provided mu/sigma buffers. EnableQuant (or Quantized) must have
// run since the last Update; ScoreBatchQ panics otherwise, mirroring
// PredictPool's contract. Safe for concurrent calls, and deterministic:
// per row, the moment sums accumulate in ascending tree order whatever
// the batching, so quantized streaming selections are invariant across
// shard sizes and worker counts exactly like exact ones.
func (f *Forest) ScoreBatchQ(X [][]float64, mu, sigma []float64) {
	qs := f.qstate
	if qs == nil {
		panic("forest: ScoreBatchQ without EnableQuant")
	}
	n := len(X)
	if n == 0 {
		return
	}
	for t, gen := range qs.gens {
		if gen != f.treeGen[t] {
			panic("forest: ScoreBatchQ with stale quantized slots; EnableQuant after Update")
		}
	}
	d := len(f.features)
	// Rows convert once per batch into 8-row feature-major groups: group
	// g holds rows 8g..8g+7 with feature f of lane k at
	// xq[g*8d + f*8 + k] — the layout Leaf8T wants. A ragged final group
	// pads its empty lanes with copies of the last real row (any real row
	// terminates the walk; pad lanes' results are simply not accumulated).
	ng := (n + 7) / 8
	rsp, xq := qrowScratch(ng * 8 * d)
	for j, row := range X {
		g, k := j/8, j%8
		tree.QuantizeRowStride(row, xq[g*8*d+k:], 8)
	}
	padRaggedGroup(xq, n, d)
	asp, s1, s2, leafVar := accPanels(n)
	blocks := treeBlocks(len(qs.compiled), func(t int) int {
		// The traversal only touches the 8-byte packed node array; leaf
		// statistic arrays are read once per row at the walk's end.
		return qs.compiled[t].NodeBytes()
	})
	// Unlike the exact kernel, the row tile stays on even when the whole
	// ensemble is one resident block: the eight concurrent traversal
	// chains consume transposed keys fast enough that the tile's
	// L1 residence (rowTile × d keys ≈ a few KB, revisited by every tree
	// of the block) is worth the loop overhead — measurably faster than
	// streaming the full shard's keys from L2 per tree.
	for _, blk := range blocks {
		for lo := 0; lo < n; lo += rowTile {
			hi := lo + rowTile
			if hi > n {
				hi = n
			}
			for t := blk[0]; t < blk[1]; t++ {
				c := qs.compiled[t]
				j := lo
				// Eight-lane fast path over full transposed groups; a
				// ragged final group (only possible in the last tile)
				// walks all eight padded lanes and accumulates the real
				// ones. The accumulators are plain sums (Σm, Σm², Σvar)
				// rather than the exact kernel's Welford recurrence:
				// three independent add chains per lane, nothing
				// serialized through a running mean.
				for ; j+8 <= hi; j += 8 {
					l0, l1, l2, l3, l4, l5, l6, l7 := c.Leaf8T(xq[j*d:(j+8)*d], d)
					pm := c.LeafMean(l0)
					s1[j] += pm
					s2[j] += pm * pm
					leafVar[j] += c.LeafVariance(l0)

					pm = c.LeafMean(l1)
					s1[j+1] += pm
					s2[j+1] += pm * pm
					leafVar[j+1] += c.LeafVariance(l1)

					pm = c.LeafMean(l2)
					s1[j+2] += pm
					s2[j+2] += pm * pm
					leafVar[j+2] += c.LeafVariance(l2)

					pm = c.LeafMean(l3)
					s1[j+3] += pm
					s2[j+3] += pm * pm
					leafVar[j+3] += c.LeafVariance(l3)

					pm = c.LeafMean(l4)
					s1[j+4] += pm
					s2[j+4] += pm * pm
					leafVar[j+4] += c.LeafVariance(l4)

					pm = c.LeafMean(l5)
					s1[j+5] += pm
					s2[j+5] += pm * pm
					leafVar[j+5] += c.LeafVariance(l5)

					pm = c.LeafMean(l6)
					s1[j+6] += pm
					s2[j+6] += pm * pm
					leafVar[j+6] += c.LeafVariance(l6)

					pm = c.LeafMean(l7)
					s1[j+7] += pm
					s2[j+7] += pm * pm
					leafVar[j+7] += c.LeafVariance(l7)
				}
				if j < hi {
					l0, l1, l2, l3, l4, l5, l6, l7 := c.Leaf8T(xq[j*d:(j+8)*d], d)
					leaves := [8]int32{l0, l1, l2, l3, l4, l5, l6, l7}
					for k := 0; j+k < hi; k++ {
						l := leaves[k]
						pm := c.LeafMean(l)
						s1[j+k] += pm
						s2[j+k] += pm * pm
						leafVar[j+k] += c.LeafVariance(l)
					}
				}
			}
		}
	}
	for j := 0; j < n; j++ {
		mu[j], sigma[j] = f.finishSums(s1[j], s2[j], leafVar[j])
	}
	scoreScratch.Put(asp)
	qrowPool.Put(rsp)
}
